// Package dnscontext is a library-scale reproduction of "Putting DNS in
// Context" (Mark Allman, IMC 2020). It studies DNS lookups in the context
// of the application transactions that use them: which connections block
// on DNS, where their DNS information comes from (local cache, browser
// prefetch, shared resolver cache, or full resolution), how much the
// lookups contribute to transaction time, how the big public resolver
// platforms compare, and what local caching improvements would buy.
//
// The paper's residential ISP trace is private, so the library ships a
// calibrated synthetic substrate (see DESIGN.md): a discrete-event
// simulation of a neighborhood of houses whose devices browse, prefetch,
// run background apps, probe connectivity, and share TTL-violating stub
// caches, resolved through four resolver platforms with shared caches
// over a synthetic namespace. The analysis pipeline consumes only the two
// passive datasets the paper's monitor produced — DNS transaction records
// and connection summaries — so it runs equally on synthetic traces, on
// pcap files decoded by the zeeklite monitor, or on your own logs parsed
// into the trace types.
//
// # Quick start
//
//	cfg := dnscontext.DefaultGeneratorConfig()
//	cfg.Houses, cfg.Duration = 20, 6*time.Hour
//	ds, eco, err := dnscontext.Generate(cfg)
//	if err != nil { ... }
//	an := dnscontext.NewAnalyzer(dnscontext.WithWorkers(0)) // 0 = GOMAXPROCS
//	analysis := an.Analyze(ds)
//	analysis.Report(os.Stdout, eco.Profiles)
//
// The analysis pipeline shards the trace by originating house and runs
// on a bounded worker pool; the result is bit-identical for every worker
// count. Every entry point is a thin wrapper over one context-aware
// core path (Analyzer.AnalyzeContext); the legacy form
// Analyze(ds, Options) remains for compatibility.
//
// # Traces bigger than RAM
//
// Analyzer.AnalyzeSource streams a trace through the same pipeline in
// bounded memory: a Source yields records one at a time (from an
// in-memory dataset, a TSV reader pair, or a directory of
// time-partitioned trace files), and a memory budget
// (WithMemoryBudget) decides when records spill to client-hashed
// partition files instead of accumulating in RAM. The streamed result's
// classification is bit-identical to the in-memory pipeline's. For
// multi-process runs, Analyzer.CollectShard produces a mergeable
// AnalysisShard per trace slice; MergeShards + Finalize reduce them to
// the same result.
//
// The subsystems are available for separate use: the RFC 1035 codec
// (internal/dnswire re-exported here as the Wire* identifiers), the
// packet layer and pcap file I/O, the zeeklite monitor, and the
// statistics toolkit.
package dnscontext

import (
	"context"
	"io"
	"time"

	"dnscontext/internal/core"
	"dnscontext/internal/households"
	"dnscontext/internal/monitor"
	"dnscontext/internal/netsim"
	"dnscontext/internal/obs"
	"dnscontext/internal/resolver"
	"dnscontext/internal/trace"
)

// Dataset types: the two passive datasets of the paper.
type (
	// Dataset bundles DNS transaction records and connection summaries.
	Dataset = trace.Dataset
	// DNSRecord is one DNS transaction (dns.log line).
	DNSRecord = trace.DNSRecord
	// ConnRecord is one connection summary (conn.log line).
	ConnRecord = trace.ConnRecord
	// Answer is one (address, TTL) pair in a DNS response.
	Answer = trace.Answer
	// Proto is the transport protocol of a connection.
	Proto = trace.Proto
)

// Transport protocols.
const (
	TCP = trace.TCP
	UDP = trace.UDP
)

// Generator types: the synthetic residential workload.
type (
	// GeneratorConfig parameterizes trace synthesis.
	GeneratorConfig = households.Config
	// Ecosystem exposes the simulated resolver infrastructure behind a
	// generated trace.
	Ecosystem = households.Ecosystem
	// PlatformProfile describes one resolver platform.
	PlatformProfile = resolver.PlatformProfile
	// PlatformID identifies a resolver platform (Local, Google, OpenDNS,
	// Cloudflare).
	PlatformID = resolver.PlatformID
	// FaultsConfig injects packet loss, jitter, resolver outages, and UDP
	// truncation into the generator's resolution path. The zero value is
	// a pristine network and reproduces fault-free runs bit for bit.
	FaultsConfig = households.FaultsConfig
	// FaultProfile is the per-link fault model (loss, jitter, outage
	// windows, truncation threshold) used by the network simulator.
	FaultProfile = netsim.FaultProfile
	// OutageWindow is a half-open virtual-time interval during which a
	// faulted link drops every packet.
	OutageWindow = netsim.Window
	// RetryPolicy is the client-side timeout/retry/backoff ladder a
	// device applies to its lookups.
	RetryPolicy = resolver.RetryPolicy
	// FailureStats summarizes fault-path activity (retries, SERVFAILs,
	// TCP fallbacks) in an analyzed trace; see Analysis.Failures.
	FailureStats = core.FailureStats
	// TransportKind identifies a resolver wire transport (Do53, DoTCP,
	// DoT, DoH).
	TransportKind = resolver.TransportKind
	// StreamConfig parameterizes the stream transports' cost model
	// (handshake RTTs, idle timeout, session resumption).
	StreamConfig = resolver.StreamConfig
	// TransportConfig switches a generation run's resolver platforms to
	// an encrypted/stream transport; see GeneratorConfig.Transport. The
	// zero value keeps Do53 and reproduces pre-transport runs bit for
	// bit.
	TransportConfig = households.TransportConfig
	// TransportScenario is one cell of the transport what-if (a kind,
	// optionally with TLS session resumption).
	TransportScenario = core.TransportScenario
	// TransportRow is one scenario's analytic re-costing of a trace; see
	// Analysis.TransportWhatIf.
	TransportRow = core.TransportRow
)

// Resolver wire transports.
const (
	TransportUDP   = resolver.TransportUDP
	TransportTCP   = resolver.TransportTCP
	TransportTLS   = resolver.TransportTLS
	TransportHTTPS = resolver.TransportHTTPS
)

// ParseTransport maps a config/flag spelling ("udp", "tcp", "dot",
// "doh"; empty = UDP) to its TransportKind.
func ParseTransport(s string) (TransportKind, error) { return resolver.ParseTransport(s) }

// DefaultTransportScenarios is the Do53/DoTCP/DoT/DoH comparison (TLS
// transports with and without session resumption) that
// Analysis.TransportWhatIf prices by default.
func DefaultTransportScenarios() []TransportScenario { return core.DefaultTransportScenarios() }

// WriteTransportTable renders transport what-if rows as the delta table
// dnsctx -whatif-transport prints.
func WriteTransportTable(w io.Writer, rows []TransportRow, blockThreshold time.Duration) error {
	return core.WriteTransportTable(w, rows, blockThreshold)
}

// Retry policy presets: the resolv.conf-style default, the aggressive
// Android/Bionic ladder, and single-shot IoT firmware.
func DefaultRetryPolicy() RetryPolicy { return resolver.DefaultRetryPolicy() }
func AndroidRetryPolicy() RetryPolicy { return resolver.AndroidRetryPolicy() }
func IoTRetryPolicy() RetryPolicy     { return resolver.IoTRetryPolicy() }

// Resolver platform identifiers.
const (
	PlatformLocal      = resolver.PlatformLocal
	PlatformGoogle     = resolver.PlatformGoogle
	PlatformOpenDNS    = resolver.PlatformOpenDNS
	PlatformCloudflare = resolver.PlatformCloudflare
)

// Analysis types: the paper's pipeline.
type (
	// Analysis is a fully classified trace with table/figure accessors.
	Analysis = core.Analysis
	// Options parameterizes the analysis (thresholds, pairing policy).
	Options = core.Options
	// Class is the DNS-information origin of a connection (Table 2).
	Class = core.Class
	// PairedConn is one connection with its DN-Hunter pairing.
	PairedConn = core.PairedConn
	// PairingPolicy selects how ambiguous pairings are broken (§4).
	PairingPolicy = core.PairingPolicy
	// RefreshPolicy is a whole-house-cache refresh rule for exploring §8's
	// open question (see CompareRefreshPolicies on Analysis).
	RefreshPolicy = core.RefreshPolicy
)

// The paper's two Table 3 cache policies; PolicyIdleBounded and
// PolicyPopular (in internal/core, re-exported here) populate the space
// between them.
var (
	PolicyNever      = core.PolicyNever
	PolicyRefreshAll = core.PolicyRefreshAll
)

// PolicyIdleBounded refreshes entries only while they were used within
// maxIdle.
func PolicyIdleBounded(maxIdle time.Duration) RefreshPolicy {
	return core.PolicyIdleBounded(maxIdle)
}

// PolicyPopular refreshes entries used at least minUses times and not
// longer than maxIdle ago.
func PolicyPopular(minUses int, maxIdle time.Duration) RefreshPolicy {
	return core.PolicyPopular(minUses, maxIdle)
}

// Table 2 classes.
const (
	ClassN  = core.ClassN
	ClassLC = core.ClassLC
	ClassP  = core.ClassP
	ClassSC = core.ClassSC
	ClassR  = core.ClassR
)

// Pairing policies (§4 robustness check).
const (
	PairMostRecent = core.PairMostRecent
	PairRandom     = core.PairRandom
)

// Monitor types: the zeeklite packet pipeline.
type (
	// Monitor reconstructs the datasets from packets.
	Monitor = monitor.Monitor
	// MonitorOptions configures flow delineation.
	MonitorOptions = monitor.Options
	// SynthOptions configures dataset-to-packets synthesis.
	SynthOptions = monitor.SynthOptions
)

// DefaultGeneratorConfig returns the calibrated paper-scale generation
// parameters (100 houses, 24 h window).
func DefaultGeneratorConfig() GeneratorConfig { return households.DefaultConfig() }

// SmallGeneratorConfig returns a fast configuration for experiments and
// tests.
func SmallGeneratorConfig(seed uint64) GeneratorConfig { return households.SmallConfig(seed) }

// Generate synthesizes the two datasets for cfg.
func Generate(cfg GeneratorConfig) (*Dataset, *Ecosystem, error) { return households.Generate(cfg) }

// DefaultOptions returns the paper's analysis parameters (100 ms blocking
// threshold, per-resolver SC/R thresholds, most-recent pairing).
func DefaultOptions() Options { return core.DefaultOptions() }

// Analyzer runs the paper's pipeline — DN-Hunter pairing, the blocking
// heuristic, and the N/LC/P/SC/R classification — over datasets. It is
// configured once with functional options and can be reused across
// traces and goroutines; each Analyze call shards its dataset by
// originating house and fans out over a bounded worker pool.
type Analyzer struct {
	opts core.Options
}

// AnalyzerOption configures an Analyzer.
type AnalyzerOption func(*Analyzer)

// NewAnalyzer returns an Analyzer with the paper's defaults, modified by
// the given options:
//
//	an := dnscontext.NewAnalyzer(
//	        dnscontext.WithBlockThreshold(20*time.Millisecond),
//	        dnscontext.WithWorkers(8),
//	)
//	analysis := an.Analyze(ds)
func NewAnalyzer(opts ...AnalyzerOption) *Analyzer {
	an := &Analyzer{opts: core.DefaultOptions()}
	for _, o := range opts {
		o(an)
	}
	return an
}

// WithOptions replaces the Analyzer's entire option set; later
// AnalyzerOptions still apply on top. It bridges code that already
// assembles an Options struct into the Analyzer API.
func WithOptions(o Options) AnalyzerOption { return func(an *Analyzer) { an.opts = o } }

// WithBlockThreshold sets the gap separating blocked from non-blocked
// connections (paper: a conservative 100 ms).
func WithBlockThreshold(d time.Duration) AnalyzerOption {
	return func(an *Analyzer) { an.opts.BlockThreshold = d }
}

// WithKneeThreshold sets the visual knee reported alongside Figure 1
// (paper: 20 ms).
func WithKneeThreshold(d time.Duration) AnalyzerOption {
	return func(an *Analyzer) { an.opts.KneeThreshold = d }
}

// WithSCRMinSamples caps the per-resolver sample gate for deriving SC/R
// duration thresholds (paper: 1000).
func WithSCRMinSamples(n int) AnalyzerOption {
	return func(an *Analyzer) { an.opts.SCRMinSamples = n }
}

// WithDefaultSCThreshold sets the SC/R threshold applied to unpopular
// resolvers (paper: 5 ms).
func WithDefaultSCThreshold(d time.Duration) AnalyzerOption {
	return func(an *Analyzer) { an.opts.DefaultSCThreshold = d }
}

// WithPairing selects the pairing policy (PairMostRecent or PairRandom).
func WithPairing(p PairingPolicy) AnalyzerOption {
	return func(an *Analyzer) { an.opts.Pairing = p }
}

// WithSeed seeds the per-shard RNG streams behind PairRandom.
func WithSeed(seed uint64) AnalyzerOption {
	return func(an *Analyzer) { an.opts.Seed = seed }
}

// WithWorkers bounds the analysis worker pool; 0 (the default) uses
// GOMAXPROCS. The analysis result is bit-identical for every value.
func WithWorkers(n int) AnalyzerOption {
	return func(an *Analyzer) { an.opts.Workers = n }
}

// WithIngestWorkers bounds the goroutines AnalyzeSource uses to parse a
// streaming TSV source (ScannerSource/DirSource): positive selects that
// many, 0 (the default) inherits the Workers pool width, and negative
// forces the serial scanner. Like WithWorkers it never changes results
// — records, quarantine decisions, and errors replay in exact serial
// order — only wall-clock time.
func WithIngestWorkers(n int) AnalyzerOption {
	return func(an *Analyzer) { an.opts.IngestWorkers = n }
}

// WithInsignificance sets §6's two independent "insignificant DNS cost"
// criteria: absolute lookup time and fractional contribution (paper:
// 20 ms and 1%).
func WithInsignificance(abs time.Duration, rel float64) AnalyzerOption {
	return func(an *Analyzer) {
		an.opts.InsignificantAbs = abs
		an.opts.InsignificantRel = rel
	}
}

// Options returns the Analyzer's resolved option set.
func (an *Analyzer) Options() Options { return an.opts }

// AnalyzeContext is the core analysis path every other entry point
// wraps: cooperative cancellation via ctx (the worker pool checks it
// between shards), one pipeline, one result shape. A cancelled run
// returns a nil Analysis and an error wrapping the context's error —
// never a partial result. The dataset is time-sorted in place. Safe
// for concurrent use with distinct datasets.
//
// MemoryBudget/SpillDir are ignored here — the dataset is by
// definition already resident; use AnalyzeSource for out-of-core runs.
func (an *Analyzer) AnalyzeContext(ctx context.Context, ds *Dataset) (*Analysis, error) {
	return core.AnalyzeContext(ctx, ds, an.opts)
}

// Analyze is AnalyzeContext without cancellation: a thin wrapper
// binding context.Background.
func (an *Analyzer) Analyze(ds *Dataset) *Analysis {
	a, err := an.AnalyzeContext(context.Background(), ds)
	if err != nil {
		// Unreachable: the only failure mode is context cancellation and
		// Background never cancels.
		panic(err)
	}
	return a
}

// AnalyzeSource streams src through the pipeline in bounded memory;
// see the package comment's "Traces bigger than RAM" and
// Analysis.Summary for what a spilled (summary-grade) result carries.
// Without a memory budget the whole source is ingested and the
// in-memory pipeline runs; classification results are bit-identical
// either way.
func (an *Analyzer) AnalyzeSource(ctx context.Context, src Source) (*Analysis, error) {
	return core.AnalyzeSource(ctx, src, an.opts)
}

// CollectShard runs the map phase only: it ingests and classifies src
// exactly as AnalyzeSource but returns the mergeable AnalysisShard, so
// several processes can each cover a client-disjoint slice of a trace
// and MergeShards + Finalize reduce them to one Analysis.
func (an *Analyzer) CollectShard(ctx context.Context, src Source) (*AnalysisShard, error) {
	return core.CollectShard(ctx, src, an.opts)
}

// Analyze runs DN-Hunter pairing, the blocking heuristic, and the
// N/LC/P/SC/R classification over ds: a thin non-cancellable wrapper
// over the Analyzer core path.
//
// Deprecated: use NewAnalyzer(WithOptions(opts)).Analyze(ds), or
// Analyzer.AnalyzeContext for cancellation. Kept for compatibility.
func Analyze(ds *Dataset, opts Options) *Analysis {
	return NewAnalyzer(WithOptions(opts)).Analyze(ds)
}

// AnalyzeContext is the package-level form of Analyzer.AnalyzeContext,
// a thin wrapper for callers that assemble an Options struct directly.
func AnalyzeContext(ctx context.Context, ds *Dataset, opts Options) (*Analysis, error) {
	return NewAnalyzer(WithOptions(opts)).AnalyzeContext(ctx, ds)
}

// AnalyzeSource is the package-level form of Analyzer.AnalyzeSource.
func AnalyzeSource(ctx context.Context, src Source, opts Options) (*Analysis, error) {
	return NewAnalyzer(WithOptions(opts)).AnalyzeSource(ctx, src)
}

// Observability types: the internal/obs subsystem. A registry collects
// counters, gauges, and latency histograms from every instrumented layer
// (resolver platforms, simulation engine, monitor, analyzer); a tracer
// records the analysis pipeline's phase timeline. Both only observe —
// seeded runs are bit-identical with observability on or off.
type (
	// MetricsRegistry collects metric families and renders deterministic
	// snapshots (Prometheus text or JSON).
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is one consistent, ordered view of a registry.
	MetricsSnapshot = obs.Snapshot
	// Tracer records the analysis pipeline's phase/shard timeline.
	Tracer = obs.Tracer
	// Timeline is a finished Tracer rendering (text or JSON).
	Timeline = obs.Timeline
	// MetricsServer serves /metrics, /metrics.json, and optionally
	// /debug/pprof over HTTP.
	MetricsServer = obs.Server
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer returns a tracer ready to record one analysis run.
func NewTracer() *Tracer { return obs.NewTracer() }

// ServeMetrics binds addr (e.g. ":9090") and serves reg's snapshots at
// /metrics (Prometheus text) and /metrics.json; withPprof additionally
// mounts net/http/pprof under /debug/pprof/.
func ServeMetrics(addr string, reg *MetricsRegistry, withPprof bool) (*MetricsServer, error) {
	return obs.Serve(addr, reg, withPprof)
}

// WithMetrics directs the analyzer to publish its tallies into reg after
// each run. Observation never influences results.
func WithMetrics(reg *MetricsRegistry) AnalyzerOption {
	return func(an *Analyzer) { an.opts.Metrics = reg }
}

// WithTracer records each run's phase timeline and shard distribution
// into tr. A Tracer holds one run; use a fresh one per Analyze call.
func WithTracer(tr *Tracer) AnalyzerOption {
	return func(an *Analyzer) { an.opts.Trace = tr }
}

// DefaultProfiles returns the four calibrated resolver platform profiles.
func DefaultProfiles() []PlatformProfile { return resolver.DefaultProfiles() }

// NewMonitor returns a zeeklite passive monitor.
func NewMonitor(opts MonitorOptions) *Monitor { return monitor.New(opts) }

// DefaultMonitorOptions mirrors the paper's Bro configuration (60 s UDP
// flow timeout).
func DefaultMonitorOptions() MonitorOptions { return monitor.DefaultOptions() }

// Synthesize renders a dataset as Ethernet frames in chronological order.
func Synthesize(ds *Dataset, opts SynthOptions, sink monitor.FrameSink) error {
	return monitor.Synthesize(ds, opts, sink)
}

// WriteDNS / ReadDNS / WriteConns / ReadConns serialize the datasets in
// Bro-style TSV.
func WriteDNS(w io.Writer, recs []DNSRecord) error    { return trace.WriteDNS(w, recs) }
func ReadDNS(r io.Reader) ([]DNSRecord, error)        { return trace.ReadDNS(r) }
func WriteConns(w io.Writer, recs []ConnRecord) error { return trace.WriteConns(w, recs) }
func ReadConns(r io.Reader) ([]ConnRecord, error)     { return trace.ReadConns(r) }

// Streaming ingestion types: iterator-style TSV readers with quarantine.
// Where ReadDNS/ReadConns abort an entire ingest on the first malformed
// line, the scanners yield one record at a time in bounded memory and
// take an ErrorPolicy: strict mode reproduces the readers bit for bit,
// quarantine mode diverts malformed lines (with their line number and
// cause) to a sink and keeps going until an ErrorBudget trips.
type (
	// DNSScanner yields DNS transaction records one at a time.
	DNSScanner = trace.DNSScanner
	// ConnScanner yields connection summaries one at a time.
	ConnScanner = trace.ConnScanner
	// ErrorPolicy decides what a scanner does with malformed lines.
	ErrorPolicy = trace.ErrorPolicy
	// ErrorBudget bounds quarantining before a scan gives up.
	ErrorBudget = trace.ErrorBudget
	// Quarantined is one diverted malformed line: where, what, and why.
	Quarantined = trace.Quarantined
	// ScanStats summarizes a scanner's progress.
	ScanStats = trace.ScanStats
)

// ErrBudgetExceeded is matched (via errors.Is) by the error a scanner or
// monitor reports when its quarantine budget trips.
var ErrBudgetExceeded = trace.ErrBudgetExceeded

// NewDNSScanner returns a streaming DNS-record reader over r.
func NewDNSScanner(r io.Reader, policy ErrorPolicy) *DNSScanner {
	return trace.NewDNSScanner(r, policy)
}

// NewConnScanner returns a streaming connection-summary reader over r.
func NewConnScanner(r io.Reader, policy ErrorPolicy) *ConnScanner {
	return trace.NewConnScanner(r, policy)
}

// StrictPolicy returns the fail-fast policy matching ReadDNS/ReadConns.
func StrictPolicy() ErrorPolicy { return trace.Strict() }

// QuarantineAll returns the policy that quarantines every malformed line
// with no budget.
func QuarantineAll() ErrorPolicy { return trace.QuarantineAll() }

// QuarantineBudget returns a quarantining policy tripping after
// maxErrors quarantined records (negative = unlimited) or when the error
// rate exceeds maxRate (0 = no rate check).
func QuarantineBudget(maxErrors int, maxRate float64) ErrorPolicy {
	return trace.QuarantineBudget(maxErrors, maxRate)
}

// Streaming analysis types: the out-of-core Source/shard surface.
type (
	// Source is a stream of the two trace datasets, the input side of
	// the out-of-core analysis path. Implementations must yield each
	// stream in nondecreasing time order (the analyzer verifies).
	Source = trace.Source
	// DatasetSource adapts an in-memory Dataset to the Source interface.
	DatasetSource = trace.DatasetSource
	// ScannerSource streams a Bro-style TSV reader pair through the
	// quarantining scanners (one-shot: the readers are consumed).
	ScannerSource = trace.ScannerSource
	// DirSource streams a directory of time-partitioned trace files
	// (*.dns.tsv / *.conn.tsv, concatenated in name order).
	DirSource = trace.DirSource
	// AnalysisShard is a mergeable partial analysis: the map-side output
	// of the out-of-core pipeline. Merging is associative and
	// commutative; Finalize reduces a shard to a summary-grade Analysis.
	AnalysisShard = core.AnalysisShard
)

// ErrShardMismatch is matched (via errors.Is) when shards produced
// under different result-affecting options — or covering overlapping
// clients — refuse to merge.
var ErrShardMismatch = core.ErrShardMismatch

// NewDatasetSource returns a Source over an in-memory dataset.
// Analyzer.AnalyzeSource short-circuits it to the zero-copy in-memory
// pipeline when no memory budget is set.
func NewDatasetSource(ds *Dataset) *DatasetSource { return trace.NewDatasetSource(ds) }

// NewScannerSource returns a Source reading DNS records from dns and
// connection summaries from conns under the given error policy. The
// caller retains ownership of the readers (and closes any files).
func NewScannerSource(dns, conns io.Reader, policy ErrorPolicy) *ScannerSource {
	return trace.NewScannerSource(dns, conns, policy)
}

// NewDirSource returns a Source over the time-partitioned trace files
// in dir: files ending in .dns.tsv/.dns.log form the DNS stream and
// .conn.tsv/.conn.log the connection stream, each concatenated in
// lexicographic name order.
func NewDirSource(dir string, policy ErrorPolicy) *DirSource {
	return trace.NewDirSource(dir, policy)
}

// MergeShards folds client-disjoint shards — possibly collected by
// separate processes — into one. See AnalysisShard.Merge for the
// compatibility rules.
func MergeShards(shards ...*AnalysisShard) (*AnalysisShard, error) {
	return core.MergeShards(shards...)
}

// WriteAnalysisShard atomically serializes a shard to path in the
// checkpoint envelope (magic, CRC, atomic rename); ReadAnalysisShard
// loads it back. The encoding is canonical, so equal shards serialize
// to equal bytes.
func WriteAnalysisShard(path string, s *AnalysisShard) error { return core.WriteShardFile(path, s) }

// ReadAnalysisShard loads a shard written by WriteAnalysisShard.
func ReadAnalysisShard(path string) (*AnalysisShard, error) { return core.ReadShardFile(path) }

// WithMemoryBudget bounds how many bytes of trace records AnalyzeSource
// keeps resident before spilling to disk; 0 (the default) means
// unlimited. Spilling never changes classification results, only peak
// memory — and whether the returned Analysis is summary-grade (see
// Analysis.Summary). Ignored by Analyze/AnalyzeContext, which by
// definition already hold the dataset.
func WithMemoryBudget(bytes int64) AnalyzerOption {
	return func(an *Analyzer) { an.opts.MemoryBudget = bytes }
}

// WithSpillDir sets where AnalyzeSource puts spill partitions when the
// memory budget trips. Empty (the default) means a fresh directory
// under the OS temp dir, removed when the analysis finishes.
func WithSpillDir(dir string) AnalyzerOption {
	return func(an *Analyzer) { an.opts.SpillDir = dir }
}

// WithSpillParts sets the number of hash partitions records spill into
// (per stream); 0 means the default (32). Each partition must fit in
// memory during the classify phase.
func WithSpillParts(n int) AnalyzerOption {
	return func(an *Analyzer) { an.opts.SpillParts = n }
}

// Checkpoint/resume: AnalysisCheckpoint configures periodic snapshots of
// completed analysis shards (see Options.Checkpoint); a resumed run
// replays the snapshot and classifies only the remaining shards, with a
// bit-identical result at any worker count.
type AnalysisCheckpoint = core.Checkpoint

// ErrCheckpointMismatch is matched (via errors.Is) when a checkpoint was
// written for a different dataset or different analysis options.
var ErrCheckpointMismatch = core.ErrCheckpointMismatch

// WithCheckpoint directs AnalyzeContext to snapshot completed shards
// into ck.Path and, when ck.Resume is set, to replay an existing
// snapshot before classifying. Checkpointing never influences the
// result, only whether shards are recomputed or replayed.
func WithCheckpoint(ck *AnalysisCheckpoint) AnalyzerOption {
	return func(an *Analyzer) { an.opts.Checkpoint = ck }
}
