package pcap

import (
	"fmt"
	"net/netip"
	"time"
)

// Flow identifies a unidirectional transport flow. It is a comparable
// value type and so usable directly as a map key, mirroring gopacket's
// Flow/Endpoint design.
type Flow struct {
	Proto            uint8
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
}

// Reverse returns the flow in the opposite direction.
func (f Flow) Reverse() Flow {
	return Flow{Proto: f.Proto, Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort}
}

// Canonical returns a direction-independent key: the flow ordered so the
// lexicographically smaller (addr, port) endpoint is the source. Both
// directions of a connection map to the same canonical flow.
func (f Flow) Canonical() Flow {
	if f.Src.Compare(f.Dst) > 0 || (f.Src == f.Dst && f.SrcPort > f.DstPort) {
		return f.Reverse()
	}
	return f
}

// String renders the flow as "proto src:sport > dst:dport".
func (f Flow) String() string {
	proto := "ip"
	switch f.Proto {
	case ProtoTCP:
		proto = "tcp"
	case ProtoUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%s %s:%d > %s:%d", proto, f.Src, f.SrcPort, f.Dst, f.DstPort)
}

// Packet is a fully decoded frame: link, network and transport layers plus
// the capture timestamp. Exactly one of UDP/TCP is non-nil for transport
// traffic the decoder understands.
type Packet struct {
	Timestamp time.Time
	Ethernet  Ethernet
	// IsIPv6 selects which of IPv4/IPv6 is populated.
	IsIPv6 bool
	IPv4   IPv4
	IPv6   IPv6
	UDP    *UDP
	TCP    *TCP
}

// SrcAddr returns the network-layer source address.
func (p *Packet) SrcAddr() netip.Addr {
	if p.IsIPv6 {
		return p.IPv6.Src
	}
	return p.IPv4.Src
}

// DstAddr returns the network-layer destination address.
func (p *Packet) DstAddr() netip.Addr {
	if p.IsIPv6 {
		return p.IPv6.Dst
	}
	return p.IPv4.Dst
}

// Flow returns the unidirectional transport flow of the packet, or a
// zero-port flow for non-UDP/TCP traffic.
func (p *Packet) Flow() Flow {
	f := Flow{Src: p.SrcAddr(), Dst: p.DstAddr()}
	switch {
	case p.UDP != nil:
		f.Proto = ProtoUDP
		f.SrcPort, f.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	case p.TCP != nil:
		f.Proto = ProtoTCP
		f.SrcPort, f.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	default:
		if p.IsIPv6 {
			f.Proto = p.IPv6.NextHeader
		} else {
			f.Proto = p.IPv4.Protocol
		}
	}
	return f
}

// TransportPayload returns the application payload bytes, or nil.
func (p *Packet) TransportPayload() []byte {
	switch {
	case p.UDP != nil:
		return p.UDP.Payload
	case p.TCP != nil:
		return p.TCP.Payload
	}
	return nil
}

// DecodePacket decodes an Ethernet frame down to the transport layer.
// Unknown ethertypes or IP protocols leave the deeper layers unset rather
// than failing, matching how a passive monitor skips traffic it cannot
// parse.
func DecodePacket(ts time.Time, frame []byte) (*Packet, error) {
	eth, err := DecodeEthernet(frame)
	if err != nil {
		return nil, err
	}
	p := &Packet{Timestamp: ts, Ethernet: eth}
	var proto uint8
	var payload []byte
	switch eth.EtherType {
	case EtherTypeIPv4:
		ip, err := DecodeIPv4(eth.Payload)
		if err != nil {
			return nil, err
		}
		p.IPv4 = ip
		proto, payload = ip.Protocol, ip.Payload
	case EtherTypeIPv6:
		ip, err := DecodeIPv6(eth.Payload)
		if err != nil {
			return nil, err
		}
		p.IsIPv6 = true
		p.IPv6 = ip
		proto, payload = ip.NextHeader, ip.Payload
	default:
		return p, nil
	}
	switch proto {
	case ProtoUDP:
		u, err := DecodeUDP(payload)
		if err != nil {
			return nil, err
		}
		p.UDP = &u
	case ProtoTCP:
		t, err := DecodeTCP(payload)
		if err != nil {
			return nil, err
		}
		p.TCP = &t
	}
	return p, nil
}

// defaultMACs gives deterministic placeholder link addresses for
// synthesized frames; the monitor never inspects them.
var (
	srcMAC = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	dstMAC = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
)

// BuildUDP synthesizes a complete Ethernet/IP/UDP frame.
func BuildUDP(src, dst netip.Addr, srcPort, dstPort uint16, payload []byte) ([]byte, error) {
	u := UDP{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
	seg, err := u.Encode(src, dst)
	if err != nil {
		return nil, err
	}
	return wrapIP(src, dst, ProtoUDP, seg)
}

// BuildTCP synthesizes a complete Ethernet/IP/TCP frame.
func BuildTCP(src, dst netip.Addr, srcPort, dstPort uint16, seq, ack uint32, flags uint8, payload []byte) ([]byte, error) {
	t := TCP{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack, Flags: flags, Window: 65535, Payload: payload}
	seg, err := t.Encode(src, dst)
	if err != nil {
		return nil, err
	}
	return wrapIP(src, dst, ProtoTCP, seg)
}

func wrapIP(src, dst netip.Addr, proto uint8, seg []byte) ([]byte, error) {
	var (
		pkt []byte
		et  uint16
		err error
	)
	if src.Is4() != dst.Is4() {
		return nil, fmt.Errorf("%w: mixed address families", ErrBadVersion)
	}
	if src.Is4() {
		ip := IPv4{TTL: 64, Protocol: proto, Src: src, Dst: dst}
		ip.Payload = seg
		pkt, err = ip.Encode()
		et = EtherTypeIPv4
	} else {
		ip := IPv6{HopLimit: 64, NextHeader: proto, Src: src, Dst: dst}
		ip.Payload = seg
		pkt, err = ip.Encode()
		et = EtherTypeIPv6
	}
	if err != nil {
		return nil, err
	}
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: et, Payload: pkt}
	return eth.Encode(), nil
}
