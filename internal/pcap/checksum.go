// Package pcap implements a compact, stdlib-only packet layer codec
// (Ethernet, IPv4, IPv6, UDP, TCP) and libpcap-format capture file I/O.
// The design follows the layered-decoding architecture popularized by
// gopacket: each layer decodes its header from a byte slice and exposes its
// payload for the next layer, and 5-tuple Flow values are comparable map
// keys used by the zeeklite monitor's flow table.
package pcap

import "encoding/binary"

// onesComplementSum computes the running 16-bit one's-complement sum used
// by the Internet checksum, folding carries as it goes.
func onesComplementSum(sum uint32, b []byte) uint32 {
	n := len(b) &^ 1
	for i := 0; i < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)&1 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return sum
}

// Checksum computes the Internet checksum (RFC 1071) over b.
func Checksum(b []byte) uint16 {
	return ^uint16(onesComplementSum(0, b))
}

// pseudoHeaderSum computes the checksum contribution of the IPv4/IPv6
// pseudo-header for the given transport protocol and length.
func pseudoHeaderSum(src, dst []byte, proto uint8, length int) uint32 {
	sum := onesComplementSum(0, src)
	sum = onesComplementSum(sum, dst)
	var meta [4]byte
	meta[1] = proto
	binary.BigEndian.PutUint16(meta[2:4], uint16(length))
	return onesComplementSum(sum, meta[:])
}

// TransportChecksum computes the UDP/TCP checksum including the
// pseudo-header. segment must have its checksum field zeroed.
func TransportChecksum(src, dst []byte, proto uint8, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	return ^uint16(onesComplementSum(sum, segment))
}
