package pcap

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

// Property: Canonical is direction-invariant and idempotent for arbitrary
// flows.
func TestFlowCanonicalProperty(t *testing.T) {
	f := func(a, b [4]byte, sp, dp uint16, udp bool) bool {
		proto := ProtoTCP
		if udp {
			proto = ProtoUDP
		}
		fl := Flow{
			Proto: proto,
			Src:   netip.AddrFrom4(a), Dst: netip.AddrFrom4(b),
			SrcPort: sp, DstPort: dp,
		}
		c := fl.Canonical()
		return c == fl.Reverse().Canonical() && c == c.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Reverse is an involution.
func TestFlowReverseInvolution(t *testing.T) {
	f := func(a, b [4]byte, sp, dp uint16) bool {
		fl := Flow{Proto: ProtoTCP, Src: netip.AddrFrom4(a), Dst: netip.AddrFrom4(b), SrcPort: sp, DstPort: dp}
		return fl.Reverse().Reverse() == fl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: UDP frames round-trip for arbitrary ports and payloads.
func TestUDPRoundTripProperty(t *testing.T) {
	f := func(a, b [4]byte, sp, dp uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		src, dst := netip.AddrFrom4(a), netip.AddrFrom4(b)
		frame, err := BuildUDP(src, dst, sp, dp, payload)
		if err != nil {
			return false
		}
		p, err := DecodePacket(time.Time{}, frame)
		if err != nil || p.UDP == nil {
			return false
		}
		return p.SrcAddr() == src && p.DstAddr() == dst &&
			p.UDP.SrcPort == sp && p.UDP.DstPort == dp &&
			bytes.Equal(p.UDP.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: TCP frames round-trip seq/ack/flags for arbitrary values.
func TestTCPRoundTripProperty(t *testing.T) {
	f := func(a, b [4]byte, sp, dp uint16, seq, ack uint32, flags uint8) bool {
		src, dst := netip.AddrFrom4(a), netip.AddrFrom4(b)
		flags &= 0x1F
		frame, err := BuildTCP(src, dst, sp, dp, seq, ack, flags, nil)
		if err != nil {
			return false
		}
		p, err := DecodePacket(time.Time{}, frame)
		if err != nil || p.TCP == nil {
			return false
		}
		return p.TCP.Seq == seq && p.TCP.Ack == ack && p.TCP.Flags == flags
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the checksum of any buffer with its computed checksum folded
// in verifies to zero (the receiver-side identity).
func TestChecksumIdentityProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		ck := Checksum(data)
		full := append(append([]byte(nil), data...), byte(ck>>8), byte(ck))
		return Checksum(full) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
