package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var (
	v4a = netip.MustParseAddr("192.0.2.1")
	v4b = netip.MustParseAddr("198.51.100.7")
	v6a = netip.MustParseAddr("2001:db8::1")
	v6b = netip.MustParseAddr("2001:db8::2")
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 §3.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xFF}) != ^uint16(0xFF00) {
		t.Fatal("odd-length checksum wrong")
	}
}

func TestUDPRoundTripV4(t *testing.T) {
	payload := []byte("dns goes here")
	frame, err := BuildUDP(v4a, v4b, 5353, 53, payload)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodePacket(time.Unix(100, 0), frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.UDP == nil || p.TCP != nil {
		t.Fatal("expected UDP transport")
	}
	if p.SrcAddr() != v4a || p.DstAddr() != v4b {
		t.Fatalf("addrs %v %v", p.SrcAddr(), p.DstAddr())
	}
	if p.UDP.SrcPort != 5353 || p.UDP.DstPort != 53 {
		t.Fatalf("ports %d %d", p.UDP.SrcPort, p.UDP.DstPort)
	}
	if !bytes.Equal(p.TransportPayload(), payload) {
		t.Fatalf("payload %q", p.TransportPayload())
	}
	// Verify the UDP checksum validates against the pseudo-header.
	seg := p.IPv4.Payload
	if TransportChecksum(addrBytes(v4a), addrBytes(v4b), ProtoUDP, zeroCksum(seg, 6)) != binary.BigEndian.Uint16(seg[6:8]) {
		t.Fatal("UDP checksum does not verify")
	}
}

func zeroCksum(seg []byte, off int) []byte {
	cp := append([]byte(nil), seg...)
	cp[off], cp[off+1] = 0, 0
	return cp
}

func TestUDPRoundTripV6(t *testing.T) {
	frame, err := BuildUDP(v6a, v6b, 1111, 853, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodePacket(time.Time{}, frame)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsIPv6 || p.UDP == nil {
		t.Fatal("expected IPv6 UDP")
	}
	if p.SrcAddr() != v6a || p.DstAddr() != v6b {
		t.Fatalf("addrs %v %v", p.SrcAddr(), p.DstAddr())
	}
}

func TestTCPRoundTrip(t *testing.T) {
	frame, err := BuildTCP(v4a, v4b, 40000, 443, 1000, 2000, FlagSYN|FlagACK, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodePacket(time.Time{}, frame)
	if err != nil {
		t.Fatal(err)
	}
	tcp := p.TCP
	if tcp == nil {
		t.Fatal("no TCP layer")
	}
	if tcp.Seq != 1000 || tcp.Ack != 2000 {
		t.Fatalf("seq/ack %d/%d", tcp.Seq, tcp.Ack)
	}
	if !tcp.HasFlags(FlagSYN|FlagACK) || tcp.HasFlags(FlagRST) {
		t.Fatalf("flags %#x", tcp.Flags)
	}
	seg := p.IPv4.Payload
	if TransportChecksum(addrBytes(v4a), addrBytes(v4b), ProtoTCP, zeroCksum(seg, 16)) != binary.BigEndian.Uint16(seg[16:18]) {
		t.Fatal("TCP checksum does not verify")
	}
}

func TestMixedFamiliesRejected(t *testing.T) {
	if _, err := BuildUDP(v4a, v6b, 1, 2, nil); err == nil {
		t.Fatal("mixed families accepted")
	}
}

func TestIPv4CorruptionDetected(t *testing.T) {
	frame, _ := BuildUDP(v4a, v4b, 1, 2, []byte("hello"))
	// Flip a bit inside the IP header (TTL).
	frame[14+8] ^= 0xFF
	if _, err := DecodePacket(time.Time{}, frame); err == nil {
		t.Fatal("corrupted IPv4 header decoded")
	}
}

func TestDecodeShortFrames(t *testing.T) {
	frame, _ := BuildTCP(v4a, v4b, 1, 2, 0, 0, FlagSYN, nil)
	for n := 0; n < len(frame); n++ {
		if _, err := DecodePacket(time.Time{}, frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
}

func TestDecodeUnknownEtherType(t *testing.T) {
	eth := Ethernet{EtherType: 0x0806 /* ARP */, Payload: []byte{1, 2, 3}}
	p, err := DecodePacket(time.Time{}, eth.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if p.UDP != nil || p.TCP != nil {
		t.Fatal("transport decoded from ARP")
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodePacket(time.Time{}, data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowReverseCanonical(t *testing.T) {
	f := Flow{Proto: ProtoTCP, Src: v4b, Dst: v4a, SrcPort: 9999, DstPort: 80}
	r := f.Reverse()
	if r.Src != v4a || r.DstPort != 9999 {
		t.Fatalf("reverse = %+v", r)
	}
	if f.Canonical() != r.Canonical() {
		t.Fatal("canonical differs between directions")
	}
	if f.Canonical().Src != v4a {
		t.Fatalf("canonical src = %v, want smaller addr", f.Canonical().Src)
	}
}

func TestFlowCanonicalSameAddr(t *testing.T) {
	f := Flow{Proto: ProtoUDP, Src: v4a, Dst: v4a, SrcPort: 9, DstPort: 5}
	if got := f.Canonical(); got.SrcPort != 5 {
		t.Fatalf("canonical = %+v", got)
	}
}

func TestFlowString(t *testing.T) {
	f := Flow{Proto: ProtoUDP, Src: v4a, Dst: v4b, SrcPort: 53, DstPort: 31000}
	want := "udp 192.0.2.1:53 > 198.51.100.7:31000"
	if f.String() != want {
		t.Fatalf("String = %q", f.String())
	}
}

func TestPacketFlow(t *testing.T) {
	frame, _ := BuildUDP(v4a, v4b, 5000, 53, nil)
	p, _ := DecodePacket(time.Time{}, frame)
	f := p.Flow()
	if f.Proto != ProtoUDP || f.SrcPort != 5000 || f.DstPort != 53 {
		t.Fatalf("flow = %+v", f)
	}
}

func TestPcapFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{}
	times := []time.Time{}
	for i := 0; i < 10; i++ {
		frame, err := BuildUDP(v4a, v4b, uint16(1000+i), 53, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		ts := time.Unix(int64(1549400000+i), int64(i)*1000).UTC()
		if err := w.WriteRecord(ts, frame); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
		times = append(times, ts)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			if i != 10 {
				t.Fatalf("read %d records, want 10", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec.Data, frames[i]) {
			t.Fatalf("record %d data mismatch", i)
		}
		if !rec.Timestamp.Equal(times[i]) {
			t.Fatalf("record %d time %v, want %v", i, rec.Timestamp, times[i])
		}
		if rec.OrigLen != len(frames[i]) {
			t.Fatalf("record %d origlen %d", i, rec.OrigLen)
		}
	}
}

func TestPcapReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestPcapReaderTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestPcapReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	frame, _ := BuildUDP(v4a, v4b, 1, 2, nil)
	_ = w.WriteRecord(time.Unix(0, 0), frame)
	_ = w.Flush()
	b := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record read successfully")
	}
}

func TestPcapWriterRejectsGiantFrame(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.WriteRecord(time.Unix(0, 0), make([]byte, MaxSnapLen+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0, 0, 0xAB, 0xCD, 0xEF}
	if m.String() != "02:00:00:ab:cd:ef" {
		t.Fatalf("MAC = %q", m.String())
	}
}

func TestPacketFlowNonTransport(t *testing.T) {
	// An IP packet with an unknown protocol: Flow carries the protocol
	// number with zero ports; TransportPayload is nil.
	ip := IPv4{TTL: 64, Protocol: 47 /* GRE */, Src: v4a, Dst: v4b, Payload: make([]byte, 24)}
	b, err := ip.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eth := Ethernet{EtherType: EtherTypeIPv4, Payload: b}
	p, err := DecodePacket(time.Time{}, eth.Encode())
	if err != nil {
		t.Fatal(err)
	}
	f := p.Flow()
	if f.Proto != 47 || f.SrcPort != 0 || f.DstPort != 0 {
		t.Fatalf("flow %+v", f)
	}
	if p.TransportPayload() != nil {
		t.Fatal("payload for non-transport packet")
	}
}

func TestPacketFlowIPv6NonTransport(t *testing.T) {
	ip := IPv6{HopLimit: 64, NextHeader: 58 /* ICMPv6 */, Src: v6a, Dst: v6b, Payload: []byte{1, 2, 3, 4}}
	b, err := ip.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eth := Ethernet{EtherType: EtherTypeIPv6, Payload: b}
	p, err := DecodePacket(time.Time{}, eth.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if f := p.Flow(); f.Proto != 58 {
		t.Fatalf("flow %+v", f)
	}
	if tp := p.TransportPayload(); tp != nil {
		t.Fatalf("payload %v", tp)
	}
}

func TestTCPWithOptionsRoundTrip(t *testing.T) {
	opts := []byte{2, 4, 5, 0xb4, 1, 1, 1, 1} // MSS + padding, 8 bytes
	tcp := TCP{SrcPort: 1, DstPort: 2, Seq: 9, Flags: FlagSYN, Window: 1024, Options: opts, Payload: []byte("x")}
	seg, err := tcp.Encode(v4a, v4b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTCP(seg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Options, opts) || !bytes.Equal(got.Payload, []byte("x")) {
		t.Fatalf("options/payload lost: %+v", got)
	}
	if _, err := (TCP{Options: []byte{1, 2, 3}}).Encode(v4a, v4b); err == nil {
		t.Fatal("unaligned options accepted")
	}
}

func TestIPv4OptionsRoundTrip(t *testing.T) {
	ip := IPv4{TTL: 9, Protocol: ProtoUDP, Src: v4a, Dst: v4b,
		Options: []byte{1, 1, 1, 1}, Payload: []byte{0xAA}}
	b, err := ip.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Options, []byte{1, 1, 1, 1}) || got.TTL != 9 {
		t.Fatalf("ipv4 options lost: %+v", got)
	}
	if _, err := (IPv4{Src: v4a, Dst: v4b, Options: []byte{1, 2, 3}}).Encode(); err == nil {
		t.Fatal("unaligned IP options accepted")
	}
}

func TestPcapReaderBigEndianAndNanos(t *testing.T) {
	frame, _ := BuildUDP(v4a, v4b, 1, 2, []byte("z"))
	for _, tc := range []struct {
		name  string
		magic uint32
		nanos bool
	}{
		{"big-endian micros", 0xA1B2C3D4, false},
		{"little-endian nanos", 0xA1B23C4D, true},
	} {
		var buf bytes.Buffer
		hdr := make([]byte, 24)
		if tc.name == "big-endian micros" {
			binary.BigEndian.PutUint32(hdr[0:4], tc.magic)
			binary.BigEndian.PutUint32(hdr[20:24], 1)
		} else {
			binary.LittleEndian.PutUint32(hdr[0:4], tc.magic)
			binary.LittleEndian.PutUint32(hdr[20:24], 1)
		}
		buf.Write(hdr)
		rec := make([]byte, 16)
		order := binary.ByteOrder(binary.LittleEndian)
		if tc.name == "big-endian micros" {
			order = binary.BigEndian
		}
		order.PutUint32(rec[0:4], 1700000000)
		order.PutUint32(rec[4:8], 123)
		order.PutUint32(rec[8:12], uint32(len(frame)))
		order.PutUint32(rec[12:16], uint32(len(frame)))
		buf.Write(rec)
		buf.Write(frame)

		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := r.Next()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		wantNanos := int64(123)
		if !tc.nanos {
			wantNanos *= 1000
		}
		if got.Timestamp.UnixNano() != 1700000000*1e9+wantNanos {
			t.Fatalf("%s: ts %v", tc.name, got.Timestamp)
		}
	}
}

func TestPcapReaderRejectsNonEthernet(t *testing.T) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], 0xA1B2C3D4)
	binary.LittleEndian.PutUint32(hdr[20:24], 101) // LINKTYPE_RAW
	if _, err := NewReader(bytes.NewReader(hdr)); err == nil {
		t.Fatal("non-ethernet link type accepted")
	}
}

func TestPcapReaderRejectsGiantCaplen(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Flush()
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[8:12], MaxSnapLen+1)
	buf.Write(rec)
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("absurd caplen accepted")
	}
}

func TestWriterErrorSticky(t *testing.T) {
	w, err := NewWriter(&failingWriter{})
	if err == nil {
		// The header write may be buffered; force it out.
		frame, _ := BuildUDP(v4a, v4b, 1, 2, make([]byte, 8000))
		for i := 0; i < 20 && err == nil; i++ {
			err = w.WriteRecord(time.Unix(0, 0), frame)
			if err == nil {
				err = w.Flush()
			}
		}
		if err == nil {
			t.Fatal("writes to failing writer never errored")
		}
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

// buildCorruptCapture writes nrec records and smashes the caplen field
// of record `bad` to an impossible value, returning the capture bytes,
// the per-record frames, and the byte length of the corrupted frame.
func buildCorruptCapture(t *testing.T, nrec, bad int) ([]byte, [][]byte) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1600000000, 0)
	var frames [][]byte
	offsets := make([]int, nrec)
	off := 24
	for i := 0; i < nrec; i++ {
		frame, err := BuildUDP(v4a, v4b, uint16(40000+i), 53, []byte{byte(i), 0xAB, 0xCD})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
		offsets[i] = off
		off += 16 + len(frame)
		if err := w.WriteRecord(base.Add(time.Duration(i)*time.Second), frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	binary.LittleEndian.PutUint32(b[offsets[bad]+8:offsets[bad]+12], 0xFFFFFFFF)
	return b, frames
}

func TestPcapResyncRecoversAfterCorruptHeader(t *testing.T) {
	b, frames := buildCorruptCapture(t, 5, 2)

	// Without a policy the corrupt header is fatal, exactly as before.
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("corrupt header not fatal without resync: %v", err)
	}

	// With resync the reader skips the corrupt record and yields the rest.
	r, err = NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	r.SetResync(ResyncPolicy{MaxResyncs: -1})
	var got [][]byte
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("resync read: %v", err)
		}
		got = append(got, rec.Data)
	}
	want := [][]byte{frames[0], frames[1], frames[3], frames[4]}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if r.Resyncs() != 1 {
		t.Fatalf("resyncs %d, want 1", r.Resyncs())
	}
	if want := int64(16 + len(frames[2])); r.SkippedBytes() != want {
		t.Fatalf("skipped %d bytes, want %d", r.SkippedBytes(), want)
	}
}

func TestPcapResyncBudgetZeroStaysFatal(t *testing.T) {
	b, _ := buildCorruptCapture(t, 3, 1)
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	r.SetResync(ResyncPolicy{}) // zero policy: no resyncs allowed
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("zero resync budget recovered from a corrupt header")
	}
}

func TestPcapResyncScanBudgetGivesUp(t *testing.T) {
	b, _ := buildCorruptCapture(t, 3, 1)
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	r.SetResync(ResyncPolicy{MaxResyncs: -1, MaxScanBytes: 4})
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	if err == nil || !strings.Contains(err.Error(), "gave up") {
		t.Fatalf("err = %v, want scan-budget give-up", err)
	}
}
