package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// libpcap file format constants (microsecond-resolution, little-endian
// variant written by this package; the reader also accepts big-endian and
// nanosecond magics).
const (
	magicMicrosLE = 0xA1B2C3D4
	magicNanosLE  = 0xA1B23C4D
	linkEthernet  = 1
	versionMajor  = 2
	versionMinor  = 4
	// MaxSnapLen caps per-record capture length to defend the reader
	// against corrupt files.
	MaxSnapLen = 262144
)

// ErrBadMagic indicates the file is not a pcap capture.
var ErrBadMagic = errors.New("pcap: bad magic number")

// Record is one captured frame.
type Record struct {
	Timestamp time.Time
	// OrigLen is the original frame length on the wire; len(Data) may be
	// smaller if the capture was truncated.
	OrigLen int
	Data    []byte
}

// Writer writes a libpcap capture file.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter writes the pcap global header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicrosLE)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	binary.LittleEndian.PutUint32(hdr[16:20], MaxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkEthernet)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// WriteRecord appends one frame.
func (w *Writer) WriteRecord(ts time.Time, frame []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(frame) > MaxSnapLen {
		return fmt.Errorf("pcap: frame %d bytes exceeds snaplen", len(frame))
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(frame)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(frame); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader reads a libpcap capture file.
type Reader struct {
	r      *bufio.Reader
	order  binary.ByteOrder
	nanos  bool
	teched bool
}

// NewReader parses the pcap global header. It accepts both byte orders and
// both time resolutions but requires an Ethernet link type.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	rd := &Reader{r: br}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == magicMicrosLE:
		rd.order = binary.LittleEndian
	case magicLE == magicNanosLE:
		rd.order, rd.nanos = binary.LittleEndian, true
	case magicBE == magicMicrosLE:
		rd.order = binary.BigEndian
	case magicBE == magicNanosLE:
		rd.order, rd.nanos = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	if link := rd.order.Uint32(hdr[20:24]); link != linkEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", link)
	}
	return rd, nil
}

// Next returns the next record, or io.EOF at end of file.
func (r *Reader) Next() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, fmt.Errorf("pcap: truncated record header: %w", err)
		}
		return Record{}, err
	}
	sec := int64(r.order.Uint32(hdr[0:4]))
	frac := int64(r.order.Uint32(hdr[4:8]))
	caplen := r.order.Uint32(hdr[8:12])
	origlen := r.order.Uint32(hdr[12:16])
	if caplen > MaxSnapLen {
		return Record{}, fmt.Errorf("pcap: record caplen %d exceeds snaplen", caplen)
	}
	data := make([]byte, caplen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("pcap: truncated record body: %w", err)
	}
	nanos := frac
	if !r.nanos {
		nanos *= 1000
	}
	return Record{
		Timestamp: time.Unix(sec, nanos).UTC(),
		OrigLen:   int(origlen),
		Data:      data,
	}, nil
}
