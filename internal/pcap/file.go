package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// libpcap file format constants (microsecond-resolution, little-endian
// variant written by this package; the reader also accepts big-endian and
// nanosecond magics).
const (
	magicMicrosLE = 0xA1B2C3D4
	magicNanosLE  = 0xA1B23C4D
	linkEthernet  = 1
	versionMajor  = 2
	versionMinor  = 4
	// MaxSnapLen caps per-record capture length to defend the reader
	// against corrupt files.
	MaxSnapLen = 262144
)

// ErrBadMagic indicates the file is not a pcap capture.
var ErrBadMagic = errors.New("pcap: bad magic number")

// Record is one captured frame.
type Record struct {
	Timestamp time.Time
	// OrigLen is the original frame length on the wire; len(Data) may be
	// smaller if the capture was truncated.
	OrigLen int
	Data    []byte
}

// Writer writes a libpcap capture file.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter writes the pcap global header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicrosLE)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	binary.LittleEndian.PutUint32(hdr[16:20], MaxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkEthernet)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// WriteRecord appends one frame.
func (w *Writer) WriteRecord(ts time.Time, frame []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(frame) > MaxSnapLen {
		return fmt.Errorf("pcap: frame %d bytes exceeds snaplen", len(frame))
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(frame)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(frame); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// ResyncPolicy bounds the reader's recovery from corrupt record
// headers. The zero value disables resync (the historical fail-fast
// behaviour).
type ResyncPolicy struct {
	// MaxResyncs is the number of times the reader may hunt forward for
	// the next plausible record header after hitting a corrupt one.
	// Zero disables resync; negative means unlimited.
	MaxResyncs int
	// MaxScanBytes bounds how far one hunt may scan before giving up.
	// Zero means the default (1 MiB).
	MaxScanBytes int
}

const (
	defaultMaxScanBytes = 1 << 20
	// maxResyncSkew bounds how far (in seconds) a resync candidate's
	// timestamp may drift from the last good record before the header is
	// judged implausible. Captures span hours, not years.
	maxResyncSkew = 366 * 24 * 3600
)

// Reader reads a libpcap capture file.
type Reader struct {
	r     *bufio.Reader
	order binary.ByteOrder
	nanos bool

	resync  ResyncPolicy
	lastSec int64 // seconds field of the last good record, 0 before any
	resyncs int
	skipped int64
}

// SetResync installs a recovery policy for corrupt record headers: when
// a header announces an impossible capture length, the reader scans
// forward for the next plausible header instead of failing, within the
// policy's budget. Undecodable bytes are skipped, never yielded.
func (r *Reader) SetResync(p ResyncPolicy) { r.resync = p }

// Resyncs reports how many corrupt-header recoveries succeeded.
func (r *Reader) Resyncs() int { return r.resyncs }

// SkippedBytes reports how many bytes resync scans have discarded.
func (r *Reader) SkippedBytes() int64 { return r.skipped }

// NewReader parses the pcap global header. It accepts both byte orders and
// both time resolutions but requires an Ethernet link type.
func NewReader(r io.Reader) (*Reader, error) {
	// The buffer is sized so a resync scan can always peek one full
	// max-size record plus the following record header (see
	// chainPlausible).
	br := bufio.NewReaderSize(r, MaxSnapLen+64)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	rd := &Reader{r: br}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == magicMicrosLE:
		rd.order = binary.LittleEndian
	case magicLE == magicNanosLE:
		rd.order, rd.nanos = binary.LittleEndian, true
	case magicBE == magicMicrosLE:
		rd.order = binary.BigEndian
	case magicBE == magicNanosLE:
		rd.order, rd.nanos = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	if link := rd.order.Uint32(hdr[20:24]); link != linkEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", link)
	}
	return rd, nil
}

// Next returns the next record, or io.EOF at end of file. With a
// resync policy installed (SetResync), corrupt record headers trigger a
// bounded forward scan for the next plausible header instead of an
// error.
func (r *Reader) Next() (Record, error) {
	for {
		hdr, err := r.r.Peek(16)
		if len(hdr) < 16 {
			if errors.Is(err, io.EOF) {
				if len(hdr) == 0 {
					return Record{}, io.EOF
				}
				return Record{}, fmt.Errorf("pcap: truncated record header: %w", io.ErrUnexpectedEOF)
			}
			return Record{}, err
		}
		sec := int64(r.order.Uint32(hdr[0:4]))
		frac := int64(r.order.Uint32(hdr[4:8]))
		caplen := r.order.Uint32(hdr[8:12])
		origlen := r.order.Uint32(hdr[12:16])
		if caplen > MaxSnapLen {
			badErr := fmt.Errorf("pcap: record caplen %d exceeds snaplen", caplen)
			if r.resync.MaxResyncs == 0 || (r.resync.MaxResyncs > 0 && r.resyncs >= r.resync.MaxResyncs) {
				return Record{}, badErr
			}
			if err := r.scanForward(badErr); err != nil {
				return Record{}, err
			}
			continue
		}
		if _, err := r.r.Discard(16); err != nil {
			return Record{}, err
		}
		data := make([]byte, caplen)
		if _, err := io.ReadFull(r.r, data); err != nil {
			return Record{}, fmt.Errorf("pcap: truncated record body: %w", err)
		}
		nanos := frac
		if !r.nanos {
			nanos *= 1000
		}
		r.lastSec = sec
		return Record{
			Timestamp: time.Unix(sec, nanos).UTC(),
			OrigLen:   int(origlen),
			Data:      data,
		}, nil
	}
}

// plausibleHeader judges whether 16 peeked bytes look like a record
// header: sane lengths, a sub-second fraction within its resolution,
// and a timestamp near the last good record.
func (r *Reader) plausibleHeader(hdr []byte) bool {
	sec := int64(r.order.Uint32(hdr[0:4]))
	frac := int64(r.order.Uint32(hdr[4:8]))
	caplen := r.order.Uint32(hdr[8:12])
	origlen := r.order.Uint32(hdr[12:16])
	if caplen == 0 || caplen > MaxSnapLen || origlen < caplen || origlen > MaxSnapLen {
		return false
	}
	limit := int64(1e6)
	if r.nanos {
		limit = 1e9
	}
	if frac >= limit {
		return false
	}
	if r.lastSec != 0 && (sec < r.lastSec-maxResyncSkew || sec > r.lastSec+maxResyncSkew) {
		return false
	}
	return true
}

// chainPlausible double-checks a resync candidate whose 16-byte header
// hdr has already passed plausibleHeader: the record it announces must
// end exactly at EOF or be followed by another plausible header.
// Field-level checks alone pass off-by-one alignments whose caplen
// happens to land in range; requiring the chain to continue rejects
// them.
func (r *Reader) chainPlausible(hdr []byte) bool {
	caplen := int(r.order.Uint32(hdr[8:12]))
	want := 16 + caplen + 16
	buf, err := r.r.Peek(want)
	if len(buf) >= want {
		return r.plausibleHeader(buf[16+caplen:])
	}
	if errors.Is(err, io.EOF) {
		return len(buf) == 16+caplen
	}
	// Couldn't see far enough for reasons other than EOF; accept and let
	// the packet decoder judge the frame.
	return true
}

// scanForward hunts byte-by-byte for the next plausible record header,
// bounded by the policy's scan budget. A falsely plausible header can
// still yield a garbage frame — that is the packet decoder's problem
// (the monitor counts those against its own decode budget).
func (r *Reader) scanForward(cause error) error {
	maxScan := r.resync.MaxScanBytes
	if maxScan <= 0 {
		maxScan = defaultMaxScanBytes
	}
	for scanned := 0; scanned < maxScan; scanned++ {
		if _, err := r.r.Discard(1); err != nil {
			return fmt.Errorf("pcap: resync hit end of file after skipping %d bytes (%v)", scanned, cause)
		}
		r.skipped++
		hdr, err := r.r.Peek(16)
		if len(hdr) < 16 {
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("pcap: resync hit end of file after skipping %d bytes (%v)", scanned+1, cause)
			}
			return err
		}
		if r.plausibleHeader(hdr) && r.chainPlausible(hdr) {
			r.resyncs++
			return nil
		}
	}
	return fmt.Errorf("pcap: resync gave up after scanning %d bytes (%v)", maxScan, cause)
}
