package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Errors returned by the layer decoders.
var (
	ErrShortPacket    = errors.New("pcap: packet too short")
	ErrBadVersion     = errors.New("pcap: unexpected IP version")
	ErrBadHeaderLen   = errors.New("pcap: header length field out of range")
	ErrUnsupported    = errors.New("pcap: unsupported protocol")
	ErrLengthMismatch = errors.New("pcap: length field disagrees with data")
)

// EtherType values understood by the decoder.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeIPv6 uint16 = 0x86DD
)

// IP protocol numbers understood by the decoder.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// MAC is a 6-octet Ethernet address.
type MAC [6]byte

// String renders the address in colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is a decoded Ethernet II header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
	Payload   []byte
}

// DecodeEthernet parses an Ethernet II frame.
func DecodeEthernet(b []byte) (Ethernet, error) {
	var e Ethernet
	if len(b) < 14 {
		return e, fmt.Errorf("%w: ethernet %d bytes", ErrShortPacket, len(b))
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	e.Payload = b[14:]
	return e, nil
}

// Encode serializes the header followed by the payload.
func (e Ethernet) Encode() []byte {
	out := make([]byte, 14+len(e.Payload))
	copy(out[0:6], e.Dst[:])
	copy(out[6:12], e.Src[:])
	binary.BigEndian.PutUint16(out[12:14], e.EtherType)
	copy(out[14:], e.Payload)
	return out
}

// IPv4 is a decoded IPv4 header (options preserved opaquely).
type IPv4 struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src, Dst netip.Addr
	Options  []byte
	Payload  []byte
}

// DecodeIPv4 parses an IPv4 packet and verifies its header checksum.
func DecodeIPv4(b []byte) (IPv4, error) {
	var p IPv4
	if len(b) < 20 {
		return p, fmt.Errorf("%w: ipv4 %d bytes", ErrShortPacket, len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return p, fmt.Errorf("%w: version %d", ErrBadVersion, v)
	}
	ihl := int(b[0]&0x0F) * 4
	if ihl < 20 || ihl > len(b) {
		return p, fmt.Errorf("%w: ihl %d", ErrBadHeaderLen, ihl)
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < ihl || total > len(b) {
		return p, fmt.Errorf("%w: total length %d of %d", ErrLengthMismatch, total, len(b))
	}
	if Checksum(b[:ihl]) != 0 {
		return p, errors.New("pcap: ipv4 header checksum mismatch")
	}
	p.TOS = b[1]
	p.ID = binary.BigEndian.Uint16(b[4:6])
	p.TTL = b[8]
	p.Protocol = b[9]
	p.Src = netip.AddrFrom4([4]byte(b[12:16]))
	p.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	if ihl > 20 {
		p.Options = b[20:ihl]
	}
	p.Payload = b[ihl:total]
	return p, nil
}

// Encode serializes the header (with computed checksum) and payload.
func (p IPv4) Encode() ([]byte, error) {
	if !p.Src.Is4() || !p.Dst.Is4() {
		return nil, fmt.Errorf("%w: IPv4 needs 4-byte addrs", ErrBadVersion)
	}
	if len(p.Options)%4 != 0 || len(p.Options) > 40 {
		return nil, fmt.Errorf("%w: options %d bytes", ErrBadHeaderLen, len(p.Options))
	}
	ihl := 20 + len(p.Options)
	total := ihl + len(p.Payload)
	if total > 0xFFFF {
		return nil, fmt.Errorf("%w: packet %d bytes", ErrLengthMismatch, total)
	}
	out := make([]byte, total)
	out[0] = 4<<4 | uint8(ihl/4)
	out[1] = p.TOS
	binary.BigEndian.PutUint16(out[2:4], uint16(total))
	binary.BigEndian.PutUint16(out[4:6], p.ID)
	out[8] = p.TTL
	out[9] = p.Protocol
	src, dst := p.Src.As4(), p.Dst.As4()
	copy(out[12:16], src[:])
	copy(out[16:20], dst[:])
	copy(out[20:ihl], p.Options)
	binary.BigEndian.PutUint16(out[10:12], Checksum(out[:ihl]))
	copy(out[ihl:], p.Payload)
	return out, nil
}

// IPv6 is a decoded IPv6 header. Extension headers are not supported; the
// simulator never emits them and the monitor treats them as undecodable.
type IPv6 struct {
	TrafficClass uint8
	HopLimit     uint8
	NextHeader   uint8
	Src, Dst     netip.Addr
	Payload      []byte
}

// DecodeIPv6 parses an IPv6 packet.
func DecodeIPv6(b []byte) (IPv6, error) {
	var p IPv6
	if len(b) < 40 {
		return p, fmt.Errorf("%w: ipv6 %d bytes", ErrShortPacket, len(b))
	}
	if v := b[0] >> 4; v != 6 {
		return p, fmt.Errorf("%w: version %d", ErrBadVersion, v)
	}
	plen := int(binary.BigEndian.Uint16(b[4:6]))
	if 40+plen > len(b) {
		return p, fmt.Errorf("%w: payload length %d of %d", ErrLengthMismatch, plen, len(b)-40)
	}
	p.TrafficClass = b[0]<<4 | b[1]>>4
	p.NextHeader = b[6]
	p.HopLimit = b[7]
	p.Src = netip.AddrFrom16([16]byte(b[8:24]))
	p.Dst = netip.AddrFrom16([16]byte(b[24:40]))
	p.Payload = b[40 : 40+plen]
	return p, nil
}

// Encode serializes the header and payload.
func (p IPv6) Encode() ([]byte, error) {
	if !p.Src.Is6() || !p.Dst.Is6() || p.Src.Is4In6() || p.Dst.Is4In6() {
		return nil, fmt.Errorf("%w: IPv6 needs 16-byte addrs", ErrBadVersion)
	}
	if len(p.Payload) > 0xFFFF {
		return nil, fmt.Errorf("%w: payload %d bytes", ErrLengthMismatch, len(p.Payload))
	}
	out := make([]byte, 40+len(p.Payload))
	out[0] = 6<<4 | p.TrafficClass>>4
	out[1] = p.TrafficClass << 4
	binary.BigEndian.PutUint16(out[4:6], uint16(len(p.Payload)))
	out[6] = p.NextHeader
	out[7] = p.HopLimit
	src, dst := p.Src.As16(), p.Dst.As16()
	copy(out[8:24], src[:])
	copy(out[24:40], dst[:])
	copy(out[40:], p.Payload)
	return out, nil
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// DecodeUDP parses a UDP datagram.
func DecodeUDP(b []byte) (UDP, error) {
	var u UDP
	if len(b) < 8 {
		return u, fmt.Errorf("%w: udp %d bytes", ErrShortPacket, len(b))
	}
	ulen := int(binary.BigEndian.Uint16(b[4:6]))
	if ulen < 8 || ulen > len(b) {
		return u, fmt.Errorf("%w: udp length %d of %d", ErrLengthMismatch, ulen, len(b))
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Payload = b[8:ulen]
	return u, nil
}

// Encode serializes the datagram, computing the checksum with the given
// IP-layer addresses.
func (u UDP) Encode(src, dst netip.Addr) ([]byte, error) {
	if 8+len(u.Payload) > 0xFFFF {
		return nil, fmt.Errorf("%w: udp payload %d bytes", ErrLengthMismatch, len(u.Payload))
	}
	out := make([]byte, 8+len(u.Payload))
	binary.BigEndian.PutUint16(out[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(out[2:4], u.DstPort)
	binary.BigEndian.PutUint16(out[4:6], uint16(len(out)))
	copy(out[8:], u.Payload)
	s, d := addrBytes(src), addrBytes(dst)
	ck := TransportChecksum(s, d, ProtoUDP, out)
	if ck == 0 {
		ck = 0xFFFF // RFC 768: transmitted zero means "no checksum"
	}
	binary.BigEndian.PutUint16(out[6:8], ck)
	return out, nil
}

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
)

// TCP is a decoded TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Options          []byte
	Payload          []byte
}

// DecodeTCP parses a TCP segment.
func DecodeTCP(b []byte) (TCP, error) {
	var t TCP
	if len(b) < 20 {
		return t, fmt.Errorf("%w: tcp %d bytes", ErrShortPacket, len(b))
	}
	doff := int(b[12]>>4) * 4
	if doff < 20 || doff > len(b) {
		return t, fmt.Errorf("%w: data offset %d", ErrBadHeaderLen, doff)
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	t.Flags = b[13] & 0x1F
	t.Window = binary.BigEndian.Uint16(b[14:16])
	if doff > 20 {
		t.Options = b[20:doff]
	}
	t.Payload = b[doff:]
	return t, nil
}

// Encode serializes the segment, computing the checksum with the given
// IP-layer addresses.
func (t TCP) Encode(src, dst netip.Addr) ([]byte, error) {
	if len(t.Options)%4 != 0 || len(t.Options) > 40 {
		return nil, fmt.Errorf("%w: tcp options %d bytes", ErrBadHeaderLen, len(t.Options))
	}
	doff := 20 + len(t.Options)
	out := make([]byte, doff+len(t.Payload))
	binary.BigEndian.PutUint16(out[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(out[2:4], t.DstPort)
	binary.BigEndian.PutUint32(out[4:8], t.Seq)
	binary.BigEndian.PutUint32(out[8:12], t.Ack)
	out[12] = uint8(doff/4) << 4
	out[13] = t.Flags
	binary.BigEndian.PutUint16(out[14:16], t.Window)
	copy(out[20:doff], t.Options)
	copy(out[doff:], t.Payload)
	s, d := addrBytes(src), addrBytes(dst)
	binary.BigEndian.PutUint16(out[16:18], TransportChecksum(s, d, ProtoTCP, out))
	return out, nil
}

// HasFlags reports whether every flag in mask is set.
func (t TCP) HasFlags(mask uint8) bool { return t.Flags&mask == mask }

func addrBytes(a netip.Addr) []byte {
	if a.Is4() {
		b := a.As4()
		return b[:]
	}
	b := a.As16()
	return b[:]
}
