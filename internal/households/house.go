package households

import (
	"math"
	"net/netip"
	"time"

	"dnscontext/internal/resolver"
	"dnscontext/internal/stats"
	"dnscontext/internal/zonedb"
)

// deviceKind is the behavioral archetype of a device.
type deviceKind uint8

const (
	kindPhone  deviceKind = iota // Android: Google DNS default, probes
	kindLaptop                   // browser with prefetching
	kindIoT                      // hard-coded endpoints, rare DNS
	kindP2P                      // high-port traffic, no DNS
)

// device is one host inside a house. The monitor cannot see devices (NAT),
// but their distinct stub caches and resolver choices shape the traffic.
type device struct {
	house *house
	kind  deviceKind
	stub  *resolver.Stub
	// retry is the kind-specific failure handling for wire lookups:
	// Android phones retry hard across servers, laptops follow the
	// resolv.conf ladder, IoT gear fires once and gives up.
	retry resolver.RetryPolicy
	// dot marks a device resolving over encrypted DNS (DoT): its lookups
	// are invisible to the monitor except as TCP/853 connections. This is
	// the trace-VISIBILITY knob (EncryptedDNSProb); the timing cost of
	// stream transports is modeled separately by Config.Transport and the
	// per-platform conns below.
	dot bool
	// conns holds the device's persistent-connection state per platform
	// (stream transports only; nil map for Do53, so the zero-transport
	// path allocates nothing).
	conns map[resolver.PlatformID]*resolver.ConnState
	// platformPick selects the resolver platform for each wire lookup.
	platformPick *stats.Weighted
	platforms    []resolver.PlatformID
	// workingSet is the set of sites this device habitually revisits.
	workingSet []*zonedb.Name
	// apps are the background services doing periodic transactions.
	apps []appProfile
}

// appProfile is one background app: a favorite name contacted periodically.
type appProfile struct {
	name   *zonedb.Name
	period time.Duration
}

// house is one residence: a NAT'd client address plus its devices.
type house struct {
	idx      int
	addr     netip.Addr
	devices  []*device
	nextID   uint16
	nextPort uint16

	hasGoogle     bool
	hasOpenDNS    bool
	hasCloudflare bool
	hasP2P        bool

	// pool is the household's shared site repertoire: different devices in
	// one home visit overlapping destinations (family members use the same
	// services), which is what gives a whole-house cache its value (§8).
	pool []*zonedb.Name
	// cdnPool is the household's recurring third-party object domains:
	// similar site tastes mean similar ad/CDN dependencies.
	cdnPool []*zonedb.Name
}

func (h *house) dnsID() uint16 {
	h.nextID++
	return h.nextID
}

func (h *house) ephemeralPort() uint16 {
	h.nextPort++
	if h.nextPort < 32768 {
		h.nextPort = 32768
	}
	return h.nextPort
}

// buildHouse constructs a house's device population and resolver
// configuration following the Table 1 observations.
func (g *Generator) buildHouse(idx int) *house {
	r := g.rng
	h := &house{
		idx:      idx,
		addr:     houseAddr(idx),
		nextPort: 32768 + uint16(r.Intn(8192)),
	}
	h.hasGoogle = r.Bool(g.cfg.GoogleHouseProb)
	h.hasOpenDNS = r.Bool(g.cfg.OpenDNSHouseProb)
	h.hasCloudflare = r.Bool(g.cfg.CloudflareHouseProb)
	h.hasP2P = r.Bool(g.cfg.P2PHouseProb)

	for i := 0; i < 2*g.cfg.WorkingSetSize; i++ {
		h.pool = append(h.pool, g.zones.Pick(r))
	}
	for i := 0; i < 4; i++ {
		h.cdnPool = append(h.cdnPool, g.pickEmbeddedGlobal())
	}

	phones := 0
	if h.hasGoogle {
		phones = 1 + r.Intn(2)
	}
	laptops := 1 + r.Intn(3)
	iot := r.Intn(2)

	for i := 0; i < phones; i++ {
		h.devices = append(h.devices, g.buildDevice(h, kindPhone))
	}
	for i := 0; i < laptops; i++ {
		h.devices = append(h.devices, g.buildDevice(h, kindLaptop))
	}
	for i := 0; i < iot; i++ {
		h.devices = append(h.devices, g.buildDevice(h, kindIoT))
	}
	if h.hasP2P {
		h.devices = append(h.devices, g.buildDevice(h, kindP2P))
	}
	return h
}

func (g *Generator) buildDevice(h *house, kind deviceKind) *device {
	r := g.rng
	d := &device{house: h, kind: kind}

	// Stub cache: small, and possibly TTL-violating.
	hold := time.Duration(0)
	if kind != kindP2P && r.Bool(g.cfg.TTLViolatorProb) {
		hold = time.Duration(stats.LogNormalFromMedian(
			g.cfg.ViolationHoldMedian.Seconds(), 1.5).Sample(r) * float64(time.Second))
	}
	d.stub = resolver.NewStub(512, hold)
	// Kind-specific retry behavior (no RNG: zero-fault runs must not
	// consume extra randomness here).
	switch kind {
	case kindPhone:
		d.retry = resolver.AndroidRetryPolicy()
	case kindIoT:
		d.retry = resolver.IoTRetryPolicy()
	default:
		d.retry = resolver.DefaultRetryPolicy()
	}
	if g.cfg.Faults.StaleHold > 0 && (kind == kindPhone || kind == kindLaptop) {
		// RFC 8767 serve-stale: phones and laptops fall back to expired
		// records when the resolver is unreachable; dumb gear does not.
		d.stub.StaleHold = g.cfg.Faults.StaleHold
	}
	if kind == kindPhone || kind == kindLaptop {
		d.dot = r.Bool(g.cfg.EncryptedDNSProb)
	}

	// Resolver preference: every device can reach the local ISP
	// resolvers; Android leans on Google; houses with third-party
	// configuration split laptop traffic accordingly.
	type pref struct {
		id resolver.PlatformID
		w  float64
	}
	prefs := []pref{{resolver.PlatformLocal, 1.0}}
	switch kind {
	case kindPhone:
		prefs = []pref{{resolver.PlatformLocal, 0.50}, {resolver.PlatformGoogle, 0.50}}
	case kindLaptop, kindIoT:
		if h.hasOpenDNS {
			prefs = append(prefs, pref{resolver.PlatformOpenDNS, 1.3})
		}
		if h.hasCloudflare {
			prefs = append(prefs, pref{resolver.PlatformCloudflare, 2.5})
		}
	}
	ws := make([]float64, len(prefs))
	d.platforms = make([]resolver.PlatformID, len(prefs))
	for i, p := range prefs {
		ws[i] = p.w
		d.platforms[i] = p.id
	}
	// Weights are positive by construction, so this cannot fail.
	d.platformPick, _ = stats.NewWeighted(ws)

	// Working set of habitually revisited sites: half drawn from the
	// household's shared repertoire, half personal.
	if kind == kindPhone || kind == kindLaptop {
		for i := 0; i < g.cfg.WorkingSetSize; i++ {
			if r.Bool(0.65) && len(h.pool) > 0 {
				d.workingSet = append(d.workingSet, h.pool[r.Intn(len(h.pool))])
			} else {
				d.workingSet = append(d.workingSet, g.zones.Pick(r))
			}
		}
		napps := poisson(r, g.cfg.AppsPerDevice)
		for i := 0; i < napps; i++ {
			appName := g.zones.Pick(r)
			if r.Bool(0.85) && len(h.pool) > 0 {
				// Apps cluster on a handful of per-house services, so
				// devices in one home repeatedly resolve the same names.
				appName = h.pool[r.Intn(min(6, len(h.pool)))]
			}
			// Background services sit behind stable, long-TTL API names;
			// resample a few times to prefer them.
			for try := 0; try < 3 && appName.TTL < 300*time.Second; try++ {
				appName = g.zones.Pick(r)
			}
			d.apps = append(d.apps, appProfile{
				name: appName,
				period: time.Duration(stats.LogNormalFromMedian(
					g.cfg.AppPeriodMedian.Seconds(), 0.6).Sample(r) * float64(time.Second)),
			})
		}
	}
	return d
}

// pickPlatform selects the resolver platform for one wire lookup.
func (d *device) pickPlatform(r *stats.RNG) resolver.PlatformID {
	return d.platforms[d.platformPick.Pick(r)]
}

// connState returns the device's persistent-connection state toward rec,
// allocating it on first use. Datagram platforms get nil — LookupConn
// then matches the historical LookupWith path exactly.
func (d *device) connState(pid resolver.PlatformID, rec *resolver.Recursive) *resolver.ConnState {
	if !rec.Transport().Kind().Stream() {
		return nil
	}
	if d.conns == nil {
		d.conns = make(map[resolver.PlatformID]*resolver.ConnState, 4)
	}
	cs := d.conns[pid]
	if cs == nil {
		cs = &resolver.ConnState{}
		d.conns[pid] = cs
	}
	return cs
}

// houseAddr places house idx at 10.1.x.y (see trace.HouseAddr).
func houseAddr(idx int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 1, byte(idx / 256), byte(idx % 256)})
}

// poisson draws a Poisson variate via inversion (small means only).
func poisson(r *stats.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}
