// Package households generates the synthetic residential workload that
// substitutes for the paper's CCZ trace: houses behind NAT, each with a
// mix of devices (Android phones, browsing laptops, IoT gear with
// hard-coded server addresses, peer-to-peer boxes), producing both DNS
// transactions and application connections on a shared discrete-event
// timeline.
//
// The generator's knobs are calibrated (see calibration_test.go) so the
// phenomena the paper measures emerge from mechanisms rather than being
// painted on: stub caches produce LC connections, browser link prefetch
// produces P connections and unused lookups, shared resolver caches split
// blocked connections into SC and R, and TTL-violating gear produces
// outdated-record use.
package households

import (
	"time"

	"dnscontext/internal/netsim"
	"dnscontext/internal/obs"
	"dnscontext/internal/zonedb"
)

// FaultsConfig injects failures into every client<->resolver path. The
// zero value is a pristine network and reproduces fault-free runs bit for
// bit (the fault hooks consume no randomness when disabled).
type FaultsConfig struct {
	// Loss is the per-transmission drop probability, applied independently
	// to the query and the response of every attempt.
	Loss float64
	// ExtraJitter adds an exponential jitter term (with this mean) to
	// every delivery, modeling congested access links.
	ExtraJitter time.Duration
	// LocalOutages schedules windows during which the Local (ISP)
	// resolver platform drops everything — the "resolver outage" scenario.
	// Times are relative to the observation window start (warmup shifting
	// is handled internally).
	LocalOutages []netsim.Window
	// TruncateOver marks responses with more than this many answers as
	// truncated over UDP, forcing a TCP retry. Zero disables truncation.
	TruncateOver int
	// StaleHold enables RFC 8767 serve-stale on phone and laptop stubs:
	// when the upstream resolver times out, a device may fall back to an
	// expired cached record retained up to this long past expiry.
	StaleHold time.Duration
}

// IsZero reports whether the configuration injects no faults at all.
func (f FaultsConfig) IsZero() bool {
	return f.Loss <= 0 && f.ExtraJitter <= 0 && len(f.LocalOutages) == 0 &&
		f.TruncateOver <= 0 && f.StaleHold <= 0
}

// TransportConfig selects the wire transport every resolver platform
// speaks (the simulation models a deployment-wide transport switch, the
// what-if question the paper leaves open). The zero value is Do53 over
// UDP and reproduces pre-transport runs bit for bit — stream state is
// then never allocated and no extra randomness is drawn.
type TransportConfig struct {
	// Kind names the transport: "" or "udp" (Do53), "tcp" (DoTCP,
	// RFC 7766), "dot" (DoT, RFC 7858), or "doh" (DoH, RFC 8484).
	Kind string
	// SessionResumption enables TLS session tickets for dot/doh, so
	// reconnects within the ticket lifetime pay a shortened handshake.
	SessionResumption bool
	// IdleTimeout overrides how long idle persistent connections are kept
	// (zero takes the transport's calibrated default, 10 s).
	IdleTimeout time.Duration
}

// IsZero reports whether the transport is the Do53 default.
func (t TransportConfig) IsZero() bool { return t.Kind == "" }

// Config parameterizes a generation run.
type Config struct {
	// Houses is the number of residences.
	Houses int
	// Duration is the observation window length.
	Duration time.Duration
	// Warmup is simulated before the window opens so device stubs and
	// shared resolver caches are in steady state, as the paper's were at
	// capture start. Warmup traffic is discarded and timestamps are
	// shifted so the window starts at zero.
	Warmup time.Duration
	// Seed drives all randomness.
	Seed uint64
	// Zone configures the synthetic namespace.
	Zone zonedb.Config

	// --- House composition ---

	// GoogleHouseProb is the probability a house has at least one Android
	// device (and therefore uses Google DNS); the paper observes 83.5% of
	// houses using Google.
	GoogleHouseProb float64
	// OpenDNSHouseProb / CloudflareHouseProb configure third-party
	// resolvers house-wide (paper: 25.3% / 3.8% of houses).
	OpenDNSHouseProb    float64
	CloudflareHouseProb float64
	// P2PHouseProb is the fraction of houses running peer-to-peer
	// software.
	P2PHouseProb float64

	// --- Per-device behavior ---

	// SessionsPerDay is the mean number of browsing sessions per browsing
	// device per day.
	SessionsPerDay float64
	// PagesPerSession is the mean page views in one session.
	PagesPerSession float64
	// EmbeddedDomainsPerPage is the mean number of third-party domains a
	// page pulls objects from.
	EmbeddedDomainsPerPage float64
	// PrefetchPerPage is the mean number of speculative link lookups the
	// browser issues per page view.
	PrefetchPerPage float64
	// PrefetchClickProb is the chance a prefetched link is eventually
	// clicked (the paper estimates 22.3% of speculative lookups are used).
	PrefetchClickProb float64
	// DualStackProb is the chance a wire lookup is accompanied by an AAAA
	// query. The namespace is v4-only, so these transactions never pair
	// with a connection — a major real-world source of the paper's 37.8%
	// unused lookups.
	DualStackProb float64
	// AppsPerDevice is the mean number of background apps (chat, sync,
	// telemetry) doing periodic transactions per device.
	AppsPerDevice float64
	// AppPeriodMedian is the median interval between one app's
	// transactions.
	AppPeriodMedian time.Duration
	// AppResolveAheadProb is the chance an app tick resolves its name
	// first and only connects minutes later (background refresh
	// scheduling) — a non-browser source of prefetched (P) connections.
	AppResolveAheadProb float64
	// DwellMedian is the median time a user spends on a page before the
	// next sequential page view.
	DwellMedian time.Duration
	// ClickDelayMedian is the median time between a speculative link
	// lookup and the user clicking that link (drives the paper's 310 s
	// median lookup-to-use gap for P connections).
	ClickDelayMedian time.Duration
	// ProbePeriodMedian is the median interval between Android
	// connectivity-check probes.
	ProbePeriodMedian time.Duration
	// TTLViolatorProb is the chance a device's stub cache ignores TTLs,
	// holding entries for an extended time (residential gear behavior the
	// paper observes through 22.2% of LC connections using expired
	// records).
	TTLViolatorProb float64
	// ViolationHoldMedian is the median extra hold time of violating
	// stubs.
	ViolationHoldMedian time.Duration

	// EncryptedDNSProb is the probability a browsing device uses
	// encrypted DNS (DoT) for all its lookups. The paper's §3 notes that
	// widespread encrypted DNS would make its passive study impossible;
	// setting this above zero quantifies the degradation: encrypted
	// lookups appear only as TCP connections to the resolver, and the
	// transactions that depend on them become unpairable. Zero (the
	// default) matches the paper's 2019 capture.
	EncryptedDNSProb float64
	// EncryptedDNSDoH selects DNS-over-HTTPS instead of DNS-over-TLS for
	// the encrypted devices: lookups then ride TCP/443 and are not even
	// identifiable by port, erasing the paper's §5.1 DoT check too.
	EncryptedDNSDoH bool

	// --- Blocked-connection timing ---

	// AppStartDelayMean is the mean gap between a DNS answer arriving and
	// the blocked connection's first packet (Figure 1's left mode).
	AppStartDelayMean time.Duration

	// SharedVisitProb is the chance a page view is echoed by another
	// device in the same house minutes later (family members sharing
	// links and interests). This cross-device same-name locality is what
	// gives a whole-house cache its §8 value.
	SharedVisitProb float64

	// --- Working set / revisit model ---

	// WorkingSetSize is the number of sites a device habitually revisits.
	WorkingSetSize int
	// RevisitProb is the chance a page view targets the working set
	// rather than a fresh popularity draw.
	RevisitProb float64

	// Faults injects packet loss, jitter, outages, and truncation into
	// the resolution path. The zero value reproduces fault-free behavior
	// exactly.
	Faults FaultsConfig

	// Transport switches every resolver platform to an encrypted/stream
	// transport (DoTCP/DoT/DoH). The zero value keeps the paper's Do53
	// and reproduces pre-transport runs bit for bit.
	Transport TransportConfig

	// Metrics, when non-nil, receives generator-side observability:
	// per-platform resolver counters (cache hits/misses/evictions, retry
	// and fault-path activity) and event-loop gauges from the simulation
	// engine. Instruments only record — they never feed back into the
	// simulation — so seeded runs are bit-identical with or without a
	// registry.
	Metrics *obs.Registry
}

// DefaultConfig returns the calibrated configuration used for the
// paper-scale reproduction (scaled by Houses and Duration).
func DefaultConfig() Config {
	return Config{
		Houses:   100,
		Duration: 24 * time.Hour,
		Warmup:   6 * time.Hour,
		Seed:     1,
		Zone:     zonedb.DefaultConfig(),

		GoogleHouseProb:     0.835,
		OpenDNSHouseProb:    0.253,
		CloudflareHouseProb: 0.038,
		P2PHouseProb:        0.22,

		SessionsPerDay:         10,
		PagesPerSession:        8,
		EmbeddedDomainsPerPage: 2.2,
		PrefetchPerPage:        2.0,
		PrefetchClickProb:      0.62,
		DualStackProb:          0.25,
		AppsPerDevice:          2.0,
		AppPeriodMedian:        8 * time.Minute,
		AppResolveAheadProb:    0.35,
		DwellMedian:            45 * time.Second,
		ClickDelayMedian:       3 * time.Minute,
		ProbePeriodMedian:      20 * time.Minute,
		TTLViolatorProb:        0.17,
		ViolationHoldMedian:    45 * time.Minute,

		AppStartDelayMean: 4 * time.Millisecond,

		SharedVisitProb: 0.22,

		WorkingSetSize: 12,
		RevisitProb:    0.68,
	}
}

// SmallConfig is a fast configuration for tests and examples: a handful of
// houses over a few simulated hours.
func SmallConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Houses = 12
	cfg.Duration = 6 * time.Hour
	cfg.Warmup = 3 * time.Hour
	cfg.Seed = seed
	cfg.Zone.NumNames = 1200
	cfg.Zone.CDNPoolSize = 120
	return cfg
}
