package households

import (
	"fmt"
	"math"
	"net/netip"
	"time"

	"dnscontext/internal/netsim"
	"dnscontext/internal/resolver"
	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
	"dnscontext/internal/zonedb"
)

// Ecosystem exposes the simulated resolution infrastructure behind a
// generated trace, for diagnostics and calibration.
type Ecosystem struct {
	Zones     *zonedb.DB
	Platforms map[resolver.PlatformID]*resolver.Recursive
	Profiles  []resolver.PlatformProfile
}

// Generator builds one synthetic observation window.
type Generator struct {
	cfg       Config
	sim       *netsim.Sim
	rng       *stats.RNG
	zones     *zonedb.DB
	auth      *resolver.Authority
	platforms map[resolver.PlatformID]*resolver.Recursive
	profiles  []resolver.PlatformProfile
	tm        *transferModel
	ds        *trace.Dataset
	houses    []*house
}

// Hard-coded external endpoints mimicking the paper's §5.1 examples: a
// retired public NTP server baked into TP-Link firmware, Ooma VoIP NTP,
// and AlarmNet security-monitoring servers.
var (
	deadNTPAddr  = netip.AddrFrom4([4]byte{192, 0, 2, 123})
	oomaNTPAddr  = netip.AddrFrom4([4]byte{198, 51, 100, 123})
	alarmNetAddr = netip.AddrFrom4([4]byte{198, 51, 100, 200})
)

// Generate synthesizes the two datasets for cfg. The returned dataset is
// time-sorted; the Ecosystem gives access to the resolver state after the
// run.
func Generate(cfg Config) (*trace.Dataset, *Ecosystem, error) {
	if cfg.Houses <= 0 {
		return nil, nil, fmt.Errorf("households: Houses must be positive, got %d", cfg.Houses)
	}
	if cfg.Duration <= 0 {
		return nil, nil, fmt.Errorf("households: Duration must be positive, got %v", cfg.Duration)
	}
	if cfg.Warmup < 0 {
		return nil, nil, fmt.Errorf("households: Warmup must not be negative, got %v", cfg.Warmup)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"GoogleHouseProb", cfg.GoogleHouseProb},
		{"OpenDNSHouseProb", cfg.OpenDNSHouseProb},
		{"CloudflareHouseProb", cfg.CloudflareHouseProb},
		{"P2PHouseProb", cfg.P2PHouseProb},
		{"PrefetchClickProb", cfg.PrefetchClickProb},
		{"DualStackProb", cfg.DualStackProb},
		{"TTLViolatorProb", cfg.TTLViolatorProb},
		{"RevisitProb", cfg.RevisitProb},
		{"SharedVisitProb", cfg.SharedVisitProb},
		{"AppResolveAheadProb", cfg.AppResolveAheadProb},
		{"EncryptedDNSProb", cfg.EncryptedDNSProb},
		{"Faults.Loss", cfg.Faults.Loss},
	} {
		if p.v < 0 || p.v > 1 {
			return nil, nil, fmt.Errorf("households: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	for i, w := range cfg.Faults.LocalOutages {
		if w.Start < 0 || w.End <= w.Start {
			return nil, nil, fmt.Errorf("households: Faults.LocalOutages[%d] = %v..%v not a valid window", i, w.Start, w.End)
		}
	}
	tkind, err := resolver.ParseTransport(cfg.Transport.Kind)
	if err != nil {
		return nil, nil, fmt.Errorf("households: %w", err)
	}
	g := &Generator{
		cfg: cfg,
		sim: netsim.New(),
		rng: stats.NewRNG(cfg.Seed),
		tm:  nil,
		ds:  &trace.Dataset{},
	}
	g.tm = newTransferModel(g.rng.Split())

	zones, err := zonedb.New(cfg.Zone, g.rng.Split())
	if err != nil {
		return nil, nil, err
	}
	g.zones = zones
	g.auth = resolver.NewAuthority(zones)
	g.profiles = resolver.DefaultProfiles()
	if !cfg.Faults.IsZero() {
		for i := range g.profiles {
			g.profiles[i].Faults.Loss = cfg.Faults.Loss
			g.profiles[i].Faults.ExtraJitter = cfg.Faults.ExtraJitter
			g.profiles[i].Faults.TruncateOver = cfg.Faults.TruncateOver
			if g.profiles[i].ID == resolver.PlatformLocal {
				// Outage windows are specified relative to the observation
				// window; the simulator clock starts Warmup earlier.
				for _, w := range cfg.Faults.LocalOutages {
					g.profiles[i].Faults.Outages = append(g.profiles[i].Faults.Outages,
						netsim.Window{Start: w.Start + cfg.Warmup, End: w.End + cfg.Warmup})
				}
			}
		}
	}
	if tkind.Stream() {
		for i := range g.profiles {
			g.profiles[i].Transport = tkind
			g.profiles[i].Stream = resolver.StreamConfig{
				SessionResumption: cfg.Transport.SessionResumption,
				IdleTimeout:       cfg.Transport.IdleTimeout,
			}
		}
	}
	g.platforms = make(map[resolver.PlatformID]*resolver.Recursive, len(g.profiles))
	for _, p := range g.profiles {
		g.platforms[p.ID] = resolver.NewRecursive(p, g.auth, g.rng.Split())
	}
	if reg := cfg.Metrics; reg != nil {
		for _, rec := range g.platforms {
			rec.Instrument(reg)
		}
		g.sim.Observe(
			reg.Counter("dnsctx_sim_events_total",
				"Discrete events executed by the simulation engine."),
			reg.Gauge("dnsctx_sim_queue_depth",
				"Pending events in the simulator queue (sampled after each event)."),
			reg.Gauge("dnsctx_sim_queue_depth_max",
				"High-water mark of the simulator event queue."),
		)
	}

	for i := 0; i < cfg.Houses; i++ {
		h := g.buildHouse(i)
		g.houses = append(g.houses, h)
		g.startHouse(h)
	}

	g.sim.RunUntil(cfg.Warmup + cfg.Duration)
	g.trim()
	g.ds.SortByTime()
	// The simulated resolvers hand each record its own small Answers
	// backing; repack them into shared blocks so downstream passes walk
	// contiguous memory instead of pointer-chasing tiny allocations.
	g.ds.CompactAnswers()
	eco := &Ecosystem{Zones: zones, Platforms: g.platforms, Profiles: g.profiles}
	return g.ds, eco, nil
}

// trim drops warmup traffic and records starting after the observation
// window, then shifts timestamps so the window starts at zero.
func (g *Generator) trim() {
	lo, hi := g.cfg.Warmup, g.cfg.Warmup+g.cfg.Duration
	dns := g.ds.DNS[:0]
	for _, d := range g.ds.DNS {
		if d.QueryTS >= lo && d.QueryTS <= hi {
			d.QueryTS -= lo
			d.TS -= lo
			dns = append(dns, d)
		}
	}
	g.ds.DNS = dns
	conns := g.ds.Conns[:0]
	for _, c := range g.ds.Conns {
		if c.TS >= lo && c.TS <= hi {
			c.TS -= lo
			conns = append(conns, c)
		}
	}
	g.ds.Conns = conns
}

// diurnal is the activity-rate multiplier at virtual time t: quiet
// nights, busy evenings, and busier weekends (the window starts on a
// Wednesday, like the paper's Feb 6, 2019 capture).
func diurnal(t time.Duration) float64 {
	hour := math.Mod(t.Hours(), 24)
	// Peak around 20:00, trough around 05:00.
	v := math.Max(0.2, 1+0.8*math.Sin(2*math.Pi*(hour-14)/24))
	// Day 0 is a Wednesday; days 3 and 4 are the weekend.
	day := int(t.Hours()/24) % 7
	if day == 3 || day == 4 {
		v *= 1.25
	}
	return v
}

// lookupOutcome is the application-visible result of resolving a name.
type lookupOutcome struct {
	// ready is when the answers are available to the application.
	ready   time.Duration
	answers []trace.Answer
	// wire is true when a DNS transaction crossed the monitored link.
	wire bool
	// fromCache is the shared resolver cache outcome (wire lookups only).
	fromCache bool
	platform  resolver.PlatformID
	// expired is true when the stub served a record past its TTL.
	expired bool
	rcode   uint8
}

// lookup resolves host for device d at virtual time now, consulting the
// device stub cache first and the device's resolver platforms otherwise.
// Wire lookups append to the DNS dataset.
func (g *Generator) lookup(d *device, now time.Duration, host string) lookupOutcome {
	if sl, ok := d.stub.Get(now, host); ok {
		return lookupOutcome{ready: now, answers: sl.Answers, expired: sl.Expired}
	}
	pid := d.pickPlatform(g.rng)
	rec := g.platforms[pid]
	res := rec.LookupConn(d.connState(pid, rec), now, host, d.retry)
	done := now + res.Duration

	if d.dot {
		// Encrypted DNS: the monitor sees only a TCP connection to the
		// resolver — no query, no answers. DoT is at least identifiable
		// by its port (853); DoH hides among ordinary HTTPS on 443.
		dnsPort := uint16(853)
		if g.cfg.EncryptedDNSDoH {
			dnsPort = 443
		}
		g.emitConn(now, d.house, res.Resolver, dnsPort, trace.TCP, transfer{
			origBytes: 120 + int64(g.rng.Intn(100)),
			respBytes: 200 + int64(g.rng.Intn(400)),
			duration:  res.Duration,
		})
		if len(res.Answers) > 0 {
			d.stub.Put(done, host, res.Answers)
		}
		return lookupOutcome{
			ready:     done,
			answers:   res.Answers,
			fromCache: res.FromCache,
			platform:  pid,
			rcode:     res.RCode,
		}
	}

	g.ds.DNS = append(g.ds.DNS, trace.DNSRecord{
		QueryTS:  now,
		TS:       done,
		Client:   d.house.addr,
		Resolver: res.Resolver,
		ID:       d.house.dnsID(),
		Query:    host,
		QType:    uint16(1),
		RCode:    res.RCode,
		Answers:  res.Answers,
		Retries:  uint8(res.Retries()),
		TC:       res.TCPFallback,
	})
	if len(res.Answers) > 0 {
		d.stub.Put(done, host, res.Answers)
	}
	if res.ServFail {
		// The resolver is unreachable; a serve-stale stub (RFC 8767) falls
		// back to an expired record rather than failing the application.
		if sl, ok := d.stub.GetStale(done, host); ok {
			return lookupOutcome{
				ready:    done,
				answers:  sl.Answers,
				wire:     true,
				platform: pid,
				expired:  true,
				rcode:    res.RCode,
			}
		}
	}
	// Dual-stack clients issue a companion AAAA query; our namespace is
	// v4-only, so the response is empty and the transaction never pairs
	// with a connection.
	if g.rng.Bool(g.cfg.DualStackProb) {
		g.ds.DNS = append(g.ds.DNS, trace.DNSRecord{
			QueryTS:  now,
			TS:       done + time.Duration(g.rng.Intn(2000))*time.Microsecond,
			Client:   d.house.addr,
			Resolver: res.Resolver,
			ID:       d.house.dnsID(),
			Query:    host,
			QType:    uint16(28),
			RCode:    0,
		})
	}
	return lookupOutcome{
		ready:     done,
		answers:   res.Answers,
		wire:      true,
		fromCache: res.FromCache,
		platform:  pid,
		rcode:     res.RCode,
	}
}

// emitConn appends one connection record.
func (g *Generator) emitConn(start time.Duration, h *house, remote netip.Addr, rport uint16, proto trace.Proto, tr transfer) {
	g.ds.Conns = append(g.ds.Conns, trace.ConnRecord{
		TS:        start,
		Duration:  tr.duration,
		Proto:     proto,
		Orig:      h.addr,
		OrigPort:  h.ephemeralPort(),
		Resp:      remote,
		RespPort:  rport,
		OrigBytes: tr.origBytes,
		RespBytes: tr.respBytes,
	})
}

// connFor resolves name for d and emits the paired connection, blocked on
// the lookup when the record was not locally available. It returns the
// connection start time, or ok=false when resolution failed.
func (g *Generator) connFor(d *device, now time.Duration, name *zonedb.Name) (time.Duration, bool) {
	lo := g.lookup(d, now, name.Host)
	if len(lo.answers) == 0 {
		return 0, false
	}
	var start time.Duration
	if lo.ready > now {
		// Blocked: the app connects as soon as the answer lands (however
		// it was resolved — clear-text or encrypted), after a small
		// processing delay (Figure 1's left mode).
		start = lo.ready + g.appStartDelay()
	} else {
		// Record on hand: connect immediately.
		start = now + g.appStartDelay()/4
	}
	remote := lo.answers[g.rng.Intn(len(lo.answers))].Addr
	factor := 1.0
	if lo.ready > now {
		factor = g.edgeFactor(lo.platform, name)
	}
	tr := g.tm.sample(name.Service, factor)
	proto := trace.TCP
	if name.Service == zonedb.ServiceWeb && g.rng.Bool(0.10) {
		proto = trace.UDP // QUIC, carried as a UDP "connection"
	}
	g.emitConn(start, d.house, remote, name.Port, proto, tr)
	return start, true
}

func (g *Generator) appStartDelay() time.Duration {
	return time.Duration(float64(g.cfg.AppStartDelayMean) * g.rng.ExpFloat64())
}

// edgeFactor models CDN edge-selection quality as a throughput multiplier
// keyed to the resolver platform that supplied the mapping (§7, Fig. 3
// bottom): Cloudflare's remote egress maps clients to farther edges most
// of the time; Google's tail is slightly better than the pack.
func (g *Generator) edgeFactor(pid resolver.PlatformID, name *zonedb.Name) float64 {
	if !name.CDN {
		return 1
	}
	switch pid {
	case resolver.PlatformCloudflare:
		if g.rng.Bool(0.75) {
			return 0.45
		}
		return 1
	case resolver.PlatformGoogle:
		if g.rng.Bool(0.25) {
			return 1.35
		}
		return 1
	default:
		return 1
	}
}

// startHouse arms every device's behavior loops.
func (g *Generator) startHouse(h *house) {
	for _, d := range g.devices(h) {
		switch d.kind {
		case kindPhone:
			g.scheduleBrowsing(d)
			g.scheduleProbe(d)
			g.scheduleApps(d)
		case kindLaptop:
			g.scheduleBrowsing(d)
			g.scheduleApps(d)
		case kindIoT:
			g.scheduleIoT(d)
		case kindP2P:
			g.scheduleP2P(d)
		}
	}
}

func (g *Generator) devices(h *house) []*device { return h.devices }

// --- Browsing ---

func (g *Generator) scheduleBrowsing(d *device) {
	meanGap := 24 * time.Hour / time.Duration(math.Max(g.cfg.SessionsPerDay, 0.01))
	gap := time.Duration(float64(meanGap) * g.rng.ExpFloat64() / diurnal(g.sim.Now()))
	g.sim.After(gap, func(now time.Duration) {
		if now > g.end() {
			return
		}
		pages := 1 + poisson(g.rng, g.cfg.PagesPerSession-1)
		g.pageView(d, now, g.nextSite(d), pages-1, true)
		g.scheduleBrowsing(d)
	})
}

// nextSite picks the target of a page view: a working-set revisit or a
// fresh popularity draw.
func (g *Generator) nextSite(d *device) *zonedb.Name {
	if len(d.workingSet) > 0 && g.rng.Bool(g.cfg.RevisitProb) {
		return d.workingSet[g.rng.Intn(len(d.workingSet))]
	}
	return g.zones.Pick(g.rng)
}

// pickPrefetchTarget chooses a link a page might point at. Links skew
// toward destinations the device has NOT visited recently — that is what
// makes speculative lookups worth issuing — so the pick is mostly a fresh
// popularity draw.
func (g *Generator) pickPrefetchTarget(d *device) *zonedb.Name {
	if len(d.workingSet) > 0 && g.rng.Bool(0.15) {
		return d.workingSet[g.rng.Intn(len(d.workingSet))]
	}
	// Links point at site front pages, which live on dedicated hosting
	// far more often than the CDN names that serve page objects.
	for i := 0; i < 3; i++ {
		if n := g.zones.Pick(g.rng); !n.CDN {
			return n
		}
	}
	return g.zones.Pick(g.rng)
}

// pickEmbeddedGlobal chooses a third-party object domain from the global
// namespace, biased toward CDN-hosted names.
func (g *Generator) pickEmbeddedGlobal() *zonedb.Name {
	for i := 0; i < 6; i++ {
		n := g.zones.Pick(g.rng)
		if n.CDN {
			return n
		}
	}
	return g.zones.Pick(g.rng)
}

// pickEmbedded chooses a third-party object domain for one page of d's
// house: half the time a household-recurring dependency, otherwise a
// global draw.
func (g *Generator) pickEmbedded(h *house) *zonedb.Name {
	if len(h.cdnPool) > 0 && g.rng.Bool(0.78) {
		return h.cdnPool[g.rng.Intn(len(h.cdnPool))]
	}
	return g.pickEmbeddedGlobal()
}

// pageView models one page load: the primary fetch, embedded third-party
// objects shortly after, speculative link prefetches, possible later
// clicks on those links, and the next sequential page after a dwell.
// Pages reached by clicking a prefetched link (sequential=false) still
// prefetch, but their links are never clicked — this bounds the click
// chain (real users have bounded attention) and keeps the page process
// subcritical.
func (g *Generator) pageView(d *device, now time.Duration, site *zonedb.Name, remaining int, sequential bool) {
	if now > g.end() {
		return
	}
	start, ok := g.connFor(d, now, site)
	if !ok {
		start = now
	}

	// Embedded objects: resolved and fetched while the page renders.
	k := poisson(g.rng, g.cfg.EmbeddedDomainsPerPage)
	for i := 0; i < k; i++ {
		name := g.pickEmbedded(d.house)
		at := start + time.Duration(50+g.rng.Intn(1200))*time.Millisecond
		g.sim.At(at, func(t time.Duration) {
			if t > g.end() {
				return
			}
			g.connFor(d, t, name)
		})
	}

	// Speculative link prefetch: lookup now, maybe click much later.
	kp := poisson(g.rng, g.cfg.PrefetchPerPage)
	for i := 0; i < kp; i++ {
		target := g.pickPrefetchTarget(d)
		at := start + time.Duration(200+g.rng.Intn(1800))*time.Millisecond
		click := sequential && g.rng.Bool(g.cfg.PrefetchClickProb)
		g.sim.At(at, func(t time.Duration) {
			if t > g.end() {
				return
			}
			g.lookup(d, t, target.Host)
			if click {
				delay := time.Duration(stats.LogNormalFromMedian(
					g.cfg.ClickDelayMedian.Seconds(), 0.9).Sample(g.rng) * float64(time.Second))
				g.sim.At(t+delay, func(ct time.Duration) {
					// A clicked link is a page view of its own, but does
					// not extend the sequential page chain.
					g.pageView(d, ct, target, 0, false)
				})
			}
		})
	}

	// Family co-activity: another device in the house follows the same
	// link a few minutes later.
	if g.rng.Bool(g.cfg.SharedVisitProb) {
		if other := g.otherBrowsingDevice(d); other != nil {
			at := now + time.Duration(30+g.rng.Intn(270))*time.Second
			g.sim.At(at, func(t time.Duration) {
				if t > g.end() {
					return
				}
				g.pageView(other, t, site, 0, false)
			})
		}
	}

	if sequential && remaining > 0 {
		dwell := time.Duration(stats.LogNormalFromMedian(
			g.cfg.DwellMedian.Seconds(), 1.1).Sample(g.rng) * float64(time.Second))
		next := g.nextSite(d)
		g.sim.At(now+dwell, func(t time.Duration) {
			g.pageView(d, t, next, remaining-1, true)
		})
	}
}

// otherBrowsingDevice picks a random browsing device in d's house other
// than d, or nil when the house has no other browser.
func (g *Generator) otherBrowsingDevice(d *device) *device {
	var others []*device
	for _, o := range d.house.devices {
		if o != d && (o.kind == kindPhone || o.kind == kindLaptop) {
			others = append(others, o)
		}
	}
	if len(others) == 0 {
		return nil
	}
	return others[g.rng.Intn(len(others))]
}

// --- Background apps ---

func (g *Generator) scheduleApps(d *device) {
	for i := range d.apps {
		g.scheduleAppTick(d, d.apps[i])
	}
}

func (g *Generator) scheduleAppTick(d *device, app appProfile) {
	gap := time.Duration(float64(app.period) * (0.6 + 0.8*g.rng.Float64()))
	g.sim.After(gap, func(now time.Duration) {
		if now > g.end() {
			return
		}
		if g.rng.Bool(g.cfg.AppResolveAheadProb) {
			// Resolve now, transact later: background refresh schedulers
			// resolve when the alarm fires and connect when the payload
			// is ready.
			g.lookup(d, now, app.name.Host)
			delay := time.Duration(2+g.rng.Intn(6)) * time.Minute
			g.sim.At(now+delay, func(t time.Duration) {
				if t > g.end() {
					return
				}
				g.connFor(d, t, app.name)
			})
		} else {
			g.connFor(d, now, app.name)
		}
		g.scheduleAppTick(d, app)
	})
}

// --- Android connectivity probes ---

func (g *Generator) scheduleProbe(d *device) {
	gap := time.Duration(stats.LogNormalFromMedian(
		g.cfg.ProbePeriodMedian.Seconds(), 0.5).Sample(g.rng) * float64(time.Second))
	g.sim.After(gap, func(now time.Duration) {
		if now > g.end() {
			return
		}
		g.connForVia(d, now, g.zones.ConnectivityCheck, resolver.PlatformGoogle)
		g.scheduleProbe(d)
	})
}

// --- IoT gear with hard-coded servers ---

func (g *Generator) scheduleIoT(d *device) {
	// Each IoT device is one archetype.
	switch d.house.idx%3 + int(g.rng.Uint64n(2)) {
	case 0:
		g.scheduleHardcoded(d, deadNTPAddr, 123, trace.UDP, 45*time.Minute, true)
	case 1:
		g.scheduleHardcoded(d, oomaNTPAddr, 123, trace.UDP, 60*time.Minute, false)
	default:
		g.scheduleHardcoded(d, alarmNetAddr, 443, trace.TCP, 60*time.Minute, false)
	}
}

func (g *Generator) scheduleHardcoded(d *device, addr netip.Addr, port uint16, proto trace.Proto, period time.Duration, dead bool) {
	gap := time.Duration(float64(period) * (0.7 + 0.6*g.rng.Float64()))
	g.sim.After(gap, func(now time.Duration) {
		if now > g.end() {
			return
		}
		var tr transfer
		if port == 123 {
			tr = g.tm.ntpTransfer(dead)
		} else {
			tr = g.tm.sample(zonedb.ServiceAPI, 1)
		}
		g.emitConn(now, d.house, addr, port, proto, tr)
		g.scheduleHardcoded(d, addr, port, proto, period, dead)
	})
}

// --- Peer-to-peer ---

func (g *Generator) scheduleP2P(d *device) {
	gap := time.Duration(float64(40*time.Minute) * g.rng.ExpFloat64())
	g.sim.After(gap, func(now time.Duration) {
		if now > g.end() {
			return
		}
		n := 9 + g.rng.Intn(26)
		for i := 0; i < n; i++ {
			at := now + time.Duration(g.rng.Intn(300))*time.Second
			g.sim.At(at, func(t time.Duration) {
				if t > g.end() {
					return
				}
				proto := trace.TCP
				if g.rng.Bool(0.5) {
					proto = trace.UDP
				}
				g.emitConn(t, d.house, g.peerAddr(), uint16(10000+g.rng.Intn(50000)), proto, g.tm.p2pTransfer())
			})
		}
		g.scheduleP2P(d)
	})
}

// peerAddr draws a random remote peer (never colliding with server or
// resolver space).
func (g *Generator) peerAddr() netip.Addr {
	return netip.AddrFrom4([4]byte{45, byte(g.rng.Intn(256)), byte(g.rng.Intn(256)), byte(1 + g.rng.Intn(254))})
}

// end is the virtual time at which behaviors stop (warmup plus window).
func (g *Generator) end() time.Duration { return g.cfg.Warmup + g.cfg.Duration }

// connForVia is connFor with a forced resolver platform (used for Android
// connectivity probes, which always use the phone's configured Google
// DNS). It falls back to the device's normal choice when the platform is
// not configured in the simulation.
func (g *Generator) connForVia(d *device, now time.Duration, name *zonedb.Name, pid resolver.PlatformID) {
	if sl, ok := d.stub.Get(now, name.Host); ok {
		if len(sl.Answers) == 0 {
			return
		}
		start := now + g.appStartDelay()/4
		tr := g.tm.sample(name.Service, 1)
		g.emitConn(start, d.house, sl.Answers[g.rng.Intn(len(sl.Answers))].Addr, name.Port, trace.TCP, tr)
		return
	}
	rec, ok := g.platforms[pid]
	if !ok {
		g.connFor(d, now, name)
		return
	}
	res := rec.LookupConn(d.connState(pid, rec), now, name.Host, d.retry)
	done := now + res.Duration
	g.ds.DNS = append(g.ds.DNS, trace.DNSRecord{
		QueryTS: now, TS: done, Client: d.house.addr, Resolver: res.Resolver,
		ID: d.house.dnsID(), Query: name.Host, QType: 1, RCode: res.RCode, Answers: res.Answers,
		Retries: uint8(res.Retries()), TC: res.TCPFallback,
	})
	if len(res.Answers) == 0 {
		return
	}
	d.stub.Put(done, name.Host, res.Answers)
	start := done + g.appStartDelay()
	tr := g.tm.sample(name.Service, 1)
	g.emitConn(start, d.house, res.Answers[g.rng.Intn(len(res.Answers))].Addr, name.Port, trace.TCP, tr)
}
