package households

import (
	"testing"
	"time"

	"dnscontext/internal/resolver"
	"dnscontext/internal/trace"
)

func generateSmall(t *testing.T, seed uint64) (*trace.Dataset, *Ecosystem) {
	t.Helper()
	ds, eco, err := Generate(SmallConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds, eco
}

func TestGenerateValidation(t *testing.T) {
	cfg := SmallConfig(1)
	cfg.Houses = 0
	if _, _, err := Generate(cfg); err == nil {
		t.Error("zero houses accepted")
	}
	cfg = SmallConfig(1)
	cfg.Duration = 0
	if _, _, err := Generate(cfg); err == nil {
		t.Error("zero duration accepted")
	}
	cfg = SmallConfig(1)
	cfg.Zone.NumNames = 0
	if _, _, err := Generate(cfg); err == nil {
		t.Error("bad zone config accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := generateSmall(t, 7)
	b, _ := generateSmall(t, 7)
	if len(a.DNS) != len(b.DNS) || len(a.Conns) != len(b.Conns) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", len(a.DNS), len(a.Conns), len(b.DNS), len(b.Conns))
	}
	for i := range a.DNS {
		if a.DNS[i].Query != b.DNS[i].Query || a.DNS[i].TS != b.DNS[i].TS {
			t.Fatalf("DNS record %d differs", i)
		}
	}
	for i := range a.Conns {
		if a.Conns[i] != b.Conns[i] {
			t.Fatalf("conn %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := generateSmall(t, 1)
	b, _ := generateSmall(t, 2)
	if len(a.Conns) == len(b.Conns) && len(a.DNS) == len(b.DNS) {
		// Same sizes are possible but identical first records are not.
		if len(a.Conns) > 0 && a.Conns[0] == b.Conns[0] && a.DNS[0].TS == b.DNS[0].TS {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestRecordsWithinWindow(t *testing.T) {
	cfg := SmallConfig(3)
	ds, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.DNS {
		d := &ds.DNS[i]
		if d.QueryTS < 0 || d.QueryTS > cfg.Duration {
			t.Fatalf("DNS record outside window: %v", d.QueryTS)
		}
		if d.TS < d.QueryTS {
			t.Fatalf("DNS response before query: %v < %v", d.TS, d.QueryTS)
		}
	}
	for i := range ds.Conns {
		c := &ds.Conns[i]
		if c.TS < 0 || c.TS > cfg.Duration {
			t.Fatalf("conn outside window: %v", c.TS)
		}
		if c.Duration < 0 || c.OrigBytes < 0 || c.RespBytes < 0 {
			t.Fatalf("negative conn fields: %+v", c)
		}
	}
}

func TestDatasetsSorted(t *testing.T) {
	ds, _ := generateSmall(t, 4)
	for i := 1; i < len(ds.DNS); i++ {
		if ds.DNS[i].TS < ds.DNS[i-1].TS {
			t.Fatal("DNS not sorted")
		}
	}
	for i := 1; i < len(ds.Conns); i++ {
		if ds.Conns[i].TS < ds.Conns[i-1].TS {
			t.Fatal("conns not sorted")
		}
	}
}

func TestClientsAreHouses(t *testing.T) {
	cfg := SmallConfig(5)
	ds, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	houses := make(map[int]bool)
	for i := range ds.DNS {
		h := trace.HouseOf(ds.DNS[i].Client)
		if h < 0 || h >= cfg.Houses {
			t.Fatalf("DNS client %v not a house", ds.DNS[i].Client)
		}
		houses[h] = true
	}
	for i := range ds.Conns {
		h := trace.HouseOf(ds.Conns[i].Orig)
		if h < 0 || h >= cfg.Houses {
			t.Fatalf("conn orig %v not a house", ds.Conns[i].Orig)
		}
	}
	if len(houses) < cfg.Houses/2 {
		t.Fatalf("only %d/%d houses active", len(houses), cfg.Houses)
	}
}

func TestResolversAreKnownPlatforms(t *testing.T) {
	ds, eco := generateSmall(t, 6)
	for i := range ds.DNS {
		if _, ok := resolver.PlatformOf(ds.DNS[i].Resolver, eco.Profiles); !ok {
			t.Fatalf("unknown resolver %v", ds.DNS[i].Resolver)
		}
	}
}

func TestNoDNSPort53Conns(t *testing.T) {
	ds, _ := generateSmall(t, 7)
	for i := range ds.Conns {
		if ds.Conns[i].RespPort == 53 || ds.Conns[i].RespPort == 853 {
			t.Fatalf("DNS-port connection leaked into conn log: %+v", ds.Conns[i])
		}
	}
}

func TestTrafficMixPresent(t *testing.T) {
	ds, eco := generateSmall(t, 8)
	var udp, tcp, highport, ntp, probes int
	for i := range ds.Conns {
		c := &ds.Conns[i]
		if c.Proto == trace.UDP {
			udp++
		} else {
			tcp++
		}
		if c.OrigPort >= 1024 && c.RespPort >= 1024 {
			highport++
		}
		if c.RespPort == 123 {
			ntp++
		}
	}
	for i := range ds.DNS {
		if ds.DNS[i].Query == eco.Zones.ConnectivityCheck.Host {
			probes++
		}
	}
	if udp == 0 || tcp == 0 || highport == 0 || ntp == 0 || probes == 0 {
		t.Fatalf("missing traffic class: udp=%d tcp=%d highport=%d ntp=%d probes=%d",
			udp, tcp, highport, ntp, probes)
	}
	if tcp < udp {
		t.Fatalf("TCP (%d) should dominate UDP (%d), as in the paper (88/12)", tcp, udp)
	}
}

func TestAAAACompanionsUnanswered(t *testing.T) {
	ds, _ := generateSmall(t, 9)
	var aaaa, answered int
	for i := range ds.DNS {
		if ds.DNS[i].QType == 28 {
			aaaa++
			if len(ds.DNS[i].Answers) > 0 {
				answered++
			}
		}
	}
	if aaaa == 0 {
		t.Fatal("no AAAA companion lookups generated")
	}
	if answered != 0 {
		t.Fatalf("%d AAAA lookups carry answers in a v4-only namespace", answered)
	}
}

func TestWarmupTrimmed(t *testing.T) {
	cfg := SmallConfig(10)
	cfg.Warmup = 2 * time.Hour
	ds, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Conns) == 0 {
		t.Fatal("empty trace")
	}
	// Records must start at (shifted) zero; activity should appear within
	// the first minutes of the window since caches are warm.
	if ds.Conns[0].TS > 10*time.Minute {
		t.Fatalf("first conn at %v; warmup shift broken?", ds.Conns[0].TS)
	}
}

func TestDiurnalShape(t *testing.T) {
	if diurnal(5*time.Hour) >= diurnal(20*time.Hour) {
		t.Fatal("5am busier than 8pm")
	}
	for h := 0; h < 48; h++ {
		if v := diurnal(time.Duration(h) * time.Hour); v < 0.2 || v > 1.81 {
			t.Fatalf("diurnal(%dh) = %v out of range", h, v)
		}
	}
}

func TestPoisson(t *testing.T) {
	r := statsRNG()
	if poisson(r, 0) != 0 || poisson(r, -1) != 0 {
		t.Fatal("non-positive mean should yield 0")
	}
	const draws = 20000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += poisson(r, 3.0)
	}
	mean := float64(sum) / draws
	if mean < 2.85 || mean > 3.15 {
		t.Fatalf("poisson mean %.3f, want ~3", mean)
	}
}

func TestTransferModelShapes(t *testing.T) {
	tm := newTransferModel(statsRNG())
	classes := []struct {
		name string
		f    func() transfer
	}{
		{"p2p", tm.p2pTransfer},
		{"ntp-dead", func() transfer { return tm.ntpTransfer(true) }},
		{"ntp-live", func() transfer { return tm.ntpTransfer(false) }},
	}
	for _, c := range classes {
		tr := c.f()
		if tr.origBytes < 0 || tr.respBytes < 0 || tr.duration < 0 {
			t.Errorf("%s: negative fields %+v", c.name, tr)
		}
	}
	if tm.ntpTransfer(true).respBytes != 0 {
		t.Error("dead NTP server answered")
	}
}

func TestEncryptedDNSWhatIf(t *testing.T) {
	cfg := SmallConfig(21)
	cfg.EncryptedDNSProb = 1.0 // every browsing device on DoT
	ds, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dot, other853 int
	for i := range ds.Conns {
		if ds.Conns[i].RespPort == 853 {
			dot++
			if ds.Conns[i].Proto != trace.TCP {
				t.Fatal("DoT connection not TCP")
			}
		}
	}
	if dot == 0 {
		t.Fatal("full DoT adoption produced no TCP/853 connections")
	}
	_ = other853
	// The visible DNS dataset should be a small remnant (IoT cloud
	// lookups do not exist; only non-browsing lookups remain).
	base, _, err := Generate(SmallConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.DNS) > len(base.DNS)/2 {
		t.Fatalf("DoT hid too little: %d vs baseline %d DNS records", len(ds.DNS), len(base.DNS))
	}
}

func TestEncryptedDNSZeroByDefault(t *testing.T) {
	ds, _ := generateSmall(t, 22)
	for i := range ds.Conns {
		if ds.Conns[i].RespPort == 853 {
			t.Fatal("DoT connection present at default config")
		}
	}
}

func TestEncryptedDNSDoHMode(t *testing.T) {
	cfg := SmallConfig(23)
	cfg.EncryptedDNSProb = 1.0
	cfg.EncryptedDNSDoH = true
	ds, eco, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resolverAddrs := make(map[string]bool)
	for _, p := range eco.Profiles {
		for _, a := range p.Addrs {
			resolverAddrs[a.String()] = true
		}
	}
	var doh, dot int
	for i := range ds.Conns {
		c := &ds.Conns[i]
		if c.RespPort == 853 {
			dot++
		}
		if c.RespPort == 443 && resolverAddrs[c.Resp.String()] {
			doh++
		}
	}
	if dot != 0 {
		t.Fatalf("DoH mode still produced %d DoT conns", dot)
	}
	if doh == 0 {
		t.Fatal("DoH mode produced no resolver-443 conns")
	}
}

func TestDiurnalWeekendBoost(t *testing.T) {
	// Day 0 = Wednesday; day 3 = Saturday. Same hour, weekend busier.
	wed := diurnal(20 * time.Hour)
	sat := diurnal(3*24*time.Hour + 20*time.Hour)
	if sat <= wed {
		t.Fatalf("Saturday evening (%v) not busier than Wednesday (%v)", sat, wed)
	}
}

func TestGenerateRejectsBadProbabilities(t *testing.T) {
	cfg := SmallConfig(1)
	cfg.PrefetchClickProb = 1.5
	if _, _, err := Generate(cfg); err == nil {
		t.Error("probability > 1 accepted")
	}
	cfg = SmallConfig(1)
	cfg.EncryptedDNSProb = -0.1
	if _, _, err := Generate(cfg); err == nil {
		t.Error("negative probability accepted")
	}
	cfg = SmallConfig(1)
	cfg.Warmup = -time.Hour
	if _, _, err := Generate(cfg); err == nil {
		t.Error("negative warmup accepted")
	}
}
