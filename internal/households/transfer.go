package households

import (
	"time"

	"dnscontext/internal/stats"
	"dnscontext/internal/zonedb"
)

// transfer describes one application transaction's volume and duration.
type transfer struct {
	origBytes int64
	respBytes int64
	duration  time.Duration
}

// transferModel samples transaction shapes per service class. Rates are
// bits per second; rateFactor lets the caller degrade throughput (e.g. a
// resolver platform mapping the client to a distant CDN edge).
type transferModel struct {
	rng *stats.RNG

	webResp  stats.LogNormal
	apiResp  stats.LogNormal
	vidResp  stats.LogNormal
	dlResp   stats.LogNormal
	chatResp stats.LogNormal

	// rate is the achievable transfer rate for short flows.
	rate stats.LogNormal
	// idle is the keep-alive tail web browsers leave on connections.
	idle stats.LogNormal
	// rtt is the handshake/setup cost added to every TCP transaction.
	rtt stats.LogNormal
}

func newTransferModel(rng *stats.RNG) *transferModel {
	return &transferModel{
		rng:      rng,
		webResp:  stats.LogNormalFromMedian(22_000, 1.6),     // ~22 KB objects
		apiResp:  stats.LogNormalFromMedian(2_500, 1.1),      // small JSON
		vidResp:  stats.LogNormalFromMedian(60_000_000, 1.3), // tens of MB
		dlResp:   stats.LogNormalFromMedian(25_000_000, 1.8), // bulk
		chatResp: stats.LogNormalFromMedian(30_000, 1.2),     // long trickle
		rate:     stats.LogNormalFromMedian(12_000_000, 1.0), // ~12 Mbps
		idle:     stats.LogNormalFromMedian(12, 1.1),         // seconds
		rtt:      stats.LogNormalFromMedian(0.035, 0.6),      // seconds
	}
}

// sample draws a transaction for the given service class. rateFactor
// multiplies the achievable rate (1.0 = neutral).
func (m *transferModel) sample(class zonedb.ServiceClass, rateFactor float64) transfer {
	r := m.rng
	if rateFactor <= 0 {
		rateFactor = 1
	}
	var t transfer
	rate := m.rate.Sample(r) * rateFactor

	secsFor := func(bytes float64) float64 { return bytes * 8 / rate }

	switch class {
	case zonedb.ServiceWeb:
		t.origBytes = int64(stats.Clamp(m.apiResp.Sample(r)/3, 200, 50_000))
		t.respBytes = int64(m.webResp.Sample(r))
		dur := m.rtt.Sample(r) + secsFor(float64(t.respBytes))
		// Most browser connections linger with keep-alive; some close
		// immediately after the object (the short-T mass that makes DNS a
		// visible fraction of the transaction in Fig. 2 bottom).
		if r.Bool(0.90) {
			dur += m.idle.Sample(r)
		}
		t.duration = secsToDur(dur)
	case zonedb.ServiceAPI:
		t.origBytes = int64(stats.Clamp(m.apiResp.Sample(r)/2, 100, 20_000))
		t.respBytes = int64(m.apiResp.Sample(r))
		dur := m.rtt.Sample(r) + secsFor(float64(t.respBytes))
		if r.Bool(0.85) {
			dur += m.idle.Sample(r)
		}
		t.duration = secsToDur(dur)
	case zonedb.ServiceVideo:
		t.origBytes = int64(stats.Clamp(m.apiResp.Sample(r), 500, 100_000))
		t.respBytes = int64(m.vidResp.Sample(r))
		// Streaming is paced, not rate-limited: duration tracks content
		// length (~5 Mbps effective).
		t.duration = secsToDur(float64(t.respBytes) * 8 / (5_000_000 * stats.Clamp(rateFactor, 0.3, 2)))
	case zonedb.ServiceDownload:
		t.origBytes = int64(stats.Clamp(m.apiResp.Sample(r)/2, 100, 10_000))
		t.respBytes = int64(m.dlResp.Sample(r))
		t.duration = secsToDur(m.rtt.Sample(r) + secsFor(float64(t.respBytes)))
	case zonedb.ServiceChat:
		t.origBytes = int64(m.apiResp.Sample(r))
		t.respBytes = int64(m.chatResp.Sample(r))
		// Long-lived low-rate connection.
		t.duration = secsToDur(stats.LogNormalFromMedian(240, 1.0).Sample(r))
	case zonedb.ServiceProbe:
		t.origBytes = int64(stats.Clamp(m.apiResp.Sample(r)/10, 120, 600))
		t.respBytes = int64(stats.Clamp(m.apiResp.Sample(r)/8, 150, 900))
		dur := m.rtt.Sample(r) * 4
		if r.Bool(0.5) {
			dur += m.idle.Sample(r)
		}
		t.duration = secsToDur(dur)
	default:
		t.origBytes, t.respBytes = 100, 100
		t.duration = secsToDur(m.rtt.Sample(r))
	}
	if t.duration < time.Millisecond {
		t.duration = time.Millisecond
	}
	return t
}

// p2pTransfer draws a peer-to-peer flow: heavy-tailed sizes, both
// directions active.
func (m *transferModel) p2pTransfer() transfer {
	r := m.rng
	up := stats.Pareto{Xm: 400, Alpha: 1.1}.Sample(r)
	down := stats.Pareto{Xm: 400, Alpha: 1.05}.Sample(r)
	up = stats.Clamp(up, 0, 2e9)
	down = stats.Clamp(down, 0, 2e9)
	dur := stats.LogNormalFromMedian(25, 1.5).Sample(m.rng)
	return transfer{
		origBytes: int64(up),
		respBytes: int64(down),
		duration:  secsToDur(dur),
	}
}

// ntpTransfer is a tiny UDP exchange (or a failed one to a dead server).
func (m *transferModel) ntpTransfer(dead bool) transfer {
	if dead {
		return transfer{origBytes: 48, respBytes: 0, duration: 0}
	}
	return transfer{origBytes: 48, respBytes: 48, duration: secsToDur(m.rtt.Sample(m.rng))}
}

func secsToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
