package households

import (
	"testing"
	"time"

	"dnscontext/internal/stats"
	"dnscontext/internal/zonedb"
)

func statsRNG() *stats.RNG { return stats.NewRNG(12345) }

// calibrationConfig is the scale the calibration assertions run at: large
// enough for the emergent statistics to stabilize, small enough to keep
// the suite fast.
func calibrationConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Houses = 50
	cfg.Seed = seed
	return cfg
}

// TestCalibrationTransferDurations pins the transaction-duration regime
// that §6 depends on: most web transactions outlive their DNS lookup by
// two orders of magnitude.
func TestCalibrationTransferDurations(t *testing.T) {
	tm := newTransferModel(statsRNG())
	e := stats.NewECDF(0)
	for i := 0; i < 20000; i++ {
		e.Add(tm.sample(zonedb.ServiceWeb, 1).duration.Seconds())
	}
	if med := e.Median(); med < 2 || med > 60 {
		t.Fatalf("web duration median %.2fs outside [2,60]", med)
	}
	if short := e.FractionAtMost(0.5); short < 0.03 || short > 0.35 {
		t.Fatalf("short-transaction mass %.3f outside [0.03,0.35]", short)
	}
}

// TestCalibrationResolverMix asserts the Table 1 shape: the local ISP
// resolvers dominate, Google is second, and every platform appears.
func TestCalibrationResolverMix(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are not -short")
	}
	ds, eco, err := Generate(calibrationConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for i := range ds.DNS {
		id, _ := platformOfAddr(eco, ds.DNS[i].Resolver)
		counts[id]++
	}
	total := len(ds.DNS)
	frac := func(name string) float64 { return float64(counts[name]) / float64(total) }
	if f := frac("Local"); f < 0.60 || f > 0.85 {
		t.Errorf("Local lookup share %.3f outside [0.60,0.85] (paper: 0.728)", f)
	}
	if f := frac("Google"); f < 0.08 || f > 0.30 {
		t.Errorf("Google lookup share %.3f outside [0.08,0.30] (paper: 0.129)", f)
	}
	if counts["OpenDNS"] == 0 {
		t.Error("OpenDNS unused")
	}
	if frac("Local") < frac("Google") || frac("Google") < frac("OpenDNS") {
		t.Errorf("platform ordering broken: %v", counts)
	}
}

func platformOfAddr(eco *Ecosystem, addr interface{ String() string }) (string, bool) {
	for _, p := range eco.Profiles {
		for _, a := range p.Addrs {
			if a.String() == addr.String() {
				return p.ID.String(), true
			}
		}
	}
	return "", false
}

// TestCalibrationPlatformHitRates asserts the §7 ordering of shared-cache
// hit rates: Cloudflare > Local > OpenDNS >> Google (paper: 83.6 / 71.2 /
// 58.8 / 23.0). These are the generator-internal ground-truth rates.
func TestCalibrationPlatformHitRates(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are not -short")
	}
	cfg := calibrationConfig(13)
	// Force a few Cloudflare houses so its estimate is meaningful at this
	// scale.
	cfg.CloudflareHouseProb = 0.10
	_, eco, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hr := func(name string) float64 {
		for id, rr := range eco.Platforms {
			if id.String() == name {
				return rr.HitRate()
			}
		}
		return -1
	}
	local, google := hr("Local"), hr("Google")
	cf, od := hr("CloudFlare"), hr("OpenDNS")
	if local < 0.55 || local > 0.85 {
		t.Errorf("Local hit rate %.3f outside [0.55,0.85] (paper: 0.712)", local)
	}
	if google > 0.45 {
		t.Errorf("Google hit rate %.3f above 0.45 (paper: 0.230)", google)
	}
	if google >= local {
		t.Error("Google hit rate should be far below Local")
	}
	if cf <= od {
		t.Errorf("Cloudflare (%.3f) should beat OpenDNS (%.3f)", cf, od)
	}
}

// TestCalibrationDNSConnVolumes pins the gross volumes: connections
// outnumber A-record-driven lookups modestly, as in the paper's 11.2M
// conns vs 9.2M lookups.
func TestCalibrationDNSConnVolumes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are not -short")
	}
	ds, _, err := Generate(calibrationConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Conns) < 50000 {
		t.Fatalf("suspiciously few connections: %d", len(ds.Conns))
	}
	ratio := float64(len(ds.Conns)) / float64(len(ds.DNS))
	if ratio < 0.8 || ratio > 2.5 {
		t.Fatalf("conns/DNS ratio %.2f outside [0.8,2.5] (paper: 1.22)", ratio)
	}
}

// TestCalibrationBlockedGapRegime pins the Figure 1 structure: blocked
// connections start within tens of milliseconds of their lookup, while
// cache-served connections trail by seconds to hours.
func TestCalibrationBlockedGapRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are not -short")
	}
	cfg := calibrationConfig(19)
	cfg.Houses = 20
	ds, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct per-record first-conn gaps cheaply: map answer addr ->
	// most recent lookup completion per house.
	type key struct{ house, addr string }
	last := make(map[key]time.Duration)
	di := 0
	gaps := stats.NewECDF(0)
	for i := range ds.Conns {
		c := &ds.Conns[i]
		for di < len(ds.DNS) && ds.DNS[di].TS <= c.TS {
			d := &ds.DNS[di]
			for _, a := range d.Answers {
				last[key{d.Client.String(), a.Addr.String()}] = d.TS
			}
			di++
		}
		if ts, ok := last[key{c.Orig.String(), c.Resp.String()}]; ok {
			gaps.Add((c.TS - ts).Seconds())
		}
	}
	if gaps.N() < 1000 {
		t.Fatalf("too few paired gaps: %d", gaps.N())
	}
	fastFrac := gaps.FractionAtMost(0.1)
	if fastFrac < 0.25 || fastFrac > 0.70 {
		t.Fatalf("blocked fraction %.3f outside [0.25,0.70] (paper: 0.421)", fastFrac)
	}
	// The two regimes must be well separated: almost nothing between
	// 100 ms and 1 s.
	midFrac := gaps.FractionAtMost(1) - gaps.FractionAtMost(0.1)
	if midFrac > 0.10 {
		t.Fatalf("gap distribution has %.3f mass in the 0.1-1s dead zone", midFrac)
	}
}
