// Package stats provides the deterministic random-number generation,
// probability distributions, and empirical-distribution machinery used
// throughout the dnscontext simulation and analysis pipeline.
//
// All randomness in the repository flows through RNG so that a single seed
// reproduces an identical synthetic trace, analysis, and report. The
// generator is xoshiro256**, seeded via splitmix64, following the reference
// constructions by Blackman and Vigna.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// It is NOT safe for concurrent use; give each goroutine its own stream
// via Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator deterministically seeded from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the 256-bit state; this is the
	// initialization recommended by the xoshiro authors.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state, which is a fixed point.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent child generator from the current state.
// The child's stream is a deterministic function of the parent's state at
// the time of the call, so construction order matters (and is fixed by the
// simulation).
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling to remove modulo bias.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	// Inverse CDF; guard against log(0).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
