package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestECDFEmptyPanics(t *testing.T) {
	e := NewECDF(0)
	for name, f := range map[string]func(){
		"Quantile": func() { e.Quantile(0.5) },
		"Min":      func() { e.Min() },
		"Max":      func() { e.Max() },
		"Mean":     func() { e.Mean() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty ECDF did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestECDFRejectsNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(NaN) did not panic")
		}
	}()
	NewECDF(0).Add(math.NaN())
}

func TestECDFQuantileBounds(t *testing.T) {
	e := NewECDF(0)
	e.AddAll([]float64{3, 1, 2})
	if e.Quantile(0) != 1 || e.Quantile(1) != 3 {
		t.Fatalf("extreme quantiles: q0=%g q1=%g", e.Quantile(0), e.Quantile(1))
	}
	if e.Median() != 2 {
		t.Fatalf("median = %g, want 2", e.Median())
	}
}

func TestECDFQuantileInterpolation(t *testing.T) {
	e := NewECDF(0)
	e.AddAll([]float64{0, 10})
	if got := e.Quantile(0.25); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("Quantile(0.25) = %g, want 2.5", got)
	}
}

func TestECDFSingleSample(t *testing.T) {
	e := NewECDF(0)
	e.Add(7)
	for _, q := range []float64{0, 0.3, 0.5, 1} {
		if e.Quantile(q) != 7 {
			t.Fatalf("Quantile(%g) = %g, want 7", q, e.Quantile(q))
		}
	}
}

func TestECDFFractionAtMost(t *testing.T) {
	e := NewECDF(0)
	e.AddAll([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.FractionAtMost(c.x); got != c.want {
			t.Errorf("FractionAtMost(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if got := e.FractionAbove(2.5); got != 0.5 {
		t.Errorf("FractionAbove(2.5) = %g, want 0.5", got)
	}
}

func TestECDFFractionAtMostEmpty(t *testing.T) {
	if got := NewECDF(0).FractionAtMost(5); got != 0 {
		t.Fatalf("empty FractionAtMost = %g", got)
	}
}

// Property: quantile is monotone non-decreasing in q.
func TestECDFQuantileMonotone(t *testing.T) {
	r := NewRNG(33)
	f := func(seed uint32) bool {
		e := NewECDF(0)
		n := int(seed%100) + 2
		for i := 0; i < n; i++ {
			e.Add(r.Float64() * 1000)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := e.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: FractionAtMost(Quantile(q)) >= q.
func TestECDFQuantileFractionConsistency(t *testing.T) {
	r := NewRNG(34)
	e := NewECDF(0)
	for i := 0; i < 500; i++ {
		e.Add(r.Float64())
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		if frac := e.FractionAtMost(e.Quantile(q)); frac < q-1e-9 {
			t.Fatalf("FractionAtMost(Quantile(%.2f)) = %.4f < q", q, frac)
		}
	}
}

func TestECDFValuesSorted(t *testing.T) {
	e := NewECDF(0)
	e.AddAll([]float64{5, 1, 4, 2, 3})
	if !sort.Float64sAreSorted(e.Values()) {
		t.Fatal("Values not sorted")
	}
	if e.N() != 5 {
		t.Fatalf("N = %d", e.N())
	}
}

func TestECDFAddAfterQuery(t *testing.T) {
	e := NewECDF(0)
	e.AddAll([]float64{1, 3})
	_ = e.Median()
	e.Add(2)
	if e.Median() != 2 {
		t.Fatalf("median after late Add = %g, want 2", e.Median())
	}
}

func TestECDFSummarize(t *testing.T) {
	e := NewECDF(0)
	for i := 1; i <= 100; i++ {
		e.Add(float64(i))
	}
	s := e.Summarize()
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary basics wrong: %+v", s)
	}
	if s.Median < 50 || s.Median > 51 {
		t.Fatalf("median %g", s.Median)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Fatalf("mean %g", s.Mean)
	}
	var zero ECDF
	if got := zero.Summarize(); got.N != 0 {
		t.Fatalf("empty summary N=%d", got.N)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF(0)
	for i := 0; i < 50; i++ {
		e.Add(float64(i))
	}
	pts := e.Points(10)
	if len(pts) != 10 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y || pts[i].X < pts[i-1].X {
			t.Fatal("points not monotone")
		}
	}
	if NewECDF(0).Points(5) != nil {
		t.Fatal("empty ECDF should yield nil points")
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(0.001, 4, 6)
	h.Add(0.0001) // underflow
	h.Add(0.002)
	h.Add(5000)
	h.Add(1e12) // overflow clamps to last bucket
	if h.Total() != 4 {
		t.Fatalf("total %d", h.Total())
	}
	out := h.String()
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestLogHistogramInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params did not panic")
		}
	}()
	NewLogHistogram(0, 4, 6)
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("a")
	c.AddN("b", 3)
	if c.Count("a") != 1 || c.Count("b") != 3 || c.Total() != 4 {
		t.Fatalf("counter state wrong: a=%d b=%d total=%d", c.Count("a"), c.Count("b"), c.Total())
	}
	if c.Fraction("b") != 0.75 {
		t.Fatalf("fraction %g", c.Fraction("b"))
	}
	if NewCounter().Fraction("x") != 0 {
		t.Fatal("empty counter fraction should be 0")
	}
}

func TestRenderCDFs(t *testing.T) {
	r := NewRNG(55)
	a, b := NewECDF(0), NewECDF(0)
	for i := 0; i < 1000; i++ {
		a.Add(Exponential{Mean: 10}.Sample(r))
		b.Add(Exponential{Mean: 100}.Sample(r))
	}
	out := RenderCDFs(PlotOptions{Title: "test", XLabel: "msec", LogX: true},
		Curve{Name: "fast", ECDF: a}, Curve{Name: "slow", ECDF: b})
	if len(out) < 100 {
		t.Fatalf("render too small:\n%s", out)
	}
	empty := RenderCDFs(PlotOptions{Title: "none"}, Curve{Name: "x", ECDF: NewECDF(0)})
	if empty != "none: (no data)\n" {
		t.Fatalf("empty render = %q", empty)
	}
}

func TestRenderCDFsFixedRangeAndLinear(t *testing.T) {
	e := NewECDF(0)
	for i := 1; i <= 100; i++ {
		e.Add(float64(i))
	}
	// Fixed x range, linear scale.
	out := RenderCDFs(PlotOptions{Title: "lin", XMin: 0, XMax: 200, Width: 40, Height: 10},
		Curve{Name: "x", ECDF: e})
	if len(out) == 0 || !strings.Contains(out, "lin") {
		t.Fatalf("render: %q", out)
	}
	// Log scale with a non-positive min is clamped, not crashed.
	e2 := NewECDF(0)
	e2.Add(0)
	e2.Add(5)
	out2 := RenderCDFs(PlotOptions{Title: "log", LogX: true, XLabel: "s"}, Curve{Name: "y", ECDF: e2})
	if !strings.Contains(out2, "log scale") || !strings.Contains(out2, "1e-06") {
		t.Fatalf("log render: %q", out2)
	}
	// Degenerate distribution (all equal): x range widened, no panic.
	e3 := NewECDF(0)
	e3.Add(7)
	e3.Add(7)
	_ = RenderCDFs(PlotOptions{Title: "flat"}, Curve{Name: "z", ECDF: e3})
}

func TestRenderCDFsSkipsEmptyCurves(t *testing.T) {
	full := NewECDF(0)
	full.Add(1)
	full.Add(2)
	out := RenderCDFs(PlotOptions{Title: "mix"},
		Curve{Name: "empty", ECDF: NewECDF(0)},
		Curve{Name: "full", ECDF: full})
	if !strings.Contains(out, "full") {
		t.Fatalf("legend missing: %q", out)
	}
}
