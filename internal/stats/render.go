package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Curve is a named series for an ASCII plot.
type Curve struct {
	Name string
	ECDF *ECDF
}

// PlotOptions configures RenderCDFs.
type PlotOptions struct {
	Title  string
	XLabel string
	Width  int  // plot columns (default 72)
	Height int  // plot rows (default 20)
	LogX   bool // log-scale the x axis (requires positive x values)
	XMin   float64
	XMax   float64 // 0 means auto
}

// RenderCDFs draws one or more empirical CDFs as an ASCII plot. The paper's
// figures are all CDFs; this renderer lets examples and the report binary
// regenerate recognizably shaped figures in a terminal. Each curve is drawn
// with its own marker rune.
func RenderCDFs(opts PlotOptions, curves ...Curve) string {
	width := opts.Width
	if width <= 0 {
		width = 72
	}
	height := opts.Height
	if height <= 0 {
		height = 20
	}

	// Establish the x range across all curves.
	xmin, xmax := opts.XMin, opts.XMax
	auto := xmax == 0
	if auto {
		xmin, xmax = math.Inf(1), math.Inf(-1)
		for _, c := range curves {
			if c.ECDF.N() == 0 {
				continue
			}
			if v := c.ECDF.Min(); v < xmin {
				xmin = v
			}
			// Clip the extreme tail so one outlier doesn't flatten the plot.
			if v := c.ECDF.Quantile(0.999); v > xmax {
				xmax = v
			}
		}
		if math.IsInf(xmin, 1) {
			return opts.Title + ": (no data)\n"
		}
	}
	if opts.LogX {
		if xmin <= 0 {
			xmin = 1e-6
		}
		if xmax <= xmin {
			xmax = xmin * 10
		}
	} else if xmax <= xmin {
		xmax = xmin + 1
	}

	xcol := func(x float64) int {
		var f float64
		if opts.LogX {
			if x < xmin {
				x = xmin
			}
			f = (math.Log(x) - math.Log(xmin)) / (math.Log(xmax) - math.Log(xmin))
		} else {
			f = (x - xmin) / (xmax - xmin)
		}
		c := int(f * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	markers := []rune{'*', 'o', '+', 'x', '.', '#'}

	for ci, c := range curves {
		if c.ECDF.N() == 0 {
			continue
		}
		m := markers[ci%len(markers)]
		xs := c.ECDF.Values()
		n := len(xs)
		for row := 0; row < height; row++ {
			// Row 0 is the top (y = 1.0).
			y := 1 - float64(row)/float64(height-1)
			// x at which CDF reaches y.
			idx := int(y*float64(n)) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= n {
				idx = n - 1
			}
			grid[row][xcol(xs[idx])] = m
		}
	}

	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	for row := 0; row < height; row++ {
		y := 1 - float64(row)/float64(height-1)
		fmt.Fprintf(&b, "%4.2f |%s|\n", y, string(grid[row]))
	}
	fmt.Fprintf(&b, "     +%s+\n", strings.Repeat("-", width))
	left := fmt.Sprintf("%.3g", xmin)
	right := fmt.Sprintf("%.3g", xmax)
	pad := width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "      %s%s%s", left, strings.Repeat(" ", pad), right)
	if opts.XLabel != "" {
		fmt.Fprintf(&b, "  (%s%s)", opts.XLabel, map[bool]string{true: ", log scale", false: ""}[opts.LogX])
	}
	b.WriteByte('\n')
	names := make([]string, 0, len(curves))
	for ci, c := range curves {
		names = append(names, fmt.Sprintf("%c=%s", markers[ci%len(markers)], c.Name))
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "      legend: %s\n", strings.Join(names, "  "))
	return b.String()
}
