package stats

import (
	"fmt"
	"math"
)

// Sampler draws values from a distribution using the supplied RNG.
type Sampler interface {
	Sample(r *RNG) float64
}

// Exponential is an exponential distribution with the given Mean.
type Exponential struct {
	Mean float64
}

// Sample draws an exponential variate.
func (d Exponential) Sample(r *RNG) float64 { return d.Mean * r.ExpFloat64() }

// LogNormal is a log-normal distribution parameterized by the mean (Mu) and
// standard deviation (Sigma) of the underlying normal.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// Sample draws a log-normal variate.
func (d LogNormal) Sample(r *RNG) float64 {
	return math.Exp(d.Mu + d.Sigma*r.NormFloat64())
}

// LogNormalFromMedian builds a LogNormal whose median is median and whose
// shape is sigma (the standard deviation of log values).
func LogNormalFromMedian(median, sigma float64) LogNormal {
	if median <= 0 {
		panic("stats: LogNormalFromMedian requires median > 0")
	}
	return LogNormal{Mu: math.Log(median), Sigma: sigma}
}

// Pareto is a (type I) Pareto distribution with scale Xm and shape Alpha.
// It models heavy-tailed quantities such as transfer sizes.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample draws a Pareto variate.
func (d Pareto) Sample(r *RNG) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return d.Xm / math.Pow(u, 1/d.Alpha)
}

// Uniform is a uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a uniform variate.
func (d Uniform) Sample(r *RNG) float64 { return d.Lo + (d.Hi-d.Lo)*r.Float64() }

// Constant always returns Value. Useful for deterministic test workloads.
type Constant struct {
	Value float64
}

// Sample returns the constant value.
func (d Constant) Sample(*RNG) float64 { return d.Value }

// Zipf draws ranks in [0, N) with probability proportional to
// 1/(rank+1)^S. It precomputes the inverse CDF table, making sampling O(log N),
// which is the right trade-off for our fixed, moderate-size name universes.
type Zipf struct {
	n   int
	cum []float64 // cum[i] = P(rank <= i), normalized
}

// NewZipf constructs a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: Zipf needs n > 0, got %d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("stats: Zipf needs s > 0, got %g", s)
	}
	z := &Zipf{n: n, cum: make([]float64, n)}
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		z.cum[i] = total
	}
	for i := range z.cum {
		z.cum[i] /= total
	}
	// Force exact 1.0 at the end so search never falls off the table.
	z.cum[n-1] = 1.0
	return z, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Rank draws a rank in [0, N), with rank 0 the most popular.
func (z *Zipf) Rank(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weighted selects an index with probability proportional to its weight.
type Weighted struct {
	cum []float64
}

// NewWeighted builds a weighted sampler. All weights must be non-negative
// and at least one must be positive.
func NewWeighted(weights []float64) (*Weighted, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("stats: Weighted needs at least one weight")
	}
	w := &Weighted{cum: make([]float64, len(weights))}
	total := 0.0
	for i, x := range weights {
		if x < 0 || math.IsNaN(x) {
			return nil, fmt.Errorf("stats: weight %d is invalid (%g)", i, x)
		}
		total += x
		w.cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: all weights are zero")
	}
	for i := range w.cum {
		w.cum[i] /= total
	}
	w.cum[len(w.cum)-1] = 1.0
	return w, nil
}

// Pick draws an index in [0, len(weights)).
func (w *Weighted) Pick(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
