package stats

import (
	"fmt"
	"math"
	"strings"
)

// LogHistogram buckets positive values into logarithmically spaced bins.
// It is used for delay distributions where interesting structure spans
// several orders of magnitude (e.g. 1 ms .. 100 s).
type LogHistogram struct {
	base    float64
	lo      float64
	counts  []uint64
	under   uint64
	total   uint64
	binsPer int
}

// NewLogHistogram creates a histogram starting at lo with binsPerDecade
// bins per factor of 10, covering decades decades.
func NewLogHistogram(lo float64, binsPerDecade, decades int) *LogHistogram {
	if lo <= 0 || binsPerDecade <= 0 || decades <= 0 {
		panic("stats: invalid LogHistogram parameters")
	}
	return &LogHistogram{
		base:    math.Pow(10, 1/float64(binsPerDecade)),
		lo:      lo,
		counts:  make([]uint64, binsPerDecade*decades+1),
		binsPer: binsPerDecade,
	}
}

// Add records one observation.
func (h *LogHistogram) Add(x float64) {
	h.total++
	if x < h.lo {
		h.under++
		return
	}
	f := math.Log(x/h.lo) / math.Log(h.base)
	idx := int(f)
	// Values at exact bucket boundaries belong to the bucket they open,
	// but log(base^i)/log(base) can land a hair under i; snap
	// near-integer ratios up so boundary placement is exact.
	if f-float64(idx) > 1-1e-9 {
		idx++
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
}

// Total returns the number of observations.
func (h *LogHistogram) Total() uint64 { return h.total }

// NumBuckets returns the number of finite buckets; the last bucket also
// absorbs observations beyond the covered range.
func (h *LogHistogram) NumBuckets() int { return len(h.counts) }

// Count returns the tally of bucket i, which covers
// [BucketLo(i), BucketLo(i+1)).
func (h *LogHistogram) Count(i int) uint64 { return h.counts[i] }

// Underflow returns the number of observations below the histogram's
// floor.
func (h *LogHistogram) Underflow() uint64 { return h.under }

// Base returns the per-bucket growth factor.
func (h *LogHistogram) Base() float64 { return h.base }

// BucketLo returns the lower bound of bucket i.
func (h *LogHistogram) BucketLo(i int) float64 {
	return h.lo * math.Pow(h.base, float64(i))
}

// String renders the histogram as an ASCII bar chart, one line per
// non-empty bucket.
func (h *LogHistogram) String() string {
	var b strings.Builder
	var maxCount uint64
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "%12s  %8d\n", fmt.Sprintf("<%.3g", h.lo), h.under)
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", int(40*c/maxCount))
		}
		fmt.Fprintf(&b, "%12.4g  %8d %s\n", h.BucketLo(i), c, bar)
	}
	return b.String()
}

// Counter tallies labeled events; a tiny convenience for classification
// breakdowns.
type Counter struct {
	counts map[string]uint64
	total  uint64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]uint64)}
}

// Inc increments label by one.
func (c *Counter) Inc(label string) { c.AddN(label, 1) }

// AddN increments label by n.
func (c *Counter) AddN(label string, n uint64) {
	c.counts[label] += n
	c.total += n
}

// Count returns the tally for label.
func (c *Counter) Count(label string) uint64 { return c.counts[label] }

// Total returns the sum of all tallies.
func (c *Counter) Total() uint64 { return c.total }

// Fraction returns Count(label)/Total, or 0 when empty.
func (c *Counter) Fraction(label string) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[label]) / float64(c.total)
}
