package stats

import (
	"math"
	"testing"
)

// TestLogHistogramBucketBoundaries verifies that an observation at an
// exact power of the base — i.e. exactly on a bucket's lower boundary —
// lands in the bucket it opens, for every bucket.
func TestLogHistogramBucketBoundaries(t *testing.T) {
	h := NewLogHistogram(0.001, 4, 3)
	n := h.NumBuckets()
	for i := 0; i < n; i++ {
		h.Add(h.BucketLo(i))
	}
	for i := 0; i < n; i++ {
		if got := h.Count(i); got != 1 {
			t.Errorf("bucket %d (lo %v): count %d, want 1", i, h.BucketLo(i), got)
		}
	}
	if h.Underflow() != 0 {
		t.Errorf("boundary values underflowed: %d", h.Underflow())
	}
}

// TestLogHistogramInteriorPlacement drops values strictly inside each
// bucket (the geometric midpoint) and just under each upper boundary.
func TestLogHistogramInteriorPlacement(t *testing.T) {
	h := NewLogHistogram(0.001, 4, 3)
	n := h.NumBuckets()
	for i := 0; i < n-1; i++ {
		h.Add(math.Sqrt(h.BucketLo(i) * h.BucketLo(i+1))) // geometric midpoint
		h.Add(h.BucketLo(i+1) * (1 - 1e-6))               // just under the next boundary
	}
	for i := 0; i < n-1; i++ {
		if got := h.Count(i); got != 2 {
			t.Errorf("bucket %d: count %d, want 2", i, got)
		}
	}
}

// TestLogHistogramUnderOverflow checks the two out-of-range paths:
// values below the floor increment only the underflow tally, and values
// beyond the covered range clamp into the last bucket.
func TestLogHistogramUnderOverflow(t *testing.T) {
	h := NewLogHistogram(1, 2, 2) // covers [1, 100), 5 buckets
	h.Add(0.5)
	h.Add(0.999999)
	if h.Underflow() != 2 {
		t.Fatalf("underflow %d, want 2", h.Underflow())
	}
	for i := 0; i < h.NumBuckets(); i++ {
		if h.Count(i) != 0 {
			t.Fatalf("underflow leaked into bucket %d", i)
		}
	}
	h.Add(1e6)
	h.Add(math.MaxFloat64)
	last := h.NumBuckets() - 1
	if got := h.Count(last); got != 2 {
		t.Fatalf("overflow bucket count %d, want 2", got)
	}
}

// TestLogHistogramTotalInvariant: Total always equals underflow plus the
// sum over all buckets, across a spread of magnitudes.
func TestLogHistogramTotalInvariant(t *testing.T) {
	h := NewLogHistogram(0.001, 4, 6)
	values := []float64{1e-6, 1e-4, 0.001, 0.0025, 0.01, 0.5, 1, 3, 42, 999, 1e5, 1e9}
	for _, v := range values {
		h.Add(v)
	}
	if h.Total() != uint64(len(values)) {
		t.Fatalf("total %d, want %d", h.Total(), len(values))
	}
	sum := h.Underflow()
	for i := 0; i < h.NumBuckets(); i++ {
		sum += h.Count(i)
	}
	if sum != h.Total() {
		t.Fatalf("underflow+buckets = %d, total = %d", sum, h.Total())
	}
}

// TestLogHistogramBaseGeometry: BucketLo grows by exactly Base per
// bucket, and binsPerDecade buckets span one decade.
func TestLogHistogramBaseGeometry(t *testing.T) {
	const binsPerDecade = 5
	h := NewLogHistogram(0.01, binsPerDecade, 4)
	if math.Abs(h.Base()-math.Pow(10, 1.0/binsPerDecade)) > 1e-12 {
		t.Fatalf("base %v", h.Base())
	}
	for i := 0; i+1 < h.NumBuckets(); i++ {
		ratio := h.BucketLo(i+1) / h.BucketLo(i)
		if math.Abs(ratio-h.Base()) > 1e-9 {
			t.Fatalf("bucket %d ratio %v, want %v", i, ratio, h.Base())
		}
	}
	decade := h.BucketLo(binsPerDecade) / h.BucketLo(0)
	if math.Abs(decade-10) > 1e-9 {
		t.Fatalf("decade span %v, want 10", decade)
	}
}
