package stats

import (
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over float64
// samples. Samples are accumulated with Add and the distribution is
// finalized (sorted) lazily on first query.
type ECDF struct {
	xs     []float64
	sorted bool
}

// NewECDF returns an empty distribution, optionally pre-sized.
func NewECDF(capacity int) *ECDF {
	return &ECDF{xs: make([]float64, 0, capacity)}
}

// Add accumulates one sample. NaNs are rejected with a panic because they
// poison quantile queries silently otherwise.
func (e *ECDF) Add(x float64) {
	if math.IsNaN(x) {
		panic("stats: ECDF.Add(NaN)")
	}
	e.xs = append(e.xs, x)
	e.sorted = false
}

// AddAll accumulates a batch of samples.
func (e *ECDF) AddAll(xs []float64) {
	for _, x := range xs {
		e.Add(x)
	}
}

// N returns the number of samples.
func (e *ECDF) N() int { return len(e.xs) }

func (e *ECDF) finalize() {
	if !e.sorted {
		sort.Float64s(e.xs)
		e.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between order statistics. It panics on an empty
// distribution or out-of-range q.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.xs) == 0 {
		panic("stats: Quantile of empty ECDF")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: Quantile(%g) out of [0,1]", q))
	}
	e.finalize()
	if len(e.xs) == 1 {
		return e.xs[0]
	}
	pos := q * float64(len(e.xs)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i >= len(e.xs)-1 {
		return e.xs[len(e.xs)-1]
	}
	return e.xs[i] + frac*(e.xs[i+1]-e.xs[i])
}

// Median is Quantile(0.5).
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Min returns the smallest sample.
func (e *ECDF) Min() float64 {
	if len(e.xs) == 0 {
		panic("stats: Min of empty ECDF")
	}
	e.finalize()
	return e.xs[0]
}

// Max returns the largest sample.
func (e *ECDF) Max() float64 {
	if len(e.xs) == 0 {
		panic("stats: Max of empty ECDF")
	}
	e.finalize()
	return e.xs[len(e.xs)-1]
}

// Mean returns the arithmetic mean.
func (e *ECDF) Mean() float64 {
	if len(e.xs) == 0 {
		panic("stats: Mean of empty ECDF")
	}
	sum := 0.0
	for _, x := range e.xs {
		sum += x
	}
	return sum / float64(len(e.xs))
}

// FractionAtMost returns P(X <= x), i.e. the CDF evaluated at x.
func (e *ECDF) FractionAtMost(x float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	e.finalize()
	// Count of samples <= x.
	n := sort.Search(len(e.xs), func(i int) bool { return e.xs[i] > x })
	return float64(n) / float64(len(e.xs))
}

// FractionAbove returns P(X > x).
func (e *ECDF) FractionAbove(x float64) float64 { return 1 - e.FractionAtMost(x) }

// Values returns the sorted samples. The returned slice is owned by the
// ECDF and must not be modified.
func (e *ECDF) Values() []float64 {
	e.finalize()
	return e.xs
}

// Points returns up to max (x, P(X<=x)) pairs evenly spaced in probability,
// suitable for plotting the CDF.
func (e *ECDF) Points(max int) []Point {
	if len(e.xs) == 0 || max <= 0 {
		return nil
	}
	e.finalize()
	if max > len(e.xs) {
		max = len(e.xs)
	}
	pts := make([]Point, 0, max)
	for i := 0; i < max; i++ {
		q := float64(i) / float64(max-1)
		if max == 1 {
			q = 1
		}
		pts = append(pts, Point{X: e.Quantile(q), Y: q})
	}
	return pts
}

// Point is a single (x, y) coordinate on a plotted curve.
type Point struct {
	X, Y float64
}

// Summary holds the standard quantile summary reported for figures.
type Summary struct {
	N                       int
	Min, P10, P25, Median   float64
	P75, P90, P95, P99, Max float64
	Mean                    float64
}

// Summarize computes the standard quantile summary.
func (e *ECDF) Summarize() Summary {
	if len(e.xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(e.xs),
		Min:    e.Min(),
		P10:    e.Quantile(0.10),
		P25:    e.Quantile(0.25),
		Median: e.Median(),
		P75:    e.Quantile(0.75),
		P90:    e.Quantile(0.90),
		P95:    e.Quantile(0.95),
		P99:    e.Quantile(0.99),
		Max:    e.Max(),
		Mean:   e.Mean(),
	}
}
