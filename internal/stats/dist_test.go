package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExponentialMean(t *testing.T) {
	r := NewRNG(1)
	d := Exponential{Mean: 5}
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += d.Sample(r)
	}
	mean := sum / draws
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("exponential mean %.3f, want ~5", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(2)
	d := LogNormalFromMedian(100, 1.0)
	e := NewECDF(0)
	for i := 0; i < 100000; i++ {
		e.Add(d.Sample(r))
	}
	med := e.Median()
	if med < 95 || med > 105 {
		t.Fatalf("lognormal median %.2f, want ~100", med)
	}
}

func TestLogNormalFromMedianPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive median")
		}
	}()
	LogNormalFromMedian(0, 1)
}

func TestParetoLowerBound(t *testing.T) {
	r := NewRNG(3)
	d := Pareto{Xm: 2, Alpha: 1.5}
	f := func(_ uint8) bool { return d.Sample(r) >= 2 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParetoHeavyTail(t *testing.T) {
	r := NewRNG(4)
	d := Pareto{Xm: 1, Alpha: 1.2}
	e := NewECDF(0)
	for i := 0; i < 100000; i++ {
		e.Add(d.Sample(r))
	}
	// P(X > 10) = 10^-1.2 ≈ 0.063.
	frac := e.FractionAbove(10)
	if frac < 0.05 || frac > 0.08 {
		t.Fatalf("Pareto tail P(X>10)=%.4f, want ~0.063", frac)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(5)
	d := Uniform{Lo: 3, Hi: 7}
	f := func(_ uint8) bool {
		v := d.Sample(r)
		return v >= 3 && v < 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstant(t *testing.T) {
	d := Constant{Value: 42}
	if v := d.Sample(nil); v != 42 {
		t.Fatalf("constant sample = %g", v)
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0,1) should fail")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("NewZipf(10,0) should fail")
	}
}

func TestZipfRankRange(t *testing.T) {
	r := NewRNG(6)
	z, err := NewZipf(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(_ uint8) bool {
		k := z.Rank(r)
		return k >= 0 && k < 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(7)
	z, err := NewZipf(1000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 100000
	rank0 := 0
	for i := 0; i < draws; i++ {
		if z.Rank(r) == 0 {
			rank0++
		}
	}
	// With s=1, N=1000 the top rank holds ~1/H(1000) ≈ 13.4% of mass.
	frac := float64(rank0) / draws
	if frac < 0.12 || frac > 0.15 {
		t.Fatalf("Zipf rank-0 mass %.4f, want ~0.134", frac)
	}
}

func TestZipfSingleRank(t *testing.T) {
	r := NewRNG(8)
	z, err := NewZipf(1, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if z.Rank(r) != 0 {
			t.Fatal("single-rank Zipf returned nonzero rank")
		}
	}
}

func TestWeightedErrors(t *testing.T) {
	if _, err := NewWeighted(nil); err == nil {
		t.Error("empty weights should fail")
	}
	if _, err := NewWeighted([]float64{0, 0}); err == nil {
		t.Error("all-zero weights should fail")
	}
	if _, err := NewWeighted([]float64{1, -1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewWeighted([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN weight should fail")
	}
}

func TestWeightedProportions(t *testing.T) {
	r := NewRNG(9)
	w, err := NewWeighted([]float64{7, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	const draws = 100000
	counts := [3]int{}
	for i := 0; i < draws; i++ {
		counts[w.Pick(r)]++
	}
	want := []float64{0.7, 0.2, 0.1}
	for i, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-want[i]) > 0.01 {
			t.Errorf("weight %d: frac %.3f, want %.1f", i, frac, want[i])
		}
	}
}

func TestWeightedZeroWeightNeverPicked(t *testing.T) {
	r := NewRNG(10)
	w, err := NewWeighted([]float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if w.Pick(r) != 1 {
			t.Fatal("picked a zero-weight index")
		}
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g,%g,%g)=%g, want %g", c.v, c.lo, c.hi, got, c.want)
		}
	}
}
