package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	// Must not get stuck at zero.
	var nonzero bool
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("zero seed produced an all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream matches parent %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(4)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := NewRNG(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(8)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / draws
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) hit rate %.3f outside [0.28,0.32]", frac)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(9)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %.4f, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(10)
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / draws
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean %.4f, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	f := func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(12)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: sum=%d", sum)
	}
}
