// Package zonedb builds the synthetic DNS namespace used by the traffic
// generator: a universe of hostnames with Zipf popularity, realistic TTL
// assignments, CDN-style shared hosting (many names resolving to one IP),
// per-zone authoritative lookup latency, and a service class that drives
// the application-transfer model.
//
// The paper's dataset is grounded in the real Internet namespace seen at
// the CCZ; this package is the substitution for that ground truth (see
// DESIGN.md). The knobs are chosen so that the phenomena the paper
// measures — short CDN TTLs, shared hosting confusing DN-Hunter, skewed
// name popularity — are all present.
package zonedb

import (
	"fmt"
	"math"
	"net/netip"
	"time"

	"dnscontext/internal/stats"
)

// ServiceClass categorizes what kind of application transaction a name
// serves; the households package maps classes to transfer-size and
// duration distributions.
type ServiceClass uint8

// Service classes.
const (
	ServiceWeb      ServiceClass = iota // page and object fetches
	ServiceAPI                          // short request/response
	ServiceVideo                        // long, high-volume streams
	ServiceDownload                     // bulk transfers
	ServiceChat                         // long-lived low-rate connections
	ServiceProbe                        // tiny connectivity checks
)

// String returns a short mnemonic for the class.
func (s ServiceClass) String() string {
	switch s {
	case ServiceWeb:
		return "web"
	case ServiceAPI:
		return "api"
	case ServiceVideo:
		return "video"
	case ServiceDownload:
		return "download"
	case ServiceChat:
		return "chat"
	case ServiceProbe:
		return "probe"
	}
	return fmt.Sprintf("service%d", uint8(s))
}

// Name is one hostname in the synthetic namespace.
type Name struct {
	// Host is the fully qualified name (no trailing dot).
	Host string
	// Addrs are the A-record addresses. CDN-hosted names share addresses
	// with other names.
	Addrs []netip.Addr
	// TTL is the authoritative record TTL.
	TTL time.Duration
	// AuthDelay is the extra time a recursive resolver needs to answer a
	// cache miss for this name (iterating to the authoritative servers).
	AuthDelay time.Duration
	// Service drives the application transfer model.
	Service ServiceClass
	// Port is the service's well-known destination port.
	Port uint16
	// Rank is the popularity rank (0 = most popular).
	Rank int
	// CDN is true when the name is hosted on shared CDN infrastructure.
	CDN bool
}

// Config parameterizes the namespace.
type Config struct {
	// NumNames is the universe size.
	NumNames int
	// ZipfExponent skews the popularity distribution (typical: ~0.9–1.1).
	ZipfExponent float64
	// CDNFraction is the fraction of names hosted on shared CDN IPs.
	CDNFraction float64
	// CDNPoolSize is the number of distinct shared CDN addresses.
	CDNPoolSize int
}

// DefaultConfig matches the scale used for the paper-reproduction runs.
func DefaultConfig() Config {
	return Config{
		NumNames:     20000,
		ZipfExponent: 1.15,
		CDNFraction:  0.35,
		CDNPoolSize:  3000,
	}
}

// DB is an immutable synthetic namespace. Lookups by hostname and
// popularity-weighted sampling are both supported.
type DB struct {
	names  []*Name
	byHost map[string]*Name
	zipf   *stats.Zipf
	// shares[rank] is the popularity pmf.
	shares []float64
	// ConnectivityCheck is the Android captive-portal probe name the paper
	// singles out in §7; it is part of every namespace.
	ConnectivityCheck *Name
}

// The connectivity-check hostname from the paper (an Android artifact).
const connectivityCheckHost = "connectivitycheck.gstatic.com"

var tlds = []string{"com", "net", "org", "io", "tv"}

// ttlBucket describes one TTL mode and its probability weight.
type ttlBucket struct {
	ttl    time.Duration
	weight float64
}

// The TTL mix loosely follows edge-network measurements (Moura et al.,
// IMC'19; Callahan et al.): plenty of 5-minute and 1-hour records, a
// short-TTL mass from CDNs, and a long tail of daily TTLs.
var ttlBuckets = []ttlBucket{
	{5 * time.Second, 0.04},
	{30 * time.Second, 0.10},
	{60 * time.Second, 0.16},
	{300 * time.Second, 0.34},
	{3600 * time.Second, 0.24},
	{86400 * time.Second, 0.12},
}

// CDN-hosted names skew much shorter.
var cdnTTLBuckets = []ttlBucket{
	{5 * time.Second, 0.06},
	{20 * time.Second, 0.24},
	{60 * time.Second, 0.35},
	{300 * time.Second, 0.35},
}

var serviceMix = []struct {
	class  ServiceClass
	port   uint16
	weight float64
}{
	{ServiceWeb, 443, 0.52},
	{ServiceWeb, 80, 0.10},
	{ServiceAPI, 443, 0.20},
	{ServiceVideo, 443, 0.08},
	{ServiceDownload, 443, 0.05},
	{ServiceChat, 443, 0.05},
}

// New builds a namespace from cfg, deterministically from r.
func New(cfg Config, r *stats.RNG) (*DB, error) {
	if cfg.NumNames <= 0 {
		return nil, fmt.Errorf("zonedb: NumNames must be positive, got %d", cfg.NumNames)
	}
	if cfg.CDNPoolSize <= 0 {
		cfg.CDNPoolSize = 1
	}
	zipf, err := stats.NewZipf(cfg.NumNames, cfg.ZipfExponent)
	if err != nil {
		return nil, fmt.Errorf("zonedb: %w", err)
	}
	ttlW, err := weights(ttlBuckets)
	if err != nil {
		return nil, err
	}
	cdnTTLW, err := weights(cdnTTLBuckets)
	if err != nil {
		return nil, err
	}
	svcWeights := make([]float64, len(serviceMix))
	for i, s := range serviceMix {
		svcWeights[i] = s.weight
	}
	svcW, err := stats.NewWeighted(svcWeights)
	if err != nil {
		return nil, err
	}

	// Shared CDN address pool: 198.18.0.0/15 (benchmark space, never
	// collides with client or resolver addresses).
	cdnPool := make([]netip.Addr, cfg.CDNPoolSize)
	for i := range cdnPool {
		cdnPool[i] = ip4(198, 18, byte(i/256), byte(i%256))
	}

	db := &DB{
		names:  make([]*Name, 0, cfg.NumNames),
		byHost: make(map[string]*Name, cfg.NumNames),
		zipf:   zipf,
		shares: make([]float64, cfg.NumNames),
	}
	var hsum float64
	for i := 0; i < cfg.NumNames; i++ {
		db.shares[i] = 1 / math.Pow(float64(i+1), cfg.ZipfExponent)
		hsum += db.shares[i]
	}
	for i := range db.shares {
		db.shares[i] /= hsum
	}

	// AuthDelay: lognormal around ~22 ms — often a single authoritative
	// RTT with the delegation chain already cached — with a heavy-ish
	// tail for far-away or lame infrastructure.
	authDelay := stats.LogNormalFromMedian(10, 0.9) // milliseconds

	for i := 0; i < cfg.NumNames; i++ {
		n := &Name{Rank: i}
		sel := serviceMix[svcW.Pick(r)]
		n.Service, n.Port = sel.class, sel.port
		n.CDN = r.Bool(cfg.CDNFraction)

		label := fmt.Sprintf("site%05d", i)
		sub := "www"
		switch n.Service {
		case ServiceAPI:
			sub = "api"
		case ServiceVideo:
			sub = "video"
		case ServiceDownload:
			sub = "dl"
		case ServiceChat:
			sub = "chat"
		}
		if n.CDN {
			sub = "cdn"
		}
		n.Host = fmt.Sprintf("%s.%s.%s", sub, label, tlds[i%len(tlds)])

		if n.CDN {
			n.TTL = cdnTTLBuckets[cdnTTLW.Pick(r)].ttl
			// One or two addresses from the shared pool.
			n.Addrs = append(n.Addrs, cdnPool[r.Intn(len(cdnPool))])
			if r.Bool(0.3) {
				n.Addrs = append(n.Addrs, cdnPool[r.Intn(len(cdnPool))])
			}
		} else {
			n.TTL = ttlBuckets[ttlW.Pick(r)].ttl
			// Dedicated address derived from the rank: 203.0.x.y is unique
			// per name modulo 65536, then 100.64+ for the overflow.
			n.Addrs = []netip.Addr{dedicatedAddr(i)}
		}
		n.AuthDelay = time.Duration(authDelay.Sample(r)*float64(time.Millisecond)) + 3*time.Millisecond

		db.names = append(db.names, n)
		db.byHost[n.Host] = n
	}

	// The connectivity-check probe name: extremely popular on Android,
	// tiny transactions, short TTL, Google-hosted.
	cc := &Name{
		Host:      connectivityCheckHost,
		Addrs:     []netip.Addr{ip4(198, 18, 255, 1)},
		TTL:       300 * time.Second,
		AuthDelay: 20 * time.Millisecond,
		Service:   ServiceProbe,
		Port:      443,
		Rank:      -1,
		CDN:       true,
	}
	db.byHost[cc.Host] = cc
	db.ConnectivityCheck = cc
	return db, nil
}

func weights(buckets []ttlBucket) (*stats.Weighted, error) {
	ws := make([]float64, len(buckets))
	for i, b := range buckets {
		ws[i] = b.weight
	}
	return stats.NewWeighted(ws)
}

func ip4(a, b, c, d byte) netip.Addr { return netip.AddrFrom4([4]byte{a, b, c, d}) }

func dedicatedAddr(rank int) netip.Addr {
	// 203.0.0.0/12-ish synthetic space, 64k names per /16 block.
	block := rank / 65536
	rem := rank % 65536
	return ip4(203, byte(block), byte(rem/256), byte(rem%256))
}

// Size returns the number of ranked names (excluding the probe name).
func (db *DB) Size() int { return len(db.names) }

// Pick samples a name by popularity.
func (db *DB) Pick(r *stats.RNG) *Name { return db.names[db.zipf.Rank(r)] }

// ByRank returns the name at the given popularity rank.
func (db *DB) ByRank(rank int) *Name { return db.names[rank] }

// Lookup returns the name record for host, or nil.
func (db *DB) Lookup(host string) *Name { return db.byHost[host] }

// Share returns the popularity probability mass of n — the chance a
// single popularity draw selects it. The connectivity-check probe name
// (rank −1) is assigned a high constant share reflecting its outsized
// real-world query volume.
func (db *DB) Share(n *Name) float64 {
	if n.Rank < 0 {
		return 0.01
	}
	if n.Rank >= len(db.shares) {
		return 0
	}
	return db.shares[n.Rank]
}

// Names returns the ranked name universe. The slice is owned by the DB and
// must not be modified.
func (db *DB) Names() []*Name { return db.names }
