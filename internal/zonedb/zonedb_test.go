package zonedb

import (
	"strings"
	"testing"
	"time"

	"dnscontext/internal/stats"
)

func newDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	db, err := New(cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumNames: 0, ZipfExponent: 1}, stats.NewRNG(1)); err == nil {
		t.Fatal("zero NumNames accepted")
	}
	if _, err := New(Config{NumNames: 5, ZipfExponent: 0}, stats.NewRNG(1)); err == nil {
		t.Fatal("zero exponent accepted")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{NumNames: 500, ZipfExponent: 1, CDNFraction: 0.3, CDNPoolSize: 20}
	a, _ := New(cfg, stats.NewRNG(7))
	b, _ := New(cfg, stats.NewRNG(7))
	for i := range a.Names() {
		x, y := a.ByRank(i), b.ByRank(i)
		if x.Host != y.Host || x.TTL != y.TTL || x.Addrs[0] != y.Addrs[0] || x.AuthDelay != y.AuthDelay {
			t.Fatalf("rank %d differs between same-seed builds", i)
		}
	}
}

func TestUniverseShape(t *testing.T) {
	db := newDB(t, DefaultConfig())
	if db.Size() != 20000 {
		t.Fatalf("size %d", db.Size())
	}
	hosts := make(map[string]bool)
	cdn := 0
	for _, n := range db.Names() {
		if hosts[n.Host] {
			t.Fatalf("duplicate host %q", n.Host)
		}
		hosts[n.Host] = true
		if len(n.Addrs) == 0 {
			t.Fatalf("%q has no addresses", n.Host)
		}
		if n.TTL <= 0 {
			t.Fatalf("%q has TTL %v", n.Host, n.TTL)
		}
		if n.AuthDelay < 3*time.Millisecond {
			t.Fatalf("%q auth delay %v below floor", n.Host, n.AuthDelay)
		}
		if n.CDN {
			cdn++
		}
	}
	frac := float64(cdn) / float64(db.Size())
	if frac < 0.30 || frac > 0.40 {
		t.Fatalf("CDN fraction %.3f, want ~0.35", frac)
	}
}

func TestCDNNamesShareAddresses(t *testing.T) {
	db := newDB(t, DefaultConfig())
	byAddr := make(map[string][]string)
	for _, n := range db.Names() {
		if n.CDN {
			byAddr[n.Addrs[0].String()] = append(byAddr[n.Addrs[0].String()], n.Host)
		}
	}
	shared := 0
	for _, hosts := range byAddr {
		if len(hosts) > 1 {
			shared++
		}
	}
	if shared < len(byAddr)/2 {
		t.Fatalf("only %d/%d CDN addresses shared by multiple names", shared, len(byAddr))
	}
}

func TestDedicatedAddressesUnique(t *testing.T) {
	db := newDB(t, DefaultConfig())
	seen := make(map[string]string)
	for _, n := range db.Names() {
		if n.CDN {
			continue
		}
		a := n.Addrs[0].String()
		if prev, dup := seen[a]; dup {
			t.Fatalf("dedicated addr %s shared by %q and %q", a, prev, n.Host)
		}
		seen[a] = n.Host
	}
}

func TestLookupAndByRank(t *testing.T) {
	db := newDB(t, DefaultConfig())
	n := db.ByRank(17)
	if db.Lookup(n.Host) != n {
		t.Fatal("Lookup(host) != ByRank result")
	}
	if db.Lookup("no.such.name") != nil {
		t.Fatal("missing name returned non-nil")
	}
}

func TestConnectivityCheckName(t *testing.T) {
	db := newDB(t, DefaultConfig())
	cc := db.ConnectivityCheck
	if cc == nil || cc.Host != "connectivitycheck.gstatic.com" {
		t.Fatalf("probe name = %+v", cc)
	}
	if db.Lookup(cc.Host) != cc {
		t.Fatal("probe name not in host index")
	}
	if cc.Service != ServiceProbe {
		t.Fatalf("probe service = %v", cc.Service)
	}
}

func TestPickPopularitySkew(t *testing.T) {
	db := newDB(t, Config{NumNames: 1000, ZipfExponent: 1.0, CDNFraction: 0.3, CDNPoolSize: 50})
	r := stats.NewRNG(99)
	top100 := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if db.Pick(r).Rank < 100 {
			top100++
		}
	}
	frac := float64(top100) / draws
	// Zipf(1.0, N=1000): top-100 mass = H(100)/H(1000) ≈ 0.69.
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("top-100 mass %.3f, want ~0.69", frac)
	}
}

func TestCDNShortTTLs(t *testing.T) {
	db := newDB(t, DefaultConfig())
	var cdnSum, dedSum time.Duration
	var cdnN, dedN int
	for _, n := range db.Names() {
		if n.CDN {
			cdnSum += n.TTL
			cdnN++
			if n.TTL > 300*time.Second {
				t.Fatalf("CDN name %q has TTL %v", n.Host, n.TTL)
			}
		} else {
			dedSum += n.TTL
			dedN++
		}
	}
	if cdnSum/time.Duration(cdnN) >= dedSum/time.Duration(dedN) {
		t.Fatal("CDN mean TTL not shorter than dedicated mean TTL")
	}
}

func TestHostNamingConvention(t *testing.T) {
	db := newDB(t, DefaultConfig())
	for _, n := range db.Names()[:100] {
		if strings.Count(n.Host, ".") != 2 {
			t.Fatalf("host %q not three labels", n.Host)
		}
	}
}

func TestServiceClassString(t *testing.T) {
	for sc, want := range map[ServiceClass]string{
		ServiceWeb: "web", ServiceAPI: "api", ServiceVideo: "video",
		ServiceDownload: "download", ServiceChat: "chat", ServiceProbe: "probe",
		ServiceClass(99): "service99",
	} {
		if sc.String() != want {
			t.Errorf("%d.String() = %q, want %q", sc, sc.String(), want)
		}
	}
}
