package bulk

import (
	"context"
	"sync"

	"dnscontext/internal/dnswire"
)

// Singleflight-style in-flight coalescing for the live path. Concurrent
// queries for the same (name, type) share one wire exchange: the first
// joiner becomes the leader and performs the exchange, later joiners
// subscribe to its outcome. Unlike a cache, nothing outlives the flight
// — once the leader completes and broadcasts, the key is gone and the
// next query leads a fresh exchange.
//
// Per-subscriber timing is preserved by construction: the coalescer
// returns only the shared outcome; each caller measures its own wait.
// Cancellation is per-subscriber: the leader runs under the coalescer's
// run context (the engine's), not under any subscriber's, so one
// subscriber abandoning its wait can never starve the rest.

// flightResult is the outcome every subscriber of one exchange shares.
type flightResult struct {
	msg      *dnswire.Message
	err      error
	attempts int
}

// flight is one in-progress exchange.
type flight struct {
	done chan struct{} // closed by the leader after res is set
	res  flightResult
	subs int // joiners beyond the leader, under the coalescer lock
}

// coalescer deduplicates in-flight exchanges by key.
type coalescer struct {
	runCtx context.Context
	mu     sync.Mutex
	flying map[string]*flight
	hits   uint64
}

func newCoalescer(runCtx context.Context) *coalescer {
	return &coalescer{runCtx: runCtx, flying: make(map[string]*flight)}
}

// do returns the outcome for key, either by leading the exchange (call
// fn once, under the run context) or by subscribing to the in-flight
// one. coalesced reports which happened. A subscriber whose ctx is
// cancelled gets ctx's error; the flight itself continues for the
// others.
func (c *coalescer) do(ctx context.Context, key string, fn func(context.Context) (*dnswire.Message, int, error)) (res flightResult, coalesced bool, err error) {
	c.mu.Lock()
	if fl, ok := c.flying[key]; ok {
		fl.subs++
		c.hits++
		c.mu.Unlock()
		select {
		case <-fl.done:
			return fl.res, true, nil
		case <-ctx.Done():
			return flightResult{}, true, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	c.flying[key] = fl
	c.mu.Unlock()

	msg, attempts, ferr := fn(c.runCtx)
	fl.res = flightResult{msg: msg, err: ferr, attempts: attempts}
	c.mu.Lock()
	delete(c.flying, key)
	c.mu.Unlock()
	close(fl.done)
	return fl.res, false, nil
}

// Hits returns the number of lookups that joined an existing flight.
func (c *coalescer) Hits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}
