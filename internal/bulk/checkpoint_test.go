package bulk

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestScanTracker: out-of-order completions compress into the
// watermark + extras form and the watermark chases unblocked runs.
func TestScanTracker(t *testing.T) {
	tr := newScanTracker()
	for _, idx := range []uint64{2, 0, 3, 5} {
		tr.complete(idx)
	}
	if w, ex := tr.snapshot(); w != 1 || !reflect.DeepEqual(ex, []uint64{2, 3, 5}) {
		t.Fatalf("watermark %d extras %v, want 1 [2 3 5]", w, ex)
	}
	tr.complete(1) // unblocks 2 and 3
	if w, ex := tr.snapshot(); w != 4 || !reflect.DeepEqual(ex, []uint64{5}) {
		t.Fatalf("watermark %d extras %v, want 4 [5]", w, ex)
	}
	for _, c := range []struct {
		idx  uint64
		want bool
	}{{0, true}, {3, true}, {4, false}, {5, true}, {6, false}} {
		if got := tr.done(c.idx); got != c.want {
			t.Fatalf("done(%d) = %v, want %v", c.idx, got, c.want)
		}
	}
}

// TestScanTrackerSeed: resume seeding reproduces a snapshot exactly,
// dropping extras the watermark already covers.
func TestScanTrackerSeed(t *testing.T) {
	tr := newScanTracker()
	tr.seed(7, []uint64{3, 9, 12}) // 3 < watermark: already covered
	if w, ex := tr.snapshot(); w != 7 || !reflect.DeepEqual(ex, []uint64{9, 12}) {
		t.Fatalf("watermark %d extras %v, want 7 [9 12]", w, ex)
	}
	tr.complete(7)
	tr.complete(8) // unblocks 9
	if w, _ := tr.snapshot(); w != 10 {
		t.Fatalf("watermark %d, want 10", w)
	}
}

// TestScanCheckpointRoundTrip: encode → save → load → decode is
// identity, and a missing file is a clean fresh start.
func TestScanCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	want := &ScanCheckpoint{FeedSig: 0xabcd, Watermark: 1234, Extras: []uint64{1240, 1300}, OutputOffset: 98765}
	if err := saveScanCheckpoint(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := loadScanCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip %+v, want %+v", got, want)
	}
	missing, err := loadScanCheckpoint(filepath.Join(t.TempDir(), "nope.ckpt"))
	if err != nil || missing != nil {
		t.Fatalf("missing checkpoint = %+v, %v; want nil, nil", missing, err)
	}
}
