package bulk

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnscontext/internal/dnswire"
	"dnscontext/internal/obs"
	"dnscontext/internal/trace"
)

// gateExchanger is a LiveExchanger whose exchanges block until released,
// counting every wire call — the instrument for proving that N
// concurrent same-name lookups cost exactly one exchange.
type gateExchanger struct {
	calls   atomic.Int64
	release chan struct{}
	msg     *dnswire.Message
	err     error
}

func newGateExchanger() *gateExchanger {
	msg := &dnswire.Message{}
	msg.Header.Response = true
	msg.Questions = []dnswire.Question{{Name: "shared.example", Type: dnswire.TypeA, Class: 1}}
	return &gateExchanger{release: make(chan struct{}), msg: msg}
}

func (g *gateExchanger) Query(ctx context.Context, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	g.calls.Add(1)
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.msg, g.err
}

func TestCoalescerSharesOneExchange(t *testing.T) {
	g := newGateExchanger()
	co := newCoalescer(context.Background())

	const n = 16
	var wg sync.WaitGroup
	results := make([]flightResult, n)
	coalesced := make([]bool, n)
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			results[i], coalesced[i], errs[i] = co.do(context.Background(), "shared.example\x00A",
				func(runCtx context.Context) (*dnswire.Message, int, error) {
					msg, err := g.Query(runCtx, "shared.example", dnswire.TypeA)
					return msg, 1, err
				})
		}()
	}

	// Wait until the leader is parked in the exchange and every other
	// goroutine has subscribed, then release the wire.
	deadline := time.Now().Add(2 * time.Second)
	for co.Hits() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d subscribers joined", co.Hits())
		}
		time.Sleep(time.Millisecond)
	}
	close(g.release)
	wg.Wait()

	if got := g.calls.Load(); got != 1 {
		t.Fatalf("wire exchanges = %d, want 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("subscriber %d error: %v", i, errs[i])
		}
		if results[i].msg != g.msg {
			t.Fatalf("subscriber %d got %+v, want the shared message", i, results[i])
		}
		if !coalesced[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want exactly 1", leaders)
	}
	if co.Hits() != n-1 {
		t.Fatalf("hits = %d, want %d", co.Hits(), n-1)
	}
}

func TestCoalescerCancelDoesNotStarve(t *testing.T) {
	g := newGateExchanger()
	co := newCoalescer(context.Background())
	key := "shared.example\x00A"
	fn := func(runCtx context.Context) (*dnswire.Message, int, error) {
		msg, err := g.Query(runCtx, "shared.example", dnswire.TypeA)
		return msg, 1, err
	}

	// Leader parks in the exchange; wait until it is on the wire so the
	// goroutines below can only ever join as subscribers.
	leaderDone := make(chan flightResult, 1)
	go func() {
		res, _, _ := co.do(context.Background(), key, fn)
		leaderDone <- res
	}()
	for deadline := time.Now().Add(2 * time.Second); g.calls.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached the wire")
		}
		time.Sleep(time.Millisecond)
	}
	waitHits := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for co.Hits() < want {
			if time.Now().After(deadline) {
				t.Fatalf("hits = %d, want %d", co.Hits(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// One subscriber with a cancellable context, one patient subscriber.
	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan error, 1)
	go func() {
		_, _, err := co.do(ctx, key, fn)
		cancelled <- err
	}()
	patient := make(chan flightResult, 1)
	go func() {
		res, _, _ := co.do(context.Background(), key, fn)
		patient <- res
	}()
	waitHits(2)

	// Cancelling one subscriber returns its ctx error immediately...
	cancel()
	select {
	case err := <-cancelled:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled subscriber err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled subscriber never returned")
	}

	// ...while the flight keeps going for leader and patient subscriber.
	close(g.release)
	for _, ch := range []chan flightResult{leaderDone, patient} {
		select {
		case res := <-ch:
			if res.msg != g.msg {
				t.Fatalf("survivor got %+v", res)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("survivor starved after another subscriber cancelled")
		}
	}
	if got := g.calls.Load(); got != 1 {
		t.Fatalf("wire exchanges = %d, want 1", got)
	}
}

func TestCoalescerSequentialFlightsDoNotShare(t *testing.T) {
	// Nothing outlives a flight: back-to-back lookups for the same key
	// each pay their own exchange.
	var calls atomic.Int64
	co := newCoalescer(context.Background())
	for i := 0; i < 3; i++ {
		_, coalesced, err := co.do(context.Background(), "k", func(context.Context) (*dnswire.Message, int, error) {
			calls.Add(1)
			return &dnswire.Message{}, 1, nil
		})
		if err != nil || coalesced {
			t.Fatalf("round %d: coalesced=%v err=%v", i, coalesced, err)
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestRunLiveCoalescesConcurrentDuplicates(t *testing.T) {
	g := newGateExchanger()
	// Feed of identical names, enough workers to hold them all in flight.
	const n = 32
	feed := strings.Repeat("shared.example\n", n)
	src := NewFeed(strings.NewReader(feed), dnswire.TypeA, trace.ErrorPolicy{})

	var buf bytes.Buffer
	reg := obs.NewRegistry()
	done := make(chan struct{})
	var sum *Summary
	var runErr error
	go func() {
		defer close(done)
		sum, runErr = RunLive(context.Background(), src, g, Options{Concurrency: n, Metrics: reg, Output: &buf})
	}()

	// Wait until every worker holds a lookup in flight — one leader on
	// the wire, the rest subscribed to it — then release the gate. calls
	// staying at 1 while 31 lookups wait is the coalescing guarantee.
	inflight := reg.Gauge("dnsscan_inflight", "")
	deadline := time.Now().Add(5 * time.Second)
	for inflight.Value() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d lookups in flight", inflight.Value())
		}
		time.Sleep(time.Millisecond)
	}
	// A worker is "in flight" a hair before it registers with the
	// coalescer; give the last ones a beat to subscribe.
	time.Sleep(10 * time.Millisecond)
	close(g.release)
	<-done

	if runErr != nil {
		t.Fatal(runErr)
	}
	if g.calls.Load() != 1 {
		t.Fatalf("wire exchanges = %d, want 1 for %d concurrent duplicates", g.calls.Load(), n)
	}
	if sum.Queries != n {
		t.Fatalf("summary queries = %d, want %d", sum.Queries, n)
	}
	if sum.Coalesced != n-1 {
		t.Fatalf("summary coalesced = %d, want %d", sum.Coalesced, n-1)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != n {
		t.Fatalf("output lines = %d, want %d", lines, n)
	}
	if sum.Count(StatusNoError) != n {
		t.Fatalf("status breakdown %+v", sum.ByStatus)
	}
}

func TestRunLiveNoCoalesce(t *testing.T) {
	var calls atomic.Int64
	ex := liveFunc(func(ctx context.Context, name string, qtype dnswire.Type) (*dnswire.Message, error) {
		calls.Add(1)
		msg := &dnswire.Message{}
		msg.Header.Response = true
		return msg, nil
	})
	src := NewFeed(strings.NewReader(strings.Repeat("same.example\n", 10)), dnswire.TypeA, trace.ErrorPolicy{})
	sum, err := RunLive(context.Background(), src, ex, Options{Concurrency: 4, NoCoalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 10 || sum.Coalesced != 0 {
		t.Fatalf("calls = %d coalesced = %d, want 10 and 0", calls.Load(), sum.Coalesced)
	}
}

// liveFunc adapts a function to LiveExchanger.
type liveFunc func(ctx context.Context, name string, qtype dnswire.Type) (*dnswire.Message, error)

func (f liveFunc) Query(ctx context.Context, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	return f(ctx, name, qtype)
}
