package bulk

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dnscontext/internal/dnswire"
	"dnscontext/internal/resolver"
	"dnscontext/internal/trace"
)

// updateScanGolden regenerates testdata/scan_digest.txt instead of
// comparing against it (for intentional model changes).
var updateScanGolden = flag.Bool("update-scan-golden", false, "rewrite the scan golden digest")

// traceQuarantineAll is the skip-everything feed policy used by tests.
func traceQuarantineAll() trace.ErrorPolicy {
	return trace.ErrorPolicy{Quarantine: true, Budget: trace.UnlimitedBudget()}
}

// runSimToBuf runs one simulated scan into a buffer with the given
// concurrency; everything else about the run is pinned.
func runSimToBuf(t *testing.T, cfg SimConfig, n, concurrency int) (*bytes.Buffer, *Summary) {
	t.Helper()
	b, err := NewSimBackend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSyntheticSource(b.Zones(), SyntheticConfig{N: n, Seed: cfg.Seed + 1, MissFraction: 0.02})
	var buf bytes.Buffer
	sum, err := RunSim(context.Background(), src, b, Options{Concurrency: concurrency, Output: &buf})
	if err != nil {
		t.Fatal(err)
	}
	return &buf, sum
}

// TestSimDeterministicAcrossConcurrency is the determinism contract:
// the same seed + feed produce a byte-identical JSONL stream (stronger
// than the sorted-digest criterion) at any concurrency.
func TestSimDeterministicAcrossConcurrency(t *testing.T) {
	cfg := SimConfig{Shards: 16, Seed: 42, ArrivalQPS: 20000, ZoneNames: 500}
	const n = 20000
	ref, refSum := runSimToBuf(t, cfg, n, 1)
	for _, conc := range []int{4, 8} {
		got, gotSum := runSimToBuf(t, cfg, n, conc)
		if !bytes.Equal(ref.Bytes(), got.Bytes()) {
			t.Fatalf("concurrency %d: output differs from the concurrency-1 run", conc)
		}
		if refSum.ByStatus != gotSum.ByStatus || refSum.Coalesced != gotSum.Coalesced {
			t.Fatalf("concurrency %d: summary differs: %+v vs %+v", conc, refSum, gotSum)
		}
	}
	if refSum.Queries != n {
		t.Fatalf("queries = %d, want %d", refSum.Queries, n)
	}
	if refSum.Count(StatusNXDomain) == 0 {
		t.Fatal("miss fraction produced no NXDOMAIN")
	}
	if refSum.Coalesced == 0 {
		t.Fatal("popular names under a Zipf feed should coalesce")
	}
}

// TestSimShardsArePartOfTheExperiment: unlike concurrency, the shard
// count changes which queries share a cache, so it changes results.
func TestSimShardsArePartOfTheExperiment(t *testing.T) {
	const n = 5000
	a, _ := runSimToBuf(t, SimConfig{Shards: 4, Seed: 42, ArrivalQPS: 20000, ZoneNames: 500}, n, 4)
	b, _ := runSimToBuf(t, SimConfig{Shards: 32, Seed: 42, ArrivalQPS: 20000, ZoneNames: 500}, n, 4)
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("different shard counts produced identical streams; sharding is not reaching the model")
	}
}

// TestSimNoCoalesceDisablesWindows: with coalescing off, no result may
// carry the coalesced flag and the summary count stays zero.
func TestSimNoCoalesceDisablesWindows(t *testing.T) {
	cfg := SimConfig{Shards: 8, Seed: 42, ArrivalQPS: 50000, ZoneNames: 200}
	b, err := NewSimBackend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSyntheticSource(b.Zones(), SyntheticConfig{N: 5000, Seed: 1})
	var buf bytes.Buffer
	sum, err := RunSim(context.Background(), src, b, Options{NoCoalesce: true, Output: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Coalesced != 0 {
		t.Fatalf("coalesced = %d with NoCoalesce", sum.Coalesced)
	}
	if strings.Contains(buf.String(), `"coalesced":true`) {
		t.Fatal("output carries coalesced results with NoCoalesce")
	}
}

// TestSimJSONLWellFormed: every output line must be valid JSON with the
// required fields — the hand-rolled encoder gets no second chances at
// 1M lines per run.
func TestSimJSONLWellFormed(t *testing.T) {
	buf, _ := runSimToBuf(t, SimConfig{Shards: 8, Seed: 7, ArrivalQPS: 20000, ZoneNames: 300}, 2000, 4)
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2000 {
		t.Fatalf("lines = %d, want 2000", len(lines))
	}
	for i, line := range lines {
		var rec struct {
			I        *uint64 `json:"i"`
			Name     string  `json:"name"`
			Type     string  `json:"type"`
			Status   string  `json:"status"`
			RCode    *uint8  `json:"rcode"`
			MS       float64 `json:"ms"`
			Attempts int     `json:"attempts"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v\n%s", i, err, line)
		}
		if rec.I == nil || *rec.I != uint64(i) {
			t.Fatalf("line %d: index field %v", i, rec.I)
		}
		if rec.Name == "" || rec.Status == "" || rec.RCode == nil || rec.Attempts < 1 {
			t.Fatalf("line %d: missing fields: %s", i, line)
		}
	}
}

// scanGoldenDigest computes the gate digest: sha256 over the sorted
// JSONL lines (sorting makes the digest stream-order independent, so
// the same gate can cover engines that emit out of feed order).
func scanGoldenDigest(data []byte) string {
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestScanGoldenDigest is the `make scan` gate: a pinned scan (fixed
// seed, synthetic feed, default platform) must reproduce the digest
// committed in testdata/scan_digest.txt at several concurrencies. A
// mismatch means the simulated path's results changed — either a bug,
// or an intentional model change that must update the golden file
// (run with -update-scan-golden).
func TestScanGoldenDigest(t *testing.T) {
	cfg := SimConfig{Shards: 32, Seed: 1, ArrivalQPS: 50000, ZoneNames: 1000, Platform: resolver.PlatformLocal}
	const n = 50000
	golden := filepath.Join("testdata", "scan_digest.txt")

	var digests []string
	for _, conc := range []int{1, 8} {
		buf, _ := runSimToBuf(t, cfg, n, conc)
		digests = append(digests, scanGoldenDigest(buf.Bytes()))
	}
	if digests[0] != digests[1] {
		t.Fatalf("digest varies with concurrency: %s vs %s", digests[0], digests[1])
	}

	if *updateScanGolden {
		if err := os.WriteFile(golden, []byte(digests[0]+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (generate it with: go test ./internal/bulk -run TestScanGoldenDigest -update-scan-golden)", err)
	}
	if got := digests[0]; got != strings.TrimSpace(string(want)) {
		t.Fatalf("scan digest %s, want %s\nthe simulated path's results changed; if intentional, regenerate with -update-scan-golden", got, strings.TrimSpace(string(want)))
	}
}

// TestSimSummaryConsistency: the summary must agree with the stream it
// summarizes.
func TestSimSummaryConsistency(t *testing.T) {
	buf, sum := runSimToBuf(t, SimConfig{Shards: 8, Seed: 9, ArrivalQPS: 20000, ZoneNames: 300}, 3000, 4)
	var total uint64
	for st := StatusNoError; st < numStatuses; st++ {
		total += sum.Count(st)
	}
	if total != sum.Queries || sum.Queries != 3000 {
		t.Fatalf("status counts sum to %d, queries %d", total, sum.Queries)
	}
	if got := uint64(strings.Count(buf.String(), "\n")); got != sum.Queries {
		t.Fatalf("stream has %d lines, summary says %d", got, sum.Queries)
	}
	if sum.LatP50 <= 0 || sum.LatP99 < sum.LatP50 || sum.LatMax < sum.LatP99 {
		t.Fatalf("latency percentiles out of order: %+v", sum)
	}
	coalesced := uint64(strings.Count(buf.String(), `"coalesced":true`))
	if coalesced != sum.Coalesced {
		t.Fatalf("stream has %d coalesced results, summary says %d", coalesced, sum.Coalesced)
	}
}

// TestWriteSummary smoke-checks the human rollup.
func TestWriteSummary(t *testing.T) {
	_, sum := runSimToBuf(t, SimConfig{Shards: 4, Seed: 3, ArrivalQPS: 20000, ZoneNames: 200}, 1000, 2)
	var buf bytes.Buffer
	if err := WriteSummary(&buf, sum); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"queries", "qps", "NOERROR", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestSimFeedSkipAccounting: a dirty file feed's skip count must reach
// the summary.
func TestSimFeedSkipAccounting(t *testing.T) {
	b, err := NewSimBackend(SimConfig{Shards: 4, Seed: 5, ZoneNames: 200})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for i := 0; i < 20; i++ {
		names = append(names, b.Zones().ByRank(i).Host)
	}
	in := strings.Join(names[:10], "\n") + "\nbad line here extra\n" + strings.Join(names[10:], "\n") + "\n"
	src := NewFeed(strings.NewReader(in), dnswire.TypeA, traceQuarantineAll())
	sum, err := RunSim(context.Background(), src, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Queries != 20 || sum.SkippedLines != 1 {
		t.Fatalf("queries %d skipped %d, want 20 and 1", sum.Queries, sum.SkippedLines)
	}
}

func BenchmarkBulkScanSim(b *testing.B) {
	const n = 1_000_000
	b.ReportAllocs()
	b.ResetTimer()
	var sum *Summary
	for i := 0; i < b.N; i++ {
		// A fresh backend per iteration: shard caches and coalescing
		// windows are keyed to the virtual clock, which restarts with
		// every run. Setup stays off the clock.
		b.StopTimer()
		be, err := NewSimBackend(SimConfig{Shards: 64, Seed: 1, ArrivalQPS: 50000})
		if err != nil {
			b.Fatal(err)
		}
		src := NewSyntheticSource(be.Zones(), SyntheticConfig{N: n, Seed: 2, MissFraction: 0.01})
		b.StartTimer()
		sum, err = RunSim(context.Background(), src, be, Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(sum.QPS, "qps")
	b.ReportMetric(sum.LatP50, "p50_ms")
	b.ReportMetric(sum.LatP99, "p99_ms")
	b.ReportMetric(float64(sum.Coalesced), "coalesced")
	if sum.Queries != n {
		b.Fatalf("queries = %d, want %d", sum.Queries, n)
	}
}
