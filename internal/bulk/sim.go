package bulk

import (
	"context"
	"fmt"
	"time"

	"dnscontext/internal/parallel"
	"dnscontext/internal/resolver"
	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
	"dnscontext/internal/zonedb"
)

// The simulated path. Determinism is the contract: the same (namespace
// seed, engine seed, feed, shard count, arrival rate) produces the same
// result for every query at ANY concurrency. The mechanism is sharding
// by name: query i arrives at virtual time i·gap, is routed to shard
// hash(name)%Shards, and each shard owns a fully independent resolver
// platform instance (its own cache partitions and RNG stream, seeded
// Seed+shardID) whose queries it processes in feed order. Workers
// parallelize ACROSS shards; within a shard execution is sequential, so
// the interleaving chosen by the scheduler can never reach the model.
// The shard count is part of the experiment definition (it decides which
// queries share a cache), the concurrency is not.

// SimConfig parameterizes the simulated backend.
type SimConfig struct {
	// Shards is the number of independent resolver instances (default
	// 64). Results depend on this value — it is the cache-sharing
	// topology — and not on Options.Concurrency.
	Shards int
	// Seed drives every shard's RNG (shard k uses Seed+k) and, with
	// ZoneConfig, the namespace build.
	Seed uint64
	// ArrivalQPS is the virtual query arrival rate; query i arrives at
	// virtual time i/ArrivalQPS (default 50000).
	ArrivalQPS float64
	// Platform selects the resolver platform profile to scan through
	// (default resolver.PlatformLocal).
	Platform resolver.PlatformID
	// ZoneNames sizes the synthetic namespace (default
	// zonedb.DefaultConfig().NumNames).
	ZoneNames int
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Shards <= 0 {
		c.Shards = 64
	}
	if c.ArrivalQPS <= 0 {
		c.ArrivalQPS = 50000
	}
	if c.ZoneNames <= 0 {
		c.ZoneNames = zonedb.DefaultConfig().NumNames
	}
	return c
}

// simShard is one independent slice of the resolver hierarchy plus the
// shard's in-flight coalescing window.
type simShard struct {
	rec *resolver.Recursive
	// inflight maps a query key to its most recent wire exchange; a
	// later query whose virtual arrival falls inside the exchange's
	// window joins it instead of re-asking (see resolveOne).
	inflight map[string]simWindow
}

// simWindow is one completed exchange's reusable span: its end in
// virtual time plus the answer every subscriber shares (answers are
// shared by reference — the resolver hands out fresh slices per lookup).
type simWindow struct {
	end      time.Duration
	answers  []trace.Answer
	rcode    uint8
	cache    bool
	attempts int
	tcp      bool
	servfail bool
}

// SimBackend is a sharded instance of the simulated resolver hierarchy,
// ready to absorb a bulk scan.
type SimBackend struct {
	cfg    SimConfig
	zones  *zonedb.DB
	shards []*simShard
	gap    time.Duration
	retry  resolver.RetryPolicy
}

// NewSimBackend builds the namespace and cfg.Shards independent platform
// instances. The same cfg always builds the same backend.
func NewSimBackend(cfg SimConfig) (*SimBackend, error) {
	cfg = cfg.withDefaults()
	zcfg := zonedb.DefaultConfig()
	zcfg.NumNames = cfg.ZoneNames
	zones, err := zonedb.New(zcfg, stats.NewRNG(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("bulk: %w", err)
	}
	var prof resolver.PlatformProfile
	found := false
	for _, p := range resolver.DefaultProfiles() {
		if p.ID == cfg.Platform {
			prof, found = p, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("bulk: unknown platform %v", cfg.Platform)
	}
	auth := resolver.NewAuthority(zones)
	b := &SimBackend{
		cfg:   cfg,
		zones: zones,
		gap:   time.Duration(float64(time.Second) / cfg.ArrivalQPS),
	}
	for k := 0; k < cfg.Shards; k++ {
		b.shards = append(b.shards, &simShard{
			rec:      resolver.NewRecursive(prof, auth, stats.NewRNG(cfg.Seed+uint64(k)+1)),
			inflight: make(map[string]simWindow),
		})
	}
	return b, nil
}

// Zones returns the namespace the backend serves (the synthetic feed
// samples from it).
func (b *SimBackend) Zones() *zonedb.DB { return b.zones }

// HitRate returns the mean shared-cache hit rate across shards.
func (b *SimBackend) HitRate() float64 {
	if len(b.shards) == 0 {
		return 0
	}
	var sum float64
	for _, sh := range b.shards {
		sum += sh.rec.HitRate()
	}
	return sum / float64(len(b.shards))
}

// simBatch is the engine's unit of streaming: queries are read from the
// source in fixed-size batches, sharded, resolved in parallel across
// shards, and emitted in feed order before the next batch is read, so
// memory stays bounded by the batch size while shard state (caches,
// coalescing windows) persists across batches.
const simBatch = 1 << 15

// RunSim streams src through the simulated backend and returns the run
// summary. Results are written to opts.Output in feed order (the stream
// itself is byte-deterministic, not merely its sorted digest).
func RunSim(ctx context.Context, src Source, b *SimBackend, opts Options) (*Summary, error) {
	start := time.Now()
	workers := parallel.Workers(opts.Concurrency)
	retry := opts.retry()
	met := newEngMetrics(opts.Metrics)
	out := newResultWriter(opts.Output)
	sum := &summarizer{}

	queries := make([]Query, 0, simBatch)
	results := make([]Result, simBatch)
	// Per-shard item lists, reused across batches.
	items := make([][]int32, len(b.shards))
	active := make([]int, 0, len(b.shards))

	var base uint64
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		queries = queries[:0]
		for len(queries) < simBatch && src.Scan() {
			queries = append(queries, src.Query())
		}
		if err := src.Err(); err != nil {
			return nil, err
		}
		if len(queries) == 0 {
			break
		}

		// Shard the batch: stable hash of the name, feed order within
		// each shard (ascending index ⇒ ascending virtual arrival).
		active = active[:0]
		for i := range queries {
			k := int(fnv64a(queries[i].Name) % uint64(len(b.shards)))
			if len(items[k]) == 0 {
				active = append(active, k)
			}
			items[k] = append(items[k], int32(i))
		}

		met.inflight.Set(int64(len(queries)))
		lane := sum.newSink() // batch-local; flushed under the summarizer lock
		err := parallel.ForEach(ctx, workers, len(active), func(a int) error {
			k := active[a]
			sh := b.shards[k]
			for _, idx := range items[k] {
				q := &queries[idx]
				r := &results[idx]
				b.resolveOne(sh, base+uint64(idx), q, retry, opts.NoCoalesce, r)
			}
			return nil
		})
		met.inflight.Set(0)
		if err != nil {
			return nil, err
		}

		rs := results[:len(queries)]
		for i := range rs {
			met.observe(&rs[i])
			lane.observe(&rs[i])
		}
		lane.flush()
		if err := out.writeBatch(rs); err != nil {
			return nil, err
		}
		for _, k := range active {
			items[k] = items[k][:0]
		}
		base += uint64(len(queries))
	}
	if err := out.flush(); err != nil {
		return nil, err
	}
	skipped := 0
	if f, ok := src.(*Feed); ok {
		skipped = f.Stats().Skipped
	}
	return sum.finish(time.Since(start), skipped), nil
}

// resolveOne resolves one query on its shard at virtual arrival time
// gi·gap. Coalescing: queries for the same (name, type) whose arrival
// falls inside the previous exchange's [start, end) window share that
// exchange — they are the queries that, on a real wire, would have found
// the exchange in flight. Subscribers inherit the leader's answer and
// are charged only the remaining wait (end − arrival); this is
// singleflight semantics replayed in virtual time, deterministic because
// same-name queries always land on the same shard in feed order.
func (b *SimBackend) resolveOne(sh *simShard, gi uint64, q *Query, rp resolver.RetryPolicy, noCoalesce bool, r *Result) {
	arrival := time.Duration(gi) * b.gap
	*r = Result{Index: gi, Name: q.Name, Type: q.Type}

	key := q.Name + "\x00" + q.Type.String()
	if !noCoalesce {
		if w, ok := sh.inflight[key]; ok && arrival < w.end {
			r.Status = windowStatus(&w)
			r.RCode = w.rcode
			r.Duration = w.end - arrival
			r.Attempts = w.attempts
			r.Coalesced = true
			r.Cache = w.cache
			r.TCPFallback = w.tcp
			r.Answers = w.answers
			return
		}
	}

	res := sh.rec.LookupWith(arrival, q.Name, rp)
	r.RCode = res.RCode
	r.Duration = res.Duration
	r.Attempts = res.Attempts
	r.Cache = res.FromCache
	r.TCPFallback = res.TCPFallback
	r.Answers = res.Answers
	if res.ServFail {
		r.Status = StatusTimeout
	} else {
		r.Status = statusOfRCode(res.RCode)
	}
	if !noCoalesce {
		sh.inflight[key] = simWindow{
			end:      arrival + res.Duration,
			answers:  res.Answers,
			rcode:    res.RCode,
			cache:    res.FromCache,
			attempts: res.Attempts,
			tcp:      res.TCPFallback,
			servfail: res.ServFail,
		}
	}
}

func windowStatus(w *simWindow) Status {
	if w.servfail {
		return StatusTimeout
	}
	return statusOfRCode(w.rcode)
}

// fnv64a is the stable shard hash (FNV-1a over the name bytes).
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
