package bulk

import (
	"bytes"
	"strings"
	"testing"

	"dnscontext/internal/dnswire"
	"dnscontext/internal/trace"
)

// FuzzFeed throws arbitrary bytes at the feed reader. Whatever the
// input — malformed lines, embedded NULs, non-UTF8 bytes, megabyte
// lines — the feed must never panic, every yielded query must satisfy
// the documented name contract, and the skip accounting must balance
// (Lines == Queries + Skipped).
func FuzzFeed(f *testing.F) {
	f.Add([]byte("www.example.com\nmail.example.com AAAA\n"))
	f.Add([]byte("# comment\n\nname.example TXT\n"))
	f.Add([]byte("bad name with spaces everywhere\n"))
	f.Add([]byte("nul\x00byte.example\n"))
	f.Add([]byte{0xff, 0xfe, 0x00, 0x41, 0x0a})
	f.Add([]byte("no.trailing.newline"))
	f.Add([]byte("name.example BOGUS\n"))
	f.Add([]byte(strings.Repeat("x", 8192) + "\n"))
	f.Add([]byte(strings.Repeat("a.example\n", 50)))
	f.Add([]byte("\r\n\r\nname.example\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fd := NewFeed(bytes.NewReader(data), dnswire.TypeA, trace.ErrorPolicy{
			Quarantine: true,
			Budget:     trace.UnlimitedBudget(),
		})
		queries := 0
		for fd.Scan() {
			q := fd.Query()
			if q.Name == "" || len(q.Name) > 253 {
				t.Fatalf("yielded name %q violates the length contract", q.Name)
			}
			for i := 0; i < len(q.Name); i++ {
				if !nameByteOK(q.Name[i]) {
					t.Fatalf("yielded name %q contains forbidden byte %#x", q.Name, q.Name[i])
				}
			}
			if q.Type == 0 {
				t.Fatalf("yielded query %+v with zero type", q)
			}
			queries++
		}
		if err := fd.Err(); err != nil {
			// An unlimited quarantine budget means the only acceptable stop
			// is clean EOF; the reader cannot fail on a bytes.Reader.
			t.Fatalf("feed error on in-memory input: %v", err)
		}
		st := fd.Stats()
		if st.Queries != queries {
			t.Fatalf("stats report %d queries, scan yielded %d", st.Queries, queries)
		}
		if st.Lines != st.Queries+st.Skipped {
			t.Fatalf("accounting broken: %+v", st)
		}
		if len(fd.Skipped()) != st.Skipped {
			t.Fatalf("retained %d quarantine records, stats say %d", len(fd.Skipped()), st.Skipped)
		}
	})
}
