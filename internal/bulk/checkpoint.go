package bulk

import (
	"encoding/binary"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"sync"
	"time"

	"dnscontext/internal/checkpoint"
)

// Checkpoint/resume for live scans. A killed 1M-name run is real money
// on a real network; resuming must neither re-pay completed queries nor
// drop or duplicate their output lines. The invariant that makes this
// exact rather than approximate: an index is marked complete in the
// same resultWriter critical section that buffers its JSONL line, and a
// checkpoint snapshots (completed set, flushed output offset) under
// that same lock — so output[0:offset] contains exactly the
// checkpointed indices' lines. Resume truncates the output file back to
// the recorded offset (discarding any torn tail the kill left behind)
// and the feeder skips the completed indices.

// CheckpointConfig parameterizes resumable live runs (Options.Checkpoint).
type CheckpointConfig struct {
	// Path is the checkpoint file location. Required; empty disables
	// checkpointing.
	Path string
	// Interval is how often the run persists progress (default 2 s).
	Interval time.Duration
	// FeedSig identifies the feed: resume refuses a checkpoint recorded
	// against a different signature, because index-based resume against a
	// different feed would silently stitch two scans together. Hash
	// whatever defines the feed (file path, synthetic seed and size,
	// query type).
	FeedSig uint64
	// Resume loads Path (if present) and continues: the output file is
	// truncated to the recorded offset and completed indices are skipped.
	// A missing checkpoint file starts a fresh run.
	Resume bool
	// File is the output file the JSONL stream appends to — the same
	// stream Options.Output wraps. Required for Resume (truncation);
	// optional otherwise.
	File *os.File
}

func (c CheckpointConfig) withDefaults() CheckpointConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	return c
}

// scanCkptVersion is the on-disk format version of the scan checkpoint
// payload (inside the internal/checkpoint envelope).
const scanCkptVersion = 1

// ScanCheckpoint is the persisted progress of a live scan.
type ScanCheckpoint struct {
	// FeedSig is the feed identity the progress belongs to.
	FeedSig uint64
	// Watermark: every index in [0, Watermark) is complete.
	Watermark uint64
	// Extras are completed indices ≥ Watermark (completion is
	// out of order across workers), sorted ascending.
	Extras []uint64
	// OutputOffset is the output file length containing exactly the
	// completed indices' lines.
	OutputOffset int64
}

func (c *ScanCheckpoint) encode() []byte {
	buf := make([]byte, 0, 28+8*len(c.Extras))
	buf = binary.LittleEndian.AppendUint64(buf, c.FeedSig)
	buf = binary.LittleEndian.AppendUint64(buf, c.Watermark)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.OutputOffset))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Extras)))
	for _, e := range c.Extras {
		buf = binary.LittleEndian.AppendUint64(buf, e)
	}
	return buf
}

func decodeScanCheckpoint(payload []byte) (*ScanCheckpoint, error) {
	if len(payload) < 28 {
		return nil, fmt.Errorf("bulk: scan checkpoint payload too short (%d bytes)", len(payload))
	}
	c := &ScanCheckpoint{
		FeedSig:      binary.LittleEndian.Uint64(payload[0:8]),
		Watermark:    binary.LittleEndian.Uint64(payload[8:16]),
		OutputOffset: int64(binary.LittleEndian.Uint64(payload[16:24])),
	}
	n := binary.LittleEndian.Uint32(payload[24:28])
	if uint64(len(payload)-28) != uint64(n)*8 {
		return nil, fmt.Errorf("bulk: scan checkpoint extras length mismatch")
	}
	for i := uint32(0); i < n; i++ {
		c.Extras = append(c.Extras, binary.LittleEndian.Uint64(payload[28+8*i:]))
	}
	return c, nil
}

// saveScanCheckpoint persists c to path via the atomic checkpoint layer.
func saveScanCheckpoint(path string, c *ScanCheckpoint) error {
	return checkpoint.Save(path, scanCkptVersion, c.encode())
}

// loadScanCheckpoint reads the checkpoint at path; a missing file
// returns (nil, nil) — fresh start.
func loadScanCheckpoint(path string) (*ScanCheckpoint, error) {
	payload, err := checkpoint.Load(path, scanCkptVersion)
	if err != nil {
		if _, ok := err.(*fs.PathError); ok && os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return decodeScanCheckpoint(payload)
}

// scanTracker is the completed-index set, compressed as a watermark
// (everything below is done) plus an out-of-order extras set. With W
// workers the extras set stays O(W)-sized: completions trail the feed
// by at most the in-flight window, so the watermark chases the frontier
// closely.
//
// The tracker has its own lock because the feeder reads (done) while
// workers write (complete, under the resultWriter lock). Lock order is
// always resultWriter.mu → scanTracker.mu, never the reverse.
type scanTracker struct {
	mu        sync.Mutex
	watermark uint64
	extras    map[uint64]struct{}
}

func newScanTracker() *scanTracker {
	return &scanTracker{extras: make(map[uint64]struct{})}
}

// seed initializes the tracker from a loaded checkpoint (before the run
// starts; no locking needed).
func (t *scanTracker) seed(watermark uint64, extras []uint64) {
	t.watermark = watermark
	for _, e := range extras {
		if e >= watermark {
			t.extras[e] = struct{}{}
		}
	}
}

// complete marks idx done, advancing the watermark through any
// previously out-of-order completions it unblocks.
func (t *scanTracker) complete(idx uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case idx == t.watermark:
		t.watermark++
		for {
			if _, ok := t.extras[t.watermark]; !ok {
				break
			}
			delete(t.extras, t.watermark)
			t.watermark++
		}
	case idx > t.watermark:
		t.extras[idx] = struct{}{}
	}
	// idx < watermark would be a duplicate completion; the feeder's skip
	// makes that impossible.
}

// done reports whether idx completed (possibly in a previous run).
func (t *scanTracker) done(idx uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx < t.watermark {
		return true
	}
	_, ok := t.extras[idx]
	return ok
}

// snapshot returns the tracker state with extras sorted.
func (t *scanTracker) snapshot() (watermark uint64, extras []uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	extras = make([]uint64, 0, len(t.extras))
	for e := range t.extras {
		extras = append(extras, e)
	}
	sort.Slice(extras, func(i, j int) bool { return extras[i] < extras[j] })
	return t.watermark, extras
}
