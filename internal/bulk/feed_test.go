package bulk

import (
	"errors"
	"strings"
	"testing"

	"dnscontext/internal/dnswire"
	"dnscontext/internal/trace"
)

func collect(t *testing.T, f *Feed) []Query {
	t.Helper()
	var qs []Query
	for f.Scan() {
		qs = append(qs, f.Query())
	}
	return qs
}

func TestFeedParsesNamesAndTypes(t *testing.T) {
	in := "www.example.com\n" +
		"# a comment\n" +
		"\n" +
		"mail.example.com AAAA\n" +
		"  spaced.example.com \t TXT \n" +
		"crlf.example.com\r\n" +
		"_service._tcp.example.com ns\n" +
		"wild.*.example.com"
	f := NewFeed(strings.NewReader(in), dnswire.TypeA, trace.ErrorPolicy{})
	got := collect(t, f)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	want := []Query{
		{Name: "www.example.com", Type: dnswire.TypeA},
		{Name: "mail.example.com", Type: dnswire.TypeAAAA},
		{Name: "spaced.example.com", Type: dnswire.TypeTXT},
		{Name: "crlf.example.com", Type: dnswire.TypeA},
		{Name: "_service._tcp.example.com", Type: dnswire.TypeNS},
		{Name: "wild.*.example.com", Type: dnswire.TypeA},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d queries, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	st := f.Stats()
	if st.Lines != 6 || st.Queries != 6 || st.Skipped != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFeedStrictFailsOnFirstBadLine(t *testing.T) {
	in := "good.example\nbad name here extra\nnever.reached\n"
	f := NewFeed(strings.NewReader(in), dnswire.TypeA, trace.ErrorPolicy{})
	got := collect(t, f)
	if len(got) != 1 || got[0].Name != "good.example" {
		t.Fatalf("queries %+v", got)
	}
	if err := f.Err(); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want a line-2 parse failure", err)
	}
}

func TestFeedQuarantineSkipsAndCounts(t *testing.T) {
	in := "good.example\n" +
		"bad\x00null.example\n" + // NUL byte
		"ok.example MX\n" +
		strings.Repeat("x", 300) + "\n" + // name too long
		"ok2.example BOGUSTYPE\n" + // unknown type
		"last.example\n"
	var sunk []trace.Quarantined
	f := NewFeed(strings.NewReader(in), dnswire.TypeA, trace.ErrorPolicy{
		Quarantine: true,
		Budget:     trace.UnlimitedBudget(),
		Sink:       func(q trace.Quarantined) { sunk = append(sunk, q) },
	})
	got := collect(t, f)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("queries %+v", got)
	}
	st := f.Stats()
	if st.Lines != 6 || st.Queries != 3 || st.Skipped != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.Lines != st.Queries+st.Skipped {
		t.Fatalf("invariant broken: %+v", st)
	}
	if len(sunk) != 3 {
		t.Fatalf("sink got %d records, want 3", len(sunk))
	}
	if sunk[0].Line != 2 || !errors.Is(sunk[0].Err, errBadNameChar) {
		t.Fatalf("first quarantine %+v", sunk[0])
	}
	if !errors.Is(sunk[1].Err, errNameTooLong) {
		t.Fatalf("second quarantine %+v", sunk[1])
	}
	if !errors.Is(sunk[2].Err, errBadType) {
		t.Fatalf("third quarantine %+v", sunk[2])
	}
}

func TestFeedBudgetTrips(t *testing.T) {
	in := "bad one\nbad two\nbad three\ngood.example\n"
	f := NewFeed(strings.NewReader(in), dnswire.TypeA, trace.ErrorPolicy{
		Quarantine: true,
		Budget:     trace.ErrorBudget{MaxErrors: 2},
	})
	got := collect(t, f)
	if len(got) != 0 {
		t.Fatalf("queries %+v", got)
	}
	var be *trace.BudgetError
	if !errors.As(f.Err(), &be) {
		t.Fatalf("err = %v, want *trace.BudgetError", f.Err())
	}
	if be.Quarantined != 3 {
		t.Fatalf("budget error %+v", be)
	}
}

func TestFeedOversizedLineSkipped(t *testing.T) {
	// A line far beyond maxFeedLine must be consumed (not buffered whole)
	// and quarantined; the feed then continues with the next line.
	in := strings.Repeat("a", 1<<17) + "\nafter.example\n"
	f := NewFeed(strings.NewReader(in), dnswire.TypeA, trace.ErrorPolicy{Quarantine: true, Budget: trace.UnlimitedBudget()})
	got := collect(t, f)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "after.example" {
		t.Fatalf("queries %+v", got)
	}
	sk := f.Skipped()
	if len(sk) != 1 || !errors.Is(sk[0].Err, errLineTooLong) {
		t.Fatalf("skipped %+v", sk)
	}
	if len(sk[0].Text) > 128 {
		t.Fatalf("quarantine retained %d bytes of an oversized line", len(sk[0].Text))
	}
}

func TestFeedMidSizedOversizedLineSkipped(t *testing.T) {
	// Longer than maxFeedLine but well inside bufio's 64K read buffer:
	// the bound must hold even when ReadSlice returns the whole line in
	// one shot (no ErrBufferFull).
	in := strings.Repeat("b", maxFeedLine+1) + "\nafter.example\n"
	f := NewFeed(strings.NewReader(in), dnswire.TypeA, trace.ErrorPolicy{Quarantine: true, Budget: trace.UnlimitedBudget()})
	got := collect(t, f)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "after.example" {
		t.Fatalf("queries %+v", got)
	}
	sk := f.Skipped()
	if len(sk) != 1 || !errors.Is(sk[0].Err, errLineTooLong) {
		t.Fatalf("skipped %+v", sk)
	}
	if len(sk[0].Text) > 128 {
		t.Fatalf("quarantine retained %d bytes of an oversized line", len(sk[0].Text))
	}
}

func TestFeedFinalLineWithoutNewline(t *testing.T) {
	f := NewFeed(strings.NewReader("one.example\ntwo.example"), dnswire.TypeA, trace.ErrorPolicy{})
	got := collect(t, f)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Name != "two.example" {
		t.Fatalf("queries %+v", got)
	}
}

func TestSyntheticSourceDeterministic(t *testing.T) {
	b, err := NewSimBackend(SimConfig{Shards: 4, Seed: 7, ZoneNames: 200})
	if err != nil {
		t.Fatal(err)
	}
	cfg := SyntheticConfig{N: 500, Seed: 3, MissFraction: 0.1}
	a := NewSyntheticSource(b.Zones(), cfg)
	c := NewSyntheticSource(b.Zones(), cfg)
	n, misses := 0, 0
	for a.Scan() {
		if !c.Scan() {
			t.Fatal("streams diverge in length")
		}
		if a.Query() != c.Query() {
			t.Fatalf("query %d: %+v vs %+v", n, a.Query(), c.Query())
		}
		if strings.HasPrefix(a.Query().Name, "void.miss") {
			misses++
		}
		n++
	}
	if c.Scan() {
		t.Fatal("streams diverge in length")
	}
	if n != 500 {
		t.Fatalf("produced %d queries, want 500", n)
	}
	if misses == 0 || misses == n {
		t.Fatalf("misses = %d of %d, want a strict fraction", misses, n)
	}
}
