package bulk

import (
	"io"
	"sync"
	"time"

	"dnscontext/internal/dnswire"
	"dnscontext/internal/obs"
	"dnscontext/internal/resolver"
	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
)

// Status is the coarse outcome of one lookup, ZDNS-style: the RCode
// classes the analysis cares about plus the two client-synthesized
// failures (timeout giveup, transport error).
type Status uint8

// Lookup outcomes.
const (
	StatusNoError Status = iota
	StatusNXDomain
	StatusServFail
	StatusRefused
	StatusTimeout // every attempt silent; the client gave up
	StatusError   // transport or encode error (live path only)
	StatusBusy    // client-side ID-space exhaustion (dnsserver.ErrPoolBusy)
	numStatuses
)

// String returns the JSONL spelling of s.
func (s Status) String() string {
	switch s {
	case StatusNoError:
		return "NOERROR"
	case StatusNXDomain:
		return "NXDOMAIN"
	case StatusServFail:
		return "SERVFAIL"
	case StatusRefused:
		return "REFUSED"
	case StatusTimeout:
		return "TIMEOUT"
	case StatusError:
		return "ERROR"
	case StatusBusy:
		return "BUSY"
	}
	return "UNKNOWN"
}

// statusOfRCode maps a response RCode to its Status.
func statusOfRCode(rc uint8) Status {
	switch rc {
	case 0:
		return StatusNoError
	case 3:
		return StatusNXDomain
	case 5:
		return StatusRefused
	default:
		return StatusServFail
	}
}

// Result is one completed lookup, ready for the output pipeline.
type Result struct {
	// Index is the query's 0-based position in the feed; output order is
	// unspecified on the live path, so Index is what makes the JSONL
	// stream canonically sortable.
	Index  uint64
	Name   string
	Type   dnswire.Type
	Status Status
	RCode  uint8
	// Answers carry the response addresses with their TTLs.
	Answers []trace.Answer
	// Duration is the per-query wall time: virtual (deterministic) on the
	// simulated path, real on the live path.
	Duration time.Duration
	// Attempts is the number of wire transmissions the exchange cost (the
	// leader's count for coalesced subscribers).
	Attempts int
	// Coalesced is true when this query shared another query's in-flight
	// wire exchange instead of sending its own.
	Coalesced bool
	// Cache is true when the simulated platform answered from its shared
	// frontend cache (meaningless on the live path).
	Cache bool
	// TCPFallback is true when a truncated UDP response was re-fetched
	// over TCP (simulated path).
	TCPFallback bool
	// Err carries the live path's transport error, if any.
	Err error
}

// Options parameterizes an engine run. The zero value is usable: default
// concurrency, coalescing on, summary collection on, no metrics.
type Options struct {
	// Concurrency bounds parallelism: worker goroutines over shards on
	// the simulated path, in-flight queries on the live path. 0 means
	// GOMAXPROCS (sim) / 128 (live).
	Concurrency int
	// NoCoalesce disables in-flight query deduplication.
	NoCoalesce bool
	// Retry is the client retry ladder. Zero value means
	// resolver.DefaultRetryPolicy.
	Retry resolver.RetryPolicy
	// Metrics, when non-nil, receives the engine's instruments
	// (dnsscan_* families). Observation never changes results.
	Metrics *obs.Registry
	// Output receives the JSONL result stream; nil discards results.
	Output io.Writer
	// Checkpoint, when non-nil with a Path, makes the live run resumable:
	// completed indices and the corresponding output offset are persisted
	// periodically, and a later run with Resume set picks up where the
	// killed one stopped without duplicating or dropping output lines.
	// Ignored by the simulated path (deterministic runs re-run cheaply).
	Checkpoint *CheckpointConfig
}

func (o Options) retry() resolver.RetryPolicy {
	if o.Retry == (resolver.RetryPolicy{}) {
		return resolver.DefaultRetryPolicy()
	}
	return o.Retry
}

// engMetrics is the engine's instrument set; all fields are nil-safe.
type engMetrics struct {
	queries   *obs.Counter
	inflight  *obs.Gauge
	coalesced *obs.Counter
	latency   *obs.Timer
	byStatus  *obs.CounterVec
}

func newEngMetrics(reg *obs.Registry) engMetrics {
	if reg == nil {
		return engMetrics{}
	}
	return engMetrics{
		queries:   reg.Counter("dnsscan_queries_total", "Lookups completed by the bulk engine."),
		inflight:  reg.Gauge("dnsscan_inflight", "Lookups currently in flight."),
		coalesced: reg.Counter("dnsscan_coalesce_hits_total", "Lookups answered by joining another query's in-flight exchange."),
		latency:   reg.Timer("dnsscan_lookup_seconds", "Per-lookup duration (virtual on the simulated path)."),
		byStatus:  reg.CounterVec("dnsscan_results_total", "Lookups by outcome status.", "status"),
	}
}

func (m *engMetrics) observe(r *Result) {
	m.queries.Inc()
	m.latency.Observe(r.Duration)
	if r.Coalesced {
		m.coalesced.Inc()
	}
	if m.byStatus != nil {
		m.byStatus.With(r.Status.String()).Inc()
	}
}

// Summary is the end-of-run rollup the engine prints after the JSONL
// stream: outcome breakdown, throughput, and latency percentiles.
type Summary struct {
	Queries   uint64
	Coalesced uint64
	ByStatus  [numStatuses]uint64
	// Feed accounting: malformed lines skipped at ingest.
	SkippedLines int
	// Wall is the real elapsed time of the run; QPS is Queries/Wall.
	Wall time.Duration
	QPS  float64
	// Latency percentiles in milliseconds over per-query durations
	// (virtual on the simulated path, wall on the live path).
	LatP50, LatP90, LatP99, LatMax, LatMean float64
}

// Count returns the tally for one status.
func (s *Summary) Count(st Status) uint64 { return s.ByStatus[st] }

// summarizer accumulates results into a Summary. Latency samples are
// collected into per-caller slices (see newSink) and merged at Finish,
// so the hot path takes no lock beyond its own slice append.
type summarizer struct {
	mu      sync.Mutex
	sum     Summary
	samples [][]float64 // merged at Finish
}

// sink is one goroutine-local accumulation lane.
type sink struct {
	s       *summarizer
	counts  [numStatuses]uint64
	queries uint64
	coal    uint64
	lat     []float64
}

func (s *summarizer) newSink() *sink { return &sink{s: s} }

func (k *sink) observe(r *Result) {
	k.queries++
	if r.Coalesced {
		k.coal++
	}
	k.counts[r.Status]++
	k.lat = append(k.lat, float64(r.Duration)/float64(time.Millisecond))
}

// flush folds the sink into the summarizer; call once per lane.
func (k *sink) flush() {
	k.s.mu.Lock()
	defer k.s.mu.Unlock()
	k.s.sum.Queries += k.queries
	k.s.sum.Coalesced += k.coal
	for i, c := range k.counts {
		k.s.sum.ByStatus[i] += c
	}
	k.s.samples = append(k.s.samples, k.lat)
}

// finish computes the derived fields and returns the summary.
func (s *summarizer) finish(wall time.Duration, skipped int) *Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sum.Wall = wall
	s.sum.SkippedLines = skipped
	if wall > 0 {
		s.sum.QPS = float64(s.sum.Queries) / wall.Seconds()
	}
	n := 0
	for _, lane := range s.samples {
		n += len(lane)
	}
	if n > 0 {
		e := stats.NewECDF(n)
		for _, lane := range s.samples {
			e.AddAll(lane)
		}
		s.sum.LatP50 = e.Quantile(0.50)
		s.sum.LatP90 = e.Quantile(0.90)
		s.sum.LatP99 = e.Quantile(0.99)
		s.sum.LatMax = e.Max()
		s.sum.LatMean = e.Mean()
	}
	return &s.sum
}
