package bulk

import (
	"context"
	"errors"
	"sync"
	"time"

	"dnscontext/internal/dnsserver"
	"dnscontext/internal/dnswire"
	"dnscontext/internal/trace"
)

// The live path: the same feed → coalesce → output pipeline, but the
// exchange is a real wire exchange against a running dnsserver. There is
// no determinism contract here — the kernel scheduler, the socket
// buffers, and the server's shedding decide outcomes — which is exactly
// the point: this is the load generator that exercises the hardened
// server far beyond `make soak`.

// LiveExchanger is the wire dependency of RunLive: one blocking exchange
// per call, safe for arbitrary concurrency. *dnsserver.ClientPool is the
// production implementation (sharded UDP sockets); tcpExchanger wraps
// the per-connection TCP client; tests substitute counters.
type LiveExchanger interface {
	Query(ctx context.Context, name string, qtype dnswire.Type) (*dnswire.Message, error)
}

// TCPExchanger adapts the one-connection-per-query TCP client to the
// engine. Retries follow the QueryTCP contract: timeouts retry,
// mid-exchange resets do not.
type TCPExchanger struct {
	Client *dnsserver.Client
}

// Query performs one TCP exchange. ctx is honored only between
// attempts (the underlying client uses deadlines, not contexts).
func (t *TCPExchanger) Query(ctx context.Context, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t.Client.QueryTCP(name, qtype)
}

// defaultLiveConcurrency bounds in-flight queries when Options leaves
// Concurrency zero on the live path.
const defaultLiveConcurrency = 128

// RunLive streams src against a live exchanger with opts.Concurrency
// workers (each holding at most one query in flight) and returns the run
// summary. Output order is completion order; Result.Index makes the
// stream canonically sortable. Queries for the same (name, type) that
// overlap in flight share one wire exchange unless opts.NoCoalesce.
func RunLive(ctx context.Context, src Source, ex LiveExchanger, opts Options) (*Summary, error) {
	start := time.Now()
	workers := opts.Concurrency
	if workers <= 0 {
		workers = defaultLiveConcurrency
	}
	met := newEngMetrics(opts.Metrics)
	out := newResultWriter(opts.Output)
	sum := &summarizer{}
	// The run context is cancelled on a sticky output error so the feeder
	// (which blocks sending tasks) unwinds instead of waiting on workers
	// that have stopped draining.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	co := newCoalescer(ctx)

	type task struct {
		idx uint64
		q   Query
	}
	tasks := make(chan task, workers)
	var (
		wg       sync.WaitGroup
		writeErr error
		errOnce  sync.Once
	)
	fail := func(err error) {
		errOnce.Do(func() {
			writeErr = err
			cancel()
		})
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			lane := sum.newSink()
			defer lane.flush()
			for t := range tasks {
				r := Result{Index: t.idx, Name: t.q.Name, Type: t.q.Type}
				met.inflight.Add(1)
				began := time.Now()
				if opts.NoCoalesce {
					msg, err := ex.Query(ctx, t.q.Name, t.q.Type)
					fillLive(&r, msg, err, 0, false)
				} else {
					key := t.q.Name + "\x00" + t.q.Type.String()
					res, coalesced, err := co.do(ctx, key, func(runCtx context.Context) (*dnswire.Message, int, error) {
						msg, err := ex.Query(runCtx, t.q.Name, t.q.Type)
						return msg, 0, err
					})
					if err != nil {
						fillLive(&r, nil, err, 0, coalesced)
					} else {
						fillLive(&r, res.msg, res.err, res.attempts, coalesced)
					}
				}
				r.Duration = time.Since(began)
				met.inflight.Add(-1)
				met.observe(&r)
				lane.observe(&r)
				if err := out.write(&r); err != nil {
					fail(err)
					return
				}
				if ctx.Err() != nil {
					return
				}
			}
		}()
	}

	var feedErr error
	var n uint64
feed:
	for src.Scan() {
		select {
		case tasks <- task{idx: n, q: src.Query()}:
			n++
		case <-ctx.Done():
			feedErr = ctx.Err()
			break feed
		}
	}
	if feedErr == nil {
		feedErr = src.Err()
	}
	close(tasks)
	wg.Wait()
	// writeErr wins: an output failure cancels the run context, so the
	// feeder's context.Canceled is a symptom, not the cause.
	if writeErr != nil {
		return nil, writeErr
	}
	if feedErr != nil {
		return nil, feedErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := out.flush(); err != nil {
		return nil, err
	}
	skipped := 0
	if f, ok := src.(*Feed); ok {
		skipped = f.Stats().Skipped
	}
	return sum.finish(time.Since(start), skipped), nil
}

// fillLive classifies one live exchange outcome into the result.
func fillLive(r *Result, msg *dnswire.Message, err error, attempts int, coalesced bool) {
	r.Coalesced = coalesced
	r.Attempts = attempts
	if r.Attempts == 0 {
		r.Attempts = 1
	}
	if err != nil {
		r.Err = err
		// Everything non-timeout — transport errors, encode failures,
		// cancellation — is StatusError; a cancelled run discards its
		// summary anyway, so cancellation earns no status of its own.
		if errors.Is(err, dnsserver.ErrTimeout) {
			r.Status = StatusTimeout
		} else {
			r.Status = StatusError
		}
		return
	}
	r.RCode = uint8(msg.Header.RCode)
	r.Status = statusOfRCode(r.RCode)
	for _, rr := range msg.Answers {
		if (rr.Type == dnswire.TypeA || rr.Type == dnswire.TypeAAAA) && rr.Addr.IsValid() {
			r.Answers = append(r.Answers, trace.Answer{
				Addr: rr.Addr,
				TTL:  time.Duration(rr.TTL) * time.Second,
			})
		}
	}
}
