package bulk

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"dnscontext/internal/dnsserver"
	"dnscontext/internal/dnswire"
	"dnscontext/internal/trace"
)

// The live path: the same feed → coalesce → output pipeline, but the
// exchange is a real wire exchange against a running dnsserver. There is
// no determinism contract here — the kernel scheduler, the socket
// buffers, and the server's shedding decide outcomes — which is exactly
// the point: this is the load generator that exercises the hardened
// server far beyond `make soak`.

// LiveExchanger is the wire dependency of RunLive: one blocking exchange
// per call, safe for arbitrary concurrency. *dnsserver.ClientPool is the
// production implementation (sharded UDP sockets); tcpExchanger wraps
// the per-connection TCP client; tests substitute counters.
type LiveExchanger interface {
	Query(ctx context.Context, name string, qtype dnswire.Type) (*dnswire.Message, error)
}

// TCPExchanger adapts the one-connection-per-query TCP client to the
// engine. Retries follow the QueryTCP contract: timeouts retry,
// mid-exchange resets do not.
type TCPExchanger struct {
	Client *dnsserver.Client
}

// Query performs one TCP exchange. ctx is honored only between
// attempts (the underlying client uses deadlines, not contexts).
func (t *TCPExchanger) Query(ctx context.Context, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t.Client.QueryTCP(name, qtype)
}

// defaultLiveConcurrency bounds in-flight queries when Options leaves
// Concurrency zero on the live path.
const defaultLiveConcurrency = 128

// RunLive streams src against a live exchanger with opts.Concurrency
// workers (each holding at most one query in flight) and returns the run
// summary. Output order is completion order; Result.Index makes the
// stream canonically sortable. Queries for the same (name, type) that
// overlap in flight share one wire exchange unless opts.NoCoalesce.
func RunLive(ctx context.Context, src Source, ex LiveExchanger, opts Options) (*Summary, error) {
	start := time.Now()
	workers := opts.Concurrency
	if workers <= 0 {
		workers = defaultLiveConcurrency
	}
	met := newEngMetrics(opts.Metrics)
	out := newResultWriter(opts.Output)
	sum := &summarizer{}

	// Checkpoint boot: load prior progress (resume), truncate the output
	// back to the recorded offset, and couple the completed-index tracker
	// into the writer.
	var ckCfg CheckpointConfig
	checkpointing := opts.Checkpoint != nil && opts.Checkpoint.Path != ""
	if checkpointing {
		ckCfg = opts.Checkpoint.withDefaults()
		tracker := newScanTracker()
		if ckCfg.Resume {
			snap, err := loadScanCheckpoint(ckCfg.Path)
			if err != nil {
				return nil, err
			}
			if snap != nil {
				if snap.FeedSig != ckCfg.FeedSig {
					return nil, fmt.Errorf("bulk: checkpoint %s records feed %016x, this run feeds %016x",
						ckCfg.Path, snap.FeedSig, ckCfg.FeedSig)
				}
				if ckCfg.File == nil {
					return nil, errors.New("bulk: resume requires CheckpointConfig.File (the output file to truncate)")
				}
				// Discard the torn tail past the last checkpoint: lines beyond
				// the offset belong to indices the checkpoint does not cover,
				// and the rerun will emit them again.
				if err := ckCfg.File.Truncate(snap.OutputOffset); err != nil {
					return nil, fmt.Errorf("bulk: truncating output for resume: %w", err)
				}
				if _, err := ckCfg.File.Seek(snap.OutputOffset, io.SeekStart); err != nil {
					return nil, fmt.Errorf("bulk: seeking output for resume: %w", err)
				}
				tracker.seed(snap.Watermark, snap.Extras)
				out.base = snap.OutputOffset
			} else if ckCfg.File != nil {
				// No checkpoint on disk (first run, or the prior run completed
				// and removed it): this is a fresh scan, but the caller opened
				// the output without O_TRUNC — resume must preserve prior
				// output until the checkpoint says how much is good. With
				// nothing to keep, truncate explicitly; otherwise a shorter
				// rerun would overwrite the old file from the front and leave
				// its stale tail dangling past the new last line.
				if err := ckCfg.File.Truncate(0); err != nil {
					return nil, fmt.Errorf("bulk: truncating output for fresh run: %w", err)
				}
				if _, err := ckCfg.File.Seek(0, io.SeekStart); err != nil {
					return nil, fmt.Errorf("bulk: seeking output for fresh run: %w", err)
				}
			}
		}
		out.tracker = tracker
	}
	// The run context is cancelled on a sticky output error so the feeder
	// (which blocks sending tasks) unwinds instead of waiting on workers
	// that have stopped draining.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	co := newCoalescer(ctx)

	type task struct {
		idx uint64
		q   Query
	}
	tasks := make(chan task, workers)
	var (
		wg       sync.WaitGroup
		writeErr error
		errOnce  sync.Once
	)
	fail := func(err error) {
		errOnce.Do(func() {
			writeErr = err
			cancel()
		})
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			lane := sum.newSink()
			defer lane.flush()
			for t := range tasks {
				r := Result{Index: t.idx, Name: t.q.Name, Type: t.q.Type}
				met.inflight.Add(1)
				began := time.Now()
				if opts.NoCoalesce {
					msg, err := ex.Query(ctx, t.q.Name, t.q.Type)
					fillLive(&r, msg, err, 0, false)
				} else {
					key := t.q.Name + "\x00" + t.q.Type.String()
					res, coalesced, err := co.do(ctx, key, func(runCtx context.Context) (*dnswire.Message, int, error) {
						msg, err := ex.Query(runCtx, t.q.Name, t.q.Type)
						return msg, 0, err
					})
					if err != nil {
						fillLive(&r, nil, err, 0, coalesced)
					} else {
						fillLive(&r, res.msg, res.err, res.attempts, coalesced)
					}
				}
				r.Duration = time.Since(began)
				met.inflight.Add(-1)
				// A query aborted by run cancellation never completed: no
				// line, no accounting. On a checkpointed run the resume
				// re-pays it — writing it here would freeze a transient
				// cancellation artifact into the output as an ERROR.
				if r.Err != nil && errors.Is(r.Err, context.Canceled) && ctx.Err() != nil {
					return
				}
				met.observe(&r)
				lane.observe(&r)
				if err := out.write(&r); err != nil {
					fail(err)
					return
				}
				if ctx.Err() != nil {
					return
				}
			}
		}()
	}

	// The periodic checkpointer: snapshot (tracker, offset) consistently
	// and persist. Best-effort per tick; the final save below reports the
	// run's last word.
	var ckStop chan struct{}
	var ckDone chan struct{}
	if checkpointing {
		ckStop = make(chan struct{})
		ckDone = make(chan struct{})
		go func() {
			defer close(ckDone)
			tick := time.NewTicker(ckCfg.Interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					_ = saveScanProgress(out, ckCfg)
				case <-ckStop:
					return
				}
			}
		}()
	}

	var feedErr error
	var n uint64
feed:
	for src.Scan() {
		q := src.Query()
		idx := n
		n++
		if out.tracker != nil && out.tracker.done(idx) {
			continue // completed in a previous run; its line is already on disk
		}
		select {
		case tasks <- task{idx: idx, q: q}:
		case <-ctx.Done():
			feedErr = ctx.Err()
			break feed
		}
	}
	if feedErr == nil {
		feedErr = src.Err()
	}
	close(tasks)
	wg.Wait()
	if checkpointing {
		close(ckStop)
		<-ckDone
	}
	// writeErr wins: an output failure cancels the run context, so the
	// feeder's context.Canceled is a symptom, not the cause.
	if writeErr != nil {
		return nil, writeErr
	}
	flushErr := out.flush()
	interrupted := feedErr != nil || ctx.Err() != nil
	if checkpointing {
		if interrupted && flushErr == nil {
			// Persist final progress so a resume re-pays as little as
			// possible.
			_ = saveScanProgress(out, ckCfg)
		} else if !interrupted && flushErr == nil {
			// Clean completion: the checkpoint has served its purpose.
			_ = os.Remove(ckCfg.Path)
		}
	}
	if flushErr != nil {
		return nil, flushErr
	}
	skipped := 0
	if f, ok := src.(*Feed); ok {
		skipped = f.Stats().Skipped
	}
	s := sum.finish(time.Since(start), skipped)
	if feedErr != nil {
		// Interrupted runs keep their accounting: the partial summary
		// rides alongside the error (SIGINT still prints what was done).
		return s, feedErr
	}
	if err := ctx.Err(); err != nil {
		return s, err
	}
	return s, nil
}

// saveScanProgress persists one consistent progress snapshot.
func saveScanProgress(out *resultWriter, cfg CheckpointConfig) error {
	watermark, extras, offset, err := out.checkpointSnapshot()
	if err != nil {
		return err
	}
	return saveScanCheckpoint(cfg.Path, &ScanCheckpoint{
		FeedSig:      cfg.FeedSig,
		Watermark:    watermark,
		Extras:       extras,
		OutputOffset: offset,
	})
}

// fillLive classifies one live exchange outcome into the result.
func fillLive(r *Result, msg *dnswire.Message, err error, attempts int, coalesced bool) {
	r.Coalesced = coalesced
	r.Attempts = attempts
	if r.Attempts == 0 {
		r.Attempts = 1
	}
	if err != nil {
		r.Err = err
		// Timeout and client-side ID exhaustion get their own statuses —
		// "the server never answered" and "we couldn't even ask" are
		// different failures to a scan operator. Everything else —
		// transport errors, encode failures, circuit-open, cancellation —
		// is StatusError.
		switch {
		case errors.Is(err, dnsserver.ErrTimeout):
			r.Status = StatusTimeout
		case errors.Is(err, dnsserver.ErrPoolBusy):
			r.Status = StatusBusy
		default:
			r.Status = StatusError
		}
		return
	}
	r.RCode = uint8(msg.Header.RCode)
	r.Status = statusOfRCode(r.RCode)
	for _, rr := range msg.Answers {
		if (rr.Type == dnswire.TypeA || rr.Type == dnswire.TypeAAAA) && rr.Addr.IsValid() {
			r.Answers = append(r.Answers, trace.Answer{
				Addr: rr.Addr,
				TTL:  time.Duration(rr.TTL) * time.Second,
			})
		}
	}
}
