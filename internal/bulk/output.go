package bulk

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// resultWriter serializes results as JSONL. Encoding is hand-rolled into
// a reused buffer: names are charset-validated at ingest, so no field
// ever needs escaping, and the encoder allocates nothing per line. The
// writer is safe for concurrent use (the live path's workers share it);
// the simulated path emits batches in feed order under the same lock.
type resultWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte
	n   uint64
	// Checkpoint coupling (live path only; both nil/zero otherwise).
	// tracker.complete runs under mu, in the same critical section that
	// hands the line to the buffered writer — the exactly-once invariant:
	// at any checkpoint, output[0:base+bytes] contains precisely the lines
	// of the tracker's completed indices, each once.
	tracker *scanTracker
	base    int64 // output offset this run started appending at (resume)
	bytes   int64 // bytes accepted by w since then
}

// newResultWriter wraps w; a nil w discards results but still counts.
func newResultWriter(w io.Writer) *resultWriter {
	if w == nil {
		w = io.Discard
	}
	return &resultWriter{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 512)}
}

// write emits one result line and, when checkpointing, marks its index
// complete in the same critical section.
func (rw *resultWriter) write(r *Result) error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	rw.buf = appendResult(rw.buf[:0], r)
	rw.n++
	n, err := rw.w.Write(rw.buf)
	rw.bytes += int64(n)
	if err == nil && rw.tracker != nil {
		rw.tracker.complete(r.Index)
	}
	return err
}

// checkpointSnapshot flushes the buffered writer and returns a
// consistent (tracker state, output offset) pair: every line for the
// returned indices is durably past the bufio layer and accounted for in
// the offset, and no line for any other index precedes it.
func (rw *resultWriter) checkpointSnapshot() (watermark uint64, extras []uint64, offset int64, err error) {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if err := rw.w.Flush(); err != nil {
		return 0, nil, 0, err
	}
	watermark, extras = rw.tracker.snapshot()
	return watermark, extras, rw.base + rw.bytes, nil
}

// writeBatch emits a slice of results under one lock acquisition — the
// simulated path's per-batch flush, preserving feed order.
func (rw *resultWriter) writeBatch(rs []Result) error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	for i := range rs {
		rw.buf = appendResult(rw.buf[:0], &rs[i])
		rw.n++
		if _, err := rw.w.Write(rw.buf); err != nil {
			return err
		}
	}
	return nil
}

// flush drains the buffered writer.
func (rw *resultWriter) flush() error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.w.Flush()
}

// appendResult appends r's JSONL line (with trailing newline) to buf.
// Field order is fixed; default-false flags and empty collections are
// omitted, so the encoding is a pure deterministic function of the
// result — the property the simulated path's digest gate relies on.
func appendResult(buf []byte, r *Result) []byte {
	buf = append(buf, `{"i":`...)
	buf = strconv.AppendUint(buf, r.Index, 10)
	buf = append(buf, `,"name":"`...)
	buf = append(buf, r.Name...)
	buf = append(buf, `","type":"`...)
	buf = append(buf, r.Type.String()...)
	buf = append(buf, `","status":"`...)
	buf = append(buf, r.Status.String()...)
	buf = append(buf, `","rcode":`...)
	buf = strconv.AppendUint(buf, uint64(r.RCode), 10)
	buf = append(buf, `,"ms":`...)
	buf = strconv.AppendFloat(buf, float64(r.Duration.Nanoseconds())/1e6, 'f', 3, 64)
	buf = append(buf, `,"attempts":`...)
	buf = strconv.AppendInt(buf, int64(r.Attempts), 10)
	if r.Cache {
		buf = append(buf, `,"cache":true`...)
	}
	if r.Coalesced {
		buf = append(buf, `,"coalesced":true`...)
	}
	if r.TCPFallback {
		buf = append(buf, `,"tcp":true`...)
	}
	if len(r.Answers) > 0 {
		buf = append(buf, `,"answers":[`...)
		for i, a := range r.Answers {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, `{"addr":"`...)
			buf = a.Addr.AppendTo(buf)
			buf = append(buf, `","ttl":`...)
			buf = strconv.AppendInt(buf, int64(a.TTL.Seconds()), 10)
			buf = append(buf, '}')
		}
		buf = append(buf, ']')
	}
	if r.Err != nil {
		buf = append(buf, `,"error":`...)
		buf = strconv.AppendQuote(buf, r.Err.Error())
	}
	buf = append(buf, '}', '\n')
	return buf
}

// WriteSummary renders the end-of-run summary as a human-readable block
// (the stderr companion to the JSONL stream).
func WriteSummary(w io.Writer, s *Summary) error {
	_, err := fmt.Fprintf(w,
		"queries      %d (%.0f qps over %v)\n"+
			"  NOERROR    %d\n"+
			"  NXDOMAIN   %d\n"+
			"  SERVFAIL   %d\n"+
			"  REFUSED    %d\n"+
			"  TIMEOUT    %d\n"+
			"  ERROR      %d\n"+
			"  BUSY       %d\n"+
			"coalesced    %d\n"+
			"skipped      %d feed lines\n"+
			"latency ms   p50 %.3f  p90 %.3f  p99 %.3f  max %.3f  mean %.3f\n",
		s.Queries, s.QPS, s.Wall.Round(time.Millisecond),
		s.Count(StatusNoError), s.Count(StatusNXDomain), s.Count(StatusServFail),
		s.Count(StatusRefused), s.Count(StatusTimeout), s.Count(StatusError),
		s.Count(StatusBusy),
		s.Coalesced, s.SkippedLines,
		s.LatP50, s.LatP90, s.LatP99, s.LatMax, s.LatMean)
	return err
}
