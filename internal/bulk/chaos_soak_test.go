package bulk

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dnscontext/internal/chaos"
	"dnscontext/internal/dnsserver"
	"dnscontext/internal/dnswire"
	"dnscontext/internal/netsim"
	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
	"dnscontext/internal/zonedb"
)

// The chaos soak: the acceptance gate for PR 9. A scan driven through
// the real-socket fault proxy at aggressive fault rates must account
// for every feed index exactly once in its JSONL output, and a killed
// run must resume to output equivalent to an uninterrupted one.
// `make chaos` runs these at 100k names under -race; plain `go test`
// uses a smaller default so the package suite stays fast.

// soakNames returns the scan size: DNSCTX_CHAOS_NAMES or the default.
func soakNames(t *testing.T, def int) int {
	if s := os.Getenv("DNSCTX_CHAOS_NAMES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("DNSCTX_CHAOS_NAMES=%q: %v", s, err)
		}
		return n
	}
	return def
}

// jsonlLine is the decoded shape of one output line.
type jsonlLine struct {
	I      uint64 `json:"i"`
	Name   string `json:"name"`
	Type   string `json:"type"`
	Status string `json:"status"`
}

// parseJSONL decodes every line and asserts each index in [0, n)
// appears exactly once — the exactly-once invariant.
func parseJSONL(t *testing.T, data []byte, n uint64) []jsonlLine {
	t.Helper()
	lines := make([]jsonlLine, 0, n)
	seen := make(map[uint64]int, n)
	for _, raw := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if raw == "" {
			continue
		}
		var l jsonlLine
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("bad JSONL line %q: %v", raw, err)
		}
		seen[l.I]++
		lines = append(lines, l)
	}
	if uint64(len(lines)) != n {
		t.Fatalf("output lines = %d, want %d", len(lines), n)
	}
	for i := uint64(0); i < n; i++ {
		if seen[i] != 1 {
			t.Fatalf("index %d appears %d times, want exactly once", i, seen[i])
		}
	}
	return lines
}

// TestChaosSoak drives a scan through the UDP fault proxy — ≥2% loss,
// jitter, duplication, reordering, and a scheduled blackhole window —
// with every resilience mechanism on (adaptive timeouts, hedging,
// circuit breaker) and asserts nothing is lost or double-counted.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a long test")
	}
	zones, addr := startLiveServer(t)
	n := uint64(soakNames(t, 20_000))

	// Two faulty paths to the same server: both lose ≥2% of datagrams;
	// the second also blackholes completely for a window. Failover, the
	// circuit breaker, and hedging must route around the dead path, so
	// the scan survives what would sink a single-upstream run.
	lossy, err := chaos.NewUDP(chaos.Config{
		Upstream: addr,
		Profile: chaos.Profile{
			Loss:      0.02,
			Jitter:    500 * time.Microsecond,
			Reorder:   0.01,
			Duplicate: 0.01,
		},
		Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lossy.Close()
	holed, err := chaos.NewUDP(chaos.Config{
		Upstream: addr,
		Profile: chaos.Profile{
			Loss:   0.02,
			Jitter: 500 * time.Microsecond,
			Blackholes: []netsim.Window{
				{Start: 200 * time.Millisecond, End: 600 * time.Millisecond},
			},
		},
		Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer holed.Close()

	pool, err := dnsserver.NewClientPool("", dnsserver.ClientPoolConfig{
		Servers:    []string{lossy.Addr(), holed.Addr()},
		Sockets:    4,
		Timeout:    250 * time.Millisecond,
		Retries:    3,
		MaxTimeout: time.Second,
		Adaptive:   true,
		Hedge:      true,
		Breaker:    &dnsserver.BreakerConfig{FailureThreshold: 8, OpenFor: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	src := NewSyntheticSource(zones, SyntheticConfig{N: int(n), Seed: 5, MissFraction: 0.05})
	var buf bytes.Buffer
	sum, err := RunLive(context.Background(), src, pool, Options{Concurrency: 256, Output: &buf})
	if err != nil {
		t.Fatal(err)
	}

	parseJSONL(t, buf.Bytes(), n)
	if sum.Queries != n {
		t.Fatalf("summary queries = %d, want %d", sum.Queries, n)
	}
	var total uint64
	for _, c := range sum.ByStatus {
		total += c
	}
	if total != n {
		t.Fatalf("status counts sum to %d, want %d (%+v)", total, n, sum.ByStatus)
	}
	// The proxies must actually have hurt us, or the test proves nothing.
	if st := lossy.Stats(); st.Dropped == 0 {
		t.Fatalf("lossy proxy injected nothing: %+v", st)
	}
	if st := holed.Stats(); st.Dropped == 0 && st.Blackholed == 0 {
		t.Fatalf("blackholed proxy injected nothing: %+v", st)
	}
	// And the run must have survived: with failover, hedging, and
	// adaptive timeouts routing around the dead path, the overwhelming
	// majority must still resolve.
	answered := sum.Count(StatusNoError) + sum.Count(StatusNXDomain)
	if float64(answered) < 0.95*float64(n) {
		t.Fatalf("only %d/%d answered through the proxies (%+v)", answered, n, sum.ByStatus)
	}
}

// cancelAfterExchanger cancels a context after a fixed number of
// exchanges — a deterministic-ish mid-run "kill".
type cancelAfterExchanger struct {
	ex     LiveExchanger
	left   atomic.Int64
	cancel context.CancelFunc
}

func (c *cancelAfterExchanger) Query(ctx context.Context, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	if c.left.Add(-1) == 0 {
		c.cancel()
	}
	return c.ex.Query(ctx, name, qtype)
}

// TestResumeAfterKill: a checkpointed run cancelled mid-flight, with a
// torn tail scribbled past the last checkpoint, must resume to output
// equivalent to an uninterrupted run — every index exactly once, same
// (index, name, type, status) set.
func TestResumeAfterKill(t *testing.T) {
	if testing.Short() {
		t.Skip("resume soak is a long test")
	}
	zones, addr := startLiveServer(t)
	n := uint64(soakNames(t, 20_000))
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "scan.ckpt")
	outPath := filepath.Join(dir, "scan.jsonl")
	const feedSig = 0xfeedf00d

	newSrc := func() Source {
		return NewSyntheticSource(zones, SyntheticConfig{N: int(n), Seed: 11, MissFraction: 0.05})
	}
	newPool := func() *dnsserver.ClientPool {
		pool, err := dnsserver.NewClientPool(addr, dnsserver.ClientPoolConfig{Sockets: 4, Timeout: 2 * time.Second, Retries: 2})
		if err != nil {
			t.Fatal(err)
		}
		return pool
	}

	// The uninterrupted reference.
	var ref bytes.Buffer
	pool := newPool()
	if _, err := RunLive(context.Background(), newSrc(), pool, Options{Concurrency: 128, Output: &ref}); err != nil {
		t.Fatal(err)
	}
	pool.Close()

	// Run 1: checkpointing, killed after ~n/3 exchanges.
	out, err := os.OpenFile(outPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	pool = newPool()
	killer := &cancelAfterExchanger{ex: pool, cancel: cancel}
	killer.left.Store(int64(n / 3))
	sum, err := RunLive(ctx, newSrc(), killer, Options{
		Concurrency: 128,
		Output:      out,
		Checkpoint:  &CheckpointConfig{Path: ckptPath, Interval: 20 * time.Millisecond, FeedSig: feedSig, File: out},
	})
	cancel()
	pool.Close()
	if err != context.Canceled {
		t.Fatalf("killed run err = %v, want context.Canceled", err)
	}
	if sum == nil || sum.Queries == 0 || sum.Queries >= n {
		t.Fatalf("killed run summary = %+v, want partial accounting", sum)
	}
	// Simulate the abrupt-kill torn tail: garbage and a duplicated line
	// appended past what the checkpoint covers. Resume must discard it.
	if _, err := out.Seek(0, 2); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(out, `{"i":0,"name":"dupe.example","type":"A","status":"NOERROR","rcode":0,"ms":1.0,"attempts":1}`+"\n")
	fmt.Fprintf(out, `{"i":1,"name":"torn.exam`) // a line cut mid-write
	out.Close()

	// Run 2: resume to completion.
	out, err = os.OpenFile(outPath, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	pool = newPool()
	sum, err = RunLive(context.Background(), newSrc(), pool, Options{
		Concurrency: 128,
		Output:      out,
		Checkpoint:  &CheckpointConfig{Path: ckptPath, Interval: 20 * time.Millisecond, FeedSig: feedSig, Resume: true, File: out},
	})
	pool.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Queries >= n || sum.Queries == 0 {
		t.Fatalf("resumed run paid %d queries, want a proper remainder of %d", sum.Queries, n)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	// Clean completion removes the checkpoint.
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survived clean completion: %v", err)
	}

	// Equivalence: same exactly-once index set, same (i, name, type,
	// status) tuples as the uninterrupted reference.
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	got := parseJSONL(t, data, n)
	want := parseJSONL(t, ref.Bytes(), n)
	gotByIdx := make(map[uint64]jsonlLine, n)
	for _, l := range got {
		gotByIdx[l.I] = l
	}
	for _, w := range want {
		g := gotByIdx[w.I]
		if g != w {
			t.Fatalf("index %d: resumed %+v, reference %+v", w.I, g, w)
		}
	}
}

// TestResumeFeedSigMismatch: resuming against a different feed identity
// must refuse rather than stitch two scans together.
func TestResumeFeedSigMismatch(t *testing.T) {
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "scan.ckpt")
	if err := saveScanCheckpoint(ckptPath, &ScanCheckpoint{FeedSig: 1, Watermark: 10}); err != nil {
		t.Fatal(err)
	}
	out, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	_, err = RunLive(context.Background(), &endlessSource{}, okExchanger{}, Options{
		Output:     out,
		Checkpoint: &CheckpointConfig{Path: ckptPath, FeedSig: 2, Resume: true, File: out},
	})
	if err == nil || !strings.Contains(err.Error(), "feed") {
		t.Fatalf("err = %v, want feed-signature mismatch", err)
	}
}

// TestResumeWithoutCheckpointTruncatesOutput: resume opens the output
// without O_TRUNC (the checkpoint decides how much prior output is
// good), but when no checkpoint exists on disk the run is fresh —
// rerunning the same command line after a clean completion (which
// removed the checkpoint) must not overwrite the old file from the
// front and leave its longer stale tail as mixed old/new JSONL.
func TestResumeWithoutCheckpointTruncatesOutput(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "scan.jsonl")
	stale := strings.Repeat(`{"i":9,"name":"stale.example","type":"A","status":"NOERROR","rcode":0,"ms":1.0,"attempts":1}`+"\n", 64)
	if err := os.WriteFile(outPath, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := os.OpenFile(outPath, os.O_RDWR, 0o644) // resume mode: no O_TRUNC
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	src := NewFeed(strings.NewReader("a.example\nb.example\n"), dnswire.TypeA, trace.ErrorPolicy{})
	if _, err := RunLive(context.Background(), src, okExchanger{}, Options{
		Output: out,
		Checkpoint: &CheckpointConfig{
			Path: filepath.Join(dir, "missing.ckpt"), FeedSig: 7, Resume: true, File: out,
		},
	}); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "stale.example") {
		t.Fatalf("stale lines survived a fresh -resume run:\n%s", data)
	}
	parseJSONL(t, data, 2)
}

// BenchmarkBulkScanChaos is the scan-under-loss cell of the benchmark
// record: the same loopback scan as BenchmarkBulkScanLive, but through
// the fault proxy at 2% loss with jitter, once on the fixed retry
// ladder and once with adaptive timeouts + hedging. The custom metrics
// (qps, p50/p99, timeout_rate) quantify what the resilience machinery
// buys on an unreliable path.
func BenchmarkBulkScanChaos(b *testing.B) {
	zones, err := zonedb.New(zonedb.Config{
		NumNames: 2000, ZipfExponent: 1, CDNFraction: 0.3, CDNPoolSize: 5,
	}, stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	srv := dnsserver.NewServerWith(dnsserver.ZoneHandler(zones), dnsserver.Config{Workers: 8, QueueDepth: 4096}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Skipf("cannot bind loopback UDP: %v", err)
	}
	defer srv.Close()
	proxy, err := chaos.NewUDP(chaos.Config{
		Upstream: addr.String(),
		Profile:  chaos.Profile{Loss: 0.02, Jitter: 500 * time.Microsecond},
		Seed:     7,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer proxy.Close()

	const n = 100_000
	variants := []struct {
		name     string
		adaptive bool
	}{
		{"fixed", false},
		{"adaptive_hedge", true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			pool, err := dnsserver.NewClientPool(proxy.Addr(), dnsserver.ClientPoolConfig{
				Sockets: 8, Timeout: 250 * time.Millisecond, Retries: 3, MaxTimeout: time.Second,
				Adaptive: v.adaptive, Hedge: v.adaptive,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			b.ReportAllocs()
			b.ResetTimer()
			var sum *Summary
			for i := 0; i < b.N; i++ {
				src := NewSyntheticSource(zones, SyntheticConfig{N: n, Seed: 2, MissFraction: 0.01})
				sum, err = RunLive(context.Background(), src, pool, Options{Concurrency: 512})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(sum.QPS, "qps")
			b.ReportMetric(sum.LatP50, "p50_ms")
			b.ReportMetric(sum.LatP99, "p99_ms")
			b.ReportMetric(float64(sum.Count(StatusTimeout))/float64(sum.Queries), "timeout_rate")
			if sum.Queries != n {
				b.Fatalf("queries = %d, want %d", sum.Queries, n)
			}
		})
	}
}
