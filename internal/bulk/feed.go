// Package bulk is the ZDNS-class bulk lookup engine: it drives millions
// of DNS queries per run against either the simulated resolver hierarchy
// (deterministic under a seed) or a live dnsserver instance over real
// sockets, with a streaming name feed, sharded workers, in-flight query
// coalescing, retry ladders, and a JSONL output pipeline.
//
// The architecture follows ZDNS's separation (PAPERS.md: "ZDNS: A Fast
// DNS Toolkit for Internet Measurement"): a feed module streams names in
// bounded memory, a lookup layer owns sockets/retries/caching, and an
// output pipeline serializes results and an end-of-run summary without
// back-pressuring lookups. See DESIGN.md §7h for the engine model and
// the determinism contract on the simulated path.
package bulk

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"dnscontext/internal/dnswire"
	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
	"dnscontext/internal/zonedb"
)

// Query is one lookup request: a name and a query type.
type Query struct {
	Name string
	Type dnswire.Type
}

// Source streams queries one at a time in bounded memory. The iterator
// contract matches the trace scanners: Scan advances, Query returns the
// current item, Err reports what stopped the scan (nil at clean end).
type Source interface {
	Scan() bool
	Query() Query
	Err() error
}

// Feed parse failures, wrapped into the per-line skip records.
var (
	errEmptyName   = errors.New("empty name")
	errNameTooLong = errors.New("name exceeds 253 octets")
	errBadNameChar = errors.New("name contains a byte outside [A-Za-z0-9._*-]")
	errBadType     = errors.New("unknown query type")
	errExtraFields = errors.New("more than two fields")
	errLineTooLong = errors.New("line exceeds the feed's line-length bound")
)

// maxFeedLine bounds one feed line. DNS names cap at 253 octets, so
// anything near this bound is garbage; oversized lines are consumed and
// skipped without ever being buffered whole.
const maxFeedLine = 4096

// FeedStats summarizes a feed's progress: data lines seen, queries
// yielded, and malformed lines skipped (Lines = Queries + Skipped).
// Comment and blank lines are not counted.
type FeedStats struct {
	Lines   int
	Queries int
	Skipped int
}

// Feed reads queries from a name list: one name per line, optionally
// followed by a whitespace-separated query type ("www.example.com" or
// "www.example.com AAAA"). Blank lines and #-comments are ignored.
// Malformed lines — bad characters, oversized lines, unknown types,
// embedded NULs — are handled per the trace.ErrorPolicy: strict mode
// fails on the first one, quarantine mode diverts them (with line
// number, text, and cause) to the policy's sink until its error budget
// trips. Lines are parsed as views into the read buffer; only
// quarantined lines materialize a string.
type Feed struct {
	br          *bufio.Reader
	policy      trace.ErrorPolicy
	defaultType dnswire.Type

	q       Query
	line    int // physical line number
	lines   int // data lines processed
	skipped int
	quar    []trace.Quarantined
	err     error
	eof     bool
}

// NewFeed returns a feed over r. defaultType applies to lines without an
// explicit type (use dnswire.TypeA conventionally).
func NewFeed(r io.Reader, defaultType dnswire.Type, policy trace.ErrorPolicy) *Feed {
	if defaultType == 0 {
		defaultType = dnswire.TypeA
	}
	return &Feed{
		br:          bufio.NewReaderSize(r, 1<<16),
		policy:      policy,
		defaultType: defaultType,
	}
}

// Scan advances to the next query, reporting false at end of input or
// error (see Err).
func (f *Feed) Scan() bool {
	if f.err != nil || f.eof {
		return false
	}
	for {
		line, tooLong, err := f.readLine()
		if err != nil {
			if err == io.EOF {
				f.eof = true
				if len(line) == 0 && !tooLong {
					return false
				}
				// Fall through: parse the final unterminated line.
			} else {
				f.err = err
				return false
			}
		}
		if tooLong {
			if !f.skip(line, errLineTooLong) {
				return false
			}
			if f.eof {
				return false
			}
			continue
		}
		line = trimCR(line)
		if len(line) == 0 || line[0] == '#' {
			if f.eof {
				return false
			}
			continue
		}
		f.lines++
		q, perr := parseFeedLine(line, f.defaultType)
		if perr == nil {
			f.q = q
			return true
		}
		f.lines-- // skip() re-counts the line
		if !f.skip(line, perr) {
			return false
		}
		if f.eof {
			return false
		}
	}
}

// readLine returns the next physical line without its trailing \n. A
// line longer than maxFeedLine is consumed to its end and reported with
// tooLong=true and a truncated prefix for the quarantine record.
func (f *Feed) readLine() (line []byte, tooLong bool, err error) {
	f.line++
	line, err = f.br.ReadSlice('\n')
	if err == nil {
		line = line[:len(line)-1]
		if len(line) > maxFeedLine {
			// Fits the 64K read buffer but breaks the feed's bound: same
			// contract as the overflow path below — truncated prefix,
			// tooLong=true.
			prefix := line
			if len(prefix) > 128 {
				prefix = prefix[:128]
			}
			return append([]byte(nil), prefix...), true, nil
		}
		return line, false, nil
	}
	if err == bufio.ErrBufferFull || len(line) > maxFeedLine {
		// Keep a prefix for the skip record, then drain the rest.
		prefix := line
		if len(prefix) > 128 {
			prefix = prefix[:128]
		}
		head := append([]byte(nil), prefix...)
		for err == bufio.ErrBufferFull {
			line, err = f.br.ReadSlice('\n')
		}
		if err != nil && err != io.EOF {
			return head, true, err
		}
		return head, true, err // err is nil or io.EOF
	}
	if err == io.EOF {
		return line, false, io.EOF
	}
	return nil, false, err
}

// skip accounts one malformed line under the error policy. It reports
// false when the scan must stop (strict mode or a tripped budget).
func (f *Feed) skip(line []byte, cause error) bool {
	f.lines++
	q := trace.Quarantined{Line: f.line, Text: string(line), Err: cause}
	if !f.policy.Quarantine {
		f.err = fmt.Errorf("bulk: feed line %d: %w", f.line, cause)
		return false
	}
	f.skipped++
	if f.policy.Sink != nil {
		f.policy.Sink(q)
	} else {
		f.quar = append(f.quar, q)
	}
	if f.policy.Budget.Exceeded(f.skipped, f.lines) {
		f.err = &trace.BudgetError{Quarantined: f.skipped, Lines: f.lines, Last: q}
		return false
	}
	return true
}

// Query returns the query produced by the last successful Scan.
func (f *Feed) Query() Query { return f.q }

// Err returns the error that stopped the scan: nil at clean EOF, the
// parse error in strict mode, a *trace.BudgetError when the skip budget
// tripped, or the underlying read error.
func (f *Feed) Err() error { return f.err }

// Stats summarizes progress so far.
func (f *Feed) Stats() FeedStats {
	return FeedStats{Lines: f.lines, Queries: f.lines - f.skipped, Skipped: f.skipped}
}

// Skipped returns the malformed lines diverted so far (empty when the
// policy routes them to a Sink).
func (f *Feed) Skipped() []trace.Quarantined { return f.quar }

func trimCR(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		return line[:n-1]
	}
	return line
}

// parseFeedLine parses one data line into a Query.
func parseFeedLine(line []byte, defaultType dnswire.Type) (Query, error) {
	name, rest := splitWS(line)
	if len(name) == 0 {
		return Query{}, errEmptyName
	}
	if len(name) > 253 {
		return Query{}, errNameTooLong
	}
	for _, c := range name {
		if !nameByteOK(c) {
			return Query{}, errBadNameChar
		}
	}
	q := Query{Name: string(name), Type: defaultType}
	if len(rest) == 0 {
		return q, nil
	}
	typ, extra := splitWS(rest)
	if len(extra) != 0 {
		return Query{}, errExtraFields
	}
	t, ok := parseQType(typ)
	if !ok {
		return Query{}, fmt.Errorf("%w: %q", errBadType, typ)
	}
	q.Type = t
	return q, nil
}

// splitWS splits line at the first run of spaces/tabs, trimming leading
// and trailing whitespace from both parts.
func splitWS(line []byte) (head, rest []byte) {
	i := 0
	for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
		i++
	}
	j := i
	for j < len(line) && line[j] != ' ' && line[j] != '\t' {
		j++
	}
	k := j
	for k < len(line) && (line[k] == ' ' || line[k] == '\t') {
		k++
	}
	rest = line[k:]
	for len(rest) > 0 && (rest[len(rest)-1] == ' ' || rest[len(rest)-1] == '\t') {
		rest = rest[:len(rest)-1]
	}
	return line[i:j], rest
}

// nameByteOK reports whether c may appear in a feed hostname. The set is
// deliberately conservative — LDH plus '.', '_' (service labels), and
// '*' (wildcard probes) — so downstream JSONL encoding never needs
// escaping and garbage (control bytes, NULs, non-ASCII) is quarantined
// at ingest.
func nameByteOK(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '-' || c == '.' || c == '_' || c == '*':
		return true
	}
	return false
}

// parseQType maps a feed type token to a dnswire.Type. Mnemonics for
// every codec-supported type are accepted, case-sensitively matching
// dnswire's String forms plus lowercase.
func parseQType(tok []byte) (dnswire.Type, bool) {
	switch string(tok) {
	case "A", "a":
		return dnswire.TypeA, true
	case "AAAA", "aaaa":
		return dnswire.TypeAAAA, true
	case "NS", "ns":
		return dnswire.TypeNS, true
	case "CNAME", "cname":
		return dnswire.TypeCNAME, true
	case "SOA", "soa":
		return dnswire.TypeSOA, true
	case "PTR", "ptr":
		return dnswire.TypePTR, true
	case "MX", "mx":
		return dnswire.TypeMX, true
	case "TXT", "txt":
		return dnswire.TypeTXT, true
	case "ANY", "any":
		return dnswire.TypeANY, true
	}
	return 0, false
}

// SyntheticConfig parameterizes a SyntheticSource.
type SyntheticConfig struct {
	// N is the number of queries to produce.
	N int
	// Seed drives the popularity sampling; the same (zones, Seed, N,
	// MissFraction) always yields the same query stream.
	Seed uint64
	// MissFraction is the fraction of queries aimed at names outside the
	// namespace (NXDOMAIN exercise); default 0 means every name exists.
	MissFraction float64
	// Type is the query type for every query (default A).
	Type dnswire.Type
}

// SyntheticSource produces a deterministic Zipf-popularity query stream
// over a zonedb namespace — the feed used by the ≥1M-lookup benchmark
// runs, where materializing a name file would only measure the disk.
type SyntheticSource struct {
	zones *zonedb.DB
	cfg   SyntheticConfig
	rng   *stats.RNG
	i     int
	q     Query
}

// NewSyntheticSource returns a source producing cfg.N queries sampled
// from zones by popularity.
func NewSyntheticSource(zones *zonedb.DB, cfg SyntheticConfig) *SyntheticSource {
	if cfg.Type == 0 {
		cfg.Type = dnswire.TypeA
	}
	return &SyntheticSource{zones: zones, cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
}

// Scan advances to the next query.
func (s *SyntheticSource) Scan() bool {
	if s.i >= s.cfg.N {
		return false
	}
	s.i++
	if s.cfg.MissFraction > 0 && s.rng.Bool(s.cfg.MissFraction) {
		// A name shaped like the namespace's but guaranteed absent.
		s.q = Query{Name: fmt.Sprintf("void.miss%06d.example", s.rng.Intn(1000000)), Type: s.cfg.Type}
		return true
	}
	s.q = Query{Name: s.zones.Pick(s.rng).Host, Type: s.cfg.Type}
	return true
}

// Query returns the query produced by the last successful Scan.
func (s *SyntheticSource) Query() Query { return s.q }

// Err always returns nil; a synthetic stream cannot fail.
func (s *SyntheticSource) Err() error { return nil }
