package bulk

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dnscontext/internal/dnsserver"
	"dnscontext/internal/dnswire"
	"dnscontext/internal/stats"
	"dnscontext/internal/zonedb"
)

// startLiveServer boots an in-process dnsserver over real loopback UDP
// for the live-path tests.
func startLiveServer(t *testing.T) (*zonedb.DB, string) {
	t.Helper()
	zones, err := zonedb.New(zonedb.Config{
		NumNames: 200, ZipfExponent: 1, CDNFraction: 0.3, CDNPoolSize: 5,
	}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	srv := dnsserver.NewServerWith(dnsserver.ZoneHandler(zones), dnsserver.Config{Workers: 8, QueueDepth: 4096}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return zones, addr.String()
}

// TestRunLiveAgainstServer drives a real scan — synthetic feed, client
// pool, loopback wire — and checks the stream, the summary, and that the
// run leaves nothing behind: no goroutines beyond baseline, no queries
// in flight.
func TestRunLiveAgainstServer(t *testing.T) {
	zones, addr := startLiveServer(t)
	baseline := runtime.NumGoroutine()

	pool, err := dnsserver.NewClientPool(addr, dnsserver.ClientPoolConfig{
		Sockets: 4, Timeout: 2 * time.Second, Retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 5000
	src := NewSyntheticSource(zones, SyntheticConfig{N: n, Seed: 3, MissFraction: 0.05})
	var buf bytes.Buffer
	sum, err := RunLive(context.Background(), src, pool, Options{Concurrency: 256, Output: &buf})
	if err != nil {
		t.Fatal(err)
	}

	if sum.Queries != n {
		t.Fatalf("queries = %d, want %d", sum.Queries, n)
	}
	if got := strings.Count(buf.String(), "\n"); got != n {
		t.Fatalf("output lines = %d, want %d", got, n)
	}
	// A loopback scan must be essentially clean: every query answered,
	// misses as NXDOMAIN, no timeouts eaten silently.
	if sum.Count(StatusNoError) == 0 || sum.Count(StatusNXDomain) == 0 {
		t.Fatalf("status breakdown %+v", sum.ByStatus)
	}
	if bad := sum.Count(StatusError); bad != 0 {
		t.Fatalf("%d transport errors on loopback", bad)
	}
	if sum.Count(StatusNoError)+sum.Count(StatusNXDomain)+sum.Count(StatusTimeout) != n {
		t.Fatalf("status breakdown %+v", sum.ByStatus)
	}

	if got := pool.InFlight(); got != 0 {
		t.Fatalf("pool in-flight after run = %d, want 0", got)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	// Engine workers and pool readers must all be gone.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines %d, baseline %d — the run leaked", runtime.NumGoroutine(), baseline)
}

// BenchmarkBulkScanLive measures the live path end to end: synthetic
// feed → client pool → loopback UDP → in-process dnsserver. Smaller
// than the sim benchmark (real sockets are the bottleneck, not the
// engine) but still enough load to exercise the demux under pressure.
func BenchmarkBulkScanLive(b *testing.B) {
	zones, err := zonedb.New(zonedb.Config{
		NumNames: 2000, ZipfExponent: 1, CDNFraction: 0.3, CDNPoolSize: 5,
	}, stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	srv := dnsserver.NewServerWith(dnsserver.ZoneHandler(zones), dnsserver.Config{Workers: 8, QueueDepth: 4096}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Skipf("cannot bind loopback UDP: %v", err)
	}
	defer srv.Close()
	pool, err := dnsserver.NewClientPool(addr.String(), dnsserver.ClientPoolConfig{
		Sockets: 8, Timeout: 2 * time.Second, Retries: 2, Backoff: 1.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()

	const n = 200_000
	b.ReportAllocs()
	b.ResetTimer()
	var sum *Summary
	for i := 0; i < b.N; i++ {
		src := NewSyntheticSource(zones, SyntheticConfig{N: n, Seed: 2, MissFraction: 0.01})
		sum, err = RunLive(context.Background(), src, pool, Options{Concurrency: 2000})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(sum.QPS, "qps")
	b.ReportMetric(sum.LatP50, "p50_ms")
	b.ReportMetric(sum.LatP99, "p99_ms")
	b.ReportMetric(float64(sum.Count(StatusTimeout)), "timeouts")
	if sum.Queries != n {
		b.Fatalf("queries = %d, want %d", sum.Queries, n)
	}
}

// errWriter is a sticky output failure — every write fails, like -o on a
// full disk.
type errWriter struct{}

func (errWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

// okExchanger answers every query instantly without a network.
type okExchanger struct{}

func (okExchanger) Query(ctx context.Context, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	return &dnswire.Message{}, nil
}

// endlessSource yields queries forever; only the engine can stop the
// feed.
type endlessSource struct{ n int }

func (s *endlessSource) Scan() bool { s.n++; return true }
func (s *endlessSource) Query() Query {
	return Query{Name: fmt.Sprintf("q%d.example", s.n), Type: dnswire.TypeA}
}
func (s *endlessSource) Err() error { return nil }

// TestRunLiveWriteErrorStopsRun: a persistent output failure must abort
// the run with the write error, not deadlock the feeder against workers
// that stopped draining (the output is buffered, so the error surfaces
// only once the 64K buffer fills — well into the endless feed).
func TestRunLiveWriteErrorStopsRun(t *testing.T) {
	var (
		sum *Summary
		err error
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sum, err = RunLive(context.Background(), &endlessSource{}, okExchanger{}, Options{Concurrency: 8, Output: errWriter{}})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunLive deadlocked on a sticky write error")
	}
	if sum != nil || err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("sum=%v err=%v, want the write error", sum, err)
	}
}

// TestRunLiveCancel: cancelling the run context stops the engine
// promptly with the context's error.
func TestRunLiveCancel(t *testing.T) {
	zones, addr := startLiveServer(t)
	pool, err := dnsserver.NewClientPool(addr, dnsserver.ClientPoolConfig{Sockets: 2, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	src := NewSyntheticSource(zones, SyntheticConfig{N: 1 << 30, Seed: 3})
	done := make(chan error, 1)
	go func() {
		_, err := RunLive(ctx, src, pool, Options{Concurrency: 64})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("engine did not stop after cancel")
	}
}

// busyExchanger rejects a prefix of queries with ErrPoolBusy — the
// client-side ID-space exhaustion path — then answers normally.
type busyExchanger struct{ busy atomic.Int64 }

func (b *busyExchanger) Query(ctx context.Context, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	if b.busy.Add(-1) >= 0 {
		return nil, dnsserver.ErrPoolBusy
	}
	return &dnswire.Message{}, nil
}

// finiteSource yields n distinct queries, then stops.
type finiteSource struct{ n, i int }

func (s *finiteSource) Scan() bool { s.i++; return s.i <= s.n }
func (s *finiteSource) Query() Query {
	return Query{Name: fmt.Sprintf("q%d.example", s.i), Type: dnswire.TypeA}
}
func (s *finiteSource) Err() error { return nil }

// TestRunLiveBusyStatus: ErrPoolBusy must surface as its own BUSY
// status — distinct from ERROR, so an operator can tell "we couldn't
// even ask" from transport failure — in both the JSONL stream and the
// summary.
func TestRunLiveBusyStatus(t *testing.T) {
	const n, busy = 200, 37
	ex := &busyExchanger{}
	ex.busy.Store(busy)
	var buf bytes.Buffer
	sum, err := RunLive(context.Background(), &finiteSource{n: n}, ex, Options{Concurrency: 4, Output: &buf, NoCoalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Queries != n {
		t.Fatalf("queries = %d, want %d", sum.Queries, n)
	}
	if got := sum.Count(StatusBusy); got != busy {
		t.Fatalf("BUSY count = %d, want %d (%+v)", got, busy, sum.ByStatus)
	}
	if sum.Count(StatusError) != 0 {
		t.Fatalf("busy rejections leaked into ERROR: %+v", sum.ByStatus)
	}
	if got := strings.Count(buf.String(), `"status":"BUSY"`); got != busy {
		t.Fatalf("BUSY lines = %d, want %d", got, busy)
	}
}
