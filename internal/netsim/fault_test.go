package netsim

import (
	"testing"
	"time"

	"dnscontext/internal/stats"
)

func TestFaultProfileIsZero(t *testing.T) {
	if !(FaultProfile{}).IsZero() {
		t.Fatal("zero value not IsZero")
	}
	cases := []FaultProfile{
		{Loss: 0.01},
		{ExtraJitter: time.Millisecond},
		{Outages: []Window{{Start: 0, End: time.Second}}},
		{TruncateOver: 10},
	}
	for i, f := range cases {
		if f.IsZero() {
			t.Fatalf("case %d: %+v reported IsZero", i, f)
		}
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{Start: time.Second, End: 2 * time.Second}
	for _, c := range []struct {
		t    time.Duration
		want bool
	}{
		{0, false},
		{time.Second, true}, // closed at the start
		{1500 * time.Millisecond, true},
		{2 * time.Second, false}, // open at the end
		{3 * time.Second, false},
	} {
		if got := w.Contains(c.t); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestOutageDropsEverythingWithoutRNG(t *testing.T) {
	f := FaultProfile{Outages: []Window{{Start: time.Hour, End: 2 * time.Hour}}}
	// Lost during an outage must not consume randomness: pass a nil RNG
	// and rely on the early return.
	if !f.Lost(90*time.Minute, nil) {
		t.Fatal("packet survived an outage window")
	}
	if f.OutageAt(30 * time.Minute) {
		t.Fatal("outage reported outside the window")
	}
}

// TestZeroProfileRNGIdentity is the determinism cornerstone: with a zero
// fault profile, DeliverUnder must consume exactly the randomness Delay
// would, so fault-free runs are bit-identical to the pre-fault code.
func TestZeroProfileRNGIdentity(t *testing.T) {
	l := Link{Base: time.Millisecond, Jitter: 300 * time.Microsecond, SlowProb: 0.01, SlowFactor: 8}
	r1 := stats.NewRNG(42)
	r2 := stats.NewRNG(42)
	for i := 0; i < 10000; i++ {
		want := l.Delay(r1)
		got, lost := l.DeliverUnder(time.Duration(i)*time.Second, FaultProfile{}, r2)
		if lost {
			t.Fatalf("iteration %d: packet lost under zero profile", i)
		}
		if got != want {
			t.Fatalf("iteration %d: DeliverUnder delay %v != Delay %v (RNG streams diverged)", i, got, want)
		}
	}
	// Both streams must end in the same state.
	if a, b := r1.Uint64(), r2.Uint64(); a != b {
		t.Fatalf("RNG states diverged after identical draws: %d != %d", a, b)
	}
}

func TestLossRateRoughlyHonored(t *testing.T) {
	l := Link{Base: time.Millisecond}
	f := FaultProfile{Loss: 0.1}
	r := stats.NewRNG(7)
	lostN := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if _, lost := l.DeliverUnder(0, f, r); lost {
			lostN++
		}
	}
	got := float64(lostN) / n
	if got < 0.09 || got > 0.11 {
		t.Fatalf("loss rate %.4f, want ~0.1", got)
	}
}

func TestExtraJitterIncreasesDelay(t *testing.T) {
	l := Link{Base: time.Millisecond}
	f := FaultProfile{ExtraJitter: 10 * time.Millisecond}
	r := stats.NewRNG(7)
	var sum time.Duration
	const n = 10000
	for i := 0; i < n; i++ {
		d, _ := l.DeliverUnder(0, f, r)
		if d < l.Base {
			t.Fatalf("delay %v below base", d)
		}
		sum += d
	}
	mean := sum / n
	// Base 1ms + exponential jitter with mean 10ms ⇒ mean ≈ 11ms.
	if mean < 8*time.Millisecond || mean > 14*time.Millisecond {
		t.Fatalf("mean delay %v, want ≈11ms", mean)
	}
}

func TestTruncated(t *testing.T) {
	f := FaultProfile{TruncateOver: 3}
	if f.Truncated(3) {
		t.Fatal("n == threshold must not truncate")
	}
	if !f.Truncated(4) {
		t.Fatal("n > threshold must truncate")
	}
	if (FaultProfile{}).Truncated(1000) {
		t.Fatal("zero profile truncated")
	}
}

func TestScheduleCancel(t *testing.T) {
	s := New()
	ran := false
	h := s.Schedule(time.Second, func(time.Duration) { ran = true })
	if !h.Cancel() {
		t.Fatal("first Cancel reported not-pending")
	}
	if h.Cancel() {
		t.Fatal("second Cancel reported pending")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event executed")
	}
	if s.Events() != 0 {
		t.Fatalf("cancelled event counted: %d", s.Events())
	}
}

func TestCancelledEventDoesNotAdvanceClock(t *testing.T) {
	s := New()
	h := s.Schedule(10*time.Second, func(time.Duration) {})
	s.At(2*time.Second, func(time.Duration) {})
	h.Cancel()
	s.Run()
	if s.Now() != 2*time.Second {
		t.Fatalf("clock at %v, want 2s (cancelled event must not advance it)", s.Now())
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	s := New()
	// The earliest event is cancelled; the next live event is beyond the
	// horizon. RunUntil must execute nothing and stop the clock at end.
	h := s.Schedule(time.Second, func(time.Duration) { t.Fatal("cancelled event ran") })
	ran := false
	s.At(time.Minute, func(time.Duration) { ran = true })
	h.Cancel()
	s.RunUntil(10 * time.Second)
	if ran {
		t.Fatal("event beyond horizon executed")
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("clock at %v, want 10s", s.Now())
	}
	// The deferred live event still runs when the horizon extends.
	s.RunUntil(2 * time.Minute)
	if !ran {
		t.Fatal("live event never executed")
	}
}

func TestScheduleThenTimeoutPattern(t *testing.T) {
	// The idiom the fault layer exists for: arm a timeout, cancel it when
	// the response arrives first.
	s := New()
	timedOut := false
	timeout := s.Schedule(3*time.Second, func(time.Duration) { timedOut = true })
	s.At(time.Second, func(time.Duration) { timeout.Cancel() })
	s.Run()
	if timedOut {
		t.Fatal("timeout fired despite response arriving first")
	}
}
