package netsim

import (
	"time"

	"dnscontext/internal/stats"
)

// Window is a half-open interval [Start, End) of virtual time.
type Window struct {
	Start, End time.Duration
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool { return t >= w.Start && t < w.End }

// FaultProfile parameterizes the failures injected into a link: random
// per-transmission packet loss, extra latency jitter (congestion), and
// scheduled total-loss windows (a resolver-platform outage). The zero
// value injects nothing and — critically for reproducibility — consumes
// no randomness, so a zero-fault run is bit-identical to a run built
// before fault injection existed.
type FaultProfile struct {
	// Loss is the probability one transmission (a single one-way packet
	// delivery) is dropped.
	Loss float64
	// ExtraJitter is the mean of an additional exponential latency term
	// added to every delivery that survives.
	ExtraJitter time.Duration
	// Outages are scheduled windows during which every delivery is lost,
	// regardless of Loss — the link's far end is down.
	Outages []Window
	// TruncateOver, when positive, marks UDP responses carrying more than
	// this many answers as truncated, forcing the client into TCP
	// fallback (one extra handshake plus exchange). Zero disables
	// truncation.
	TruncateOver int
}

// IsZero reports whether the profile injects nothing.
func (f FaultProfile) IsZero() bool {
	return f.Loss <= 0 && f.ExtraJitter <= 0 && len(f.Outages) == 0 && f.TruncateOver <= 0
}

// OutageAt reports whether t falls inside a scheduled outage window.
func (f FaultProfile) OutageAt(t time.Duration) bool {
	for _, w := range f.Outages {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// Lost samples whether a transmission sent at time t is dropped. During
// an outage it is always dropped (consuming no randomness); otherwise it
// is dropped with probability Loss. Loss <= 0 consumes no randomness.
func (f FaultProfile) Lost(t time.Duration, r *stats.RNG) bool {
	if f.OutageAt(t) {
		return true
	}
	return r.Bool(f.Loss)
}

// Jitter samples the extra latency added to one delivery. A zero
// ExtraJitter returns zero without consuming randomness.
func (f FaultProfile) Jitter(r *stats.RNG) time.Duration {
	if f.ExtraJitter <= 0 {
		return 0
	}
	return time.Duration(float64(f.ExtraJitter) * r.ExpFloat64())
}

// Truncated reports whether a UDP response with n answers exceeds the
// truncation threshold.
func (f FaultProfile) Truncated(n int) bool {
	return f.TruncateOver > 0 && n > f.TruncateOver
}
