package netsim

import (
	"time"

	"dnscontext/internal/stats"
)

// Link models a one-way network path with a base propagation delay and
// random jitter, plus a small probability of a "slow" episode (queueing,
// retransmission) that multiplies the delay. The paper's SC/R separation
// heuristic depends on resolvers having a stable delay mode with occasional
// positive excursions; this model produces exactly that.
type Link struct {
	// Base is the minimum one-way delay.
	Base time.Duration
	// Jitter is the mean of an exponential jitter term added to Base.
	Jitter time.Duration
	// SlowProb is the probability a delivery hits a slow episode.
	SlowProb float64
	// SlowFactor multiplies (Base+jitter) during a slow episode.
	SlowFactor float64
}

// Delay samples a one-way delay for one delivery.
func (l Link) Delay(r *stats.RNG) time.Duration {
	d := l.Base
	if l.Jitter > 0 {
		d += time.Duration(float64(l.Jitter) * r.ExpFloat64())
	}
	if l.SlowProb > 0 && r.Bool(l.SlowProb) {
		f := l.SlowFactor
		if f < 1 {
			f = 1
		}
		d = time.Duration(float64(d) * f)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// RTT samples a round-trip delay (two independent one-way samples).
func (l Link) RTT(r *stats.RNG) time.Duration {
	return l.Delay(r) + l.Delay(r)
}

// ExpectedDelay is the analytic mean of Delay: (Base + Jitter) scaled by
// the slow-episode mass. Used by RNG-free what-if re-costing, which must
// not consume randomness.
func (l Link) ExpectedDelay() time.Duration {
	f := 1.0
	if l.SlowProb > 0 && l.SlowFactor > 1 {
		f = 1 + l.SlowProb*(l.SlowFactor-1)
	}
	return time.Duration(float64(l.Base+l.Jitter) * f)
}

// ExpectedRTT is the analytic mean round trip (two one-way delays).
func (l Link) ExpectedRTT() time.Duration { return 2 * l.ExpectedDelay() }

// DeliverUnder samples one delivery attempt at virtual time t under fault
// profile f: the one-way delay (including any fault-injected extra
// jitter) and whether the packet was lost. The loss draw happens after
// the delay draw so that a zero profile consumes exactly the randomness
// Delay would — lost packets still "use" a delay, keeping RNG streams
// aligned across fault configurations of the same run length.
func (l Link) DeliverUnder(t time.Duration, f FaultProfile, r *stats.RNG) (d time.Duration, lost bool) {
	d = l.Delay(r) + f.Jitter(r)
	return d, f.Lost(t, r)
}
