package netsim

import (
	"time"

	"dnscontext/internal/stats"
)

// Stream is the liveness state of one persistent stream connection
// (DNS-over-TCP, DoT, DoH) riding a Link. Unlike datagram delivery,
// faults apply connection-scoped: a loss event does not silently eat one
// packet — it kills the connection, and the caller must re-establish
// (paying the handshake again) before the next exchange. The zero value
// is a cold (never-established) connection.
type Stream struct {
	// Established reports whether the connection is currently open.
	Established bool
	// IdleDeadline is the virtual time past which an idle open connection
	// is considered torn down (RFC 7766 encourages but bounds reuse; real
	// stubs and resolvers close idle connections after seconds).
	IdleDeadline time.Duration
}

// LiveAt reports whether the connection can carry an exchange at t: it
// is established and has not idled out.
func (s *Stream) LiveAt(t time.Duration) bool {
	return s.Established && t <= s.IdleDeadline
}

// Reset tears the connection down (fault, RST, or deliberate close).
func (s *Stream) Reset() { s.Established = false }

// Touch marks the connection established and pushes the idle deadline to
// t+idle. Called after every successful exchange — each use restarts the
// idle clock, which is what makes bursts of lookups share one handshake.
func (s *Stream) Touch(t, idle time.Duration) {
	s.Established = true
	s.IdleDeadline = t + idle
}

// EstablishUnder attempts a stream handshake of rtts round trips over l
// starting at t, under fault profile f. Each round trip is two datagram
// deliveries (out and back) drawn exactly like DeliverUnder, so the
// fault model is shared with the datagram path; any lost delivery aborts
// the handshake (ok=false) and the caller charges its per-attempt
// timeout, not the partial delay. On success d is the full handshake
// duration and the caller should Touch the stream.
func (l Link) EstablishUnder(t time.Duration, rtts int, f FaultProfile, r *stats.RNG) (d time.Duration, ok bool) {
	for i := 0; i < rtts; i++ {
		owdOut, lostOut := l.DeliverUnder(t+d, f, r)
		d += owdOut
		if lostOut {
			return d, false
		}
		owdBack, lostBack := l.DeliverUnder(t+d, f, r)
		d += owdBack
		if lostBack {
			return d, false
		}
	}
	return d, true
}

// DeliverStream is one in-connection delivery: the delay and loss draws
// are identical to DeliverUnder, but a loss is connection-scoped — it
// resets st (the peer's stream state is gone; the client sees a stalled
// transfer or an RST), so the caller must re-establish before retrying.
func (l Link) DeliverStream(st *Stream, t time.Duration, f FaultProfile, r *stats.RNG) (d time.Duration, reset bool) {
	d, lost := l.DeliverUnder(t, f, r)
	if lost {
		st.Reset()
	}
	return d, lost
}
