package netsim

import (
	"testing"
	"time"

	"dnscontext/internal/stats"
)

func TestSimOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(30*time.Millisecond, func(time.Duration) { order = append(order, 3) })
	s.At(10*time.Millisecond, func(time.Duration) { order = append(order, 1) })
	s.At(20*time.Millisecond, func(time.Duration) { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("final clock %v", s.Now())
	}
	if s.Events() != 3 {
		t.Fatalf("events %d", s.Events())
	}
}

func TestSimFIFOAtSameTime(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func(time.Duration) { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events reordered: %v", order)
		}
	}
}

func TestSimAfterAndClock(t *testing.T) {
	s := New()
	var seen time.Duration
	s.After(5*time.Second, func(now time.Duration) {
		seen = now
		s.After(2*time.Second, func(now time.Duration) { seen = now })
	})
	s.Run()
	if seen != 7*time.Second {
		t.Fatalf("nested After ended at %v", seen)
	}
}

func TestSimNegativeAfterClamped(t *testing.T) {
	s := New()
	ran := false
	s.After(-time.Second, func(time.Duration) { ran = true })
	s.Run()
	if !ran || s.Now() != 0 {
		t.Fatalf("negative delay handling: ran=%v now=%v", ran, s.Now())
	}
}

func TestSimPastSchedulingPanics(t *testing.T) {
	s := New()
	s.At(time.Second, func(time.Duration) {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(0, func(time.Duration) {})
}

func TestSimRunUntil(t *testing.T) {
	s := New()
	count := 0
	var tick func(time.Duration)
	tick = func(time.Duration) {
		count++
		s.After(time.Second, tick)
	}
	s.After(time.Second, tick)
	s.RunUntil(10 * time.Second)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("clock = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (the 11th tick)", s.Pending())
	}
}

func TestSimRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(time.Minute)
	if s.Now() != time.Minute {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSimStepEmpty(t *testing.T) {
	if New().Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestLinkDelayBounds(t *testing.T) {
	r := stats.NewRNG(1)
	l := Link{Base: 10 * time.Millisecond, Jitter: time.Millisecond}
	for i := 0; i < 10000; i++ {
		d := l.Delay(r)
		if d < 10*time.Millisecond {
			t.Fatalf("delay %v below base", d)
		}
	}
}

func TestLinkSlowEpisodes(t *testing.T) {
	r := stats.NewRNG(2)
	l := Link{Base: 10 * time.Millisecond, SlowProb: 0.1, SlowFactor: 10}
	slow := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if l.Delay(r) >= 100*time.Millisecond {
			slow++
		}
	}
	frac := float64(slow) / draws
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("slow-episode fraction %.3f, want ~0.1", frac)
	}
}

func TestLinkSlowFactorFloor(t *testing.T) {
	r := stats.NewRNG(3)
	l := Link{Base: 5 * time.Millisecond, SlowProb: 1, SlowFactor: 0.1}
	// SlowFactor < 1 must not shrink the delay below base.
	for i := 0; i < 100; i++ {
		if d := l.Delay(r); d < 5*time.Millisecond {
			t.Fatalf("delay %v shrank below base", d)
		}
	}
}

func TestLinkRTT(t *testing.T) {
	r := stats.NewRNG(4)
	l := Link{Base: 10 * time.Millisecond}
	if rtt := l.RTT(r); rtt != 20*time.Millisecond {
		t.Fatalf("jitterless RTT %v, want 20ms", rtt)
	}
}
