// Package netsim implements a small discrete-event simulation engine with a
// virtual clock, an event queue, and latency/jitter link models. The
// dnscontext traffic generator runs entirely on this engine, so simulated
// time is decoupled from wall-clock time and runs are deterministic.
package netsim

import (
	"container/heap"
	"fmt"
	"time"

	"dnscontext/internal/obs"
)

// Event is a callback scheduled to run at a virtual time.
type Event func(now time.Duration)

type item struct {
	at  time.Duration
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  Event
}

type eventQueue []*item

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*item)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Sim is a discrete-event simulator. The zero value is not usable; call New.
type Sim struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	events uint64

	// Optional observability hooks; nil instruments are no-ops, so an
	// unobserved simulator pays one nil check per event. Instruments
	// record event-loop activity but never influence scheduling, keeping
	// seeded runs bit-identical with observation on or off.
	obsEvents   *obs.Counter
	obsDepth    *obs.Gauge
	obsDepthMax *obs.Gauge
}

// Observe mirrors event-loop activity into the given instruments:
// events counts executed events, depth tracks the pending-queue length
// (sampled after each executed event), and depthMax its high-water mark.
// Any of them may be nil.
func (s *Sim) Observe(events *obs.Counter, depth, depthMax *obs.Gauge) {
	s.obsEvents = events
	s.obsDepth = depth
	s.obsDepthMax = depthMax
}

// New returns an empty simulator with the clock at zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Events returns the number of events executed so far.
func (s *Sim) Events() uint64 { return s.events }

// Pending returns the number of scheduled-but-unexecuted events.
// Cancelled events still occupy their slot until their time comes up, so
// the count is an upper bound while cancellations are in flight.
func (s *Sim) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past panics: it indicates a logic error that would otherwise silently
// reorder causality.
func (s *Sim) At(at time.Duration, fn Event) {
	if at < s.now {
		panic(fmt.Sprintf("netsim: scheduling event at %v, before now %v", at, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &item{at: at, seq: s.seq, fn: fn})
}

// After schedules fn to run delay after the current virtual time. Negative
// delays are clamped to zero.
func (s *Sim) After(delay time.Duration, fn Event) {
	if delay < 0 {
		delay = 0
	}
	s.At(s.now+delay, fn)
}

// Handle identifies a scheduled event so it can be cancelled — the
// primitive timeout modelling needs: schedule a deadline, cancel it when
// the awaited response arrives first.
type Handle struct {
	it *item
}

// Cancel withdraws the event. It reports whether the event was still
// pending; cancelling an executed or already-cancelled event is a no-op.
// The queue slot is reclaimed lazily when the event's time comes up.
func (h *Handle) Cancel() bool {
	if h == nil || h.it == nil || h.it.fn == nil {
		return false
	}
	h.it.fn = nil
	return true
}

// Schedule is At returning a cancellable Handle. Cancelled events do not
// execute, do not advance the clock, and do not count toward Events().
func (s *Sim) Schedule(at time.Duration, fn Event) *Handle {
	if at < s.now {
		panic(fmt.Sprintf("netsim: scheduling event at %v, before now %v", at, s.now))
	}
	s.seq++
	it := &item{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.queue, it)
	return &Handle{it: it}
}

// Step executes the single earliest pending event, discarding cancelled
// ones along the way. It reports whether an event was executed.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		it := heap.Pop(&s.queue).(*item)
		if it.fn == nil {
			continue // cancelled
		}
		s.now = it.at
		s.events++
		it.fn(s.now)
		s.obsEvents.Inc()
		depth := int64(len(s.queue))
		s.obsDepth.Set(depth)
		s.obsDepthMax.SetMax(depth)
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is empty or the next
// event is later than end. The clock finishes at end (or at the last
// executed event if the queue drains first and that is later).
func (s *Sim) RunUntil(end time.Duration) {
	for len(s.queue) > 0 {
		if s.queue[0].fn == nil {
			heap.Pop(&s.queue)
			continue
		}
		if s.queue[0].at > end {
			break
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}

// Run executes every pending event, including events scheduled by events.
// Use RunUntil for workloads that self-perpetuate.
func (s *Sim) Run() {
	for s.Step() {
	}
}
