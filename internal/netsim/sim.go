// Package netsim implements a small discrete-event simulation engine with a
// virtual clock, an event queue, and latency/jitter link models. The
// dnscontext traffic generator runs entirely on this engine, so simulated
// time is decoupled from wall-clock time and runs are deterministic.
package netsim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback scheduled to run at a virtual time.
type Event func(now time.Duration)

type item struct {
	at  time.Duration
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  Event
}

type eventQueue []*item

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*item)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Sim is a discrete-event simulator. The zero value is not usable; call New.
type Sim struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	events uint64
}

// New returns an empty simulator with the clock at zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Events returns the number of events executed so far.
func (s *Sim) Events() uint64 { return s.events }

// Pending returns the number of scheduled-but-unexecuted events.
func (s *Sim) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past panics: it indicates a logic error that would otherwise silently
// reorder causality.
func (s *Sim) At(at time.Duration, fn Event) {
	if at < s.now {
		panic(fmt.Sprintf("netsim: scheduling event at %v, before now %v", at, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &item{at: at, seq: s.seq, fn: fn})
}

// After schedules fn to run delay after the current virtual time. Negative
// delays are clamped to zero.
func (s *Sim) After(delay time.Duration, fn Event) {
	if delay < 0 {
		delay = 0
	}
	s.At(s.now+delay, fn)
}

// Step executes the single earliest pending event. It reports whether an
// event was executed.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	it := heap.Pop(&s.queue).(*item)
	s.now = it.at
	s.events++
	it.fn(s.now)
	return true
}

// RunUntil executes events in order until the queue is empty or the next
// event is later than end. The clock finishes at end (or at the last
// executed event if the queue drains first and that is later).
func (s *Sim) RunUntil(end time.Duration) {
	for len(s.queue) > 0 && s.queue[0].at <= end {
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}

// Run executes every pending event, including events scheduled by events.
// Use RunUntil for workloads that self-perpetuate.
func (s *Sim) Run() {
	for s.Step() {
	}
}
