package trace_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"dnscontext/internal/obs"
	"dnscontext/internal/trace"
)

// corpusInputs loads every seed input of one fuzz corpus directory
// (go test fuzz v1 format: one quoted string argument).
func corpusInputs(t *testing.T, target string) map[string]string {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus %s: %v", dir, err)
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(string(raw), "\n", 3)
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a fuzz corpus file", e.Name())
		}
		body := strings.TrimSuffix(strings.TrimPrefix(lines[1], "string("), ")")
		s, err := strconv.Unquote(body)
		if err != nil {
			t.Fatalf("%s: unquoting %q: %v", e.Name(), body, err)
		}
		out[e.Name()] = s
	}
	if len(out) == 0 {
		t.Fatalf("empty corpus %s", dir)
	}
	return out
}

// TestDNSScannerStrictParityWithReadDNS proves the strict-mode scanner
// yields exactly the records AND errors of ReadDNS over the fuzz
// corpus, which includes both clean zeeklite output and every known
// malformed-line shape.
func TestDNSScannerStrictParityWithReadDNS(t *testing.T) {
	for name, input := range corpusInputs(t, "FuzzReadDNS") {
		wantRecs, wantErr := trace.ReadDNS(strings.NewReader(input))

		sc := trace.NewDNSScanner(strings.NewReader(input), trace.Strict())
		var gotRecs []trace.DNSRecord
		for sc.Scan() {
			gotRecs = append(gotRecs, sc.Record())
		}
		gotErr := sc.Err()

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: ReadDNS=%v scanner=%v", name, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("%s: error text mismatch:\nReadDNS: %v\nscanner: %v", name, wantErr, gotErr)
			}
			continue
		}
		if !reflect.DeepEqual(wantRecs, gotRecs) {
			t.Fatalf("%s: records mismatch:\nReadDNS: %+v\nscanner: %+v", name, wantRecs, gotRecs)
		}
	}
}

// TestConnScannerStrictParityWithReadConns is the connection-side
// parity proof.
func TestConnScannerStrictParityWithReadConns(t *testing.T) {
	for name, input := range corpusInputs(t, "FuzzReadConns") {
		wantRecs, wantErr := trace.ReadConns(strings.NewReader(input))

		sc := trace.NewConnScanner(strings.NewReader(input), trace.Strict())
		var gotRecs []trace.ConnRecord
		for sc.Scan() {
			gotRecs = append(gotRecs, sc.Record())
		}
		gotErr := sc.Err()

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: ReadConns=%v scanner=%v", name, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("%s: error text mismatch:\nReadConns: %v\nscanner: %v", name, wantErr, gotErr)
			}
			continue
		}
		if !reflect.DeepEqual(wantRecs, gotRecs) {
			t.Fatalf("%s: records mismatch:\nReadConns: %+v\nscanner: %+v", name, wantRecs, gotRecs)
		}
	}
}

// corruptedDNSTrace interleaves the sample records with malformed lines
// and returns the TSV text plus the 1-based line numbers of the
// corrupt lines.
func corruptedDNSTrace(t *testing.T) (string, []int) {
	t.Helper()
	var clean bytes.Buffer
	if err := trace.WriteDNS(&clean, sampleDNS()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(clean.String(), "\n"), "\n")
	// Inject after the header and between records.
	var out []string
	var corrupt []int
	bad := []string{
		"garbage line with no tabs",
		"NaN\t1.0\t10.0.0.1\t8.8.8.8\t1\th\t1\t0\t-\t0\tF",
		"1.0\t1.01\tnot-an-ip\t8.8.8.8\t1\th\t1\t0\t-\t0\tF",
	}
	bi := 0
	for i, l := range lines {
		out = append(out, l)
		if i > 0 && bi < len(bad) { // after the first data line and onward
			out = append(out, bad[bi])
			corrupt = append(corrupt, len(out))
			bi++
		}
	}
	return strings.Join(out, "\n") + "\n", corrupt
}

// TestQuarantineYieldsCleanRecords proves quarantine mode ingests a
// corrupted trace and yields exactly the records of the pre-cleaned
// trace, reporting exact quarantined line numbers and causes.
func TestQuarantineYieldsCleanRecords(t *testing.T) {
	dirty, corruptLines := corruptedDNSTrace(t)
	// The pre-cleaned trace is just the sample records.
	var cleanBuf bytes.Buffer
	if err := trace.WriteDNS(&cleanBuf, sampleDNS()); err != nil {
		t.Fatal(err)
	}
	want, err := trace.ReadDNS(&cleanBuf)
	if err != nil {
		t.Fatal(err)
	}

	sc := trace.NewDNSScanner(strings.NewReader(dirty), trace.QuarantineAll())
	reg := obs.NewRegistry()
	sc.Observe(reg)
	var got []trace.DNSRecord
	for sc.Scan() {
		got = append(got, sc.Record())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("unbudgeted quarantine scan failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("quarantined scan records != pre-cleaned records:\ngot:  %+v\nwant: %+v", got, want)
	}

	q := sc.Quarantined()
	if len(q) != len(corruptLines) {
		t.Fatalf("quarantined %d lines, want %d", len(q), len(corruptLines))
	}
	for i, qq := range q {
		if qq.Line != corruptLines[i] {
			t.Errorf("quarantine %d: line %d, want %d", i, qq.Line, corruptLines[i])
		}
		if qq.Err == nil || qq.Text == "" {
			t.Errorf("quarantine %d: missing cause or text: %+v", i, qq)
		}
	}
	// Causes carry the exact line number in their text.
	if !strings.Contains(q[1].Err.Error(), fmt.Sprintf("line %d", corruptLines[1])) {
		t.Errorf("cause %q does not name line %d", q[1].Err, corruptLines[1])
	}

	st := sc.Stats()
	if st.Quarantined != len(corruptLines) || st.Records != len(want) {
		t.Fatalf("stats %+v, want %d quarantined / %d records", st, len(corruptLines), len(want))
	}

	// The same tallies surface through the obs registry.
	var recs, quar float64
	for _, fam := range reg.Snapshot().Families {
		for _, m := range fam.Metrics {
			if len(m.Labels) == 1 && m.Labels[0].Value == "dns" {
				switch fam.Name {
				case "dnsctx_trace_records_total":
					recs = m.Value
				case "dnsctx_trace_quarantined_total":
					quar = m.Value
				}
			}
		}
	}
	if int(recs) != len(want) || int(quar) != len(corruptLines) {
		t.Fatalf("obs counters records=%v quarantined=%v, want %d/%d", recs, quar, len(want), len(corruptLines))
	}
}

func TestQuarantineSinkReceivesLines(t *testing.T) {
	dirty, corruptLines := corruptedDNSTrace(t)
	var sunk []trace.Quarantined
	p := trace.QuarantineAll()
	p.Sink = func(q trace.Quarantined) { sunk = append(sunk, q) }
	sc := trace.NewDNSScanner(strings.NewReader(dirty), p)
	for sc.Scan() {
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(sunk) != len(corruptLines) {
		t.Fatalf("sink received %d, want %d", len(sunk), len(corruptLines))
	}
	if len(sc.Quarantined()) != 0 {
		t.Fatalf("scanner retained %d lines despite sink", len(sc.Quarantined()))
	}
}

// TestQuarantineBudgetZero: a zero budget allows no errors — the first
// malformed line trips it.
func TestQuarantineBudgetZero(t *testing.T) {
	dirty, corruptLines := corruptedDNSTrace(t)
	sc := trace.NewDNSScanner(strings.NewReader(dirty), trace.QuarantineBudget(0, 0))
	n := 0
	for sc.Scan() {
		n++
	}
	err := sc.Err()
	if !errors.Is(err, trace.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *trace.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err %T, want *BudgetError", err)
	}
	if be.Quarantined != 1 || be.Last.Line != corruptLines[0] {
		t.Fatalf("budget error %+v, want 1 quarantined at line %d", be, corruptLines[0])
	}
	if n == 0 {
		t.Fatal("no records yielded before the first corrupt line")
	}
}

// TestQuarantineBudgetHitExactly: MaxErrors errors complete the scan;
// MaxErrors+1 trips on the extra one.
func TestQuarantineBudgetHitExactly(t *testing.T) {
	dirty, corruptLines := corruptedDNSTrace(t) // 3 corrupt lines

	// Budget exactly equal to the number of corrupt lines: full scan.
	sc := trace.NewDNSScanner(strings.NewReader(dirty), trace.QuarantineBudget(len(corruptLines), 0))
	for sc.Scan() {
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("budget == errors should not trip, got %v", err)
	}
	if got := len(sc.Quarantined()); got != len(corruptLines) {
		t.Fatalf("quarantined %d, want %d", got, len(corruptLines))
	}

	// One less: trips on the last corrupt line, exactly.
	sc = trace.NewDNSScanner(strings.NewReader(dirty), trace.QuarantineBudget(len(corruptLines)-1, 0))
	for sc.Scan() {
	}
	var be *trace.BudgetError
	if !errors.As(sc.Err(), &be) {
		t.Fatalf("err = %v, want *BudgetError", sc.Err())
	}
	if be.Quarantined != len(corruptLines) || be.Last.Line != corruptLines[len(corruptLines)-1] {
		t.Fatalf("tripped at %+v, want quarantined=%d line=%d", be, len(corruptLines), corruptLines[len(corruptLines)-1])
	}
}

// TestRateBudgetCleanTail: a corrupt head inside the rate grace window
// must not trip a rate budget that the whole input satisfies.
func TestRateBudgetCleanTail(t *testing.T) {
	// 3 corrupt lines among the first 10, then a long clean tail:
	// overall rate 3/503 ≈ 0.6% < 1%.
	var buf bytes.Buffer
	bad := "garbage\n"
	good := "1.000000\t1.010000\t10.1.0.1\t8.8.8.8\t5\thost.example\t1\t0\t-\t0\tF\n"
	for i := 0; i < 10; i++ {
		if i < 3 {
			buf.WriteString(bad)
		}
		buf.WriteString(good)
	}
	for i := 0; i < 490; i++ {
		buf.WriteString(good)
	}

	p := trace.ErrorPolicy{Quarantine: true, Budget: trace.ErrorBudget{MaxErrors: -1, MaxErrorRate: 0.01}}
	sc := trace.NewDNSScanner(bytes.NewReader(buf.Bytes()), p)
	n := 0
	for sc.Scan() {
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("clean-tail scan tripped: %v", err)
	}
	if n != 500 {
		t.Fatalf("yielded %d records, want 500", n)
	}

	// Control: the same rate sustained past the grace window trips.
	buf.Reset()
	for i := 0; i < 300; i++ {
		buf.WriteString(good)
		if i%10 == 0 {
			buf.WriteString(bad) // 10% corrupt throughout
		}
	}
	sc = trace.NewDNSScanner(bytes.NewReader(buf.Bytes()), p)
	for sc.Scan() {
	}
	if !errors.Is(sc.Err(), trace.ErrBudgetExceeded) {
		t.Fatalf("sustained 10%% corruption did not trip the 1%% rate budget: %v", sc.Err())
	}
}

// TestConnScannerQuarantine covers the conn-side quarantine path.
func TestConnScannerQuarantine(t *testing.T) {
	var clean bytes.Buffer
	if err := trace.WriteConns(&clean, sampleConns()); err != nil {
		t.Fatal(err)
	}
	want, err := trace.ReadConns(bytes.NewReader(clean.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(clean.String(), "\n"), "\n")
	dirty := lines[0] + "\nbroken\tline\n" + strings.Join(lines[1:], "\n") + "\n"

	sc := trace.NewConnScanner(strings.NewReader(dirty), trace.QuarantineAll())
	var got []trace.ConnRecord
	for sc.Scan() {
		got = append(got, sc.Record())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records mismatch:\ngot:  %+v\nwant: %+v", got, want)
	}
	q := sc.Quarantined()
	if len(q) != 1 || q[0].Line != 2 {
		t.Fatalf("quarantined %+v, want one entry at line 2", q)
	}
}
