package trace

import (
	"fmt"
	"strings"
	"testing"
)

// Allocation budgets (ISSUE 5): the zero-copy scanner path must stay
// allocation-free per line in the steady state — named strings come
// from the intern table, addresses from the parse cache, answers from
// the shared arena — so a regression back to per-line garbage fails
// `go test` instead of only showing up in benchmarks.

// allocTSV builds a DNS TSV blob of lines cycling through a small set
// of names and addresses, the shape of a real trace (bounded symbol
// universe, unbounded lines).
func allocTSV(lines int) string {
	var sb strings.Builder
	sb.WriteString(dnsFields + "\n")
	for i := 0; i < lines; i++ {
		name := fmt.Sprintf("host%d.example.com", i%16)
		addr := fmt.Sprintf("192.0.2.%d", i%32)
		fmt.Fprintf(&sb, "%d.%06d\t%d.%06d\t10.1.0.1\t203.0.113.7\t%d\t%s\t1\t0\t%s/300.000000,198.51.100.%d/60.000000\t0\tF\n",
			i, i%1000000, i, (i+400)%1000000, i%65536, name, addr, i%32)
	}
	return sb.String()
}

// scanAllocBudget is the gate both scanner budgets share: a scan may
// pay a fixed setup cost (bufio buffer, parse state, intern table, the
// first arena block — independent of input length) plus at most 0.01
// allocations per line. A regression to even one allocation per line
// overshoots the budget by two orders of magnitude.
func scanAllocBudget(t *testing.T, stream string, lines int, perRun float64) {
	t.Helper()
	budget := 200 + 0.01*float64(lines)
	if perRun > budget {
		t.Fatalf("%s scanner allocates %.0f allocs per %d-line scan; budget is %.0f (fixed setup + 0.01/line)",
			stream, perRun, lines, budget)
	}
}

// TestScannerAllocsPerLine gates the per-line DNS scanner cost.
func TestScannerAllocsPerLine(t *testing.T) {
	const lines = 8000
	input := allocTSV(lines)
	// Warm check: the input must parse cleanly or the budget is vacuous.
	if recs, err := ReadDNS(strings.NewReader(input)); err != nil || len(recs) != lines {
		t.Fatalf("fixture: %d records, err %v", len(recs), err)
	}
	perRun := testing.AllocsPerRun(5, func() {
		sc := NewDNSScanner(strings.NewReader(input), Strict())
		n := 0
		for sc.Scan() {
			n++
		}
		if sc.Err() != nil || n != lines {
			t.Fatalf("scan: n=%d err=%v", n, sc.Err())
		}
	})
	scanAllocBudget(t, "dns", lines, perRun)
}

// TestConnScannerAllocsPerLine is the same gate for the conn stream.
func TestConnScannerAllocsPerLine(t *testing.T) {
	const lines = 8000
	var sb strings.Builder
	sb.WriteString(connFields + "\n")
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&sb, "%d.%06d\t1.500000\ttcp\t10.1.0.1\t%d\t198.51.100.%d\t443\t%d\t%d\n",
			i, i%1000000, 40000+i%20000, i%32, i*10, i*100)
	}
	input := sb.String()
	if recs, err := ReadConns(strings.NewReader(input)); err != nil || len(recs) != lines {
		t.Fatalf("fixture: %d records, err %v", len(recs), err)
	}
	perRun := testing.AllocsPerRun(5, func() {
		sc := NewConnScanner(strings.NewReader(input), Strict())
		n := 0
		for sc.Scan() {
			n++
		}
		if sc.Err() != nil || n != lines {
			t.Fatalf("scan: n=%d err=%v", n, sc.Err())
		}
	})
	scanAllocBudget(t, "conn", lines, perRun)
}
