package trace

import (
	"bytes"
	"errors"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// sourceDataset is a small hand-built trace exercising answers, retries,
// and several clients.
func sourceDataset() *Dataset {
	addr := netip.MustParseAddr
	return &Dataset{
		DNS: []DNSRecord{
			{
				QueryTS: 1 * time.Second, TS: 1010 * time.Millisecond,
				Client: addr("10.0.0.1"), Resolver: addr("192.168.1.1"),
				ID: 1, Query: "a.example", QType: 1,
				Answers: []Answer{{Addr: addr("198.51.100.7"), TTL: 60 * time.Second}},
			},
			{
				QueryTS: 2 * time.Second, TS: 2300 * time.Millisecond,
				Client: addr("10.0.0.2"), Resolver: addr("192.168.1.1"),
				ID: 2, Query: "b.example", QType: 1, Retries: 1, TC: true,
				Answers: []Answer{
					{Addr: addr("198.51.100.8"), TTL: 300 * time.Second},
					{Addr: addr("198.51.100.9"), TTL: 300 * time.Second},
				},
			},
			{
				QueryTS: 3 * time.Second, TS: 3050 * time.Millisecond,
				Client: addr("10.0.0.1"), Resolver: addr("8.8.8.8"),
				ID: 3, Query: "c.example", QType: 28, RCode: 2,
			},
		},
		Conns: []ConnRecord{
			{TS: 1500 * time.Millisecond, Duration: time.Second, Proto: TCP,
				Orig: addr("10.0.0.1"), OrigPort: 40001, Resp: addr("198.51.100.7"), RespPort: 443,
				OrigBytes: 120, RespBytes: 4096},
			{TS: 2400 * time.Millisecond, Duration: 2 * time.Second, Proto: TCP,
				Orig: addr("10.0.0.2"), OrigPort: 40002, Resp: addr("198.51.100.8"), RespPort: 80,
				OrigBytes: 64, RespBytes: 512},
		},
	}
}

// drain collects everything a source yields.
func drain(t *testing.T, src Source) *Dataset {
	t.Helper()
	var got Dataset
	if err := src.StreamDNS(func(d *DNSRecord) error {
		cp := *d
		cp.Answers = append([]Answer(nil), d.Answers...)
		got.DNS = append(got.DNS, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := src.StreamConns(func(c *ConnRecord) error {
		got.Conns = append(got.Conns, *c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return &got
}

// roundTrip is the dataset as it survives TSV serialization — the
// reference for scanner-backed sources, which see the file's (possibly
// quantized) representation rather than the original structs.
func roundTrip(t *testing.T, ds *Dataset) *Dataset {
	t.Helper()
	var dnsBuf, connBuf bytes.Buffer
	if err := WriteDNS(&dnsBuf, ds.DNS); err != nil {
		t.Fatal(err)
	}
	if err := WriteConns(&connBuf, ds.Conns); err != nil {
		t.Fatal(err)
	}
	return drain(t, NewScannerSource(&dnsBuf, &connBuf, Strict()))
}

func TestDatasetSourceStreamsInTimeOrder(t *testing.T) {
	ds := sourceDataset()
	// Shuffle so the source's own sort is what produces the order.
	ds.DNS[0], ds.DNS[2] = ds.DNS[2], ds.DNS[0]
	ds.Conns[0], ds.Conns[1] = ds.Conns[1], ds.Conns[0]
	got := drain(t, NewDatasetSource(ds))
	for i := 1; i < len(got.DNS); i++ {
		if got.DNS[i].TS < got.DNS[i-1].TS {
			t.Fatal("DNS stream out of order")
		}
	}
	for i := 1; i < len(got.Conns); i++ {
		if got.Conns[i].TS < got.Conns[i-1].TS {
			t.Fatal("connection stream out of order")
		}
	}
	if len(got.DNS) != 3 || len(got.Conns) != 2 {
		t.Fatalf("drained %d DNS / %d conns, want 3 / 2", len(got.DNS), len(got.Conns))
	}
}

func TestScannerSourceMatchesDataset(t *testing.T) {
	ds := sourceDataset()
	want := roundTrip(t, ds)
	var dnsBuf, connBuf bytes.Buffer
	if err := WriteDNS(&dnsBuf, ds.DNS); err != nil {
		t.Fatal(err)
	}
	if err := WriteConns(&connBuf, ds.Conns); err != nil {
		t.Fatal(err)
	}
	got := drain(t, NewScannerSource(&dnsBuf, &connBuf, Strict()))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("scanner source drained\n%+v\nwant\n%+v", got, want)
	}
}

// TestDirSourceConcatenatesPartitions checks a directory of
// time-partitioned trace files streams as the concatenation of its
// partitions in name order, matching a single-file scan of the same
// records, and that the source is re-scannable.
func TestDirSourceConcatenatesPartitions(t *testing.T) {
	ds := sourceDataset()
	want := roundTrip(t, ds)
	dir := t.TempDir()
	writeFile := func(name string, fn func(*bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Two partitions per stream, split at the natural time boundary so
	// lexicographic name order equals time order.
	writeFile("part-000.dns.tsv", func(b *bytes.Buffer) error { return WriteDNS(b, ds.DNS[:2]) })
	writeFile("part-001.dns.tsv", func(b *bytes.Buffer) error { return WriteDNS(b, ds.DNS[2:]) })
	writeFile("part-000.conn.tsv", func(b *bytes.Buffer) error { return WriteConns(b, ds.Conns[:1]) })
	writeFile("part-001.conn.tsv", func(b *bytes.Buffer) error { return WriteConns(b, ds.Conns[1:]) })
	// An unrelated file the source must ignore.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("notes\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	src := NewDirSource(dir, Strict())
	for pass := 0; pass < 2; pass++ {
		got := drain(t, src)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("pass %d: dir source drained\n%+v\nwant\n%+v", pass, got, want)
		}
	}
}

func TestDirSourceEmptyDirErrors(t *testing.T) {
	src := NewDirSource(t.TempDir(), Strict())
	err := src.StreamDNS(func(*DNSRecord) error { return nil })
	if err == nil {
		t.Fatal("empty directory streamed without error")
	}
}

// TestDirSourceAnnotatesFileErrors checks a parse error inside one
// partition reports which file it came from.
func TestDirSourceAnnotatesFileErrors(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.dns.tsv"), []byte("not\ta\tvalid\trecord\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := NewDirSource(dir, Strict())
	err := src.StreamDNS(func(*DNSRecord) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "bad.dns.tsv") {
		t.Fatalf("error %v does not name the failing file", err)
	}
}

// TestSourceYieldErrorPropagates checks a yield error aborts the stream
// and surfaces verbatim from every source implementation.
func TestSourceYieldErrorPropagates(t *testing.T) {
	ds := sourceDataset()
	sentinel := errors.New("stop")
	var dnsBuf, connBuf bytes.Buffer
	if err := WriteDNS(&dnsBuf, ds.DNS); err != nil {
		t.Fatal(err)
	}
	if err := WriteConns(&connBuf, ds.Conns); err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]Source{
		"dataset": NewDatasetSource(ds),
		"scanner": NewScannerSource(&dnsBuf, &connBuf, Strict()),
	} {
		n := 0
		err := src.StreamDNS(func(*DNSRecord) error {
			n++
			return sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("%s: yield error %v, want %v", name, err, sentinel)
		}
		if n != 1 {
			t.Errorf("%s: %d yields after abort, want 1", name, n)
		}
	}
}
