package trace

import (
	"net/netip"
	"testing"
	"time"
)

func TestFilterTime(t *testing.T) {
	ds := &Dataset{DNS: sampleDNS(), Conns: sampleConns()}
	cut := ds.FilterTime(2*time.Second, 10*time.Second)
	if len(cut.DNS) != 1 || cut.DNS[0].Query != "nx.example.net" {
		t.Fatalf("DNS cut %+v", cut.DNS)
	}
	if len(cut.Conns) != 1 || cut.Conns[0].RespPort != 123 {
		t.Fatalf("conn cut %+v", cut.Conns)
	}
	// Inputs untouched.
	if len(ds.DNS) != 2 || len(ds.Conns) != 2 {
		t.Fatal("filter mutated input")
	}
	empty := ds.FilterTime(time.Hour, 2*time.Hour)
	if len(empty.DNS) != 0 || len(empty.Conns) != 0 {
		t.Fatal("out-of-range filter returned records")
	}
}

func TestFilterHouse(t *testing.T) {
	ds := &Dataset{DNS: sampleDNS(), Conns: sampleConns()}
	h := netip.MustParseAddr("10.1.0.3")
	cut := ds.FilterHouse(h)
	if len(cut.DNS) != 1 || cut.DNS[0].Client != h {
		t.Fatalf("DNS cut %+v", cut.DNS)
	}
	if len(cut.Conns) != 1 || cut.Conns[0].Orig != h {
		t.Fatalf("conn cut %+v", cut.Conns)
	}
}

func TestRebase(t *testing.T) {
	ds := &Dataset{DNS: sampleDNS(), Conns: sampleConns()}
	shifted := ds.Rebase(time.Second)
	if shifted.DNS[0].QueryTS != ds.DNS[0].QueryTS-time.Second {
		t.Fatalf("rebase wrong: %v", shifted.DNS[0].QueryTS)
	}
	if shifted.Conns[0].TS != ds.Conns[0].TS-time.Second {
		t.Fatalf("rebase wrong: %v", shifted.Conns[0].TS)
	}
	if ds.DNS[0].QueryTS == shifted.DNS[0].QueryTS {
		t.Fatal("rebase mutated input")
	}
}

func TestMerge(t *testing.T) {
	a := &Dataset{DNS: sampleDNS()[:1], Conns: sampleConns()[:1]}
	b := &Dataset{DNS: sampleDNS()[1:], Conns: sampleConns()[1:]}
	// Merge in reverse order; result must still be time-sorted.
	m := Merge(b, a)
	if len(m.DNS) != 2 || len(m.Conns) != 2 {
		t.Fatalf("merge sizes %d/%d", len(m.DNS), len(m.Conns))
	}
	if m.DNS[0].TS > m.DNS[1].TS || m.Conns[0].TS > m.Conns[1].TS {
		t.Fatal("merge not sorted")
	}
	if empty := Merge(); len(empty.DNS) != 0 {
		t.Fatal("empty merge")
	}
}

func TestFilterComposition(t *testing.T) {
	// Cutting a window and rebasing it yields records starting at zero.
	ds := &Dataset{DNS: sampleDNS(), Conns: sampleConns()}
	window := ds.FilterTime(time.Second, time.Minute).Rebase(time.Second)
	for i := range window.DNS {
		if window.DNS[i].QueryTS < 0 {
			t.Fatal("negative timestamp after rebase")
		}
	}
}
