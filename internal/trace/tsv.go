package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// TSV serialization in the spirit of Bro logs: a '#fields' header line
// followed by one tab-separated record per line. Timestamps are seconds
// (with fractional part) since the window start.

const (
	dnsFields  = "#fields\tquery_ts\tts\tclient\tresolver\tid\tquery\tqtype\trcode\tanswers\tretries\ttc"
	connFields = "#fields\tts\tduration\tproto\torig\torig_port\tresp\tresp_port\torig_bytes\tresp_bytes"
)

func secs(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 6, 64)
}

// maxSecs bounds parsed timestamps (in seconds). It sits safely below
// the int64-nanosecond limit (~9.22e9 s) so the float→Duration
// conversion can never overflow, with margin for float rounding.
const maxSecs = 9.2e9

func parseSecs(s string) (time.Duration, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	// Reject non-finite and overflowing values explicitly: converting
	// such floats to int64 is undefined, and no real trace carries them.
	if math.IsNaN(f) || math.IsInf(f, 0) || f > maxSecs || f < -maxSecs {
		return 0, fmt.Errorf("trace: timestamp %q out of range", s)
	}
	// Round rather than truncate: the fractional-seconds encoding is
	// microsecond-precise, and f*1e9 lands a hair under whole nanosecond
	// values often enough that truncation would corrupt round trips.
	return time.Duration(math.Round(f * float64(time.Second))), nil
}

// WriteDNS writes DNS records as TSV.
func WriteDNS(w io.Writer, recs []DNSRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, dnsFields); err != nil {
		return err
	}
	for i := range recs {
		d := &recs[i]
		answers := make([]string, len(d.Answers))
		for j, a := range d.Answers {
			answers[j] = fmt.Sprintf("%s/%s", a.Addr, secs(a.TTL))
		}
		ans := strings.Join(answers, ",")
		if ans == "" {
			ans = "-"
		}
		tc := "F"
		if d.TC {
			tc = "T"
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%s\t%d\t%s\t%d\t%d\t%s\t%d\t%s\n",
			secs(d.QueryTS), secs(d.TS), d.Client, d.Resolver, d.ID,
			d.Query, d.QType, d.RCode, ans, d.Retries, tc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// parseDNSLine parses one data line of the DNS TSV format. It is the
// standalone-string form of parseDNSLineBytes, for callers without a
// scanner's reusable parse state.
func parseDNSLine(lineNo int, line string) (DNSRecord, error) {
	return parseDNSLineBytes(lineNo, []byte(line), newParseState())
}

// parseDNSLineBytes parses one data line in place: fields are located
// by index in the scanner's line buffer, numbers and addresses parse
// without materializing per-field strings, the query name is interned
// through st.names, and the answers land in st's shared arena. Accepted
// inputs, values, and error text are exactly those of the historical
// strings.Split parser.
func parseDNSLineBytes(lineNo int, line []byte, st *parseState) (DNSRecord, error) {
	var d DNSRecord
	st.fields = splitFields(line, st.fields)
	f := st.fields
	// 9 fields is the pre-fault format (no retries/tc columns);
	// accept it so existing trace files keep loading.
	if len(f) != 9 && len(f) != 11 {
		return d, fmt.Errorf("trace: dns line %d: %d fields, want 9 or 11", lineNo, len(f))
	}
	var err error
	if d.QueryTS, err = parseSecsBytes(f[0]); err != nil {
		return d, fmt.Errorf("trace: dns line %d query_ts: %w", lineNo, err)
	}
	if d.TS, err = parseSecsBytes(f[1]); err != nil {
		return d, fmt.Errorf("trace: dns line %d ts: %w", lineNo, err)
	}
	if d.Client, err = st.addrs.parse(f[2]); err != nil {
		return d, fmt.Errorf("trace: dns line %d client: %w", lineNo, err)
	}
	if d.Resolver, err = st.addrs.parse(f[3]); err != nil {
		return d, fmt.Errorf("trace: dns line %d resolver: %w", lineNo, err)
	}
	id, err := parseUintBytes(f[4], 16)
	if err != nil {
		return d, fmt.Errorf("trace: dns line %d id: %w", lineNo, err)
	}
	d.ID = uint16(id)
	d.Query = st.names.Canonical(f[5])
	qt, err := parseUintBytes(f[6], 16)
	if err != nil {
		return d, fmt.Errorf("trace: dns line %d qtype: %w", lineNo, err)
	}
	d.QType = uint16(qt)
	rc, err := parseUintBytes(f[7], 8)
	if err != nil {
		return d, fmt.Errorf("trace: dns line %d rcode: %w", lineNo, err)
	}
	d.RCode = uint8(rc)
	if !bytes.Equal(f[8], dashField) {
		st.answers = st.answers[:0]
		rest := f[8]
		for len(rest) > 0 {
			var part []byte
			if i := bytes.IndexByte(rest, ','); i >= 0 {
				part, rest = rest[:i], rest[i+1:]
			} else {
				part, rest = rest, nil
			}
			addr, ttlStr, ok := bytes.Cut(part, slashSep)
			if !ok {
				return d, fmt.Errorf("trace: dns line %d answer %q missing ttl", lineNo, part)
			}
			var a Answer
			if a.Addr, err = st.addrs.parse(addr); err != nil {
				return d, fmt.Errorf("trace: dns line %d answer addr: %w", lineNo, err)
			}
			// Zone identifiers may contain commas, which would corrupt
			// the comma-joined answers field on the next write; no DNS
			// answer legitimately carries one.
			if a.Addr.Zone() != "" {
				return d, fmt.Errorf("trace: dns line %d answer addr %q has a zone", lineNo, addr)
			}
			if a.TTL, err = parseSecsBytes(ttlStr); err != nil {
				return d, fmt.Errorf("trace: dns line %d answer ttl: %w", lineNo, err)
			}
			st.answers = append(st.answers, a)
		}
		d.Answers = st.arena.take(st.answers)
	}
	if len(f) == 11 {
		rt, err := parseUintBytes(f[9], 8)
		if err != nil {
			return d, fmt.Errorf("trace: dns line %d retries: %w", lineNo, err)
		}
		d.Retries = uint8(rt)
		switch {
		case len(f[10]) == 1 && f[10][0] == 'T':
			d.TC = true
		case len(f[10]) == 1 && f[10][0] == 'F':
			d.TC = false
		default:
			return d, fmt.Errorf("trace: dns line %d tc: %q, want T or F", lineNo, f[10])
		}
	}
	return d, nil
}

var (
	dashField = []byte("-")
	slashSep  = []byte("/")
)

// ReadDNS parses TSV DNS records. It is the strict slice-based form of
// DNSScanner: the first malformed line aborts the read.
func ReadDNS(r io.Reader) ([]DNSRecord, error) {
	sc := NewDNSScanner(r, ErrorPolicy{})
	var out []DNSRecord
	for sc.Scan() {
		out = append(out, sc.Record())
	}
	if sc.parseFailed {
		return nil, sc.Err()
	}
	return out, sc.Err()
}

// WriteConns writes connection records as TSV.
func WriteConns(w io.Writer, recs []ConnRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, connFields); err != nil {
		return err
	}
	for i := range recs {
		c := &recs[i]
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%s\t%d\t%s\t%d\t%d\t%d\n",
			secs(c.TS), secs(c.Duration), c.Proto, c.Orig, c.OrigPort,
			c.Resp, c.RespPort, c.OrigBytes, c.RespBytes); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// parseConnLine parses one data line of the connection TSV format. It
// is the standalone-string form of parseConnLineBytes.
func parseConnLine(lineNo int, line string) (ConnRecord, error) {
	return parseConnLineBytes(lineNo, []byte(line), newParseState())
}

// parseConnLineBytes parses one data line in place; see
// parseDNSLineBytes for the zero-copy contract.
func parseConnLineBytes(lineNo int, line []byte, st *parseState) (ConnRecord, error) {
	var c ConnRecord
	st.fields = splitFields(line, st.fields)
	f := st.fields
	if len(f) != 9 {
		return c, fmt.Errorf("trace: conn line %d: %d fields, want 9", lineNo, len(f))
	}
	var err error
	if c.TS, err = parseSecsBytes(f[0]); err != nil {
		return c, fmt.Errorf("trace: conn line %d ts: %w", lineNo, err)
	}
	if c.Duration, err = parseSecsBytes(f[1]); err != nil {
		return c, fmt.Errorf("trace: conn line %d duration: %w", lineNo, err)
	}
	switch {
	case bytes.Equal(f[2], protoTCP):
		c.Proto = TCP
	case bytes.Equal(f[2], protoUDP):
		c.Proto = UDP
	default:
		if c.Proto, err = ParseProto(string(f[2])); err != nil {
			return c, fmt.Errorf("trace: conn line %d: %w", lineNo, err)
		}
	}
	if c.Orig, err = st.addrs.parse(f[3]); err != nil {
		return c, fmt.Errorf("trace: conn line %d orig: %w", lineNo, err)
	}
	op, err := parseUintBytes(f[4], 16)
	if err != nil {
		return c, fmt.Errorf("trace: conn line %d orig_port: %w", lineNo, err)
	}
	c.OrigPort = uint16(op)
	if c.Resp, err = st.addrs.parse(f[5]); err != nil {
		return c, fmt.Errorf("trace: conn line %d resp: %w", lineNo, err)
	}
	rp, err := parseUintBytes(f[6], 16)
	if err != nil {
		return c, fmt.Errorf("trace: conn line %d resp_port: %w", lineNo, err)
	}
	c.RespPort = uint16(rp)
	if c.OrigBytes, err = parseIntBytes(f[7]); err != nil {
		return c, fmt.Errorf("trace: conn line %d orig_bytes: %w", lineNo, err)
	}
	if c.RespBytes, err = parseIntBytes(f[8]); err != nil {
		return c, fmt.Errorf("trace: conn line %d resp_bytes: %w", lineNo, err)
	}
	return c, nil
}

var (
	protoTCP = []byte("tcp")
	protoUDP = []byte("udp")
)

// ReadConns parses TSV connection records. It is the strict slice-based
// form of ConnScanner: the first malformed line aborts the read.
func ReadConns(r io.Reader) ([]ConnRecord, error) {
	sc := NewConnScanner(r, ErrorPolicy{})
	var out []ConnRecord
	for sc.Scan() {
		out = append(out, sc.Record())
	}
	if sc.parseFailed {
		return nil, sc.Err()
	}
	return out, sc.Err()
}
