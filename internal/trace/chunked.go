package trace

// Parallel chunked ingestion. The serial scanners read one line at a
// time on one goroutine; on multi-core hardware that single parse loop
// is the analysis pipeline's longest serial prefix. The chunked path
// splits the input into record-aligned (newline-aligned) chunks, parses
// the chunks concurrently — each worker with its own parseState, so the
// zero-copy field splitting and per-worker name interning need no locks
// — and merges the parsed chunks back in input order.
//
// Determinism is the contract: the record sequence, every quarantine
// decision, the error-budget trip point, and the strict-mode abort all
// replay in serial line order at the merge, so a chunked scan is
// indistinguishable from a serial one at any worker count. Query-name
// strings are re-canonicalized through a single merge-side SymbolTable,
// which restores global first-appearance intern order no matter which
// worker materialized a name first.

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"runtime/pprof"
	"sync"

	"dnscontext/internal/parallel"
)

const (
	// ingestChunkBytes is the target chunk size handed to one parse
	// worker: large enough to amortize the hand-off, small enough that
	// a few chunks per worker stay in flight.
	ingestChunkBytes = 1 << 20
	// maxIngestLine mirrors the serial scanners' bufio token cap
	// (sc.Buffer(..., 1<<22)): a line this long fails the scan with
	// bufio.ErrTooLong on either path.
	maxIngestLine = 1 << 22
)

// ingestChunk is one newline-aligned slice of the input: whole lines
// only (the final chunk of the stream may lack a trailing '\n').
type ingestChunk struct {
	// startLine is the 1-based physical line number of the chunk's
	// first line, so workers report exact line numbers without any
	// global counter.
	startLine int
	data      []byte
}

// produceIngestChunks reads r into newline-aligned chunks. A line that
// accumulates maxIngestLine bytes without a newline fails with
// bufio.ErrTooLong, exactly where the serial scanner's token cap would;
// a mid-stream read error still emits every buffered line first — the
// serial scanner yields those (including a partial final line) before
// reporting the error, and the ordered merge preserves that prefix.
func produceIngestChunks(r io.Reader, chunkBytes int, emit func(ingestChunk) error) error {
	startLine := 1
	var carry []byte // partial trailing line of the previous read
	for {
		buf := make([]byte, len(carry)+chunkBytes)
		n := copy(buf, carry)
		m, rerr := io.ReadFull(r, buf[n:])
		buf = buf[:n+m]
		// Only the first line of buf can be overlong: carry holds no
		// newline, so any later line is bounded by one read's bytes.
		if i := bytes.IndexByte(buf, '\n'); i >= maxIngestLine || (i < 0 && len(buf) >= maxIngestLine) {
			return bufio.ErrTooLong
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			if len(buf) > 0 {
				return emit(ingestChunk{startLine: startLine, data: buf})
			}
			return nil
		}
		if rerr != nil {
			if len(buf) > 0 {
				if err := emit(ingestChunk{startLine: startLine, data: buf}); err != nil {
					return err
				}
			}
			return rerr
		}
		cut := bytes.LastIndexByte(buf, '\n')
		if cut < 0 {
			carry = buf // the line continues; grow it next read
			continue
		}
		// Cap the emitted slice's capacity: carry aliases the same
		// backing array and is copied out on the next iteration.
		if err := emit(ingestChunk{startLine: startLine, data: buf[: cut+1 : cut+1]}); err != nil {
			return err
		}
		startLine += bytes.Count(buf[:cut+1], []byte{'\n'})
		carry = buf[cut+1:]
	}
}

// scanEvent is one data line's outcome inside a parsed chunk, in line
// order: either a parsed record (rec indexes parsedChunk.recs) or a
// parse failure (rec < 0) carrying the copied text and cause so the
// merge can replay the error policy exactly.
type scanEvent struct {
	line int
	rec  int32
	text string
	err  error
}

// parsedChunk is one chunk's parse output.
type parsedChunk[R any] struct {
	recs   []R
	events []scanEvent
}

// parseChunkLines splits one chunk into lines — mirroring
// bufio.ScanLines: '\n' terminators, one trailing '\r' dropped, a final
// unterminated line kept — and parses every data line, recording
// outcomes in line order. Comment ('#') and blank lines advance the
// line counter without producing an event, as the serial scanners do.
func parseChunkLines[R any](c ingestChunk, parse func(lineNo int, line []byte) (R, error)) parsedChunk[R] {
	var pc parsedChunk[R]
	line := c.startLine - 1
	data := c.data
	for len(data) > 0 {
		var ln []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			ln, data = data[:i], data[i+1:]
		} else {
			ln, data = data, nil
		}
		line++
		if len(ln) > 0 && ln[len(ln)-1] == '\r' {
			ln = ln[:len(ln)-1]
		}
		if len(ln) == 0 || ln[0] == '#' {
			continue
		}
		rec, err := parse(line, ln)
		if err != nil {
			pc.events = append(pc.events, scanEvent{line: line, rec: -1, text: string(ln), err: err})
			continue
		}
		pc.recs = append(pc.recs, rec)
		pc.events = append(pc.events, scanEvent{line: line, rec: int32(len(pc.recs) - 1)})
	}
	return pc
}

// scanChunked is the shared chunked-scan driver: produce chunks, parse
// them on `workers` goroutines (each drawing a pooled parseState), and
// replay the per-line outcomes in input order — applying the error
// policy and budget with the same counters, trip points, and error
// values as the serial scanner core. canon, when non-nil, runs on each
// record at merge time (the DNS path re-canonicalizes Query through a
// single table there).
func scanChunked[R any](r io.Reader, workers, chunkBytes int, policy ErrorPolicy,
	parse func(lineNo int, line []byte, st *parseState) (R, error),
	canon func(*R),
	yield func(*R) error) error {

	pool := sync.Pool{New: func() any { return newParseState() }}
	var lines, nQuar int
	var err error
	// Label the scan so profiles attribute parse samples to the stage;
	// the chunk workers inherit the label from this goroutine.
	pprof.Do(context.Background(), pprof.Labels("dnsctx_phase", "scan"), func(ctx context.Context) {
		err = parallel.OrderedStream(ctx, workers, 2*parallel.Workers(workers),
			func(emit func(ingestChunk) error) error {
				return produceIngestChunks(r, chunkBytes, emit)
			},
			func(c ingestChunk) (parsedChunk[R], error) {
				st := pool.Get().(*parseState)
				pc := parseChunkLines(c, func(lineNo int, line []byte) (R, error) {
					return parse(lineNo, line, st)
				})
				pool.Put(st)
				return pc, nil
			},
			func(pc parsedChunk[R]) error {
				for i := range pc.events {
					ev := &pc.events[i]
					lines++
					if ev.rec >= 0 {
						rec := &pc.recs[ev.rec]
						if canon != nil {
							canon(rec)
						}
						if err := yield(rec); err != nil {
							return err
						}
						continue
					}
					if !policy.Quarantine {
						return ev.err
					}
					nQuar++
					q := Quarantined{Line: ev.line, Text: ev.text, Err: ev.err}
					if policy.Sink != nil {
						policy.Sink(q)
					}
					if policy.Budget.Exceeded(nQuar, lines) {
						return &BudgetError{Quarantined: nQuar, Lines: lines, Last: q}
					}
				}
				return nil
			})
	})
	return err
}

// scanChunkedDNS streams r's DNS records through the chunked parser,
// yielding them in input order under policy. Query names from
// different workers are re-canonicalized through one merge-side table,
// so equal names share storage and the downstream analyzer's intern
// order matches a serial scan's.
func scanChunkedDNS(r io.Reader, workers int, policy ErrorPolicy, yield func(*DNSRecord) error) error {
	names := NewSymbolTable()
	return scanChunked(r, workers, ingestChunkBytes, policy, parseDNSLineBytes,
		func(d *DNSRecord) { d.Query = names.CanonicalString(d.Query) },
		yield)
}

// scanChunkedConns is scanChunkedDNS for connection summaries (which
// carry no strings, so no re-canonicalization is needed).
func scanChunkedConns(r io.Reader, workers int, policy ErrorPolicy, yield func(*ConnRecord) error) error {
	return scanChunked(r, workers, ingestChunkBytes, policy, parseConnLineBytes, nil, yield)
}
