package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestDNSJSONRoundTrip(t *testing.T) {
	want := sampleDNS()
	var buf bytes.Buffer
	if err := WriteDNSJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDNSJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("records %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := &want[i], &got[i]
		if g.Client != w.Client || g.Resolver != w.Resolver || g.Query != w.Query ||
			g.ID != w.ID || g.QType != w.QType || g.RCode != w.RCode {
			t.Fatalf("record %d identity mismatch:\ngot  %+v\nwant %+v", i, g, w)
		}
		// Seconds-float encoding loses sub-microsecond precision.
		if !closeDur(g.TS, w.TS) || !closeDur(g.QueryTS, w.QueryTS) {
			t.Fatalf("record %d times drifted", i)
		}
		if len(g.Answers) != len(w.Answers) {
			t.Fatalf("record %d answers %d, want %d", i, len(g.Answers), len(w.Answers))
		}
		for j := range w.Answers {
			if g.Answers[j].Addr != w.Answers[j].Addr || !closeDur(g.Answers[j].TTL, w.Answers[j].TTL) {
				t.Fatalf("record %d answer %d mismatch", i, j)
			}
		}
	}
}

func TestConnsJSONRoundTrip(t *testing.T) {
	want := sampleConns()
	var buf bytes.Buffer
	if err := WriteConnsJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConnsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("records %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := &want[i], &got[i]
		if g.Orig != w.Orig || g.Resp != w.Resp || g.OrigPort != w.OrigPort ||
			g.RespPort != w.RespPort || g.Proto != w.Proto ||
			g.OrigBytes != w.OrigBytes || g.RespBytes != w.RespBytes {
			t.Fatalf("record %d mismatch:\ngot  %+v\nwant %+v", i, g, w)
		}
		if !closeDur(g.TS, w.TS) || !closeDur(g.Duration, w.Duration) {
			t.Fatalf("record %d times drifted", i)
		}
	}
}

func closeDur(a, b time.Duration) bool {
	return math.Abs(float64(a-b)) <= float64(time.Microsecond)
}

func TestJSONReadErrors(t *testing.T) {
	dnsCases := map[string]string{
		"garbage":      "{",
		"bad client":   `{"client":"x","resolver":"8.8.8.8"}`,
		"bad resolver": `{"client":"10.1.0.1","resolver":"y"}`,
		"bad answer":   `{"client":"10.1.0.1","resolver":"8.8.8.8","answers":[{"addr":"zzz"}]}`,
	}
	for name, in := range dnsCases {
		if _, err := ReadDNSJSON(strings.NewReader(in)); err == nil {
			t.Errorf("dns %s: no error", name)
		}
	}
	connCases := map[string]string{
		"garbage":   "[",
		"bad proto": `{"proto":"sctp","orig":"10.1.0.1","resp":"1.2.3.4"}`,
		"bad orig":  `{"proto":"tcp","orig":"x","resp":"1.2.3.4"}`,
		"bad resp":  `{"proto":"tcp","orig":"10.1.0.1","resp":"y"}`,
	}
	for name, in := range connCases {
		if _, err := ReadConnsJSON(strings.NewReader(in)); err == nil {
			t.Errorf("conn %s: no error", name)
		}
	}
}

func TestJSONEmpty(t *testing.T) {
	recs, err := ReadDNSJSON(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty dns: %v %v", recs, err)
	}
	conns, err := ReadConnsJSON(strings.NewReader(""))
	if err != nil || len(conns) != 0 {
		t.Fatalf("empty conns: %v %v", conns, err)
	}
}
