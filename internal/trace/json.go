package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/netip"
	"time"
)

// JSON serialization: one object per line (JSONL), a convenient interop
// format for external tooling. Field names follow the TSV columns;
// timestamps and durations are fractional seconds; addresses are strings.

type dnsJSON struct {
	QueryTS  float64      `json:"query_ts"`
	TS       float64      `json:"ts"`
	Client   string       `json:"client"`
	Resolver string       `json:"resolver"`
	ID       uint16       `json:"id"`
	Query    string       `json:"query"`
	QType    uint16       `json:"qtype"`
	RCode    uint8        `json:"rcode"`
	Answers  []answerJSON `json:"answers,omitempty"`
	Retries  uint8        `json:"retries,omitempty"`
	TC       bool         `json:"tc,omitempty"`
}

type answerJSON struct {
	Addr string  `json:"addr"`
	TTL  float64 `json:"ttl"`
}

type connJSON struct {
	TS        float64 `json:"ts"`
	Duration  float64 `json:"duration"`
	Proto     string  `json:"proto"`
	Orig      string  `json:"orig"`
	OrigPort  uint16  `json:"orig_port"`
	Resp      string  `json:"resp"`
	RespPort  uint16  `json:"resp_port"`
	OrigBytes int64   `json:"orig_bytes"`
	RespBytes int64   `json:"resp_bytes"`
}

// WriteDNSJSON writes DNS records as JSON lines.
func WriteDNSJSON(w io.Writer, recs []DNSRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		d := &recs[i]
		j := dnsJSON{
			QueryTS: d.QueryTS.Seconds(), TS: d.TS.Seconds(),
			Client: d.Client.String(), Resolver: d.Resolver.String(),
			ID: d.ID, Query: d.Query, QType: d.QType, RCode: d.RCode,
			Retries: d.Retries, TC: d.TC,
		}
		for _, a := range d.Answers {
			j.Answers = append(j.Answers, answerJSON{Addr: a.Addr.String(), TTL: a.TTL.Seconds()})
		}
		if err := enc.Encode(&j); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDNSJSON parses JSON-lines DNS records.
func ReadDNSJSON(r io.Reader) ([]DNSRecord, error) {
	dec := json.NewDecoder(r)
	var out []DNSRecord
	for line := 1; dec.More(); line++ {
		var j dnsJSON
		if err := dec.Decode(&j); err != nil {
			return nil, fmt.Errorf("trace: dns json record %d: %w", line, err)
		}
		d := DNSRecord{
			ID: j.ID, Query: j.Query, QType: j.QType, RCode: j.RCode,
			Retries: j.Retries, TC: j.TC,
		}
		var err error
		if d.QueryTS, err = secsDur(j.QueryTS); err != nil {
			return nil, fmt.Errorf("trace: dns json record %d query_ts: %w", line, err)
		}
		if d.TS, err = secsDur(j.TS); err != nil {
			return nil, fmt.Errorf("trace: dns json record %d ts: %w", line, err)
		}
		if d.Client, err = netip.ParseAddr(j.Client); err != nil {
			return nil, fmt.Errorf("trace: dns json record %d client: %w", line, err)
		}
		if d.Resolver, err = netip.ParseAddr(j.Resolver); err != nil {
			return nil, fmt.Errorf("trace: dns json record %d resolver: %w", line, err)
		}
		for _, aj := range j.Answers {
			addr, err := netip.ParseAddr(aj.Addr)
			if err != nil {
				return nil, fmt.Errorf("trace: dns json record %d answer: %w", line, err)
			}
			ttl, err := secsDur(aj.TTL)
			if err != nil {
				return nil, fmt.Errorf("trace: dns json record %d answer ttl: %w", line, err)
			}
			d.Answers = append(d.Answers, Answer{Addr: addr, TTL: ttl})
		}
		out = append(out, d)
	}
	return out, nil
}

// WriteConnsJSON writes connection records as JSON lines.
func WriteConnsJSON(w io.Writer, recs []ConnRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		c := &recs[i]
		j := connJSON{
			TS: c.TS.Seconds(), Duration: c.Duration.Seconds(), Proto: c.Proto.String(),
			Orig: c.Orig.String(), OrigPort: c.OrigPort,
			Resp: c.Resp.String(), RespPort: c.RespPort,
			OrigBytes: c.OrigBytes, RespBytes: c.RespBytes,
		}
		if err := enc.Encode(&j); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadConnsJSON parses JSON-lines connection records.
func ReadConnsJSON(r io.Reader) ([]ConnRecord, error) {
	dec := json.NewDecoder(r)
	var out []ConnRecord
	for line := 1; dec.More(); line++ {
		var j connJSON
		if err := dec.Decode(&j); err != nil {
			return nil, fmt.Errorf("trace: conn json record %d: %w", line, err)
		}
		c := ConnRecord{
			OrigPort: j.OrigPort, RespPort: j.RespPort,
			OrigBytes: j.OrigBytes, RespBytes: j.RespBytes,
		}
		var err error
		if c.TS, err = secsDur(j.TS); err != nil {
			return nil, fmt.Errorf("trace: conn json record %d ts: %w", line, err)
		}
		if c.Duration, err = secsDur(j.Duration); err != nil {
			return nil, fmt.Errorf("trace: conn json record %d duration: %w", line, err)
		}
		if c.Proto, err = ParseProto(j.Proto); err != nil {
			return nil, fmt.Errorf("trace: conn json record %d: %w", line, err)
		}
		if c.Orig, err = netip.ParseAddr(j.Orig); err != nil {
			return nil, fmt.Errorf("trace: conn json record %d orig: %w", line, err)
		}
		if c.Resp, err = netip.ParseAddr(j.Resp); err != nil {
			return nil, fmt.Errorf("trace: conn json record %d resp: %w", line, err)
		}
		out = append(out, c)
	}
	return out, nil
}

func secsDur(s float64) (time.Duration, error) {
	// Same range discipline as parseSecs: NaN/Inf/overflow would make the
	// float→int64 conversion undefined, so reject them.
	if math.IsNaN(s) || math.IsInf(s, 0) || s > maxSecs || s < -maxSecs {
		return 0, fmt.Errorf("trace: timestamp %v out of range", s)
	}
	// Round, not truncate — see parseSecs in tsv.go.
	return time.Duration(math.Round(s * float64(time.Second))), nil
}
