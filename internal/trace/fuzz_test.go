package trace_test

// Fuzz targets for the two trace codecs (Bro-style TSV and JSONL). Each
// target asserts the parser never panics and that serialization is a
// fixpoint after one quantization round: parse(input) → write → parse
// must produce records that survive a further write/parse cycle
// unchanged. (Byte-level idempotency is deliberately not asserted for
// the first round — timestamps quantize to microseconds on write.)
//
// Seed corpora live under testdata/fuzz/; run `make fuzz` for a short
// fuzzing budget or `go test ./internal/trace -fuzz=FuzzReadDNS` for a
// long one.

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"dnscontext/internal/trace"
)

// sampleDNS is a realistic record set for seeding: a paired A answer, an
// answerless AAAA, a failed (SERVFAIL, retried) lookup, and a truncated
// TCP-fallback lookup.
func sampleDNS() []trace.DNSRecord {
	return []trace.DNSRecord{
		{
			QueryTS: 1250 * time.Millisecond, TS: 1262 * time.Millisecond,
			Client:   netip.MustParseAddr("10.1.0.3"),
			Resolver: netip.MustParseAddr("8.8.8.8"),
			ID:       17, Query: "www.example.com", QType: 1,
			Answers: []trace.Answer{
				{Addr: netip.MustParseAddr("203.0.113.10"), TTL: 300 * time.Second},
				{Addr: netip.MustParseAddr("203.0.113.11"), TTL: 300 * time.Second},
			},
		},
		{
			QueryTS: 1251 * time.Millisecond, TS: 1263 * time.Millisecond,
			Client:   netip.MustParseAddr("10.1.0.3"),
			Resolver: netip.MustParseAddr("8.8.8.8"),
			ID:       18, Query: "www.example.com", QType: 28,
		},
		{
			QueryTS: 90 * time.Second, TS: 99 * time.Second,
			Client:   netip.MustParseAddr("10.1.0.7"),
			Resolver: netip.MustParseAddr("10.0.0.2"),
			ID:       19, Query: "api.example.net", QType: 1, RCode: 2,
			Retries: 1,
		},
		{
			QueryTS: 100 * time.Second, TS: 100*time.Second + 40*time.Millisecond,
			Client:   netip.MustParseAddr("10.1.0.7"),
			Resolver: netip.MustParseAddr("1.1.1.1"),
			ID:       20, Query: "cdn.example.org", QType: 1,
			Answers: []trace.Answer{{Addr: netip.MustParseAddr("198.51.100.4"), TTL: 60 * time.Second}},
			TC:      true,
		},
	}
}

func sampleConns() []trace.ConnRecord {
	return []trace.ConnRecord{
		{
			TS: 1300 * time.Millisecond, Duration: 2500 * time.Millisecond, Proto: trace.TCP,
			Orig: netip.MustParseAddr("10.1.0.3"), OrigPort: 40123,
			Resp: netip.MustParseAddr("203.0.113.10"), RespPort: 443,
			OrigBytes: 1822, RespBytes: 104833,
		},
		{
			TS: 5 * time.Second, Duration: 0, Proto: trace.UDP,
			Orig: netip.MustParseAddr("10.1.0.7"), OrigPort: 51000,
			Resp: netip.MustParseAddr("192.0.2.123"), RespPort: 123,
			OrigBytes: 48, RespBytes: 0,
		},
	}
}

func seedTSV[T any](f *testing.F, recs []T, write func(*bytes.Buffer, []T) error) {
	var buf bytes.Buffer
	if err := write(&buf, recs); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
}

func FuzzReadDNS(f *testing.F) {
	seedTSV(f, sampleDNS(), func(b *bytes.Buffer, r []trace.DNSRecord) error { return trace.WriteDNS(b, r) })
	// Legacy 9-field line (pre-fault format).
	f.Add("1.000000\t1.010000\t10.1.0.1\t8.8.8.8\t5\thost.example\t1\t0\t203.0.113.1/30.000000\n")
	f.Add("#fields\theader\nnot\ta\trecord\n")
	f.Fuzz(func(t *testing.T, data string) {
		recs, err := trace.ReadDNS(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := trace.WriteDNS(&buf, recs); err != nil {
			t.Fatalf("write of parsed records failed: %v", err)
		}
		recs2, err := trace.ReadDNS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written records failed: %v\ninput: %q\nwritten: %q", err, data, buf.String())
		}
		var buf2 bytes.Buffer
		if err := trace.WriteDNS(&buf2, recs2); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		recs3, err := trace.ReadDNS(bytes.NewReader(buf2.Bytes()))
		if err != nil {
			t.Fatalf("second re-read failed: %v", err)
		}
		if !reflect.DeepEqual(recs2, recs3) {
			t.Fatalf("serialization not a fixpoint:\nfirst:  %+v\nsecond: %+v", recs2, recs3)
		}
	})
}

func FuzzReadConns(f *testing.F) {
	seedTSV(f, sampleConns(), func(b *bytes.Buffer, r []trace.ConnRecord) error { return trace.WriteConns(b, r) })
	f.Add("0.500000\t1.000000\tudp\t10.1.0.1\t50000\t203.0.113.9\t53\t64\t128\n")
	f.Fuzz(func(t *testing.T, data string) {
		recs, err := trace.ReadConns(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := trace.WriteConns(&buf, recs); err != nil {
			t.Fatalf("write of parsed records failed: %v", err)
		}
		recs2, err := trace.ReadConns(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written records failed: %v\ninput: %q\nwritten: %q", err, data, buf.String())
		}
		var buf2 bytes.Buffer
		if err := trace.WriteConns(&buf2, recs2); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		recs3, err := trace.ReadConns(bytes.NewReader(buf2.Bytes()))
		if err != nil {
			t.Fatalf("second re-read failed: %v", err)
		}
		if !reflect.DeepEqual(recs2, recs3) {
			t.Fatalf("serialization not a fixpoint:\nfirst:  %+v\nsecond: %+v", recs2, recs3)
		}
	})
}

func FuzzReadDNSJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := trace.WriteDNSJSON(&buf, sampleDNS()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"query_ts":1,"ts":1.01,"client":"10.1.0.1","resolver":"8.8.8.8","id":5,"query":"h.example","qtype":1,"rcode":0}` + "\n")
	f.Fuzz(func(t *testing.T, data string) {
		recs, err := trace.ReadDNSJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := trace.WriteDNSJSON(&out, recs); err != nil {
			t.Fatalf("write of parsed records failed: %v", err)
		}
		recs2, err := trace.ReadDNSJSON(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written records failed: %v\ninput: %q\nwritten: %q", err, data, out.String())
		}
		var out2 bytes.Buffer
		if err := trace.WriteDNSJSON(&out2, recs2); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatalf("JSON serialization not a fixpoint:\nfirst:  %q\nsecond: %q", out.String(), out2.String())
		}
	})
}

func FuzzReadConnsJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := trace.WriteConnsJSON(&buf, sampleConns()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"ts":0.5,"duration":1,"proto":"tcp","orig":"10.1.0.1","orig_port":50000,"resp":"203.0.113.9","resp_port":443,"orig_bytes":64,"resp_bytes":128}` + "\n")
	f.Fuzz(func(t *testing.T, data string) {
		recs, err := trace.ReadConnsJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := trace.WriteConnsJSON(&out, recs); err != nil {
			t.Fatalf("write of parsed records failed: %v", err)
		}
		recs2, err := trace.ReadConnsJSON(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written records failed: %v\ninput: %q\nwritten: %q", err, data, out.String())
		}
		var out2 bytes.Buffer
		if err := trace.WriteConnsJSON(&out2, recs2); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatalf("JSON serialization not a fixpoint:\nfirst:  %q\nsecond: %q", out.String(), out2.String())
		}
	})
}
