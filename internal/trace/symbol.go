package trace

// Name interning. A residential trace carries millions of DNS records
// over a few thousand distinct query names; storing each name once and
// handing out dense int32 symbols turns the analysis pipeline's
// string-keyed hot maps into slice lookups and lets the scanners yield
// records without allocating a fresh string per line.
//
// SymbolTable is append-only: symbols are assigned in first-intern
// order, so the same input stream always produces the same numbering —
// the property the analyzer's per-shard determinism relies on.

// Sym is a dense symbol for an interned string. Valid symbols are
// 0..Len()-1 in intern order.
type Sym = int32

// NoSym marks "no symbol" (e.g. a lookup that missed the table).
const NoSym Sym = -1

// maxInternedStrings bounds a table fed by hostile input (a fuzzed or
// corrupt trace with unbounded distinct names). Past the cap, Canonical
// still returns correct strings — they just stop being deduplicated.
const maxInternedStrings = 1 << 20

// SymbolTable maps strings to dense int32 symbols and back. The zero
// value is not ready; use NewSymbolTable. Not safe for concurrent use.
type SymbolTable struct {
	syms  map[string]Sym
	names []string
}

// NewSymbolTable returns an empty table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{syms: make(map[string]Sym)}
}

// Intern returns the symbol for s, assigning the next dense symbol on
// first sight.
func (t *SymbolTable) Intern(s string) Sym {
	if sym, ok := t.syms[s]; ok {
		return sym
	}
	return t.add(s)
}

// InternBytes is Intern for a byte slice. On a hit it performs no
// allocation; only a first sight copies b into a new string.
func (t *SymbolTable) InternBytes(b []byte) Sym {
	if sym, ok := t.syms[string(b)]; ok { // no alloc: map lookup conversion
		return sym
	}
	return t.add(string(b))
}

// Canonical returns the interned string equal to b, allocating only the
// first time each distinct value is seen. It is how the scanners
// materialize query names without per-line garbage.
func (t *SymbolTable) Canonical(b []byte) string {
	if sym, ok := t.syms[string(b)]; ok {
		return t.names[sym]
	}
	if len(t.names) >= maxInternedStrings {
		return string(b)
	}
	s := string(b)
	t.add(s)
	return s
}

// CanonicalString is Canonical for an already-materialized string: it
// returns the table's interned copy equal to s, interning s itself on
// first sight. The parallel chunk parsers use it at merge time — each
// chunk worker interned names into its own table, so equal names from
// different chunks arrive as distinct allocations, and re-canonicalizing
// through the merge table both deduplicates them and fixes the table's
// numbering to global first-appearance order.
func (t *SymbolTable) CanonicalString(s string) string {
	if sym, ok := t.syms[s]; ok {
		return t.names[sym]
	}
	if len(t.names) >= maxInternedStrings {
		return s
	}
	t.add(s)
	return s
}

func (t *SymbolTable) add(s string) Sym {
	sym := Sym(len(t.names))
	t.syms[s] = sym
	t.names = append(t.names, s)
	return sym
}

// Lookup returns the symbol for s, or NoSym if s was never interned.
func (t *SymbolTable) Lookup(s string) Sym {
	if sym, ok := t.syms[s]; ok {
		return sym
	}
	return NoSym
}

// LookupBytes is Lookup for a byte slice; it never allocates.
func (t *SymbolTable) LookupBytes(b []byte) Sym {
	if sym, ok := t.syms[string(b)]; ok {
		return sym
	}
	return NoSym
}

// Name returns the string behind sym. It panics on out-of-range symbols,
// matching slice semantics.
func (t *SymbolTable) Name(sym Sym) string { return t.names[sym] }

// Len is the number of distinct interned strings.
func (t *SymbolTable) Len() int { return len(t.names) }
