package trace

import (
	"fmt"
	"math"
	"net/netip"
	"strconv"
	"time"
)

// Allocation-free field parsing for the TSV scanners. The hot path
// parses numbers and addresses directly from the scanner's byte buffer;
// every fallback calls the strconv/netip parser on a materialized
// string, so accepted inputs, computed values, and error text are
// exactly those of the historical strings.Split-based parser.

// pow10 holds the exactly-representable powers of ten (10^0..10^22).
var pow10 = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// fastFloat parses a plain decimal [+-]?ddd(.ddd)? with at least one
// digit. When it reports ok it returns the bit-identical result of
// strconv.ParseFloat: the mantissa (< 2^53) and the power of ten
// (<= 10^22) are both exact in float64, so the single rounding of the
// division is the correct rounding of the decimal (Clinger's fast
// path). Anything else — exponents, hex floats, underscores, inf/NaN,
// too many digits — reports !ok and the caller falls back.
func fastFloat(b []byte) (f float64, ok bool) {
	i, n := 0, len(b)
	neg := false
	if i < n && (b[i] == '+' || b[i] == '-') {
		neg = b[i] == '-'
		i++
	}
	// m may take one more digit iff m*10+9 cannot exceed 2^53-1.
	const mMax = (1<<53)/10 - 1
	var m uint64
	digits, frac := false, 0
	for i < n && '0' <= b[i] && b[i] <= '9' {
		if m > mMax {
			return 0, false
		}
		m = m*10 + uint64(b[i]-'0')
		digits = true
		i++
	}
	if i < n && b[i] == '.' {
		i++
		for i < n && '0' <= b[i] && b[i] <= '9' {
			if m > mMax {
				return 0, false
			}
			m = m*10 + uint64(b[i]-'0')
			frac++
			digits = true
			i++
		}
	}
	if i != n || !digits || frac >= len(pow10) {
		return 0, false
	}
	f = float64(m) / pow10[frac]
	if neg {
		f = -f
	}
	return f, true
}

// parseSecsBytes is parseSecs over a byte field; it materializes the
// string only on the fallback and error paths.
func parseSecsBytes(b []byte) (time.Duration, error) {
	if f, ok := fastFloat(b); ok {
		// fastFloat never yields NaN/Inf, so only the magnitude check of
		// parseSecs applies.
		if f > maxSecs || f < -maxSecs {
			return 0, fmt.Errorf("trace: timestamp %q out of range", b)
		}
		return time.Duration(math.Round(f * float64(time.Second))), nil
	}
	return parseSecs(string(b))
}

// parseUintBytes is strconv.ParseUint(string(b), 10, bits) without the
// per-call string allocation on well-formed input.
func parseUintBytes(b []byte, bits int) (uint64, error) {
	max := uint64(1)<<bits - 1
	if len(b) == 0 {
		return strconv.ParseUint(string(b), 10, bits)
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' || v > (max-uint64(c-'0'))/10 {
			return strconv.ParseUint(string(b), 10, bits)
		}
		v = v*10 + uint64(c-'0')
	}
	return v, nil
}

// parseIntBytes is strconv.ParseInt(string(b), 10, 64) without the
// per-call string allocation on well-formed input.
func parseIntBytes(b []byte) (int64, error) {
	i, n := 0, len(b)
	neg := false
	if i < n && (b[i] == '+' || b[i] == '-') {
		neg = b[i] == '-'
		i++
	}
	if i == n {
		return strconv.ParseInt(string(b), 10, 64)
	}
	var v uint64
	cutoff := uint64(1) << 63 // |math.MinInt64|; the positive bound is checked below
	for ; i < n; i++ {
		c := b[i]
		if c < '0' || c > '9' || v > (cutoff-uint64(c-'0'))/10 {
			return strconv.ParseInt(string(b), 10, 64)
		}
		v = v*10 + uint64(c-'0')
	}
	if neg {
		return -int64(v), nil // v == 1<<63 is exactly MinInt64
	}
	if v >= cutoff {
		return strconv.ParseInt(string(b), 10, 64)
	}
	return int64(v), nil
}

// maxCachedAddrs bounds the per-scanner address cache against inputs
// with unbounded distinct addresses; past the cap, parsing still works,
// it just stops memoizing.
const maxCachedAddrs = 1 << 16

// addrCache memoizes netip.ParseAddr results so the steady state of a
// scan — a bounded set of clients, resolvers, and server addresses —
// parses every address field without allocating. Errors are never
// cached; the miss path is exactly netip.ParseAddr.
type addrCache map[string]netip.Addr

func (c addrCache) parse(b []byte) (netip.Addr, error) {
	if a, ok := c[string(b)]; ok { // no alloc: map lookup conversion
		return a, nil
	}
	s := string(b)
	a, err := netip.ParseAddr(s)
	if err == nil && len(c) < maxCachedAddrs {
		c[s] = a
	}
	return a, err
}

// splitFields splits line on tabs into dst (reused across calls),
// returning the field slice. Semantics match strings.Split: n tabs
// yield n+1 fields, empty fields included.
func splitFields(line []byte, dst [][]byte) [][]byte {
	dst = dst[:0]
	start := 0
	for i, c := range line {
		if c == '\t' {
			dst = append(dst, line[start:i])
			start = i + 1
		}
	}
	return append(dst, line[start:])
}

// arenaBlock is the allocation unit of answerArena.
const arenaBlock = 4096

// answerArena packs per-record answer slices into shared fixed-size
// blocks: records get contiguous sub-slices, blocks are never
// reallocated (so earlier records stay valid), and the per-record
// backing-array allocation of append-per-answer parsing disappears.
type answerArena struct {
	block []Answer
}

// take copies scratch into the arena and returns the shared-backing
// slice, or nil for empty scratch (preserving the nil Answers of
// answerless records).
func (a *answerArena) take(scratch []Answer) []Answer {
	n := len(scratch)
	if n == 0 {
		return nil
	}
	if cap(a.block)-len(a.block) < n {
		size := arenaBlock
		if n > size {
			size = n
		}
		a.block = make([]Answer, 0, size)
	}
	off := len(a.block)
	a.block = append(a.block, scratch...)
	return a.block[off : off+n : off+n]
}

// parseState is the reusable scratch a scanner threads through
// per-line parsing: field offsets, the answer scratch and arena, the
// address cache, and the name intern table.
type parseState struct {
	fields  [][]byte
	answers []Answer
	arena   answerArena
	addrs   addrCache
	names   *SymbolTable
}

func newParseState() *parseState {
	return &parseState{
		fields: make([][]byte, 0, 16),
		addrs:  make(addrCache),
		names:  NewSymbolTable(),
	}
}
