package trace

import (
	"net/netip"
	"time"
)

// Slice utilities for working with captured windows: time-range cuts,
// per-house extraction, and dataset merging. All return fresh datasets;
// inputs are never mutated.

// FilterTime returns the records active in [from, to): DNS transactions
// whose query was issued in range, connections starting in range.
// Timestamps are NOT re-based; use Rebase for that.
func (ds *Dataset) FilterTime(from, to time.Duration) *Dataset {
	out := &Dataset{}
	for i := range ds.DNS {
		if d := &ds.DNS[i]; d.QueryTS >= from && d.QueryTS < to {
			out.DNS = append(out.DNS, *d)
		}
	}
	for i := range ds.Conns {
		if c := &ds.Conns[i]; c.TS >= from && c.TS < to {
			out.Conns = append(out.Conns, *c)
		}
	}
	return out
}

// FilterHouse returns only the records originated by the given client
// address (one house).
func (ds *Dataset) FilterHouse(client netip.Addr) *Dataset {
	out := &Dataset{}
	for i := range ds.DNS {
		if ds.DNS[i].Client == client {
			out.DNS = append(out.DNS, ds.DNS[i])
		}
	}
	for i := range ds.Conns {
		if ds.Conns[i].Orig == client {
			out.Conns = append(out.Conns, ds.Conns[i])
		}
	}
	return out
}

// Rebase shifts every timestamp by -offset, so a cut window starts at
// zero.
func (ds *Dataset) Rebase(offset time.Duration) *Dataset {
	out := &Dataset{
		DNS:   make([]DNSRecord, len(ds.DNS)),
		Conns: make([]ConnRecord, len(ds.Conns)),
	}
	copy(out.DNS, ds.DNS)
	copy(out.Conns, ds.Conns)
	for i := range out.DNS {
		out.DNS[i].QueryTS -= offset
		out.DNS[i].TS -= offset
	}
	for i := range out.Conns {
		out.Conns[i].TS -= offset
	}
	return out
}

// Merge combines datasets into one time-sorted dataset. Records are
// copied.
func Merge(datasets ...*Dataset) *Dataset {
	out := &Dataset{}
	for _, ds := range datasets {
		out.DNS = append(out.DNS, ds.DNS...)
		out.Conns = append(out.Conns, ds.Conns...)
	}
	out.SortByTime()
	return out
}
