package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"dnscontext/internal/obs"
)

// Streaming ingestion with quarantine. The slice-based readers
// (ReadDNS/ReadConns) abort an entire ingest on the first malformed
// line, which is the right contract for machine-written logs but fatal
// for real-world captures where one corrupt line in millions is
// routine. DNSScanner and ConnScanner yield one record at a time in
// bounded memory and take an ErrorPolicy: strict mode reproduces the
// readers' fail-fast behaviour exactly, quarantine mode diverts
// malformed lines — with their line number and cause — to a quarantine
// sink and keeps going until an error budget trips.

// ErrBudgetExceeded is matched (via errors.Is) by the error a scanner
// or monitor reports when its quarantine budget trips.
var ErrBudgetExceeded = errors.New("error budget exceeded")

// ErrorBudget bounds how much malformed input a quarantining consumer
// tolerates before giving up. The zero value allows no errors at all;
// see UnlimitedBudget for the never-trips budget.
type ErrorBudget struct {
	// MaxErrors is the number of records that may be quarantined before
	// the budget trips. Zero allows none (the first malformed record
	// trips); negative means unlimited.
	MaxErrors int
	// MaxErrorRate trips the budget when quarantined/processed exceeds
	// this fraction. Zero disables the rate check. The rate is checked
	// each time a record is quarantined, but only once RateMinLines
	// records have been seen — otherwise a corrupt head would trip a
	// rate budget the clean tail of the input would have satisfied.
	MaxErrorRate float64
	// RateMinLines is the minimum number of processed records before
	// MaxErrorRate is enforced. Zero means the default (100); negative
	// enforces the rate from the first record.
	RateMinLines int
}

// defaultRateMinLines is the grace period before a rate budget applies.
const defaultRateMinLines = 100

// UnlimitedBudget returns the budget that never trips.
func UnlimitedBudget() ErrorBudget { return ErrorBudget{MaxErrors: -1} }

// Exceeded reports whether quarantining `quarantined` records out of
// `processed` exhausts the budget.
func (b ErrorBudget) Exceeded(quarantined, processed int) bool {
	if b.MaxErrors >= 0 && quarantined > b.MaxErrors {
		return true
	}
	if b.MaxErrorRate > 0 {
		min := b.RateMinLines
		if min == 0 {
			min = defaultRateMinLines
		}
		if processed >= min && float64(quarantined)/float64(processed) > b.MaxErrorRate {
			return true
		}
	}
	return false
}

// Quarantined is one malformed line diverted instead of aborting the
// scan: where it was, what it said, and why it failed to parse.
type Quarantined struct {
	// Line is the 1-based physical line number in the input.
	Line int
	// Text is the raw line.
	Text string
	// Err is the parse failure.
	Err error
}

// ErrorPolicy decides what a scanner does with malformed lines.
type ErrorPolicy struct {
	// Quarantine diverts malformed lines instead of aborting the scan.
	// The zero value (strict) fails on the first malformed line with
	// exactly the error ReadDNS/ReadConns would have returned.
	Quarantine bool
	// Budget bounds quarantining; ignored in strict mode. Note that the
	// zero budget allows no errors — use QuarantineAll or
	// QuarantineBudget to build a policy with intent.
	Budget ErrorBudget
	// Sink, when non-nil, receives each quarantined line as it is
	// diverted and the scanner retains nothing. With a nil Sink the
	// scanner retains quarantined lines for Quarantined().
	Sink func(Quarantined)
}

// Strict returns the fail-fast policy (the zero ErrorPolicy).
func Strict() ErrorPolicy { return ErrorPolicy{} }

// QuarantineAll returns the policy that quarantines every malformed
// line with no budget.
func QuarantineAll() ErrorPolicy {
	return ErrorPolicy{Quarantine: true, Budget: UnlimitedBudget()}
}

// QuarantineBudget returns a quarantining policy tripping after
// maxErrors quarantined records (negative = unlimited) or when the
// error rate exceeds maxRate (0 = no rate check).
func QuarantineBudget(maxErrors int, maxRate float64) ErrorPolicy {
	return ErrorPolicy{Quarantine: true, Budget: ErrorBudget{MaxErrors: maxErrors, MaxErrorRate: maxRate}}
}

// BudgetError is the error a scanner reports when its quarantine
// budget trips. errors.Is(err, ErrBudgetExceeded) matches it;
// errors.Unwrap yields the parse error that tripped it.
type BudgetError struct {
	// Quarantined counts quarantined records including the one that
	// tripped the budget; Lines counts data lines processed.
	Quarantined int
	Lines       int
	// Last is the record whose quarantining tripped the budget.
	Last Quarantined
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("trace: quarantine budget exceeded: %d of %d lines quarantined (line %d: %v)",
		e.Quarantined, e.Lines, e.Last.Line, e.Last.Err)
}

// Unwrap returns the parse error that tripped the budget.
func (e *BudgetError) Unwrap() error { return e.Last.Err }

// Is matches ErrBudgetExceeded.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// ScanStats summarizes a scanner's progress so far.
type ScanStats struct {
	// Lines is the number of data lines processed (records yielded plus
	// records quarantined); comment and blank lines are not counted.
	Lines int
	// Records is the number of well-formed records yielded.
	Records int
	// Quarantined is the number of malformed lines diverted.
	Quarantined int
}

// scanner is the shared core of DNSScanner and ConnScanner: line
// splitting, comment skipping, the error policy, and the optional obs
// mirrors.
type scanner struct {
	sc     *bufio.Scanner
	policy ErrorPolicy
	st     *parseState

	line  int // physical line number of the last line read
	lines int // data lines processed
	nQuar int
	quar  []Quarantined
	err   error
	// parseFailed distinguishes a strict-mode parse abort from an
	// underlying read error, so the slice readers can reproduce their
	// historical return shapes exactly.
	parseFailed bool

	recordsC     *obs.Counter
	quarantinedC *obs.Counter
}

func newScanner(r io.Reader, policy ErrorPolicy) scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	return scanner{sc: sc, policy: policy, st: newParseState()}
}

// Symbols returns the scanner's name intern table: every Record().Query
// string yielded so far is one of its canonical strings. Callers that
// outlive the scan (e.g. the analyzer) can reuse it to map names to
// dense symbols without re-hashing.
func (s *scanner) Symbols() *SymbolTable { return s.st.names }

// observe mirrors the scanner's progress into reg under the given
// stream label. A nil registry is a no-op.
func (s *scanner) observe(reg *obs.Registry, stream string) {
	if reg == nil {
		return
	}
	s.recordsC = reg.CounterVec("dnsctx_trace_records_total",
		"Records yielded by the trace scanners, by stream.", "stream").With(stream)
	s.quarantinedC = reg.CounterVec("dnsctx_trace_quarantined_total",
		"Malformed lines diverted to quarantine, by stream.", "stream").With(stream)
}

// next advances to the next record: it feeds data lines to parse until
// one succeeds, quarantining or aborting on failures per the policy.
// Lines are handed to parse as views into the bufio.Scanner's buffer —
// valid only for the duration of the call — so the per-line string of
// the historical Text() path is never materialized; quarantined lines
// copy the text at the moment of diversion.
func (s *scanner) next(parse func(lineNo int, line []byte) error) bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.line++
		line := s.sc.Bytes()
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		s.lines++
		perr := parse(s.line, line)
		if perr == nil {
			s.recordsC.Inc()
			return true
		}
		if !s.policy.Quarantine {
			s.err = perr
			s.parseFailed = true
			return false
		}
		s.nQuar++
		s.quarantinedC.Inc()
		q := Quarantined{Line: s.line, Text: string(line), Err: perr}
		if s.policy.Sink != nil {
			s.policy.Sink(q)
		} else {
			s.quar = append(s.quar, q)
		}
		if s.policy.Budget.Exceeded(s.nQuar, s.lines) {
			s.err = &BudgetError{Quarantined: s.nQuar, Lines: s.lines, Last: q}
			return false
		}
	}
	s.err = s.sc.Err()
	return false
}

// Err returns the error that stopped the scan: nil at clean EOF, the
// parse error in strict mode, a *BudgetError when the quarantine
// budget tripped, or the underlying read error.
func (s *scanner) Err() error { return s.err }

// Line returns the physical line number of the most recently read line
// (the current record's line after a true Scan).
func (s *scanner) Line() int { return s.line }

// Quarantined returns the malformed lines diverted so far (empty when
// the policy routes them to a Sink).
func (s *scanner) Quarantined() []Quarantined { return s.quar }

// Stats summarizes progress so far.
func (s *scanner) Stats() ScanStats {
	return ScanStats{Lines: s.lines, Records: s.lines - s.nQuar, Quarantined: s.nQuar}
}

// DNSScanner yields DNS transaction records from Bro-style TSV one at
// a time, in bounded memory, under an ErrorPolicy. In strict mode it
// produces exactly the records and errors of ReadDNS.
type DNSScanner struct {
	scanner
	rec DNSRecord
}

// NewDNSScanner returns a scanner over r with the given policy.
func NewDNSScanner(r io.Reader, policy ErrorPolicy) *DNSScanner {
	return &DNSScanner{scanner: newScanner(r, policy)}
}

// Observe mirrors scan progress (records yielded, lines quarantined)
// into reg under the "dns" stream label.
func (s *DNSScanner) Observe(reg *obs.Registry) { s.observe(reg, "dns") }

// Scan advances to the next record, reporting false at end of input or
// error (see Err).
func (s *DNSScanner) Scan() bool {
	return s.next(func(lineNo int, line []byte) error {
		rec, err := parseDNSLineBytes(lineNo, line, s.st)
		if err != nil {
			return err
		}
		s.rec = rec
		return nil
	})
}

// Record returns the record produced by the last successful Scan.
func (s *DNSScanner) Record() DNSRecord { return s.rec }

// ConnScanner yields connection summaries from Bro-style TSV one at a
// time, in bounded memory, under an ErrorPolicy. In strict mode it
// produces exactly the records and errors of ReadConns.
type ConnScanner struct {
	scanner
	rec ConnRecord
}

// NewConnScanner returns a scanner over r with the given policy.
func NewConnScanner(r io.Reader, policy ErrorPolicy) *ConnScanner {
	return &ConnScanner{scanner: newScanner(r, policy)}
}

// Observe mirrors scan progress into reg under the "conn" stream label.
func (s *ConnScanner) Observe(reg *obs.Registry) { s.observe(reg, "conn") }

// Scan advances to the next record, reporting false at end of input or
// error (see Err).
func (s *ConnScanner) Scan() bool {
	return s.next(func(lineNo int, line []byte) error {
		rec, err := parseConnLineBytes(lineNo, line, s.st)
		if err != nil {
			return err
		}
		s.rec = rec
		return nil
	})
}

// Record returns the record produced by the last successful Scan.
func (s *ConnScanner) Record() ConnRecord { return s.rec }
