// Package trace defines the two datasets at the heart of the paper —
// DNS transaction records and connection summaries, in the spirit of Bro's
// dns.log and conn.log — together with Bro-style tab-separated
// serialization so the pipeline stages (generator, monitor, analyzer) can
// run as separate processes.
//
// Timestamps are time.Duration offsets from the start of the observation
// window; Epoch anchors them to absolute time when writing pcap files.
package trace

import (
	"fmt"
	"net/netip"
	"sort"
	"time"
)

// Epoch is the absolute start of the observation window, matching the
// paper's capture start (Feb 6, 2019).
var Epoch = time.Date(2019, time.February, 6, 0, 0, 0, 0, time.UTC)

// Proto is the transport protocol of a connection.
type Proto uint8

// Transport protocols.
const (
	TCP Proto = iota
	UDP
)

// String returns "tcp" or "udp".
func (p Proto) String() string {
	if p == TCP {
		return "tcp"
	}
	return "udp"
}

// ParseProto parses "tcp" or "udp".
func ParseProto(s string) (Proto, error) {
	switch s {
	case "tcp":
		return TCP, nil
	case "udp":
		return UDP, nil
	}
	return 0, fmt.Errorf("trace: unknown proto %q", s)
}

// Answer is one address in a DNS response with its TTL.
type Answer struct {
	Addr netip.Addr
	TTL  time.Duration
}

// DNSRecord summarizes one DNS transaction (query/response pair) as seen
// at the monitoring point.
type DNSRecord struct {
	// QueryTS is when the query passed the monitor; TS is when the
	// response passed it. TS - QueryTS is the client-observed lookup
	// duration the paper analyzes.
	QueryTS time.Duration
	TS      time.Duration
	// Client is the in-network (house) address; Resolver is the server
	// the query was sent to.
	Client   netip.Addr
	Resolver netip.Addr
	ID       uint16
	Query    string
	QType    uint16
	RCode    uint8
	Answers  []Answer
	// Retries counts retransmissions beyond the first attempt (0 in a
	// healthy network, and for records reconstructed by a monitor that
	// pairs only the final query/response exchange).
	Retries uint8
	// TC is true when the UDP response was truncated and the transaction
	// completed over TCP.
	TC bool
}

// Duration is the client-observed lookup time.
func (d *DNSRecord) Duration() time.Duration { return d.TS - d.QueryTS }

// HasAddr reports whether addr appears in the answer section.
func (d *DNSRecord) HasAddr(addr netip.Addr) bool {
	for _, a := range d.Answers {
		if a.Addr == addr {
			return true
		}
	}
	return false
}

// MinTTL is the smallest answer TTL (the effective cache lifetime), or 0
// for answerless responses.
func (d *DNSRecord) MinTTL() time.Duration {
	var min time.Duration
	for i, a := range d.Answers {
		if i == 0 || a.TTL < min {
			min = a.TTL
		}
	}
	return min
}

// ExpiresAt is the virtual time at which the record leaves caches that
// honor the TTL.
func (d *DNSRecord) ExpiresAt() time.Duration { return d.TS + d.MinTTL() }

// ConnRecord summarizes one application connection. For TCP the bounds
// come from SYN/FIN/RST tracking; for UDP a flow ends 60 s after its last
// packet (the paper's Bro configuration).
type ConnRecord struct {
	// TS is the start of the connection (first packet).
	TS       time.Duration
	Duration time.Duration
	Proto    Proto
	// Orig is the in-network originator; Resp is the remote responder.
	Orig     netip.Addr
	OrigPort uint16
	Resp     netip.Addr
	RespPort uint16
	// OrigBytes/RespBytes are payload bytes in each direction.
	OrigBytes int64
	RespBytes int64
}

// TotalBytes is the two-way payload volume.
func (c *ConnRecord) TotalBytes() int64 { return c.OrigBytes + c.RespBytes }

// ThroughputBps returns the connection's two-way throughput in bits per
// second, or 0 for zero-duration connections.
func (c *ConnRecord) ThroughputBps() float64 {
	if c.Duration <= 0 {
		return 0
	}
	return float64(c.TotalBytes()*8) / c.Duration.Seconds()
}

// Dataset bundles the week's two datasets.
type Dataset struct {
	DNS   []DNSRecord
	Conns []ConnRecord
}

// SortByTime orders DNS records by response time and connections by start
// time, the order every analysis pass assumes. Already-ordered slices
// (the common case: the generator emits in time order, and every pass
// after the first sees sorted data) are detected in one linear scan and
// left untouched.
func (ds *Dataset) SortByTime() {
	if !sort.SliceIsSorted(ds.DNS, func(i, j int) bool { return ds.DNS[i].TS < ds.DNS[j].TS }) {
		sort.SliceStable(ds.DNS, func(i, j int) bool { return ds.DNS[i].TS < ds.DNS[j].TS })
	}
	if !sort.SliceIsSorted(ds.Conns, func(i, j int) bool { return ds.Conns[i].TS < ds.Conns[j].TS }) {
		sort.SliceStable(ds.Conns, func(i, j int) bool { return ds.Conns[i].TS < ds.Conns[j].TS })
	}
}

// CompactAnswers repacks every record's Answers into one shared backing
// slice (struct-of-arrays layout): the hundreds of thousands of tiny
// per-record backing arrays a generator or mutating pipeline leaves
// behind collapse into a handful of large blocks, and answer scans in
// the pairing index walk contiguous memory. Records with no answers
// keep a nil slice. Values are unchanged; records must not share or
// alias their Answers backing with the caller afterwards.
func (ds *Dataset) CompactAnswers() {
	total := 0
	for i := range ds.DNS {
		total += len(ds.DNS[i].Answers)
	}
	if total == 0 {
		return
	}
	backing := make([]Answer, 0, total)
	for i := range ds.DNS {
		a := ds.DNS[i].Answers
		if len(a) == 0 {
			continue
		}
		off := len(backing)
		backing = append(backing, a...)
		ds.DNS[i].Answers = backing[off : off+len(a) : off+len(a)]
	}
}

// HouseOf maps an in-network client address to its house index. The
// generator assigns each house the /32 address 10.1.H/16-style laid out as
// 10.1.hi.lo; addresses outside 10.0.0.0/8 return -1.
func HouseOf(addr netip.Addr) int {
	if !addr.Is4() {
		return -1
	}
	b := addr.As4()
	if b[0] != 10 {
		return -1
	}
	return int(b[2])*256 + int(b[3])
}

// HouseAddr is the inverse of HouseOf.
func HouseAddr(house int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 1, byte(house / 256), byte(house % 256)})
}
