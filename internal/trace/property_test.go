package trace

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// arbitraryDNS builds a structurally valid DNS record from fuzz inputs.
func arbitraryDNS(qts, dur uint32, idv uint16, qt uint16, nAns uint8) DNSRecord {
	d := DNSRecord{
		QueryTS:  time.Duration(qts%86400) * time.Second,
		Client:   netip.AddrFrom4([4]byte{10, 1, byte(idv), byte(idv >> 8)}),
		Resolver: netip.AddrFrom4([4]byte{8, 8, 8, 8}),
		ID:       idv,
		Query:    "q.example.com",
		QType:    qt,
		RCode:    uint8(qt % 6),
	}
	d.TS = d.QueryTS + time.Duration(dur%5000)*time.Millisecond
	for i := 0; i < int(nAns%4); i++ {
		d.Answers = append(d.Answers, Answer{
			Addr: netip.AddrFrom4([4]byte{203, 0, byte(i), byte(idv)}),
			TTL:  time.Duration(int(dur)%3600+1) * time.Second,
		})
	}
	return d
}

// Property: arbitrary well-formed DNS records survive the TSV round trip
// exactly.
func TestDNSTSVRoundTripProperty(t *testing.T) {
	f := func(qts, dur uint32, idv uint16, qt uint16, nAns uint8) bool {
		want := []DNSRecord{arbitraryDNS(qts, dur, idv, qt, nAns)}
		var buf bytes.Buffer
		if err := WriteDNS(&buf, want); err != nil {
			return false
		}
		got, err := ReadDNS(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary connection records survive the TSV round trip.
func TestConnTSVRoundTripProperty(t *testing.T) {
	f := func(ts, dur uint32, op, rp uint16, ob, rb int32, udp bool) bool {
		proto := TCP
		if udp {
			proto = UDP
		}
		want := []ConnRecord{{
			TS:        time.Duration(ts%86400) * time.Second,
			Duration:  time.Duration(dur%3600) * time.Millisecond,
			Proto:     proto,
			Orig:      netip.AddrFrom4([4]byte{10, 1, 0, 1}),
			OrigPort:  op,
			Resp:      netip.AddrFrom4([4]byte{203, 0, 2, 1}),
			RespPort:  rp,
			OrigBytes: int64(ob & 0x7FFFFFFF),
			RespBytes: int64(rb & 0x7FFFFFFF),
		}}
		var buf bytes.Buffer
		if err := WriteConns(&buf, want); err != nil {
			return false
		}
		got, err := ReadConns(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ExpiresAt is monotone in TTL and never precedes TS.
func TestExpiresAtProperty(t *testing.T) {
	f := func(qts, dur uint32, idv uint16, qt uint16, nAns uint8) bool {
		d := arbitraryDNS(qts, dur, idv, qt, nAns)
		return d.ExpiresAt() >= d.TS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
