package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Source is a stream of the two trace datasets. It is the input side of
// the out-of-core analysis path: where the in-memory pipeline demands a
// fully resident *Dataset, a Source yields one record at a time, so the
// analyzer can run in bounded memory over traces far larger than RAM.
//
// The contract every implementation must honor:
//
//   - StreamDNS yields DNS records in nondecreasing response-time (TS)
//     order; StreamConns yields connection summaries in nondecreasing
//     start-time order. This matches the order Dataset.SortByTime
//     establishes, which every analysis pass assumes. The analyzer
//     verifies the order and fails fast on violations rather than
//     silently misclassifying.
//   - The record pointer passed to yield is only valid for the duration
//     of the call; consumers copy what they keep.
//   - A Source may be one-shot (a ScannerSource consumes its readers).
//     The analyzer scans each stream exactly once, DNS first.
//
// Implementations in this package: DatasetSource (an in-memory Dataset),
// ScannerSource (a streaming TSV reader pair), and DirSource (a
// directory of time-partitioned trace files).
type Source interface {
	// StreamDNS invokes yield for every DNS record, in nondecreasing TS
	// order. A non-nil error from yield aborts the stream and is
	// returned verbatim.
	StreamDNS(yield func(*DNSRecord) error) error
	// StreamConns is StreamDNS for connection summaries.
	StreamConns(yield func(*ConnRecord) error) error
}

// DatasetSource adapts an in-memory Dataset to the Source interface.
// The dataset is time-sorted in place on first use, exactly as the
// in-memory analysis path would.
type DatasetSource struct {
	DS *Dataset
}

// NewDatasetSource returns a Source over ds.
func NewDatasetSource(ds *Dataset) *DatasetSource { return &DatasetSource{DS: ds} }

// StreamDNS implements Source.
func (s *DatasetSource) StreamDNS(yield func(*DNSRecord) error) error {
	s.DS.SortByTime() // early-outs when already sorted
	for i := range s.DS.DNS {
		if err := yield(&s.DS.DNS[i]); err != nil {
			return err
		}
	}
	return nil
}

// StreamConns implements Source.
func (s *DatasetSource) StreamConns(yield func(*ConnRecord) error) error {
	s.DS.SortByTime()
	for i := range s.DS.Conns {
		if err := yield(&s.DS.Conns[i]); err != nil {
			return err
		}
	}
	return nil
}

// ScannerSource streams the two Bro-style TSV logs through the
// quarantining scanners. It is one-shot: the readers are consumed by
// the first scan. The ErrorPolicy applies to both streams.
type ScannerSource struct {
	dns     io.Reader
	conns   io.Reader
	policy  ErrorPolicy
	workers int
}

// NewScannerSource returns a Source reading DNS records from dns and
// connection summaries from conns under the given error policy. The
// caller retains ownership of the readers (and closes any files).
func NewScannerSource(dns, conns io.Reader, policy ErrorPolicy) *ScannerSource {
	return &ScannerSource{dns: dns, conns: conns, policy: policy}
}

// SetIngestWorkers selects how many goroutines parse the TSV streams.
// Values above one enable the chunked parallel scan (see chunked.go);
// zero or one keeps the serial scanners. Either way the record
// sequence, quarantine decisions, budget trip points, and errors are
// bit-identical — only the wall clock moves.
func (s *ScannerSource) SetIngestWorkers(n int) { s.workers = n }

// StreamDNS implements Source.
func (s *ScannerSource) StreamDNS(yield func(*DNSRecord) error) error {
	if s.workers > 1 {
		return scanChunkedDNS(s.dns, s.workers, s.policy, yield)
	}
	sc := NewDNSScanner(s.dns, s.policy)
	for sc.Scan() {
		rec := sc.Record()
		if err := yield(&rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

// StreamConns implements Source.
func (s *ScannerSource) StreamConns(yield func(*ConnRecord) error) error {
	if s.workers > 1 {
		return scanChunkedConns(s.conns, s.workers, s.policy, yield)
	}
	sc := NewConnScanner(s.conns, s.policy)
	for sc.Scan() {
		rec := sc.Record()
		if err := yield(&rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

// DirSource streams a directory of time-partitioned trace files: the
// shape a long capture naturally lands in (one file pair per hour or
// day). Files ending in ".dns.tsv" or ".dns.log" form the DNS stream
// and files ending in ".conn.tsv" or ".conn.log" form the connection
// stream; each stream's files are concatenated in lexicographic name
// order, so naming partitions with a sortable timestamp or sequence
// prefix (2019-02-06T00.dns.tsv, part-000.conn.tsv, ...) yields a
// correctly ordered stream. Unlike ScannerSource, a DirSource is
// re-scannable: it opens and closes the files itself on every pass.
type DirSource struct {
	dir     string
	policy  ErrorPolicy
	workers int
}

// NewDirSource returns a Source over the partitioned trace files in dir.
func NewDirSource(dir string, policy ErrorPolicy) *DirSource {
	return &DirSource{dir: dir, policy: policy}
}

// SetIngestWorkers selects how many goroutines parse each partition
// file; see ScannerSource.SetIngestWorkers. Files are still consumed
// one at a time in name order, so the concatenated stream is unchanged.
func (s *DirSource) SetIngestWorkers(n int) { s.workers = n }

// partitionFiles lists dir's files carrying one of the given suffixes,
// sorted by name.
func (s *DirSource) partitionFiles(suffixes ...string) ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		for _, suf := range suffixes {
			if strings.HasSuffix(e.Name(), suf) {
				files = append(files, filepath.Join(s.dir, e.Name()))
				break
			}
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("trace: no %s partitions in %s", strings.TrimPrefix(suffixes[0], "."), s.dir)
	}
	return files, nil
}

// StreamDNS implements Source.
func (s *DirSource) StreamDNS(yield func(*DNSRecord) error) error {
	files, err := s.partitionFiles(".dns.tsv", ".dns.log")
	if err != nil {
		return err
	}
	for _, path := range files {
		if err := s.streamFile(path, func(f *os.File) error {
			sub := ScannerSource{dns: f, policy: s.policy, workers: s.workers}
			return sub.StreamDNS(yield)
		}); err != nil {
			return err
		}
	}
	return nil
}

// StreamConns implements Source.
func (s *DirSource) StreamConns(yield func(*ConnRecord) error) error {
	files, err := s.partitionFiles(".conn.tsv", ".conn.log")
	if err != nil {
		return err
	}
	for _, path := range files {
		if err := s.streamFile(path, func(f *os.File) error {
			sub := ScannerSource{conns: f, policy: s.policy, workers: s.workers}
			return sub.StreamConns(yield)
		}); err != nil {
			return err
		}
	}
	return nil
}

// streamFile opens path, hands it to scan, and annotates any error with
// the file name, since a multi-file stream would otherwise report bare
// line numbers.
func (s *DirSource) streamFile(path string, scan func(*os.File) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := scan(f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
