package trace

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleDNS() []DNSRecord {
	return []DNSRecord{
		{
			QueryTS:  1500 * time.Millisecond,
			TS:       1512 * time.Millisecond,
			Client:   netip.MustParseAddr("10.1.0.3"),
			Resolver: netip.MustParseAddr("192.0.2.53"),
			ID:       4242,
			Query:    "www.site00001.com",
			QType:    1,
			RCode:    0,
			Answers: []Answer{
				{Addr: netip.MustParseAddr("203.0.0.1"), TTL: 300 * time.Second},
				{Addr: netip.MustParseAddr("203.0.0.2"), TTL: 60 * time.Second},
			},
		},
		{
			QueryTS:  2 * time.Second,
			TS:       2*time.Second + 80*time.Millisecond,
			Client:   netip.MustParseAddr("10.1.0.7"),
			Resolver: netip.MustParseAddr("8.8.8.8"),
			ID:       1,
			Query:    "nx.example.net",
			QType:    28,
			RCode:    3,
		},
	}
}

func sampleConns() []ConnRecord {
	return []ConnRecord{
		{
			TS: 1513 * time.Millisecond, Duration: 2 * time.Second, Proto: TCP,
			Orig: netip.MustParseAddr("10.1.0.3"), OrigPort: 50123,
			Resp: netip.MustParseAddr("203.0.0.1"), RespPort: 443,
			OrigBytes: 900, RespBytes: 54321,
		},
		{
			TS: 5 * time.Second, Duration: 0, Proto: UDP,
			Orig: netip.MustParseAddr("10.1.0.7"), OrigPort: 40000,
			Resp: netip.MustParseAddr("198.51.100.1"), RespPort: 123,
			OrigBytes: 48, RespBytes: 0,
		},
	}
}

func TestDNSRecordHelpers(t *testing.T) {
	d := sampleDNS()[0]
	if d.Duration() != 12*time.Millisecond {
		t.Fatalf("duration %v", d.Duration())
	}
	if !d.HasAddr(netip.MustParseAddr("203.0.0.2")) || d.HasAddr(netip.MustParseAddr("203.0.0.9")) {
		t.Fatal("HasAddr wrong")
	}
	if d.MinTTL() != 60*time.Second {
		t.Fatalf("MinTTL %v", d.MinTTL())
	}
	if d.ExpiresAt() != d.TS+60*time.Second {
		t.Fatalf("ExpiresAt %v", d.ExpiresAt())
	}
	empty := sampleDNS()[1]
	if empty.MinTTL() != 0 {
		t.Fatalf("answerless MinTTL %v", empty.MinTTL())
	}
}

func TestConnRecordHelpers(t *testing.T) {
	c := sampleConns()[0]
	if c.TotalBytes() != 55221 {
		t.Fatalf("TotalBytes %d", c.TotalBytes())
	}
	wantBps := float64(55221*8) / 2.0
	if got := c.ThroughputBps(); got != wantBps {
		t.Fatalf("throughput %g, want %g", got, wantBps)
	}
	zero := sampleConns()[1]
	if zero.ThroughputBps() != 0 {
		t.Fatal("zero-duration throughput not 0")
	}
}

func TestProtoRoundTrip(t *testing.T) {
	for _, p := range []Proto{TCP, UDP} {
		got, err := ParseProto(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseProto(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseProto("sctp"); err == nil {
		t.Fatal("unknown proto accepted")
	}
}

func TestHouseAddrRoundTrip(t *testing.T) {
	for _, h := range []int{0, 1, 99, 255, 256, 1000} {
		if got := HouseOf(HouseAddr(h)); got != h {
			t.Fatalf("HouseOf(HouseAddr(%d)) = %d", h, got)
		}
	}
	if HouseOf(netip.MustParseAddr("192.0.2.1")) != -1 {
		t.Fatal("external addr mapped to a house")
	}
	if HouseOf(netip.MustParseAddr("2001:db8::1")) != -1 {
		t.Fatal("v6 addr mapped to a house")
	}
}

func TestDatasetSortByTime(t *testing.T) {
	ds := Dataset{DNS: sampleDNS(), Conns: sampleConns()}
	// Reverse both.
	ds.DNS[0], ds.DNS[1] = ds.DNS[1], ds.DNS[0]
	ds.Conns[0], ds.Conns[1] = ds.Conns[1], ds.Conns[0]
	ds.SortByTime()
	if ds.DNS[0].TS > ds.DNS[1].TS || ds.Conns[0].TS > ds.Conns[1].TS {
		t.Fatal("not sorted")
	}
}

func TestDNSTSVRoundTrip(t *testing.T) {
	want := sampleDNS()
	var buf bytes.Buffer
	if err := WriteDNS(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestConnTSVRoundTrip(t *testing.T) {
	want := sampleConns()
	var buf bytes.Buffer
	if err := WriteConns(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConns(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestReadDNSErrors(t *testing.T) {
	cases := map[string]string{
		"field count":    "a\tb\tc\n",
		"bad ts":         "x\t1\t10.1.0.1\t8.8.8.8\t1\tq\t1\t0\t-\n",
		"bad client":     "1\t1\tnope\t8.8.8.8\t1\tq\t1\t0\t-\n",
		"bad answer":     "1\t1\t10.1.0.1\t8.8.8.8\t1\tq\t1\t0\t203.0.0.1\n",
		"bad answer ttl": "1\t1\t10.1.0.1\t8.8.8.8\t1\tq\t1\t0\t203.0.0.1/x\n",
		"bad id":         "1\t1\t10.1.0.1\t8.8.8.8\t99999999\tq\t1\t0\t-\n",
	}
	for name, in := range cases {
		if _, err := ReadDNS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestReadConnsErrors(t *testing.T) {
	cases := map[string]string{
		"field count": "1\t2\n",
		"bad proto":   "1\t1\tsctp\t10.1.0.1\t1\t203.0.0.1\t443\t0\t0\n",
		"bad port":    "1\t1\ttcp\t10.1.0.1\t999999\t203.0.0.1\t443\t0\t0\n",
		"bad bytes":   "1\t1\ttcp\t10.1.0.1\t1\t203.0.0.1\t443\tx\t0\n",
	}
	for name, in := range cases {
		if _, err := ReadConns(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\n#fields\twhatever\n"
	recs, err := ReadConns(strings.NewReader(in))
	if err != nil || len(recs) != 0 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
}
