package trace

// Chunked-ingest parity and edge cases (ISSUE 10). The chunked scan's
// contract is bit-identical behavior to the serial scanners at every
// worker count and chunk size: same records in the same order, same
// quarantine decisions with the same line numbers, same budget trip
// points, same errors. These tests drive the internal entry points with
// tiny chunk sizes so splits land inside and between records.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"
)

// chunkTestDNS builds n parseable DNS records with a mix of repeated
// and distinct query names (so symbol re-canonicalization is exercised)
// and renders them as TSV.
func chunkTestDNS(t *testing.T, n int) (string, []DNSRecord) {
	t.Helper()
	recs := make([]DNSRecord, n)
	for i := range recs {
		recs[i] = DNSRecord{
			QueryTS:  time.Duration(i) * time.Millisecond,
			TS:       time.Duration(i)*time.Millisecond + 3*time.Millisecond,
			Client:   netip.AddrFrom4([4]byte{10, 0, byte(i % 50), 2}),
			Resolver: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
			ID:       uint16(i),
			Query:    fmt.Sprintf("host-%d.example.com", i%257),
			QType:    1,
			Answers: []Answer{
				{Addr: netip.AddrFrom4([4]byte{93, 184, byte(i % 200), 34}), TTL: 300 * time.Second},
				{Addr: netip.AddrFrom4([4]byte{93, 185, byte(i % 100), 7}), TTL: 60 * time.Second},
			},
		}
	}
	var buf bytes.Buffer
	if err := WriteDNS(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.String(), recs
}

// collectDNSSerial runs the serial scanner and returns its records,
// quarantines, and terminal error.
func collectDNSSerial(input string, policy ErrorPolicy) ([]DNSRecord, []Quarantined, error) {
	var quar []Quarantined
	if policy.Quarantine && policy.Sink == nil {
		policy.Sink = func(q Quarantined) { quar = append(quar, q) }
	}
	sc := NewDNSScanner(strings.NewReader(input), policy)
	var recs []DNSRecord
	for sc.Scan() {
		recs = append(recs, sc.Record())
	}
	return recs, quar, sc.Err()
}

// collectDNSChunked runs the chunked scanner at the given worker count
// and chunk size.
func collectDNSChunked(input string, workers, chunkBytes int, policy ErrorPolicy) ([]DNSRecord, []Quarantined, error) {
	var quar []Quarantined
	if policy.Quarantine && policy.Sink == nil {
		policy.Sink = func(q Quarantined) { quar = append(quar, q) }
	}
	names := NewSymbolTable()
	var recs []DNSRecord
	err := scanChunked(strings.NewReader(input), workers, chunkBytes, policy, parseDNSLineBytes,
		func(d *DNSRecord) { d.Query = names.CanonicalString(d.Query) },
		func(d *DNSRecord) error { recs = append(recs, *d); return nil })
	return recs, quar, err
}

// assertScanParity compares a chunked run against the serial reference:
// records, quarantine line numbers and texts, and error values.
func assertScanParity(t *testing.T, label string,
	wantRecs, gotRecs []DNSRecord, wantQuar, gotQuar []Quarantined, wantErr, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: error mismatch: serial=%v chunked=%v", label, wantErr, gotErr)
	}
	if wantErr != nil && wantErr.Error() != gotErr.Error() {
		t.Fatalf("%s: error text mismatch:\nserial:  %v\nchunked: %v", label, wantErr, gotErr)
	}
	if !reflect.DeepEqual(wantRecs, gotRecs) {
		t.Fatalf("%s: records mismatch (serial %d vs chunked %d)", label, len(wantRecs), len(gotRecs))
	}
	if len(wantQuar) != len(gotQuar) {
		t.Fatalf("%s: quarantine count mismatch: serial %d vs chunked %d", label, len(wantQuar), len(gotQuar))
	}
	for i := range wantQuar {
		if wantQuar[i].Line != gotQuar[i].Line || wantQuar[i].Text != gotQuar[i].Text ||
			wantQuar[i].Err.Error() != gotQuar[i].Err.Error() {
			t.Fatalf("%s: quarantine %d mismatch:\nserial:  %+v\nchunked: %+v", label, i, wantQuar[i], gotQuar[i])
		}
	}
}

// TestChunkedDNSParityAcrossChunkSizes sweeps chunk sizes that land
// splits everywhere — mid-record, exactly on record boundaries, and a
// single chunk covering the whole input — across worker counts.
func TestChunkedDNSParityAcrossChunkSizes(t *testing.T) {
	input, _ := chunkTestDNS(t, 1000)
	wantRecs, wantQuar, wantErr := collectDNSSerial(input, Strict())
	if wantErr != nil {
		t.Fatal(wantErr)
	}
	// One record line for the boundary-exact case.
	lineLen := strings.Index(input[strings.Index(input, "\n")+1:], "\n") + 1
	for _, chunkBytes := range []int{64, lineLen, lineLen + 1, 4096, len(input), len(input) * 2} {
		for _, workers := range []int{1, 2, 8} {
			gotRecs, gotQuar, gotErr := collectDNSChunked(input, workers, chunkBytes, Strict())
			assertScanParity(t, fmt.Sprintf("chunk=%d workers=%d", chunkBytes, workers),
				wantRecs, gotRecs, wantQuar, gotQuar, wantErr, gotErr)
		}
	}
}

// TestChunkedBoundaryAtRecordSplit pins the exact-boundary case: with
// the chunk size equal to one record line (terminator included), every
// chunk holds exactly one record and the carry path never engages; one
// byte less and every record spans a split. Both must be invisible.
func TestChunkedBoundaryAtRecordSplit(t *testing.T) {
	recs := []DNSRecord{{
		QueryTS: time.Second, TS: time.Second + 5*time.Millisecond,
		Client:   netip.MustParseAddr("10.0.0.2"),
		Resolver: netip.MustParseAddr("10.0.0.1"),
		Query:    "a.example.com", QType: 1,
		Answers: []Answer{{Addr: netip.MustParseAddr("93.184.216.34"), TTL: time.Minute}},
	}}
	var buf bytes.Buffer
	if err := WriteDNS(&buf, recs); err != nil {
		t.Fatal(err)
	}
	// Strip the header comment so every line is one record, then repeat.
	body := buf.String()[strings.Index(buf.String(), "\n")+1:]
	input := strings.Repeat(body, 200)
	wantRecs, _, wantErr := collectDNSSerial(input, Strict())
	if wantErr != nil || len(wantRecs) != 200 {
		t.Fatalf("serial: %d recs, err %v", len(wantRecs), wantErr)
	}
	for _, chunkBytes := range []int{len(body), len(body) - 1, len(body) + 1} {
		gotRecs, _, gotErr := collectDNSChunked(input, 4, chunkBytes, Strict())
		assertScanParity(t, fmt.Sprintf("chunk=%d", chunkBytes), wantRecs, gotRecs, nil, nil, wantErr, gotErr)
	}
}

// TestChunkedQuarantineSpanningSplit places a corrupt line so chunk
// splits land inside it: the quarantine must still report the full
// text, the right 1-based line number, and trip the budget exactly
// where the serial scan does.
func TestChunkedQuarantineSpanningSplit(t *testing.T) {
	input, _ := chunkTestDNS(t, 50)
	lines := strings.Split(strings.TrimSuffix(input, "\n"), "\n")
	// A corrupt line much longer than the chunk size, mid-file.
	corrupt := "CORRUPT\t" + strings.Repeat("x", 300)
	lines = append(lines[:20], append([]string{corrupt, corrupt}, lines[20:]...)...)
	in := strings.Join(lines, "\n") + "\n"

	wantRecs, wantQuar, wantErr := collectDNSSerial(in, QuarantineAll())
	if wantErr != nil || len(wantQuar) != 2 {
		t.Fatalf("serial: quar %d, err %v", len(wantQuar), wantErr)
	}
	if wantQuar[0].Line != 21 || wantQuar[0].Text != corrupt {
		t.Fatalf("serial quarantine misplaced: %+v", wantQuar[0])
	}
	for _, chunkBytes := range []int{64, 128, 301} {
		gotRecs, gotQuar, gotErr := collectDNSChunked(in, 4, chunkBytes, QuarantineAll())
		assertScanParity(t, fmt.Sprintf("chunk=%d", chunkBytes),
			wantRecs, gotRecs, wantQuar, gotQuar, wantErr, gotErr)
	}

	// Budget of one: the second corrupt line must trip it with the same
	// BudgetError counters on both paths.
	wantRecs, wantQuar, wantErr = collectDNSSerial(in, QuarantineBudget(1, 0))
	gotRecs, gotQuar, gotErr := collectDNSChunked(in, 4, 96, QuarantineBudget(1, 0))
	assertScanParity(t, "budget", wantRecs, gotRecs, wantQuar, gotQuar, wantErr, gotErr)
	var be *BudgetError
	if !errors.As(gotErr, &be) || be.Quarantined != 2 || !errors.Is(gotErr, ErrBudgetExceeded) {
		t.Fatalf("chunked budget error: %v", gotErr)
	}
}

// TestChunkedStrictAbortParity: in strict mode the chunked scan must
// yield exactly the records before the corrupt line, then return the
// parse error with the serial scanner's text.
func TestChunkedStrictAbortParity(t *testing.T) {
	input, _ := chunkTestDNS(t, 40)
	lines := strings.Split(strings.TrimSuffix(input, "\n"), "\n")
	lines[30] = "not\ta\trecord"
	in := strings.Join(lines, "\n") + "\n"
	wantRecs, _, wantErr := collectDNSSerial(in, Strict())
	if wantErr == nil {
		t.Fatal("serial scan unexpectedly clean")
	}
	gotRecs, _, gotErr := collectDNSChunked(in, 8, 128, Strict())
	assertScanParity(t, "strict", wantRecs, gotRecs, nil, nil, wantErr, gotErr)
}

// TestChunkedSingleChunkDegenerate: input far smaller than one chunk
// with many workers — the whole stream is one chunk, and the scan must
// still complete and match.
func TestChunkedSingleChunkDegenerate(t *testing.T) {
	input, _ := chunkTestDNS(t, 5)
	wantRecs, _, wantErr := collectDNSSerial(input, Strict())
	gotRecs, _, gotErr := collectDNSChunked(input, 16, ingestChunkBytes, Strict())
	assertScanParity(t, "single-chunk", wantRecs, gotRecs, nil, nil, wantErr, gotErr)
	if len(gotRecs) != 5 {
		t.Fatalf("got %d records", len(gotRecs))
	}
}

// TestChunkedCRLFAndUnterminatedTail: CRLF terminators are stripped
// like bufio.ScanLines does, and a final line without a newline is
// still parsed.
func TestChunkedCRLFAndUnterminatedTail(t *testing.T) {
	input, _ := chunkTestDNS(t, 10)
	crlf := strings.ReplaceAll(input, "\n", "\r\n")
	crlf = strings.TrimSuffix(crlf, "\r\n") // unterminated last record
	wantRecs, _, wantErr := collectDNSSerial(crlf, Strict())
	if wantErr != nil || len(wantRecs) != 10 {
		t.Fatalf("serial: %d recs, err %v", len(wantRecs), wantErr)
	}
	gotRecs, _, gotErr := collectDNSChunked(crlf, 4, 100, Strict())
	assertScanParity(t, "crlf", wantRecs, gotRecs, nil, nil, wantErr, gotErr)
}

// TestChunkedTooLongLineFailsLikeBufio: a line that outgrows the serial
// scanners' token cap fails the chunked scan with bufio.ErrTooLong too,
// after yielding the records before it.
func TestChunkedTooLongLineFailsLikeBufio(t *testing.T) {
	input, _ := chunkTestDNS(t, 3)
	in := input + strings.Repeat("y", maxIngestLine+2) + "\n"
	wantRecs, _, wantErr := collectDNSSerial(in, Strict())
	gotRecs, _, gotErr := collectDNSChunked(in, 2, 1<<16, Strict())
	assertScanParity(t, "too-long", wantRecs, gotRecs, nil, nil, wantErr, gotErr)
	if !errors.Is(gotErr, io.EOF) && gotErr == nil {
		t.Fatal("expected an error")
	}
	if len(gotRecs) != 3 {
		t.Fatalf("prefix records lost: %d", len(gotRecs))
	}
}

// TestChunkedConnParity covers the connection stream.
func TestChunkedConnParity(t *testing.T) {
	recs := make([]ConnRecord, 500)
	for i := range recs {
		recs[i] = ConnRecord{
			TS:        time.Duration(i) * time.Millisecond,
			Duration:  2 * time.Second,
			Proto:     TCP,
			Orig:      netip.AddrFrom4([4]byte{10, 0, byte(i % 50), 2}),
			OrigPort:  uint16(40000 + i),
			Resp:      netip.AddrFrom4([4]byte{93, 184, byte(i % 200), 34}),
			RespPort:  443,
			OrigBytes: int64(i) * 10, RespBytes: int64(i) * 100,
		}
	}
	var buf bytes.Buffer
	if err := WriteConns(&buf, recs); err != nil {
		t.Fatal(err)
	}
	input := buf.String()

	sc := NewConnScanner(strings.NewReader(input), Strict())
	var want []ConnRecord
	for sc.Scan() {
		want = append(want, sc.Record())
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	for _, workers := range []int{2, 8} {
		var got []ConnRecord
		err := scanChunked(strings.NewReader(input), workers, 96, Strict(), parseConnLineBytes, nil,
			func(c *ConnRecord) error { got = append(got, *c); return nil })
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: conn records mismatch", workers)
		}
	}
}

// TestScannerSourceIngestWorkers drives the public knob: a
// ScannerSource with parallel ingest must stream exactly the records a
// serial source does, DNS and conns both.
func TestScannerSourceIngestWorkers(t *testing.T) {
	dnsIn, _ := chunkTestDNS(t, 300)
	var connBuf bytes.Buffer
	if err := WriteConns(&connBuf, []ConnRecord{{
		TS: time.Second, Duration: time.Second, Proto: TCP,
		Orig: netip.MustParseAddr("10.0.1.2"), OrigPort: 40000,
		Resp: netip.MustParseAddr("93.184.216.34"), RespPort: 443,
	}}); err != nil {
		t.Fatal(err)
	}

	collect := func(workers int) ([]DNSRecord, []ConnRecord, error) {
		src := NewScannerSource(strings.NewReader(dnsIn), strings.NewReader(connBuf.String()), QuarantineAll())
		src.SetIngestWorkers(workers)
		var ds []DNSRecord
		var cs []ConnRecord
		if err := src.StreamDNS(func(d *DNSRecord) error { ds = append(ds, *d); return nil }); err != nil {
			return nil, nil, err
		}
		if err := src.StreamConns(func(c *ConnRecord) error { cs = append(cs, *c); return nil }); err != nil {
			return nil, nil, err
		}
		return ds, cs, nil
	}
	wantDNS, wantConns, err := collect(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		gotDNS, gotConns, err := collect(w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantDNS, gotDNS) || !reflect.DeepEqual(wantConns, gotConns) {
			t.Fatalf("ingest-workers=%d: stream mismatch", w)
		}
	}
}
