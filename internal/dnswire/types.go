// Package dnswire implements the DNS wire format of RFC 1035 (plus EDNS0
// OPT from RFC 6891): message header, questions, resource records, and
// domain-name compression. It is a from-scratch, stdlib-only codec used by
// the dnscontext simulator to put genuine DNS bytes on the simulated wire
// and by the zeeklite monitor to decode them, mirroring how the paper's
// Bro monitor parsed live traffic.
//
// The decoder is strict: it bounds-checks every read, limits compression-
// pointer chases, and refuses names over 255 octets, so it is safe to feed
// untrusted packet bytes.
package dnswire

import "fmt"

// Type is a DNS RR type (RFC 1035 §3.2.2 and successors).
type Type uint16

// Resource record types supported by the codec.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeANY   Type = 255
)

// String returns the conventional mnemonic for t.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeOPT:
		return "OPT"
	case TypeANY:
		return "ANY"
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class. In practice only IN appears in our traffic.
type Class uint16

// DNS classes.
const (
	ClassIN  Class = 1
	ClassCH  Class = 3
	ClassANY Class = 255
)

// String returns the conventional mnemonic for c.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassCH:
		return "CH"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// Opcode is the DNS operation code.
type Opcode uint8

// DNS opcodes.
const (
	OpcodeQuery  Opcode = 0
	OpcodeIQuery Opcode = 1
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

// String returns the conventional mnemonic for o.
func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeIQuery:
		return "IQUERY"
	case OpcodeStatus:
		return "STATUS"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	}
	return fmt.Sprintf("OPCODE%d", uint8(o))
}

// RCode is the DNS response code.
type RCode uint8

// DNS response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String returns the conventional mnemonic for rc.
func (rc RCode) String() string {
	switch rc {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint8(rc))
}

// Limits from RFC 1035 §2.3.4.
const (
	MaxNameLen  = 255 // total octets in a wire-encoded name
	MaxLabelLen = 63  // octets in one label
	// maxPointerChases bounds compression-pointer loops during decoding.
	maxPointerChases = 64
)
