package dnswire

import (
	"fmt"
	"net/netip"
	"strings"
)

// Header is the fixed 12-octet DNS message header (RFC 1035 §4.1.1), with
// the flag bits broken out.
type Header struct {
	ID                 uint16
	Response           bool // QR
	Opcode             Opcode
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	RCode              RCode
}

// Question is a DNS question (RFC 1035 §4.1.2). Name is in presentation
// format.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// RR is one resource record. Name is presentation format; exactly one of
// the typed data fields is meaningful, selected by Type:
//
//	A     -> Addr (4-byte)
//	AAAA  -> Addr (16-byte)
//	CNAME, NS, PTR -> Target
//	MX    -> Pref, Target
//	TXT   -> Text
//	SOA   -> SOA
//	other -> Raw (opaque RDATA)
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	Addr   netip.Addr
	Target string
	Pref   uint16
	Text   []string
	SOA    *SOAData
	Raw    []byte
}

// SOAData is the RDATA of an SOA record.
type SOAData struct {
	MName, RName                            string
	Serial, Refresh, Retry, Expire, Minimum uint32
}

// String renders the record in zone-file-like form.
func (rr RR) String() string {
	var data string
	switch rr.Type {
	case TypeA, TypeAAAA:
		data = rr.Addr.String()
	case TypeCNAME, TypeNS, TypePTR:
		data = rr.Target
	case TypeMX:
		data = fmt.Sprintf("%d %s", rr.Pref, rr.Target)
	case TypeTXT:
		data = strings.Join(rr.Text, " ")
	case TypeSOA:
		if rr.SOA != nil {
			data = fmt.Sprintf("%s %s %d", rr.SOA.MName, rr.SOA.RName, rr.SOA.Serial)
		}
	default:
		data = fmt.Sprintf("\\# %d", len(rr.Raw))
	}
	return fmt.Sprintf("%s %d %s %s %s", rr.Name, rr.TTL, rr.Class, rr.Type, data)
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard recursive query for (name, type).
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		Header:    Header{ID: id, Opcode: OpcodeQuery, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: t, Class: ClassIN}},
	}
}

// NewResponse builds a response skeleton echoing q's ID and question.
func NewResponse(q *Message, rcode RCode) *Message {
	m := &Message{
		Header: Header{
			ID:               q.Header.ID,
			Response:         true,
			Opcode:           q.Header.Opcode,
			RecursionDesired: q.Header.RecursionDesired,
			RCode:            rcode,
		},
	}
	m.Questions = append(m.Questions, q.Questions...)
	return m
}

// AddAnswerA appends an A or AAAA answer for name with the given TTL.
func (m *Message) AddAnswerA(name string, addr netip.Addr, ttl uint32) {
	t := TypeA
	if addr.Is6() && !addr.Is4In6() {
		t = TypeAAAA
	}
	m.Answers = append(m.Answers, RR{
		Name: name, Type: t, Class: ClassIN, TTL: ttl, Addr: addr,
	})
}

// AddAnswerCNAME appends a CNAME answer.
func (m *Message) AddAnswerCNAME(name, target string, ttl uint32) {
	m.Answers = append(m.Answers, RR{
		Name: name, Type: TypeCNAME, Class: ClassIN, TTL: ttl, Target: target,
	})
}

// AnswerAddrs returns all A/AAAA addresses in the answer section.
func (m *Message) AnswerAddrs() []netip.Addr {
	var out []netip.Addr
	for _, rr := range m.Answers {
		if rr.Type == TypeA || rr.Type == TypeAAAA {
			out = append(out, rr.Addr)
		}
	}
	return out
}

// MinAnswerTTL returns the smallest TTL across answer records, or 0 when
// there are none. Callers use it as the effective cache lifetime of the
// response.
func (m *Message) MinAnswerTTL() uint32 {
	var min uint32
	for i, rr := range m.Answers {
		if i == 0 || rr.TTL < min {
			min = rr.TTL
		}
	}
	return min
}
