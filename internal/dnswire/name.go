package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Errors returned by name encoding and decoding.
var (
	ErrNameTooLong     = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong    = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel      = errors.New("dnswire: empty label inside name")
	ErrTruncated       = errors.New("dnswire: message truncated")
	ErrPointerLoop     = errors.New("dnswire: compression pointer loop")
	ErrBadPointer      = errors.New("dnswire: compression pointer out of range")
	ErrReservedLabel   = errors.New("dnswire: reserved label type")
	ErrTrailingBytes   = errors.New("dnswire: trailing bytes after message")
	ErrTooManyRecords  = errors.New("dnswire: record count exceeds message size")
	ErrRDataOutOfRange = errors.New("dnswire: rdata length out of range")
)

// CanonicalName lower-cases a presentation-format name and strips one
// trailing dot (except for the root name "."). DNS names compare
// case-insensitively, and the analysis pipeline relies on canonical keys.
func CanonicalName(name string) string {
	if name == "." || name == "" {
		return "."
	}
	name = strings.ToLower(name)
	return strings.TrimSuffix(name, ".")
}

// splitLabels converts a presentation name ("www.example.com", optionally
// with a trailing dot) into labels. The root name yields no labels.
func splitLabels(name string) ([]string, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return nil, nil
	}
	labels := strings.Split(name, ".")
	for _, l := range labels {
		if l == "" {
			return nil, ErrEmptyLabel
		}
		if len(l) > MaxLabelLen {
			return nil, fmt.Errorf("%w: %q", ErrLabelTooLong, l)
		}
	}
	return labels, nil
}

// appendName encodes name starting at the current end of msg, using and
// updating the compression table ptrs (suffix -> offset). Compression
// pointers may only reference offsets < 0x4000 per RFC 1035.
func appendName(msg []byte, name string, ptrs map[string]int) ([]byte, error) {
	labels, err := splitLabels(name)
	if err != nil {
		return nil, err
	}
	// Wire length check: each label contributes len+1, plus the final root.
	wire := 1
	for _, l := range labels {
		wire += len(l) + 1
	}
	if wire > MaxNameLen {
		return nil, fmt.Errorf("%w: %q", ErrNameTooLong, name)
	}
	for i := range labels {
		suffix := strings.ToLower(strings.Join(labels[i:], "."))
		if off, ok := ptrs[suffix]; ok {
			return append(msg, 0xC0|byte(off>>8), byte(off)), nil
		}
		if off := len(msg); off < 0x4000 && ptrs != nil {
			ptrs[suffix] = off
		}
		msg = append(msg, byte(len(labels[i])))
		msg = append(msg, labels[i]...)
	}
	return append(msg, 0), nil
}

// decodeName parses a possibly compressed name starting at off in msg.
// It returns the presentation-format name (lower-cased, no trailing dot,
// "." for root) and the offset just past the name in the original stream.
func decodeName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	// next is the offset to resume at after the first compression pointer.
	next := -1
	chases := 0
	total := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncated
		}
		b := msg[off]
		switch {
		case b == 0:
			if next == -1 {
				next = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			return strings.ToLower(name), next, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncated
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if next == -1 {
				next = off + 2
			}
			if ptr >= off {
				// Pointers must point strictly backwards; forward pointers
				// permit loops.
				return "", 0, ErrBadPointer
			}
			chases++
			if chases > maxPointerChases {
				return "", 0, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, ErrReservedLabel
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, ErrTruncated
			}
			total += l + 1
			if total > MaxNameLen {
				return "", 0, ErrNameTooLong
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(msg[off+1 : off+1+l])
			off += 1 + l
		}
	}
}
