package dnswire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestTCPFrameRoundTrip(t *testing.T) {
	msgs := [][]byte{
		{},
		{0xab},
		[]byte("hello, dns"),
		bytes.Repeat([]byte{0x5a}, 512),
		bytes.Repeat([]byte{0x01}, MaxTCPMessage),
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteTCPFrame(&buf, m); err != nil {
			t.Fatalf("WriteTCPFrame(%d bytes): %v", len(m), err)
		}
	}
	for i, want := range msgs {
		got, err := ReadTCPFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: ReadTCPFrame: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	// The stream is now cleanly exhausted: plain io.EOF, not a
	// truncation error.
	if _, err := ReadTCPFrame(&buf); err != io.EOF {
		t.Fatalf("at frame boundary: got %v, want io.EOF", err)
	}
}

func TestTCPFrameTooLarge(t *testing.T) {
	big := make([]byte, MaxTCPMessage+1)
	if _, err := AppendTCPFrame(nil, big); !errors.Is(err, ErrTCPMessageTooLarge) {
		t.Fatalf("AppendTCPFrame: got %v, want ErrTCPMessageTooLarge", err)
	}
	if err := WriteTCPFrame(io.Discard, big); !errors.Is(err, ErrTCPMessageTooLarge) {
		t.Fatalf("WriteTCPFrame: got %v, want ErrTCPMessageTooLarge", err)
	}
}

// TestTCPFrameTruncationEveryCutPoint feeds ReadTCPFrame a wire image
// cut at every possible byte offset. A cut at a frame boundary must
// read back the complete frames then end with clean io.EOF; a cut
// mid-prefix or mid-body must surface io.ErrUnexpectedEOF, never a
// short frame passed off as complete.
func TestTCPFrameTruncationEveryCutPoint(t *testing.T) {
	msgs := [][]byte{
		[]byte("first"),
		{},
		[]byte("second-frame-payload"),
	}
	var wire []byte
	boundaries := map[int]bool{0: true}
	for _, m := range msgs {
		var err error
		wire, err = AppendTCPFrame(wire, m)
		if err != nil {
			t.Fatal(err)
		}
		boundaries[len(wire)] = true
	}
	for cut := 0; cut <= len(wire); cut++ {
		r := bytes.NewReader(wire[:cut])
		var frames int
		var err error
		for {
			var frame []byte
			frame, err = ReadTCPFrame(r)
			if err != nil {
				break
			}
			if !bytes.Equal(frame, msgs[frames]) {
				t.Fatalf("cut %d: frame %d corrupted", cut, frames)
			}
			frames++
		}
		if boundaries[cut] {
			if err != io.EOF {
				t.Fatalf("cut %d (boundary): got %v, want io.EOF", cut, err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d (mid-frame): got %v, want io.ErrUnexpectedEOF", cut, err)
		}
		if err == io.EOF {
			t.Fatalf("cut %d: truncation reported as clean EOF", cut)
		}
	}
}
