package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// DNS-over-TCP framing (RFC 1035 §4.2.2, profiled by RFC 7766): each
// message is preceded by a two-octet big-endian length. The codec here is
// shared by the dnsserver TCP listener, its TCP client mode, and the
// framing property tests.

// MaxTCPMessage is the largest frameable message: the length prefix is
// 16 bits.
const MaxTCPMessage = 1<<16 - 1

// ErrTCPMessageTooLarge is returned when a message exceeds the 16-bit
// length prefix.
var ErrTCPMessageTooLarge = errors.New("dnswire: message exceeds 64 KiB TCP frame limit")

// AppendTCPFrame appends msg's two-byte length prefix and msg to dst,
// returning the extended slice.
func AppendTCPFrame(dst, msg []byte) ([]byte, error) {
	if len(msg) > MaxTCPMessage {
		return dst, ErrTCPMessageTooLarge
	}
	var pfx [2]byte
	binary.BigEndian.PutUint16(pfx[:], uint16(len(msg)))
	return append(append(dst, pfx[:]...), msg...), nil
}

// WriteTCPFrame writes one length-prefixed message to w in a single Write
// call (RFC 7766 §8 asks senders not to split the prefix from the
// payload, to spare the receiver a coalescing pass).
func WriteTCPFrame(w io.Writer, msg []byte) error {
	buf, err := AppendTCPFrame(make([]byte, 0, 2+len(msg)), msg)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadTCPFrame reads one length-prefixed message from r. io.EOF is
// returned untouched on a clean end-of-stream (no prefix bytes at all);
// a stream that ends mid-prefix or mid-message returns
// io.ErrUnexpectedEOF, so callers can tell an orderly close from a
// truncated one.
func ReadTCPFrame(r io.Reader) ([]byte, error) {
	var pfx [2]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(pfx[:]))
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("dnswire: short TCP frame (want %d bytes): %w", n, err)
	}
	return msg, nil
}
