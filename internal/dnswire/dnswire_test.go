package dnswire

import (
	"errors"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustEncode(t *testing.T, m *Message) []byte {
	t.Helper()
	b, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return b
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "www.example.com", TypeA)
	b := mustEncode(t, q)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Header.ID != 0x1234 || got.Header.Response || !got.Header.RecursionDesired {
		t.Fatalf("header mismatch: %+v", got.Header)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "www.example.com" ||
		got.Questions[0].Type != TypeA || got.Questions[0].Class != ClassIN {
		t.Fatalf("question mismatch: %+v", got.Questions)
	}
}

func TestResponseRoundTripAllRRTypes(t *testing.T) {
	q := NewQuery(7, "host.example.org", TypeANY)
	resp := NewResponse(q, RCodeNoError)
	resp.Header.Authoritative = true
	resp.Header.RecursionAvailable = true
	resp.AddAnswerA("host.example.org", netip.MustParseAddr("192.0.2.10"), 300)
	resp.AddAnswerA("host.example.org", netip.MustParseAddr("2001:db8::1"), 600)
	resp.AddAnswerCNAME("alias.example.org", "host.example.org", 120)
	resp.Answers = append(resp.Answers,
		RR{Name: "example.org", Type: TypeNS, Class: ClassIN, TTL: 3600, Target: "ns1.example.org"},
		RR{Name: "example.org", Type: TypeMX, Class: ClassIN, TTL: 3600, Pref: 10, Target: "mail.example.org"},
		RR{Name: "example.org", Type: TypeTXT, Class: ClassIN, TTL: 60, Text: []string{"v=spf1 -all", "second"}},
		RR{Name: "10.2.0.192.in-addr.arpa", Type: TypePTR, Class: ClassIN, TTL: 900, Target: "host.example.org"},
	)
	resp.Authority = append(resp.Authority, RR{
		Name: "example.org", Type: TypeSOA, Class: ClassIN, TTL: 1800,
		SOA: &SOAData{MName: "ns1.example.org", RName: "admin.example.org",
			Serial: 2020102701, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300},
	})
	resp.Additional = append(resp.Additional, RR{
		Name: ".", Type: TypeOPT, Class: Class(4096), Raw: []byte{1, 2, 3},
	})

	b := mustEncode(t, resp)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !got.Header.Response || !got.Header.Authoritative || !got.Header.RecursionAvailable {
		t.Fatalf("header flags lost: %+v", got.Header)
	}
	if len(got.Answers) != 7 || len(got.Authority) != 1 || len(got.Additional) != 1 {
		t.Fatalf("section counts: %d/%d/%d", len(got.Answers), len(got.Authority), len(got.Additional))
	}
	if got.Answers[0].Addr != netip.MustParseAddr("192.0.2.10") {
		t.Errorf("A addr = %v", got.Answers[0].Addr)
	}
	if got.Answers[1].Type != TypeAAAA || got.Answers[1].Addr != netip.MustParseAddr("2001:db8::1") {
		t.Errorf("AAAA = %+v", got.Answers[1])
	}
	if got.Answers[2].Target != "host.example.org" {
		t.Errorf("CNAME target = %q", got.Answers[2].Target)
	}
	if got.Answers[4].Pref != 10 || got.Answers[4].Target != "mail.example.org" {
		t.Errorf("MX = %+v", got.Answers[4])
	}
	if !reflect.DeepEqual(got.Answers[5].Text, []string{"v=spf1 -all", "second"}) {
		t.Errorf("TXT = %v", got.Answers[5].Text)
	}
	if got.Answers[6].Target != "host.example.org" {
		t.Errorf("PTR = %+v", got.Answers[6])
	}
	soa := got.Authority[0].SOA
	if soa == nil || soa.MName != "ns1.example.org" || soa.Serial != 2020102701 || soa.Minimum != 300 {
		t.Errorf("SOA = %+v", soa)
	}
	if !reflect.DeepEqual(got.Additional[0].Raw, []byte{1, 2, 3}) {
		t.Errorf("OPT raw = %v", got.Additional[0].Raw)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := NewQuery(1, "a.really.long.subdomain.example.com", TypeA)
	resp := NewResponse(m, RCodeNoError)
	for i := 0; i < 5; i++ {
		resp.AddAnswerA("a.really.long.subdomain.example.com", netip.MustParseAddr("192.0.2.1"), 60)
	}
	b := mustEncode(t, resp)
	// Uncompressed, each answer would repeat the 37-octet name. With
	// compression every answer name is a 2-byte pointer.
	if len(b) > 150 {
		t.Fatalf("compressed message unexpectedly large: %d bytes", len(b))
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range got.Answers {
		if rr.Name != "a.really.long.subdomain.example.com" {
			t.Fatalf("decompressed name = %q", rr.Name)
		}
	}
}

func TestRootNameRoundTrip(t *testing.T) {
	m := NewQuery(2, ".", TypeNS)
	got, err := Decode(mustEncode(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "." {
		t.Fatalf("root name = %q", got.Questions[0].Name)
	}
}

func TestNameCaseInsensitiveDecode(t *testing.T) {
	m := NewQuery(3, "WwW.ExAmPlE.CoM", TypeA)
	got, err := Decode(mustEncode(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "www.example.com" {
		t.Fatalf("name not canonicalized: %q", got.Questions[0].Name)
	}
}

func TestEncodeErrors(t *testing.T) {
	longLabel := strings.Repeat("x", 64)
	cases := []struct {
		name string
		m    *Message
	}{
		{"label too long", NewQuery(1, longLabel+".com", TypeA)},
		{"name too long", NewQuery(1, strings.Repeat("abcdefgh.", 32)+"com", TypeA)},
		{"empty label", NewQuery(1, "a..b", TypeA)},
		{"A with v6", &Message{Answers: []RR{{Name: "x.com", Type: TypeA, Addr: netip.MustParseAddr("2001:db8::1")}}}},
		{"AAAA with v4", &Message{Answers: []RR{{Name: "x.com", Type: TypeAAAA, Addr: netip.MustParseAddr("192.0.2.1")}}}},
		{"SOA without data", &Message{Answers: []RR{{Name: "x.com", Type: TypeSOA}}}},
		{"TXT too long", &Message{Answers: []RR{{Name: "x.com", Type: TypeTXT, Text: []string{strings.Repeat("y", 256)}}}}},
	}
	for _, c := range cases {
		if _, err := c.m.Encode(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDecodeTruncations(t *testing.T) {
	full := mustEncode(t, func() *Message {
		q := NewQuery(9, "www.example.com", TypeA)
		r := NewResponse(q, RCodeNoError)
		r.AddAnswerA("www.example.com", netip.MustParseAddr("192.0.2.1"), 60)
		return r
	}())
	for n := 0; n < len(full); n++ {
		if _, err := Decode(full[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	if _, err := Decode(full); err != nil {
		t.Fatalf("full message failed: %v", err)
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	b := append(mustEncode(t, NewQuery(1, "x.com", TypeA)), 0xde, 0xad)
	if _, err := Decode(b); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("err = %v, want ErrTrailingBytes", err)
	}
	m, n, err := DecodePrefix(b)
	if err != nil || n != len(b)-2 || m.Questions[0].Name != "x.com" {
		t.Fatalf("DecodePrefix: m=%v n=%d err=%v", m, n, err)
	}
}

func TestDecodePointerLoopRejected(t *testing.T) {
	// Header + a name that is a pointer to itself.
	b := make([]byte, 12, 14)
	b[4], b[5] = 0, 1 // QDCOUNT=1
	b = append(b, 0xC0, 12)
	if _, err := Decode(b); err == nil {
		t.Fatal("self-pointer decoded successfully")
	}
}

func TestDecodeForwardPointerRejected(t *testing.T) {
	b := make([]byte, 12)
	b[4], b[5] = 0, 1
	// Name = pointer to offset 100 (forward / out of decoded region).
	b = append(b, 0xC0, 100)
	b = append(b, make([]byte, 100)...)
	if _, err := Decode(b); err == nil {
		t.Fatal("forward pointer decoded successfully")
	}
}

func TestDecodeReservedLabelRejected(t *testing.T) {
	b := make([]byte, 12)
	b[4], b[5] = 0, 1
	b = append(b, 0x80, 0x01, 0, 0, 0, 0) // 10xxxxxx label type is reserved
	if _, err := Decode(b); !errors.Is(err, ErrReservedLabel) {
		t.Fatalf("err = %v, want ErrReservedLabel", err)
	}
}

func TestDecodeAbsurdCounts(t *testing.T) {
	b := make([]byte, 12)
	b[6], b[7] = 0xFF, 0xFF // ANCOUNT=65535 in a 12-byte message
	if _, err := Decode(b); !errors.Is(err, ErrTooManyRecords) {
		t.Fatalf("err = %v, want ErrTooManyRecords", err)
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		// Must not panic; errors are fine.
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: any well-formed query round-trips through encode/decode.
func TestQueryRoundTripProperty(t *testing.T) {
	f := func(id uint16, l1, l2 uint8, tsel uint8) bool {
		labels := []string{
			strings.Repeat("a", int(l1%MaxLabelLen)+1),
			strings.Repeat("b", int(l2%MaxLabelLen)+1),
			"test",
		}
		name := strings.Join(labels, ".")
		types := []Type{TypeA, TypeAAAA, TypeCNAME, TypeMX, TypeTXT, TypeNS}
		typ := types[int(tsel)%len(types)]
		m := NewQuery(id, name, typ)
		b, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		return got.Header.ID == id &&
			got.Questions[0].Name == name &&
			got.Questions[0].Type == typ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"WWW.Example.COM.", "www.example.com"},
		{"www.example.com", "www.example.com"},
		{".", "."},
		{"", "."},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAnswerAddrsAndMinTTL(t *testing.T) {
	q := NewQuery(1, "x.com", TypeA)
	r := NewResponse(q, RCodeNoError)
	if r.MinAnswerTTL() != 0 {
		t.Fatal("empty MinAnswerTTL != 0")
	}
	r.AddAnswerCNAME("x.com", "y.com", 500)
	r.AddAnswerA("y.com", netip.MustParseAddr("192.0.2.1"), 300)
	r.AddAnswerA("y.com", netip.MustParseAddr("192.0.2.2"), 700)
	addrs := r.AnswerAddrs()
	if len(addrs) != 2 {
		t.Fatalf("AnswerAddrs = %v", addrs)
	}
	if r.MinAnswerTTL() != 300 {
		t.Fatalf("MinAnswerTTL = %d", r.MinAnswerTTL())
	}
}

func TestStringers(t *testing.T) {
	if TypeA.String() != "A" || Type(999).String() != "TYPE999" {
		t.Error("Type.String")
	}
	if ClassIN.String() != "IN" || Class(9).String() != "CLASS9" {
		t.Error("Class.String")
	}
	if OpcodeQuery.String() != "QUERY" || Opcode(7).String() != "OPCODE7" {
		t.Error("Opcode.String")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(15).String() != "RCODE15" {
		t.Error("RCode.String")
	}
	q := Question{Name: "a.b", Type: TypeA, Class: ClassIN}
	if q.String() != "a.b IN A" {
		t.Errorf("Question.String = %q", q.String())
	}
	rr := RR{Name: "a.b", Type: TypeA, Class: ClassIN, TTL: 60, Addr: netip.MustParseAddr("192.0.2.1")}
	if !strings.Contains(rr.String(), "192.0.2.1") {
		t.Errorf("RR.String = %q", rr.String())
	}
}

func TestMessageString(t *testing.T) {
	q := NewQuery(7, "www.example.com", TypeA)
	resp := NewResponse(q, RCodeNoError)
	resp.Header.Authoritative = true
	resp.Header.RecursionAvailable = true
	resp.AddAnswerA("www.example.com", netip.MustParseAddr("192.0.2.1"), 60)
	resp.Authority = append(resp.Authority, RR{
		Name: "example.com", Type: TypeNS, Class: ClassIN, TTL: 3600, Target: "ns1.example.com",
	})
	out := resp.String()
	for _, want := range []string{
		"RESPONSE", "id=7", "NOERROR", "aa", "ra",
		"QUESTION", "www.example.com IN A",
		"ANSWER", "192.0.2.1",
		"AUTHORITY", "ns1.example.com",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q in:\n%s", want, out)
		}
	}
	qs := q.String()
	if !strings.Contains(qs, "QUERY") || !strings.Contains(qs, "rd") {
		t.Errorf("query String() = %q", qs)
	}
}

func TestRRStringAllTypes(t *testing.T) {
	cases := []struct {
		rr   RR
		want string
	}{
		{RR{Name: "a.b", Type: TypeAAAA, Class: ClassIN, TTL: 1, Addr: netip.MustParseAddr("2001:db8::1")}, "2001:db8::1"},
		{RR{Name: "a.b", Type: TypeCNAME, Class: ClassIN, Target: "c.d"}, "CNAME c.d"},
		{RR{Name: "a.b", Type: TypeNS, Class: ClassIN, Target: "ns.d"}, "NS ns.d"},
		{RR{Name: "a.b", Type: TypePTR, Class: ClassIN, Target: "p.d"}, "PTR p.d"},
		{RR{Name: "a.b", Type: TypeMX, Class: ClassIN, Pref: 5, Target: "mx.d"}, "5 mx.d"},
		{RR{Name: "a.b", Type: TypeTXT, Class: ClassIN, Text: []string{"x", "y"}}, "x y"},
		{RR{Name: "a.b", Type: TypeSOA, Class: ClassIN, SOA: &SOAData{MName: "m", RName: "r", Serial: 3}}, "m r 3"},
		{RR{Name: "a.b", Type: TypeSOA, Class: ClassIN}, "SOA"},
		{RR{Name: "a.b", Type: TypeOPT, Class: ClassIN, Raw: []byte{1, 2}}, "\\# 2"},
	}
	for _, c := range cases {
		if got := c.rr.String(); !strings.Contains(got, c.want) {
			t.Errorf("RR.String() = %q, want substring %q", got, c.want)
		}
	}
}

func TestStringersExhaustive(t *testing.T) {
	for typ, want := range map[Type]string{
		TypeNS: "NS", TypeCNAME: "CNAME", TypeSOA: "SOA", TypePTR: "PTR",
		TypeMX: "MX", TypeTXT: "TXT", TypeAAAA: "AAAA", TypeOPT: "OPT", TypeANY: "ANY",
	} {
		if typ.String() != want {
			t.Errorf("Type %d = %q, want %q", typ, typ.String(), want)
		}
	}
	for c, want := range map[Class]string{ClassCH: "CH", ClassANY: "ANY"} {
		if c.String() != want {
			t.Errorf("Class %d = %q", c, c.String())
		}
	}
	for o, want := range map[Opcode]string{
		OpcodeIQuery: "IQUERY", OpcodeStatus: "STATUS", OpcodeNotify: "NOTIFY", OpcodeUpdate: "UPDATE",
	} {
		if o.String() != want {
			t.Errorf("Opcode %d = %q", o, o.String())
		}
	}
	for rc, want := range map[RCode]string{
		RCodeFormErr: "FORMERR", RCodeServFail: "SERVFAIL", RCodeNotImp: "NOTIMP", RCodeRefused: "REFUSED", RCodeNoError: "NOERROR",
	} {
		if rc.String() != want {
			t.Errorf("RCode %d = %q", rc, rc.String())
		}
	}
}

func TestDecodeMXErrors(t *testing.T) {
	// An MX record whose RDATA is too short for the preference field.
	q := NewQuery(1, "a.com", TypeMX)
	resp := NewResponse(q, RCodeNoError)
	resp.Answers = append(resp.Answers, RR{Name: "a.com", Type: TypeMX, Class: ClassIN, Pref: 1, Target: "m.com"})
	b := mustEncode(t, resp)
	// Truncate the RDATA by rewriting RDLENGTH of the MX record to 1.
	// Find it: it's the last record; corrupt its length bytes.
	corrupted := false
	for i := len(b) - 4; i > 12; i-- {
		// look for the MX rdlen: type MX(15) class IN(1) precede it.
		if b[i-8] == 0 && b[i-7] == 15 && b[i-6] == 0 && b[i-5] == 1 {
			b[i], b[i+1] = 0, 1
			corrupted = true
			break
		}
	}
	if corrupted {
		if _, err := Decode(b); err == nil {
			t.Fatal("short MX rdata decoded")
		}
	}
}
