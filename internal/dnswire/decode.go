package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Decode parses a wire-format DNS message. It fails on any malformed
// construct rather than guessing, and rejects trailing garbage.
func Decode(msg []byte) (*Message, error) {
	m, off, err := decode(msg)
	if err != nil {
		return nil, err
	}
	if off != len(msg) {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailingBytes, len(msg)-off)
	}
	return m, nil
}

// DecodePrefix parses a DNS message that may be followed by unrelated
// bytes (e.g. when carried in a larger buffer) and returns the number of
// bytes consumed.
func DecodePrefix(msg []byte) (*Message, int, error) {
	return decode(msg)
}

func decode(msg []byte) (*Message, int, error) {
	if len(msg) < 12 {
		return nil, 0, ErrTruncated
	}
	m := &Message{}
	m.Header.ID = binary.BigEndian.Uint16(msg[0:2])
	flags := binary.BigEndian.Uint16(msg[2:4])
	m.Header.Response = flags&(1<<15) != 0
	m.Header.Opcode = Opcode(flags >> 11 & 0xF)
	m.Header.Authoritative = flags&(1<<10) != 0
	m.Header.Truncated = flags&(1<<9) != 0
	m.Header.RecursionDesired = flags&(1<<8) != 0
	m.Header.RecursionAvailable = flags&(1<<7) != 0
	m.Header.RCode = RCode(flags & 0xF)

	qd := int(binary.BigEndian.Uint16(msg[4:6]))
	an := int(binary.BigEndian.Uint16(msg[6:8]))
	ns := int(binary.BigEndian.Uint16(msg[8:10]))
	ar := int(binary.BigEndian.Uint16(msg[10:12]))

	// Cheap sanity bound: each question needs >= 5 bytes, each RR >= 11.
	if 5*qd+11*(an+ns+ar) > len(msg)-12 {
		return nil, 0, ErrTooManyRecords
	}

	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		if q, off, err = decodeQuestion(msg, off); err != nil {
			return nil, 0, fmt.Errorf("question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	sections := []struct {
		n   int
		dst *[]RR
	}{{an, &m.Answers}, {ns, &m.Authority}, {ar, &m.Additional}}
	for si, sec := range sections {
		for i := 0; i < sec.n; i++ {
			var rr RR
			if rr, off, err = decodeRR(msg, off); err != nil {
				return nil, 0, fmt.Errorf("section %d record %d: %w", si, i, err)
			}
			*sec.dst = append(*sec.dst, rr)
		}
	}
	return m, off, nil
}

func decodeQuestion(msg []byte, off int) (Question, int, error) {
	var q Question
	var err error
	if q.Name, off, err = decodeName(msg, off); err != nil {
		return q, 0, err
	}
	if off+4 > len(msg) {
		return q, 0, ErrTruncated
	}
	q.Type = Type(binary.BigEndian.Uint16(msg[off : off+2]))
	q.Class = Class(binary.BigEndian.Uint16(msg[off+2 : off+4]))
	return q, off + 4, nil
}

func decodeRR(msg []byte, off int) (RR, int, error) {
	var rr RR
	var err error
	if rr.Name, off, err = decodeName(msg, off); err != nil {
		return rr, 0, err
	}
	if off+10 > len(msg) {
		return rr, 0, ErrTruncated
	}
	rr.Type = Type(binary.BigEndian.Uint16(msg[off : off+2]))
	rr.Class = Class(binary.BigEndian.Uint16(msg[off+2 : off+4]))
	rr.TTL = binary.BigEndian.Uint32(msg[off+4 : off+8])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8 : off+10]))
	off += 10
	if off+rdlen > len(msg) {
		return rr, 0, ErrTruncated
	}
	rdata := msg[off : off+rdlen]
	end := off + rdlen

	switch rr.Type {
	case TypeA:
		if rdlen != 4 {
			return rr, 0, fmt.Errorf("%w: A rdata %d bytes", ErrRDataOutOfRange, rdlen)
		}
		rr.Addr = netip.AddrFrom4([4]byte(rdata))
	case TypeAAAA:
		if rdlen != 16 {
			return rr, 0, fmt.Errorf("%w: AAAA rdata %d bytes", ErrRDataOutOfRange, rdlen)
		}
		rr.Addr = netip.AddrFrom16([16]byte(rdata))
	case TypeCNAME, TypeNS, TypePTR:
		target, n, err := decodeName(msg, off)
		if err != nil {
			return rr, 0, err
		}
		if n != end {
			return rr, 0, fmt.Errorf("%w: name rdata has %d trailing bytes", ErrRDataOutOfRange, end-n)
		}
		rr.Target = target
	case TypeMX:
		if rdlen < 3 {
			return rr, 0, fmt.Errorf("%w: MX rdata %d bytes", ErrRDataOutOfRange, rdlen)
		}
		rr.Pref = binary.BigEndian.Uint16(rdata[0:2])
		target, n, err := decodeName(msg, off+2)
		if err != nil {
			return rr, 0, err
		}
		if n != end {
			return rr, 0, fmt.Errorf("%w: MX rdata has trailing bytes", ErrRDataOutOfRange)
		}
		rr.Target = target
	case TypeTXT:
		for p := 0; p < rdlen; {
			l := int(rdata[p])
			p++
			if p+l > rdlen {
				return rr, 0, fmt.Errorf("%w: TXT string overruns rdata", ErrRDataOutOfRange)
			}
			rr.Text = append(rr.Text, string(rdata[p:p+l]))
			p += l
		}
	case TypeSOA:
		soa := &SOAData{}
		p := off
		if soa.MName, p, err = decodeName(msg, p); err != nil {
			return rr, 0, err
		}
		if soa.RName, p, err = decodeName(msg, p); err != nil {
			return rr, 0, err
		}
		if p+20 != end {
			return rr, 0, fmt.Errorf("%w: SOA fixed fields", ErrRDataOutOfRange)
		}
		soa.Serial = binary.BigEndian.Uint32(msg[p : p+4])
		soa.Refresh = binary.BigEndian.Uint32(msg[p+4 : p+8])
		soa.Retry = binary.BigEndian.Uint32(msg[p+8 : p+12])
		soa.Expire = binary.BigEndian.Uint32(msg[p+12 : p+16])
		soa.Minimum = binary.BigEndian.Uint32(msg[p+16 : p+20])
		rr.SOA = soa
	default:
		rr.Raw = append([]byte(nil), rdata...)
	}
	return rr, end, nil
}
