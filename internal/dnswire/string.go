package dnswire

import (
	"fmt"
	"strings"
)

// String renders the message in a dig-like presentation format, useful
// for debugging captures and for the zeeklite tooling.
func (m *Message) String() string {
	var b strings.Builder
	kind := "QUERY"
	if m.Header.Response {
		kind = "RESPONSE"
	}
	fmt.Fprintf(&b, ";; %s id=%d opcode=%s rcode=%s", kind, m.Header.ID, m.Header.Opcode, m.Header.RCode)
	var flags []string
	if m.Header.Authoritative {
		flags = append(flags, "aa")
	}
	if m.Header.Truncated {
		flags = append(flags, "tc")
	}
	if m.Header.RecursionDesired {
		flags = append(flags, "rd")
	}
	if m.Header.RecursionAvailable {
		flags = append(flags, "ra")
	}
	if len(flags) > 0 {
		fmt.Fprintf(&b, " flags=%s", strings.Join(flags, ","))
	}
	b.WriteByte('\n')

	if len(m.Questions) > 0 {
		b.WriteString(";; QUESTION\n")
		for _, q := range m.Questions {
			fmt.Fprintf(&b, ";%s\n", q)
		}
	}
	section := func(name string, rrs []RR) {
		if len(rrs) == 0 {
			return
		}
		fmt.Fprintf(&b, ";; %s\n", name)
		for _, rr := range rrs {
			fmt.Fprintf(&b, "%s\n", rr)
		}
	}
	section("ANSWER", m.Answers)
	section("AUTHORITY", m.Authority)
	section("ADDITIONAL", m.Additional)
	return b.String()
}
