package dnswire

import (
	"encoding/binary"
	"fmt"
)

// Encode serializes m to wire format, applying name compression across the
// whole message.
func (m *Message) Encode() ([]byte, error) {
	if len(m.Questions) > 0xFFFF || len(m.Answers) > 0xFFFF ||
		len(m.Authority) > 0xFFFF || len(m.Additional) > 0xFFFF {
		return nil, ErrTooManyRecords
	}
	buf := make([]byte, 12, 512)
	binary.BigEndian.PutUint16(buf[0:2], m.Header.ID)

	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.Opcode&0xF) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.RCode & 0xF)
	binary.BigEndian.PutUint16(buf[2:4], flags)

	binary.BigEndian.PutUint16(buf[4:6], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(buf[8:10], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(buf[10:12], uint16(len(m.Additional)))

	ptrs := make(map[string]int)
	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name, ptrs); err != nil {
			return nil, fmt.Errorf("question %q: %w", q.Name, err)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, section := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for i := range section {
			if buf, err = appendRR(buf, &section[i], ptrs); err != nil {
				return nil, fmt.Errorf("record %q: %w", section[i].Name, err)
			}
		}
	}
	return buf, nil
}

func appendRR(buf []byte, rr *RR, ptrs map[string]int) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, rr.Name, ptrs); err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)

	// Reserve RDLENGTH and fill it in after encoding RDATA, since
	// compression makes the length data-dependent.
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	start := len(buf)

	switch rr.Type {
	case TypeA:
		if !rr.Addr.Is4() && !rr.Addr.Is4In6() {
			return nil, fmt.Errorf("dnswire: A record with non-IPv4 addr %v", rr.Addr)
		}
		a4 := rr.Addr.As4()
		buf = append(buf, a4[:]...)
	case TypeAAAA:
		if !rr.Addr.Is6() || rr.Addr.Is4In6() {
			return nil, fmt.Errorf("dnswire: AAAA record with non-IPv6 addr %v", rr.Addr)
		}
		a16 := rr.Addr.As16()
		buf = append(buf, a16[:]...)
	case TypeCNAME, TypeNS, TypePTR:
		if buf, err = appendName(buf, rr.Target, ptrs); err != nil {
			return nil, err
		}
	case TypeMX:
		buf = binary.BigEndian.AppendUint16(buf, rr.Pref)
		if buf, err = appendName(buf, rr.Target, ptrs); err != nil {
			return nil, err
		}
	case TypeTXT:
		for _, s := range rr.Text {
			if len(s) > 255 {
				return nil, fmt.Errorf("dnswire: TXT string over 255 bytes")
			}
			buf = append(buf, byte(len(s)))
			buf = append(buf, s...)
		}
	case TypeSOA:
		if rr.SOA == nil {
			return nil, fmt.Errorf("dnswire: SOA record without SOA data")
		}
		if buf, err = appendName(buf, rr.SOA.MName, ptrs); err != nil {
			return nil, err
		}
		if buf, err = appendName(buf, rr.SOA.RName, ptrs); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint32(buf, rr.SOA.Serial)
		buf = binary.BigEndian.AppendUint32(buf, rr.SOA.Refresh)
		buf = binary.BigEndian.AppendUint32(buf, rr.SOA.Retry)
		buf = binary.BigEndian.AppendUint32(buf, rr.SOA.Expire)
		buf = binary.BigEndian.AppendUint32(buf, rr.SOA.Minimum)
	default:
		buf = append(buf, rr.Raw...)
	}

	rdlen := len(buf) - start
	if rdlen > 0xFFFF {
		return nil, ErrRDataOutOfRange
	}
	binary.BigEndian.PutUint16(buf[lenAt:lenAt+2], uint16(rdlen))
	return buf, nil
}
