// Package chaos is a seeded userspace fault proxy for real sockets: it
// sits between a DNS client (dnsserver.ClientPool, internal/bulk's live
// engine) and a live server and injects the netsim.FaultProfile failure
// taxonomy — loss, delay, jitter, reordering, duplication, byte
// corruption, scheduled blackhole windows — onto actual UDP datagrams
// and TCP streams, plus the one fault only a real stream can express:
// a mid-stream TCP reset.
//
// Determinism is per-decision, not per-schedule: each direction of a
// proxy draws its fault decisions from its own seeded stats.RNG, so the
// i-th datagram (or stream chunk) a direction carries always receives
// the same fate for a given seed. Wall-clock interleaving between
// directions still varies run to run — this is a real-socket tool, not
// the virtual-time simulator — but fault *rates and patterns* are
// reproducible, which is what soak tests need to be stable.
package chaos

import (
	"sync"
	"sync/atomic"
	"time"

	"dnscontext/internal/netsim"
	"dnscontext/internal/obs"
	"dnscontext/internal/stats"
)

// Profile parameterizes the faults a proxy injects, mirroring
// netsim.FaultProfile on real sockets (see the parity table in
// DESIGN.md §7i). The zero value injects nothing and forwards
// everything unchanged.
type Profile struct {
	// Loss is the probability one datagram is silently dropped. Ignored
	// for TCP (the kernel would just retransmit; use Blackholes or
	// TCPReset to hurt a stream).
	Loss float64
	// Delay is a fixed latency added to every delivery.
	Delay time.Duration
	// Jitter is the mean of an additional exponential latency term added
	// to every delivery, matching netsim.FaultProfile.ExtraJitter.
	Jitter time.Duration
	// Reorder is the probability a datagram is held back an extra
	// 2·(Delay+Jitter)+1ms beyond its computed delay, letting later
	// datagrams overtake it. Requires Delay or Jitter to matter at UDP
	// timescales but works alone too. Ignored for TCP (a stream cannot
	// reorder).
	Reorder float64
	// Duplicate is the probability a datagram is delivered twice.
	// Ignored for TCP.
	Duplicate float64
	// Corrupt is the probability one delivery has a random byte
	// flipped — exercising the decoder-error path end to end.
	Corrupt float64
	// Blackholes are scheduled windows, relative to proxy creation,
	// during which every delivery is dropped (UDP) or the stream stalls
	// (TCP) — netsim.FaultProfile.Outages on real sockets.
	Blackholes []netsim.Window
	// TCPReset is the per-chunk probability a TCP proxy tears the
	// connection down mid-stream with an RST (SO_LINGER 0). Ignored for
	// UDP.
	TCPReset float64
}

// IsZero reports whether the profile injects nothing.
func (p Profile) IsZero() bool {
	return p.Loss <= 0 && p.Delay <= 0 && p.Jitter <= 0 && p.Reorder <= 0 &&
		p.Duplicate <= 0 && p.Corrupt <= 0 && len(p.Blackholes) == 0 && p.TCPReset <= 0
}

// blackholeAt reports whether elapsed falls inside a scheduled
// blackhole window.
func (p Profile) blackholeAt(elapsed time.Duration) bool {
	for _, w := range p.Blackholes {
		if w.Contains(elapsed) {
			return true
		}
	}
	return false
}

// blackholeEnd returns the end of the window containing elapsed (the
// latest end among overlapping windows), for TCP stalls.
func (p Profile) blackholeEnd(elapsed time.Duration) time.Duration {
	end := elapsed
	for _, w := range p.Blackholes {
		if w.Contains(elapsed) && w.End > end {
			end = w.End
		}
	}
	return end
}

// Config parameterizes a proxy.
type Config struct {
	// Listen is the address to listen on (default "127.0.0.1:0" — an
	// ephemeral loopback port; read it back with Proxy.Addr).
	Listen string
	// Upstream is the server the proxy forwards to. Required.
	Upstream string
	// Profile is the fault profile to inject.
	Profile Profile
	// Seed seeds the per-direction fault RNGs; the same seed reproduces
	// the same per-datagram fate sequence.
	Seed uint64
	// Metrics, when non-nil, receives the proxy's instrument families
	// (chaos_*).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	return c
}

// Stats is a point-in-time snapshot of what a proxy has done, summed
// over both directions.
type Stats struct {
	Forwarded  uint64 // deliveries passed through (including delayed/corrupted ones)
	Dropped    uint64 // deliveries dropped by random loss
	Blackholed uint64 // deliveries dropped (UDP) or stalled (TCP) by a blackhole window
	Duplicated uint64 // extra copies sent
	Corrupted  uint64 // deliveries with a byte flipped
	Delayed    uint64 // deliveries held back by delay/jitter
	Reordered  uint64 // deliveries given the extra reorder hold-back
	Resets     uint64 // TCP connections torn down mid-stream
}

// counters is the shared atomic tally behind Stats plus the optional
// obs instruments. All fields are nil-safe on the obs side.
type counters struct {
	forwarded, dropped, blackholed, duplicated atomic.Uint64
	corrupted, delayed, reordered, resets      atomic.Uint64

	mForwarded  *obs.CounterVec // dir
	mDropped    *obs.CounterVec // dir, cause
	mDuplicated *obs.CounterVec // dir
	mCorrupted  *obs.CounterVec // dir
	mDelayed    *obs.CounterVec // dir
	mResets     *obs.Counter
}

func newCounters(reg *obs.Registry) *counters {
	return &counters{
		mForwarded: reg.CounterVec("chaos_forwarded_total",
			"Deliveries the fault proxy passed through, by direction.", "dir"),
		mDropped: reg.CounterVec("chaos_dropped_total",
			"Deliveries the fault proxy dropped, by direction and cause.", "dir", "cause"),
		mDuplicated: reg.CounterVec("chaos_duplicated_total",
			"Extra duplicate deliveries injected, by direction.", "dir"),
		mCorrupted: reg.CounterVec("chaos_corrupted_total",
			"Deliveries with a corrupted byte, by direction.", "dir"),
		mDelayed: reg.CounterVec("chaos_delayed_total",
			"Deliveries held back by delay, jitter, or reordering, by direction.", "dir"),
		mResets: reg.Counter("chaos_resets_total",
			"TCP connections reset mid-stream by the fault proxy."),
	}
}

func (c *counters) snapshot() Stats {
	return Stats{
		Forwarded:  c.forwarded.Load(),
		Dropped:    c.dropped.Load(),
		Blackholed: c.blackholed.Load(),
		Duplicated: c.duplicated.Load(),
		Corrupted:  c.corrupted.Load(),
		Delayed:    c.delayed.Load(),
		Reordered:  c.reordered.Load(),
		Resets:     c.resets.Load(),
	}
}

// fate is the decision set for one delivery, drawn from a direction's
// RNG in a fixed order so fate sequences are seed-reproducible.
type fate struct {
	drop      bool
	blackhole bool
	dup       bool
	corrupt   bool
	// corruptAt is the byte index to flip, modulo the delivery length.
	corruptAt int
	delay     time.Duration
	reorder   bool
	reset     bool
}

// lane is one direction of a proxy: its seeded RNG (mutex-guarded — the
// fate draw is the serialization point that makes per-direction fate
// sequences deterministic) and its metric handles.
type lane struct {
	mu  sync.Mutex
	rng *stats.RNG

	forwarded  *obs.Counter
	dropLoss   *obs.Counter
	dropBlack  *obs.Counter
	duplicated *obs.Counter
	corrupted  *obs.Counter
	delayed    *obs.Counter
}

func newLane(seed uint64, dir string, c *counters) *lane {
	return &lane{
		rng:        stats.NewRNG(seed),
		forwarded:  c.mForwarded.With(dir),
		dropLoss:   c.mDropped.With(dir, "loss"),
		dropBlack:  c.mDropped.With(dir, "blackhole"),
		duplicated: c.mDuplicated.With(dir),
		corrupted:  c.mCorrupted.With(dir),
		delayed:    c.mDelayed.With(dir),
	}
}

// decide draws one delivery's fate. Zero-probability faults consume no
// randomness (matching netsim.FaultProfile), so enabling one fault does
// not perturb another's sequence.
func (l *lane) decide(p Profile, elapsed time.Duration) fate {
	l.mu.Lock()
	defer l.mu.Unlock()
	var f fate
	if p.blackholeAt(elapsed) {
		f.blackhole = true
		return f // no randomness consumed during an outage, as in netsim
	}
	if p.Loss > 0 && l.rng.Bool(p.Loss) {
		f.drop = true
		return f
	}
	if p.Duplicate > 0 {
		f.dup = l.rng.Bool(p.Duplicate)
	}
	if p.Corrupt > 0 && l.rng.Bool(p.Corrupt) {
		f.corrupt = true
		f.corruptAt = int(l.rng.Uint64n(1 << 16))
	}
	f.delay = p.Delay
	if p.Jitter > 0 {
		f.delay += time.Duration(float64(p.Jitter) * l.rng.ExpFloat64())
	}
	if p.Reorder > 0 && l.rng.Bool(p.Reorder) {
		f.reorder = true
		f.delay += 2*(p.Delay+p.Jitter) + time.Millisecond
	}
	if p.TCPReset > 0 && l.rng.Bool(p.TCPReset) {
		f.reset = true
	}
	return f
}

// corruptByte flips one bit of the byte at the fate's index (modulo
// len) in place.
func corruptByte(b []byte, at int) {
	if len(b) == 0 {
		return
	}
	b[at%len(b)] ^= 0x20
}
