package chaos

import (
	"fmt"
	"net"
)

// NewTCP starts a TCP fault proxy forwarding to cfg.Upstream. Stream
// semantics narrow the applicable faults: Loss, Duplicate, and Reorder
// are ignored (the kernel would repair or the stream would be
// corrupted irrecoverably); Delay/Jitter stall chunks in order,
// Corrupt flips bytes in flight, Blackholes stall the stream until the
// window passes, and TCPReset tears the connection down mid-stream
// with an RST.
func NewTCP(cfg Config) (*Proxy, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	p := newProxy(cfg)
	p.ln = ln
	p.addr = ln.Addr().String()
	p.wg.Add(1)
	go p.serveTCP()
	return p, nil
}

func (p *Proxy) serveTCP() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		upstream, err := net.Dial("tcp", p.cfg.Upstream)
		if err != nil {
			client.Close()
			continue
		}
		if !p.track(client) || !p.track(upstream) {
			client.Close()
			upstream.Close()
			return
		}
		p.wg.Add(2)
		go p.pumpTCP(p.up, client, upstream)
		go p.pumpTCP(p.down, upstream, client)
	}
}

// pumpTCP copies src to dst chunk by chunk, running each chunk through
// the lane's fault pipeline. Either side failing (or a reset fate)
// closes both, which also stops the sibling pump.
func (p *Proxy) pumpTCP(l *lane, src, dst net.Conn) {
	defer p.wg.Done()
	defer func() {
		src.Close()
		dst.Close()
		p.untrack(src)
		p.untrack(dst)
	}()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			f := l.decide(p.cfg.Profile, p.elapsed())
			if f.blackhole {
				// A stream cannot drop bytes; the blackhole manifests as a
				// stall until the window passes (or the proxy closes).
				p.cnt.blackholed.Add(1)
				l.dropBlack.Inc()
				if !p.sleep(p.cfg.Profile.blackholeEnd(p.elapsed()) - p.elapsed()) {
					return
				}
			}
			if f.reset {
				p.cnt.resets.Add(1)
				p.cnt.mResets.Inc()
				// SO_LINGER 0 turns Close into an immediate RST — the
				// mid-stream abort a real middlebox or crashing server
				// produces.
				if tc, ok := src.(*net.TCPConn); ok {
					_ = tc.SetLinger(0)
				}
				if tc, ok := dst.(*net.TCPConn); ok {
					_ = tc.SetLinger(0)
				}
				return
			}
			if f.corrupt {
				corruptByte(buf[:n], f.corruptAt)
				p.cnt.corrupted.Add(1)
				l.corrupted.Inc()
			}
			if f.delay > 0 {
				p.cnt.delayed.Add(1)
				l.delayed.Inc()
				if !p.sleep(f.delay) {
					return
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			p.cnt.forwarded.Add(1)
			l.forwarded.Inc()
		}
		if err != nil {
			return
		}
	}
}
