package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// NewUDP starts a UDP fault proxy forwarding to cfg.Upstream. Each
// client source address gets its own dialed upstream socket, so the
// upstream sees distinct peers exactly as it would without the proxy,
// and responses demux back to the right client.
func NewUDP(cfg Config) (*Proxy, error) {
	cfg = cfg.withDefaults()
	uaddr, err := net.ResolveUDPAddr("udp", cfg.Upstream)
	if err != nil {
		return nil, fmt.Errorf("chaos: upstream: %w", err)
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	pc, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	p := newProxy(cfg)
	p.pc = pc
	p.addr = pc.LocalAddr().String()
	// The client side funnels every session through this one socket; a
	// deep buffer keeps proxy-induced scheduling from adding loss the
	// profile didn't ask for.
	_ = pc.SetReadBuffer(4 << 20)
	_ = pc.SetWriteBuffer(4 << 20)
	p.wg.Add(1)
	go p.serveUDP(uaddr)
	return p, nil
}

// udpSession is one client peer's path through the proxy: a connected
// socket to the upstream plus the peer address responses return to.
type udpSession struct {
	conn *net.UDPConn
	peer *net.UDPAddr
}

// serveUDP reads client datagrams off the listen socket, lazily creates
// a per-peer upstream session, and runs each datagram through the up
// lane's fault pipeline.
func (p *Proxy) serveUDP(uaddr *net.UDPAddr) {
	defer p.wg.Done()
	var mu sync.Mutex
	sessions := make(map[string]*udpSession)
	buf := make([]byte, 65535)
	for {
		n, peer, err := p.pc.ReadFromUDP(buf)
		if err != nil {
			return // listen socket closed by Close
		}
		key := peer.String()
		mu.Lock()
		sess := sessions[key]
		mu.Unlock()
		if sess == nil {
			conn, err := net.DialUDP("udp", nil, uaddr)
			if err != nil {
				continue // upstream unresolvable right now; drop, client retries
			}
			_ = conn.SetReadBuffer(4 << 20)
			if !p.track(conn) {
				return
			}
			sess = &udpSession{conn: conn, peer: cloneUDPAddr(peer)}
			mu.Lock()
			sessions[key] = sess
			mu.Unlock()
			p.wg.Add(1)
			go p.pumpUDPDown(sess)
		}
		f := p.up.decide(p.cfg.Profile, p.elapsed())
		p.deliverUDP(p.up, f, buf[:n], func(b []byte) {
			_, _ = sess.conn.Write(b)
		})
	}
}

// pumpUDPDown forwards one session's responses back to its client peer
// through the down lane's fault pipeline.
func (p *Proxy) pumpUDPDown(sess *udpSession) {
	defer p.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, err := sess.conn.Read(buf)
		if err != nil {
			return // session socket closed by Close
		}
		f := p.down.decide(p.cfg.Profile, p.elapsed())
		p.deliverUDP(p.down, f, buf[:n], func(b []byte) {
			_, _ = p.pc.WriteToUDP(b, sess.peer)
		})
	}
}

// deliverUDP executes one datagram's fate: drop it, flip a byte,
// duplicate it, hold it back, and/or send it. pkt is only valid until
// deliverUDP returns (the read loop reuses it), so delayed and
// duplicate deliveries copy.
func (p *Proxy) deliverUDP(l *lane, f fate, pkt []byte, send func([]byte)) {
	if f.blackhole {
		p.cnt.blackholed.Add(1)
		l.dropBlack.Inc()
		return
	}
	if f.drop {
		p.cnt.dropped.Add(1)
		l.dropLoss.Inc()
		return
	}
	if f.corrupt {
		corruptByte(pkt, f.corruptAt)
		p.cnt.corrupted.Add(1)
		l.corrupted.Inc()
	}
	copies := 1
	if f.dup {
		copies = 2
		p.cnt.duplicated.Add(1)
		l.duplicated.Inc()
	}
	p.cnt.forwarded.Add(1)
	l.forwarded.Inc()
	if f.delay <= 0 {
		for i := 0; i < copies; i++ {
			send(pkt)
		}
		return
	}
	p.cnt.delayed.Add(1)
	l.delayed.Inc()
	if f.reorder {
		p.cnt.reordered.Add(1)
	}
	held := append([]byte(nil), pkt...)
	for i := 0; i < copies; i++ {
		time.AfterFunc(f.delay, func() {
			if !p.closed.Load() {
				send(held)
			}
		})
	}
}

func cloneUDPAddr(a *net.UDPAddr) *net.UDPAddr {
	return &net.UDPAddr{IP: append(net.IP(nil), a.IP...), Port: a.Port, Zone: a.Zone}
}
