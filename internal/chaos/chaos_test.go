package chaos

import (
	"context"
	"net"
	"testing"
	"time"

	"dnscontext/internal/dnsserver"
	"dnscontext/internal/dnswire"
	"dnscontext/internal/netsim"
	"dnscontext/internal/stats"
	"dnscontext/internal/zonedb"
)

// startServer boots a loopback dnsserver for proxy tests.
func startServer(t *testing.T) (*zonedb.DB, string) {
	t.Helper()
	zones, err := zonedb.New(zonedb.Config{
		NumNames: 50, ZipfExponent: 1, CDNFraction: 0.3, CDNPoolSize: 5,
	}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	srv := dnsserver.NewServerWith(dnsserver.ZoneHandler(zones), dnsserver.Config{Workers: 4, QueueDepth: 256}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return zones, addr.String()
}

func queryThrough(t *testing.T, addr, name string, cfg dnsserver.ClientPoolConfig) (*dnswire.Message, error) {
	t.Helper()
	pool, err := dnsserver.NewClientPool(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	return pool.Query(context.Background(), name, dnswire.TypeA)
}

// TestUDPPassthrough: a zero profile must be a transparent pipe.
func TestUDPPassthrough(t *testing.T) {
	zones, addr := startServer(t)
	px, err := NewUDP(Config{Upstream: addr, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	name := zones.Names()[0].Host
	msg, err := queryThrough(t, px.Addr(), name, dnsserver.ClientPoolConfig{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("query through zero-fault proxy: %v", err)
	}
	if len(msg.Answers) == 0 {
		t.Fatal("no answers through proxy")
	}
	st := px.Stats()
	if st.Forwarded < 2 { // query up + response down
		t.Fatalf("forwarded = %d, want >= 2", st.Forwarded)
	}
	if st.Dropped != 0 || st.Corrupted != 0 || st.Duplicated != 0 {
		t.Fatalf("zero profile injected faults: %+v", st)
	}
}

// TestUDPTotalLoss: Loss=1 must eat everything and the client must see
// the full-ladder timeout.
func TestUDPTotalLoss(t *testing.T) {
	_, addr := startServer(t)
	px, err := NewUDP(Config{Upstream: addr, Profile: Profile{Loss: 1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	_, err = queryThrough(t, px.Addr(), "anything.example.", dnsserver.ClientPoolConfig{
		Timeout: 50 * time.Millisecond, Retries: 1,
	})
	if err != dnsserver.ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if st := px.Stats(); st.Dropped == 0 {
		t.Fatalf("no drops recorded: %+v", st)
	}
}

// TestUDPBlackholeWindow: deliveries are eaten inside the window and
// flow again after it passes.
func TestUDPBlackholeWindow(t *testing.T) {
	zones, addr := startServer(t)
	px, err := NewUDP(Config{
		Upstream: addr,
		Profile:  Profile{Blackholes: []netsim.Window{{Start: 0, End: 300 * time.Millisecond}}},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	name := zones.Names()[0].Host
	// Inside the window: silence.
	if _, err := queryThrough(t, px.Addr(), name, dnsserver.ClientPoolConfig{
		Timeout: 50 * time.Millisecond, Retries: 0,
	}); err != dnsserver.ErrTimeout {
		t.Fatalf("in-window err = %v, want ErrTimeout", err)
	}
	time.Sleep(350 * time.Millisecond)
	// After the window: answers.
	if _, err := queryThrough(t, px.Addr(), name, dnsserver.ClientPoolConfig{Timeout: 2 * time.Second}); err != nil {
		t.Fatalf("post-window query: %v", err)
	}
	if st := px.Stats(); st.Blackholed == 0 {
		t.Fatalf("no blackholed deliveries recorded: %+v", st)
	}
}

// TestUDPCorruption: Corrupt=1 flips a byte in every delivery; the
// client's decoder must reject the mangled datagrams and time out
// rather than crash or mis-deliver.
func TestUDPCorruption(t *testing.T) {
	zones, addr := startServer(t)
	px, err := NewUDP(Config{Upstream: addr, Profile: Profile{Corrupt: 1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	_, err = queryThrough(t, px.Addr(), zones.Names()[0].Host, dnsserver.ClientPoolConfig{
		Timeout: 50 * time.Millisecond, Retries: 0,
	})
	// A flipped byte can land in the name (server answers a different
	// question or refuses), the ID (demux drop), or the payload; any of
	// those surfaces as timeout or mismatch, never a successful answer.
	if err == nil {
		t.Fatal("corrupted-path query succeeded")
	}
	if st := px.Stats(); st.Corrupted == 0 {
		t.Fatalf("no corruption recorded: %+v", st)
	}
}

// TestUDPDuplicateAndDelay: duplication plus delay must not break a
// simple query — the pool takes the first response and drops the echo.
func TestUDPDuplicateAndDelay(t *testing.T) {
	zones, addr := startServer(t)
	px, err := NewUDP(Config{
		Upstream: addr,
		Profile:  Profile{Duplicate: 1, Delay: 5 * time.Millisecond, Jitter: 2 * time.Millisecond},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	name := zones.Names()[0].Host
	if _, err := queryThrough(t, px.Addr(), name, dnsserver.ClientPoolConfig{Timeout: 2 * time.Second}); err != nil {
		t.Fatalf("query through dup+delay proxy: %v", err)
	}
	st := px.Stats()
	if st.Duplicated == 0 || st.Delayed == 0 {
		t.Fatalf("dup/delay not recorded: %+v", st)
	}
}

// TestFateDeterminism: two lanes with the same seed draw identical fate
// sequences — the property soak tests lean on for reproducibility.
func TestFateDeterminism(t *testing.T) {
	p := Profile{Loss: 0.1, Jitter: time.Millisecond, Reorder: 0.05, Duplicate: 0.02, Corrupt: 0.03}
	cnt := newCounters(nil)
	a := newLane(42, "up", cnt)
	b := newLane(42, "up", cnt)
	for i := 0; i < 10000; i++ {
		fa := a.decide(p, 0)
		fb := b.decide(p, 0)
		if fa != fb {
			t.Fatalf("fate %d diverged: %+v vs %+v", i, fa, fb)
		}
	}
}

// TestTCPReset: a reset-always profile must kill the stream mid-flight
// with a hard error, not a clean EOF-shaped hang.
func TestTCPReset(t *testing.T) {
	// A trivial TCP echo upstream.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback TCP: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, err := c.Write(buf[:n]); err != nil {
							break
						}
					}
					if err != nil {
						break
					}
				}
				c.Close()
			}()
		}
	}()

	px, err := NewTCP(Config{Upstream: ln.Addr().String(), Profile: Profile{TCPReset: 1}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	conn, err := net.Dial("tcp", px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte("ping")); err != nil {
		// Write may already observe the reset; that's a pass.
		return
	}
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read succeeded through reset-always proxy")
	}
	if st := px.Stats(); st.Resets == 0 {
		t.Fatalf("no resets recorded: %+v", st)
	}
}

// TestTCPPassthrough: a zero profile TCP proxy is a transparent pipe.
func TestTCPPassthrough(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback TCP: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 1024)
				n, _ := c.Read(buf)
				if n > 0 {
					c.Write(buf[:n])
				}
				c.Close()
			}()
		}
	}()

	px, err := NewTCP(Config{Upstream: ln.Addr().String(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	conn, err := net.Dial("tcp", px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("echo through proxy = %q, %v", buf[:n], err)
	}
}
