package chaos

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is one running fault proxy (UDP or TCP; see NewUDP and NewTCP).
// It must be Closed.
type Proxy struct {
	cfg   Config
	cnt   *counters
	start time.Time
	// up carries client→upstream deliveries, down upstream→client; each
	// lane has its own seeded RNG (Seed and Seed+1).
	up, down *lane

	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup

	addr string

	mu    sync.Mutex
	conns map[net.Conn]struct{} // live conns (upstream dials, TCP accepts) to close
	pc    *net.UDPConn          // UDP listen socket (nil for TCP proxies)
	ln    net.Listener          // TCP listener (nil for UDP proxies)
}

func newProxy(cfg Config) *Proxy {
	cnt := newCounters(cfg.Metrics)
	return &Proxy{
		cfg:   cfg,
		cnt:   cnt,
		start: time.Now(),
		up:    newLane(cfg.Seed, "up", cnt),
		down:  newLane(cfg.Seed+1, "down", cnt),
		done:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
}

// Addr returns the proxy's listen address — point the client here.
func (p *Proxy) Addr() string { return p.addr }

// Stats returns a snapshot of the proxy's fault tally.
func (p *Proxy) Stats() Stats { return p.cnt.snapshot() }

// elapsed is the time since proxy creation, the clock blackhole windows
// are scheduled against.
func (p *Proxy) elapsed() time.Duration { return time.Since(p.start) }

// track registers a connection for closing on Close; it reports false
// (and closes the conn) when the proxy is already shut down.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// sleep pauses for d or until the proxy closes, reporting whether the
// full duration elapsed.
func (p *Proxy) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.done:
		return false
	}
}

// Close shuts the proxy down: the listen socket, every tracked
// connection, and all pump goroutines. Safe to call multiple times.
func (p *Proxy) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	close(p.done)
	p.mu.Lock()
	var first error
	if p.pc != nil {
		first = p.pc.Close()
	}
	if p.ln != nil {
		if err := p.ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	for c := range p.conns {
		if err := c.Close(); err != nil && first == nil && !errors.Is(err, net.ErrClosed) {
			first = err
		}
	}
	p.mu.Unlock()
	p.wg.Wait()
	return first
}
