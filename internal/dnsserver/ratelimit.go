package dnsserver

import (
	"net"
	"sync"
	"time"
)

// RateLimitConfig parameterizes the per-client token bucket. Each
// client IP gets Burst tokens refilled at PerSecond; a query arriving
// with no token available is answered REFUSED rather than dropped, so
// well-behaved stubs back off instead of retrying blind.
type RateLimitConfig struct {
	// PerSecond is the sustained per-client query rate.
	PerSecond float64
	// Burst is the bucket depth (minimum 1).
	Burst int
	// MaxClients bounds the bucket table. When the table is full, it is
	// reset wholesale — crude, but it bounds memory under address-spoofed
	// floods and only ever errs toward allowing traffic. Zero means the
	// default (4096).
	MaxClients int
}

const defaultMaxClients = 4096

// rateLimiter is a per-client-IP token bucket table.
type rateLimiter struct {
	cfg RateLimitConfig

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(cfg RateLimitConfig) *rateLimiter {
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = defaultMaxClients
	}
	return &rateLimiter{cfg: cfg, buckets: make(map[string]*bucket)}
}

// allow reports whether a query from ip may be served now, consuming a
// token if so.
func (rl *rateLimiter) allow(ip net.IP, now time.Time) bool {
	key := string(ip.To16())
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, ok := rl.buckets[key]
	if !ok {
		if len(rl.buckets) >= rl.cfg.MaxClients {
			rl.buckets = make(map[string]*bucket)
		}
		b = &bucket{tokens: float64(rl.cfg.Burst), last: now}
		rl.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * rl.cfg.PerSecond
		if max := float64(rl.cfg.Burst); b.tokens > max {
			b.tokens = max
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
