package dnsserver

import (
	"sync"

	"dnscontext/internal/dnswire"
	"dnscontext/internal/obs"
)

// srvMetrics classifies every received datagram into exactly one bucket:
// undecodable, decodable-but-ignored, shed under overload, refused by
// the rate limiter, encode failure, or a response sent (counted per
// RCode). received counts them all at the socket, before any
// processing, so Queries() is race-free against the worker pool.
type srvMetrics struct {
	received   *obs.Counter
	decodeErrs *obs.Counter
	dropped    *obs.Counter
	encodeErrs *obs.Counter
	panics     *obs.Counter
	refused    *obs.Counter
	shed       *obs.Counter
	responses  *obs.CounterVec

	// mu guards byRCode, which caches the per-RCode handles so workers
	// do not re-resolve labels per datagram.
	mu      sync.Mutex
	byRCode map[dnswire.RCode]*obs.Counter
}

func newSrvMetrics(reg *obs.Registry) srvMetrics {
	return srvMetrics{
		received: reg.Counter("dnsctx_dnsserver_received_total",
			"Datagrams read from the socket."),
		decodeErrs: reg.Counter("dnsctx_dnsserver_decode_errors_total",
			"Datagrams the DNS codec could not decode."),
		dropped: reg.Counter("dnsctx_dnsserver_dropped_total",
			"Well-formed datagrams ignored: responses, or queries without questions."),
		encodeErrs: reg.Counter("dnsctx_dnsserver_encode_errors_total",
			"Responses the DNS codec could not encode."),
		panics: reg.Counter("dnsctx_dnsserver_panics_total",
			"Handler panics recovered; each became a SERVFAIL response."),
		refused: reg.Counter("dnsctx_dnsserver_refused_total",
			"Queries answered REFUSED by the per-client rate limiter."),
		shed: reg.Counter("dnsctx_dnsserver_shed_total",
			"Datagrams dropped because the pending queue was full."),
		responses: reg.CounterVec("dnsctx_dnsserver_responses_total",
			"Responses sent, by RCode.", "rcode"),
		byRCode: make(map[dnswire.RCode]*obs.Counter),
	}
}

// response returns the cached counter for rc, resolving it on first use.
func (m *srvMetrics) response(rc dnswire.RCode) *obs.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.byRCode[rc]
	if !ok {
		c = m.responses.With(rc.String())
		m.byRCode[rc] = c
	}
	return c
}
