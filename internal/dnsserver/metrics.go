package dnsserver

import (
	"dnscontext/internal/dnswire"
	"dnscontext/internal/obs"
)

// srvMetrics classifies every received datagram into exactly one bucket:
// undecodable, decodable-but-ignored, encode failure, or a response sent
// (counted per RCode). Queries() sums the buckets, preserving the old
// coarse counter's meaning.
type srvMetrics struct {
	decodeErrs *obs.Counter
	dropped    *obs.Counter
	encodeErrs *obs.Counter
	responses  *obs.CounterVec
	// byRCode caches the per-RCode handles so the serve loop does not
	// re-resolve labels per datagram; it also enumerates the response
	// counters for the Queries() sum.
	byRCode map[dnswire.RCode]*obs.Counter
}

func newSrvMetrics(reg *obs.Registry) srvMetrics {
	return srvMetrics{
		decodeErrs: reg.Counter("dnsctx_dnsserver_decode_errors_total",
			"Datagrams the DNS codec could not decode."),
		dropped: reg.Counter("dnsctx_dnsserver_dropped_total",
			"Well-formed datagrams ignored: responses, or queries without questions."),
		encodeErrs: reg.Counter("dnsctx_dnsserver_encode_errors_total",
			"Responses the DNS codec could not encode."),
		responses: reg.CounterVec("dnsctx_dnsserver_responses_total",
			"Responses sent, by RCode.", "rcode"),
		byRCode: make(map[dnswire.RCode]*obs.Counter),
	}
}

// response returns the cached counter for rc, resolving it on first use.
// Callers hold the server mutex.
func (m *srvMetrics) response(rc dnswire.RCode) *obs.Counter {
	c, ok := m.byRCode[rc]
	if !ok {
		c = m.responses.With(rc.String())
		m.byRCode[rc] = c
	}
	return c
}

// total sums every bucket. Callers hold the server mutex.
func (m *srvMetrics) total() uint64 {
	n := m.decodeErrs.Value() + m.dropped.Value() + m.encodeErrs.Value()
	for _, c := range m.byRCode {
		n += c.Value()
	}
	return n
}
