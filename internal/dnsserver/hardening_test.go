package dnsserver

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"dnscontext/internal/dnswire"
)

// TestPanicRecovery: a panicking handler costs the query a SERVFAIL,
// never the server.
func TestPanicRecovery(t *testing.T) {
	srv := NewServer(HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		if strings.HasPrefix(q.Questions[0].Name, "panic.") {
			panic("handler exploded")
		}
		return dnswire.NewResponse(q, dnswire.RCodeNoError)
	}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	defer srv.Close()

	c := &Client{Server: addr.String(), Timeout: time.Second}
	resp, err := c.Query("panic.example.com", dnswire.TypeA)
	if err != nil {
		t.Fatalf("panicking handler produced no response: %v", err)
	}
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("rcode %v, want SERVFAIL", resp.Header.RCode)
	}
	if srv.Panics() != 1 {
		t.Fatalf("panics %d, want 1", srv.Panics())
	}
	// The server is still alive and answering.
	resp, err = c.Query("fine.example.com", dnswire.TypeA)
	if err != nil || resp.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("server dead after panic: resp=%v err=%v", resp, err)
	}
}

// TestRateLimitRefused: over-budget clients get REFUSED responses, and
// the refusals are counted.
func TestRateLimitRefused(t *testing.T) {
	srv := NewServerWith(HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		return dnswire.NewResponse(q, dnswire.RCodeNoError)
	}), Config{RateLimit: &RateLimitConfig{PerSecond: 0.01, Burst: 2}}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	defer srv.Close()

	c := &Client{Server: addr.String(), Timeout: time.Second}
	var ok, refused int
	for i := 0; i < 5; i++ {
		resp, err := c.Query("x.com", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		switch resp.Header.RCode {
		case dnswire.RCodeNoError:
			ok++
		case dnswire.RCodeRefused:
			refused++
		default:
			t.Fatalf("unexpected rcode %v", resp.Header.RCode)
		}
	}
	if ok != 2 || refused != 3 {
		t.Fatalf("ok=%d refused=%d, want burst of 2 then 3 refusals", ok, refused)
	}
	if srv.Refused() != 3 {
		t.Fatalf("refused counter %d, want 3", srv.Refused())
	}
	if got := srv.Responses(dnswire.RCodeRefused); got != 3 {
		t.Fatalf("REFUSED responses %d, want 3", got)
	}
}

// TestOverloadShedding: with a tiny queue and a blocked worker, excess
// datagrams are shed instead of stalling the socket.
func TestOverloadShedding(t *testing.T) {
	release := make(chan struct{})
	srv := NewServerWith(HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		<-release
		return dnswire.NewResponse(q, dnswire.RCodeNoError)
	}), Config{Workers: 1, QueueDepth: 1}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	defer func() {
		close(release)
		srv.Close()
	}()

	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(1, "flood.example.com", dnswire.TypeA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// 1 in the worker + 1 queued; the rest must shed once the reader
	// catches up.
	for i := 0; i < 50; i++ {
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Shed() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.Shed() == 0 {
		t.Fatal("no datagrams shed despite full queue")
	}
}

// TestShutdownDrainsInFlight: Shutdown stops reading but completes the
// query a worker is already holding before closing the socket.
func TestShutdownDrainsInFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := NewServer(HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		close(entered)
		<-release
		return dnswire.NewResponse(q, dnswire.RCodeNoError)
	}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}

	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(7, "inflight.example.com", dnswire.TypeA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must be waiting on the in-flight query, not returning.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) before the in-flight query finished", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The drained query's response made it out before the close.
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("no response for the drained query: %v", err)
	}
	resp, err := dnswire.Decode(buf[:n])
	if err != nil || resp.Header.ID != 7 || resp.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("drained response wrong: %+v err=%v", resp, err)
	}
	// Close after Shutdown stays idempotent.
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after Shutdown: %v", err)
	}
}

// TestShutdownContextExpiry: a stuck handler cannot hold Shutdown
// hostage past its context.
func TestShutdownContextExpiry(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	srv := NewServer(HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		close(entered)
		<-release
		return nil
	}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	defer func() {
		close(release)
		srv.Close()
	}()

	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(9, "stuck.example.com", dnswire.TypeA)
	wire, _ := q.Encode()
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
}

// TestCloseBeforeStart: tearing down a never-started server is a no-op.
func TestCloseBeforeStart(t *testing.T) {
	srv := NewServer(HandlerFunc(func(q *dnswire.Message) *dnswire.Message { return nil }))
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCloseTwiceReturnsSameResult pins the satellite fix: a second
// Close must not re-close the socket or invent an error.
func TestCloseTwiceReturnsSameResult(t *testing.T) {
	srv, _, _ := startZoneServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// And concurrently, for the race detector's benefit.
	srv2, _, _ := startZoneServer(t)
	done := make(chan error, 2)
	go func() { done <- srv2.Close() }()
	go func() { done <- srv2.Shutdown(context.Background()) }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent teardown: %v", err)
		}
	}
}
