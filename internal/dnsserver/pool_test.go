package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"dnscontext/internal/dnswire"
)

func TestPoolQueryOverRealUDP(t *testing.T) {
	_, zones, addr := startZoneServer(t)
	pool, err := NewClientPool(addr, ClientPoolConfig{Sockets: 2, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	name := zones.ByRank(0)
	resp, err := pool.Query(context.Background(), name.Host, dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNoError || !resp.Header.Authoritative {
		t.Fatalf("header %+v", resp.Header)
	}
	addrs := resp.AnswerAddrs()
	if len(addrs) != len(name.Addrs) || addrs[0] != name.Addrs[0] {
		t.Fatalf("answers %v, want %v", addrs, name.Addrs)
	}
}

func TestPoolConcurrentQueries(t *testing.T) {
	_, zones, addr := startZoneServer(t)
	pool, err := NewClientPool(addr, ClientPoolConfig{Sockets: 3, Timeout: 2 * time.Second, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Many goroutines through the shared sockets: every query must come
	// back matched to its own question despite the demux sharing IDs.
	const n = 64
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			name := zones.ByRank(i % 10)
			resp, err := pool.Query(context.Background(), name.Host, dnswire.TypeA)
			if err == nil && len(resp.Questions) > 0 &&
				dnswire.CanonicalName(resp.Questions[0].Name) != dnswire.CanonicalName(name.Host) {
				err = fmt.Errorf("answer for %q, asked %q", resp.Questions[0].Name, name.Host)
			}
			if err == nil && len(resp.AnswerAddrs()) == 0 {
				err = fmt.Errorf("no answers for %s", name.Host)
			}
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := pool.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
}

func TestPoolTimeout(t *testing.T) {
	// A bound-but-silent socket: the pool must walk its retry ladder and
	// give up with ErrTimeout, not hang.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	defer conn.Close()
	pool, err := NewClientPool(conn.LocalAddr().String(), ClientPoolConfig{
		Sockets: 1, Timeout: 50 * time.Millisecond, Retries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	start := time.Now()
	_, err = pool.Query(context.Background(), "silent.example", dnswire.TypeA)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Fatalf("gave up after %v, before the ladder ran", elapsed)
	}
}

func TestPoolContextCancel(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	defer conn.Close()
	pool, err := NewClientPool(conn.LocalAddr().String(), ClientPoolConfig{
		Sockets: 1, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := pool.Query(ctx, "silent.example", dnswire.TypeA); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPoolCloseFailsWaiters(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	defer conn.Close()
	pool, err := NewClientPool(conn.LocalAddr().String(), ClientPoolConfig{
		Sockets: 2, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			_, err := pool.Query(context.Background(), "silent.example", dnswire.TypeA)
			errs <- err
		}()
	}
	time.Sleep(30 * time.Millisecond) // let the queries park
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("waiter err = %v, want ErrPoolClosed", err)
		}
	}
	// Close is idempotent and queries after Close fail fast.
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Query(context.Background(), "x.example", dnswire.TypeA); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("post-close err = %v, want ErrPoolClosed", err)
	}
}

// TestPoolQuarantinesAbandonedIDs: a message ID whose waiter timed out
// must not be handed to a new query while its late response could still
// arrive — otherwise the demux delivers the old answer to the new
// waiter (spurious ErrMismatch, or a stale answer for a retry of the
// same name).
func TestPoolQuarantinesAbandonedIDs(t *testing.T) {
	s := &poolSock{pending: make(map[uint16]*poolCall)}
	id, _, err := s.register()
	if err != nil {
		t.Fatal(err)
	}
	s.abandon(id)

	// Steer the allocator straight at the quarantined slot: it must walk
	// past it, not reuse it.
	s.nextID = id - 1
	id2, _, err := s.register()
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatal("abandoned ID reused while quarantined")
	}
	s.unregister(id2)

	// Once the grace period has elapsed, the slot is reclaimed in place.
	s.mu.Lock()
	s.pending[id].abandoned = time.Now().Add(-idQuarantine - time.Second).UnixNano()
	s.mu.Unlock()
	s.nextID = id - 1
	id3, call, err := s.register()
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id {
		t.Fatalf("expired slot not reclaimed: got %d, want %d", id3, id)
	}

	// The late response arriving ends the quarantine early: the reader
	// deletes on delivery, and the parked cap-1 channel never blocks it.
	s.abandon(id3)
	s.mu.Lock()
	late := s.pending[id3]
	delete(s.pending, id3)
	s.mu.Unlock()
	if late != call {
		t.Fatal("pending table lost the abandoned call")
	}
	late.ch <- &dnswire.Message{}
	s.nextID = id3 - 1
	id4, _, err := s.register()
	if err != nil {
		t.Fatal(err)
	}
	if id4 != id3 {
		t.Fatalf("delivered slot not immediately reusable: got %d, want %d", id4, id3)
	}
}

func TestPoolNoGoroutineLeak(t *testing.T) {
	_, zones, addr := startZoneServer(t)
	before := runtime.NumGoroutine()

	pool, err := NewClientPool(addr, ClientPoolConfig{Sockets: 4, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = pool.Query(context.Background(), zones.ByRank(i%10).Host, dnswire.TypeA)
		}()
	}
	wg.Wait()
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}

	// The reader goroutines must be gone once Close returns; allow the
	// runtime a beat to reap exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines %d, baseline %d — pool leaked readers", runtime.NumGoroutine(), before)
}

// TestAttemptTimeoutLadder pins the fixed retry ladder's arithmetic,
// including the edges that historically invite off-by-one clamps: the
// product MaxTimeout·Backoff (the cap must bind, not the product),
// MaxTimeout below Timeout (every attempt, including the first, waits
// only MaxTimeout), and Backoff exactly 1.0 (a flat ladder, no drift).
func TestAttemptTimeoutLadder(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name string
		cfg  ClientPoolConfig
		want []time.Duration // indexed by attempt
	}{
		{
			name: "plain exponential",
			cfg:  ClientPoolConfig{Timeout: ms(100), Backoff: 2},
			want: []time.Duration{ms(100), ms(200), ms(400), ms(800)},
		},
		{
			name: "cap binds mid-ladder, not MaxTimeout×Backoff",
			cfg:  ClientPoolConfig{Timeout: ms(100), Backoff: 3, MaxTimeout: ms(250)},
			want: []time.Duration{ms(100), ms(250), ms(250), ms(250)},
		},
		{
			name: "cap exactly hit stays at cap",
			cfg:  ClientPoolConfig{Timeout: ms(100), Backoff: 2, MaxTimeout: ms(200)},
			want: []time.Duration{ms(100), ms(200), ms(200)},
		},
		{
			name: "MaxTimeout below Timeout caps the first attempt too",
			cfg:  ClientPoolConfig{Timeout: ms(500), Backoff: 2, MaxTimeout: ms(200)},
			want: []time.Duration{ms(200), ms(200), ms(200)},
		},
		{
			name: "backoff exactly 1.0 is flat",
			cfg:  ClientPoolConfig{Timeout: ms(100), Backoff: 1.0, MaxTimeout: ms(800)},
			want: []time.Duration{ms(100), ms(100), ms(100), ms(100)},
		},
		{
			name: "backoff below 1 is defaulted to 1, not shrinking",
			cfg:  ClientPoolConfig{Timeout: ms(100), Backoff: 0.5},
			want: []time.Duration{ms(100), ms(100), ms(100)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg.withDefaults()
			for attempt, want := range tc.want {
				if got := cfg.attemptTimeout(attempt); got != want {
					t.Errorf("attempt %d: %v, want %v", attempt, got, want)
				}
			}
		})
	}
}

// TestAdaptiveTimeoutClamps pins the RTO-driven ladder: factor is
// max(Backoff, 2), the floor is MinTimeout, and the ceiling is
// MaxTimeout (or Timeout when MaxTimeout is unset).
func TestAdaptiveTimeoutClamps(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name    string
		cfg     ClientPoolConfig
		rto     time.Duration
		attempt int
		want    time.Duration
	}{
		{"floor lifts a tiny RTO", ClientPoolConfig{Timeout: ms(1000)}, ms(3), 0, ms(20)},
		{"first attempt is the raw RTO", ClientPoolConfig{Timeout: ms(1000)}, ms(50), 0, ms(50)},
		{"backoff 1 still doubles (factor max(Backoff,2))", ClientPoolConfig{Timeout: ms(1000), Backoff: 1}, ms(50), 1, ms(100)},
		{"backoff 3 beats the default factor", ClientPoolConfig{Timeout: ms(1000), Backoff: 3}, ms(50), 1, ms(150)},
		{"ceiling is Timeout when MaxTimeout unset", ClientPoolConfig{Timeout: ms(300)}, ms(100), 3, ms(300)},
		{"ceiling is MaxTimeout when set", ClientPoolConfig{Timeout: ms(300), MaxTimeout: ms(150)}, ms(100), 3, ms(150)},
		{"RTO above the ceiling is clamped down", ClientPoolConfig{Timeout: ms(200)}, ms(900), 0, ms(200)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg.withDefaults()
			if got := cfg.adaptiveTimeout(tc.rto, tc.attempt); got != tc.want {
				t.Errorf("adaptiveTimeout(%v, %d) = %v, want %v", tc.rto, tc.attempt, got, tc.want)
			}
		})
	}
}

// TestPoolAbandonedProbeReleased: a half-open probe admission abandoned
// without an outcome (here: ctx cancellation mid-flight; the same
// discipline covers hedge race losses and pool close) must return its
// slot. A leaked slot would pin the breaker half-open — allow has no
// other escape within OpenFor — turning every later query into
// ErrCircuitOpen after it burns its waiting budget.
func TestPoolAbandonedProbeReleased(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	defer conn.Close()
	// OpenFor far beyond the test horizon: the allow() backstop cannot
	// rescue a leaked slot here, so this fails if any abandon path skips
	// release.
	pool, err := NewClientPool(conn.LocalAddr().String(), ClientPoolConfig{
		Sockets: 1, Timeout: 100 * time.Millisecond, Retries: 0,
		Breaker: &BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour, HalfOpenProbes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Trip the breaker, then rewind its clock so probing may begin now.
	brk := pool.ups[0].brk
	brk.failure(false, time.Now().Add(-2*time.Hour))
	if got := brk.current(); got != breakerOpen {
		t.Fatalf("state = %v, want open", got)
	}

	// A probe is admitted, then abandoned mid-flight by cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := pool.Query(ctx, "probe.example", dnswire.TypeA); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := brk.current(); got != breakerHalfOpen {
		t.Fatalf("state after abandoned probe = %v, want half-open", got)
	}

	// The slot must be free again: the next query is admitted as a probe
	// and times out against the silent server — not ErrCircuitOpen.
	if _, err := pool.Query(context.Background(), "next.example", dnswire.TypeA); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err after abandoned probe = %v, want ErrTimeout", err)
	}
}
