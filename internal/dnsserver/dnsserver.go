// Package dnsserver runs the dnswire codec over real UDP sockets: a
// minimal authoritative server that can serve a zonedb namespace on
// localhost, and a stub client with retry/timeout handling. It exists to
// prove the wire codec end to end over an actual network stack (not just
// in-memory buffers) and to let examples and tools resolve against the
// synthetic namespace with standard DNS tooling semantics.
package dnsserver

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dnscontext/internal/dnswire"
	"dnscontext/internal/obs"
	"dnscontext/internal/zonedb"
)

// Handler produces a response message for one query. Implementations
// must not retain msg.
type Handler interface {
	Handle(msg *dnswire.Message) *dnswire.Message
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(*dnswire.Message) *dnswire.Message

// Handle calls f.
func (f HandlerFunc) Handle(m *dnswire.Message) *dnswire.Message { return f(m) }

// Server is a UDP DNS server.
type Server struct {
	handler Handler

	mu     sync.Mutex
	conn   *net.UDPConn
	closed bool
	wg     sync.WaitGroup

	// reg backs the per-RCode response counts and error tallies; metrics
	// fans activity into it. Every received datagram lands in exactly one
	// bucket, so Queries() — the sum — keeps the old coarse counter's
	// meaning.
	reg     *obs.Registry
	metrics srvMetrics
}

// NewServer returns a server that answers with h, counting into a
// private registry.
func NewServer(h Handler) *Server {
	return NewServerObserved(h, nil)
}

// NewServerObserved returns a server that answers with h and records its
// activity in reg. A nil reg falls back to a private registry — the
// counters always exist, because Queries() is derived from them.
func NewServerObserved(h Handler, reg *obs.Registry) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Server{handler: h, reg: reg, metrics: newSrvMetrics(reg)}
}

// Metrics returns the registry the server counts into.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Start binds addr (e.g. "127.0.0.1:0") and serves until Close. It
// returns the bound address, useful with port 0.
func (s *Server) Start(addr string) (*net.UDPAddr, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()

	s.wg.Add(1)
	go s.serve(conn)
	return conn.LocalAddr().(*net.UDPAddr), nil
}

func (s *Server) serve(conn *net.UDPConn) {
	defer s.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, peer, err := conn.ReadFromUDP(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		msg, err := dnswire.Decode(buf[:n])
		if err != nil {
			s.metrics.decodeErrs.Inc()
			continue // drop garbage, as real servers do
		}
		if msg.Header.Response || len(msg.Questions) == 0 {
			s.metrics.dropped.Inc()
			continue
		}
		resp := s.handler.Handle(msg)
		if resp == nil {
			resp = dnswire.NewResponse(msg, dnswire.RCodeServFail)
		}
		out, err := resp.Encode()
		if err != nil {
			s.metrics.encodeErrs.Inc()
			continue
		}
		s.mu.Lock()
		s.metrics.response(resp.Header.RCode).Inc()
		s.mu.Unlock()
		_, _ = conn.WriteToUDP(out, peer)
	}
}

// Queries returns the number of datagrams received so far: responses
// sent plus decode errors, drops, and encode failures.
func (s *Server) Queries() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics.total()
}

// Responses returns the number of responses sent with the given RCode.
func (s *Server) Responses(rc dnswire.RCode) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics.response(rc).Value()
}

// DecodeErrors returns the number of undecodable datagrams received.
func (s *Server) DecodeErrors() uint64 { return s.metrics.decodeErrs.Value() }

// Close stops the server and waits for the serve loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conn := s.conn
	s.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	s.wg.Wait()
	return err
}

// ZoneHandler serves A queries from a zonedb namespace, answering
// NXDOMAIN for unknown names and NOTIMP for unsupported opcodes. AAAA
// queries for known names return empty NOERROR (the namespace is
// v4-only), matching the generator's dual-stack behavior.
func ZoneHandler(zones *zonedb.DB) Handler {
	return HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		if q.Header.Opcode != dnswire.OpcodeQuery {
			return dnswire.NewResponse(q, dnswire.RCodeNotImp)
		}
		question := q.Questions[0]
		name := zones.Lookup(dnswire.CanonicalName(question.Name))
		if name == nil {
			return dnswire.NewResponse(q, dnswire.RCodeNXDomain)
		}
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		resp.Header.Authoritative = true
		if question.Type == dnswire.TypeA || question.Type == dnswire.TypeANY {
			ttl := uint32(name.TTL / time.Second)
			for _, addr := range name.Addrs {
				resp.AddAnswerA(question.Name, addr, ttl)
			}
		}
		return resp
	})
}

// Client is a stub resolver speaking plain UDP DNS.
type Client struct {
	// Server is the resolver address ("127.0.0.1:5353").
	Server string
	// Timeout bounds each attempt (default 2 s).
	Timeout time.Duration
	// Retries is the number of additional attempts (default 2).
	Retries int

	mu     sync.Mutex
	nextID uint16
}

// Errors returned by Query.
var (
	ErrTimeout  = errors.New("dnsserver: query timed out")
	ErrMismatch = errors.New("dnsserver: response does not match query")
)

// Query sends one question and returns the decoded response. Responses
// with mismatched IDs are ignored (off-path spoofing hygiene); timeouts
// are retried.
func (c *Client) Query(name string, qtype dnswire.Type) (*dnswire.Message, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	attempts := c.Retries + 1
	if attempts < 1 {
		attempts = 1
	}

	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()

	q := dnswire.NewQuery(id, name, qtype)
	wire, err := q.Encode()
	if err != nil {
		return nil, err
	}

	var lastErr error = ErrTimeout
	for i := 0; i < attempts; i++ {
		resp, err := c.attempt(wire, id, name, timeout)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func (c *Client) attempt(wire []byte, id uint16, name string, timeout time.Duration) (*dnswire.Message, error) {
	conn, err := net.Dial("udp", c.Server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		msg, err := dnswire.Decode(buf[:n])
		if err != nil {
			continue // garbage datagram; keep waiting
		}
		if msg.Header.ID != id || !msg.Header.Response {
			continue // not ours
		}
		if len(msg.Questions) == 0 ||
			dnswire.CanonicalName(msg.Questions[0].Name) != dnswire.CanonicalName(name) {
			return nil, ErrMismatch
		}
		return msg, nil
	}
}
