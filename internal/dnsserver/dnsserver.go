// Package dnsserver runs the dnswire codec over real UDP sockets: a
// minimal authoritative server that can serve a zonedb namespace on
// localhost, and a stub client with retry/timeout handling. It exists to
// prove the wire codec end to end over an actual network stack (not just
// in-memory buffers) and to let examples and tools resolve against the
// synthetic namespace with standard DNS tooling semantics.
//
// The server degrades gracefully rather than dying: queries flow
// through a bounded queue into a worker pool, handler panics are
// recovered into SERVFAIL responses, per-client token buckets answer
// REFUSED under abuse, a full queue sheds load, and Shutdown drains
// in-flight queries before closing the socket. Every degradation path
// is counted through the obs registry.
package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dnscontext/internal/dnswire"
	"dnscontext/internal/obs"
	"dnscontext/internal/zonedb"
)

// Handler produces a response message for one query. Implementations
// must not retain msg.
type Handler interface {
	Handle(msg *dnswire.Message) *dnswire.Message
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(*dnswire.Message) *dnswire.Message

// Handle calls f.
func (f HandlerFunc) Handle(m *dnswire.Message) *dnswire.Message { return f(m) }

// Config parameterizes the server's hardening. The zero value gets
// sensible defaults: 4 workers, a 256-deep queue, no rate limiting.
type Config struct {
	// Workers is the size of the handler pool (default 4).
	Workers int
	// QueueDepth bounds the pending-query queue; datagrams arriving
	// with the queue full are shed (default 256).
	QueueDepth int
	// RateLimit, when non-nil, enables per-client token-bucket rate
	// limiting: over-limit queries are answered REFUSED.
	RateLimit *RateLimitConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c
}

// packet is one received datagram awaiting a worker.
type packet struct {
	data []byte
	peer *net.UDPAddr
}

// Server is a UDP DNS server with a bounded worker pool.
type Server struct {
	handler Handler
	cfg     Config
	limiter *rateLimiter

	mu       sync.Mutex
	conn     *net.UDPConn
	closed   bool // Close called: stop everything
	draining bool // Shutdown called: stop reading, finish the queue
	queue    chan packet

	readerWG sync.WaitGroup
	workerWG sync.WaitGroup

	// TCP listener state (see tcp.go); nil/empty unless StartTCP ran.
	tcpLn    net.Listener
	tcpConns map[net.Conn]struct{}
	tcpWG    sync.WaitGroup

	// closeOnce makes socket teardown idempotent: Close and Shutdown
	// (or two Closes) race safely and agree on the returned error.
	closeOnce sync.Once
	closeErr  error

	// reg backs the per-RCode response counts and degradation tallies;
	// metrics fans activity into it.
	reg     *obs.Registry
	metrics srvMetrics
}

// NewServer returns a server that answers with h, counting into a
// private registry.
func NewServer(h Handler) *Server {
	return NewServerObserved(h, nil)
}

// NewServerObserved returns a server that answers with h and records its
// activity in reg. A nil reg falls back to a private registry — the
// counters always exist, because Queries() is derived from them.
func NewServerObserved(h Handler, reg *obs.Registry) *Server {
	return NewServerWith(h, Config{}, reg)
}

// NewServerWith returns a server with explicit hardening configuration.
// A nil reg falls back to a private registry.
func NewServerWith(h Handler, cfg Config, reg *obs.Registry) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{handler: h, cfg: cfg.withDefaults(), reg: reg, metrics: newSrvMetrics(reg)}
	if cfg.RateLimit != nil {
		s.limiter = newRateLimiter(*cfg.RateLimit)
	}
	return s
}

// Metrics returns the registry the server counts into.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Start binds addr (e.g. "127.0.0.1:0") and serves until Close or
// Shutdown. It returns the bound address, useful with port 0.
func (s *Server) Start(addr string) (*net.UDPAddr, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	// Bulk clients (cmd/dnsscan) burst tens of thousands of queries;
	// a deep kernel buffer absorbs what the reader loop hasn't drained
	// yet, so overload surfaces as a counted queue shed rather than a
	// silent kernel drop. Best-effort: the OS caps it silently.
	_ = conn.SetReadBuffer(4 << 20)
	s.mu.Lock()
	s.conn = conn
	s.queue = make(chan packet, s.cfg.QueueDepth)
	s.mu.Unlock()

	s.readerWG.Add(1)
	go s.read(conn)
	s.workerWG.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker(conn)
	}
	return conn.LocalAddr().(*net.UDPAddr), nil
}

// read is the socket loop: it only reads, copies, and enqueues, so one
// slow handler can never stall ingestion — a full queue sheds instead.
// Closing the queue when the loop exits is what lets workers drain and
// then stop.
func (s *Server) read(conn *net.UDPConn) {
	defer s.readerWG.Done()
	defer close(s.queue)
	buf := make([]byte, 4096)
	for {
		n, peer, err := conn.ReadFromUDP(buf)
		if err != nil {
			s.mu.Lock()
			stop := s.closed || s.draining
			s.mu.Unlock()
			if stop {
				return
			}
			continue
		}
		s.metrics.received.Inc()
		data := make([]byte, n)
		copy(data, buf[:n])
		select {
		case s.queue <- packet{data: data, peer: peer}:
		default:
			s.metrics.shed.Inc() // overload: drop rather than block the socket
		}
	}
}

func (s *Server) worker(conn *net.UDPConn) {
	defer s.workerWG.Done()
	for pkt := range s.queue {
		s.handlePacket(conn, pkt)
	}
}

func (s *Server) handlePacket(conn *net.UDPConn, pkt packet) {
	msg, err := dnswire.Decode(pkt.data)
	if err != nil {
		s.metrics.decodeErrs.Inc()
		return // drop garbage, as real servers do
	}
	if msg.Header.Response || len(msg.Questions) == 0 {
		s.metrics.dropped.Inc()
		return
	}
	if s.limiter != nil && !s.limiter.allow(pkt.peer.IP, time.Now()) {
		s.metrics.refused.Inc()
		s.respond(conn, dnswire.NewResponse(msg, dnswire.RCodeRefused), pkt.peer)
		return
	}
	resp := s.invoke(msg)
	if resp == nil {
		resp = dnswire.NewResponse(msg, dnswire.RCodeServFail)
	}
	s.respond(conn, resp, pkt.peer)
}

// invoke runs the handler with panic recovery: a panicking handler
// costs that query a SERVFAIL, never the server.
func (s *Server) invoke(msg *dnswire.Message) (resp *dnswire.Message) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panics.Inc()
			resp = dnswire.NewResponse(msg, dnswire.RCodeServFail)
		}
	}()
	return s.handler.Handle(msg)
}

func (s *Server) respond(conn *net.UDPConn, resp *dnswire.Message, peer *net.UDPAddr) {
	out, err := resp.Encode()
	if err != nil {
		s.metrics.encodeErrs.Inc()
		return
	}
	s.metrics.response(resp.Header.RCode).Inc()
	_, _ = conn.WriteToUDP(out, peer)
}

// Queries returns the number of datagrams received so far.
func (s *Server) Queries() uint64 { return s.metrics.received.Value() }

// Responses returns the number of responses sent with the given RCode.
func (s *Server) Responses(rc dnswire.RCode) uint64 {
	return s.metrics.response(rc).Value()
}

// DecodeErrors returns the number of undecodable datagrams received.
func (s *Server) DecodeErrors() uint64 { return s.metrics.decodeErrs.Value() }

// Panics returns the number of handler panics recovered.
func (s *Server) Panics() uint64 { return s.metrics.panics.Value() }

// Refused returns the number of queries rate-limited to REFUSED.
func (s *Server) Refused() uint64 { return s.metrics.refused.Value() }

// Shed returns the number of datagrams dropped on a full queue.
func (s *Server) Shed() uint64 { return s.metrics.shed.Value() }

// Shutdown gracefully stops the server: it stops reading new
// datagrams, drains queries already queued, then closes the socket. If
// ctx expires first the socket is closed immediately and ctx's error
// returned; queued work may be abandoned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	conn := s.conn
	s.mu.Unlock()
	s.closeTCP()
	if conn == nil {
		return nil
	}
	// Unblock the reader; with draining set, its next read error exits
	// the loop, which closes the queue, which lets workers drain out.
	_ = conn.SetReadDeadline(time.Now())

	done := make(chan struct{})
	go func() {
		s.readerWG.Wait()
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return s.closeConn()
	case <-ctx.Done():
		_ = s.closeConn()
		return ctx.Err()
	}
}

// Close stops the server immediately and waits for the reader and
// workers to exit. Safe to call multiple times and concurrently with
// Shutdown; repeated calls return the first close's error.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conn := s.conn
	s.mu.Unlock()
	s.closeTCP()
	if conn == nil {
		return nil
	}
	err := s.closeConn()
	s.readerWG.Wait()
	s.workerWG.Wait()
	return err
}

// closeConn closes the socket exactly once, remembering the error.
func (s *Server) closeConn() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		conn := s.conn
		s.mu.Unlock()
		if conn != nil {
			s.closeErr = conn.Close()
		}
	})
	return s.closeErr
}

// ZoneHandler serves A queries from a zonedb namespace, answering
// NXDOMAIN for unknown names and NOTIMP for unsupported opcodes. AAAA
// queries for known names return empty NOERROR (the namespace is
// v4-only), matching the generator's dual-stack behavior.
func ZoneHandler(zones *zonedb.DB) Handler {
	return HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		if q.Header.Opcode != dnswire.OpcodeQuery {
			return dnswire.NewResponse(q, dnswire.RCodeNotImp)
		}
		question := q.Questions[0]
		name := zones.Lookup(dnswire.CanonicalName(question.Name))
		if name == nil {
			return dnswire.NewResponse(q, dnswire.RCodeNXDomain)
		}
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		resp.Header.Authoritative = true
		if question.Type == dnswire.TypeA || question.Type == dnswire.TypeANY {
			ttl := uint32(name.TTL / time.Second)
			for _, addr := range name.Addrs {
				resp.AddAnswerA(question.Name, addr, ttl)
			}
		}
		return resp
	})
}

// Client is a stub resolver speaking plain UDP DNS.
type Client struct {
	// Server is the resolver address ("127.0.0.1:5353").
	Server string
	// Timeout bounds each attempt (default 2 s).
	Timeout time.Duration
	// Retries is the number of additional attempts (default 2).
	Retries int

	mu     sync.Mutex
	nextID uint16
}

// Errors returned by Query.
var (
	ErrTimeout  = errors.New("dnsserver: query timed out")
	ErrMismatch = errors.New("dnsserver: response does not match query")
)

// Query sends one question and returns the decoded response. Responses
// with mismatched IDs are ignored (off-path spoofing hygiene); timeouts
// are retried.
func (c *Client) Query(name string, qtype dnswire.Type) (*dnswire.Message, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	attempts := c.Retries + 1
	if attempts < 1 {
		attempts = 1
	}

	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()

	q := dnswire.NewQuery(id, name, qtype)
	wire, err := q.Encode()
	if err != nil {
		return nil, err
	}

	var lastErr error = ErrTimeout
	for i := 0; i < attempts; i++ {
		resp, err := c.attempt(wire, id, name, timeout)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func (c *Client) attempt(wire []byte, id uint16, name string, timeout time.Duration) (*dnswire.Message, error) {
	conn, err := net.Dial("udp", c.Server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		msg, err := dnswire.Decode(buf[:n])
		if err != nil {
			continue // garbage datagram; keep waiting
		}
		if msg.Header.ID != id || !msg.Header.Response {
			continue // not ours
		}
		if len(msg.Questions) == 0 ||
			dnswire.CanonicalName(msg.Questions[0].Name) != dnswire.CanonicalName(name) {
			return nil, ErrMismatch
		}
		return msg, nil
	}
}
