package dnsserver

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"dnscontext/internal/dnswire"
	"dnscontext/internal/obs"
	"dnscontext/internal/stats"
	"dnscontext/internal/zonedb"
)

func startZoneServer(t *testing.T) (*Server, *zonedb.DB, string) {
	t.Helper()
	zones, err := zonedb.New(zonedb.Config{
		NumNames: 50, ZipfExponent: 1, CDNFraction: 0.3, CDNPoolSize: 5,
	}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ZoneHandler(zones))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, zones, addr.String()
}

func TestQueryOverRealUDP(t *testing.T) {
	_, zones, addr := startZoneServer(t)
	c := &Client{Server: addr, Timeout: time.Second}

	name := zones.ByRank(0)
	resp, err := c.Query(name.Host, dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNoError || !resp.Header.Authoritative {
		t.Fatalf("header %+v", resp.Header)
	}
	addrs := resp.AnswerAddrs()
	if len(addrs) != len(name.Addrs) || addrs[0] != name.Addrs[0] {
		t.Fatalf("answers %v, want %v", addrs, name.Addrs)
	}
	wantTTL := uint32(name.TTL / time.Second)
	if resp.Answers[0].TTL != wantTTL {
		t.Fatalf("TTL %d, want %d", resp.Answers[0].TTL, wantTTL)
	}
}

func TestNXDomainOverRealUDP(t *testing.T) {
	_, _, addr := startZoneServer(t)
	c := &Client{Server: addr, Timeout: time.Second}
	resp, err := c.Query("definitely.not.here", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNXDomain || len(resp.Answers) != 0 {
		t.Fatalf("resp %+v", resp)
	}
}

func TestAAAAEmptyNoError(t *testing.T) {
	_, zones, addr := startZoneServer(t)
	c := &Client{Server: addr, Timeout: time.Second}
	resp, err := c.Query(zones.ByRank(0).Host, dnswire.TypeAAAA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNoError || len(resp.Answers) != 0 {
		t.Fatalf("AAAA resp %+v", resp)
	}
}

func TestServerSurvivesGarbage(t *testing.T) {
	srv, zones, addr := startZoneServer(t)
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The server must still answer after swallowing garbage.
	c := &Client{Server: addr, Timeout: time.Second}
	if _, err := c.Query(zones.ByRank(1).Host, dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if srv.Queries() < 2 {
		t.Fatalf("queries %d", srv.Queries())
	}
}

func TestConcurrentClients(t *testing.T) {
	_, zones, addr := startZoneServer(t)
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			c := &Client{Server: addr, Timeout: 2 * time.Second}
			name := zones.ByRank(i % 10)
			resp, err := c.Query(name.Host, dnswire.TypeA)
			if err == nil && len(resp.AnswerAddrs()) == 0 {
				err = fmt.Errorf("no answers for %s", name.Host)
			}
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestClientTimeout(t *testing.T) {
	// A bound-but-silent socket: the client must time out, not hang.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	defer conn.Close()
	c := &Client{Server: conn.LocalAddr().String(), Timeout: 150 * time.Millisecond, Retries: 1}
	start := time.Now()
	_, err = c.Query("x.com", dnswire.TypeA)
	if err == nil {
		t.Fatal("silent server answered?")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestHandlerNilMeansServFail(t *testing.T) {
	srv := NewServer(HandlerFunc(func(*dnswire.Message) *dnswire.Message { return nil }))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	defer srv.Close()
	c := &Client{Server: addr.String(), Timeout: time.Second}
	resp, err := c.Query("x.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("rcode %v", resp.Header.RCode)
	}
}

func TestPerRCodeCountsOverRealUDP(t *testing.T) {
	srv, zones, addr := startZoneServer(t)
	c := &Client{Server: addr, Timeout: time.Second}

	// Two NOERROR answers, one NXDOMAIN, and one undecodable datagram.
	for i := 0; i < 2; i++ {
		if _, err := c.Query(zones.ByRank(i).Host, dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Query("definitely.not.here", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0xba, 0xad}); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The garbage datagram carries no response, so wait until the decode
	// error is visible rather than racing the serve loop.
	deadline := time.Now().Add(2 * time.Second)
	for srv.DecodeErrors() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	if got := srv.Responses(dnswire.RCodeNoError); got != 2 {
		t.Fatalf("NOERROR responses %d, want 2", got)
	}
	if got := srv.Responses(dnswire.RCodeNXDomain); got != 1 {
		t.Fatalf("NXDOMAIN responses %d, want 1", got)
	}
	if got := srv.DecodeErrors(); got != 1 {
		t.Fatalf("decode errors %d, want 1", got)
	}
	if got, want := srv.Queries(), uint64(4); got != want {
		t.Fatalf("queries %d, want %d", got, want)
	}

	// The same numbers must surface through the registry snapshot, with
	// the rcode label carrying the mnemonic.
	var noerr, nx uint64
	snap := srv.Metrics().Snapshot()
	for _, fam := range snap.Families {
		if fam.Name != "dnsctx_dnsserver_responses_total" {
			continue
		}
		for _, m := range fam.Metrics {
			switch m.Labels[0].Value {
			case "NOERROR":
				noerr = uint64(m.Value)
			case "NXDOMAIN":
				nx = uint64(m.Value)
			}
		}
	}
	if noerr != 2 || nx != 1 {
		t.Fatalf("snapshot NOERROR=%d NXDOMAIN=%d, want 2/1", noerr, nx)
	}
}

func TestMetricsSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServerObserved(HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		return dnswire.NewResponse(q, dnswire.RCodeRefused)
	}), reg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	defer srv.Close()
	if srv.Metrics() != reg {
		t.Fatal("server did not adopt the provided registry")
	}
	c := &Client{Server: addr.String(), Timeout: time.Second}
	if _, err := c.Query("x.com", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if got := srv.Responses(dnswire.RCodeRefused); got != 1 {
		t.Fatalf("REFUSED responses %d, want 1", got)
	}
}

func TestCloseIdempotentAndUnblocks(t *testing.T) {
	srv, _, _ := startZoneServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err == nil || errors.Is(err, net.ErrClosed) {
		// Double close returns the underlying close error; both shapes
		// are acceptable, the point is it must not hang or panic.
		_ = err
	}
}
