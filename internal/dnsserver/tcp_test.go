package dnsserver

import (
	"errors"
	"net"
	"testing"
	"time"

	"dnscontext/internal/dnswire"
)

func startZoneServerTCP(t *testing.T) (*Server, string, string) {
	t.Helper()
	srv, zones, _ := startZoneServer(t)
	addr, err := srv.StartTCP("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback TCP: %v", err)
	}
	return srv, zones.ByRank(0).Host, addr.String()
}

func TestQueryOverRealTCP(t *testing.T) {
	_, host, addr := startZoneServerTCP(t)
	c := &Client{Server: addr, Timeout: time.Second}

	resp, err := c.QueryTCP(host, dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %v, want NOERROR", resp.Header.RCode)
	}
	if len(resp.Answers) == 0 {
		t.Fatal("no answers over TCP")
	}

	if _, err := c.QueryTCP("no-such-name.invalid", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
}

// TestTCPPersistentConnection drives several queries down one connection
// by hand: RFC 7766 persistence means the server must answer each frame
// in order without closing between them.
func TestTCPPersistentConnection(t *testing.T) {
	_, host, addr := startZoneServerTCP(t)
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))

	for id := uint16(1); id <= 3; id++ {
		q := dnswire.NewQuery(id, host, dnswire.TypeA)
		wire, err := q.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := dnswire.WriteTCPFrame(conn, wire); err != nil {
			t.Fatalf("query %d: %v", id, err)
		}
		frame, err := dnswire.ReadTCPFrame(conn)
		if err != nil {
			t.Fatalf("query %d: connection did not persist: %v", id, err)
		}
		resp, err := dnswire.Decode(frame)
		if err != nil {
			t.Fatalf("query %d: %v", id, err)
		}
		if resp.Header.ID != id {
			t.Fatalf("query %d: response ID %d", id, resp.Header.ID)
		}
	}
}

// TestClientDistinguishesTimeoutFromReset is the socket-level proof of
// the failure-taxonomy split the resolver model counts (datagram-style
// silence vs stream reset). A server that accepts and stays silent must
// yield ErrTimeout; a server that kills the connection mid-exchange must
// yield ErrReset.
func TestClientDistinguishesTimeoutFromReset(t *testing.T) {
	// Silent server: accepts, reads nothing, answers nothing.
	silent, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback TCP: %v", err)
	}
	defer silent.Close()
	go func() {
		for {
			conn, err := silent.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open until the listener dies
		}
	}()

	c := &Client{Server: silent.Addr().String(), Timeout: 50 * time.Millisecond, Retries: 0}
	if _, err := c.QueryTCP("example.com", dnswire.TypeA); !errors.Is(err, ErrTimeout) {
		t.Fatalf("silent server: got %v, want ErrTimeout", err)
	}

	// Resetting server: accepts, then closes as soon as the query frame
	// arrives — mid-exchange from the client's point of view.
	reset, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer reset.Close()
	go func() {
		for {
			conn, err := reset.Accept()
			if err != nil {
				return
			}
			_, _ = dnswire.ReadTCPFrame(conn)
			conn.Close()
		}
	}()

	c = &Client{Server: reset.Addr().String(), Timeout: time.Second, Retries: 2}
	if _, err := c.QueryTCP("example.com", dnswire.TypeA); !errors.Is(err, ErrReset) {
		t.Fatalf("resetting server: got %v, want ErrReset", err)
	}
}

// TestTCPShutdownClosesConnections: teardown must unstick a client
// blocked on a persistent connection rather than leak the goroutine.
func TestTCPShutdownClosesConnections(t *testing.T) {
	srv, _, addr := startZoneServerTCP(t)
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	done := make(chan error, 1)
	go func() {
		_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
		_, err := dnswire.ReadTCPFrame(conn)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the server register the conn
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("client still blocked after Close")
	}
}
