package dnsserver

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"dnscontext/internal/dnswire"
)

// DNS-over-TCP (RFC 7766): the same handler, limiter, and metrics as the
// UDP path, behind a length-prefixed stream. Connections are persistent —
// a client may send many queries on one connection; the server answers
// each in order and closes only on client close, read error, or server
// teardown.

// StartTCP binds addr as a TCP listener and serves length-prefixed DNS
// until Close or Shutdown. It can run alongside Start on the same
// Server; both share the handler, rate limiter, and counters. Returns
// the bound address (useful with port 0).
func (s *Server) StartTCP(addr string) (*net.TCPAddr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	s.mu.Lock()
	s.tcpLn = ln
	if s.tcpConns == nil {
		s.tcpConns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()

	s.tcpWG.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().(*net.TCPAddr), nil
}

// acceptLoop hands each accepted connection its own goroutine; the
// per-connection read loop is sequential (RFC 7766 allows pipelining,
// but in-order handling keeps responses matched to queries without an
// ID-tracking layer).
func (s *Server) acceptLoop(ln net.Listener) {
	defer s.tcpWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by teardown
		}
		s.mu.Lock()
		stop := s.closed || s.draining
		if !stop {
			s.tcpConns[conn] = struct{}{}
		}
		s.mu.Unlock()
		if stop {
			conn.Close()
			return
		}
		s.tcpWG.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.tcpWG.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.tcpConns, conn)
		s.mu.Unlock()
	}()
	var clientIP net.IP
	if ta, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		clientIP = ta.IP
	}
	for {
		frame, err := dnswire.ReadTCPFrame(conn)
		if err != nil {
			return // client closed (or a broken stream); either way, done
		}
		s.metrics.received.Inc()
		msg, err := dnswire.Decode(frame)
		if err != nil {
			s.metrics.decodeErrs.Inc()
			return // a desynchronized stream cannot recover; drop it
		}
		if msg.Header.Response || len(msg.Questions) == 0 {
			s.metrics.dropped.Inc()
			continue
		}
		var resp *dnswire.Message
		if s.limiter != nil && clientIP != nil && !s.limiter.allow(clientIP, time.Now()) {
			s.metrics.refused.Inc()
			resp = dnswire.NewResponse(msg, dnswire.RCodeRefused)
		} else {
			resp = s.invoke(msg)
			if resp == nil {
				resp = dnswire.NewResponse(msg, dnswire.RCodeServFail)
			}
		}
		out, err := resp.Encode()
		if err != nil {
			s.metrics.encodeErrs.Inc()
			continue
		}
		s.metrics.response(resp.Header.RCode).Inc()
		if err := dnswire.WriteTCPFrame(conn, out); err != nil {
			return
		}
	}
}

// closeTCP tears down the listener and every live connection; called
// from Close and Shutdown.
func (s *Server) closeTCP() {
	s.mu.Lock()
	ln := s.tcpLn
	conns := make([]net.Conn, 0, len(s.tcpConns))
	for c := range s.tcpConns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.tcpWG.Wait()
}

// ErrReset is returned by a TCP-mode Client when the server (or the
// network) kills the connection mid-exchange — the stream analogue of a
// datagram timeout, and the failure the resolver model counts separately
// (see resolver.Recursive.LossCounters).
var ErrReset = errors.New("dnsserver: connection reset mid-exchange")

// QueryTCP sends one question over a fresh TCP connection using RFC 7766
// length-prefixed framing and returns the decoded response. Unlike the
// UDP path, failures are distinguishable, and the retry contract differs
// by failure class:
//
//   - Timeout (ErrTimeout): the server stayed silent — the dial, write,
//     or read deadline expired with the connection otherwise healthy.
//     Indistinguishable from datagram loss, so QueryTCP retries it like
//     the UDP path does, up to Retries additional attempts, each over a
//     fresh connection with a fresh deadline.
//   - Reset (ErrReset): the peer (or the network) killed the connection
//     mid-exchange — EOF, unexpected EOF, or RST after the query was
//     written. The server demonstrably received something and chose to
//     drop the stream, so blind retransmission is wrong; QueryTCP
//     returns ErrReset immediately without consuming the remaining
//     attempts. The caller owns reconnect policy, mirroring the
//     simulated stream transports (resolver.Recursive.LossCounters
//     counts the two classes separately for the same reason).
//
// A response answering the wrong question yields ErrMismatch, also
// without retry. Each attempt opens its own connection; QueryTCP never
// reuses streams — callers needing connection reuse at scale should
// drive the UDP ClientPool or hold their own persistent conns.
func (c *Client) QueryTCP(name string, qtype dnswire.Type) (*dnswire.Message, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	attempts := c.Retries + 1
	if attempts < 1 {
		attempts = 1
	}

	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()

	q := dnswire.NewQuery(id, name, qtype)
	wire, err := q.Encode()
	if err != nil {
		return nil, err
	}

	var lastErr error = ErrTimeout
	for i := 0; i < attempts; i++ {
		resp, err := c.attemptTCP(wire, id, name, timeout)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if errors.Is(err, ErrReset) {
			break
		}
	}
	return nil, lastErr
}

func (c *Client) attemptTCP(wire []byte, id uint16, name string, timeout time.Duration) (*dnswire.Message, error) {
	conn, err := net.DialTimeout("tcp", c.Server, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if err := dnswire.WriteTCPFrame(conn, wire); err != nil {
		return nil, classifyStreamErr(err)
	}
	for {
		frame, err := dnswire.ReadTCPFrame(conn)
		if err != nil {
			return nil, classifyStreamErr(err)
		}
		msg, err := dnswire.Decode(frame)
		if err != nil {
			continue // undecodable frame; keep reading until the deadline
		}
		if msg.Header.ID != id || !msg.Header.Response {
			continue // not ours
		}
		if len(msg.Questions) == 0 ||
			dnswire.CanonicalName(msg.Questions[0].Name) != dnswire.CanonicalName(name) {
			return nil, ErrMismatch
		}
		return msg, nil
	}
}

// classifyStreamErr maps a TCP I/O failure to the client's error
// taxonomy: deadline expiry is a timeout (silence, like UDP loss), while
// EOF / unexpected-EOF / RST mean the peer killed the stream — a reset.
func classifyStreamErr(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ErrTimeout
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrReset
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return ErrReset
	}
	return err
}
