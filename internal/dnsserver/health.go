package dnsserver

import (
	"errors"
	"sync"
	"time"
)

// Per-upstream health machinery for the ClientPool: an RFC 6298 RTT
// estimator driving adaptive per-attempt timeouts, and a circuit breaker
// (closed → open → half-open) that takes a persistently failing upstream
// out of rotation instead of letting every query pay its full retry
// ladder against a dead server.

// ErrCircuitOpen is returned by ClientPool.Query when every configured
// upstream's circuit breaker stayed open for the query's whole waiting
// budget — there was nowhere to send it. Distinct from ErrTimeout (we
// asked and heard silence) and ErrPoolBusy (ID-space exhaustion).
var ErrCircuitOpen = errors.New("dnsserver: all upstreams circuit-open")

// rttEstimator maintains the RFC 6298 SRTT/RTTVAR pair for one upstream.
// Samples come from matched responses only — every attempt transmits
// under a fresh message ID, so a response is unambiguously attributable
// to the attempt that solicited it and Karn's ambiguity (which
// retransmission did this answer?) does not arise.
type rttEstimator struct {
	mu           sync.Mutex
	srtt, rttvar time.Duration
	set          bool
}

// observe folds one RTT sample in and returns the updated pair. First
// sample: SRTT = R, RTTVAR = R/2. After: RTTVAR = 3/4·RTTVAR +
// 1/4·|SRTT−R|, then SRTT = 7/8·SRTT + 1/8·R (RFC 6298 §2, with the
// variance updated before the mean, as specified).
func (e *rttEstimator) observe(rtt time.Duration) (srtt, rttvar time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.set {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.set = true
	} else {
		diff := e.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = (3*e.rttvar + diff) / 4
		e.srtt = (7*e.srtt + rtt) / 8
	}
	return e.srtt, e.rttvar
}

// current returns the estimator state; ok is false before any sample.
func (e *rttEstimator) current() (srtt, rttvar time.Duration, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srtt, e.rttvar, e.set
}

// rto returns the retransmission timeout SRTT + 4·RTTVAR; ok is false
// before any sample (callers fall back to the fixed ladder).
func (e *rttEstimator) rto() (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.set {
		return 0, false
	}
	return e.srtt + 4*e.rttvar, true
}

// BreakerConfig parameterizes one upstream's circuit breaker. The zero
// value gets sensible defaults: trip after 8 consecutive failures, stay
// open 1 s, admit 1 half-open probe at a time.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures (timeouts or
	// send errors; any success resets the count) that trips the breaker
	// open (default 8).
	FailureThreshold int
	// OpenFor is how long a tripped breaker rejects queries before
	// admitting half-open probes (default 1 s).
	OpenFor time.Duration
	// HalfOpenProbes bounds the queries allowed through concurrently
	// while half-open (default 1). A probe success closes the breaker; a
	// probe failure reopens it for another OpenFor.
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 8
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// breakerState is the circuit breaker's position.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String returns the conventional spelling, used as a metric label.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one upstream's circuit breaker. All methods are safe for
// concurrent use.
type breaker struct {
	cfg BreakerConfig
	// onTransition, when non-nil, is called (under the breaker lock) with
	// each new state — the metrics hook.
	onTransition func(breakerState)

	mu        sync.Mutex
	state     breakerState
	fails     int
	reopen    time.Time // while open: when half-open probing may begin
	probes    int       // in-flight half-open probes
	lastProbe time.Time // when the most recent half-open probe was admitted
}

func newBreaker(cfg BreakerConfig, onTransition func(breakerState)) *breaker {
	return &breaker{cfg: cfg.withDefaults(), onTransition: onTransition}
}

func (b *breaker) transition(to breakerState) {
	b.state = to
	if b.onTransition != nil {
		b.onTransition(to)
	}
}

// allow reports whether a query may be sent to this upstream now. probe
// is true when the admission is a half-open probe, whose outcome decides
// the breaker's next state; every probe admission must be resolved by
// exactly one of success, failure, or release, or its slot would hold
// the breaker half-open against further probes.
func (b *breaker) allow(now time.Time) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Before(b.reopen) {
			return false, false
		}
		b.transition(breakerHalfOpen)
		b.probes = 0
		fallthrough
	default: // breakerHalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			if !now.After(b.lastProbe.Add(b.cfg.OpenFor)) {
				return false, false
			}
			// Backstop: the slots have been held for a full OpenFor with no
			// new admission — if a caller leaked a probe (a bug in the
			// resolve-exactly-once discipline), reclaim the slots rather
			// than rejecting this upstream forever. A legitimately slow
			// probe still resolves later; the decrement floor keeps the
			// count sane.
			b.probes = 0
		}
		b.probes++
		b.lastProbe = now
		return true, true
	}
}

// release resolves a probe admission whose outcome was never observed:
// the request lost a hedge race, was cancelled, the pool closed, or the
// query never reached the wire for a local reason (ID exhaustion, encode
// failure). The slot is returned without moving the state machine — the
// upstream is neither vindicated nor condemned.
func (b *breaker) release(probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	if b.probes > 0 {
		b.probes--
	}
	b.mu.Unlock()
}

// success records a completed exchange. Any success closes the breaker
// and clears the consecutive-failure count.
func (b *breaker) success(probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe && b.probes > 0 {
		b.probes--
	}
	b.fails = 0
	if b.state != breakerClosed {
		b.transition(breakerClosed)
	}
}

// failure records a failed exchange (timeout or send error). A half-open
// probe failing reopens immediately; closed-state failures accumulate
// toward the threshold.
func (b *breaker) failure(probe bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe && b.probes > 0 {
		b.probes--
	}
	switch b.state {
	case breakerHalfOpen:
		b.reopen = now.Add(b.cfg.OpenFor)
		b.transition(breakerOpen)
	case breakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.reopen = now.Add(b.cfg.OpenFor)
			b.transition(breakerOpen)
		}
	}
	// Already open: nothing to count; the clock is running.
}

// current returns the breaker's state for tests and health snapshots.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
