package dnsserver

import (
	"testing"
	"time"
)

// TestRTTEstimator pins the RFC 6298 arithmetic: first-sample seeding
// (SRTT = R, RTTVAR = R/2) and the 1/8–1/4 gain updates with the
// variance folded in before the mean.
func TestRTTEstimator(t *testing.T) {
	var e rttEstimator
	if _, ok := e.rto(); ok {
		t.Fatal("rto reported ok before any sample")
	}

	srtt, rttvar := e.observe(100 * time.Millisecond)
	if srtt != 100*time.Millisecond || rttvar != 50*time.Millisecond {
		t.Fatalf("first sample: srtt %v rttvar %v, want 100ms/50ms", srtt, rttvar)
	}
	if rto, ok := e.rto(); !ok || rto != 300*time.Millisecond {
		t.Fatalf("rto = %v (%v), want 300ms", rto, ok)
	}

	// Second sample R = 200ms against SRTT 100ms, RTTVAR 50ms:
	// RTTVAR' = 3/4·50 + 1/4·|100−200| = 62.5ms
	// SRTT'   = 7/8·100 + 1/8·200      = 112.5ms
	srtt, rttvar = e.observe(200 * time.Millisecond)
	if srtt != 112500*time.Microsecond || rttvar != 62500*time.Microsecond {
		t.Fatalf("second sample: srtt %v rttvar %v, want 112.5ms/62.5ms", srtt, rttvar)
	}

	// A run of identical samples converges both estimates: SRTT toward
	// the sample, RTTVAR toward zero.
	for i := 0; i < 200; i++ {
		e.observe(100 * time.Millisecond)
	}
	srtt, rttvar, ok := e.current()
	if !ok {
		t.Fatal("current not ok")
	}
	if d := srtt - 100*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("srtt did not converge: %v", srtt)
	}
	if rttvar > time.Millisecond {
		t.Fatalf("rttvar did not decay: %v", rttvar)
	}
}

// TestBreakerLifecycle walks the full closed → open → half-open state
// machine: tripping at the threshold, rejecting while open, admitting a
// bounded probe after OpenFor, and both probe outcomes.
func TestBreakerLifecycle(t *testing.T) {
	var seen []breakerState
	b := newBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: time.Minute, HalfOpenProbes: 1},
		func(s breakerState) { seen = append(seen, s) })
	now := time.Unix(1000, 0)

	// Failures below the threshold leave it closed; a success resets the
	// consecutive count so the streak must be unbroken.
	b.failure(false, now)
	b.failure(false, now)
	b.success(false)
	b.failure(false, now)
	b.failure(false, now)
	if got := b.current(); got != breakerClosed {
		t.Fatalf("state after interrupted streak = %v, want closed", got)
	}

	// The third consecutive failure trips it.
	b.failure(false, now)
	if got := b.current(); got != breakerOpen {
		t.Fatalf("state at threshold = %v, want open", got)
	}
	if ok, _ := b.allow(now.Add(time.Second)); ok {
		t.Fatal("open breaker admitted a query before OpenFor elapsed")
	}

	// After OpenFor, exactly HalfOpenProbes probes are admitted.
	later := now.Add(time.Minute + time.Second)
	ok, probe := b.allow(later)
	if !ok || !probe {
		t.Fatalf("allow after OpenFor = (%v, %v), want probe admission", ok, probe)
	}
	if got := b.current(); got != breakerHalfOpen {
		t.Fatalf("state after admission = %v, want half-open", got)
	}
	if ok, _ := b.allow(later); ok {
		t.Fatal("second concurrent probe admitted past HalfOpenProbes=1")
	}

	// Probe failure reopens for another OpenFor.
	b.failure(true, later)
	if got := b.current(); got != breakerOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	if ok, _ := b.allow(later.Add(time.Second)); ok {
		t.Fatal("reopened breaker admitted a query immediately")
	}

	// A later probe success closes it, and the failure count restarts
	// from zero.
	again := later.Add(time.Minute + time.Second)
	if ok, probe := b.allow(again); !ok || !probe {
		t.Fatal("probe not admitted after second OpenFor")
	}
	b.success(true)
	if got := b.current(); got != breakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	b.failure(false, again)
	b.failure(false, again)
	if got := b.current(); got != breakerClosed {
		t.Fatalf("failure count survived the close: %v", got)
	}

	want := []breakerState{breakerOpen, breakerHalfOpen, breakerOpen, breakerHalfOpen, breakerClosed}
	if len(seen) != len(want) {
		t.Fatalf("transitions %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v (full: %v)", i, seen[i], want[i], seen)
		}
	}
}

// TestBreakerRelease pins the resolve-exactly-once discipline for probe
// admissions: an abandoned probe (hedge race loss, cancellation, local
// send failure) returns its slot via release without moving the state
// machine, so the next caller can probe immediately.
func TestBreakerRelease(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Minute, HalfOpenProbes: 1}, nil)
	now := time.Unix(1000, 0)
	b.failure(false, now)

	at := now.Add(time.Minute + time.Second)
	if ok, probe := b.allow(at); !ok || !probe {
		t.Fatal("probe not admitted after OpenFor")
	}
	if ok, _ := b.allow(at); ok {
		t.Fatal("second probe admitted past HalfOpenProbes=1")
	}
	b.release(true)
	if got := b.current(); got != breakerHalfOpen {
		t.Fatalf("state after release = %v, want half-open", got)
	}
	ok, probe := b.allow(at)
	if !ok || !probe {
		t.Fatal("released slot not immediately reusable")
	}

	// release(false) is a no-op: it must not free someone else's slot.
	b.release(false)
	if ok, _ := b.allow(at); ok {
		t.Fatal("release(false) freed a probe slot")
	}

	b.success(probe)
	if got := b.current(); got != breakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
}

// TestBreakerHalfOpenBackstop: even if a probe admission leaks (never
// resolved — a bug in a caller), allow reclaims the reservation once a
// full OpenFor passes with no new admission, so the breaker cannot
// wedge half-open forever.
func TestBreakerHalfOpenBackstop(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Minute, HalfOpenProbes: 1}, nil)
	now := time.Unix(1000, 0)
	b.failure(false, now)

	at := now.Add(time.Minute + time.Second)
	if ok, probe := b.allow(at); !ok || !probe {
		t.Fatal("probe not admitted after OpenFor")
	}
	// The probe leaks. Within OpenFor of the admission the slot stays
	// reserved...
	if ok, _ := b.allow(at.Add(30 * time.Second)); ok {
		t.Fatal("reserved slot given away before the backstop window")
	}
	// ...but once OpenFor elapses with no resolution, the backstop
	// reclaims it.
	if ok, probe := b.allow(at.Add(time.Minute + time.Second)); !ok || !probe {
		t.Fatal("backstop did not reclaim the leaked slot")
	}
}

// TestBreakerDefaults pins the zero-value parameterization.
func TestBreakerDefaults(t *testing.T) {
	cfg := BreakerConfig{}.withDefaults()
	if cfg.FailureThreshold != 8 || cfg.OpenFor != time.Second || cfg.HalfOpenProbes != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
	for s, want := range map[breakerState]string{
		breakerClosed: "closed", breakerOpen: "open", breakerHalfOpen: "half-open",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}
