package dnsserver

import (
	"context"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnscontext/internal/dnswire"
	"dnscontext/internal/stats"
	"dnscontext/internal/zonedb"
)

// TestServerChaosSoak floods the hardened server with a mix of valid
// queries, garbage datagrams, and queries that panic the handler, under
// rate limiting and a small queue, and asserts the server answers,
// sheds, refuses, recovers every panic, and still shuts down cleanly.
// The default budget is a few hundred milliseconds so the race-enabled
// suite stays fast; `make soak` extends it via DNSCTX_SOAK.
func TestServerChaosSoak(t *testing.T) {
	budget := 600 * time.Millisecond
	if env := os.Getenv("DNSCTX_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("DNSCTX_SOAK=%q: %v", env, err)
		}
		budget = d
	}

	zones, err := zonedb.New(zonedb.Config{
		NumNames: 50, ZipfExponent: 1, CDNFraction: 0.3, CDNPoolSize: 5,
	}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	zh := ZoneHandler(zones)
	handler := HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		if strings.HasPrefix(q.Questions[0].Name, "panic.") {
			panic("chaos")
		}
		return zh.Handle(q)
	})
	srv := NewServerWith(handler, Config{
		Workers:    4,
		QueueDepth: 8,
		RateLimit:  &RateLimitConfig{PerSecond: 200, Burst: 50},
	}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}

	stop := make(chan struct{})
	time.AfterFunc(budget, func() { close(stop) })

	var answered atomic.Uint64
	var wg sync.WaitGroup
	const flooders = 6
	for f := 0; f < flooders; f++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			conn, err := net.Dial("udp", addr.String())
			if err != nil {
				return
			}
			defer conn.Close()
			buf := make([]byte, 4096)
			var id uint16
			for {
				select {
				case <-stop:
					return
				default:
				}
				id++
				var wire []byte
				switch rng.Intn(4) {
				case 0: // garbage
					wire = make([]byte, 1+rng.Intn(40))
					rng.Read(wire)
				case 1: // panic trigger
					q := dnswire.NewQuery(id, "panic.example.com", dnswire.TypeA)
					wire, _ = q.Encode()
				default: // valid lookup
					q := dnswire.NewQuery(id, zones.ByRank(rng.Intn(20)).Host, dnswire.TypeA)
					wire, _ = q.Encode()
				}
				if _, err := conn.Write(wire); err != nil {
					return
				}
				// Drain any response without blocking the flood.
				_ = conn.SetReadDeadline(time.Now().Add(time.Millisecond))
				if n, err := conn.Read(buf); err == nil {
					if msg, err := dnswire.Decode(buf[:n]); err == nil && msg.Header.Response {
						answered.Add(1)
					}
				}
			}
		}(int64(f) + 1)
	}
	wg.Wait()

	// The server survived the whole soak: it must still answer a fresh,
	// well-behaved client.
	c := &Client{Server: addr.String(), Timeout: 2 * time.Second, Retries: 4}
	resp, err := c.Query(zones.ByRank(0).Host, dnswire.TypeA)
	if err != nil {
		t.Fatalf("server unresponsive after soak: %v", err)
	}
	if rc := resp.Header.RCode; rc != dnswire.RCodeNoError && rc != dnswire.RCodeRefused {
		t.Fatalf("post-soak rcode %v", rc)
	}

	if answered.Load() == 0 {
		t.Error("soak produced no answered queries")
	}
	if srv.Panics() == 0 {
		t.Error("soak never triggered the panic path")
	}
	if srv.DecodeErrors() == 0 {
		t.Error("soak never triggered the garbage path")
	}
	if srv.Refused() == 0 {
		t.Error("soak never tripped the rate limiter")
	}
	t.Logf("soak %v: received=%d answered=%d panics=%d refused=%d shed=%d decode_errs=%d",
		budget, srv.Queries(), answered.Load(), srv.Panics(), srv.Refused(), srv.Shed(), srv.DecodeErrors())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after soak: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after Shutdown: %v", err)
	}
}
