package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dnscontext/internal/dnswire"
	"dnscontext/internal/obs"
)

// Client-side sharded sockets. The basic Client opens a fresh UDP socket
// per attempt, which is fine for a handful of interactive queries and
// hopeless for a bulk scanner holding tens of thousands of queries in
// flight: every attempt pays a dial, and the kernel churns through
// ephemeral ports. ClientPool is the reusable dial path for concurrent
// callers — it dials a small, fixed set of connected UDP sockets per
// upstream, shards queries across them round-robin, and demultiplexes
// responses back to waiters by DNS message ID, so any number of
// goroutines can query through one pool with no per-query dial and no
// lock on the wire path beyond the pending-table update.
//
// Beyond the basic ladder, the pool can earn its way through unreliable
// networks (DESIGN.md §7i): multiple upstreams with per-attempt
// failover, RFC 6298 adaptive per-attempt timeouts (SRTT/RTTVAR per
// upstream, opt-in via Adaptive), an optional hedged second request
// after the expected-latency horizon, and a per-upstream circuit
// breaker that fails fast on a dead upstream instead of paying the full
// ladder per query.

// Pool errors beyond the Client's ErrTimeout/ErrMismatch taxonomy.
var (
	// ErrPoolClosed is returned by Query once Close has been called.
	ErrPoolClosed = errors.New("dnsserver: client pool closed")
	// ErrPoolBusy is returned when a socket's 16-bit ID space is
	// exhausted — ~65k queries in flight (or recently timed out and
	// still quarantined) on one socket.
	ErrPoolBusy = errors.New("dnsserver: too many queries in flight")
)

// ClientPoolConfig parameterizes a ClientPool. The zero value gets
// sensible defaults: one upstream, 4 sockets per upstream, 2 s
// per-attempt timeout, 2 retries, flat backoff, no adaptive timeouts,
// no hedging, no circuit breaker.
type ClientPoolConfig struct {
	// Sockets is the number of UDP sockets to shard queries across per
	// upstream (default 4). More sockets spread kernel socket-buffer
	// pressure and widen the usable ID space (each socket has its own
	// 16-bit space).
	Sockets int
	// Timeout bounds the first attempt (default 2 s). In adaptive mode
	// it is the initial RTO before any sample and the RTO ceiling when
	// MaxTimeout is unset.
	Timeout time.Duration
	// Retries is the number of additional attempts (default 2). Each
	// retry moves to the next socket — and, with multiple Servers, the
	// next upstream — and re-sends under a fresh ID.
	Retries int
	// Backoff multiplies the timeout after each failed attempt; values
	// below 1 are treated as 1 (flat), mirroring resolver.RetryPolicy.
	// Adaptive mode floors the factor at 2 (RFC 6298 doubles the RTO on
	// retransmission).
	Backoff float64
	// MaxTimeout caps the per-attempt timeout after backoff, including
	// the first attempt (0 = uncapped).
	MaxTimeout time.Duration

	// Servers, when non-empty, is the full upstream set; the server
	// argument to NewClientPool is ignored. Queries rotate across
	// upstreams round-robin, and each retry moves to the next upstream —
	// multi-upstream failover.
	Servers []string
	// Adaptive switches per-attempt timeouts from the fixed ladder to
	// the RFC 6298 estimate: RTO = SRTT + 4·RTTVAR per upstream, doubled
	// per retry (or ×Backoff if larger), clamped to [MinTimeout,
	// MaxTimeout or Timeout]. Until an upstream has a sample, the fixed
	// ladder applies.
	Adaptive bool
	// MinTimeout floors the adaptive RTO (default 20 ms). Ignored in
	// fixed mode.
	MinTimeout time.Duration
	// Hedge sends a second copy of a still-unanswered first attempt to
	// another upstream (another socket when there is only one) once the
	// hedge delay elapses; the first response wins and the loser is
	// abandoned. At most one hedge per query, and only on the first
	// attempt — retries are already retransmissions.
	Hedge bool
	// HedgeAfter fixes the hedge delay. Zero derives it from the
	// primary upstream's estimator (SRTT + 2·RTTVAR, roughly the upper
	// latency percentiles), falling back to half the attempt timeout
	// before any sample.
	HedgeAfter time.Duration
	// Breaker, when non-nil, puts a circuit breaker in front of every
	// upstream (see BreakerConfig). With every breaker open, Query fails
	// fast with ErrCircuitOpen.
	Breaker *BreakerConfig
	// Metrics, when non-nil, receives the pool's instrument families
	// (dnsctx_pool_*): attempts, timeouts, hedges and hedge wins,
	// failovers, busy rejections, breaker transitions, and per-upstream
	// SRTT/RTTVAR gauges plus an RTT histogram.
	Metrics *obs.Registry
}

func (c ClientPoolConfig) withDefaults() ClientPoolConfig {
	if c.Sockets <= 0 {
		c.Sockets = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.Backoff < 1 {
		c.Backoff = 1
	}
	if c.MinTimeout <= 0 {
		c.MinTimeout = 20 * time.Millisecond
	}
	return c
}

// attemptTimeout returns the fixed ladder's timeout for the given
// 0-based attempt: Timeout·Backoff^attempt, with MaxTimeout capping
// every attempt including the first (so MaxTimeout < Timeout means
// every attempt waits MaxTimeout). Backoff exactly 1 yields a flat
// ladder. Call on a defaulted config.
func (c ClientPoolConfig) attemptTimeout(attempt int) time.Duration {
	d := c.Timeout
	if c.MaxTimeout > 0 && d > c.MaxTimeout {
		return c.MaxTimeout
	}
	for i := 0; i < attempt; i++ {
		d = time.Duration(float64(d) * c.Backoff)
		if c.MaxTimeout > 0 && d > c.MaxTimeout {
			return c.MaxTimeout
		}
	}
	return d
}

// adaptiveTimeout returns the adaptive per-attempt timeout from a base
// RTO: RTO·factor^attempt with factor = max(Backoff, 2), clamped to
// [MinTimeout, MaxTimeout or Timeout]. Call on a defaulted config.
func (c ClientPoolConfig) adaptiveTimeout(rto time.Duration, attempt int) time.Duration {
	factor := c.Backoff
	if factor < 2 {
		factor = 2
	}
	ceil := c.MaxTimeout
	if ceil <= 0 {
		ceil = c.Timeout
	}
	d := rto
	for i := 0; i < attempt; i++ {
		d = time.Duration(float64(d) * factor)
		if d >= ceil {
			break
		}
	}
	if d < c.MinTimeout {
		d = c.MinTimeout
	}
	if d > ceil {
		d = ceil
	}
	return d
}

// poolMetrics is the pool's instrument set; every field is nil-safe, so
// an unobserved pool pays only nil checks.
type poolMetrics struct {
	attempts    *obs.Counter
	timeouts    *obs.Counter
	hedges      *obs.Counter
	hedgeWins   *obs.Counter
	failovers   *obs.Counter
	busy        *obs.Counter
	circuitOpen *obs.Counter
	transitions *obs.CounterVec
	srtt        *obs.FloatGaugeVec
	rttvar      *obs.FloatGaugeVec
	rtt         *obs.TimerVec
}

func newPoolMetrics(reg *obs.Registry) poolMetrics {
	if reg == nil {
		return poolMetrics{}
	}
	return poolMetrics{
		attempts: reg.Counter("dnsctx_pool_attempts_total",
			"Wire transmissions by the client pool (initial sends, retries, and hedges)."),
		timeouts: reg.Counter("dnsctx_pool_timeouts_total",
			"Attempts that expired with no response."),
		hedges: reg.Counter("dnsctx_pool_hedges_total",
			"Hedged second requests sent after the latency horizon."),
		hedgeWins: reg.Counter("dnsctx_pool_hedge_wins_total",
			"Queries whose hedged request answered first."),
		failovers: reg.Counter("dnsctx_pool_failovers_total",
			"Retries routed to a different upstream than the previous attempt."),
		busy: reg.Counter("dnsctx_pool_busy_total",
			"Queries rejected because a socket's message-ID space was exhausted."),
		circuitOpen: reg.Counter("dnsctx_pool_circuit_open_total",
			"Queries failed fast because every upstream's circuit breaker was open."),
		transitions: reg.CounterVec("dnsctx_pool_breaker_transitions_total",
			"Circuit-breaker state transitions, by upstream and new state.", "upstream", "to"),
		srtt: reg.FloatGaugeVec("dnsctx_pool_srtt_seconds",
			"Smoothed RTT per upstream (RFC 6298 SRTT).", "upstream"),
		rttvar: reg.FloatGaugeVec("dnsctx_pool_rttvar_seconds",
			"RTT variance per upstream (RFC 6298 RTTVAR).", "upstream"),
		rtt: reg.TimerVec("dnsctx_pool_rtt_seconds",
			"Matched-response RTT samples, by upstream.", "upstream"),
	}
}

// upstream is one server the pool can exchange with: its sharded socket
// set, its RTT estimator, and its circuit breaker.
type upstream struct {
	addr  string
	socks []*poolSock
	next  atomic.Uint64
	est   rttEstimator
	brk   *breaker // nil = no breaker

	// Pre-resolved per-upstream metric handles (nil-safe).
	srttG   *obs.FloatGauge
	rttvarG *obs.FloatGauge
	rttT    *obs.Timer
}

// sock returns the next socket round-robin.
func (u *upstream) sock() *poolSock {
	return u.socks[u.next.Add(1)%uint64(len(u.socks))]
}

// allow consults the breaker; without one every query is admitted.
func (u *upstream) allow(now time.Time) (ok, probe bool) {
	if u.brk == nil {
		return true, false
	}
	return u.brk.allow(now)
}

// ok records a successful exchange with the breaker.
func (u *upstream) ok(probe bool) {
	if u.brk != nil {
		u.brk.success(probe)
	}
}

// fail records a failed exchange (timeout, send error) with the breaker.
func (u *upstream) fail(probe bool) {
	if u.brk != nil {
		u.brk.failure(probe, time.Now())
	}
}

// release resolves a breaker admission with no outcome to report — the
// attempt was abandoned (lost the hedge race, cancelled, pool closed) or
// never made it onto the wire for a local reason.
func (u *upstream) release(probe bool) {
	if u.brk != nil {
		u.brk.release(probe)
	}
}

// observeRTT folds one matched-response RTT into the estimator and the
// upstream's gauges.
func (u *upstream) observeRTT(rtt time.Duration) {
	srtt, rttvar := u.est.observe(rtt)
	u.srttG.SetSeconds(srtt)
	u.rttvarG.SetSeconds(rttvar)
	u.rttT.Observe(rtt)
}

// ClientPool is a concurrent-caller UDP DNS client over a fixed set of
// shared sockets per upstream. It is safe for use by any number of
// goroutines; Close releases the sockets and fails queries still
// waiting.
type ClientPool struct {
	cfg ClientPoolConfig
	ups []*upstream
	// next rotates the primary upstream across queries (and, within an
	// attempt ladder, the failover order).
	next atomic.Uint64
	met  poolMetrics

	inflight atomic.Int64
	done     chan struct{} // closed by Close
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// poolSock is one shared socket: a connected UDP conn, its pending-call
// table keyed by message ID, and a reader goroutine demuxing responses.
type poolSock struct {
	conn    *net.UDPConn
	mu      sync.Mutex
	pending map[uint16]*poolCall
	nextID  uint16
}

// poolCall is one waiter. The channel has capacity 1 and is written at
// most once (the reader drops responses for unregistered IDs), so the
// reader never blocks on a slow waiter.
type poolCall struct {
	ch chan *dnswire.Message
	// abandoned is the UnixNano instant the waiter gave up (timeout,
	// cancel, pool close) while its query was still on the wire; zero
	// means the waiter is live. An abandoned entry keeps its ID parked so
	// a late response cannot be demuxed to a NEW query that reused the
	// ID — that would surface as a spurious ErrMismatch for a different
	// name, or worse, silently hand a stale answer to a retry of the same
	// name. The ID is reclaimed when the late response finally lands (the
	// reader deletes on delivery) or after idQuarantine elapses.
	abandoned int64
}

// idQuarantine is how long an abandoned message ID stays parked before
// register may hand it out again. Longer than any plausible late-response
// arrival (server work + queueing + loopback/kernel buffering), short
// enough that even a total-timeout storm parks only a small slice of a
// socket's 65535-ID space.
const idQuarantine = 3 * time.Second

// NewClientPool dials cfg.Sockets connected UDP sockets to each upstream
// (cfg.Servers, or the single server argument when Servers is empty) and
// starts their reader goroutines. The returned pool must be Closed.
func NewClientPool(server string, cfg ClientPoolConfig) (*ClientPool, error) {
	cfg = cfg.withDefaults()
	servers := cfg.Servers
	if len(servers) == 0 {
		servers = []string{server}
	}
	p := &ClientPool{cfg: cfg, done: make(chan struct{}), met: newPoolMetrics(cfg.Metrics)}
	for _, addr := range servers {
		raddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("dnsserver: %w", err)
		}
		up := &upstream{
			addr:    addr,
			srttG:   p.met.srtt.With(addr),
			rttvarG: p.met.rttvar.With(addr),
			rttT:    p.met.rtt.With(addr),
		}
		if cfg.Breaker != nil {
			trans := p.met.transitions
			a := addr
			up.brk = newBreaker(*cfg.Breaker, func(to breakerState) {
				trans.With(a, to.String()).Inc()
			})
		}
		for i := 0; i < cfg.Sockets; i++ {
			conn, err := net.DialUDP("udp", nil, raddr)
			if err != nil {
				p.Close()
				return nil, fmt.Errorf("dnsserver: %w", err)
			}
			// Thousands of responses can land between reader wakeups; a deep
			// kernel buffer is what keeps burst loss off the retry ladder.
			// Best-effort: the OS caps it silently.
			_ = conn.SetReadBuffer(4 << 20)
			s := &poolSock{conn: conn, pending: make(map[uint16]*poolCall)}
			up.socks = append(up.socks, s)
			p.wg.Add(1)
			go p.readLoop(s)
		}
		p.ups = append(p.ups, up)
	}
	return p, nil
}

// readLoop demuxes one socket's responses to their waiting calls. It
// exits when the socket is closed; undecodable datagrams and responses
// for IDs nobody is waiting on (late retransmission answers) are
// dropped, as the one-shot Client does.
func (p *ClientPool) readLoop(s *poolSock) {
	defer p.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, err := s.conn.Read(buf)
		if err != nil {
			return // socket closed by Close
		}
		msg, err := dnswire.Decode(buf[:n])
		if err != nil || !msg.Header.Response {
			continue
		}
		s.mu.Lock()
		call := s.pending[msg.Header.ID]
		delete(s.pending, msg.Header.ID)
		s.mu.Unlock()
		if call != nil {
			call.ch <- msg // cap 1, written once per registration
		}
	}
}

// register allocates an unused message ID on s and parks a call under
// it. IDs are drawn from a wrapping counter, skipping slots that are
// taken by live waiters or still quarantined, so concurrent queries on
// one socket never collide and a late response never reaches a reused
// ID's new waiter. Expired quarantine entries are reclaimed as the
// counter walks past them.
func (s *poolSock) register() (uint16, *poolCall, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) >= 1<<16-1 {
		return 0, nil, ErrPoolBusy
	}
	now := time.Now().UnixNano()
	for {
		s.nextID++
		c, taken := s.pending[s.nextID]
		if !taken {
			break
		}
		if c.abandoned != 0 && now-c.abandoned > int64(idQuarantine) {
			break // quarantine over; reuse this slot
		}
	}
	call := &poolCall{ch: make(chan *dnswire.Message, 1)}
	s.pending[s.nextID] = call
	return s.nextID, call, nil
}

// unregister removes a call whose query never made it onto the wire
// (encode or send failure) — no response can arrive, so the ID is
// immediately reusable.
func (s *poolSock) unregister(id uint16) {
	s.mu.Lock()
	delete(s.pending, id)
	s.mu.Unlock()
}

// abandon marks a call whose waiter gave up after the query was sent.
// The entry stays in the pending table, quarantining its ID (see
// poolCall.abandoned); the reader still deletes it if the late response
// arrives, ending the quarantine early.
func (s *poolSock) abandon(id uint16) {
	s.mu.Lock()
	if c, ok := s.pending[id]; ok {
		c.abandoned = time.Now().UnixNano()
	}
	s.mu.Unlock()
}

// InFlight returns the number of Query calls currently outstanding — the
// pool's in-flight gauge.
func (p *ClientPool) InFlight() int64 { return p.inflight.Load() }

// pick returns the upstream for one attempt: candidates rotate from the
// query's base offset plus the attempt number (so each retry prefers
// the NEXT upstream — failover — and different queries spread across
// upstreams), skipping any whose breaker rejects. nil means every
// breaker is open.
func (p *ClientPool) pick(base uint64, attempt int) (*upstream, bool) {
	n := uint64(len(p.ups))
	now := time.Now()
	for i := uint64(0); i < n; i++ {
		up := p.ups[(base+uint64(attempt)+i)%n]
		if ok, probe := up.allow(now); ok {
			return up, probe
		}
	}
	return nil, false
}

// waitAdmit polls for a breaker admission for up to budget, returning
// nil when the budget, the context, or the pool expires first. Polling
// (rather than a notification scheme) keeps the breaker simple; the
// 2 ms cadence costs nothing next to a retry ladder measured in tens of
// milliseconds.
func (p *ClientPool) waitAdmit(ctx context.Context, base uint64, attempt int, budget time.Duration) (*upstream, bool) {
	deadline := time.Now().Add(budget)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if up, probe := p.pick(base, attempt); up != nil {
				return up, probe
			}
			if time.Now().After(deadline) {
				return nil, false
			}
		case <-ctx.Done():
			return nil, false
		case <-p.done:
			return nil, false
		}
	}
}

// pickHedge returns the upstream for a hedged request: the next healthy
// upstream that is not the primary (the same upstream — via a different
// socket — only when it is the sole one configured).
func (p *ClientPool) pickHedge(primary *upstream) (*upstream, bool) {
	n := len(p.ups)
	now := time.Now()
	base := p.next.Add(1)
	var fallback *upstream
	var fallbackProbe bool
	for i := 0; i < n; i++ {
		up := p.ups[(base+uint64(i))%uint64(n)]
		ok, probe := up.allow(now)
		if !ok {
			continue
		}
		if up != primary {
			if fallback != nil {
				// The fallback admission we banked is not being used.
				fallback.release(fallbackProbe)
			}
			return up, probe
		}
		fallback, fallbackProbe = up, probe
	}
	return fallback, fallbackProbe
}

// timeoutFor computes the per-attempt timeout: the fixed ladder, or, in
// adaptive mode with at least one sample for the chosen upstream, the
// RFC 6298 RTO backed off per attempt.
func (p *ClientPool) timeoutFor(up *upstream, attempt int) time.Duration {
	if p.cfg.Adaptive {
		if rto, ok := up.est.rto(); ok {
			return p.cfg.adaptiveTimeout(rto, attempt)
		}
	}
	return p.cfg.attemptTimeout(attempt)
}

// hedgeDelay is how long the first attempt waits before sending a
// hedged duplicate: the configured HedgeAfter, the estimator's
// SRTT + 2·RTTVAR, or half the attempt timeout before any sample.
func (p *ClientPool) hedgeDelay(up *upstream, timeout time.Duration) time.Duration {
	if p.cfg.HedgeAfter > 0 {
		return p.cfg.HedgeAfter
	}
	if srtt, rttvar, ok := up.est.current(); ok {
		return srtt + 2*rttvar
	}
	return timeout / 2
}

// Query resolves one question through the pool: it encodes the query
// under a socket-local ID, sends it to the chosen upstream, and waits
// for the demuxed response, walking the retry ladder (rotating sockets
// and upstreams) per the pool config. Timeouts follow the Client
// contract: silence for the full ladder yields ErrTimeout; a response
// answering a different question yields ErrMismatch; every upstream
// staying circuit-open through the ladder's waiting budget yields
// ErrCircuitOpen. Cancelling ctx abandons the query with ctx's error.
func (p *ClientPool) Query(ctx context.Context, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	p.inflight.Add(1)
	defer p.inflight.Add(-1)

	base := p.next.Add(1)
	var lastErr error = ErrTimeout
	var prev *upstream
	for attempt := 0; attempt <= p.cfg.Retries; attempt++ {
		up, probe := p.pick(base, attempt)
		if up == nil {
			// Every breaker is open. Failing fast here would let a scan's
			// worth of workers drain the feed as errors during one OpenFor
			// window; there is no alternative path to shed load onto, so
			// waiting is strictly better. Block (up to this attempt's fixed
			// ladder budget) for a half-open slot; a successful probe then
			// reopens the floodgates for everyone.
			up, probe = p.waitAdmit(ctx, base, attempt, p.cfg.attemptTimeout(attempt))
			if up == nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				if p.closed.Load() {
					return nil, ErrPoolClosed
				}
				p.met.circuitOpen.Inc()
				lastErr = ErrCircuitOpen
				continue
			}
		}
		if prev != nil && up != prev {
			p.met.failovers.Inc()
		}
		prev = up
		timeout := p.timeoutFor(up, attempt)
		msg, err, terminal := p.attempt(ctx, up, probe, name, qtype, timeout, attempt == 0)
		if err == nil {
			return msg, nil
		}
		if terminal {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// attempt performs one wire exchange against up, hedging to a second
// upstream when enabled and the hedge delay fits inside the attempt
// timeout. terminal reports whether the error ends the ladder (busy,
// mismatch, cancellation, pool close) rather than feeding the next
// retry.
func (p *ClientPool) attempt(ctx context.Context, up *upstream, probe bool, name string, qtype dnswire.Type, timeout time.Duration, first bool) (m *dnswire.Message, err error, terminal bool) {
	s := up.sock()
	id, call, err := s.register()
	if err != nil {
		up.release(probe)
		p.met.busy.Inc()
		return nil, err, true
	}
	q := dnswire.NewQuery(id, name, qtype)
	wire, err := q.Encode()
	if err != nil {
		s.unregister(id)
		up.release(probe)
		return nil, err, true
	}
	sent := time.Now()
	if _, err := s.conn.Write(wire); err != nil {
		s.unregister(id)
		if p.closed.Load() {
			return nil, ErrPoolClosed, true
		}
		up.fail(probe)
		return nil, err, false
	}
	p.met.attempts.Inc()

	timer := time.NewTimer(timeout)
	defer timer.Stop()

	// Hedge state: armed lazily when the hedge delay fires. A nil hedge
	// channel never receives, so the select below is uniform.
	var (
		hup    *upstream
		hprobe bool
		hsock  *poolSock
		hid    uint16
		hcall  *poolCall
		hsent  time.Time
		hedgeC <-chan time.Time
	)
	if p.cfg.Hedge && first {
		if d := p.hedgeDelay(up, timeout); d > 0 && d < timeout {
			hedge := time.NewTimer(d)
			defer hedge.Stop()
			hedgeC = hedge.C
		}
	}
	hch := func() chan *dnswire.Message {
		if hcall != nil {
			return hcall.ch
		}
		return nil
	}
	abandonIDs := func() {
		s.abandon(id)
		if hcall != nil {
			hsock.abandon(hid)
		}
	}
	// Abandoning without an outcome still resolves both breaker
	// admissions: a leaked half-open probe slot would otherwise pin the
	// breaker half-open with no escape.
	releaseAll := func() {
		up.release(probe)
		if hcall != nil {
			hup.release(hprobe)
		}
	}

	for {
		select {
		case msg := <-call.ch:
			if hcall != nil {
				// The hedge lost the race: quarantine its ID and return its
				// probe slot without judging the upstream.
				hsock.abandon(hid)
				hup.release(hprobe)
			}
			return p.deliver(up, probe, msg, name, time.Since(sent))
		case msg := <-hch():
			s.abandon(id)
			up.release(probe)
			p.met.hedgeWins.Inc()
			return p.deliver(hup, hprobe, msg, name, time.Since(hsent))
		case <-hedgeC:
			hedgeC = nil
			h, hp := p.pickHedge(up)
			if h == nil {
				continue // nowhere healthy to hedge to
			}
			hs := h.sock()
			nid, ncall, err := hs.register()
			if err != nil {
				h.release(hp)
				continue // ID space tight: skip the hedge, keep waiting
			}
			hq := dnswire.NewQuery(nid, name, qtype)
			hwire, err := hq.Encode()
			if err != nil {
				hs.unregister(nid)
				h.release(hp)
				continue
			}
			hsent = time.Now()
			if _, err := hs.conn.Write(hwire); err != nil {
				hs.unregister(nid)
				h.fail(hp)
				continue
			}
			hup, hprobe, hsock, hid, hcall = h, hp, hs, nid, ncall
			p.met.attempts.Inc()
			p.met.hedges.Inc()
		case <-timer.C:
			// The query is on the wire; quarantine the ID(s) rather than
			// freeing them so a late response can't be demuxed to whoever
			// registers the ID next.
			abandonIDs()
			up.fail(probe)
			if hcall != nil {
				hup.fail(hprobe)
			}
			p.met.timeouts.Inc()
			return nil, ErrTimeout, false
		case <-ctx.Done():
			abandonIDs()
			releaseAll()
			return nil, ctx.Err(), true
		case <-p.done:
			abandonIDs()
			releaseAll()
			return nil, ErrPoolClosed, true
		}
	}
}

// deliver validates a matched response, feeds the upstream's estimator
// and breaker, and hands the message back. A response answering a
// different question is ErrMismatch and ends the ladder (the server is
// alive — retrying would get the same answer).
func (p *ClientPool) deliver(up *upstream, probe bool, msg *dnswire.Message, name string, rtt time.Duration) (*dnswire.Message, error, bool) {
	up.observeRTT(rtt)
	up.ok(probe)
	if len(msg.Questions) == 0 ||
		dnswire.CanonicalName(msg.Questions[0].Name) != dnswire.CanonicalName(name) {
		return nil, ErrMismatch, true
	}
	return msg, nil, true
}

// Upstreams returns the configured upstream addresses in rotation order.
func (p *ClientPool) Upstreams() []string {
	addrs := make([]string, len(p.ups))
	for i, up := range p.ups {
		addrs[i] = up.addr
	}
	return addrs
}

// Close releases the pool's sockets, stops the reader goroutines, and
// fails queries still waiting with ErrPoolClosed. Safe to call multiple
// times.
func (p *ClientPool) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	close(p.done)
	var first error
	for _, up := range p.ups {
		for _, s := range up.socks {
			if err := s.conn.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	p.wg.Wait()
	return first
}
