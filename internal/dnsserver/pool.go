package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dnscontext/internal/dnswire"
)

// Client-side sharded sockets. The basic Client opens a fresh UDP socket
// per attempt, which is fine for a handful of interactive queries and
// hopeless for a bulk scanner holding tens of thousands of queries in
// flight: every attempt pays a dial, and the kernel churns through
// ephemeral ports. ClientPool is the reusable dial path for concurrent
// callers — it dials a small, fixed set of connected UDP sockets up
// front, shards queries across them round-robin, and demultiplexes
// responses back to waiters by DNS message ID, so any number of
// goroutines can query through one pool with no per-query dial and no
// lock on the wire path beyond the pending-table update.

// Pool errors beyond the Client's ErrTimeout/ErrMismatch taxonomy.
var (
	// ErrPoolClosed is returned by Query once Close has been called.
	ErrPoolClosed = errors.New("dnsserver: client pool closed")
	// ErrPoolBusy is returned when a socket's 16-bit ID space is
	// exhausted — ~65k queries in flight (or recently timed out and
	// still quarantined) on one socket.
	ErrPoolBusy = errors.New("dnsserver: too many queries in flight")
)

// ClientPoolConfig parameterizes a ClientPool. The zero value gets
// sensible defaults: 4 sockets, 2 s per-attempt timeout, 2 retries,
// flat backoff.
type ClientPoolConfig struct {
	// Sockets is the number of UDP sockets to shard queries across
	// (default 4). More sockets spread kernel socket-buffer pressure and
	// widen the usable ID space (each socket has its own 16-bit space).
	Sockets int
	// Timeout bounds the first attempt (default 2 s).
	Timeout time.Duration
	// Retries is the number of additional attempts (default 2). Each
	// retry moves to the next socket — the pool analogue of anycast
	// rotation — and re-sends under a fresh ID.
	Retries int
	// Backoff multiplies the timeout after each failed attempt; values
	// below 1 are treated as 1 (flat), mirroring resolver.RetryPolicy.
	Backoff float64
	// MaxTimeout caps the per-attempt timeout after backoff (0 = uncapped).
	MaxTimeout time.Duration
}

func (c ClientPoolConfig) withDefaults() ClientPoolConfig {
	if c.Sockets <= 0 {
		c.Sockets = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.Backoff < 1 {
		c.Backoff = 1
	}
	return c
}

// ClientPool is a concurrent-caller UDP DNS client over a fixed set of
// shared sockets. It is safe for use by any number of goroutines; Close
// releases the sockets and fails queries still waiting.
type ClientPool struct {
	cfg   ClientPoolConfig
	socks []*poolSock
	next  atomic.Uint64

	inflight atomic.Int64
	done     chan struct{} // closed by Close
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// poolSock is one shared socket: a connected UDP conn, its pending-call
// table keyed by message ID, and a reader goroutine demuxing responses.
type poolSock struct {
	conn    *net.UDPConn
	mu      sync.Mutex
	pending map[uint16]*poolCall
	nextID  uint16
}

// poolCall is one waiter. The channel has capacity 1 and is written at
// most once (the reader drops responses for unregistered IDs), so the
// reader never blocks on a slow waiter.
type poolCall struct {
	ch chan *dnswire.Message
	// abandoned is the UnixNano instant the waiter gave up (timeout,
	// cancel, pool close) while its query was still on the wire; zero
	// means the waiter is live. An abandoned entry keeps its ID parked so
	// a late response cannot be demuxed to a NEW query that reused the
	// ID — that would surface as a spurious ErrMismatch for a different
	// name, or worse, silently hand a stale answer to a retry of the same
	// name. The ID is reclaimed when the late response finally lands (the
	// reader deletes on delivery) or after idQuarantine elapses.
	abandoned int64
}

// idQuarantine is how long an abandoned message ID stays parked before
// register may hand it out again. Longer than any plausible late-response
// arrival (server work + queueing + loopback/kernel buffering), short
// enough that even a total-timeout storm parks only a small slice of a
// socket's 65535-ID space.
const idQuarantine = 3 * time.Second

// NewClientPool dials cfg.Sockets connected UDP sockets to server and
// starts their reader goroutines. The returned pool must be Closed.
func NewClientPool(server string, cfg ClientPoolConfig) (*ClientPool, error) {
	cfg = cfg.withDefaults()
	raddr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	p := &ClientPool{cfg: cfg, done: make(chan struct{})}
	for i := 0; i < cfg.Sockets; i++ {
		conn, err := net.DialUDP("udp", nil, raddr)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("dnsserver: %w", err)
		}
		// Thousands of responses can land between reader wakeups; a deep
		// kernel buffer is what keeps burst loss off the retry ladder.
		// Best-effort: the OS caps it silently.
		_ = conn.SetReadBuffer(4 << 20)
		s := &poolSock{conn: conn, pending: make(map[uint16]*poolCall)}
		p.socks = append(p.socks, s)
		p.wg.Add(1)
		go p.readLoop(s)
	}
	return p, nil
}

// readLoop demuxes one socket's responses to their waiting calls. It
// exits when the socket is closed; undecodable datagrams and responses
// for IDs nobody is waiting on (late retransmission answers) are
// dropped, as the one-shot Client does.
func (p *ClientPool) readLoop(s *poolSock) {
	defer p.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, err := s.conn.Read(buf)
		if err != nil {
			return // socket closed by Close
		}
		msg, err := dnswire.Decode(buf[:n])
		if err != nil || !msg.Header.Response {
			continue
		}
		s.mu.Lock()
		call := s.pending[msg.Header.ID]
		delete(s.pending, msg.Header.ID)
		s.mu.Unlock()
		if call != nil {
			call.ch <- msg // cap 1, written once per registration
		}
	}
}

// register allocates an unused message ID on s and parks a call under
// it. IDs are drawn from a wrapping counter, skipping slots that are
// taken by live waiters or still quarantined, so concurrent queries on
// one socket never collide and a late response never reaches a reused
// ID's new waiter. Expired quarantine entries are reclaimed as the
// counter walks past them.
func (s *poolSock) register() (uint16, *poolCall, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) >= 1<<16-1 {
		return 0, nil, ErrPoolBusy
	}
	now := time.Now().UnixNano()
	for {
		s.nextID++
		c, taken := s.pending[s.nextID]
		if !taken {
			break
		}
		if c.abandoned != 0 && now-c.abandoned > int64(idQuarantine) {
			break // quarantine over; reuse this slot
		}
	}
	call := &poolCall{ch: make(chan *dnswire.Message, 1)}
	s.pending[s.nextID] = call
	return s.nextID, call, nil
}

// unregister removes a call whose query never made it onto the wire
// (encode or send failure) — no response can arrive, so the ID is
// immediately reusable.
func (s *poolSock) unregister(id uint16) {
	s.mu.Lock()
	delete(s.pending, id)
	s.mu.Unlock()
}

// abandon marks a call whose waiter gave up after the query was sent.
// The entry stays in the pending table, quarantining its ID (see
// poolCall.abandoned); the reader still deletes it if the late response
// arrives, ending the quarantine early.
func (s *poolSock) abandon(id uint16) {
	s.mu.Lock()
	if c, ok := s.pending[id]; ok {
		c.abandoned = time.Now().UnixNano()
	}
	s.mu.Unlock()
}

// InFlight returns the number of Query calls currently outstanding — the
// pool's in-flight gauge.
func (p *ClientPool) InFlight() int64 { return p.inflight.Load() }

// Query resolves one question through the pool: it encodes the query
// under a socket-local ID, sends it on the next socket round-robin, and
// waits for the demuxed response, retrying with exponential backoff (and
// socket rotation) per the pool config. Timeouts follow the Client
// contract: silence for the full ladder yields ErrTimeout; a response
// answering a different question yields ErrMismatch. Cancelling ctx
// abandons the query with ctx's error.
func (p *ClientPool) Query(ctx context.Context, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	p.inflight.Add(1)
	defer p.inflight.Add(-1)

	timeout := p.cfg.Timeout
	timer := time.NewTimer(timeout)
	defer timer.Stop()

	var lastErr error = ErrTimeout
	for attempt := 0; attempt <= p.cfg.Retries; attempt++ {
		if attempt > 0 {
			timeout = time.Duration(float64(timeout) * p.cfg.Backoff)
			if p.cfg.MaxTimeout > 0 && timeout > p.cfg.MaxTimeout {
				timeout = p.cfg.MaxTimeout
			}
		}
		s := p.socks[p.next.Add(1)%uint64(len(p.socks))]
		id, call, err := s.register()
		if err != nil {
			return nil, err
		}
		q := dnswire.NewQuery(id, name, qtype)
		wire, err := q.Encode()
		if err != nil {
			s.unregister(id)
			return nil, err
		}
		if _, err := s.conn.Write(wire); err != nil {
			s.unregister(id)
			if p.closed.Load() {
				return nil, ErrPoolClosed
			}
			lastErr = err
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(timeout)
		select {
		case msg := <-call.ch:
			// The reader already unregistered the ID when it delivered.
			if len(msg.Questions) == 0 ||
				dnswire.CanonicalName(msg.Questions[0].Name) != dnswire.CanonicalName(name) {
				return nil, ErrMismatch
			}
			return msg, nil
		case <-timer.C:
			// The query is on the wire; quarantine the ID rather than
			// freeing it so a late response can't be demuxed to whoever
			// registers this ID next.
			s.abandon(id)
			lastErr = ErrTimeout
		case <-ctx.Done():
			s.abandon(id)
			return nil, ctx.Err()
		case <-p.done:
			s.abandon(id)
			return nil, ErrPoolClosed
		}
	}
	return nil, lastErr
}

// Close releases the pool's sockets, stops the reader goroutines, and
// fails queries still waiting with ErrPoolClosed. Safe to call multiple
// times.
func (p *ClientPool) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	close(p.done)
	var first error
	for _, s := range p.socks {
		if err := s.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	p.wg.Wait()
	return first
}
