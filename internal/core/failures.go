package core

import (
	"context"

	"dnscontext/internal/parallel"
	"dnscontext/internal/trace"
)

// FailureStats summarizes the failure-path activity visible in the DNS
// dataset: retransmissions, SERVFAIL giveups, and truncation-driven TCP
// fallbacks. In a fault-free trace every field except Lookups is zero.
type FailureStats struct {
	// Lookups is the total number of DNS transactions examined.
	Lookups int
	// ServFails counts transactions that ended in SERVFAIL (RCode 2) —
	// under the simulator's fault model, client giveups after the full
	// retry ladder.
	ServFails int
	// Retried counts transactions that needed at least one
	// retransmission.
	Retried int
	// TotalRetries sums retransmissions across all transactions.
	TotalRetries int
	// TCPFallbacks counts transactions completed over TCP after a
	// truncated UDP response.
	TCPFallbacks int
}

// ServFailFraction is the fraction of lookups that gave up with SERVFAIL.
func (f FailureStats) ServFailFraction() float64 { return frac(f.ServFails, f.Lookups) }

// RetriedFraction is the fraction of lookups that retransmitted at least
// once.
func (f FailureStats) RetriedFraction() float64 { return frac(f.Retried, f.Lookups) }

// TCPFallbackFraction is the fraction of lookups completed over TCP after
// truncation.
func (f FailureStats) TCPFallbackFraction() float64 { return frac(f.TCPFallbacks, f.Lookups) }

// MeanAttempts is the mean number of transmissions per lookup (1.0 in a
// fault-free trace).
func (f FailureStats) MeanAttempts() float64 {
	if f.Lookups == 0 {
		return 0
	}
	return 1 + float64(f.TotalRetries)/float64(f.Lookups)
}

func frac(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// Failures scans the DNS dataset for fault-path activity. The scan is
// chunked across the analysis worker pool; summing per-chunk tallies is
// order-independent integer arithmetic, so the result is identical for
// every worker count. A summary-grade analysis has no dataset to scan;
// it returns the stats accumulated during the streaming ingest, which
// tally the same fields over the same records.
func (a *Analysis) Failures() FailureStats {
	if a.failures != nil {
		return *a.failures
	}
	chunks := parallel.Chunks(len(a.DS.DNS), parallel.Workers(a.Opts.Workers))
	parts, _ := parallel.Map(context.Background(), a.Opts.Workers, len(chunks),
		func(ci int) (FailureStats, error) {
			var fs FailureStats
			for i := chunks[ci].Lo; i < chunks[ci].Hi; i++ {
				d := &a.DS.DNS[i]
				fs.Lookups++
				if failureRecord(d) {
					fs.ServFails++
				}
				if d.Retries > 0 {
					fs.Retried++
					fs.TotalRetries += int(d.Retries)
				}
				if d.TC {
					fs.TCPFallbacks++
				}
			}
			return fs, nil
		})
	var total FailureStats
	for _, p := range parts {
		total.Lookups += p.Lookups
		total.ServFails += p.ServFails
		total.Retried += p.Retried
		total.TotalRetries += p.TotalRetries
		total.TCPFallbacks += p.TCPFallbacks
	}
	return total
}

// HasFailures reports whether the dataset shows any fault-path activity
// at all — the gate for the report's failure section.
func (f FailureStats) HasFailures() bool {
	return f.ServFails > 0 || f.Retried > 0 || f.TCPFallbacks > 0
}

// failureRecord reports whether DNS record d is a failed transaction for
// pairing purposes (a SERVFAIL carries no addresses, so it can never pair
// anyway; the predicate exists for clarity at call sites).
func failureRecord(d *trace.DNSRecord) bool {
	return d.RCode == 2 && len(d.Answers) == 0
}
