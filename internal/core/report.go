package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"dnscontext/internal/resolver"
	"dnscontext/internal/stats"
)

// Report renders the full paper reproduction — every table and figure —
// as text. profiles supplies the resolver-platform address book. A
// summary-grade analysis (no resident dataset) renders WriteSummary
// instead, since the figure computations need the raw records.
func (a *Analysis) Report(w io.Writer, profiles []resolver.PlatformProfile) error {
	if a.DS == nil {
		return a.WriteSummary(w)
	}
	// Errors from fmt.Fprintf to w are surfaced once at the end via this
	// small tracking writer, keeping the body readable.
	tw := &trackingWriter{w: w}

	fmt.Fprintf(tw, "=== Putting DNS in Context: reproduction report ===\n")
	st := a.DatasetStats()
	fmt.Fprintf(tw, "connections: %d (%.0f%% TCP / %.0f%% UDP; paper: 88/12)   dns transactions: %d\n",
		st.Connections, 100*st.TCPFraction, 100*st.UDPFraction, st.DNSTransactions)
	fmt.Fprintf(tw, "houses: %d   window: %v   conns/house/day: %.0f\n\n",
		st.Houses, st.Window.Round(time.Minute), st.ConnsPerHousePerDay)

	// --- §4 pairing & blocking ---
	unamb, paired := a.PairingAmbiguity()
	fmt.Fprintf(tw, "--- Section 4: pairing ---\n")
	fmt.Fprintf(tw, "paired connections: %d (%.1f%% of all)\n", paired, pct(paired, len(a.Paired)))
	fmt.Fprintf(tw, "single non-expired candidate: %.1f%% (paper: >82%%)\n\n", 100*unamb)

	f1 := a.Figure1()
	fmt.Fprintf(tw, "--- Figure 1: DNS-completion to connection-start gap ---\n")
	if f1.Gaps.N() > 0 {
		fmt.Fprint(tw, stats.RenderCDFs(stats.PlotOptions{
			Title: "Fig 1. CDF of gap (msec)", XLabel: "msec", LogX: true, XMin: 0.1,
		}, stats.Curve{Name: "gap", ECDF: f1.Gaps}))
	}
	fmt.Fprintf(tw, "first-use fraction within %v: %.0f%% (paper: 91%%)\n", f1.Knee, 100*f1.FirstUseWithinKnee)
	fmt.Fprintf(tw, "first-use fraction beyond %v:  %.0f%% (paper: 21%%)\n\n", f1.Knee, 100*f1.FirstUseBeyondKnee)

	// --- Table 1 ---
	fmt.Fprintf(tw, "--- Table 1: resolver platforms ---\n")
	fmt.Fprintf(tw, "%-11s %9s %10s %9s %9s\n", "Resolver", "% Houses", "% Lookups", "% Conns", "% Bytes")
	for _, row := range a.Table1(profiles) {
		fmt.Fprintf(tw, "%-11s %9.1f %10.1f %9.1f %9.1f\n",
			row.Platform, 100*row.HousesFraction, 100*row.LookupsFraction,
			100*row.ConnsFraction, 100*row.BytesFraction)
	}
	fmt.Fprintf(tw, "houses using only the local resolvers: %.1f%% (paper: ~16%%)\n\n",
		100*OnlyLocalFraction(a.PerHouse(profiles)))

	// --- Table 2 ---
	fmt.Fprintf(tw, "--- Table 2: DNS information origin ---\n")
	fmt.Fprintf(tw, "%-6s %-24s %10s %8s\n", "Class", "Desc.", "Conns", "% Conns")
	desc := map[Class]string{
		ClassN: "No DNS", ClassLC: "Local Cache", ClassP: "Prefetched",
		ClassSC: "Shared Resolver Cache", ClassR: "Requires Resolution",
	}
	for _, row := range a.Table2() {
		fmt.Fprintf(tw, "%-6s %-24s %10d %8.1f\n", row.Class, desc[row.Class], row.Conns, 100*row.Fraction)
	}
	fmt.Fprintf(tw, "blocked (SC+R): %.1f%% (paper: 42.1%%)   shared-cache hit rate: %.1f%% (paper: 62.6%%)\n\n",
		100*a.BlockedFraction(), 100*a.SharedCacheHitRate())

	// --- §5.1 ---
	nd := a.NoDNS()
	fmt.Fprintf(tw, "--- Section 5.1: connections without DNS ---\n")
	fmt.Fprintf(tw, "N connections: %d, high-port (p2p-like): %.1f%% (paper: 81.6%%)\n", nd.Total, 100*nd.HighPortFraction)
	fmt.Fprintf(tw, "DoT (853) connections: %d (paper: 0)\n", nd.DoTConns)
	fmt.Fprintf(tw, "unpaired non-p2p share of all conns: %.1f%% (paper: 1.3%%)\n", 100*nd.UnpairedNonP2PFraction)
	for _, port := range []uint16{443, 123, 80} {
		fmt.Fprintf(tw, "  reserved-port N conns on %d: %d\n", port, nd.ReservedPortCounts[port])
	}
	fmt.Fprintln(tw)

	// --- §5.2 ---
	ttl := a.TTLViolations()
	pf := a.Prefetch()
	fmt.Fprintf(tw, "--- Section 5.2: local cache and prefetching ---\n")
	fmt.Fprintf(tw, "LC conns using expired records: %.1f%% (paper: 22.2%%)\n", 100*ttl.LCExpiredFraction)
	fmt.Fprintf(tw, "P conns using expired records:  %.1f%% (paper: 12.4%%)\n", 100*ttl.PExpiredFraction)
	if ttl.Lateness.N() > 0 {
		fmt.Fprintf(tw, "violation lateness: %.0f%% beyond 30 s (paper: 82%%), median %.0f s (paper: 890 s), p90 %.0f s (paper: ~19k s)\n",
			100*ttl.LatenessBeyond30s, ttl.Lateness.Median(), ttl.Lateness.Quantile(0.9))
	}
	fmt.Fprintf(tw, "median lookup-to-use gap: P %.0f s (paper: 310 s), LC %.0f s (paper: 1033 s)\n",
		ttl.GapMedianP.Seconds(), ttl.GapMedianLC.Seconds())
	fmt.Fprintf(tw, "unused lookups: %.1f%% (paper: 37.8%%); speculative lookups used: %.1f%% (paper: 22.3%%)\n\n",
		100*pf.UnusedFraction, 100*pf.SpeculativeUsedFraction)

	// --- Figure 2 / §6 ---
	f2 := a.Figure2()
	fmt.Fprintf(tw, "--- Figure 2 / Section 6: DNS performance for SC and R ---\n")
	if f2.LookupDelays.N() > 0 {
		fmt.Fprint(tw, stats.RenderCDFs(stats.PlotOptions{
			Title: "Fig 2 (top). CDF of DNS lookup delay (msec)", XLabel: "msec", LogX: true, XMin: 0.5,
		}, stats.Curve{Name: "SC+R", ECDF: f2.LookupDelays}))
		fmt.Fprintf(tw, "lookup delay: median %.1f ms (paper: 8.5), p75 %.1f ms (paper: 20), >100 ms: %.1f%% (paper: 3.3%%)\n",
			f2.LookupDelays.Median(), f2.LookupDelays.Quantile(0.75), 100*f2.LookupDelays.FractionAbove(100))
	}
	if f2.ContributionAll.N() > 0 {
		fmt.Fprint(tw, stats.RenderCDFs(stats.PlotOptions{
			Title: "Fig 2 (bottom). CDF of DNS %% of transaction", XLabel: "% of transaction", LogX: true, XMin: 0.001,
		},
			stats.Curve{Name: "all", ECDF: f2.ContributionAll},
			stats.Curve{Name: "SC", ECDF: f2.ContributionSC},
			stats.Curve{Name: "R", ECDF: f2.ContributionR}))
		fmt.Fprintf(tw, "DNS >1%% of transaction: %.0f%% (paper: 20%%); >=10%%: %.0f%% (paper: 8%%); R >1%%: %.0f%% (paper: 30%%)\n",
			100*f2.ContributionAll.FractionAbove(1), 100*f2.ContributionAll.FractionAbove(10),
			100*f2.ContributionR.FractionAbove(1))
	}
	sig := a.Significance()
	fmt.Fprintf(tw, "significance quadrants over SC+R (abs>%v, rel>%.0f%%):\n", a.Opts.InsignificantAbs, 100*a.Opts.InsignificantRel)
	fmt.Fprintf(tw, "  both insignificant: %.1f%% (paper: 64.0%%)\n", 100*sig.BothInsignificant)
	fmt.Fprintf(tw, "  only relative high: %.1f%% (paper: 11.5%%)\n", 100*sig.OnlyRelHigh)
	fmt.Fprintf(tw, "  only absolute high: %.1f%% (paper: 15.9%%)\n", 100*sig.OnlyAbsHigh)
	fmt.Fprintf(tw, "  both significant:   %.1f%% (paper: 8.6%%) -> %.1f%% of all conns (paper: 3.6%%)\n\n",
		100*sig.BothSignificant, 100*sig.OverallSignificant)

	// --- §7 / Figure 3 ---
	rp := a.ResolverPerformance(profiles)
	fmt.Fprintf(tw, "--- Section 7 / Figure 3: per-platform comparison ---\n")
	fmt.Fprintf(tw, "shared-cache hit rate by platform (paper: CF 83.6 / Local 71.2 / OpenDNS 58.8 / Google 23.0):\n")
	for _, p := range profiles {
		if hr, ok := rp.HitRate[p.ID]; ok {
			fmt.Fprintf(tw, "  %-11s %.1f%%\n", p.ID, 100*hr)
		}
	}
	var rCurves, tCurves []stats.Curve
	for _, p := range profiles {
		if e := rp.RDelays[p.ID]; e != nil && e.N() > 0 {
			rCurves = append(rCurves, stats.Curve{Name: p.ID.String(), ECDF: e})
		}
		if e := rp.Throughput[p.ID]; e != nil && e.N() > 0 {
			tCurves = append(tCurves, stats.Curve{Name: p.ID.String(), ECDF: e})
		}
	}
	if len(rCurves) > 0 {
		fmt.Fprint(tw, stats.RenderCDFs(stats.PlotOptions{
			Title: "Fig 3 (top). CDF of R lookup delay by platform (msec)", XLabel: "msec", LogX: true, XMin: 1,
		}, rCurves...))
	}
	if len(tCurves) > 0 {
		if rp.GoogleNoCC.N() > 0 {
			tCurves = append(tCurves, stats.Curve{Name: "Google-noCC", ECDF: rp.GoogleNoCC})
		}
		fmt.Fprint(tw, stats.RenderCDFs(stats.PlotOptions{
			Title: "Fig 3 (bottom). CDF of throughput by platform (bps)", XLabel: "bps", LogX: true, XMin: 100,
		}, tCurves...))
	}
	fmt.Fprintf(tw, "connectivitycheck share of Google SC+R conns: %.1f%% (paper: 23.5%%), other platforms: %.1f%% (paper: 0.3%%)\n\n",
		100*rp.GoogleCCFraction, 100*rp.NonGoogleCCFraction)

	// --- Fault injection (only for traces that show failure activity) ---
	if fs := a.Failures(); fs.HasFailures() {
		fmt.Fprintf(tw, "--- Fault injection: failure-adjusted view ---\n")
		fmt.Fprintf(tw, "lookups: %d   servfail: %.2f%%   retried: %.2f%%   tcp-fallback: %.2f%%   mean attempts: %.3f\n",
			fs.Lookups, 100*fs.ServFailFraction(), 100*fs.RetriedFraction(),
			100*fs.TCPFallbackFraction(), fs.MeanAttempts())
		fmt.Fprintf(tw, "blocked (SC+R) under faults: %.1f%% — retransmission delay inflates lookup durations,\n", 100*a.BlockedFraction())
		fmt.Fprintf(tw, "shifting the SC/R split and the blocking distribution relative to a fault-free run\n\n")
	}

	// --- §8 ---
	wh := a.WholeHouse()
	fmt.Fprintf(tw, "--- Section 8: possible improvements ---\n")
	fmt.Fprintf(tw, "whole-house cache: %.1f%% of all conns move to LC (paper: 9.8%%); SC benefit %.0f%% (paper: 22%%), R benefit %.0f%% (paper: 25%%)\n",
		100*wh.MovedFraction, 100*wh.SCBenefit, 100*wh.RBenefit)

	sl := a.Slack()
	fmt.Fprintf(tw, "lookup slack (first-use gap): >1s for %.0f%%, >10s for %.0f%% of used lookups; +100ms would newly block %.1f%% of conns\n",
		100*sl.SlackOver1s, 100*sl.SlackOver10s, 100*a.TolerableExtraDelay(100*time.Millisecond))

	rf := a.RefreshSimulation(10 * time.Second)
	fmt.Fprintf(tw, "refresh simulation (Table 3), %d DNS-using conns over %v, %d houses:\n", rf.Conns, rf.Window.Round(time.Minute), rf.Houses)
	fmt.Fprintf(tw, "  %-22s %12s %12s\n", "", "Standard", "Refresh All")
	fmt.Fprintf(tw, "  %-22s %12d %12d\n", "DNS lookups", rf.Standard.Lookups, rf.RefreshAll.Lookups)
	fmt.Fprintf(tw, "  %-22s %12.3f %12.3f\n", "Lookups/sec/house", rf.Standard.LookupsPerSecPerHouse, rf.RefreshAll.LookupsPerSecPerHouse)
	fmt.Fprintf(tw, "  %-22s %11.1f%% %11.1f%%\n", "Cache hits", 100*rf.Standard.HitRate, 100*rf.RefreshAll.HitRate)
	fmt.Fprintf(tw, "  lookup multiplier: %.0fx (paper: ~144x)\n", rf.LookupMultiplier)

	return tw.err
}

// WriteSummary renders the classification summary available in every
// analysis grade: the totals, Table 2, the blocking and shared-cache
// aggregates, the derived per-resolver thresholds, failure statistics,
// and the result digest. The output is byte-identical whether the
// analysis came from the in-memory pipeline, the out-of-core streaming
// path, or a multi-process shard merge — the parity the stream tests
// pin.
func (a *Analysis) WriteSummary(w io.Writer) error {
	tw := &trackingWriter{w: w}

	fmt.Fprintf(tw, "=== dnscontext analysis summary ===\n")
	fmt.Fprintf(tw, "connections: %d   dns transactions: %d\n\n", a.connTotal, a.dnsTotal)

	fmt.Fprintf(tw, "--- Table 2: DNS information origin ---\n")
	fmt.Fprintf(tw, "%-6s %-24s %10s %8s\n", "Class", "Desc.", "Conns", "% Conns")
	desc := map[Class]string{
		ClassN: "No DNS", ClassLC: "Local Cache", ClassP: "Prefetched",
		ClassSC: "Shared Resolver Cache", ClassR: "Requires Resolution",
	}
	for _, row := range a.Table2() {
		fmt.Fprintf(tw, "%-6s %-24s %10d %8.1f\n", row.Class, desc[row.Class], row.Conns, 100*row.Fraction)
	}
	fmt.Fprintf(tw, "blocked (SC+R): %.1f%%   shared-cache hit rate: %.1f%%\n\n",
		100*a.BlockedFraction(), 100*a.SharedCacheHitRate())

	fmt.Fprintf(tw, "--- per-resolver SC/R thresholds (default %v) ---\n", a.Opts.DefaultSCThreshold)
	addrs := make([]string, 0, len(a.Thresholds))
	for addr := range a.Thresholds {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		fmt.Fprintf(tw, "  %-16s %v\n", addr, a.Thresholds[addr])
	}
	fmt.Fprintln(tw)

	if fs := a.Failures(); fs.HasFailures() {
		fmt.Fprintf(tw, "--- failure-path activity ---\n")
		fmt.Fprintf(tw, "lookups: %d   servfail: %.2f%%   retried: %.2f%%   tcp-fallback: %.2f%%   mean attempts: %.3f\n\n",
			fs.Lookups, 100*fs.ServFailFraction(), 100*fs.RetriedFraction(),
			100*fs.TCPFallbackFraction(), fs.MeanAttempts())
	}

	fmt.Fprintf(tw, "digest: %016x\n", a.Digest())
	return tw.err
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// trackingWriter records the first write error so Report can stay
// readable.
type trackingWriter struct {
	w   io.Writer
	err error
}

func (t *trackingWriter) Write(p []byte) (int, error) {
	if t.err != nil {
		return len(p), nil
	}
	if _, err := t.w.Write(p); err != nil {
		t.err = err
	}
	return len(p), nil
}
