package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dnscontext/internal/resolver"
	"dnscontext/internal/stats"
)

// ExportFigureData writes every table and figure as CSV files into dir
// (created if needed), for external plotting tools. One file per
// artifact:
//
//	table1.csv, table2.csv, table3.csv
//	fig1_gap_cdf.csv
//	fig2_delay_cdf.csv, fig2_contribution_cdf.csv
//	fig3_rdelay_cdf.csv, fig3_throughput_cdf.csv
//
// CDF files carry (x, cdf[, series]) rows with up to points rows per
// series.
func (a *Analysis) ExportFigureData(dir string, points int, profiles []resolver.PlatformProfile) error {
	if points <= 0 {
		points = 200
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fill func(*strings.Builder)) error {
		var b strings.Builder
		fill(&b)
		return os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644)
	}
	curve := func(b *strings.Builder, series string, e *stats.ECDF) {
		for _, p := range e.Points(points) {
			if series == "" {
				fmt.Fprintf(b, "%g,%g\n", p.X, p.Y)
			} else {
				fmt.Fprintf(b, "%s,%g,%g\n", series, p.X, p.Y)
			}
		}
	}

	if err := write("table1.csv", func(b *strings.Builder) {
		b.WriteString("platform,houses_frac,lookups_frac,conns_frac,bytes_frac\n")
		for _, row := range a.Table1(profiles) {
			fmt.Fprintf(b, "%s,%g,%g,%g,%g\n", row.Platform,
				row.HousesFraction, row.LookupsFraction, row.ConnsFraction, row.BytesFraction)
		}
	}); err != nil {
		return err
	}

	if err := write("table2.csv", func(b *strings.Builder) {
		b.WriteString("class,conns,fraction\n")
		for _, row := range a.Table2() {
			fmt.Fprintf(b, "%s,%d,%g\n", row.Class, row.Conns, row.Fraction)
		}
	}); err != nil {
		return err
	}

	rf := a.RefreshSimulation(10 * time.Second)
	if err := write("table3.csv", func(b *strings.Builder) {
		b.WriteString("policy,lookups,hits,misses,hit_rate,lookups_per_sec_per_house\n")
		for _, row := range []struct {
			name string
			p    CachePolicy
		}{{"standard", rf.Standard}, {"refresh_all", rf.RefreshAll}} {
			fmt.Fprintf(b, "%s,%d,%d,%d,%g,%g\n", row.name,
				row.p.Lookups, row.p.Hits, row.p.Misses, row.p.HitRate, row.p.LookupsPerSecPerHouse)
		}
	}); err != nil {
		return err
	}

	f1 := a.Figure1()
	if err := write("fig1_gap_cdf.csv", func(b *strings.Builder) {
		b.WriteString("gap_ms,cdf\n")
		curve(b, "", f1.Gaps)
	}); err != nil {
		return err
	}

	f2 := a.Figure2()
	if err := write("fig2_delay_cdf.csv", func(b *strings.Builder) {
		b.WriteString("delay_ms,cdf\n")
		curve(b, "", f2.LookupDelays)
	}); err != nil {
		return err
	}
	if err := write("fig2_contribution_cdf.csv", func(b *strings.Builder) {
		b.WriteString("series,contribution_pct,cdf\n")
		curve(b, "all", f2.ContributionAll)
		curve(b, "SC", f2.ContributionSC)
		curve(b, "R", f2.ContributionR)
	}); err != nil {
		return err
	}

	rp := a.ResolverPerformance(profiles)
	if err := write("fig3_rdelay_cdf.csv", func(b *strings.Builder) {
		b.WriteString("platform,delay_ms,cdf\n")
		for _, p := range profiles {
			if e := rp.RDelays[p.ID]; e != nil && e.N() > 0 {
				curve(b, p.ID.String(), e)
			}
		}
	}); err != nil {
		return err
	}
	return write("fig3_throughput_cdf.csv", func(b *strings.Builder) {
		b.WriteString("platform,throughput_bps,cdf\n")
		for _, p := range profiles {
			if e := rp.Throughput[p.ID]; e != nil && e.N() > 0 {
				curve(b, p.ID.String(), e)
			}
		}
		if rp.GoogleNoCC.N() > 0 {
			curve(b, "Google-noCC", rp.GoogleNoCC)
		}
	})
}
