package core

import (
	"context"
	"time"

	"dnscontext/internal/parallel"
	"dnscontext/internal/trace"
)

// WholeHouse is §8's first what-if: would a TTL-honoring cache in each
// home router have converted blocked (SC/R) connections into local-cache
// (LC) hits? A connection benefits when any device in the same house
// looked the name up recently enough that the record would still be live
// in a shared house cache when this connection's lookup was issued.
type WholeHouse struct {
	// MovedFraction is the share of ALL connections that would move from
	// SC/R to LC (paper: 9.8%).
	MovedFraction float64
	// SCBenefit / RBenefit are the shares of SC and R connections that
	// benefit (paper: ~22% and ~25%).
	SCBenefit float64
	RBenefit  float64
	// Moved, SCTotal, RTotal are the underlying counts.
	Moved, SCTotal, RTotal int
}

// houseTally is one house's contribution to the whole-house what-if.
type houseTally struct {
	moved, scMoved, rMoved, scTotal, rTotal int
}

// WholeHouse runs the simulation over the analyzed trace. A house's
// cache holds only that house's lookups and serves only that house's
// connections, so each house shard replays independently on the worker
// pool and the counts are summed.
func (a *Analysis) WholeHouse() WholeHouse {
	parts, _ := parallel.Map(context.Background(), a.Opts.Workers, len(a.shards),
		func(s int) (houseTally, error) { return a.wholeHouseShard(s), nil })

	var out WholeHouse
	var scMoved, rMoved int
	for _, p := range parts {
		out.Moved += p.moved
		out.SCTotal += p.scTotal
		out.RTotal += p.rTotal
		scMoved += p.scMoved
		rMoved += p.rMoved
	}
	if len(a.Paired) > 0 {
		out.MovedFraction = float64(out.Moved) / float64(len(a.Paired))
	}
	if out.SCTotal > 0 {
		out.SCBenefit = float64(scMoved) / float64(out.SCTotal)
	}
	if out.RTotal > 0 {
		out.RBenefit = float64(rMoved) / float64(out.RTotal)
	}
	return out
}

// wholeHouseShard replays one house. cache[sym] is the expiry time of
// the freshest record a whole-house cache would hold, keyed by
// query-name symbol (no string hashing); we walk the house's
// connections in time order, advancing a cursor over the house's own
// DNS records, so the cache reflects exactly the lookups that completed
// before each connection's own lookup started.
func (a *Analysis) wholeHouseShard(shardID int) (out houseTally) {
	sh := &a.shards[shardID]
	cache := make(map[trace.Sym]time.Duration, len(sh.dns)/4+1) // name sym -> expiry
	dnsCursor := 0

	for _, ci := range sh.conns {
		pc := &a.Paired[ci]
		if pc.Class != ClassSC && pc.Class != ClassR {
			continue
		}
		d := &a.DS.DNS[pc.DNS]

		// Advance the cache with every DNS response completed before this
		// connection's lookup was issued.
		for dnsCursor < len(sh.dns) && a.DS.DNS[sh.dns[dnsCursor]].TS < d.QueryTS {
			ri := sh.dns[dnsCursor]
			rec := &a.DS.DNS[ri]
			dnsCursor++
			if len(rec.Answers) == 0 {
				continue
			}
			if prev, ok := cache[a.qsym[ri]]; !ok || a.expiry[ri] > prev {
				cache[a.qsym[ri]] = a.expiry[ri]
			}
		}

		if pc.Class == ClassSC {
			out.scTotal++
		} else {
			out.rTotal++
		}
		if exp, ok := cache[a.qsym[pc.DNS]]; ok && d.QueryTS < exp {
			out.moved++
			if pc.Class == ClassSC {
				out.scMoved++
			} else {
				out.rMoved++
			}
		}
	}
	return out
}
