package core

import (
	"net/netip"
	"time"
)

// WholeHouse is §8's first what-if: would a TTL-honoring cache in each
// home router have converted blocked (SC/R) connections into local-cache
// (LC) hits? A connection benefits when any device in the same house
// looked the name up recently enough that the record would still be live
// in a shared house cache when this connection's lookup was issued.
type WholeHouse struct {
	// MovedFraction is the share of ALL connections that would move from
	// SC/R to LC (paper: 9.8%).
	MovedFraction float64
	// SCBenefit / RBenefit are the shares of SC and R connections that
	// benefit (paper: ~22% and ~25%).
	SCBenefit float64
	RBenefit  float64
	// Moved, SCTotal, RTotal are the underlying counts.
	Moved, SCTotal, RTotal int
}

type houseNameKey struct {
	house netip.Addr
	name  string
}

// WholeHouse runs the simulation over the analyzed trace.
func (a *Analysis) WholeHouse() WholeHouse {
	var out WholeHouse

	// lastCovered[house,name] is the expiry time of the freshest record
	// a whole-house cache would hold, built by replaying the DNS dataset.
	// We walk connections in time order, advancing a DNS cursor, so the
	// cache reflects exactly the lookups that completed before each
	// connection's own lookup started.
	type cover struct{ expires time.Duration }
	cache := make(map[houseNameKey]cover)
	dnsCursor := 0

	for i := range a.Paired {
		pc := &a.Paired[i]
		if pc.Class != ClassSC && pc.Class != ClassR {
			continue
		}
		conn := &a.DS.Conns[pc.Conn]
		d := &a.DS.DNS[pc.DNS]

		// Advance the cache with every DNS response completed before this
		// connection's lookup was issued.
		for dnsCursor < len(a.DS.DNS) && a.DS.DNS[dnsCursor].TS < d.QueryTS {
			rec := &a.DS.DNS[dnsCursor]
			dnsCursor++
			if len(rec.Answers) == 0 {
				continue
			}
			k := houseNameKey{house: rec.Client, name: rec.Query}
			exp := rec.ExpiresAt()
			if prev, ok := cache[k]; !ok || exp > prev.expires {
				cache[k] = cover{expires: exp}
			}
		}

		if pc.Class == ClassSC {
			out.SCTotal++
		} else {
			out.RTotal++
		}
		k := houseNameKey{house: conn.Orig, name: d.Query}
		if cov, ok := cache[k]; ok && d.QueryTS < cov.expires {
			out.Moved++
			if pc.Class == ClassSC {
				out.SCBenefit++
			} else {
				out.RBenefit++
			}
		}
	}

	if len(a.Paired) > 0 {
		out.MovedFraction = float64(out.Moved) / float64(len(a.Paired))
	}
	if out.SCTotal > 0 {
		out.SCBenefit /= float64(out.SCTotal)
	}
	if out.RTotal > 0 {
		out.RBenefit /= float64(out.RTotal)
	}
	return out
}
