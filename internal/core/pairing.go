package core

import (
	"net/netip"
	"sort"

	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
)

// pairKey indexes DNS records by (client, answered address).
type pairKey struct {
	client netip.Addr
	addr   netip.Addr
}

// pairIndex maps each (client, address) to the DNS records (dataset
// indices, ascending by completion time) whose answers contain that
// address.
type pairIndex map[pairKey][]int32

// buildPairIndex constructs the DN-Hunter lookup structure. The dataset
// must be time-sorted.
func buildPairIndex(ds *trace.Dataset) pairIndex {
	idx := make(pairIndex)
	for i := range ds.DNS {
		d := &ds.DNS[i]
		for _, a := range d.Answers {
			k := pairKey{client: d.Client, addr: a.Addr}
			idx[k] = append(idx[k], int32(i))
		}
	}
	return idx
}

// pair finds the DN-Hunter pairing for one connection: the most recent
// non-expired DNS lookup by the connection's originator whose answers
// contain the destination address; if every candidate is expired, the most
// recent one. It also reports the number of non-expired candidates (the
// §4 ambiguity measure).
//
// rng is only consulted under PairRandom, which picks uniformly among the
// non-expired candidates.
func (a *Analysis) pair(idx pairIndex, conn *trace.ConnRecord, rng *stats.RNG) (dnsIdx int, candidates int) {
	recs := idx[pairKey{client: conn.Orig, addr: conn.Resp}]
	if len(recs) == 0 {
		return -1, 0
	}
	// Binary search for the last record completing at or before the
	// connection start.
	hi := sort.Search(len(recs), func(i int) bool {
		return a.DS.DNS[recs[i]].TS > conn.TS
	})
	if hi == 0 {
		return -1, 0
	}
	cand := recs[:hi]

	// Count and locate non-expired candidates, scanning backwards.
	var fresh []int32
	for i := len(cand) - 1; i >= 0; i-- {
		d := &a.DS.DNS[cand[i]]
		if conn.TS < d.ExpiresAt() {
			fresh = append(fresh, cand[i])
			continue
		}
		// Everything earlier with the same TTL profile is likelier
		// expired too, but mixed TTLs make that unsound; keep scanning.
	}
	if len(fresh) == 0 {
		// All expired: most recent.
		return int(cand[len(cand)-1]), 0
	}
	if a.Opts.Pairing == PairRandom && len(fresh) > 1 {
		return int(fresh[rng.Intn(len(fresh))]), len(fresh)
	}
	// fresh[0] is the most recent (we appended backwards).
	return int(fresh[0]), len(fresh)
}
