package core

import (
	"net/netip"
	"sort"

	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
)

// shardIndex is the DN-Hunter lookup structure for one client shard: it
// maps each answered address to the shard's DNS records (dataset
// indices, ascending by completion time) whose answers contain it. The
// client is implicit — every record in a shard shares one — which is
// exactly what lets the pipeline shard the trace with no cross-shard
// pairing candidates.
type shardIndex map[netip.Addr][]int32

// buildShardIndex constructs the lookup structure over one shard's DNS
// records (indices into ds.DNS, ascending). The dataset must be
// time-sorted.
func buildShardIndex(ds *trace.Dataset, dns []int32) shardIndex {
	idx := make(shardIndex)
	for _, i := range dns {
		d := &ds.DNS[i]
		for _, ans := range d.Answers {
			idx[ans.Addr] = append(idx[ans.Addr], i)
		}
	}
	return idx
}

// pair finds the DN-Hunter pairing for one connection: the most recent
// non-expired DNS lookup by the connection's originator whose answers
// contain the destination address; if every candidate is expired, the most
// recent one. It also reports the number of non-expired candidates (the
// §4 ambiguity measure).
//
// rng is only consulted under PairRandom, which picks uniformly among the
// non-expired candidates.
func (a *Analysis) pair(idx shardIndex, conn *trace.ConnRecord, rng *stats.RNG) (dnsIdx int, candidates int) {
	recs := idx[conn.Resp]
	if len(recs) == 0 {
		return -1, 0
	}
	// Binary search for the last record completing at or before the
	// connection start.
	hi := sort.Search(len(recs), func(i int) bool {
		return a.DS.DNS[recs[i]].TS > conn.TS
	})
	if hi == 0 {
		return -1, 0
	}
	cand := recs[:hi]

	// Count and locate non-expired candidates, scanning backwards.
	var fresh []int32
	for i := len(cand) - 1; i >= 0; i-- {
		d := &a.DS.DNS[cand[i]]
		if conn.TS < d.ExpiresAt() {
			fresh = append(fresh, cand[i])
			continue
		}
		// Everything earlier with the same TTL profile is likelier
		// expired too, but mixed TTLs make that unsound; keep scanning.
	}
	if len(fresh) == 0 {
		// All expired: most recent.
		return int(cand[len(cand)-1]), 0
	}
	if a.Opts.Pairing == PairRandom && len(fresh) > 1 {
		return int(fresh[rng.Intn(len(fresh))]), len(fresh)
	}
	// fresh[0] is the most recent (we appended backwards).
	return int(fresh[0]), len(fresh)
}
