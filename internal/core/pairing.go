package core

import (
	"net/netip"
	"sort"
	"time"

	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
)

// pairEnt is one candidate in a shard index bucket: the DNS record's
// completion time and precomputed TTL expiry carried inline next to its
// dataset index. The pairing scan — binary search plus backward expiry
// sweep — reads only these entries, walking one contiguous bucket
// instead of chasing pointers into the (much larger, scattered) record
// array.
type pairEnt struct {
	ts     time.Duration
	expiry time.Duration
	idx    int32
}

// shardIndex is the DN-Hunter lookup structure for one client shard: it
// maps each answered address to the shard's DNS records (ascending by
// completion time) whose answers contain it. The client is implicit —
// every record in a shard shares one — which is exactly what lets the
// pipeline shard the trace with no cross-shard pairing candidates.
type shardIndex map[netip.Addr][]pairEnt

// buildShardIndex constructs the lookup structure over one shard's DNS
// records (indices into ds.DNS, ascending). The dataset must be
// time-sorted.
//
// A counting pre-pass sizes every bucket exactly: all buckets are
// carved out of one shared backing slice, so the fill pass appends
// within capacity and the grow-by-append reallocation churn of the
// naive construction disappears.
func (a *Analysis) buildShardIndex(dns []int32) shardIndex {
	total := 0
	// Distinct answered addresses are bounded by (and usually close to)
	// the shard's record count.
	counts := make(map[netip.Addr]int32, len(dns))
	for _, i := range dns {
		for _, ans := range a.DS.DNS[i].Answers {
			counts[ans.Addr]++
			total++
		}
	}
	backing := make([]pairEnt, total)
	idx := make(shardIndex, len(counts))
	off := int32(0)
	for addr, c := range counts {
		idx[addr] = backing[off:off : off+c]
		off += c
	}
	for _, i := range dns {
		d := &a.DS.DNS[i]
		ent := pairEnt{ts: d.TS, expiry: a.expiry[i], idx: i}
		for _, ans := range d.Answers {
			idx[ans.Addr] = append(idx[ans.Addr], ent)
		}
	}
	return idx
}

// pair finds the DN-Hunter pairing for one connection: the most recent
// non-expired DNS lookup by the connection's originator whose answers
// contain the destination address; if every candidate is expired, the most
// recent one. It also reports the number of non-expired candidates (the
// §4 ambiguity measure).
//
// rng is only consulted under PairRandom, which picks uniformly among the
// non-expired candidates.
//
// scratch is the caller-owned backing for the fresh-candidate scan; the
// (possibly grown) scratch is returned for reuse, so a shard's pairing
// loop settles into zero allocations per connection.
func (a *Analysis) pair(idx shardIndex, conn *trace.ConnRecord, rng *stats.RNG, scratch []int32) (dnsIdx int, candidates int, _ []int32) {
	return pairConn(a.Opts.Pairing, idx, conn, rng, scratch)
}

// pairConn is the policy-parameterized pairing scan shared by the
// in-memory pipeline (where pairEnt.idx indexes the whole dataset) and
// the streaming per-client classifier (where it indexes the client's
// own record list). Sharing the scan — binary search, backward expiry
// sweep, tie-breaking, RNG draw order — is what makes the two paths
// bit-identical rather than merely similar.
func pairConn(policy PairingPolicy, idx shardIndex, conn *trace.ConnRecord, rng *stats.RNG, scratch []int32) (dnsIdx int, candidates int, _ []int32) {
	recs := idx[conn.Resp]
	if len(recs) == 0 {
		return -1, 0, scratch
	}
	// Binary search for the last record completing at or before the
	// connection start. The completion times ride in the bucket entries,
	// so the search never leaves the bucket's contiguous memory.
	hi := sort.Search(len(recs), func(i int) bool {
		return recs[i].ts > conn.TS
	})
	if hi == 0 {
		return -1, 0, scratch
	}
	cand := recs[:hi]

	// Count and locate non-expired candidates, scanning backwards
	// against the expiry carried in each entry.
	fresh := scratch[:0]
	for i := len(cand) - 1; i >= 0; i-- {
		if conn.TS < cand[i].expiry {
			fresh = append(fresh, cand[i].idx)
			continue
		}
		// Everything earlier with the same TTL profile is likelier
		// expired too, but mixed TTLs make that unsound; keep scanning.
	}
	if len(fresh) == 0 {
		// All expired: most recent.
		return int(cand[len(cand)-1].idx), 0, fresh
	}
	if policy == PairRandom && len(fresh) > 1 {
		return int(fresh[rng.Intn(len(fresh))]), len(fresh), fresh
	}
	// fresh[0] is the most recent (we appended backwards).
	return int(fresh[0]), len(fresh), fresh
}
