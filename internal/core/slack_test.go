package core

import (
	"testing"
	"time"

	"dnscontext/internal/trace"
)

func TestSlackBasics(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			// Used immediately: no slack.
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "fast.com", webIP, time.Hour),
			// First used 30 s later: 30 s of slack.
			mkDNS(houseA, resLoc, 20*time.Second, 3*time.Millisecond, "slow.com", webIP2, time.Hour),
			// Never used: not part of the slack population.
			mkDNS(houseA, resLoc, 30*time.Second, 3*time.Millisecond, "unused.com", cdnIP, time.Hour),
		},
		Conns: []trace.ConnRecord{
			mkConn(houseA, webIP, 10*time.Second+5*time.Millisecond, time.Second, 443),
			mkConn(houseA, webIP2, 50*time.Second, time.Second, 443),
			// Reuse of fast.com must not enter the slack population (it
			// is not the record's first use).
			mkConn(houseA, webIP, 100*time.Second, time.Second, 443),
		},
	}
	a := Analyze(ds, testOptions())
	s := a.Slack()
	if s.TotalLookups != 2 {
		t.Fatalf("slack population %d, want 2 used lookups", s.TotalLookups)
	}
	if s.BlockedLookups != 1 {
		t.Fatalf("blocked lookups %d, want 1", s.BlockedLookups)
	}
	if s.FirstUseGap.N() != 2 {
		t.Fatalf("gap samples %d", s.FirstUseGap.N())
	}
	if s.SlackOver1s != 0.5 || s.SlackOver10s != 0.5 {
		t.Fatalf("slack fractions %v / %v", s.SlackOver1s, s.SlackOver10s)
	}
}

func TestTolerableExtraDelay(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "a.com", webIP, time.Hour),
		},
		Conns: []trace.ConnRecord{
			// Blocked (gap 5ms) — already blocked, never "newly" blocked.
			mkConn(houseA, webIP, 10*time.Second+5*time.Millisecond, time.Second, 443),
			// Gap 500 ms — newly blocked if lookups were 1 s slower.
			mkConn(houseA, webIP, 10*time.Second+500*time.Millisecond, time.Second, 443),
			// Gap 1 min — safe even against 1 s extra delay.
			mkConn(houseA, webIP, 11*time.Second+time.Minute, time.Second, 443),
		},
	}
	a := Analyze(ds, testOptions())
	if got := a.TolerableExtraDelay(time.Second); got < 0.33 || got > 0.34 {
		t.Fatalf("newly blocked at +1s = %v, want 1/3", got)
	}
	if got := a.TolerableExtraDelay(100 * time.Millisecond); got != 0 {
		t.Fatalf("newly blocked at +100ms = %v, want 0", got)
	}
	var empty Analysis
	empty.Opts = DefaultOptions()
	if empty.TolerableExtraDelay(time.Second) != 0 {
		t.Fatal("empty analysis slack not zero")
	}
}

func TestSlackPaperBand(t *testing.T) {
	a := analysisForPaperBands(t)
	s := a.Slack()
	// The slack phenomenon the authors' earlier work leveraged: a
	// sizeable share of lookups have seconds of headroom before first
	// use.
	within(t, "lookups with >1s slack", s.SlackOver1s, 0.05, 0.60)
	if s.BlockedLookups >= s.TotalLookups {
		t.Fatal("every lookup blocked; no slack at all")
	}
	// Adding 100ms to every lookup pushes only a tiny extra fraction of
	// connections into blocking.
	if f := a.TolerableExtraDelay(100 * time.Millisecond); f > 0.05 {
		t.Fatalf("+100ms would newly block %.3f of connections", f)
	}
}
