package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net/netip"
	"sort"
	"time"

	"dnscontext/internal/checkpoint"
)

// AnalysisShard is a mergeable partial analysis: everything the
// classification of one slice of a trace produces, minus anything that
// depends on seeing the whole trace. It is the map-side output of the
// out-of-core pipeline — AnalyzeSource folds per-client results into
// one, and independent processes can each CollectShard over their slice
// of a trace, serialize the shards (WriteShardFile), and reduce them
// with Merge + Finalize into the same *Analysis a single in-memory run
// would produce.
//
// What makes the merge exact is that a shard stores per-connection
// *pairing facts* (which lookup paired, the gap, first-use and expiry
// flags, the lookup's duration and resolver) rather than final classes.
// The SC/R split depends on per-resolver duration thresholds derived
// from whole-trace statistics, so a shard carries each resolver's
// (lookup count, minimum duration) — an associative, commutative
// summary — and Finalize re-derives the thresholds from the merged
// statistics before assigning classes. Merging is therefore associative
// and commutative: any grouping or ordering of the same shards
// finalizes to identical results.
//
// The one sharding requirement is that a client's records must not be
// split across shard inputs: pairing and first-use are per-client
// notions, and Merge refuses shards whose client sets overlap. (Under
// PairRandom, ambiguous pairings additionally draw from RNG streams
// seeded by process-local shard ranks, so cross-process merges are only
// guaranteed bit-identical under PairMostRecent, the default.)
type AnalysisShard struct {
	opts      Options
	dnsTotal  int64
	connTotal int64
	resolvers []resolverStat
	failures  FailureStats
	clients   []clientResult
}

// resolverStat is one resolver's associative duration summary: enough
// to re-derive its SC/R threshold after any number of merges.
type resolverStat struct {
	addr    netip.Addr
	lookups int64
	minDur  time.Duration
}

// clientResult is one client's classified slice: the number of DNS
// transactions it issued and one entry per connection, in start-time
// order.
type clientResult struct {
	client  netip.Addr
	nDNS    int32
	entries []connEntry
}

// connEntry is one connection's pairing facts, the shard analogue of
// PairedConn with dataset indices replaced by client-local ones.
type connEntry struct {
	// localDNS indexes the paired lookup within the client's own
	// DNS-record sequence (time order), or -1 when unpaired. Client-local
	// indexing is what keeps entries meaningful across processes that
	// never saw each other's datasets.
	localDNS    int32
	gap         time.Duration
	candidates  int32
	firstUse    bool
	usedExpired bool
	// lookupDur and res (an index into the shard's resolver table) defer
	// the SC/R decision to Finalize, where merged thresholds exist.
	lookupDur time.Duration
	res       int32
}

// ErrShardMismatch is matched (via errors.Is) when shards produced
// under different result-affecting options — or covering overlapping
// clients — refuse to merge.
var ErrShardMismatch = errors.New("analysis shards are incompatible")

// DNSTotal is the number of DNS transactions the shard covers.
func (s *AnalysisShard) DNSTotal() int { return int(s.dnsTotal) }

// ConnTotal is the number of connections the shard covers.
func (s *AnalysisShard) ConnTotal() int { return int(s.connTotal) }

// Clients is the number of distinct clients the shard covers.
func (s *AnalysisShard) Clients() int { return len(s.clients) }

// Merge combines two shards into a new one, leaving both inputs
// unchanged. It is associative and commutative; see the type comment
// for the exactness argument. Shards from runs with different
// result-affecting options, or with overlapping client sets, return an
// error wrapping ErrShardMismatch.
func (s *AnalysisShard) Merge(o *AnalysisShard) (*AnalysisShard, error) {
	if optionsKey(&s.opts) != optionsKey(&o.opts) {
		return nil, fmt.Errorf("%w: produced under different analysis options", ErrShardMismatch)
	}
	have := make(map[netip.Addr]bool, len(s.clients))
	for i := range s.clients {
		have[s.clients[i].client] = true
	}
	for i := range o.clients {
		if have[o.clients[i].client] {
			return nil, fmt.Errorf("%w: client %s appears in both shards (clients must not be split across shard inputs)",
				ErrShardMismatch, o.clients[i].client)
		}
	}

	m := &AnalysisShard{
		opts:      s.opts,
		dnsTotal:  s.dnsTotal + o.dnsTotal,
		connTotal: s.connTotal + o.connTotal,
		failures:  addFailures(s.failures, o.failures),
		resolvers: append([]resolverStat(nil), s.resolvers...),
	}
	// Remap o's resolver symbols into the merged table: each shard
	// numbered resolvers in its own first-appearance order, so the merge
	// rebinds by address and sums the associative stats.
	pos := make(map[netip.Addr]int32, len(m.resolvers))
	for i := range m.resolvers {
		pos[m.resolvers[i].addr] = int32(i)
	}
	remap := make([]int32, len(o.resolvers))
	for i := range o.resolvers {
		rs := &o.resolvers[i]
		p, ok := pos[rs.addr]
		if !ok {
			p = int32(len(m.resolvers))
			pos[rs.addr] = p
			m.resolvers = append(m.resolvers, resolverStat{addr: rs.addr, minDur: rs.minDur})
		}
		mr := &m.resolvers[p]
		if mr.lookups == 0 || rs.minDur < mr.minDur {
			mr.minDur = rs.minDur
		}
		mr.lookups += rs.lookups
		remap[i] = p
	}

	m.clients = append(m.clients, s.clients...)
	for i := range o.clients {
		c := o.clients[i]
		if needsRemap(c.entries, remap) {
			entries := append([]connEntry(nil), c.entries...)
			for j := range entries {
				if entries[j].res >= 0 {
					entries[j].res = remap[entries[j].res]
				}
			}
			c.entries = entries
		}
		m.clients = append(m.clients, c)
	}
	return m, nil
}

// needsRemap reports whether any entry's resolver symbol would change
// under remap, so Merge can share entry slices in the common case of
// identical resolver numbering.
func needsRemap(entries []connEntry, remap []int32) bool {
	for i := range entries {
		if r := entries[i].res; r >= 0 && remap[r] != r {
			return true
		}
	}
	return false
}

func addFailures(a, b FailureStats) FailureStats {
	return FailureStats{
		Lookups:      a.Lookups + b.Lookups,
		ServFails:    a.ServFails + b.ServFails,
		Retried:      a.Retried + b.Retried,
		TotalRetries: a.TotalRetries + b.TotalRetries,
		TCPFallbacks: a.TCPFallbacks + b.TCPFallbacks,
	}
}

// MergeShards folds any number of shards into one. At least one shard
// is required.
func MergeShards(shards ...*AnalysisShard) (*AnalysisShard, error) {
	if len(shards) == 0 {
		return nil, errors.New("dnscontext: no shards to merge")
	}
	m := shards[0]
	for _, s := range shards[1:] {
		var err error
		if m, err = m.Merge(s); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Finalize reduces the shard to a summary-grade *Analysis: it
// re-derives the per-resolver SC/R thresholds from the merged resolver
// statistics — the same arithmetic, gate, and rounding as the in-memory
// deriveThresholds — assigns each connection its Table 2 class from the
// stored pairing facts, and tallies the totals. The result reports
// classification (Count/Fraction/Table2/BlockedFraction/
// SharedCacheHitRate), Thresholds, Failures, Digest, and WriteSummary
// exactly as the in-memory path would; see Analysis.Summary for what a
// summary analysis cannot do.
func (s *AnalysisShard) Finalize() *Analysis {
	thresholds, thByRes := s.deriveThresholds()
	a := &Analysis{
		Opts:       s.opts,
		Thresholds: thresholds,
		summary:    true,
		dnsTotal:   int(s.dnsTotal),
		connTotal:  int(s.connTotal),
		failures:   &FailureStats{},
	}
	*a.failures = s.failures

	var digest uint64
	for i := range s.clients {
		c := &s.clients[i]
		h := newDigest()
		h.addr(c.client)
		h.u64(uint64(c.nDNS))
		for j := range c.entries {
			e := &c.entries[j]
			class := entryClass(e, &s.opts, thByRes)
			a.classCounts[class]++
			h.entry(e, class)
		}
		digest ^= uint64(h)
	}
	h := newDigest()
	h.u64(uint64(s.connTotal))
	h.u64(uint64(s.dnsTotal))
	digest ^= uint64(h)
	a.digestOnce.Do(func() { a.digest = digest })
	return a
}

// entryClass derives the Table 2 class from one entry's pairing facts and
// the finalized thresholds — the decision tree of classifyShard, minus
// the dataset.
func entryClass(e *connEntry, opts *Options, thByRes []time.Duration) Class {
	if e.localDNS < 0 {
		return ClassN
	}
	if e.gap > opts.BlockThreshold {
		if e.firstUse {
			return ClassP
		}
		return ClassLC
	}
	if e.lookupDur <= thByRes[e.res] {
		return ClassSC
	}
	return ClassR
}

// deriveThresholds is the shard-side twin of Analysis.deriveThresholds:
// identical gate scaling, 2.5x-minimum multiple, and millisecond
// round-up, fed by the merged (count, min) statistics instead of a
// dataset scan.
func (s *AnalysisShard) deriveThresholds() (map[string]time.Duration, []time.Duration) {
	gate := int64(s.dnsTotal) / 9200
	if gate < 50 {
		gate = 50
	}
	if gate > int64(s.opts.SCRMinSamples) {
		gate = int64(s.opts.SCRMinSamples)
	}
	thresholds := make(map[string]time.Duration)
	thByRes := make([]time.Duration, len(s.resolvers))
	for i := range s.resolvers {
		rs := &s.resolvers[i]
		thByRes[i] = s.opts.DefaultSCThreshold
		if rs.lookups < gate {
			continue
		}
		th := time.Duration(float64(rs.minDur) * 2.5)
		th = ((th + time.Millisecond - 1) / time.Millisecond) * time.Millisecond
		if th < s.opts.DefaultSCThreshold {
			th = s.opts.DefaultSCThreshold
		}
		thByRes[i] = th
		thresholds[rs.addr.String()] = th
	}
	return thresholds, thByRes
}

// Shard converts a full in-memory analysis into the equivalent
// AnalysisShard, the bridge that lets a resident run participate in a
// distributed merge (and the reference point the streaming path is
// tested against). The conversion rewrites dataset indices as
// client-local ones and recomputes the per-resolver statistics the
// in-memory pipeline consumed without storing.
func (a *Analysis) Shard() *AnalysisShard {
	s := &AnalysisShard{
		opts:      a.Opts,
		dnsTotal:  int64(len(a.DS.DNS)),
		connTotal: int64(len(a.DS.Conns)),
		failures:  a.Failures(),
		resolvers: make([]resolverStat, len(a.resolverAddrs)),
	}
	for i, addr := range a.resolverAddrs {
		s.resolvers[i].addr = addr
	}
	for i := range a.DS.DNS {
		rs := &s.resolvers[a.rsym[i]]
		d := a.DS.DNS[i].Duration()
		if rs.lookups == 0 || d < rs.minDur {
			rs.minDur = d
		}
		rs.lookups++
	}
	s.clients = make([]clientResult, len(a.shards))
	for si := range a.shards {
		sh := &a.shards[si]
		c := &s.clients[si]
		c.client = sh.client
		c.nDNS = int32(len(sh.dns))
		if len(sh.conns) == 0 {
			continue
		}
		c.entries = make([]connEntry, len(sh.conns))
		for j, ci := range sh.conns {
			pc := &a.Paired[ci]
			e := &c.entries[j]
			if pc.DNS < 0 {
				e.localDNS, e.res = -1, -1
				continue
			}
			// sh.dns is ascending, so the client-local index is the
			// global index's position within it.
			e.localDNS = int32(sort.Search(len(sh.dns), func(k int) bool {
				return sh.dns[k] >= int32(pc.DNS)
			}))
			e.gap = pc.Gap
			e.candidates = int32(pc.Candidates)
			e.firstUse = pc.FirstUse
			e.usedExpired = pc.UsedExpired
			e.lookupDur = a.DS.DNS[pc.DNS].Duration()
			e.res = a.rsym[pc.DNS]
		}
	}
	return s
}

// Digest is an order-independent fingerprint of every per-connection
// outcome (pairing, gap, flags, class) plus the totals: per-client FNV
// hashes XOR-folded, so it is identical for every worker count,
// client order, and shard grouping. Equal digests across the in-memory,
// streaming, and merged paths are the parity tests' success criterion.
func (a *Analysis) Digest() uint64 {
	a.digestOnce.Do(func() {
		// Summary analyses had the digest installed during Finalize; this
		// branch only runs for full analyses.
		var digest uint64
		for si := range a.shards {
			sh := &a.shards[si]
			h := newDigest()
			h.addr(sh.client)
			h.u64(uint64(len(sh.dns)))
			for _, ci := range sh.conns {
				pc := &a.Paired[ci]
				var e connEntry
				if pc.DNS < 0 {
					e.localDNS, e.res = -1, -1
				} else {
					e.localDNS = int32(sort.Search(len(sh.dns), func(k int) bool {
						return sh.dns[k] >= int32(pc.DNS)
					}))
					e.gap = pc.Gap
					e.candidates = int32(pc.Candidates)
					e.firstUse = pc.FirstUse
					e.usedExpired = pc.UsedExpired
				}
				h.entry(&e, pc.Class)
			}
			digest ^= uint64(h)
		}
		h := newDigest()
		h.u64(uint64(a.connTotal))
		h.u64(uint64(a.dnsTotal))
		digest ^= uint64(h)
		a.digest = digest
	})
	return a.digest
}

// digestHash is an inline FNV-64a accumulator.
type digestHash uint64

func newDigest() digestHash { return 0xcbf29ce484222325 }

func (h *digestHash) bytes(b []byte) {
	v := uint64(*h)
	for _, c := range b {
		v ^= uint64(c)
		v *= 0x100000001b3
	}
	*h = digestHash(v)
}

func (h *digestHash) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.bytes(b[:])
}

func (h *digestHash) addr(a netip.Addr) {
	b := a.As16()
	h.bytes(b[:])
}

// entry folds one connection outcome. Resolver symbols are shard-local
// and therefore excluded; the class (which the resolver's threshold
// decided) stands in for them.
func (h *digestHash) entry(e *connEntry, class Class) {
	h.u64(uint64(uint32(e.localDNS)))
	h.u64(uint64(e.gap))
	h.u64(uint64(uint32(e.candidates)))
	var flags uint64
	if e.firstUse {
		flags |= 1
	}
	if e.usedExpired {
		flags |= 2
	}
	h.u64(flags)
	h.u64(uint64(class))
}

// shardFileVersion is the on-disk format version of serialized shards,
// carried in the same checkpoint envelope (magic, CRC, atomic rename)
// analyzer snapshots use.
const shardFileVersion = 1

// WriteShardFile atomically serializes the shard to path. The encoding
// is canonical — resolvers and clients are written in address order —
// so shards that merge to the same state serialize to the same bytes
// regardless of the order their inputs arrived in.
func WriteShardFile(path string, s *AnalysisShard) error {
	return checkpoint.Save(path, shardFileVersion, s.encode())
}

// ReadShardFile loads a shard written by WriteShardFile.
func ReadShardFile(path string) (*AnalysisShard, error) {
	payload, err := checkpoint.Load(path, shardFileVersion)
	if err != nil {
		return nil, err
	}
	return decodeShardPayload(payload)
}

// encode serializes the shard. Layout (little-endian):
//
//	options: 8 result-affecting fields (the optionsKey inputs)
//	i64 dnsTotal, i64 connTotal
//	failures: 5 x i64
//	u32 nResolvers; per resolver (addr order): addr, i64 lookups, i64 min
//	u32 nClients; per client (addr order): addr, i32 nDNS, u32 nEntries;
//	  per entry: i32 localDNS, i64 gap, i32 candidates, u8 flags,
//	  i64 lookupDur, i32 res
//
// where addr is u8 length + raw bytes, and entry res symbols are
// rewritten to the address-ordered resolver numbering.
func (s *AnalysisShard) encode() []byte {
	var buf bytes.Buffer
	put := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	putAddr := func(a netip.Addr) {
		b := a.AsSlice()
		put(uint8(len(b)))
		buf.Write(b)
	}
	o := &s.opts
	put(int64(o.BlockThreshold))
	put(int64(o.KneeThreshold))
	put(int64(o.SCRMinSamples))
	put(int64(o.DefaultSCThreshold))
	put(uint8(o.Pairing))
	put(o.Seed)
	put(int64(o.InsignificantAbs))
	put(math.Float64bits(o.InsignificantRel))

	put(s.dnsTotal)
	put(s.connTotal)
	put(int64(s.failures.Lookups))
	put(int64(s.failures.ServFails))
	put(int64(s.failures.Retried))
	put(int64(s.failures.TotalRetries))
	put(int64(s.failures.TCPFallbacks))

	// Canonical resolver order, with a remap from the in-memory
	// first-appearance numbering.
	order := make([]int32, len(s.resolvers))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		return s.resolvers[order[i]].addr.Compare(s.resolvers[order[j]].addr) < 0
	})
	remap := make([]int32, len(s.resolvers))
	for canon, orig := range order {
		remap[orig] = int32(canon)
	}
	put(uint32(len(s.resolvers)))
	for _, orig := range order {
		rs := &s.resolvers[orig]
		putAddr(rs.addr)
		put(rs.lookups)
		put(int64(rs.minDur))
	}

	corder := make([]int32, len(s.clients))
	for i := range corder {
		corder[i] = int32(i)
	}
	sort.Slice(corder, func(i, j int) bool {
		return s.clients[corder[i]].client.Compare(s.clients[corder[j]].client) < 0
	})
	put(uint32(len(s.clients)))
	for _, ci := range corder {
		c := &s.clients[ci]
		putAddr(c.client)
		put(c.nDNS)
		put(uint32(len(c.entries)))
		for j := range c.entries {
			e := &c.entries[j]
			res := e.res
			if res >= 0 {
				res = remap[res]
			}
			var flags uint8
			if e.firstUse {
				flags |= 1
			}
			if e.usedExpired {
				flags |= 2
			}
			put(e.localDNS)
			put(int64(e.gap))
			put(e.candidates)
			put(flags)
			put(int64(e.lookupDur))
			put(res)
		}
	}
	return buf.Bytes()
}

func decodeShardPayload(payload []byte) (*AnalysisShard, error) {
	r := bytes.NewReader(payload)
	bad := func(what string, err error) (*AnalysisShard, error) {
		return nil, fmt.Errorf("dnscontext: shard file: truncated %s: %w", what, err)
	}
	readAddr := func() (netip.Addr, error) {
		var n uint8
		if err := readLE(r, &n); err != nil {
			return netip.Addr{}, err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return netip.Addr{}, err
		}
		a, ok := netip.AddrFromSlice(b)
		if !ok {
			return netip.Addr{}, fmt.Errorf("bad address length %d", n)
		}
		return a, nil
	}

	s := &AnalysisShard{}
	var block, knee, minSamples, defTh, insAbs int64
	var pairing uint8
	var seed, insRelBits uint64
	if err := readLE(r, &block, &knee, &minSamples, &defTh, &pairing, &seed, &insAbs, &insRelBits); err != nil {
		return bad("options", err)
	}
	s.opts = Options{
		BlockThreshold:     time.Duration(block),
		KneeThreshold:      time.Duration(knee),
		SCRMinSamples:      int(minSamples),
		DefaultSCThreshold: time.Duration(defTh),
		Pairing:            PairingPolicy(pairing),
		Seed:               seed,
		InsignificantAbs:   time.Duration(insAbs),
		InsignificantRel:   math.Float64frombits(insRelBits),
	}
	var fl, fs, fr, ft, fc int64
	if err := readLE(r, &s.dnsTotal, &s.connTotal, &fl, &fs, &fr, &ft, &fc); err != nil {
		return bad("totals", err)
	}
	s.failures = FailureStats{
		Lookups: int(fl), ServFails: int(fs), Retried: int(fr),
		TotalRetries: int(ft), TCPFallbacks: int(fc),
	}
	var nRes uint32
	if err := readLE(r, &nRes); err != nil {
		return bad("resolver count", err)
	}
	s.resolvers = make([]resolverStat, nRes)
	for i := range s.resolvers {
		addr, err := readAddr()
		if err != nil {
			return bad("resolver address", err)
		}
		var minDur int64
		if err := readLE(r, &s.resolvers[i].lookups, &minDur); err != nil {
			return bad("resolver stats", err)
		}
		s.resolvers[i].addr = addr
		s.resolvers[i].minDur = time.Duration(minDur)
	}
	var nClients uint32
	if err := readLE(r, &nClients); err != nil {
		return bad("client count", err)
	}
	s.clients = make([]clientResult, nClients)
	for i := range s.clients {
		c := &s.clients[i]
		addr, err := readAddr()
		if err != nil {
			return bad("client address", err)
		}
		c.client = addr
		var nEntries uint32
		if err := readLE(r, &c.nDNS, &nEntries); err != nil {
			return bad("client header", err)
		}
		if int64(nEntries) > s.connTotal {
			return nil, fmt.Errorf("dnscontext: shard file: client %s claims %d entries of %d total connections",
				addr, nEntries, s.connTotal)
		}
		if nEntries == 0 {
			continue
		}
		c.entries = make([]connEntry, nEntries)
		for j := range c.entries {
			e := &c.entries[j]
			var gap, lookupDur int64
			var flags uint8
			if err := readLE(r, &e.localDNS, &gap, &e.candidates, &flags, &lookupDur, &e.res); err != nil {
				return bad("entry", err)
			}
			if e.res >= int32(nRes) {
				return nil, fmt.Errorf("dnscontext: shard file: resolver symbol %d out of range", e.res)
			}
			e.gap = time.Duration(gap)
			e.lookupDur = time.Duration(lookupDur)
			e.firstUse = flags&1 != 0
			e.usedExpired = flags&2 != 0
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("dnscontext: shard file: %d trailing bytes", r.Len())
	}
	return s, nil
}
