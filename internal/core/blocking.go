package core

import (
	"context"
	"time"

	"dnscontext/internal/parallel"
	"dnscontext/internal/stats"
)

// Figure1 is the gap analysis of §4: the distribution of time between a
// DNS lookup's completion and the start of the connection using it, plus
// the first-use fractions on each side of the knee that justify the
// blocking heuristic.
type Figure1 struct {
	// Gaps is the distribution of (conn start − DNS completion), in
	// milliseconds, over all paired connections.
	Gaps *stats.ECDF
	// FirstUseWithinKnee is the fraction of connections starting within
	// the knee threshold that are the first to use their lookup (paper:
	// 91%).
	FirstUseWithinKnee float64
	// FirstUseBeyondKnee is the same fraction for later connections
	// (paper: 21%).
	FirstUseBeyondKnee float64
	// Knee and Block echo the thresholds used.
	Knee, Block time.Duration
}

// Figure1 computes the gap distribution and first-use split. The scan is
// chunked across the worker pool; per-chunk samples are appended in
// chunk order, so the resulting distribution matches a sequential
// left-to-right pass exactly.
func (a *Analysis) Figure1() Figure1 {
	f := Figure1{
		Gaps:  stats.NewECDF(len(a.Paired)),
		Knee:  a.Opts.KneeThreshold,
		Block: a.Opts.BlockThreshold,
	}
	type partial struct {
		gaps                                     []float64
		withinFirst, within, beyondFirst, beyond int
	}
	chunks := parallel.Chunks(len(a.Paired), parallel.Workers(a.Opts.Workers))
	parts, _ := parallel.Map(context.Background(), a.Opts.Workers, len(chunks), func(c int) (partial, error) {
		var p partial
		for i := chunks[c].Lo; i < chunks[c].Hi; i++ {
			pc := &a.Paired[i]
			if pc.DNS < 0 {
				continue
			}
			p.gaps = append(p.gaps, float64(pc.Gap)/float64(time.Millisecond))
			if pc.Gap <= a.Opts.KneeThreshold {
				p.within++
				if pc.FirstUse {
					p.withinFirst++
				}
			} else {
				p.beyond++
				if pc.FirstUse {
					p.beyondFirst++
				}
			}
		}
		return p, nil
	})

	var withinFirst, within, beyondFirst, beyond int
	for _, p := range parts {
		f.Gaps.AddAll(p.gaps)
		withinFirst += p.withinFirst
		within += p.within
		beyondFirst += p.beyondFirst
		beyond += p.beyond
	}
	if within > 0 {
		f.FirstUseWithinKnee = float64(withinFirst) / float64(within)
	}
	if beyond > 0 {
		f.FirstUseBeyondKnee = float64(beyondFirst) / float64(beyond)
	}
	return f
}
