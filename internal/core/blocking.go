package core

import (
	"time"

	"dnscontext/internal/stats"
)

// Figure1 is the gap analysis of §4: the distribution of time between a
// DNS lookup's completion and the start of the connection using it, plus
// the first-use fractions on each side of the knee that justify the
// blocking heuristic.
type Figure1 struct {
	// Gaps is the distribution of (conn start − DNS completion), in
	// milliseconds, over all paired connections.
	Gaps *stats.ECDF
	// FirstUseWithinKnee is the fraction of connections starting within
	// the knee threshold that are the first to use their lookup (paper:
	// 91%).
	FirstUseWithinKnee float64
	// FirstUseBeyondKnee is the same fraction for later connections
	// (paper: 21%).
	FirstUseBeyondKnee float64
	// Knee and Block echo the thresholds used.
	Knee, Block time.Duration
}

// Figure1 computes the gap distribution and first-use split.
func (a *Analysis) Figure1() Figure1 {
	f := Figure1{
		Gaps:  stats.NewECDF(len(a.Paired)),
		Knee:  a.Opts.KneeThreshold,
		Block: a.Opts.BlockThreshold,
	}
	var withinFirst, within, beyondFirst, beyond int
	for i := range a.Paired {
		pc := &a.Paired[i]
		if pc.DNS < 0 {
			continue
		}
		f.Gaps.Add(float64(pc.Gap) / float64(time.Millisecond))
		if pc.Gap <= a.Opts.KneeThreshold {
			within++
			if pc.FirstUse {
				withinFirst++
			}
		} else {
			beyond++
			if pc.FirstUse {
				beyondFirst++
			}
		}
	}
	if within > 0 {
		f.FirstUseWithinKnee = float64(withinFirst) / float64(within)
	}
	if beyond > 0 {
		f.FirstUseBeyondKnee = float64(beyondFirst) / float64(beyond)
	}
	return f
}
