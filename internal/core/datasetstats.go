package core

import (
	"net/netip"
	"time"

	"dnscontext/internal/trace"
)

// DatasetStats is the §3-style characterization of the two datasets: the
// gross volumes and splits the paper reports before any analysis (9.2M
// DNS transactions; 11.2M connections, 88% TCP / 12% UDP; ~100 houses).
type DatasetStats struct {
	DNSTransactions int
	Connections     int
	Houses          int
	Window          time.Duration

	TCPFraction float64
	UDPFraction float64
	// ConnsPerHousePerDay normalizes volume for cross-run comparison.
	ConnsPerHousePerDay float64
	// TotalBytes is the two-way application volume.
	TotalBytes int64
	// AnswerlessFraction is the share of DNS transactions with no
	// usable address answers (NXDOMAIN, AAAA against v4-only names, ...).
	AnswerlessFraction float64
}

// DatasetStats characterizes the analyzed trace.
func (a *Analysis) DatasetStats() DatasetStats {
	s := DatasetStats{
		DNSTransactions: len(a.DS.DNS),
		Connections:     len(a.DS.Conns),
	}
	houses := make(map[netip.Addr]bool, len(a.shards)) // shards are per-client
	var tcp int
	var window time.Duration
	for i := range a.DS.Conns {
		c := &a.DS.Conns[i]
		houses[c.Orig] = true
		if c.Proto == trace.TCP {
			tcp++
		}
		s.TotalBytes += c.TotalBytes()
		if c.TS > window {
			window = c.TS
		}
	}
	answerless := 0
	for i := range a.DS.DNS {
		houses[a.DS.DNS[i].Client] = true
		if len(a.DS.DNS[i].Answers) == 0 {
			answerless++
		}
		if ts := a.DS.DNS[i].TS; ts > window {
			window = ts
		}
	}
	s.Houses = len(houses)
	s.Window = window
	if s.Connections > 0 {
		s.TCPFraction = float64(tcp) / float64(s.Connections)
		s.UDPFraction = 1 - s.TCPFraction
	}
	if s.DNSTransactions > 0 {
		s.AnswerlessFraction = float64(answerless) / float64(s.DNSTransactions)
	}
	if s.Houses > 0 && window > 0 {
		s.ConnsPerHousePerDay = float64(s.Connections) / float64(s.Houses) / (window.Hours() / 24)
	}
	return s
}
