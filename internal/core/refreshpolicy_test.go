package core

import (
	"testing"
	"time"

	"dnscontext/internal/trace"
)

// periodicUseDataset builds a trace with one house using one name (TTL
// ttl) every period for n uses.
func periodicUseDataset(name string, ttl, period time.Duration, n int) *trace.Dataset {
	ds := &trace.Dataset{}
	for i := 0; i < n; i++ {
		ts := time.Duration(i) * period
		ds.DNS = append(ds.DNS, mkDNS(houseA, resLoc, ts, 3*time.Millisecond, name, webIP, ttl))
		ds.Conns = append(ds.Conns, mkConn(houseA, webIP, ts+5*time.Millisecond, time.Second, 443))
	}
	return ds
}

func TestPolicyNeverMatchesStandard(t *testing.T) {
	ds := periodicUseDataset("a.com", 100*time.Second, time.Minute, 10)
	a := Analyze(ds, testOptions())
	rf := a.RefreshSimulation(10 * time.Second)
	std := a.SimulateCachePolicy(10*time.Second, PolicyNever)
	if std != rf.Standard {
		t.Fatalf("standard mismatch: %+v vs %+v", std, rf.Standard)
	}
	// Alternating hit/miss as in the hand analysis (TTL 100s, period 60s).
	if std.Hits != 5 || std.Misses != 5 {
		t.Fatalf("standard hits/misses %d/%d", std.Hits, std.Misses)
	}
}

func TestPolicyRefreshAllMatchesTable3Column(t *testing.T) {
	ds := periodicUseDataset("a.com", 100*time.Second, time.Minute, 10)
	a := Analyze(ds, testOptions())
	all := a.SimulateCachePolicy(10*time.Second, PolicyRefreshAll)
	if all.Misses != 1 || all.Hits != 9 {
		t.Fatalf("refresh-all hits/misses %d/%d", all.Hits, all.Misses)
	}
	// One initial fetch plus one refresh per 100 s over the ~9 min window.
	if all.Lookups < 5 || all.Lookups > 7 {
		t.Fatalf("refresh-all lookups %d", all.Lookups)
	}
}

func TestPolicyIdleBoundedStopsRefreshing(t *testing.T) {
	// Two bursts of use separated by a long quiet gap. An idle-bounded
	// policy must stop refreshing during the gap (missing once at the
	// second burst) but spend far fewer lookups than refresh-all.
	ds := &trace.Dataset{}
	ttl := 60 * time.Second
	addUse := func(ts time.Duration) {
		ds.DNS = append(ds.DNS, mkDNS(houseA, resLoc, ts, 3*time.Millisecond, "a.com", webIP, ttl))
		ds.Conns = append(ds.Conns, mkConn(houseA, webIP, ts+5*time.Millisecond, time.Second, 443))
	}
	for i := 0; i < 5; i++ {
		addUse(time.Duration(i) * 30 * time.Second) // burst 1: 0..2min
	}
	for i := 0; i < 5; i++ {
		addUse(4*time.Hour + time.Duration(i)*30*time.Second) // burst 2
	}
	a := Analyze(ds, testOptions())

	bounded := a.SimulateCachePolicy(10*time.Second, PolicyIdleBounded(5*time.Minute))
	all := a.SimulateCachePolicy(10*time.Second, PolicyRefreshAll)

	if all.Misses != 1 {
		t.Fatalf("refresh-all misses %d", all.Misses)
	}
	if bounded.Misses != 2 {
		t.Fatalf("idle-bounded misses %d, want 2 (one per burst)", bounded.Misses)
	}
	// The 4-hour gap costs refresh-all ~240 refreshes; the bounded policy
	// must be an order of magnitude cheaper.
	if bounded.Lookups*10 > all.Lookups {
		t.Fatalf("idle-bounded lookups %d not ≪ refresh-all %d", bounded.Lookups, all.Lookups)
	}
	if bounded.HitRate < 0.75 {
		t.Fatalf("idle-bounded hit rate %.3f too low", bounded.HitRate)
	}
}

func TestPolicyMinUsesGatesRefresh(t *testing.T) {
	// A name used exactly once: a popularity-gated policy must not
	// refresh it at all.
	ds := periodicUseDataset("once.com", 30*time.Second, time.Hour, 1)
	// Extend the window so there is tail time to (wrongly) refresh in.
	ds.Conns = append(ds.Conns, mkConn(houseA, peerIP, 6*time.Hour, time.Second, 50000))
	a := Analyze(ds, testOptions())

	gated := a.SimulateCachePolicy(10*time.Second, PolicyPopular(3, 0))
	if gated.Lookups != 1 {
		t.Fatalf("gated policy spent %d lookups on a once-used name", gated.Lookups)
	}
	all := a.SimulateCachePolicy(10*time.Second, PolicyRefreshAll)
	if all.Lookups < 100 {
		t.Fatalf("refresh-all lookups %d suspiciously low (tail not charged?)", all.Lookups)
	}
}

func TestPolicyFloorRespected(t *testing.T) {
	ds := periodicUseDataset("short.com", 5*time.Second, time.Minute, 5)
	a := Analyze(ds, testOptions())
	for _, pol := range []RefreshPolicy{PolicyRefreshAll, PolicyIdleBounded(time.Hour)} {
		got := a.SimulateCachePolicy(10*time.Second, pol)
		std := a.SimulateCachePolicy(10*time.Second, PolicyNever)
		if got != std {
			t.Fatalf("%s refreshed a sub-floor TTL: %+v vs %+v", pol.Label, got, std)
		}
	}
}

func TestCompareRefreshPoliciesBracketsAndOrders(t *testing.T) {
	ds := periodicUseDataset("a.com", 100*time.Second, time.Minute, 20)
	a := Analyze(ds, testOptions())
	rows := a.CompareRefreshPolicies(10*time.Second,
		PolicyPopular(2, 10*time.Minute),
		PolicyIdleBounded(30*time.Minute),
	)
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0].Policy.Label != "standard" || rows[len(rows)-1].Policy.Label != "refresh-all" {
		t.Fatalf("bracketing wrong: %s .. %s", rows[0].Policy.Label, rows[len(rows)-1].Policy.Label)
	}
	std, all := rows[0].Result, rows[len(rows)-1].Result
	if all.HitRate < std.HitRate {
		t.Fatal("refresh-all hit rate below standard")
	}
	for _, row := range rows[1 : len(rows)-1] {
		if row.Result.HitRate < std.HitRate-1e-9 || row.Result.HitRate > all.HitRate+1e-9 {
			t.Errorf("%s hit rate %.3f outside [standard, refresh-all]",
				row.Policy.Label, row.Result.HitRate)
		}
		if row.Result.Lookups > all.Lookups {
			t.Errorf("%s spends more lookups than refresh-all", row.Policy.Label)
		}
	}
}

func TestPolicyLabels(t *testing.T) {
	if PolicyIdleBounded(time.Minute).Label != "idle<=1m0s" {
		t.Fatalf("label %q", PolicyIdleBounded(time.Minute).Label)
	}
	if PolicyPopular(3, time.Hour).Label != "uses>=3,idle<=1h0m0s" {
		t.Fatalf("label %q", PolicyPopular(3, time.Hour).Label)
	}
}
