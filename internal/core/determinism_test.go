package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"dnscontext/internal/households"
	"dnscontext/internal/netsim"
	"dnscontext/internal/trace"
)

// determinismTrace generates one small trace per test run; callers must
// not mutate it beyond what Analyze itself does (time-sorting).
func determinismTrace(t *testing.T) *trace.Dataset {
	t.Helper()
	cfg := households.SmallConfig(7)
	cfg.Houses = 8
	cfg.Duration = time.Hour
	cfg.Warmup = 30 * time.Minute
	ds, _, err := households.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// analyzeCopy runs Analyze on a private copy of ds, so different worker
// counts can't observe each other through the shared in-place sort.
func analyzeCopy(ds *trace.Dataset, opts Options) *Analysis {
	cp := &trace.Dataset{
		DNS:   append([]trace.DNSRecord(nil), ds.DNS...),
		Conns: append([]trace.ConnRecord(nil), ds.Conns...),
	}
	return Analyze(cp, opts)
}

// TestAnalyzeDeterministicAcrossWorkers is the ISSUE's determinism gate:
// the sharded pipeline must produce bit-identical results for every
// worker count, for both pairing policies.
func TestAnalyzeDeterministicAcrossWorkers(t *testing.T) {
	ds := determinismTrace(t)
	for _, pairing := range []PairingPolicy{PairMostRecent, PairRandom} {
		opts := DefaultOptions()
		opts.Pairing = pairing
		opts.SCRMinSamples = 50
		opts.Workers = 1
		ref := analyzeCopy(ds, opts)

		for _, workers := range []int{2, 8} {
			opts.Workers = workers
			got := analyzeCopy(ds, opts)

			if !reflect.DeepEqual(got.Paired, ref.Paired) {
				t.Fatalf("pairing=%v workers=%d: Paired differs from 1-worker run", pairing, workers)
			}
			if !reflect.DeepEqual(got.DNSUsed, ref.DNSUsed) {
				t.Fatalf("pairing=%v workers=%d: DNSUsed differs", pairing, workers)
			}
			if !reflect.DeepEqual(got.Thresholds, ref.Thresholds) {
				t.Fatalf("pairing=%v workers=%d: Thresholds differ: %v vs %v",
					pairing, workers, got.Thresholds, ref.Thresholds)
			}
			if !reflect.DeepEqual(got.Table2(), ref.Table2()) {
				t.Fatalf("pairing=%v workers=%d: Table 2 differs: %+v vs %+v",
					pairing, workers, got.Table2(), ref.Table2())
			}
			for c := ClassN; c < numClasses; c++ {
				if got.Fraction(c) != ref.Fraction(c) {
					t.Fatalf("pairing=%v workers=%d: class %v fraction %v != %v",
						pairing, workers, c, got.Fraction(c), ref.Fraction(c))
				}
			}
		}
	}
}

// TestDownstreamDeterministicAcrossWorkers covers the parallelized
// sweeps that consume an Analysis: Figure 1, the whole-house what-if,
// and the refresh-policy grid.
func TestDownstreamDeterministicAcrossWorkers(t *testing.T) {
	ds := determinismTrace(t)
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	opts.Workers = 1
	ref := analyzeCopy(ds, opts)
	refF1 := ref.Figure1()
	refWH := ref.WholeHouse()
	refGrid := ref.CompareRefreshPolicies(10*time.Second,
		PolicyIdleBounded(30*time.Minute), PolicyPopular(2, time.Hour))

	for _, workers := range []int{2, 8} {
		opts.Workers = workers
		got := analyzeCopy(ds, opts)
		f1 := got.Figure1()
		if !reflect.DeepEqual(f1.Gaps.Values(), refF1.Gaps.Values()) ||
			f1.FirstUseWithinKnee != refF1.FirstUseWithinKnee ||
			f1.FirstUseBeyondKnee != refF1.FirstUseBeyondKnee {
			t.Fatalf("workers=%d: Figure 1 differs", workers)
		}
		if wh := got.WholeHouse(); wh != refWH {
			t.Fatalf("workers=%d: WholeHouse %+v != %+v", workers, wh, refWH)
		}
		grid := got.CompareRefreshPolicies(10*time.Second,
			PolicyIdleBounded(30*time.Minute), PolicyPopular(2, time.Hour))
		if !reflect.DeepEqual(grid, refGrid) {
			t.Fatalf("workers=%d: refresh grid differs: %+v vs %+v", workers, grid, refGrid)
		}
	}
}

// faultedTrace generates a small trace with every fault knob nonzero, so
// the retry/backoff/outage paths all draw from the RNG streams.
func faultedTrace(t *testing.T) *trace.Dataset {
	t.Helper()
	cfg := households.SmallConfig(7)
	cfg.Houses = 8
	cfg.Duration = time.Hour
	cfg.Warmup = 30 * time.Minute
	cfg.Faults.Loss = 0.02
	cfg.Faults.ExtraJitter = 2 * time.Millisecond
	cfg.Faults.TruncateOver = 6
	cfg.Faults.StaleHold = time.Hour
	cfg.Faults.LocalOutages = []netsim.Window{
		{Start: 10 * time.Minute, End: 20 * time.Minute},
	}
	ds, _, err := households.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestFaultedAnalysisDeterministicAcrossWorkers extends the determinism
// gate to fault-injected traces: generation under a nonzero FaultProfile
// must be repeatable, and the analysis — including the failure tallies,
// which sum per-shard — must be bit-identical for every worker count.
func TestFaultedAnalysisDeterministicAcrossWorkers(t *testing.T) {
	ds := faultedTrace(t)
	ds2 := faultedTrace(t)
	if !reflect.DeepEqual(ds.DNS, ds2.DNS) || !reflect.DeepEqual(ds.Conns, ds2.Conns) {
		t.Fatal("two generations with identical faulted config differ")
	}

	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	opts.Workers = 1
	ref := analyzeCopy(ds, opts)
	refFS := ref.Failures()
	if !refFS.HasFailures() {
		t.Fatal("faulted trace produced no retries/servfails; fault paths untested")
	}

	for _, workers := range []int{2, 8} {
		opts.Workers = workers
		got := analyzeCopy(ds, opts)
		if !reflect.DeepEqual(got.Paired, ref.Paired) {
			t.Fatalf("workers=%d: Paired differs under faults", workers)
		}
		if !reflect.DeepEqual(got.Thresholds, ref.Thresholds) {
			t.Fatalf("workers=%d: Thresholds differ under faults", workers)
		}
		if !reflect.DeepEqual(got.Table2(), ref.Table2()) {
			t.Fatalf("workers=%d: Table 2 differs under faults", workers)
		}
		if fs := got.Failures(); fs != refFS {
			t.Fatalf("workers=%d: failure stats %+v != %+v", workers, fs, refFS)
		}
	}
}

// TestZeroFaultConfigMatchesUnconfigured is the zero-cost invariant at
// the generator level: a Config with an explicitly zero FaultsConfig
// must yield the byte-identical dataset of one that never mentions
// faults.
func TestZeroFaultConfigMatchesUnconfigured(t *testing.T) {
	ref := determinismTrace(t)
	cfg := households.SmallConfig(7)
	cfg.Houses = 8
	cfg.Duration = time.Hour
	cfg.Warmup = 30 * time.Minute
	cfg.Faults = households.FaultsConfig{}
	ds, _, err := households.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.DNS, ref.DNS) || !reflect.DeepEqual(ds.Conns, ref.Conns) {
		t.Fatal("zero FaultsConfig changed the generated dataset")
	}
}

func TestAnalyzeContextCancelled(t *testing.T) {
	ds := determinismTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, err := AnalyzeContext(ctx, ds, DefaultOptions())
	if a != nil {
		t.Fatal("cancelled analysis returned a partial result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestAnalyzeContextCompletesUncancelled(t *testing.T) {
	ds := determinismTrace(t)
	a, err := AnalyzeContext(context.Background(), ds, DefaultOptions())
	if err != nil || a == nil {
		t.Fatalf("AnalyzeContext = (%v, %v)", a, err)
	}
	if got := Analyze(ds, DefaultOptions()); !reflect.DeepEqual(got.Paired, a.Paired) {
		t.Fatal("Analyze and AnalyzeContext disagree")
	}
}

// TestCountMatchesScan pins the O(1) class counters to a recount of the
// per-connection classifications they replaced.
func TestCountMatchesScan(t *testing.T) {
	ds := determinismTrace(t)
	a := Analyze(ds, DefaultOptions())
	var scan [numClasses]int
	for i := range a.Paired {
		scan[a.Paired[i].Class]++
	}
	total := 0
	for c := ClassN; c < numClasses; c++ {
		if a.Count(c) != scan[c] {
			t.Fatalf("Count(%v) = %d, scan says %d", c, a.Count(c), scan[c])
		}
		total += a.Count(c)
	}
	if total != len(a.Paired) {
		t.Fatalf("counts sum to %d, have %d connections", total, len(a.Paired))
	}
	if a.Count(numClasses) != 0 || a.Count(Class(200)) != 0 {
		t.Fatal("out-of-range class should count zero")
	}
}
