package core

import (
	"testing"
	"time"

	"dnscontext/internal/trace"
)

// TestBlockingGapEdgeCases pins the boundary semantics of the blocking
// heuristic: classify uses Gap > BlockThreshold for "on hand", so a gap
// exactly at the threshold still counts as blocked, a zero gap (the
// connection's SYN in the same capture tick as the DNS answer) is
// blocked, and a record whose answer lands after the connection starts
// (clock skew between the DNS and conn logs) never pairs at all.
func TestBlockingGapEdgeCases(t *testing.T) {
	const th = 100 * time.Millisecond // DefaultOptions().BlockThreshold
	cases := []struct {
		name      string
		gap       time.Duration // conn.TS - dns.TS; negative ⇒ skewed record
		wantClass Class
		wantGap   time.Duration
	}{
		{"zero gap", 0, ClassSC, 0},
		{"one tick inside", time.Microsecond, ClassSC, time.Microsecond},
		{"exactly at threshold", th, ClassSC, th},
		{"one tick beyond", th + time.Microsecond, ClassP, th + time.Microsecond},
		{"well beyond", time.Minute, ClassP, time.Minute},
		// The DNS answer timestamp sits after the connection start — a
		// skewed or reordered log. Pairing refuses future records, so the
		// connection is N rather than carrying a negative gap.
		{"negative gap (clock skew)", -time.Millisecond, ClassN, 0},
		{"negative gap (gross skew)", -time.Hour, ClassN, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dnsTS := 10 * time.Hour
			ds := &trace.Dataset{
				DNS: []trace.DNSRecord{
					mkDNS(houseA, resLoc, dnsTS, 3*time.Millisecond, "a.com", webIP, 12*time.Hour),
				},
				Conns: []trace.ConnRecord{
					mkConn(houseA, webIP, dnsTS+c.gap, time.Second, 443),
				},
			}
			a := Analyze(ds, testOptions())
			pc := a.Paired[0]
			if pc.Class != c.wantClass {
				t.Fatalf("gap %v: class = %v, want %v", c.gap, pc.Class, c.wantClass)
			}
			if c.wantClass == ClassN {
				if pc.DNS != -1 {
					t.Fatalf("gap %v: skewed record paired (DNS=%d)", c.gap, pc.DNS)
				}
				return
			}
			if pc.Gap != c.wantGap {
				t.Fatalf("gap recorded as %v, want %v", pc.Gap, c.wantGap)
			}
		})
	}
}

// TestBlockingSCRBoundaryAtDerivedThreshold checks the SC/R split at the
// exact derived threshold: Duration <= threshold is SC, one tick above
// is R.
func TestBlockingSCRBoundaryAtDerivedThreshold(t *testing.T) {
	ds := &trace.Dataset{}
	// 50 lookups at 2 ms pin the local resolver's threshold at 5 ms
	// (2.5x the minimum, rounded up to a millisecond).
	for i := 0; i < 50; i++ {
		ds.DNS = append(ds.DNS, mkDNS(houseA, resLoc,
			time.Duration(i+1)*time.Minute, 2*time.Millisecond, "warm.com", cdnIP, time.Minute))
	}
	base := 100 * time.Minute
	ds.DNS = append(ds.DNS,
		mkDNS(houseA, resLoc, base, 5*time.Millisecond, "at.com", webIP, time.Hour),
		mkDNS(houseA, resLoc, base+time.Minute, 5*time.Millisecond+time.Microsecond, "above.com", webIP2, time.Hour),
	)
	ds.Conns = []trace.ConnRecord{
		mkConn(houseA, webIP, base+time.Millisecond, time.Second, 443),
		mkConn(houseA, webIP2, base+time.Minute+time.Millisecond, time.Second, 443),
	}
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	a := Analyze(ds, opts)
	if th := a.Thresholds[resLoc.String()]; th != 5*time.Millisecond {
		t.Fatalf("derived threshold %v, want 5ms", th)
	}
	if got := a.Paired[0].Class; got != ClassSC {
		t.Fatalf("duration == threshold: %v, want SC", got)
	}
	if got := a.Paired[1].Class; got != ClassR {
		t.Fatalf("duration just above threshold: %v, want R", got)
	}
}

// TestThresholdGateTinyTraces exercises the sample gate for the SC/R
// threshold derivation at small trace sizes: the gate is
// max(50, len(DNS)/9200) capped at Opts.SCRMinSamples, and resolvers
// below it fall back to the 5 ms default.
func TestThresholdGateTinyTraces(t *testing.T) {
	mk := func(n int, dur time.Duration) *trace.Dataset {
		ds := &trace.Dataset{}
		for i := 0; i < n; i++ {
			ds.DNS = append(ds.DNS, mkDNS(houseA, resLoc,
				time.Duration(i+1)*time.Second, dur, "a.com", webIP, time.Hour))
		}
		return ds
	}

	t.Run("below the 50-sample floor", func(t *testing.T) {
		a := Analyze(mk(49, 20*time.Millisecond), DefaultOptions())
		if _, ok := a.Thresholds[resLoc.String()]; ok {
			t.Fatal("resolver with 49 lookups got a derived threshold")
		}
		if th := a.thresholdFor(resLoc.String()); th != 5*time.Millisecond {
			t.Fatalf("fallback threshold %v, want 5ms default", th)
		}
	})

	t.Run("exactly at the floor", func(t *testing.T) {
		a := Analyze(mk(50, 20*time.Millisecond), DefaultOptions())
		if th := a.Thresholds[resLoc.String()]; th != 50*time.Millisecond {
			t.Fatalf("threshold %v, want 50ms (2.5x 20ms)", th)
		}
	})

	t.Run("sub-millisecond minimum clamps to the default", func(t *testing.T) {
		// 2.5 x 200µs = 500µs, rounds up to 1 ms, then clamps to the 5 ms
		// default: the derived threshold never undercuts it.
		a := Analyze(mk(50, 200*time.Microsecond), DefaultOptions())
		if th := a.Thresholds[resLoc.String()]; th != 5*time.Millisecond {
			t.Fatalf("threshold %v, want clamped 5ms", th)
		}
	})

	t.Run("rounding lands on whole milliseconds", func(t *testing.T) {
		// 2.5 x 3ms = 7.5ms rounds up to 8ms.
		a := Analyze(mk(50, 3*time.Millisecond), DefaultOptions())
		if th := a.Thresholds[resLoc.String()]; th != 8*time.Millisecond {
			t.Fatalf("threshold %v, want 8ms", th)
		}
	})

	t.Run("SCRMinSamples caps the gate", func(t *testing.T) {
		opts := DefaultOptions()
		opts.SCRMinSamples = 10
		a := Analyze(mk(10, 20*time.Millisecond), opts)
		if th := a.Thresholds[resLoc.String()]; th != 50*time.Millisecond {
			t.Fatalf("threshold %v, want 50ms with lowered gate", th)
		}
	})
}
