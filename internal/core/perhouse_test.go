package core

import (
	"testing"
	"time"

	"dnscontext/internal/resolver"
	"dnscontext/internal/trace"
)

func TestPerHouseSummaries(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "a.com", webIP, time.Hour),
			mkDNS(houseA, resGgl, 20*time.Second, 20*time.Millisecond, "b.com", webIP2, time.Hour),
			mkDNS(houseB, resLoc, 30*time.Second, 3*time.Millisecond, "c.com", cdnIP, time.Hour),
		},
		Conns: []trace.ConnRecord{
			mkConn(houseA, webIP, 10*time.Second+5*time.Millisecond, time.Second, 443), // SC
			mkConn(houseA, webIP, time.Minute, time.Second, 443),                       // LC
			mkConn(houseB, cdnIP, 30*time.Second+5*time.Millisecond, time.Second, 443), // SC
			mkConn(houseB, peerIP, time.Minute, time.Second, 50000),                    // N
		},
	}
	a := Analyze(ds, testOptions())
	houses := a.PerHouse(resolver.DefaultProfiles())
	if len(houses) != 2 {
		t.Fatalf("houses %d", len(houses))
	}
	hA, hB := houses[0], houses[1]
	if hA.House != trace.HouseOf(houseA) || hB.House != trace.HouseOf(houseB) {
		t.Fatalf("house ordering wrong: %d, %d", hA.House, hB.House)
	}
	if hA.DNS != 2 || hA.Conns != 2 {
		t.Fatalf("house A volumes %d/%d", hA.DNS, hA.Conns)
	}
	if hA.ClassCounts[ClassSC] != 1 || hA.ClassCounts[ClassLC] != 1 {
		t.Fatalf("house A classes %+v", hA.ClassCounts)
	}
	if hA.BlockedFraction() != 0.5 {
		t.Fatalf("house A blocked %v", hA.BlockedFraction())
	}
	if hA.UsesOnlyLocal() {
		t.Fatal("house A uses Google but reported only-local")
	}
	if !hB.UsesOnlyLocal() {
		t.Fatal("house B should be only-local")
	}
	if f := OnlyLocalFraction(houses); f != 0.5 {
		t.Fatalf("only-local fraction %v", f)
	}
	if OnlyLocalFraction(nil) != 0 {
		t.Fatal("empty only-local fraction")
	}
}

func TestPerHousePaperBand(t *testing.T) {
	a := analysisForPaperBands(t)
	houses := a.PerHouse(resolver.DefaultProfiles())
	if len(houses) < 40 {
		t.Fatalf("only %d houses", len(houses))
	}
	// Paper §3: ~16% of houses use only the ISP's resolvers. Houses
	// without Android devices and without third-party configuration are
	// exactly that population.
	f := OnlyLocalFraction(houses)
	within(t, "only-local houses (paper ~0.16)", f, 0.02, 0.35)
	// Every house should have seen traffic in a day.
	for _, h := range houses {
		if h.Conns == 0 {
			t.Fatalf("house %d has no connections", h.House)
		}
	}
}
