package core

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"testing"
	"time"

	"dnscontext/internal/households"
	"dnscontext/internal/resolver"
)

// Golden output hashes, captured from the pre-interning implementation
// (commit 7dfd5b9) over determinismTrace with SCRMinSamples=50. They pin
// the ISSUE 5 acceptance bar — the allocation-lean pipeline (interned
// names, flat layout, symbol-indexed hot paths) must be bit-identical
// to the seed implementation: same report bytes, same Paired encoding,
// same checkpoint shard bytes, at every worker count, under both
// pairing policies. If an optimization changes any of these hashes, it
// changed the science, not just the speed.
var goldenHashes = map[PairingPolicy]struct{ report, paired, checkpoint uint64 }{
	PairMostRecent: {report: 0xd547402905b13212, paired: 0xdb8e66a726e9471d, checkpoint: 0x0c7b20bb7d3c3fdd},
	PairRandom:     {report: 0x2be6a45431a019c1, paired: 0xe73357fb6dcd5241, checkpoint: 0x0d1fb71456448458},
}

// hashAnalysis reduces an Analysis to three FNV-64a fingerprints: the
// full text report, the Paired slice (field by field, fixed-width), and
// the concatenated checkpoint shard encodings.
func hashAnalysis(t *testing.T, a *Analysis, profiles []resolver.PlatformProfile) (report, paired, checkpoint uint64) {
	t.Helper()
	var rep bytes.Buffer
	if err := a.Report(&rep, profiles); err != nil {
		t.Fatal(err)
	}
	hr := fnv.New64a()
	hr.Write(rep.Bytes())

	hp := fnv.New64a()
	for i := range a.Paired {
		pc := &a.Paired[i]
		binary.Write(hp, binary.LittleEndian, int64(pc.Conn))
		binary.Write(hp, binary.LittleEndian, int64(pc.DNS))
		binary.Write(hp, binary.LittleEndian, int64(pc.Gap))
		binary.Write(hp, binary.LittleEndian, uint8(pc.Class))
		binary.Write(hp, binary.LittleEndian, pc.FirstUse)
		binary.Write(hp, binary.LittleEndian, pc.UsedExpired)
		binary.Write(hp, binary.LittleEndian, int64(pc.Candidates))
	}

	hc := fnv.New64a()
	for s := range a.shards {
		hc.Write(a.encodeShard(s))
	}
	return hr.Sum64(), hp.Sum64(), hc.Sum64()
}

// TestGoldenOutputsBitIdentical is the bit-identical output invariant:
// reports, pairings, and checkpoint bytes must match the seed
// implementation's hashes at Workers 1, 2, and 8, for both pairing
// policies.
func TestGoldenOutputsBitIdentical(t *testing.T) {
	cfg := households.SmallConfig(7)
	cfg.Houses = 8
	cfg.Duration = time.Hour
	cfg.Warmup = 30 * time.Minute
	ds, eco, err := households.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pairing, want := range goldenHashes {
		for _, workers := range []int{1, 2, 8} {
			opts := DefaultOptions()
			opts.Pairing = pairing
			opts.SCRMinSamples = 50
			opts.Workers = workers
			a := analyzeCopy(ds, opts)
			report, paired, checkpoint := hashAnalysis(t, a, eco.Profiles)
			if report != want.report {
				t.Errorf("pairing=%v workers=%d: report hash %#016x, want %#016x",
					pairing, workers, report, want.report)
			}
			if paired != want.paired {
				t.Errorf("pairing=%v workers=%d: Paired hash %#016x, want %#016x",
					pairing, workers, paired, want.paired)
			}
			if checkpoint != want.checkpoint {
				t.Errorf("pairing=%v workers=%d: checkpoint hash %#016x, want %#016x",
					pairing, workers, checkpoint, want.checkpoint)
			}
		}
	}
}
