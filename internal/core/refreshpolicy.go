package core

import (
	"fmt"
	"net/netip"
	"time"
)

// RefreshPolicy is a declarative rule for when a whole-house cache
// refreshes an expiring entry. The paper (§8) evaluates only the two
// extremes — never refresh, and refresh everything — and leaves the
// middle ground as an open question: "whether we can design ways to
// achieve close to the 96.6% cache hit rate ... while incurring costs
// that are commiserate with the standard cache". This type and
// SimulateCachePolicy explore that middle ground.
type RefreshPolicy struct {
	// Label names the policy in reports.
	Label string
	// Never disables refreshing entirely (the paper's standard cache).
	Never bool
	// MaxIdle stops refreshing an entry once it has gone unused for this
	// long. Zero means refresh forever (the paper's refresh-all).
	MaxIdle time.Duration
	// MinUses gates refreshing on demonstrated demand: an entry is only
	// refreshed once it has been used at least this many times in total.
	MinUses int
}

// The paper's two Table 3 policies, plus the middle-ground family.
var (
	// PolicyNever is the standard cache: fetch on demand only.
	PolicyNever = RefreshPolicy{Label: "standard", Never: true}
	// PolicyRefreshAll refreshes every expiring entry forever.
	PolicyRefreshAll = RefreshPolicy{Label: "refresh-all"}
)

// PolicyIdleBounded refreshes entries only while they have been used
// within maxIdle.
func PolicyIdleBounded(maxIdle time.Duration) RefreshPolicy {
	return RefreshPolicy{Label: fmt.Sprintf("idle<=%v", maxIdle), MaxIdle: maxIdle}
}

// PolicyPopular refreshes entries that have been used at least minUses
// times and not longer than maxIdle ago.
func PolicyPopular(minUses int, maxIdle time.Duration) RefreshPolicy {
	return RefreshPolicy{
		Label:   fmt.Sprintf("uses>=%d,idle<=%v", minUses, maxIdle),
		MinUses: minUses,
		MaxIdle: maxIdle,
	}
}

// SimulateCachePolicy replays the DNS-using connections through a
// per-house cache governed by pol, charging one lookup per demand miss
// and one per speculative refresh. Names with authoritative TTL at or
// below floor are never refreshed (the paper's logistical bound).
func (a *Analysis) SimulateCachePolicy(floor time.Duration, pol RefreshPolicy) CachePolicy {
	authTTL, window := a.refreshInputs()

	type state struct {
		alive     bool
		expiresAt time.Duration
		lastUse   time.Duration
		uses      int
	}
	type key struct {
		house netip.Addr
		name  string
	}
	states := make(map[key]*state)
	var out CachePolicy
	houses := make(map[netip.Addr]bool)

	// refreshesUntil counts the refresh lookups for an entry expiring at
	// expiry, last used at lastUse with uses total uses, up to (not
	// including) the first expiry the policy abandons, capped at limit.
	// It returns the count and the entry's expiry after those refreshes.
	refreshesUntil := func(st *state, ttl, limit time.Duration) (count uint64) {
		if pol.Never || ttl <= floor || ttl <= 0 {
			return 0
		}
		if pol.MinUses > 0 && st.uses < pol.MinUses {
			return 0
		}
		for st.expiresAt <= limit {
			if pol.MaxIdle > 0 && st.expiresAt-st.lastUse > pol.MaxIdle {
				return count
			}
			count++
			st.expiresAt += ttl
		}
		return count
	}

	for i := range a.Paired {
		pc := &a.Paired[i]
		if pc.Class == ClassN {
			continue
		}
		conn := &a.DS.Conns[pc.Conn]
		houses[conn.Orig] = true
		name := a.DS.DNS[pc.DNS].Query
		ttl := authTTL[name]
		now := conn.TS
		k := key{house: conn.Orig, name: name}

		st := states[k]
		if st == nil {
			st = &state{}
			states[k] = st
		}

		if st.alive && now >= st.expiresAt {
			// The entry expired before this use; see how long the policy
			// kept it alive.
			out.Lookups += refreshesUntil(st, ttl, now)
			if now >= st.expiresAt {
				st.alive = false
			}
		}

		if st.alive && now < st.expiresAt {
			out.Hits++
		} else {
			out.Misses++
			out.Lookups++
			st.alive = ttl > 0
			st.expiresAt = now + ttl
		}
		st.lastUse = now
		st.uses++
	}

	// Tail: entries still alive at the end of the window keep consuming
	// refresh lookups until the policy abandons them or the capture ends.
	for k, st := range states {
		if !st.alive {
			continue
		}
		out.Lookups += refreshesUntil(st, authTTL[k.name], window)
	}

	total := out.Hits + out.Misses
	if total > 0 {
		out.HitRate = float64(out.Hits) / float64(total)
	}
	if len(houses) > 0 && window > 0 {
		out.LookupsPerSecPerHouse = float64(out.Lookups) / window.Seconds() / float64(len(houses))
	}
	return out
}

// refreshInputs derives the per-name authoritative TTL approximation and
// the window length (shared by both refresh simulators).
func (a *Analysis) refreshInputs() (map[string]time.Duration, time.Duration) {
	authTTL := make(map[string]time.Duration)
	var window time.Duration
	for i := range a.DS.DNS {
		d := &a.DS.DNS[i]
		if t := d.MinTTL(); t > authTTL[d.Query] {
			authTTL[d.Query] = t
		}
		if d.TS > window {
			window = d.TS
		}
	}
	for i := range a.DS.Conns {
		if end := a.DS.Conns[i].TS; end > window {
			window = end
		}
	}
	return authTTL, window
}

// PolicyComparison is one row of the future-work exploration: a policy
// with its outcome.
type PolicyComparison struct {
	Policy RefreshPolicy
	Result CachePolicy
}

// CompareRefreshPolicies evaluates a set of refresh policies over the
// trace, bracketing them with the paper's two extremes.
func (a *Analysis) CompareRefreshPolicies(floor time.Duration, policies ...RefreshPolicy) []PolicyComparison {
	all := append([]RefreshPolicy{PolicyNever}, policies...)
	all = append(all, PolicyRefreshAll)
	out := make([]PolicyComparison, 0, len(all))
	for _, pol := range all {
		out = append(out, PolicyComparison{Policy: pol, Result: a.SimulateCachePolicy(floor, pol)})
	}
	return out
}
