package core

import (
	"context"
	"fmt"
	"time"

	"dnscontext/internal/parallel"
	"dnscontext/internal/trace"
)

// RefreshPolicy is a declarative rule for when a whole-house cache
// refreshes an expiring entry. The paper (§8) evaluates only the two
// extremes — never refresh, and refresh everything — and leaves the
// middle ground as an open question: "whether we can design ways to
// achieve close to the 96.6% cache hit rate ... while incurring costs
// that are commiserate with the standard cache". This type and
// SimulateCachePolicy explore that middle ground.
type RefreshPolicy struct {
	// Label names the policy in reports.
	Label string
	// Never disables refreshing entirely (the paper's standard cache).
	Never bool
	// MaxIdle stops refreshing an entry once it has gone unused for this
	// long. Zero means refresh forever (the paper's refresh-all).
	MaxIdle time.Duration
	// MinUses gates refreshing on demonstrated demand: an entry is only
	// refreshed once it has been used at least this many times in total.
	MinUses int
}

// The paper's two Table 3 policies, plus the middle-ground family.
var (
	// PolicyNever is the standard cache: fetch on demand only.
	PolicyNever = RefreshPolicy{Label: "standard", Never: true}
	// PolicyRefreshAll refreshes every expiring entry forever.
	PolicyRefreshAll = RefreshPolicy{Label: "refresh-all"}
)

// PolicyIdleBounded refreshes entries only while they have been used
// within maxIdle.
func PolicyIdleBounded(maxIdle time.Duration) RefreshPolicy {
	return RefreshPolicy{Label: fmt.Sprintf("idle<=%v", maxIdle), MaxIdle: maxIdle}
}

// PolicyPopular refreshes entries that have been used at least minUses
// times and not longer than maxIdle ago.
func PolicyPopular(minUses int, maxIdle time.Duration) RefreshPolicy {
	return RefreshPolicy{
		Label:   fmt.Sprintf("uses>=%d,idle<=%v", minUses, maxIdle),
		MinUses: minUses,
		MaxIdle: maxIdle,
	}
}

// SimulateCachePolicy replays the DNS-using connections through a
// per-house cache governed by pol, charging one lookup per demand miss
// and one per speculative refresh. Names with authoritative TTL at or
// below floor are never refreshed (the paper's logistical bound).
//
// Caches are per house and the shards are per house, so each shard
// replays independently on the worker pool; the per-shard counters are
// summed in shard order.
func (a *Analysis) SimulateCachePolicy(floor time.Duration, pol RefreshPolicy) CachePolicy {
	authTTL, window := a.refreshInputs()

	parts, _ := parallel.Map(context.Background(), a.Opts.Workers, len(a.shards),
		func(s int) (cacheShardTally, error) {
			return a.simulateShardCache(s, floor, pol, authTTL, window), nil
		})

	var out CachePolicy
	houses := 0
	for _, p := range parts {
		out.Lookups += p.lookups
		out.Hits += p.hits
		out.Misses += p.misses
		if p.active {
			houses++
		}
	}
	total := out.Hits + out.Misses
	if total > 0 {
		out.HitRate = float64(out.Hits) / float64(total)
	}
	if houses > 0 && window > 0 {
		out.LookupsPerSecPerHouse = float64(out.Lookups) / window.Seconds() / float64(houses)
	}
	return out
}

// cacheShardTally is one house's contribution to a cache simulation;
// active marks houses that drove at least one DNS-using connection.
type cacheShardTally struct {
	lookups, hits, misses uint64
	active                bool
}

// simulateShardCache replays one house's DNS-using connections through a
// cache governed by pol (see SimulateCachePolicy). Cache entries key on
// query-name symbols, so the replay loop never hashes a string.
func (a *Analysis) simulateShardCache(shardID int, floor time.Duration, pol RefreshPolicy,
	authTTL []time.Duration, window time.Duration) (out cacheShardTally) {
	type state struct {
		alive     bool
		expiresAt time.Duration
		lastUse   time.Duration
		uses      int
	}
	sh := &a.shards[shardID]
	states := make(map[trace.Sym]*state, len(sh.dns)/4+1)

	// refreshesUntil counts the refresh lookups for an entry expiring at
	// st.expiresAt, up to (not including) the first expiry the policy
	// abandons, capped at limit. It advances the entry's expiry as it
	// counts.
	refreshesUntil := func(st *state, ttl, limit time.Duration) (count uint64) {
		if pol.Never || ttl <= floor || ttl <= 0 {
			return 0
		}
		if pol.MinUses > 0 && st.uses < pol.MinUses {
			return 0
		}
		for st.expiresAt <= limit {
			if pol.MaxIdle > 0 && st.expiresAt-st.lastUse > pol.MaxIdle {
				return count
			}
			count++
			st.expiresAt += ttl
		}
		return count
	}

	for _, ci := range sh.conns {
		pc := &a.Paired[ci]
		if pc.Class == ClassN {
			continue
		}
		out.active = true
		name := a.qsym[pc.DNS]
		ttl := authTTL[name]
		now := a.DS.Conns[ci].TS

		st := states[name]
		if st == nil {
			st = &state{}
			states[name] = st
		}

		if st.alive && now >= st.expiresAt {
			// The entry expired before this use; see how long the policy
			// kept it alive.
			out.lookups += refreshesUntil(st, ttl, now)
			if now >= st.expiresAt {
				st.alive = false
			}
		}

		if st.alive && now < st.expiresAt {
			out.hits++
		} else {
			out.misses++
			out.lookups++
			st.alive = ttl > 0
			st.expiresAt = now + ttl
		}
		st.lastUse = now
		st.uses++
	}

	// Tail: entries still alive at the end of the window keep consuming
	// refresh lookups until the policy abandons them or the capture ends.
	for name, st := range states {
		if !st.alive {
			continue
		}
		out.lookups += refreshesUntil(st, authTTL[name], window)
	}
	return out
}

// refreshInputs derives the per-name authoritative TTL approximation
// (a slice indexed by query-name symbol) and the window length (shared
// by every refresh simulation). The inputs are computed once and
// cached; concurrent simulations share the result.
func (a *Analysis) refreshInputs() ([]time.Duration, time.Duration) {
	a.refreshOnce.Do(func() {
		a.authTTL = make([]time.Duration, a.names.Len())
		for i := range a.DS.DNS {
			d := &a.DS.DNS[i]
			if t := d.MinTTL(); t > a.authTTL[a.qsym[i]] {
				a.authTTL[a.qsym[i]] = t
			}
			if d.TS > a.window {
				a.window = d.TS
			}
		}
		for i := range a.DS.Conns {
			if end := a.DS.Conns[i].TS; end > a.window {
				a.window = end
			}
		}
	})
	return a.authTTL, a.window
}

// PolicyComparison is one row of the future-work exploration: a policy
// with its outcome.
type PolicyComparison struct {
	Policy RefreshPolicy
	Result CachePolicy
}

// CompareRefreshPolicies evaluates a set of refresh policies over the
// trace, bracketing them with the paper's two extremes. The grid points
// are independent simulations, so they run concurrently; the rows come
// back in policy order.
func (a *Analysis) CompareRefreshPolicies(floor time.Duration, policies ...RefreshPolicy) []PolicyComparison {
	all := append([]RefreshPolicy{PolicyNever}, policies...)
	all = append(all, PolicyRefreshAll)
	// Warm the shared inputs before fanning out.
	a.refreshInputs()
	out, _ := parallel.Map(context.Background(), a.Opts.Workers, len(all),
		func(i int) (PolicyComparison, error) {
			return PolicyComparison{Policy: all[i], Result: a.SimulateCachePolicy(floor, all[i])}, nil
		})
	return out
}
