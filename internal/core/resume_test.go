package core

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"dnscontext/internal/trace"
)

// reportBytes renders the analysis report exactly as cmd/dnsctx would.
func reportBytes(t *testing.T, a *Analysis) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Report(&buf, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func copyDataset(ds *trace.Dataset) *trace.Dataset {
	return &trace.Dataset{
		DNS:   append([]trace.DNSRecord(nil), ds.DNS...),
		Conns: append([]trace.ConnRecord(nil), ds.Conns...),
	}
}

// TestCrashResumeDeterminism is the acceptance gate for checkpoint/
// resume: kill the analysis after every snapshot, resume it, and the
// final report must be byte-identical to an uninterrupted run — at
// Workers 1 and 8.
func TestCrashResumeDeterminism(t *testing.T) {
	ds := determinismTrace(t)
	for _, workers := range []int{1, 8} {
		opts := DefaultOptions()
		opts.SCRMinSamples = 50
		opts.Workers = workers
		ref := analyzeCopy(ds, opts)
		wantReport := reportBytes(t, ref)

		path := filepath.Join(t.TempDir(), "analysis.ckpt")
		var final *Analysis
		crashes := 0
		// Interval 1 snapshots after every shard, so every shard
		// boundary is a kill point.
		for attempt := 0; attempt < 100; attempt++ {
			ctx, cancel := context.WithCancel(context.Background())
			var killed atomic.Bool
			o := opts
			o.Checkpoint = &Checkpoint{
				Path:     path,
				Interval: 1,
				Resume:   true,
				OnSnapshot: func(done int) {
					// Kill at the first new snapshot of this attempt.
					if killed.CompareAndSwap(false, true) {
						cancel()
					}
				},
			}
			a, err := AnalyzeContext(ctx, copyDataset(ds), o)
			cancel()
			if err == nil {
				final = a
				break
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d attempt %d: unexpected error: %v", workers, attempt, err)
			}
			crashes++
		}
		if final == nil {
			t.Fatalf("workers=%d: analysis never completed", workers)
		}
		if crashes == 0 {
			t.Fatalf("workers=%d: no crash was ever injected; test proves nothing", workers)
		}

		if !reflect.DeepEqual(final.Paired, ref.Paired) {
			t.Fatalf("workers=%d: resumed Paired differs after %d crashes", workers, crashes)
		}
		if !reflect.DeepEqual(final.DNSUsed, ref.DNSUsed) {
			t.Fatalf("workers=%d: resumed DNSUsed differs", workers)
		}
		if got := reportBytes(t, final); !bytes.Equal(got, wantReport) {
			t.Fatalf("workers=%d: resumed report differs from uninterrupted run after %d crashes", workers, crashes)
		}
	}
}

// TestResumeAcrossWorkerCounts pins the stronger property the shard
// design buys: a checkpoint written at one worker count resumes
// bit-identically at another.
func TestResumeAcrossWorkerCounts(t *testing.T) {
	ds := determinismTrace(t)
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	opts.Workers = 1
	ref := analyzeCopy(ds, opts)

	path := filepath.Join(t.TempDir(), "analysis.ckpt")
	// Write a partial checkpoint at Workers=1.
	ctx, cancel := context.WithCancel(context.Background())
	o := opts
	o.Checkpoint = &Checkpoint{Path: path, Interval: 1, OnSnapshot: func(done int) {
		if done >= 3 {
			cancel()
		}
	}}
	if _, err := AnalyzeContext(ctx, copyDataset(ds), o); err == nil {
		t.Fatal("run was not interrupted; dataset too small for the test")
	}
	cancel()

	// Resume at Workers=8.
	o = opts
	o.Workers = 8
	o.Checkpoint = &Checkpoint{Path: path, Resume: true}
	got, err := AnalyzeContext(context.Background(), copyDataset(ds), o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Paired, ref.Paired) || !reflect.DeepEqual(got.Table2(), ref.Table2()) {
		t.Fatal("checkpoint written at Workers=1 resumed wrong at Workers=8")
	}
}

// TestResumeRejectsMismatch: resuming against a different dataset or
// different options is an error, never a silent wrong answer.
func TestResumeRejectsMismatch(t *testing.T) {
	ds := determinismTrace(t)
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	path := filepath.Join(t.TempDir(), "analysis.ckpt")

	// Complete a checkpointed run so the file exists and covers all shards.
	o := opts
	o.Checkpoint = &Checkpoint{Path: path, Interval: 1}
	if _, err := AnalyzeContext(context.Background(), copyDataset(ds), o); err != nil {
		t.Fatal(err)
	}

	// Different dataset: drop one connection.
	mutated := copyDataset(ds)
	mutated.Conns = mutated.Conns[:len(mutated.Conns)-1]
	o = opts
	o.Checkpoint = &Checkpoint{Path: path, Resume: true}
	if _, err := AnalyzeContext(context.Background(), mutated, o); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("mutated dataset: err = %v, want ErrCheckpointMismatch", err)
	}

	// Different options: a new seed changes the RNG streams.
	o = opts
	o.Seed = opts.Seed + 1
	o.Checkpoint = &Checkpoint{Path: path, Resume: true}
	if _, err := AnalyzeContext(context.Background(), copyDataset(ds), o); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("changed seed: err = %v, want ErrCheckpointMismatch", err)
	}

	// A missing checkpoint is not an error: the run starts fresh.
	o = opts
	o.Checkpoint = &Checkpoint{Path: filepath.Join(t.TempDir(), "absent.ckpt"), Resume: true}
	a, err := AnalyzeContext(context.Background(), copyDataset(ds), o)
	if err != nil || a == nil {
		t.Fatalf("missing checkpoint: (%v, %v), want fresh run", a, err)
	}
}
