package core

import (
	"testing"
	"time"

	"dnscontext/internal/trace"
)

func TestFigure1FirstUseSplit(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "a.com", webIP, time.Hour),
			mkDNS(houseA, resLoc, 100*time.Second, 3*time.Millisecond, "b.com", webIP2, time.Hour),
		},
		Conns: []trace.ConnRecord{
			// Within knee, first use.
			mkConn(houseA, webIP, 10*time.Second+5*time.Millisecond, time.Second, 443),
			// Beyond knee, first use (prefetch-like).
			mkConn(houseA, webIP2, 200*time.Second, time.Second, 443),
			// Beyond knee, reuse.
			mkConn(houseA, webIP, 300*time.Second, time.Second, 443),
		},
	}
	a := Analyze(ds, testOptions())
	f1 := a.Figure1()
	if f1.Gaps.N() != 3 {
		t.Fatalf("gaps %d", f1.Gaps.N())
	}
	if f1.FirstUseWithinKnee != 1.0 {
		t.Fatalf("within-knee first-use %v, want 1.0", f1.FirstUseWithinKnee)
	}
	if f1.FirstUseBeyondKnee != 0.5 {
		t.Fatalf("beyond-knee first-use %v, want 0.5", f1.FirstUseBeyondKnee)
	}
}

func TestFigure2AndSignificance(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			// SC lookup: 4 ms, app 1 s => contribution ~0.4%.
			mkDNS(houseA, resLoc, 10*time.Second, 4*time.Millisecond, "a.com", webIP, time.Hour),
			// R lookup: 50 ms, app 0.1 s => contribution 33%, abs high.
			mkDNS(houseA, resLoc, 20*time.Second, 50*time.Millisecond, "b.com", webIP2, time.Hour),
		},
		Conns: []trace.ConnRecord{
			mkConn(houseA, webIP, 10*time.Second+time.Millisecond, time.Second, 443),
			mkConn(houseA, webIP2, 20*time.Second+time.Millisecond, 100*time.Millisecond, 443),
		},
	}
	a := Analyze(ds, testOptions())
	f2 := a.Figure2()
	if f2.LookupDelays.N() != 2 || f2.ContributionSC.N() != 1 || f2.ContributionR.N() != 1 {
		t.Fatalf("figure2 sample counts wrong: %d/%d/%d",
			f2.LookupDelays.N(), f2.ContributionSC.N(), f2.ContributionR.N())
	}
	wantSC := 100 * 4.0 / 1004.0
	if got := f2.ContributionSC.Median(); got < wantSC-0.01 || got > wantSC+0.01 {
		t.Fatalf("SC contribution %.3f%%, want %.3f%%", got, wantSC)
	}

	sig := a.Significance()
	if sig.N != 2 {
		t.Fatalf("sig N=%d", sig.N)
	}
	if sig.BothInsignificant != 0.5 || sig.BothSignificant != 0.5 {
		t.Fatalf("quadrants: %+v", sig)
	}
	if sig.OverallSignificant != 0.5 {
		t.Fatalf("overall %v, want 0.5 (1 of 2 conns)", sig.OverallSignificant)
	}
}

func TestTTLViolationsAndGapMedians(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "a.com", webIP, 60*time.Second),
		},
		Conns: []trace.ConnRecord{
			// First use 100 s after lookup: record expired 30 s before
			// use (expiry at 70 s) -> P with violation, lateness 40 s.
			mkConn(houseA, webIP, 110*time.Second, time.Second, 443),
			// Reuse at 10 min: LC with violation.
			mkConn(houseA, webIP, 10*time.Minute, time.Second, 443),
		},
	}
	a := Analyze(ds, testOptions())
	v := a.TTLViolations()
	if v.PExpiredFraction != 1 || v.LCExpiredFraction != 1 {
		t.Fatalf("expired fractions %v / %v", v.PExpiredFraction, v.LCExpiredFraction)
	}
	if v.Lateness.N() != 2 {
		t.Fatalf("lateness samples %d", v.Lateness.N())
	}
	if got := v.Lateness.Min(); got != 40 {
		t.Fatalf("min lateness %v s, want 40", got)
	}
	if v.LatenessBeyond30s != 1 {
		t.Fatalf("beyond-30s %v", v.LatenessBeyond30s)
	}
	if v.GapMedianP != 100*time.Second {
		t.Fatalf("P gap median %v", v.GapMedianP)
	}
	if v.GapMedianLC != 10*time.Minute-10*time.Second {
		t.Fatalf("LC gap median %v", v.GapMedianLC)
	}
}

func TestPrefetchAccounting(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "used.com", webIP, time.Hour),
			mkDNS(houseA, resLoc, 11*time.Second, 3*time.Millisecond, "unused1.com", webIP2, time.Hour),
			mkDNS(houseA, resLoc, 12*time.Second, 3*time.Millisecond, "unused2.com", cdnIP, time.Hour),
		},
		Conns: []trace.ConnRecord{
			mkConn(houseA, webIP, 60*time.Second, time.Second, 443), // P
		},
	}
	a := Analyze(ds, testOptions())
	pf := a.Prefetch()
	if pf.TotalLookups != 3 || pf.UnusedLookups != 2 {
		t.Fatalf("lookups %d unused %d", pf.TotalLookups, pf.UnusedLookups)
	}
	if pf.UnusedFraction < 0.66 || pf.UnusedFraction > 0.67 {
		t.Fatalf("unused fraction %v", pf.UnusedFraction)
	}
	// 1 P lookup / (1 + 2 unused) = 1/3.
	if pf.SpeculativeUsedFraction < 0.33 || pf.SpeculativeUsedFraction > 0.34 {
		t.Fatalf("speculative used %v", pf.SpeculativeUsedFraction)
	}
}

func TestNoDNSBreakdown(t *testing.T) {
	ds := &trace.Dataset{
		Conns: []trace.ConnRecord{
			mkConn(houseA, peerIP, time.Second, time.Second, 50000), // p2p
			mkConn(houseA, peerIP, 2*time.Second, time.Second, 123), // hardcoded NTP
			mkConn(houseA, peerIP, 3*time.Second, time.Second, 853), // DoT!
		},
	}
	a := Analyze(ds, testOptions())
	nd := a.NoDNS()
	if nd.Total != 3 {
		t.Fatalf("N total %d", nd.Total)
	}
	if nd.HighPortFraction < 0.33 || nd.HighPortFraction > 0.34 {
		t.Fatalf("high-port %v", nd.HighPortFraction)
	}
	if nd.ReservedPortCounts[123] != 1 {
		t.Fatalf("NTP count %d", nd.ReservedPortCounts[123])
	}
	if nd.DoTConns != 1 {
		t.Fatalf("DoT conns %d", nd.DoTConns)
	}
	if nd.UnpairedNonP2PFraction < 0.66 || nd.UnpairedNonP2PFraction > 0.67 {
		t.Fatalf("unpaired non-p2p %v", nd.UnpairedNonP2PFraction)
	}
}

func TestWholeHouseCrossDevice(t *testing.T) {
	// Device 1 (house A) looks up a.com at t=10s (TTL 10 min). Device 2
	// (same house, cold stub) must block on its own lookup at t=60s; a
	// whole-house cache would have served it.
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "a.com", webIP, 10*time.Minute),
			mkDNS(houseA, resLoc, 60*time.Second, 3*time.Millisecond, "a.com", webIP, 10*time.Minute),
			// Unrelated house B lookup must not help house A.
			mkDNS(houseB, resLoc, 30*time.Second, 3*time.Millisecond, "b.com", webIP2, 10*time.Minute),
			mkDNS(houseB, resLoc, 90*time.Second, 50*time.Millisecond, "b.com", webIP2, 10*time.Minute),
		},
		Conns: []trace.ConnRecord{
			mkConn(houseA, webIP, 10*time.Second+5*time.Millisecond, time.Second, 443),
			mkConn(houseA, webIP, 60*time.Second+5*time.Millisecond, time.Second, 443),
			mkConn(houseB, webIP2, 30*time.Second+5*time.Millisecond, time.Second, 443),
			mkConn(houseB, webIP2, 90*time.Second+60*time.Millisecond, time.Second, 443),
		},
	}
	a := Analyze(ds, testOptions())
	wh := a.WholeHouse()
	// Conn 1 (house A second lookup) and conn 3 (house B second lookup)
	// are covered; conns 0 and 2 are first-ever and are not.
	if wh.Moved != 2 {
		t.Fatalf("moved %d, want 2", wh.Moved)
	}
	if wh.SCTotal+wh.RTotal != 4 {
		t.Fatalf("blocked totals %d+%d", wh.SCTotal, wh.RTotal)
	}
	if wh.MovedFraction != 0.5 {
		t.Fatalf("moved fraction %v", wh.MovedFraction)
	}
}

func TestWholeHouseExpiredNotCovered(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "a.com", webIP, 20*time.Second),
			mkDNS(houseA, resLoc, 120*time.Second, 3*time.Millisecond, "a.com", webIP, 20*time.Second),
		},
		Conns: []trace.ConnRecord{
			mkConn(houseA, webIP, 10*time.Second+5*time.Millisecond, time.Second, 443),
			// The earlier record expired at t=30s; at t=120s a
			// whole-house cache holds nothing.
			mkConn(houseA, webIP, 120*time.Second+5*time.Millisecond, time.Second, 443),
		},
	}
	a := Analyze(ds, testOptions())
	if wh := a.WholeHouse(); wh.Moved != 0 {
		t.Fatalf("expired record counted as coverage: %+v", wh)
	}
}

func TestRefreshSimulation(t *testing.T) {
	// One name, TTL 100 s, house A connects every 60 s for 10 minutes:
	// standard cache alternates hit/miss; refresh-all only misses once.
	ds := &trace.Dataset{}
	for i := 0; i < 10; i++ {
		ts := time.Duration(i) * time.Minute
		ds.DNS = append(ds.DNS, mkDNS(houseA, resLoc, ts, 3*time.Millisecond, "a.com", webIP, 100*time.Second))
		ds.Conns = append(ds.Conns, mkConn(houseA, webIP, ts+5*time.Millisecond, time.Second, 443))
	}
	a := Analyze(ds, testOptions())
	rf := a.RefreshSimulation(10 * time.Second)
	if rf.Conns != 10 {
		t.Fatalf("conns %d", rf.Conns)
	}
	// Standard: conn at t=0 miss, t=60 hit (TTL 100), t=120 miss, ...
	if rf.Standard.Misses != 5 || rf.Standard.Hits != 5 {
		t.Fatalf("standard hits/misses %d/%d", rf.Standard.Hits, rf.Standard.Misses)
	}
	if rf.RefreshAll.Misses != 1 || rf.RefreshAll.Hits != 9 {
		t.Fatalf("refresh hits/misses %d/%d", rf.RefreshAll.Hits, rf.RefreshAll.Misses)
	}
	// Refresh lookups: initial + one per TTL over the remaining window
	// (~9 min / 100 s = 5).
	if rf.RefreshAll.Lookups < 5 || rf.RefreshAll.Lookups > 7 {
		t.Fatalf("refresh lookups %d", rf.RefreshAll.Lookups)
	}
	if rf.LookupMultiplier <= 1 {
		t.Fatalf("multiplier %v", rf.LookupMultiplier)
	}
}

func TestRefreshTTLFloorNotRefreshed(t *testing.T) {
	// TTL 5 s with floor 10 s: refresh-all behaves exactly like the
	// standard cache.
	ds := &trace.Dataset{}
	for i := 0; i < 6; i++ {
		ts := time.Duration(i) * time.Minute
		ds.DNS = append(ds.DNS, mkDNS(houseA, resLoc, ts, 3*time.Millisecond, "s.com", webIP, 5*time.Second))
		ds.Conns = append(ds.Conns, mkConn(houseA, webIP, ts+5*time.Millisecond, time.Second, 443))
	}
	a := Analyze(ds, testOptions())
	rf := a.RefreshSimulation(10 * time.Second)
	if rf.RefreshAll.Lookups != rf.Standard.Lookups {
		t.Fatalf("short-TTL name was refreshed: %d vs %d", rf.RefreshAll.Lookups, rf.Standard.Lookups)
	}
}

func TestDatasetStats(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "a.com", webIP, time.Hour),
			{QueryTS: 20 * time.Second, TS: 20*time.Second + time.Millisecond,
				Client: houseA, Resolver: resLoc, Query: "a.com", QType: 28},
		},
		Conns: []trace.ConnRecord{
			mkConn(houseA, webIP, time.Minute, time.Second, 443),
			{TS: 2 * time.Minute, Proto: trace.UDP, Orig: houseB, OrigPort: 1,
				Resp: peerIP, RespPort: 123, OrigBytes: 48},
		},
	}
	a := Analyze(ds, testOptions())
	s := a.DatasetStats()
	if s.DNSTransactions != 2 || s.Connections != 2 || s.Houses != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.TCPFraction != 0.5 || s.UDPFraction != 0.5 {
		t.Fatalf("proto split %v/%v", s.TCPFraction, s.UDPFraction)
	}
	if s.AnswerlessFraction != 0.5 {
		t.Fatalf("answerless %v", s.AnswerlessFraction)
	}
	if s.TotalBytes != 20500+48 {
		t.Fatalf("bytes %d", s.TotalBytes)
	}
	if s.Window != 2*time.Minute {
		t.Fatalf("window %v", s.Window)
	}
}

func TestDatasetStatsPaperBand(t *testing.T) {
	a := analysisForPaperBands(t)
	s := a.DatasetStats()
	// Paper: 88% TCP / 12% UDP.
	within(t, "TCP fraction (paper 0.88)", s.TCPFraction, 0.75, 0.97)
	if s.Houses < 40 {
		t.Fatalf("houses %d", s.Houses)
	}
}
