package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"dnscontext/internal/households"
	"dnscontext/internal/trace"
)

// TestParallelIngestGoldenParity is the tentpole determinism gate for
// the chunked-ingest + prep-overlap path: AnalyzeSource over a TSV
// ScannerSource must produce bit-identical golden hashes and Digest at
// every (Workers, IngestWorkers) combination, under both pairing
// policies, with parallel ingest on and off. The reference is one
// serial in-memory analysis of the same parsed records (the TSV format
// rounds timestamps to microseconds, so the reference must come from
// the roundtripped dataset, not the generator's).
func TestParallelIngestGoldenParity(t *testing.T) {
	cfg := households.SmallConfig(7)
	cfg.Houses = 8
	cfg.Duration = time.Hour
	cfg.Warmup = 30 * time.Minute
	ds, eco, err := households.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds.SortByTime()
	var dnsBuf, connBuf bytes.Buffer
	if err := trace.WriteDNS(&dnsBuf, ds.DNS); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteConns(&connBuf, ds.Conns); err != nil {
		t.Fatal(err)
	}
	dnsTSV, connTSV := dnsBuf.String(), connBuf.String()

	parsedDNS, err := trace.ReadDNS(strings.NewReader(dnsTSV))
	if err != nil {
		t.Fatal(err)
	}
	parsedConns, err := trace.ReadConns(strings.NewReader(connTSV))
	if err != nil {
		t.Fatal(err)
	}

	for _, pairing := range []PairingPolicy{PairMostRecent, PairRandom} {
		opts := DefaultOptions()
		opts.Pairing = pairing
		opts.SCRMinSamples = 50
		ref := analyzeCopy(&trace.Dataset{DNS: parsedDNS, Conns: parsedConns}, opts)
		wantReport, wantPaired, wantCheckpoint := hashAnalysis(t, ref, eco.Profiles)

		for _, workers := range []int{1, 2, 8} {
			for _, ingest := range []int{-1, 2, 8} {
				o := opts
				o.Workers = workers
				o.IngestWorkers = ingest
				src := trace.NewScannerSource(
					strings.NewReader(dnsTSV), strings.NewReader(connTSV), trace.Strict())
				a, err := AnalyzeSource(context.Background(), src, o)
				if err != nil {
					t.Fatalf("pairing=%v workers=%d ingest=%d: %v", pairing, workers, ingest, err)
				}
				if a.Summary() {
					t.Fatalf("pairing=%v workers=%d ingest=%d: unbudgeted scanner source returned a summary analysis",
						pairing, workers, ingest)
				}
				report, paired, checkpoint := hashAnalysis(t, a, eco.Profiles)
				if report != wantReport || paired != wantPaired || checkpoint != wantCheckpoint {
					t.Errorf("pairing=%v workers=%d ingest=%d: hashes (%#016x %#016x %#016x), want (%#016x %#016x %#016x)",
						pairing, workers, ingest, report, paired, checkpoint, wantReport, wantPaired, wantCheckpoint)
				}
				if a.Digest() != ref.Digest() {
					t.Errorf("pairing=%v workers=%d ingest=%d: digest %#016x, want %#016x",
						pairing, workers, ingest, a.Digest(), ref.Digest())
				}
			}
		}
	}
}

// TestParallelSymbolRemapDeterminism pins the chunk-local-to-global
// symbol remap directly: buildSidecars must hand back the same tables,
// numbering, and fused resolver stats at every worker count, including
// widths that force many small chunks.
func TestParallelSymbolRemapDeterminism(t *testing.T) {
	ds := determinismTrace(t)
	ds.SortByTime()
	if len(ds.DNS) < 100 {
		t.Fatalf("trace too small: %d DNS records", len(ds.DNS))
	}
	ref, err := buildSidecars(context.Background(), 1, ds.DNS)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		// Drop the size floor out of the way by calling the parallel
		// build directly.
		got := &sidecars{
			names:  trace.NewSymbolTable(),
			qsym:   make([]trace.Sym, len(ds.DNS)),
			rsym:   make([]int32, len(ds.DNS)),
			expiry: make([]time.Duration, len(ds.DNS)),
		}
		if err := got.buildParallel(context.Background(), workers, ds.DNS); err != nil {
			t.Fatal(err)
		}
		if got.names.Len() != ref.names.Len() {
			t.Fatalf("workers=%d: %d names, want %d", workers, got.names.Len(), ref.names.Len())
		}
		for s := 0; s < ref.names.Len(); s++ {
			if got.names.Name(trace.Sym(s)) != ref.names.Name(trace.Sym(s)) {
				t.Fatalf("workers=%d: symbol %d = %q, want %q",
					workers, s, got.names.Name(trace.Sym(s)), ref.names.Name(trace.Sym(s)))
			}
		}
		for i := range ref.qsym {
			if got.qsym[i] != ref.qsym[i] || got.rsym[i] != ref.rsym[i] || got.expiry[i] != ref.expiry[i] {
				t.Fatalf("workers=%d: record %d sidecar (%d %d %v), want (%d %d %v)",
					workers, i, got.qsym[i], got.rsym[i], got.expiry[i],
					ref.qsym[i], ref.rsym[i], ref.expiry[i])
			}
		}
		if len(got.resolverAddrs) != len(ref.resolverAddrs) {
			t.Fatalf("workers=%d: %d resolvers, want %d", workers, len(got.resolverAddrs), len(ref.resolverAddrs))
		}
		for rs := range ref.resolverAddrs {
			if got.resolverAddrs[rs] != ref.resolverAddrs[rs] ||
				got.resCounts[rs] != ref.resCounts[rs] || got.resMins[rs] != ref.resMins[rs] {
				t.Fatalf("workers=%d: resolver %d (%v n=%d min=%v), want (%v n=%d min=%v)",
					workers, rs, got.resolverAddrs[rs], got.resCounts[rs], got.resMins[rs],
					ref.resolverAddrs[rs], ref.resCounts[rs], ref.resMins[rs])
			}
		}
	}
}
