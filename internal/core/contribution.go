package core

import (
	"time"

	"dnscontext/internal/stats"
)

// Figure2 is §6's performance view of the blocked (SC and R) connections.
type Figure2 struct {
	// LookupDelays is the distribution of DNS lookup durations (ms) for
	// SC∪R (Figure 2 top).
	LookupDelays *stats.ECDF
	// Contribution* are the distributions of DNS' percentage contribution
	// to total transaction time 100·D/(D+A) (Figure 2 bottom).
	ContributionAll *stats.ECDF
	ContributionSC  *stats.ECDF
	ContributionR   *stats.ECDF
}

// Figure2 computes the delay and contribution distributions.
func (a *Analysis) Figure2() Figure2 {
	f := Figure2{
		LookupDelays:    stats.NewECDF(0),
		ContributionAll: stats.NewECDF(0),
		ContributionSC:  stats.NewECDF(0),
		ContributionR:   stats.NewECDF(0),
	}
	for i := range a.Paired {
		pc := &a.Paired[i]
		if pc.Class != ClassSC && pc.Class != ClassR {
			continue
		}
		d := a.DS.DNS[pc.DNS].Duration()
		appTime := a.DS.Conns[pc.Conn].Duration
		total := d + appTime
		f.LookupDelays.Add(float64(d) / float64(time.Millisecond))
		contrib := 0.0
		if total > 0 {
			contrib = 100 * float64(d) / float64(total)
		}
		f.ContributionAll.Add(contrib)
		if pc.Class == ClassSC {
			f.ContributionSC.Add(contrib)
		} else {
			f.ContributionR.Add(contrib)
		}
	}
	return f
}

// Significance is §6's quadrant analysis over SC∪R transactions, using
// two independent "insignificant cost" criteria: absolute lookup time at
// most Opts.InsignificantAbs and relative contribution at most
// Opts.InsignificantRel.
type Significance struct {
	// Quadrant fractions over SC∪R transactions (sum to 1).
	BothInsignificant float64 // paper: 64.0%
	OnlyRelHigh       float64 // >rel but <=abs; paper: 11.5%
	OnlyAbsHigh       float64 // >abs but <=rel; paper: 15.9%
	BothSignificant   float64 // paper: 8.6%
	// OverallSignificant is BothSignificant expressed over ALL
	// connections (paper: 3.6%).
	OverallSignificant float64
	N                  int
}

// Significance computes the quadrant fractions.
func (a *Analysis) Significance() Significance {
	var s Significance
	for i := range a.Paired {
		pc := &a.Paired[i]
		if pc.Class != ClassSC && pc.Class != ClassR {
			continue
		}
		s.N++
		d := a.DS.DNS[pc.DNS].Duration()
		total := d + a.DS.Conns[pc.Conn].Duration
		rel := 0.0
		if total > 0 {
			rel = float64(d) / float64(total)
		}
		absHigh := d > a.Opts.InsignificantAbs
		relHigh := rel > a.Opts.InsignificantRel
		switch {
		case !absHigh && !relHigh:
			s.BothInsignificant++
		case !absHigh && relHigh:
			s.OnlyRelHigh++
		case absHigh && !relHigh:
			s.OnlyAbsHigh++
		default:
			s.BothSignificant++
		}
	}
	if s.N > 0 {
		n := float64(s.N)
		s.BothInsignificant /= n
		s.OnlyRelHigh /= n
		s.OnlyAbsHigh /= n
		s.BothSignificant /= n
	}
	if len(a.Paired) > 0 {
		s.OverallSignificant = s.BothSignificant * float64(s.N) / float64(len(a.Paired))
	}
	return s
}
