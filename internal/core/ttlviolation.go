package core

import (
	"time"

	"dnscontext/internal/stats"
)

// TTLViolations is §5.2's analysis of connections using DNS records past
// their TTL, split by class.
type TTLViolations struct {
	// LCExpiredFraction is the share of LC connections using outdated
	// records (paper: 22.2%).
	LCExpiredFraction float64
	// PExpiredFraction is the same for P connections (paper: 12.4%).
	PExpiredFraction float64
	// Lateness is the distribution (seconds) of how long past expiry the
	// violating LC/P connections start (paper: 82% beyond 30 s, median
	// 890 s, p90 ≈ 19k s).
	Lateness *stats.ECDF
	// LatenessBeyond30s is the fraction of violations more than 30 s past
	// expiry.
	LatenessBeyond30s float64
	// GapMedianP / GapMedianLC are the median lookup-to-use gaps
	// (paper: 310 s for P, 1033 s for LC).
	GapMedianP  time.Duration
	GapMedianLC time.Duration
}

// TTLViolations computes the expired-record-use analysis.
func (a *Analysis) TTLViolations() TTLViolations {
	var out TTLViolations
	out.Lateness = stats.NewECDF(0)
	var lc, lcExp, p, pExp int
	gapsP := stats.NewECDF(0)
	gapsLC := stats.NewECDF(0)
	for i := range a.Paired {
		pc := &a.Paired[i]
		switch pc.Class {
		case ClassLC:
			lc++
			gapsLC.Add(pc.Gap.Seconds())
			if pc.UsedExpired {
				lcExp++
			}
		case ClassP:
			p++
			gapsP.Add(pc.Gap.Seconds())
			if pc.UsedExpired {
				pExp++
			}
		default:
			continue
		}
		if pc.UsedExpired {
			d := &a.DS.DNS[pc.DNS]
			late := a.DS.Conns[pc.Conn].TS - d.ExpiresAt()
			out.Lateness.Add(late.Seconds())
		}
	}
	if lc > 0 {
		out.LCExpiredFraction = float64(lcExp) / float64(lc)
	}
	if p > 0 {
		out.PExpiredFraction = float64(pExp) / float64(p)
	}
	if out.Lateness.N() > 0 {
		out.LatenessBeyond30s = out.Lateness.FractionAbove(30)
	}
	if gapsP.N() > 0 {
		out.GapMedianP = time.Duration(gapsP.Median() * float64(time.Second))
	}
	if gapsLC.N() > 0 {
		out.GapMedianLC = time.Duration(gapsLC.Median() * float64(time.Second))
	}
	return out
}

// Prefetch is §5.2's speculative-lookup accounting.
type Prefetch struct {
	// TotalLookups is the number of DNS transactions in the trace.
	TotalLookups int
	// UnusedLookups is how many facilitated no connection (paper: 37.8%).
	UnusedLookups  int
	UnusedFraction float64
	// SpeculativeUsedFraction assumes every unused lookup was a prefetch
	// and asks what fraction of speculative lookups were eventually used:
	// P-connections' lookups / (P lookups + unused) (paper: 22.3%).
	SpeculativeUsedFraction float64
}

// Prefetch computes the unused-lookup analysis.
func (a *Analysis) Prefetch() Prefetch {
	var out Prefetch
	out.TotalLookups = len(a.DS.DNS)
	for _, used := range a.DNSUsed {
		if !used {
			out.UnusedLookups++
		}
	}
	if out.TotalLookups > 0 {
		out.UnusedFraction = float64(out.UnusedLookups) / float64(out.TotalLookups)
	}
	// Count distinct lookups whose first use was a P connection.
	pLookups := make(map[int]bool)
	for i := range a.Paired {
		pc := &a.Paired[i]
		if pc.Class == ClassP && pc.FirstUse {
			pLookups[pc.DNS] = true
		}
	}
	speculative := len(pLookups) + out.UnusedLookups
	if speculative > 0 {
		out.SpeculativeUsedFraction = float64(len(pLookups)) / float64(speculative)
	}
	return out
}
