package core

import (
	"bytes"
	"context"
	"net/netip"
	"testing"
	"time"

	"dnscontext/internal/trace"
)

// forceSpillOpts returns options with a memory budget small enough that
// any realistic test trace trips the spill immediately.
func forceSpillOpts(opts Options) Options {
	opts.MemoryBudget = 4 << 10
	return opts
}

// summaryBytes renders the analysis' summary report, the common output
// surface of the in-memory and streamed paths.
func summaryBytes(t *testing.T, a *Analysis) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamParityWithInMemory is the tentpole's golden parity gate: a
// forced-spill streaming run must produce the same digest, class
// counts, thresholds, and summary bytes as the in-memory pipeline, at
// every worker count and under both pairing policies.
func TestStreamParityWithInMemory(t *testing.T) {
	ds := determinismTrace(t)
	for _, pairing := range []PairingPolicy{PairMostRecent, PairRandom} {
		opts := DefaultOptions()
		opts.Pairing = pairing
		opts.SCRMinSamples = 50
		ref := analyzeCopy(ds, opts)
		wantSummary := summaryBytes(t, ref)

		for _, workers := range []int{1, 2, 8} {
			o := forceSpillOpts(opts)
			o.Workers = workers
			src := trace.NewDatasetSource(&trace.Dataset{
				DNS:   append([]trace.DNSRecord(nil), ds.DNS...),
				Conns: append([]trace.ConnRecord(nil), ds.Conns...),
			})
			src.DS.SortByTime()
			a, err := AnalyzeSource(context.Background(), src, o)
			if err != nil {
				t.Fatalf("pairing=%v workers=%d: %v", pairing, workers, err)
			}
			if !a.Summary() {
				t.Fatalf("pairing=%v workers=%d: forced-spill run returned a full analysis", pairing, workers)
			}
			if got, want := a.Digest(), ref.Digest(); got != want {
				t.Errorf("pairing=%v workers=%d: digest %#016x, want %#016x", pairing, workers, got, want)
			}
			for c := ClassN; c < numClasses; c++ {
				if a.Count(c) != ref.Count(c) {
					t.Errorf("pairing=%v workers=%d: class %v count %d, want %d",
						pairing, workers, c, a.Count(c), ref.Count(c))
				}
			}
			if len(a.Thresholds) != len(ref.Thresholds) {
				t.Errorf("pairing=%v workers=%d: %d thresholds, want %d",
					pairing, workers, len(a.Thresholds), len(ref.Thresholds))
			}
			for r, th := range ref.Thresholds {
				if a.Thresholds[r] != th {
					t.Errorf("pairing=%v workers=%d: resolver %s threshold %v, want %v",
						pairing, workers, r, a.Thresholds[r], th)
				}
			}
			if got := summaryBytes(t, a); !bytes.Equal(got, wantSummary) {
				t.Errorf("pairing=%v workers=%d: summary bytes differ from in-memory:\n--- stream ---\n%s\n--- in-memory ---\n%s",
					pairing, workers, got, wantSummary)
			}
		}
	}
}

// TestStreamResidentPathMatchesInMemory checks the no-spill streaming
// path (budget never trips) short-circuits to the exact in-memory
// result, including the full (non-summary) analysis grade.
func TestStreamResidentPathMatchesInMemory(t *testing.T) {
	ds := determinismTrace(t)
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	ref := analyzeCopy(ds, opts)

	src := trace.NewDatasetSource(&trace.Dataset{
		DNS:   append([]trace.DNSRecord(nil), ds.DNS...),
		Conns: append([]trace.ConnRecord(nil), ds.Conns...),
	})
	a, err := AnalyzeSource(context.Background(), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary() {
		t.Fatal("unbudgeted dataset source should produce a full analysis")
	}
	if a.Digest() != ref.Digest() {
		t.Errorf("digest %#016x, want %#016x", a.Digest(), ref.Digest())
	}
}

// TestStreamBoundedResidency is the out-of-core success criterion: with
// a budget far smaller than the trace, ingestion must complete while
// never retaining more than the budget plus one record's slack.
func TestStreamBoundedResidency(t *testing.T) {
	ds := determinismTrace(t)
	ds.SortByTime()
	opts := DefaultOptions().withDefaults()
	opts.MemoryBudget = 8 << 10

	var traceBytes int64
	for i := range ds.DNS {
		traceBytes += retainedDNSBytes(&ds.DNS[i])
	}
	traceBytes += int64(len(ds.Conns)) * retainedConnBytes()
	if traceBytes < 10*opts.MemoryBudget {
		t.Fatalf("test trace too small: %d bytes retained vs budget %d; want >=10x", traceBytes, opts.MemoryBudget)
	}

	run := newStreamRun(opts)
	defer run.cleanup()
	if err := run.ingest(context.Background(), trace.NewDatasetSource(ds)); err != nil {
		t.Fatal(err)
	}
	if !run.spilled {
		t.Fatal("budget never tripped")
	}
	// account() charges a record before checking, so the peak may exceed
	// the budget by at most one record.
	const maxRecord = 64 << 10
	if run.peakRetained > opts.MemoryBudget+maxRecord {
		t.Errorf("peak retained %d bytes exceeds budget %d + slack", run.peakRetained, opts.MemoryBudget)
	}
	sh, err := run.collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sh.ConnTotal() != len(ds.Conns) || sh.DNSTotal() != len(ds.DNS) {
		t.Errorf("shard covers %d conns / %d dns, want %d / %d",
			sh.ConnTotal(), sh.DNSTotal(), len(ds.Conns), len(ds.DNS))
	}
}

// splitByClient partitions the dataset into n client-disjoint
// sub-datasets, the shape of a multi-process -stream deployment.
func splitByClient(ds *trace.Dataset, n int) []*trace.Dataset {
	group := make(map[netip.Addr]int)
	next := 0
	pick := func(client netip.Addr) int {
		g, ok := group[client]
		if !ok {
			g = next % n
			group[client] = g
			next++
		}
		return g
	}
	parts := make([]*trace.Dataset, n)
	for i := range parts {
		parts[i] = &trace.Dataset{}
	}
	for i := range ds.DNS {
		g := pick(ds.DNS[i].Client)
		parts[g].DNS = append(parts[g].DNS, ds.DNS[i])
	}
	for i := range ds.Conns {
		g := pick(ds.Conns[i].Orig)
		parts[g].Conns = append(parts[g].Conns, ds.Conns[i])
	}
	return parts
}

// TestMultiProcessMergeMatchesInMemory simulates the distributed
// deployment: three collectors each CollectShard over a client-disjoint
// slice (one resident, two forced to spill), the shards merge, and the
// finalized result must be digest-identical to one in-memory run over
// the whole trace. PairMostRecent only — under PairRandom the RNG
// streams are seeded by process-local ranks (documented caveat).
func TestMultiProcessMergeMatchesInMemory(t *testing.T) {
	ds := determinismTrace(t)
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	ref := analyzeCopy(ds, opts)

	parts := splitByClient(ds, 3)
	shards := make([]*AnalysisShard, len(parts))
	for i, part := range parts {
		o := opts
		if i > 0 {
			o = forceSpillOpts(o)
		}
		part.SortByTime()
		sh, err := CollectShard(context.Background(), trace.NewDatasetSource(part), o)
		if err != nil {
			t.Fatalf("collector %d: %v", i, err)
		}
		shards[i] = sh
	}
	merged, err := MergeShards(shards...)
	if err != nil {
		t.Fatal(err)
	}
	a := merged.Finalize()
	if a.Digest() != ref.Digest() {
		t.Errorf("merged digest %#016x, want %#016x", a.Digest(), ref.Digest())
	}
	if got, want := summaryBytes(t, a), summaryBytes(t, ref); !bytes.Equal(got, want) {
		t.Errorf("merged summary differs from in-memory:\n--- merged ---\n%s\n--- in-memory ---\n%s", got, want)
	}
}

// TestStreamRejectsOutOfOrderSource checks the ingest-time ordering
// contract: a source yielding decreasing timestamps must fail with a
// descriptive error rather than silently misclassify.
func TestStreamRejectsOutOfOrderSource(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			{TS: 2 * time.Second, Client: netip.MustParseAddr("10.0.0.1")},
			{TS: 1 * time.Second, Client: netip.MustParseAddr("10.0.0.1")},
		},
	}
	src := unsortedSource{ds}
	opts := DefaultOptions()
	opts.MemoryBudget = 1
	_, err := AnalyzeSource(context.Background(), src, opts)
	if err == nil {
		t.Fatal("out-of-order source accepted")
	}
}

// unsortedSource yields the dataset as-is, without the DatasetSource's
// time sort, to exercise the ordering check.
type unsortedSource struct{ ds *trace.Dataset }

func (s unsortedSource) StreamDNS(yield func(*trace.DNSRecord) error) error {
	for i := range s.ds.DNS {
		if err := yield(&s.ds.DNS[i]); err != nil {
			return err
		}
	}
	return nil
}

func (s unsortedSource) StreamConns(yield func(*trace.ConnRecord) error) error {
	for i := range s.ds.Conns {
		if err := yield(&s.ds.Conns[i]); err != nil {
			return err
		}
	}
	return nil
}

// TestStreamCancellation checks a cancelled context aborts ingestion
// with a wrapped context error and no partial result.
func TestStreamCancellation(t *testing.T) {
	ds := determinismTrace(t)
	ds.SortByTime()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.MemoryBudget = 1
	a, err := AnalyzeSource(ctx, trace.NewDatasetSource(ds), opts)
	if err == nil || a != nil {
		t.Fatalf("cancelled run returned (%v, %v), want (nil, error)", a, err)
	}
}
