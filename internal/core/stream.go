package core

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sync"
	"time"

	"dnscontext/internal/parallel"
	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
)

// AnalyzeSource runs the full classification pipeline over a streaming
// Source in bounded memory. With no memory budget (Options.MemoryBudget
// zero) the source is ingested whole and the in-memory pipeline runs —
// an in-memory DatasetSource short-circuits straight to AnalyzeContext
// with zero copying. With a budget, ingestion retains records only
// until the budget trips, then spills them to client-hashed partition
// files and classifies one partition at a time, producing a
// summary-grade Analysis (see Analysis.Summary) whose classification
// results, thresholds, failure statistics, and Digest are bit-identical
// to what the in-memory pipeline computes on the same trace.
//
// The streaming map phase is exposed separately as CollectShard for
// multi-process runs: each process collects a shard over its slice of
// the trace, and MergeShards + Finalize reduce them to the same result.
func AnalyzeSource(ctx context.Context, src trace.Source, opts Options) (*Analysis, error) {
	opts = opts.withDefaults()
	if d, ok := src.(*trace.DatasetSource); ok && opts.MemoryBudget <= 0 {
		return AnalyzeContext(ctx, d.DS, opts)
	}
	applyIngestWorkers(src, opts)
	run := newStreamRun(opts)
	defer run.cleanup()
	if err := run.ingest(ctx, src); err != nil {
		return nil, analysisAborted(err)
	}
	if !run.spilled {
		return analyze(ctx, &trace.Dataset{DNS: run.dns, Conns: run.conns}, opts, run.takePrep())
	}
	sh, err := run.collect(ctx)
	if err != nil {
		return nil, analysisAborted(err)
	}
	sp := opts.Trace.StartPhase("reduce")
	a := sh.Finalize()
	sp.SetItems(len(sh.clients))
	sp.End()
	a.publishMetrics(opts.Metrics)
	run.publishMetrics()
	return a, nil
}

// CollectShard is the map phase of the out-of-core pipeline: it ingests
// src exactly as AnalyzeSource does but stops at the mergeable
// AnalysisShard instead of finalizing, so several processes can each
// cover a client-disjoint slice of a trace and a final process can
// MergeShards + Finalize them. Every option that affects results must
// match across collectors (Merge verifies this); under PairRandom the
// merged result is additionally sensitive to process-local shard ranks,
// so cross-process exactness is only guaranteed under PairMostRecent.
func CollectShard(ctx context.Context, src trace.Source, opts Options) (*AnalysisShard, error) {
	opts = opts.withDefaults()
	inMemory := func(ds *trace.Dataset, prep *sidecars) (*AnalysisShard, error) {
		a, err := analyze(ctx, ds, opts, prep)
		if err != nil {
			return nil, err
		}
		return a.Shard(), nil
	}
	if d, ok := src.(*trace.DatasetSource); ok && opts.MemoryBudget <= 0 {
		return inMemory(d.DS, nil)
	}
	applyIngestWorkers(src, opts)
	run := newStreamRun(opts)
	defer run.cleanup()
	if err := run.ingest(ctx, src); err != nil {
		return nil, analysisAborted(err)
	}
	if !run.spilled {
		return inMemory(&trace.Dataset{DNS: run.dns, Conns: run.conns}, run.takePrep())
	}
	sh, err := run.collect(ctx)
	if err != nil {
		return nil, analysisAborted(err)
	}
	run.publishMetrics()
	return sh, nil
}

// ingestTunable is the optional Source capability of fanning its input
// parsing out over several goroutines (trace.ScannerSource, DirSource).
type ingestTunable interface{ SetIngestWorkers(int) }

// applyIngestWorkers resolves Options.IngestWorkers — positive: that
// many; zero: inherit the Workers pool width; negative: serial — and
// applies it to sources that support parallel parsing.
func applyIngestWorkers(src trace.Source, opts Options) {
	tun, ok := src.(ingestTunable)
	if !ok {
		return
	}
	switch {
	case opts.IngestWorkers > 0:
		tun.SetIngestWorkers(opts.IngestWorkers)
	case opts.IngestWorkers < 0:
		tun.SetIngestWorkers(1)
	default:
		tun.SetIngestWorkers(parallel.Workers(opts.Workers))
	}
}

// streamRun is the state of one out-of-core ingest + classify pass.
type streamRun struct {
	opts  Options
	parts int

	// Resident mode: records retained until the budget trips.
	dns          []trace.DNSRecord
	conns        []trace.ConnRecord
	retained     int64
	peakRetained int64

	// Spill mode.
	spilled        bool
	spillDir       string
	ownsDir        bool
	dnsW, connW    *spillWriter
	spilledRecords int64

	// Whole-trace accumulators, all associative: totals, failure stats,
	// per-resolver (count, min) for threshold derivation, and the
	// client first-appearance orders that reproduce the in-memory shard
	// ranks (conn originators first, then DNS-only clients).
	dnsTotal, connTotal int64
	failures            FailureStats
	rsyms               map[netip.Addr]int32
	resolvers           []resolverStat
	connRank            map[netip.Addr]int32
	connOrder           []netip.Addr
	dnsRank             map[netip.Addr]int32
	dnsOrder            []netip.Addr

	// prepCh, when non-nil, delivers the symbol sidecar a background
	// goroutine builds over the resident DNS records while the
	// connection stream is still scanning — the ingest/analysis overlap.
	// Buffered(1), so the builder never blocks; discarded if the budget
	// trips mid-conn-scan (the spill path derives its own state).
	prepCh chan *sidecars
}

func newStreamRun(opts Options) *streamRun {
	parts := opts.SpillParts
	if parts <= 0 {
		parts = defaultSpillParts
	}
	return &streamRun{
		opts:     opts,
		parts:    parts,
		rsyms:    make(map[netip.Addr]int32),
		connRank: make(map[netip.Addr]int32),
		dnsRank:  make(map[netip.Addr]int32),
	}
}

func (r *streamRun) cleanup() {
	if r.dnsW != nil {
		r.dnsW.close()
	}
	if r.connW != nil {
		r.connW.close()
	}
	if r.spillDir != "" {
		if r.ownsDir {
			os.RemoveAll(r.spillDir)
		} else {
			// A caller-provided spill dir is theirs; only the scratch
			// partitions this run created are removed.
			for p := 0; p < r.parts; p++ {
				os.Remove(spillPath(r.spillDir, "dns", p))
				os.Remove(spillPath(r.spillDir, "conn", p))
			}
		}
	}
}

func spillPath(dir, stream string, p int) string {
	return fmt.Sprintf("%s/%s-%03d.spill", dir, stream, p)
}

// ingest scans the source — DNS first, then connections — verifying
// time order, accumulating the whole-trace statistics, and retaining
// records until the memory budget trips, after which records go to the
// spill partitions instead.
func (r *streamRun) ingest(ctx context.Context, src trace.Source) error {
	tr := r.opts.Trace
	sp := tr.StartPhase("ingest-dns")
	var lastTS time.Duration
	first := true
	err := src.StreamDNS(func(d *trace.DNSRecord) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !first && d.TS < lastTS {
			return fmt.Errorf("source DNS stream out of order: response at %v after %v (sources must yield nondecreasing TS)", d.TS, lastTS)
		}
		first, lastTS = false, d.TS
		r.observeDNS(d)
		if r.spilled {
			r.spilledRecords++
			return r.dnsW.writeDNS(d, r.parts)
		}
		r.dns = append(r.dns, *d)
		return r.account(retainedDNSBytes(d))
	})
	sp.SetItems(int(r.dnsTotal))
	if err != nil {
		return err
	}

	// The DNS stream is complete; when it is still fully resident, build
	// the symbol sidecar now, overlapped with the connection scan, so the
	// in-memory analysis adopts it instead of re-walking the records.
	// The goroutine reads only its private slice header's elements —
	// a later budget trip nils r.dns but never mutates the records — and
	// takePrep discards the result if the run spilled.
	if !r.spilled && len(r.dns) > 0 {
		dns := r.dns
		r.prepCh = make(chan *sidecars, 1)
		psp := tr.StartConcurrent("prep-symbols")
		go func() {
			sc, err := buildSidecars(ctx, r.opts.Workers, dns)
			if err != nil {
				sc = nil // cancelled; analyze will fail on ctx anyway
			}
			psp.SetItems(len(dns))
			psp.End()
			r.prepCh <- sc
		}()
	}

	sp = tr.StartPhase("ingest-conns")
	first, lastTS = true, 0
	err = src.StreamConns(func(c *trace.ConnRecord) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !first && c.TS < lastTS {
			return fmt.Errorf("source connection stream out of order: start at %v after %v (sources must yield nondecreasing TS)", c.TS, lastTS)
		}
		first, lastTS = false, c.TS
		r.observeConn(c)
		if r.spilled {
			r.spilledRecords++
			return r.connW.writeConn(c, r.parts)
		}
		r.conns = append(r.conns, *c)
		return r.account(retainedConnBytes())
	})
	sp.SetItems(int(r.connTotal))
	sp.End()
	if err != nil {
		return err
	}
	if r.spilled {
		if err := r.dnsW.flushAll(); err != nil {
			return err
		}
		return r.connW.flushAll()
	}
	return nil
}

// takePrep collects the overlapped sidecar build, if one was started
// and is still valid (a spill invalidates it: the resident records it
// indexed were released).
func (r *streamRun) takePrep() *sidecars {
	if r.prepCh == nil {
		return nil
	}
	sc := <-r.prepCh
	r.prepCh = nil
	if r.spilled {
		return nil
	}
	return sc
}

// observeDNS folds one DNS record into the whole-trace accumulators.
func (r *streamRun) observeDNS(d *trace.DNSRecord) {
	r.dnsTotal++
	r.failures.Lookups++
	if failureRecord(d) {
		r.failures.ServFails++
	}
	if d.Retries > 0 {
		r.failures.Retried++
		r.failures.TotalRetries += int(d.Retries)
	}
	if d.TC {
		r.failures.TCPFallbacks++
	}
	rs, ok := r.rsyms[d.Resolver]
	if !ok {
		rs = int32(len(r.resolvers))
		r.rsyms[d.Resolver] = rs
		r.resolvers = append(r.resolvers, resolverStat{addr: d.Resolver})
	}
	stat := &r.resolvers[rs]
	dur := d.Duration()
	if stat.lookups == 0 || dur < stat.minDur {
		stat.minDur = dur
	}
	stat.lookups++
	if _, ok := r.dnsRank[d.Client]; !ok {
		r.dnsRank[d.Client] = int32(len(r.dnsOrder))
		r.dnsOrder = append(r.dnsOrder, d.Client)
	}
}

// observeConn folds one connection record into the accumulators.
func (r *streamRun) observeConn(c *trace.ConnRecord) {
	r.connTotal++
	if _, ok := r.connRank[c.Orig]; !ok {
		r.connRank[c.Orig] = int32(len(r.connOrder))
		r.connOrder = append(r.connOrder, c.Orig)
	}
}

// account charges n retained bytes against the budget, tripping the
// spill when it is exceeded.
func (r *streamRun) account(n int64) error {
	r.retained += n
	if r.retained > r.peakRetained {
		r.peakRetained = r.retained
	}
	if r.opts.MemoryBudget > 0 && r.retained > r.opts.MemoryBudget {
		return r.trip()
	}
	return nil
}

// trip switches the run to spill mode: create the partition files,
// flush every retained record into them (preserving arrival order, so
// per-client sequences stay time-ordered), and release the retained
// slices.
func (r *streamRun) trip() error {
	dir := r.opts.SpillDir
	if dir == "" {
		d, err := os.MkdirTemp("", "dnsctx-spill-*")
		if err != nil {
			return fmt.Errorf("creating spill dir: %w", err)
		}
		dir, r.ownsDir = d, true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating spill dir: %w", err)
	}
	r.spillDir = dir
	var err error
	if r.dnsW, err = newSpillWriter(dir, "dns", r.parts); err != nil {
		return err
	}
	if r.connW, err = newSpillWriter(dir, "conn", r.parts); err != nil {
		return err
	}
	for i := range r.dns {
		if err := r.dnsW.writeDNS(&r.dns[i], r.parts); err != nil {
			return err
		}
	}
	for i := range r.conns {
		if err := r.connW.writeConn(&r.conns[i], r.parts); err != nil {
			return err
		}
	}
	r.spilledRecords += int64(len(r.dns)) + int64(len(r.conns))
	r.dns, r.conns = nil, nil
	r.retained = 0
	r.spilled = true
	return nil
}

// clientWork is one client's complete record slice, ready to classify.
type clientWork struct {
	client netip.Addr
	rank   int32
	dns    []trace.DNSRecord
	conns  []trace.ConnRecord
}

// collect classifies the spilled trace into an AnalysisShard. The
// producer loads one partition at a time (each holds every record of
// its clients, since partitioning hashes the client), the consumers
// classify per client, and the fold is commutative, so the shard — and
// everything finalized from it — is identical for every worker count.
func (r *streamRun) collect(ctx context.Context) (*AnalysisShard, error) {
	tr := r.opts.Trace
	sp := tr.StartPhase("classify-spill")
	// Shard ranks replicate buildShards: conn-originating clients in
	// first-connection order, then DNS-only clients in first-lookup
	// order. Ranks seed the per-client RNG streams, keeping PairRandom
	// runs bit-identical to the in-memory pipeline.
	rank := make(map[netip.Addr]int32, len(r.connOrder)+len(r.dnsOrder))
	for i, c := range r.connOrder {
		rank[c] = int32(i)
	}
	next := int32(len(r.connOrder))
	for _, c := range r.dnsOrder {
		if _, ok := rank[c]; !ok {
			rank[c] = next
			next++
		}
	}

	sh := &AnalysisShard{
		opts:      r.opts,
		dnsTotal:  r.dnsTotal,
		connTotal: r.connTotal,
		failures:  r.failures,
		resolvers: append([]resolverStat(nil), r.resolvers...),
		clients:   make([]clientResult, 0, len(rank)),
	}
	var mu sync.Mutex

	workers := parallel.Workers(r.opts.Workers)
	produce := func(emit func(clientWork) error) error {
		for p := 0; p < r.parts; p++ {
			perClient, order, err := r.loadPartition(p)
			if err != nil {
				return err
			}
			for _, client := range order {
				recs := perClient[client]
				if err := emit(clientWork{client: client, rank: rank[client], dns: recs.dns, conns: recs.conns}); err != nil {
					return err
				}
			}
		}
		return nil
	}
	consume := func(w clientWork) error {
		c := r.classifyClient(w)
		mu.Lock()
		sh.clients = append(sh.clients, c)
		mu.Unlock()
		return nil
	}
	// Buffer a handful of clients so the producer reads the next
	// partition while consumers classify the previous one's tail.
	if err := parallel.Stream(ctx, r.opts.Workers, workers*2, produce, consume); err != nil {
		return nil, err
	}
	sp.SetItems(len(sh.clients))
	sp.End()
	return sh, nil
}

// partitionRecs is one client's records within a partition.
type partitionRecs struct {
	dns   []trace.DNSRecord
	conns []trace.ConnRecord
}

// loadPartition reads partition p's two spill files, grouping records
// by client in arrival order. Returned clients preserve first-appearance
// order (DNS stream first), purely for reproducible scheduling; results
// do not depend on it.
func (r *streamRun) loadPartition(p int) (map[netip.Addr]*partitionRecs, []netip.Addr, error) {
	perClient := make(map[netip.Addr]*partitionRecs)
	var order []netip.Addr
	get := func(client netip.Addr) *partitionRecs {
		recs, ok := perClient[client]
		if !ok {
			recs = &partitionRecs{}
			perClient[client] = recs
			order = append(order, client)
		}
		return recs
	}

	dr, df, err := openSpillPartition(spillPath(r.spillDir, "dns", p))
	if err != nil {
		return nil, nil, err
	}
	for {
		d, err := dr.readDNS()
		if err != nil {
			df.Close()
			if err == io.EOF {
				break
			}
			return nil, nil, err
		}
		recs := get(d.Client)
		recs.dns = append(recs.dns, d)
	}

	cr, cf, err := openSpillPartition(spillPath(r.spillDir, "conn", p))
	if err != nil {
		return nil, nil, err
	}
	for {
		c, err := cr.readConn()
		if err != nil {
			cf.Close()
			if err == io.EOF {
				break
			}
			return nil, nil, err
		}
		recs := get(c.Orig)
		recs.conns = append(recs.conns, c)
	}
	return perClient, order, nil
}

// classifyClient pairs and classifies one client's connections against
// its own lookups — the streaming twin of classifyShard, sharing
// pairConn so the scan, tie-breaking, and RNG draw order are the same
// code path. Indices in the result are client-local.
func (r *streamRun) classifyClient(w clientWork) clientResult {
	c := clientResult{client: w.client, nDNS: int32(len(w.dns))}
	if len(w.conns) == 0 {
		return c
	}
	expiry := make([]time.Duration, len(w.dns))
	for i := range w.dns {
		expiry[i] = w.dns[i].ExpiresAt()
	}
	idx := buildLocalIndex(w.dns, expiry)
	rng := stats.NewRNG(r.opts.Seed + uint64(w.rank))
	used := make([]bool, len(w.dns))
	var fresh []int32
	entries := make([]connEntry, len(w.conns))
	for j := range w.conns {
		conn := &w.conns[j]
		e := &entries[j]
		var l, cand int
		l, cand, fresh = pairConn(r.opts.Pairing, idx, conn, rng, fresh)
		if l < 0 {
			e.localDNS, e.res = -1, -1
			continue
		}
		d := &w.dns[l]
		e.localDNS = int32(l)
		e.gap = conn.TS - d.TS
		e.candidates = int32(cand)
		e.firstUse = !used[l]
		used[l] = true
		e.usedExpired = conn.TS >= expiry[l]
		e.lookupDur = d.Duration()
		e.res = r.rsyms[d.Resolver]
	}
	c.entries = entries
	return c
}

// buildLocalIndex is buildShardIndex over a client-local record slice:
// pairEnt indices address the slice itself rather than a dataset.
func buildLocalIndex(dns []trace.DNSRecord, expiry []time.Duration) shardIndex {
	total := 0
	counts := make(map[netip.Addr]int32, len(dns))
	for i := range dns {
		for _, ans := range dns[i].Answers {
			counts[ans.Addr]++
			total++
		}
	}
	backing := make([]pairEnt, total)
	idx := make(shardIndex, len(counts))
	off := int32(0)
	for addr, n := range counts {
		idx[addr] = backing[off : off : off+n]
		off += n
	}
	for i := range dns {
		ent := pairEnt{ts: dns[i].TS, expiry: expiry[i], idx: int32(i)}
		for _, ans := range dns[i].Answers {
			idx[ans.Addr] = append(idx[ans.Addr], ent)
		}
	}
	return idx
}

// publishMetrics records the streaming run's counters.
func (r *streamRun) publishMetrics() {
	reg := r.opts.Metrics
	if reg == nil || !r.spilled {
		return
	}
	reg.Counter("dnsctx_stream_spilled_records_total",
		"Trace records diverted to spill partitions by the memory budget.").
		Add(uint64(r.spilledRecords))
	reg.Counter("dnsctx_stream_spill_partitions_total",
		"Spill partitions (per stream) the out-of-core classify phase consumed.").
		Add(uint64(r.parts))
}
