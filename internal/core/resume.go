package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"sort"
	"sync"
	"time"

	"dnscontext/internal/checkpoint"
	"dnscontext/internal/obs"
)

// Checkpoint/resume for the analysis pipeline. The classify phase is
// the long pole of a large run and its shards are independent, so the
// unit of progress is one completed shard: every Interval completions
// the analyzer snapshots all completed shard states (paired
// connections, used-DNS marks, per-class tallies — everything
// classifyShard writes) to disk via internal/checkpoint. A resumed run
// replays the snapshot into the same slots and classifies only the
// remaining shards; because shards share no state and each carries its
// own RNG stream, the resumed result is bit-identical to an
// uninterrupted run at any worker count.
//
// A snapshot is only valid against the dataset and options that
// produced it, so the payload carries a fingerprint of both; loading a
// snapshot against anything else is an error, never a silent wrong
// answer.

// ckVersion is the on-disk format version of analyzer checkpoints.
const ckVersion = 1

// defaultCkInterval is the number of completed shards between
// snapshots.
const defaultCkInterval = 64

// ErrCheckpointMismatch is matched (via errors.Is) when a checkpoint
// was written for a different dataset or different analysis options.
var ErrCheckpointMismatch = errors.New("checkpoint does not match this run")

// Checkpoint configures snapshotting for AnalyzeContext (see
// Options.Checkpoint).
type Checkpoint struct {
	// Path is the snapshot file. Empty disables checkpointing.
	Path string
	// Interval is the number of completed shards between snapshots.
	// Zero means the default (64).
	Interval int
	// Resume loads Path before classifying, skipping shards the
	// snapshot already covers. A missing file is not an error (the run
	// simply starts fresh); a corrupt file or one from a different
	// dataset/options is.
	Resume bool
	// OnSnapshot, when non-nil, is called after each successful
	// snapshot with the number of shards persisted. Tests use it to
	// kill runs at snapshot boundaries.
	OnSnapshot func(doneShards int)
}

// ckRun is the per-run checkpoint state.
type ckRun struct {
	a   *Analysis
	cfg *Checkpoint

	mu        sync.Mutex
	blobs     map[int][]byte // shardID → encoded shard state
	restored  map[int]bool   // shards loaded from the snapshot
	sinceSave int

	writesC   *obs.Counter
	restoredC *obs.Counter
}

func newCkRun(a *Analysis, cfg *Checkpoint) *ckRun {
	ck := &ckRun{
		a:        a,
		cfg:      cfg,
		blobs:    make(map[int][]byte),
		restored: make(map[int]bool),
	}
	if reg := a.Opts.Metrics; reg != nil {
		ck.writesC = reg.Counter("dnsctx_checkpoint_writes_total",
			"Analyzer snapshots persisted to disk.")
		ck.restoredC = reg.Counter("dnsctx_checkpoint_restored_shards_total",
			"Analyzer shards restored from a checkpoint instead of recomputed.")
	}
	return ck
}

func (ck *ckRun) interval() int {
	if ck.cfg.Interval > 0 {
		return ck.cfg.Interval
	}
	return defaultCkInterval
}

// isRestored reports whether shard s was loaded from the snapshot and
// must not be reclassified.
func (ck *ckRun) isRestored(s int) bool {
	return ck.restored[s] // only written before the parallel phase
}

// complete records shard s as classified and persists a snapshot every
// Interval completions. Called concurrently from the worker pool.
func (ck *ckRun) complete(s int) error {
	blob := ck.a.encodeShard(s)
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.blobs[s] = blob
	ck.sinceSave++
	if ck.sinceSave < ck.interval() {
		return nil
	}
	if err := ck.save(); err != nil {
		return err
	}
	ck.sinceSave = 0
	ck.writesC.Inc()
	if ck.cfg.OnSnapshot != nil {
		ck.cfg.OnSnapshot(len(ck.blobs))
	}
	return nil
}

// save persists every completed shard. Caller holds ck.mu.
func (ck *ckRun) save() error {
	var buf bytes.Buffer
	putU64 := func(v uint64) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	putU32 := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	putU64(ck.a.fingerprint())
	putU64(ck.a.optsKey())
	putU32(uint32(len(ck.a.shards)))
	putU32(uint32(len(ck.blobs)))
	ids := make([]int, 0, len(ck.blobs))
	for id := range ck.blobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		putU32(uint32(id))
		putU32(uint32(len(ck.blobs[id])))
		buf.Write(ck.blobs[id])
	}
	return checkpoint.Save(ck.cfg.Path, ckVersion, buf.Bytes())
}

// restore loads the snapshot at Path (if any) and replays its shards
// into the analysis, filling counts for each. Returns the restored
// shard IDs' count.
func (ck *ckRun) restore(counts [][numClasses]int) (int, error) {
	payload, err := checkpoint.Load(ck.cfg.Path, ckVersion)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	r := bytes.NewReader(payload)
	var fp, key uint64
	var numShards, nDone uint32
	if err := readLE(r, &fp, &key, &numShards, &nDone); err != nil {
		return 0, fmt.Errorf("checkpoint: truncated snapshot header: %w", err)
	}
	if fp != ck.a.fingerprint() {
		return 0, fmt.Errorf("%w: dataset fingerprint %016x, snapshot has %016x",
			ErrCheckpointMismatch, ck.a.fingerprint(), fp)
	}
	if key != ck.a.optsKey() {
		return 0, fmt.Errorf("%w: analysis options changed since the snapshot",
			ErrCheckpointMismatch)
	}
	if int(numShards) != len(ck.a.shards) {
		return 0, fmt.Errorf("%w: %d shards, snapshot has %d",
			ErrCheckpointMismatch, len(ck.a.shards), numShards)
	}
	for i := 0; i < int(nDone); i++ {
		var id, n uint32
		if err := readLE(r, &id, &n); err != nil {
			return 0, fmt.Errorf("checkpoint: truncated shard entry: %w", err)
		}
		if int(id) >= len(ck.a.shards) {
			return 0, fmt.Errorf("checkpoint: shard id %d out of range", id)
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(r, blob); err != nil {
			return 0, fmt.Errorf("checkpoint: truncated shard blob: %w", err)
		}
		if err := ck.a.decodeShard(int(id), blob, &counts[id]); err != nil {
			return 0, err
		}
		ck.blobs[int(id)] = blob
		ck.restored[int(id)] = true
	}
	ck.restoredC.Add(uint64(nDone))
	return int(nDone), nil
}

func readLE(r *bytes.Reader, vs ...any) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// encodeShard serializes everything classifyShard wrote for shard s:
// the paired-connection entries (in sh.conns order, so the connection
// index is implicit) and the shard's used-DNS marks.
func (a *Analysis) encodeShard(s int) []byte {
	sh := &a.shards[s]
	var buf bytes.Buffer
	put := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	put(uint32(len(sh.conns)))
	for _, ci := range sh.conns {
		pc := &a.Paired[ci]
		var flags uint8
		if pc.FirstUse {
			flags |= 1
		}
		if pc.UsedExpired {
			flags |= 2
		}
		put(int64(pc.DNS))
		put(int64(pc.Gap))
		put(uint32(pc.Candidates))
		put(uint8(pc.Class))
		put(flags)
	}
	var used []int32
	for _, di := range sh.dns {
		if a.DNSUsed[di] {
			used = append(used, di)
		}
	}
	put(uint32(len(used)))
	for _, di := range used {
		put(uint32(di))
	}
	return buf.Bytes()
}

// decodeShard replays an encoded shard into the analysis slots shard s
// owns and tallies its per-class counts.
func (a *Analysis) decodeShard(s int, blob []byte, counts *[numClasses]int) error {
	sh := &a.shards[s]
	r := bytes.NewReader(blob)
	var n uint32
	if err := readLE(r, &n); err != nil {
		return fmt.Errorf("checkpoint: shard %d: %w", s, err)
	}
	if int(n) != len(sh.conns) {
		return fmt.Errorf("%w: shard %d has %d connections, snapshot has %d",
			ErrCheckpointMismatch, s, len(sh.conns), n)
	}
	for _, ci := range sh.conns {
		var dns, gap int64
		var cand uint32
		var class, flags uint8
		if err := readLE(r, &dns, &gap, &cand, &class, &flags); err != nil {
			return fmt.Errorf("checkpoint: shard %d: truncated entry: %w", s, err)
		}
		if Class(class) >= numClasses {
			return fmt.Errorf("checkpoint: shard %d: bad class %d", s, class)
		}
		pc := &a.Paired[ci]
		pc.Conn = int(ci)
		pc.DNS = int(dns)
		pc.Gap = time.Duration(gap)
		pc.Candidates = int(cand)
		pc.Class = Class(class)
		pc.FirstUse = flags&1 != 0
		pc.UsedExpired = flags&2 != 0
		counts[pc.Class]++
	}
	var nUsed uint32
	if err := readLE(r, &nUsed); err != nil {
		return fmt.Errorf("checkpoint: shard %d: %w", s, err)
	}
	for i := 0; i < int(nUsed); i++ {
		var di uint32
		if err := readLE(r, &di); err != nil {
			return fmt.Errorf("checkpoint: shard %d: truncated used-DNS list: %w", s, err)
		}
		if int(di) >= len(a.DNSUsed) {
			return fmt.Errorf("checkpoint: shard %d: used-DNS index %d out of range", s, di)
		}
		a.DNSUsed[di] = true
	}
	return nil
}

// fingerprint hashes the (time-sorted) dataset so a snapshot can refuse
// to resume against different input.
func (a *Analysis) fingerprint() uint64 {
	if a.fp != 0 {
		return a.fp
	}
	h := fnv.New64a()
	put := func(v any) { _ = binary.Write(h, binary.LittleEndian, v) }
	put(uint64(len(a.DS.DNS)))
	for i := range a.DS.DNS {
		d := &a.DS.DNS[i]
		put(int64(d.QueryTS))
		put(int64(d.TS))
		h.Write([]byte(d.Client.String()))
		h.Write([]byte(d.Resolver.String()))
		put(d.ID)
		h.Write([]byte(d.Query))
		put(d.QType)
		put(d.RCode)
		put(uint32(len(d.Answers)))
		for _, an := range d.Answers {
			h.Write([]byte(an.Addr.String()))
			put(int64(an.TTL))
		}
		put(d.Retries)
		put(d.TC)
	}
	put(uint64(len(a.DS.Conns)))
	for i := range a.DS.Conns {
		c := &a.DS.Conns[i]
		put(int64(c.TS))
		put(int64(c.Duration))
		put(uint8(c.Proto))
		h.Write([]byte(c.Orig.String()))
		put(c.OrigPort)
		h.Write([]byte(c.Resp.String()))
		put(c.RespPort)
		put(c.OrigBytes)
		put(c.RespBytes)
	}
	a.fp = h.Sum64()
	return a.fp
}

// optsKey hashes every option that influences analysis results.
// Workers is deliberately excluded (results are worker-count
// invariant), as are the observation hooks, the checkpoint config, and
// the streaming memory budget (spilling never changes the answer, only
// where intermediate state lives).
func (a *Analysis) optsKey() uint64 { return optionsKey(&a.Opts) }

// optionsKey is the standalone form of optsKey, shared with the
// mergeable-shard layer: an AnalysisShard refuses to merge with one
// produced under different result-affecting options, using exactly the
// fingerprint checkpoints already pin.
func optionsKey(o *Options) uint64 {
	h := fnv.New64a()
	put := func(v any) { _ = binary.Write(h, binary.LittleEndian, v) }
	put(int64(o.BlockThreshold))
	put(int64(o.KneeThreshold))
	put(int64(o.SCRMinSamples))
	put(int64(o.DefaultSCThreshold))
	put(uint8(o.Pairing))
	put(o.Seed)
	put(int64(o.InsignificantAbs))
	put(o.InsignificantRel)
	return h.Sum64()
}
