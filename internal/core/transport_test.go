package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"dnscontext/internal/households"
	"dnscontext/internal/trace"
)

// goldenConfig is the exact generation the golden hashes were captured
// over (see golden_test.go).
func goldenConfig() households.Config {
	cfg := households.SmallConfig(7)
	cfg.Houses = 8
	cfg.Duration = time.Hour
	cfg.Warmup = 30 * time.Minute
	return cfg
}

// TestExplicitUDPTransportMatchesGolden is the transport-refactor parity
// gate: spelling the default transport out loud (Transport.Kind="udp")
// must thread through generator validation and profile overlay without
// touching a single RNG draw — the golden hashes of the zero-config run
// must reproduce bit for bit.
func TestExplicitUDPTransportMatchesGolden(t *testing.T) {
	cfg := goldenConfig()
	cfg.Transport.Kind = "udp"
	ds, eco, err := households.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pairing, want := range goldenHashes {
		for _, workers := range []int{1, 8} {
			opts := DefaultOptions()
			opts.Pairing = pairing
			opts.SCRMinSamples = 50
			opts.Workers = workers
			a := analyzeCopy(ds, opts)
			report, paired, checkpoint := hashAnalysis(t, a, eco.Profiles)
			if report != want.report || paired != want.paired || checkpoint != want.checkpoint {
				t.Errorf("pairing=%v workers=%d: explicit udp transport broke golden parity: %#016x/%#016x/%#016x",
					pairing, workers, report, paired, checkpoint)
			}
		}
	}
}

// TestTransportMatrixDigestParity is the transport-matrix determinism
// gate: for every transport, with nonzero faults in play, analysis of
// the generated trace must be bit-identical at Workers 1, 2, and 8.
// (Generation itself is single-threaded and seeded; what this pins is
// that nothing about stream-transport traces breaks the sharded
// pipeline's worker-count invariance.)
func TestTransportMatrixDigestParity(t *testing.T) {
	cells := []struct {
		kind   string
		resume bool
	}{
		{"udp", false},
		{"tcp", false},
		{"dot", true},
		{"doh", false},
	}
	for _, cell := range cells {
		cfg := goldenConfig()
		cfg.Faults.Loss = 0.01
		cfg.Transport.Kind = cell.kind
		cfg.Transport.SessionResumption = cell.resume
		ds, eco, err := households.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var base [3]uint64
		for i, workers := range []int{1, 2, 8} {
			opts := DefaultOptions()
			opts.SCRMinSamples = 50
			opts.Workers = workers
			a := analyzeCopy(ds, opts)
			report, paired, checkpoint := hashAnalysis(t, a, eco.Profiles)
			if i == 0 {
				base = [3]uint64{report, paired, checkpoint}
				continue
			}
			if base != [3]uint64{report, paired, checkpoint} {
				t.Errorf("transport=%s resume=%v workers=%d: digests diverged from workers=1",
					cell.kind, cell.resume, workers)
			}
		}
	}
}

// TestTransportWhatIfDeltas pins the what-if acceptance shape: the Do53
// baseline row carries zero delta, every stream row carries a positive
// handshake-attributable delta, and enabling session resumption strictly
// shrinks the DoT and DoH deltas.
func TestTransportWhatIfDeltas(t *testing.T) {
	cfg := goldenConfig()
	ds, eco, err := households.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	a := Analyze(ds, opts)

	rows := a.TransportWhatIf(eco.Profiles, DefaultTransportScenarios())
	if rows == nil {
		t.Fatal("TransportWhatIf returned nil on a full-grade analysis")
	}
	byName := make(map[string]TransportRow, len(rows))
	for _, r := range rows {
		byName[r.Scenario.String()] = r
	}
	if d := byName["Do53"].MeanLookupDelta; d != 0 {
		t.Errorf("Do53 baseline delta %v, want 0", d)
	}
	for _, name := range []string{"DoTCP", "DoT", "DoT+resume", "DoH", "DoH+resume"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing scenario %q", name)
		}
		if r.MeanLookupDelta <= 0 {
			t.Errorf("%s: mean lookup delta %v, want > 0", name, r.MeanLookupDelta)
		}
		if r.HandshakeTotal <= 0 {
			t.Errorf("%s: handshake total %v, want > 0", name, r.HandshakeTotal)
		}
	}
	if byName["DoT+resume"].MeanLookupDelta >= byName["DoT"].MeanLookupDelta {
		t.Errorf("resumption did not shrink the DoT delta: %v vs %v",
			byName["DoT+resume"].MeanLookupDelta, byName["DoT"].MeanLookupDelta)
	}
	if byName["DoH+resume"].MeanLookupDelta >= byName["DoH"].MeanLookupDelta {
		t.Errorf("resumption did not shrink the DoH delta: %v vs %v",
			byName["DoH+resume"].MeanLookupDelta, byName["DoH"].MeanLookupDelta)
	}
	// DoH pays everything DoT pays plus per-query HTTP overhead.
	if byName["DoH"].MeanLookupDelta <= byName["DoT"].MeanLookupDelta {
		t.Errorf("DoH delta %v not above DoT delta %v",
			byName["DoH"].MeanLookupDelta, byName["DoT"].MeanLookupDelta)
	}

	var sb strings.Builder
	if err := WriteTransportTable(&sb, rows, a.Opts.BlockThreshold); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Do53", "DoTCP", "DoT+resume", "DoH+resume"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered table missing %q:\n%s", want, sb.String())
		}
	}
}

// TestTransportWhatIfNeedsFullGrade: a summary-grade analysis (reduced
// under a memory budget) has no raw records to replay, so the what-if
// must decline rather than fabricate deltas.
func TestTransportWhatIfNeedsFullGrade(t *testing.T) {
	cfg := goldenConfig()
	ds, eco, err := households.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := trace.NewDatasetSource(ds)
	src.DS.SortByTime()
	a, err := AnalyzeSource(context.Background(), src, forceSpillOpts(DefaultOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Summary() {
		t.Fatal("forced-spill run returned a full analysis")
	}
	if rows := a.TransportWhatIf(eco.Profiles, DefaultTransportScenarios()); rows != nil {
		t.Fatal("summary-grade analysis returned what-if rows")
	}
}
