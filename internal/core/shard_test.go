package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"dnscontext/internal/trace"
)

// collectShards splits the determinism trace into n client-disjoint
// slices and collects one shard per slice.
func collectShards(t *testing.T, n int, opts Options) []*AnalysisShard {
	t.Helper()
	ds := determinismTrace(t)
	shards := make([]*AnalysisShard, n)
	for i, part := range splitByClient(ds, n) {
		part.SortByTime()
		sh, err := CollectShard(context.Background(), trace.NewDatasetSource(part), opts)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = sh
	}
	return shards
}

// TestMergeAssociativeCommutative is the satellite property test: any
// grouping and any ordering of the same shards must merge to the same
// state — checked through the canonical encoding, which is independent
// of merge order by construction, and through the finalized digest.
func TestMergeAssociativeCommutative(t *testing.T) {
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	shards := collectShards(t, 5, opts)

	left, err := MergeShards(shards...)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := left.encode()
	wantDigest := left.Finalize().Digest()

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(shards))
		// Fold in a random tree shape: repeatedly merge two random
		// elements of the worklist until one remains.
		work := make([]*AnalysisShard, len(shards))
		for i, p := range perm {
			work[i] = shards[p]
		}
		for len(work) > 1 {
			i := rng.Intn(len(work) - 1)
			m, err := work[i].Merge(work[i+1])
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			work = append(work[:i], append([]*AnalysisShard{m}, work[i+2:]...)...)
		}
		if got := work[0].encode(); !bytes.Equal(got, wantBytes) {
			t.Fatalf("trial %d: merged shard encoding differs from reference grouping", trial)
		}
		if got := work[0].Finalize().Digest(); got != wantDigest {
			t.Fatalf("trial %d: merged digest %#016x, want %#016x", trial, got, wantDigest)
		}
	}
}

// TestMergeLeavesInputsUnchanged checks Merge is a pure fold: the
// operands' encodings are byte-identical before and after.
func TestMergeLeavesInputsUnchanged(t *testing.T) {
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	shards := collectShards(t, 2, opts)
	before0, before1 := shards[0].encode(), shards[1].encode()
	if _, err := shards[0].Merge(shards[1]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[0].encode(), before0) || !bytes.Equal(shards[1].encode(), before1) {
		t.Error("Merge mutated an input shard")
	}
}

// TestMergeRejectsMismatchedOptions checks shards produced under
// different result-affecting options refuse to merge.
func TestMergeRejectsMismatchedOptions(t *testing.T) {
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	a := collectShards(t, 2, opts)
	opts.Seed = 99
	b := collectShards(t, 2, opts)
	if _, err := a[0].Merge(b[1]); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("mismatched options merged: err=%v", err)
	}
}

// TestMergeRejectsOverlappingClients checks the client-disjointness
// requirement: merging a shard with itself must fail.
func TestMergeRejectsOverlappingClients(t *testing.T) {
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	shards := collectShards(t, 2, opts)
	if _, err := shards[0].Merge(shards[0]); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("overlapping clients merged: err=%v", err)
	}
}

// TestShardFileRoundTrip checks WriteShardFile/ReadShardFile preserve
// the shard exactly (canonical bytes and finalized digest) and that the
// loader rejects corrupt payloads.
func TestShardFileRoundTrip(t *testing.T) {
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	shards := collectShards(t, 2, opts)
	merged, err := MergeShards(shards...)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range append(shards, merged) {
		path := filepath.Join(t.TempDir(), "shard.bin")
		if err := WriteShardFile(path, sh); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		got, err := ReadShardFile(path)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if !bytes.Equal(got.encode(), sh.encode()) {
			t.Errorf("shard %d: round-trip changed the canonical encoding", i)
		}
		if got.Finalize().Digest() != sh.Finalize().Digest() {
			t.Errorf("shard %d: round-trip changed the finalized digest", i)
		}
	}
}

// TestShardDecodeRejectsTruncation checks every truncation point of a
// serialized shard fails decoding instead of yielding a partial shard.
func TestShardDecodeRejectsTruncation(t *testing.T) {
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	sh := collectShards(t, 1, opts)[0]
	payload := sh.encode()
	if _, err := decodeShardPayload(payload); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload); cut += 1 + len(payload)/97 {
		if _, err := decodeShardPayload(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", cut, len(payload))
		}
	}
	if _, err := decodeShardPayload(append(payload, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestShardEncodingCanonical checks shards merged in different orders
// serialize to identical bytes — the property that makes shard files
// content-addressable regardless of collector scheduling.
func TestShardEncodingCanonical(t *testing.T) {
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	shards := collectShards(t, 3, opts)
	ab, err := shards[0].Merge(shards[1])
	if err != nil {
		t.Fatal(err)
	}
	abc, err := ab.Merge(shards[2])
	if err != nil {
		t.Fatal(err)
	}
	cb, err := shards[2].Merge(shards[1])
	if err != nil {
		t.Fatal(err)
	}
	cba, err := cb.Merge(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(abc.encode(), cba.encode()) {
		t.Error("merge order changed the canonical encoding")
	}
}
