package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"time"

	"dnscontext/internal/trace"
)

// Spill layer for the out-of-core analyzer. When AnalyzeSource's memory
// budget trips, records stop accumulating in RAM and are hashed by
// client into partition files — hash(client) % SpillParts, one file per
// (stream, partition) — in arrival (= time) order. Because pairing is
// strictly per-client, each partition is a self-contained slice of the
// trace: the classify phase loads one partition at a time, so peak
// memory is one partition plus the accumulating shard, not the trace.
//
// The format is a transient process-private scratch encoding — framed
// little-endian records, no header or checksum — created and deleted
// within one run; durability and versioning live in the checkpoint
// envelope that shard files use, not here.

// defaultSpillParts is the partition count when Options.SpillParts is 0.
const defaultSpillParts = 32

// spillWriter owns one stream's partition files.
type spillWriter struct {
	files []*os.File
	bufs  []*bufio.Writer
	// scratch is the per-record encode buffer, reused across writes.
	scratch []byte
}

func newSpillWriter(dir, stream string, parts int) (*spillWriter, error) {
	w := &spillWriter{
		files: make([]*os.File, parts),
		bufs:  make([]*bufio.Writer, parts),
	}
	for p := 0; p < parts; p++ {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s-%03d.spill", stream, p)))
		if err != nil {
			w.close()
			return nil, fmt.Errorf("dnscontext: creating spill partition: %w", err)
		}
		w.files[p] = f
		w.bufs[p] = bufio.NewWriterSize(f, 1<<16)
	}
	return w, nil
}

// flushAll flushes every partition's buffer so readers see complete
// frames.
func (w *spillWriter) flushAll() error {
	for _, b := range w.bufs {
		if err := b.Flush(); err != nil {
			return fmt.Errorf("dnscontext: flushing spill partition: %w", err)
		}
	}
	return nil
}

func (w *spillWriter) close() {
	for _, f := range w.files {
		if f != nil {
			f.Close()
		}
	}
}

// partitionOf assigns a client to a spill partition: FNV-64a over the
// canonical 16-byte address form, mod the partition count. Stable
// across processes, so distributed collectors partition identically.
func partitionOf(client netip.Addr, parts int) int {
	b := client.As16()
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return int(h % uint64(parts))
}

// Record frames. Addresses are u8 length + raw bytes; strings and
// answer lists carry u16 counts (the TSV formats they arrive from can't
// exceed that).

func appendAddr(b []byte, a netip.Addr) []byte {
	s := a.AsSlice()
	b = append(b, uint8(len(s)))
	return append(b, s...)
}

func appendU16(b []byte, v uint16) []byte {
	return binary.LittleEndian.AppendUint16(b, v)
}

func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func appendDNSFrame(b []byte, d *trace.DNSRecord) []byte {
	b = appendI64(b, int64(d.QueryTS))
	b = appendI64(b, int64(d.TS))
	b = appendAddr(b, d.Client)
	b = appendAddr(b, d.Resolver)
	b = appendU16(b, d.ID)
	q := d.Query
	if len(q) > 0xffff {
		// Cannot happen for records parsed from the TSV logs; truncate
		// rather than corrupt the frame if a synthetic record tries.
		q = q[:0xffff]
	}
	b = appendU16(b, uint16(len(q)))
	b = append(b, q...)
	b = appendU16(b, d.QType)
	b = append(b, d.RCode)
	b = appendU16(b, uint16(len(d.Answers)))
	for _, an := range d.Answers {
		b = appendAddr(b, an.Addr)
		b = appendI64(b, int64(an.TTL))
	}
	b = append(b, d.Retries)
	if d.TC {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

func appendConnFrame(b []byte, c *trace.ConnRecord) []byte {
	b = appendI64(b, int64(c.TS))
	b = appendI64(b, int64(c.Duration))
	b = append(b, uint8(c.Proto))
	b = appendAddr(b, c.Orig)
	b = appendU16(b, c.OrigPort)
	b = appendAddr(b, c.Resp)
	b = appendU16(b, c.RespPort)
	b = appendI64(b, c.OrigBytes)
	b = appendI64(b, c.RespBytes)
	return b
}

func (w *spillWriter) writeDNS(d *trace.DNSRecord, parts int) error {
	w.scratch = appendDNSFrame(w.scratch[:0], d)
	_, err := w.bufs[partitionOf(d.Client, parts)].Write(w.scratch)
	return err
}

func (w *spillWriter) writeConn(c *trace.ConnRecord, parts int) error {
	w.scratch = appendConnFrame(w.scratch[:0], c)
	_, err := w.bufs[partitionOf(c.Orig, parts)].Write(w.scratch)
	return err
}

// spillReader decodes one partition file's frames.
type spillReader struct {
	r    *bufio.Reader
	path string
}

func openSpillPartition(path string) (*spillReader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return &spillReader{r: bufio.NewReaderSize(f, 1<<16), path: path}, f, nil
}

func (r *spillReader) corrupt(err error) error {
	return fmt.Errorf("dnscontext: spill partition %s: unexpected frame: %w", r.path, err)
}

func (r *spillReader) readAddr() (netip.Addr, error) {
	n, err := r.r.ReadByte()
	if err != nil {
		return netip.Addr{}, err
	}
	var buf [16]byte
	if int(n) > len(buf) {
		return netip.Addr{}, fmt.Errorf("address length %d", n)
	}
	if _, err := io.ReadFull(r.r, buf[:n]); err != nil {
		return netip.Addr{}, err
	}
	a, ok := netip.AddrFromSlice(buf[:n])
	if !ok {
		return netip.Addr{}, fmt.Errorf("address length %d", n)
	}
	return a, nil
}

func (r *spillReader) readU16() (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func (r *spillReader) readI64() (int64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b[:])), nil
}

// readDNS decodes the next DNS frame; io.EOF (clean, at a frame
// boundary) signals the end of the partition.
func (r *spillReader) readDNS() (trace.DNSRecord, error) {
	var d trace.DNSRecord
	qts, err := r.readI64()
	if err != nil {
		if err == io.EOF {
			return d, io.EOF
		}
		return d, r.corrupt(err)
	}
	d.QueryTS = time.Duration(qts)
	ts, err := r.readI64()
	if err != nil {
		return d, r.corrupt(err)
	}
	d.TS = time.Duration(ts)
	if d.Client, err = r.readAddr(); err != nil {
		return d, r.corrupt(err)
	}
	if d.Resolver, err = r.readAddr(); err != nil {
		return d, r.corrupt(err)
	}
	if d.ID, err = r.readU16(); err != nil {
		return d, r.corrupt(err)
	}
	qlen, err := r.readU16()
	if err != nil {
		return d, r.corrupt(err)
	}
	q := make([]byte, qlen)
	if _, err := io.ReadFull(r.r, q); err != nil {
		return d, r.corrupt(err)
	}
	d.Query = string(q)
	if d.QType, err = r.readU16(); err != nil {
		return d, r.corrupt(err)
	}
	if d.RCode, err = r.r.ReadByte(); err != nil {
		return d, r.corrupt(err)
	}
	nAns, err := r.readU16()
	if err != nil {
		return d, r.corrupt(err)
	}
	if nAns > 0 {
		d.Answers = make([]trace.Answer, nAns)
		for i := range d.Answers {
			if d.Answers[i].Addr, err = r.readAddr(); err != nil {
				return d, r.corrupt(err)
			}
			ttl, err := r.readI64()
			if err != nil {
				return d, r.corrupt(err)
			}
			d.Answers[i].TTL = time.Duration(ttl)
		}
	}
	if d.Retries, err = r.r.ReadByte(); err != nil {
		return d, r.corrupt(err)
	}
	tc, err := r.r.ReadByte()
	if err != nil {
		return d, r.corrupt(err)
	}
	d.TC = tc != 0
	return d, nil
}

// readConn decodes the next connection frame; io.EOF signals the end.
func (r *spillReader) readConn() (trace.ConnRecord, error) {
	var c trace.ConnRecord
	ts, err := r.readI64()
	if err != nil {
		if err == io.EOF {
			return c, io.EOF
		}
		return c, r.corrupt(err)
	}
	c.TS = time.Duration(ts)
	dur, err := r.readI64()
	if err != nil {
		return c, r.corrupt(err)
	}
	c.Duration = time.Duration(dur)
	proto, err := r.r.ReadByte()
	if err != nil {
		return c, r.corrupt(err)
	}
	c.Proto = trace.Proto(proto)
	if c.Orig, err = r.readAddr(); err != nil {
		return c, r.corrupt(err)
	}
	if c.OrigPort, err = r.readU16(); err != nil {
		return c, r.corrupt(err)
	}
	if c.Resp, err = r.readAddr(); err != nil {
		return c, r.corrupt(err)
	}
	if c.RespPort, err = r.readU16(); err != nil {
		return c, r.corrupt(err)
	}
	if c.OrigBytes, err = r.readI64(); err != nil {
		return c, r.corrupt(err)
	}
	if c.RespBytes, err = r.readI64(); err != nil {
		return c, r.corrupt(err)
	}
	return c, nil
}

// retainedDNSBytes estimates the resident footprint of one DNS record
// for budget accounting: struct, query string, and answer backing.
func retainedDNSBytes(d *trace.DNSRecord) int64 {
	return 120 + int64(len(d.Query)) + 24*int64(len(d.Answers))
}

// retainedConnBytes is the resident footprint of one connection record.
func retainedConnBytes() int64 { return 80 }
