package core

import (
	"time"

	"dnscontext/internal/stats"
)

// Slack quantifies how much longer DNS lookups could have taken without
// delaying the connections that use them. The paper's §2 frames this work
// as the in-depth study behind the authors' earlier "slack" results
// ([1], [24]): if a lookup's first use comes seconds after the response,
// a slower (e.g. challenge-response-protected or encrypted) resolution
// would have been invisible to the user.
type Slack struct {
	// FirstUseGap is the distribution (seconds) of the gap between each
	// USED lookup's completion and its first use.
	FirstUseGap *stats.ECDF
	// Blocked* report how many lookups had essentially no slack: their
	// first use followed within the blocking threshold.
	BlockedLookups int
	TotalLookups   int
	// SlackOver reports the fraction of used lookups whose first use left
	// at least the given slack.
	SlackOver10ms float64
	SlackOver1s   float64
	SlackOver10s  float64
}

// Slack computes the per-lookup slack analysis over used lookups.
func (a *Analysis) Slack() Slack {
	out := Slack{FirstUseGap: stats.NewECDF(0)}
	for i := range a.Paired {
		pc := &a.Paired[i]
		if pc.DNS < 0 || !pc.FirstUse {
			continue
		}
		out.TotalLookups++
		out.FirstUseGap.Add(pc.Gap.Seconds())
		if pc.Gap <= a.Opts.BlockThreshold {
			out.BlockedLookups++
		}
	}
	if out.FirstUseGap.N() > 0 {
		out.SlackOver10ms = out.FirstUseGap.FractionAbove(0.010)
		out.SlackOver1s = out.FirstUseGap.FractionAbove(1)
		out.SlackOver10s = out.FirstUseGap.FractionAbove(10)
	}
	return out
}

// TolerableExtraDelay answers the slack question directly: if every
// lookup had taken extra longer, what fraction of the connections that
// used those lookups would have been pushed past the blocking threshold?
// (Connections already blocked stay blocked; a cache-served connection
// blocks only if the extra delay exceeds its observed slack.)
func (a *Analysis) TolerableExtraDelay(extra time.Duration) (newlyBlockedFraction float64) {
	var newly, considered int
	for i := range a.Paired {
		pc := &a.Paired[i]
		if pc.DNS < 0 {
			continue
		}
		considered++
		if pc.Gap > a.Opts.BlockThreshold && pc.Gap <= a.Opts.BlockThreshold+extra {
			newly++
		}
	}
	if considered == 0 {
		return 0
	}
	return float64(newly) / float64(considered)
}
