package core

import (
	"net/netip"
	"testing"
	"time"

	"dnscontext/internal/trace"
)

var (
	houseA = netip.MustParseAddr("10.1.0.1")
	houseB = netip.MustParseAddr("10.1.0.2")
	webIP  = netip.MustParseAddr("203.0.0.10")
	webIP2 = netip.MustParseAddr("203.0.0.11")
	cdnIP  = netip.MustParseAddr("198.18.0.5")
	peerIP = netip.MustParseAddr("45.1.2.3")
	resLoc = netip.MustParseAddr("10.0.0.2")
	resGgl = netip.MustParseAddr("8.8.8.8")
)

// mkDNS builds a DNS record completing at ts with the given lookup
// duration and a single answer.
func mkDNS(client netip.Addr, res netip.Addr, ts, dur time.Duration, query string, addr netip.Addr, ttl time.Duration) trace.DNSRecord {
	return trace.DNSRecord{
		QueryTS:  ts - dur,
		TS:       ts,
		Client:   client,
		Resolver: res,
		Query:    query,
		QType:    1,
		Answers:  []trace.Answer{{Addr: addr, TTL: ttl}},
	}
}

// mkConn builds a connection starting at ts.
func mkConn(orig netip.Addr, resp netip.Addr, ts, dur time.Duration, rport uint16) trace.ConnRecord {
	return trace.ConnRecord{
		TS: ts, Duration: dur, Proto: trace.TCP,
		Orig: orig, OrigPort: 40000, Resp: resp, RespPort: rport,
		OrigBytes: 500, RespBytes: 20000,
	}
}

// testOptions lowers the per-resolver sample threshold so tiny hand-built
// datasets still exercise the threshold machinery.
func testOptions() Options {
	o := DefaultOptions()
	o.SCRMinSamples = 10000000 // force the default threshold in unit tests
	return o
}

func classOf(t *testing.T, a *Analysis, connIdx int) Class {
	t.Helper()
	return a.Paired[connIdx].Class
}

func TestClassifyNoDNS(t *testing.T) {
	ds := &trace.Dataset{
		Conns: []trace.ConnRecord{mkConn(houseA, peerIP, time.Second, time.Second, 50000)},
	}
	a := Analyze(ds, testOptions())
	if got := classOf(t, a, 0); got != ClassN {
		t.Fatalf("class = %v, want N", got)
	}
	if a.Paired[0].DNS != -1 {
		t.Fatal("unpaired conn has a DNS index")
	}
}

func TestClassifyBlockedSCvsR(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			// Fast lookup (3 ms <= 5 ms default threshold) -> SC.
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "a.com", webIP, 300*time.Second),
			// Slow lookup (80 ms) -> R.
			mkDNS(houseA, resLoc, 20*time.Second, 80*time.Millisecond, "b.com", webIP2, 300*time.Second),
		},
		Conns: []trace.ConnRecord{
			mkConn(houseA, webIP, 10*time.Second+5*time.Millisecond, time.Second, 443),
			mkConn(houseA, webIP2, 20*time.Second+5*time.Millisecond, time.Second, 443),
		},
	}
	a := Analyze(ds, testOptions())
	if got := classOf(t, a, 0); got != ClassSC {
		t.Fatalf("fast blocked conn = %v, want SC", got)
	}
	if got := classOf(t, a, 1); got != ClassR {
		t.Fatalf("slow blocked conn = %v, want R", got)
	}
}

func TestClassifyLCvsP(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "a.com", webIP, time.Hour),
		},
		Conns: []trace.ConnRecord{
			// First use, 30 s later: prefetched.
			mkConn(houseA, webIP, 40*time.Second, time.Second, 443),
			// Second use, later still: local cache.
			mkConn(houseA, webIP, 90*time.Second, time.Second, 443),
		},
	}
	a := Analyze(ds, testOptions())
	if got := classOf(t, a, 0); got != ClassP {
		t.Fatalf("first late use = %v, want P", got)
	}
	if got := classOf(t, a, 1); got != ClassLC {
		t.Fatalf("second late use = %v, want LC", got)
	}
	if !a.Paired[0].FirstUse || a.Paired[1].FirstUse {
		t.Fatal("FirstUse flags wrong")
	}
}

func TestClassifyBlockedBoundary(t *testing.T) {
	// Exactly at the 100 ms threshold counts as blocked; just beyond does
	// not.
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "a.com", webIP, time.Hour),
			mkDNS(houseA, resLoc, 50*time.Second, 3*time.Millisecond, "b.com", webIP2, time.Hour),
		},
		Conns: []trace.ConnRecord{
			mkConn(houseA, webIP, 10*time.Second+100*time.Millisecond, time.Second, 443),
			mkConn(houseA, webIP2, 50*time.Second+101*time.Millisecond, time.Second, 443),
		},
	}
	a := Analyze(ds, testOptions())
	if got := classOf(t, a, 0); got != ClassSC {
		t.Fatalf("gap=100ms -> %v, want SC (blocked)", got)
	}
	if got := classOf(t, a, 1); got != ClassP {
		t.Fatalf("gap=101ms -> %v, want P", got)
	}
}

func TestPairingPrefersMostRecentFresh(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "old.com", webIP, time.Hour),
			mkDNS(houseA, resLoc, 60*time.Second, 3*time.Millisecond, "new.com", webIP, time.Hour),
		},
		Conns: []trace.ConnRecord{
			mkConn(houseA, webIP, 2*time.Minute, time.Second, 443),
		},
	}
	a := Analyze(ds, testOptions())
	if got := ds.DNS[a.Paired[0].DNS].Query; got != "new.com" {
		t.Fatalf("paired with %q, want most recent", got)
	}
	if a.Paired[0].Candidates != 2 {
		t.Fatalf("candidates = %d, want 2", a.Paired[0].Candidates)
	}
}

func TestPairingFallsBackToExpired(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "a.com", webIP, 30*time.Second),
		},
		Conns: []trace.ConnRecord{
			// Ten minutes later: record long expired.
			mkConn(houseA, webIP, 10*time.Minute, time.Second, 443),
		},
	}
	a := Analyze(ds, testOptions())
	pc := a.Paired[0]
	if pc.DNS != 0 {
		t.Fatal("expired record not used as fallback")
	}
	if !pc.UsedExpired {
		t.Fatal("UsedExpired not set")
	}
	if pc.Class != ClassP {
		t.Fatalf("class = %v, want P (first use, not blocked)", pc.Class)
	}
}

func TestPairingIsPerClient(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseB, resLoc, 10*time.Second, 3*time.Millisecond, "a.com", webIP, time.Hour),
		},
		Conns: []trace.ConnRecord{
			// House A never looked up anything.
			mkConn(houseA, webIP, 20*time.Second, time.Second, 443),
		},
	}
	a := Analyze(ds, testOptions())
	if got := classOf(t, a, 0); got != ClassN {
		t.Fatalf("cross-house pairing happened: %v", got)
	}
}

func TestPairingIgnoresFutureLookups(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 60*time.Second, 3*time.Millisecond, "a.com", webIP, time.Hour),
		},
		Conns: []trace.ConnRecord{
			mkConn(houseA, webIP, 30*time.Second, time.Second, 443),
		},
	}
	a := Analyze(ds, testOptions())
	if got := classOf(t, a, 0); got != ClassN {
		t.Fatalf("future lookup paired: %v", got)
	}
}

func TestRandomPairingPolicy(t *testing.T) {
	// Two fresh candidates from different names on one IP (CDN hosting).
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "x.com", cdnIP, time.Hour),
			mkDNS(houseA, resLoc, 20*time.Second, 3*time.Millisecond, "y.com", cdnIP, time.Hour),
		},
	}
	for i := 0; i < 40; i++ {
		ds.Conns = append(ds.Conns, mkConn(houseA, cdnIP, time.Minute+time.Duration(i)*time.Second, time.Second, 443))
	}
	opts := testOptions()
	opts.Pairing = PairRandom
	a := Analyze(ds, opts)
	seen := map[string]bool{}
	for _, pc := range a.Paired {
		seen[ds.DNS[pc.DNS].Query] = true
	}
	if !seen["x.com"] || !seen["y.com"] {
		t.Fatalf("random pairing never chose both candidates: %v", seen)
	}
}

func TestDeriveThresholdsPerResolver(t *testing.T) {
	ds := &trace.Dataset{}
	// 20 lookups at ~2 ms for the local resolver; threshold should land
	// at 5 ms (2.5x rounded up to a millisecond).
	for i := 0; i < 20; i++ {
		ds.DNS = append(ds.DNS, mkDNS(houseA, resLoc,
			time.Duration(i+1)*time.Second, 2*time.Millisecond, "a.com", webIP, time.Hour))
	}
	// 20 lookups at ~20 ms for Google; threshold 50 ms.
	for i := 0; i < 20; i++ {
		ds.DNS = append(ds.DNS, mkDNS(houseA, resGgl,
			time.Duration(i+100)*time.Second, 20*time.Millisecond, "b.com", webIP2, time.Hour))
	}
	opts := DefaultOptions()
	opts.SCRMinSamples = 10
	a := Analyze(ds, opts)
	if th := a.Thresholds[resLoc.String()]; th != 5*time.Millisecond {
		t.Fatalf("local threshold %v, want 5ms", th)
	}
	if th := a.Thresholds[resGgl.String()]; th != 50*time.Millisecond {
		t.Fatalf("google threshold %v, want 50ms", th)
	}
	// Unknown resolvers fall back to the default.
	if th := a.thresholdFor("192.0.2.99"); th != opts.DefaultSCThreshold {
		t.Fatalf("fallback threshold %v", th)
	}
}

func TestTable2SumsToOne(t *testing.T) {
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "a.com", webIP, time.Hour),
		},
		Conns: []trace.ConnRecord{
			mkConn(houseA, webIP, 10*time.Second+5*time.Millisecond, time.Second, 443),
			mkConn(houseA, webIP, time.Minute, time.Second, 443),
			mkConn(houseA, peerIP, time.Minute, time.Second, 50000),
		},
	}
	a := Analyze(ds, testOptions())
	total := 0.0
	for _, row := range a.Table2() {
		total += row.Fraction
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("fractions sum to %v", total)
	}
	if a.Count(ClassN) != 1 || a.Count(ClassSC) != 1 || a.Count(ClassLC) != 1 {
		t.Fatalf("counts: N=%d SC=%d LC=%d", a.Count(ClassN), a.Count(ClassSC), a.Count(ClassLC))
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{ClassN: "N", ClassLC: "LC", ClassP: "P", ClassSC: "SC", ClassR: "R", Class(9): "Class(9)"}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestEmptyDataset(t *testing.T) {
	a := Analyze(&trace.Dataset{}, DefaultOptions())
	if a.Fraction(ClassN) != 0 || a.BlockedFraction() != 0 || a.SharedCacheHitRate() != 0 {
		t.Fatal("empty dataset fractions not zero")
	}
	f1 := a.Figure1()
	if f1.Gaps.N() != 0 {
		t.Fatal("figure1 on empty dataset")
	}
	sig := a.Significance()
	if sig.N != 0 {
		t.Fatal("significance on empty dataset")
	}
}

func TestOptionsDefaultsFilled(t *testing.T) {
	// A zero Options must behave like DefaultOptions rather than
	// classifying everything pathologically.
	ds := &trace.Dataset{
		DNS: []trace.DNSRecord{
			mkDNS(houseA, resLoc, 10*time.Second, 3*time.Millisecond, "a.com", webIP, time.Hour),
		},
		Conns: []trace.ConnRecord{
			mkConn(houseA, webIP, 10*time.Second+5*time.Millisecond, time.Second, 443),
		},
	}
	a := Analyze(ds, Options{})
	if a.Opts.BlockThreshold != DefaultOptions().BlockThreshold {
		t.Fatalf("block threshold not defaulted: %v", a.Opts.BlockThreshold)
	}
	if got := a.Paired[0].Class; got != ClassSC {
		t.Fatalf("class with zero options = %v", got)
	}
}
