package core

import (
	"net/netip"
	"testing"
	"time"

	"dnscontext/internal/households"
	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
)

// Allocation budgets (ISSUE 5) for the classify hot path: the pairing
// scan must be allocation-free on its common paths, and the per-shard
// classify loop must cost a small per-shard constant (its index maps),
// not a per-connection toll.

// allocAnalysis builds one analyzed trace for the budget tests.
func allocAnalysis(t *testing.T) *Analysis {
	t.Helper()
	cfg := households.SmallConfig(7)
	cfg.Houses = 8
	cfg.Duration = time.Hour
	cfg.Warmup = 30 * time.Minute
	ds, _, err := households.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.SCRMinSamples = 50
	return Analyze(ds, opts)
}

// TestPairAllocFree gates pair's no-candidate and single-candidate
// paths at exactly zero allocations per call (with warmed scratch).
func TestPairAllocFree(t *testing.T) {
	a := allocAnalysis(t)

	// Find a shard with connections and build its index once.
	var sh *clientShard
	var shardID int
	for s := range a.shards {
		if len(a.shards[s].conns) > 0 && len(a.shards[s].dns) > 0 {
			sh = &a.shards[s]
			shardID = s
			break
		}
	}
	if sh == nil {
		t.Fatal("no shard with both conns and dns")
	}
	idx := a.buildShardIndex(sh.dns)
	rng := stats.NewRNG(a.Opts.Seed + uint64(shardID))
	scratch := make([]int32, 0, 64)

	// No-candidate path: an address no DNS record ever answered.
	noMatch := a.DS.Conns[sh.conns[0]]
	noMatch.Resp = netip.MustParseAddr("203.0.113.253")
	if _, ok := idx[noMatch.Resp]; ok {
		t.Fatal("probe address unexpectedly indexed")
	}
	allocs := testing.AllocsPerRun(100, func() {
		dns, cand, s := a.pair(idx, &noMatch, rng, scratch)
		scratch = s
		if dns != -1 || cand != 0 {
			t.Fatalf("no-candidate pair = (%d, %d)", dns, cand)
		}
	})
	if allocs != 0 {
		t.Fatalf("no-candidate pair allocates %.1f per call; budget is 0", allocs)
	}

	// Single-candidate path: a connection whose destination resolves to
	// a one-entry bucket.
	var single trace.ConnRecord
	found := false
	for _, ci := range sh.conns {
		conn := a.DS.Conns[ci]
		if recs := idx[conn.Resp]; len(recs) == 1 && recs[0].ts <= conn.TS {
			single, found = conn, true
			break
		}
	}
	if !found {
		t.Skip("trace has no single-candidate connection in the probed shard")
	}
	allocs = testing.AllocsPerRun(100, func() {
		dns, _, s := a.pair(idx, &single, rng, scratch)
		scratch = s
		if dns < 0 {
			t.Fatal("single-candidate pair found nothing")
		}
	})
	if allocs != 0 {
		t.Fatalf("single-candidate pair allocates %.1f per call; budget is 0", allocs)
	}

	// General path with warmed scratch: still allocation-free.
	conns := sh.conns
	allocs = testing.AllocsPerRun(20, func() {
		for _, ci := range conns {
			conn := &a.DS.Conns[ci]
			_, _, s := a.pair(idx, conn, rng, scratch)
			scratch = s
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed pairing loop allocates %.1f per pass; budget is 0", allocs)
	}
}

// TestClassifyShardAllocBudget gates the classify inner loop: one
// shard's pair+classify pass may allocate its per-shard index (a small
// number of maps and one backing array) but nothing per connection.
func TestClassifyShardAllocBudget(t *testing.T) {
	a := allocAnalysis(t)
	// Pick the busiest shard so per-connection costs dominate fixed ones.
	best, bestConns := -1, 0
	for s := range a.shards {
		if n := len(a.shards[s].conns); n > bestConns {
			best, bestConns = s, n
		}
	}
	if best < 0 || bestConns < 100 {
		t.Fatalf("no busy shard (best has %d conns)", bestConns)
	}
	var counts [numClasses]int
	perRun := testing.AllocsPerRun(10, func() {
		a.classifyShard(best, &counts)
	})
	// Index construction allocates roughly one bucket-map entry per
	// distinct answered address plus the backing array; budget that as
	// 0.5 per connection, far below the old one-plus per connection.
	if budget := 64 + 0.5*float64(bestConns); perRun > budget {
		t.Fatalf("classifyShard allocates %.0f per pass over %d conns; budget is %.0f",
			perRun, bestConns, budget)
	}
}
