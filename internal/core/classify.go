package core

import (
	"time"

	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
)

// Analyze runs the full pipeline over ds: DN-Hunter pairing, the blocking
// heuristic, per-resolver SC/R thresholds, and Table 2 classification.
// The dataset is time-sorted in place.
func Analyze(ds *trace.Dataset, opts Options) *Analysis {
	opts = opts.withDefaults()
	ds.SortByTime()
	a := &Analysis{
		Opts:       opts,
		DS:         ds,
		Paired:     make([]PairedConn, len(ds.Conns)),
		DNSUsed:    make([]bool, len(ds.DNS)),
		Thresholds: make(map[string]time.Duration),
	}
	a.deriveThresholds()

	idx := buildPairIndex(ds)
	rng := stats.NewRNG(opts.Seed)

	// Connections are processed in start-time order so "first use of a
	// lookup" is well defined.
	for i := range ds.Conns {
		conn := &ds.Conns[i]
		pc := &a.Paired[i]
		pc.Conn = i
		pc.DNS, pc.Candidates = a.pair(idx, conn, rng)
		if pc.DNS < 0 {
			pc.Class = ClassN
			continue
		}
		d := &ds.DNS[pc.DNS]
		pc.Gap = conn.TS - d.TS
		pc.FirstUse = !a.DNSUsed[pc.DNS]
		a.DNSUsed[pc.DNS] = true
		pc.UsedExpired = conn.TS >= d.ExpiresAt()

		if pc.Gap > opts.BlockThreshold {
			// Record was on hand: local cache or prefetch.
			if pc.FirstUse {
				pc.Class = ClassP
			} else {
				pc.Class = ClassLC
			}
			continue
		}
		// Blocked on the lookup: shared cache vs full resolution, decided
		// by the per-resolver duration threshold.
		if d.Duration() <= a.thresholdFor(d.Resolver.String()) {
			pc.Class = ClassSC
		} else {
			pc.Class = ClassR
		}
	}
	return a
}

// deriveThresholds implements §5.3's per-resolver SC/R split: for every
// resolver with at least SCRMinSamples lookups, the minimum observed
// lookup duration approximates the network RTT; lookups not exceeding a
// rounded-up multiple of that minimum are shared-cache hits. The paper
// observes a 2 ms minimum for the local resolvers and uses a 5 ms
// threshold, i.e. roughly 2.5x the minimum; we round 2.5x the minimum up
// to the next millisecond.
func (a *Analysis) deriveThresholds() {
	durs := make(map[string][]time.Duration)
	for i := range a.DS.DNS {
		d := &a.DS.DNS[i]
		durs[d.Resolver.String()] = append(durs[d.Resolver.String()], d.Duration())
	}
	// The paper's gate — 1,000 lookups out of 9.2M (~0.011%) — scales
	// with trace size so shorter captures don't push moderately popular
	// resolvers onto the 5 ms default; Opts.SCRMinSamples caps it.
	gate := len(a.DS.DNS) / 9200
	if gate < 50 {
		gate = 50
	}
	if gate > a.Opts.SCRMinSamples {
		gate = a.Opts.SCRMinSamples
	}
	for resolver, ds := range durs {
		if len(ds) < gate {
			continue
		}
		min := ds[0]
		for _, d := range ds[1:] {
			if d < min {
				min = d
			}
		}
		th := time.Duration(float64(min) * 2.5)
		// Round up to a whole millisecond, mirroring the paper's "small
		// amount of rounding".
		th = ((th + time.Millisecond - 1) / time.Millisecond) * time.Millisecond
		if th < a.Opts.DefaultSCThreshold {
			th = a.Opts.DefaultSCThreshold
		}
		a.Thresholds[resolver] = th
	}
}

func (a *Analysis) thresholdFor(resolver string) time.Duration {
	if th, ok := a.Thresholds[resolver]; ok {
		return th
	}
	return a.Opts.DefaultSCThreshold
}

// Table2Row is one line of Table 2.
type Table2Row struct {
	Class    Class
	Conns    int
	Fraction float64
}

// Table2 computes the DNS-information-origin breakdown.
func (a *Analysis) Table2() []Table2Row {
	counts := make([]int, numClasses)
	for i := range a.Paired {
		counts[a.Paired[i].Class]++
	}
	total := len(a.Paired)
	rows := make([]Table2Row, 0, numClasses)
	for c := ClassN; c < numClasses; c++ {
		frac := 0.0
		if total > 0 {
			frac = float64(counts[c]) / float64(total)
		}
		rows = append(rows, Table2Row{Class: c, Conns: counts[c], Fraction: frac})
	}
	return rows
}

// BlockedFraction is the share of connections awaiting DNS (SC + R).
func (a *Analysis) BlockedFraction() float64 {
	return a.Fraction(ClassSC) + a.Fraction(ClassR)
}

// SharedCacheHitRate is SC / (SC + R): how often a blocked connection's
// record was in the shared resolver cache (paper: 62.6%).
func (a *Analysis) SharedCacheHitRate() float64 {
	sc, r := a.Count(ClassSC), a.Count(ClassR)
	if sc+r == 0 {
		return 0
	}
	return float64(sc) / float64(sc+r)
}
