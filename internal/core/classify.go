package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"time"

	"dnscontext/internal/obs"
	"dnscontext/internal/parallel"
	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
)

// Analyze runs the full pipeline over ds: DN-Hunter pairing, the blocking
// heuristic, per-resolver SC/R thresholds, and Table 2 classification.
// The dataset is time-sorted in place. It is the non-cancellable
// compatibility form of AnalyzeContext.
func Analyze(ds *trace.Dataset, opts Options) *Analysis {
	a, err := AnalyzeContext(context.Background(), ds, opts)
	if err != nil {
		// Unreachable: the only failure mode is context cancellation and
		// Background never cancels.
		panic(err)
	}
	return a
}

// AnalyzeContext is Analyze with cooperative cancellation: the worker
// pool checks ctx between shards. A cancelled run returns a nil Analysis
// and an error wrapping the context's error — never a partial result.
//
// The pipeline partitions connections by originating client (the paper's
// pairing, §4, keys on the originator, so shards share no state), runs
// pairing + blocking + classification for the shards on a bounded worker
// pool, and merges per-shard tallies in shard order. Each shard draws
// from its own RNG stream seeded from Opts.Seed and the shard ID, so the
// result is bit-identical for every Workers value and GOMAXPROCS.
func AnalyzeContext(ctx context.Context, ds *trace.Dataset, opts Options) (*Analysis, error) {
	return analyze(ctx, ds, opts, nil)
}

// analyze is the pipeline behind AnalyzeContext. prep, when non-nil, is
// a symbol sidecar a streaming ingest built concurrently with its
// connection scan; it is only valid when built over ds.DNS in an order
// SortByTime preserves (the ingest verifies nondecreasing TS, so the
// stable sort's early-out leaves the records untouched) — the length
// check guards against anything else.
func analyze(ctx context.Context, ds *trace.Dataset, opts Options, prep *sidecars) (*Analysis, error) {
	opts = opts.withDefaults()
	tr := opts.Trace
	tr.SetWorkers(parallel.Workers(opts.Workers))

	sp := tr.StartPhase("sort")
	ds.SortByTime()
	sp.SetItems(len(ds.Conns) + len(ds.DNS))
	a := &Analysis{
		Opts:       opts,
		DS:         ds,
		Paired:     make([]PairedConn, len(ds.Conns)),
		DNSUsed:    make([]bool, len(ds.DNS)),
		Thresholds: make(map[string]time.Duration),
		connTotal:  len(ds.Conns),
		dnsTotal:   len(ds.DNS),
	}

	// Phase overlap: shard building reads only the sorted dataset, while
	// the symbol build feeds the threshold derivation — so sharding runs
	// concurrently with intern+thresholds and joins before classify. The
	// overlapped stages write disjoint Analysis fields, and neither reads
	// the other's output, so the result is the same as running them in
	// sequence.
	shardSp := tr.StartConcurrent("shard")
	shardDone := make(chan error, 1)
	go func() {
		var err error
		pprof.Do(context.Background(), pprof.Labels("dnsctx_phase", "shard"), func(context.Context) {
			err = a.buildShards(ctx)
		})
		shardSp.SetItems(len(a.shards))
		shardSp.End()
		shardDone <- err
	}()

	sp = tr.StartPhase("intern")
	if prep != nil && len(prep.qsym) == len(ds.DNS) {
		a.adoptSidecars(prep)
	} else if err := a.buildSymbols(ctx); err != nil {
		<-shardDone
		return nil, analysisAborted(err)
	}
	sp.SetItems(len(ds.DNS))
	sp = tr.StartPhase("thresholds")
	if err := a.deriveThresholds(ctx); err != nil {
		<-shardDone
		return nil, analysisAborted(err)
	}
	sp.SetItems(len(a.Thresholds))
	if err := <-shardDone; err != nil {
		return nil, analysisAborted(err)
	}

	sp = tr.StartPhase("classify")
	sp.SetItems(len(a.Paired))
	counts := make([][numClasses]int, len(a.shards))
	var ck *ckRun
	if opts.Checkpoint != nil && opts.Checkpoint.Path != "" {
		ck = newCkRun(a, opts.Checkpoint)
		if opts.Checkpoint.Resume {
			if _, err := ck.restore(counts); err != nil {
				return nil, analysisAborted(err)
			}
		}
	}
	var err error
	pprof.Do(context.Background(), pprof.Labels("dnsctx_phase", "classify"), func(context.Context) {
		err = parallel.ForEach(ctx, opts.Workers, len(a.shards), func(s int) error {
			if ck != nil && ck.isRestored(s) {
				return nil
			}
			var t0 time.Time
			if tr != nil {
				t0 = time.Now()
			}
			a.classifyShard(s, &counts[s])
			if tr != nil {
				tr.ShardDone(len(a.shards[s].conns), time.Since(t0))
			}
			if ck != nil {
				return ck.complete(s)
			}
			return nil
		})
	})
	if err != nil {
		return nil, analysisAborted(err)
	}
	sp = tr.StartPhase("merge")
	for s := range counts {
		for c, n := range counts[s] {
			a.classCounts[c] += n
		}
	}
	sp.SetItems(len(counts))
	sp.End()
	a.publishMetrics(opts.Metrics)
	return a, nil
}

// publishMetrics records the finished run's tallies with reg. It runs
// after the pipeline completes, so the registry observes results without
// any opportunity to influence them.
func (a *Analysis) publishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	byClass := reg.CounterVec("dnsctx_analyzer_connections_total",
		"Connections classified, by DNS-information-origin class (Table 2).", "class")
	for c := ClassN; c < numClasses; c++ {
		byClass.With(c.String()).Add(uint64(a.classCounts[c]))
	}
	reg.Counter("dnsctx_analyzer_shards_total",
		"Per-client shards the pipeline partitioned the dataset into.").
		Add(uint64(len(a.shards)))
	reg.Counter("dnsctx_analyzer_dns_records_total",
		"DNS records in the analyzed dataset.").Add(uint64(a.dnsTotal))
}

func analysisAborted(err error) error {
	return fmt.Errorf("dnscontext: analysis aborted: %w", err)
}

// classifyShard pairs and classifies one client's connections. Within a
// shard, connections are processed in start-time order so "first use of
// a lookup" stays well defined; across shards there is nothing to order,
// because a DNS record can only pair with its own client's connections.
func (a *Analysis) classifyShard(shardID int, counts *[numClasses]int) {
	sh := &a.shards[shardID]
	if len(sh.conns) == 0 {
		return
	}
	idx := a.buildShardIndex(sh.dns)
	rng := stats.NewRNG(a.Opts.Seed + uint64(shardID))

	// Tally into a local array and publish once at the end: the shared
	// counts slice packs adjacent shards' slots into the same cache
	// lines, and per-connection writes from concurrent workers would
	// false-share them.
	var local [numClasses]int
	// fresh is the pairing scan's scratch, reused across the shard's
	// connections so steady-state pairing allocates nothing.
	var fresh []int32

	for _, ci := range sh.conns {
		conn := &a.DS.Conns[ci]
		pc := &a.Paired[ci]
		pc.Conn = int(ci)
		pc.DNS, pc.Candidates, fresh = a.pair(idx, conn, rng, fresh)
		if pc.DNS < 0 {
			pc.Class = ClassN
			local[ClassN]++
			continue
		}
		d := &a.DS.DNS[pc.DNS]
		pc.Gap = conn.TS - d.TS
		pc.FirstUse = !a.DNSUsed[pc.DNS]
		a.DNSUsed[pc.DNS] = true
		pc.UsedExpired = conn.TS >= a.expiry[pc.DNS]

		if pc.Gap > a.Opts.BlockThreshold {
			// Record was on hand: local cache or prefetch.
			if pc.FirstUse {
				pc.Class = ClassP
			} else {
				pc.Class = ClassLC
			}
		} else if d.Duration() <= a.thByRsym[a.rsym[pc.DNS]] {
			// Blocked on the lookup: shared cache vs full resolution,
			// decided by the per-resolver duration threshold.
			pc.Class = ClassSC
		} else {
			pc.Class = ClassR
		}
		local[pc.Class]++
	}
	*counts = local
}

// Table2Row is one line of Table 2.
type Table2Row struct {
	Class    Class
	Conns    int
	Fraction float64
}

// Table2 computes the DNS-information-origin breakdown.
func (a *Analysis) Table2() []Table2Row {
	total := a.connTotal
	rows := make([]Table2Row, 0, numClasses)
	for c := ClassN; c < numClasses; c++ {
		frac := 0.0
		if total > 0 {
			frac = float64(a.classCounts[c]) / float64(total)
		}
		rows = append(rows, Table2Row{Class: c, Conns: a.classCounts[c], Fraction: frac})
	}
	return rows
}

// BlockedFraction is the share of connections awaiting DNS (SC + R).
func (a *Analysis) BlockedFraction() float64 {
	return a.Fraction(ClassSC) + a.Fraction(ClassR)
}

// SharedCacheHitRate is SC / (SC + R): how often a blocked connection's
// record was in the shared resolver cache (paper: 62.6%).
func (a *Analysis) SharedCacheHitRate() float64 {
	sc, r := a.Count(ClassSC), a.Count(ClassR)
	if sc+r == 0 {
		return 0
	}
	return float64(sc) / float64(sc+r)
}
