package core

import (
	"net/netip"
	"time"
)

// CachePolicy summarizes one simulated cache's outcome (one column of
// Table 3).
type CachePolicy struct {
	Lookups               uint64
	Hits, Misses          uint64
	HitRate               float64
	LookupsPerSecPerHouse float64
}

// RefreshResult is Table 3: a standard whole-house cache versus one that
// speculatively refreshes entries as they expire.
type RefreshResult struct {
	// Conns is the number of DNS-using connections driving the simulation.
	Conns int
	// Houses and Window describe the normalization for the per-house rate.
	Houses int
	Window time.Duration
	// TTLFloor is the minimum authoritative TTL eligible for refreshing
	// (paper: 10 s).
	TTLFloor time.Duration

	Standard   CachePolicy
	RefreshAll CachePolicy
	// LookupMultiplier is RefreshAll.Lookups / Standard.Lookups (paper:
	// ~144x).
	LookupMultiplier float64
}

// RefreshSimulation replays the DNS-using connections through two
// trace-driven whole-house caches (§8, Table 3). Following the paper, the
// authoritative TTL of each name is approximated by the maximum TTL
// observed for it anywhere in the dataset, and names with authoritative
// TTL at or below floor are never refreshed. It is the two-extremes
// special case of SimulateCachePolicy.
func (a *Analysis) RefreshSimulation(floor time.Duration) RefreshResult {
	out := RefreshResult{TTLFloor: floor}
	_, out.Window = a.refreshInputs()

	houses := make(map[netip.Addr]bool, len(a.shards)) // shards are per-client
	for i := range a.Paired {
		if a.Paired[i].Class == ClassN {
			continue
		}
		houses[a.DS.Conns[a.Paired[i].Conn].Orig] = true
		out.Conns++
	}
	out.Houses = len(houses)

	out.Standard = a.SimulateCachePolicy(floor, PolicyNever)
	out.RefreshAll = a.SimulateCachePolicy(floor, PolicyRefreshAll)
	if out.Standard.Lookups > 0 {
		out.LookupMultiplier = float64(out.RefreshAll.Lookups) / float64(out.Standard.Lookups)
	}
	return out
}
