package core

import (
	"context"
	"net/netip"
	"time"

	"dnscontext/internal/parallel"
	"dnscontext/internal/resolver"
	"dnscontext/internal/stats"
)

// ConnectivityCheckHost is the Android captive-portal probe hostname whose
// connections the paper filters out of Google's throughput curve (§7).
const ConnectivityCheckHost = "connectivitycheck.gstatic.com"

// deriveThresholds implements §5.3's per-resolver SC/R split: for every
// resolver with at least SCRMinSamples lookups, the minimum observed
// lookup duration approximates the network RTT; lookups not exceeding a
// rounded-up multiple of that minimum are shared-cache hits. The paper
// observes a 2 ms minimum for the local resolvers and uses a 5 ms
// threshold, i.e. roughly 2.5x the minimum; we round 2.5x the minimum up
// to the next millisecond.
//
// The per-resolver lookup counts and minimum durations were already
// accumulated during the symbol pass (Analysis.resCounts/resMins — no
// second walk of the records, no per-resolver duration slices, no
// address-to-string conversions); the per-resolver threshold
// computations run on the worker pool, and results land in a
// deterministically ordered slice before the map is filled, keeping the
// outcome identical for every worker count.
func (a *Analysis) deriveThresholds(ctx context.Context) error {
	nRes := len(a.resolverAddrs)
	counts, mins := a.resCounts, a.resMins
	// The paper's gate — 1,000 lookups out of 9.2M (~0.011%) — scales
	// with trace size so shorter captures don't push moderately popular
	// resolvers onto the 5 ms default; Opts.SCRMinSamples caps it.
	gate := len(a.DS.DNS) / 9200
	if gate < 50 {
		gate = 50
	}
	if gate > a.Opts.SCRMinSamples {
		gate = a.Opts.SCRMinSamples
	}
	popular := make([]int32, 0, nRes)
	for rs := 0; rs < nRes; rs++ {
		if counts[rs] >= gate {
			popular = append(popular, int32(rs))
		}
	}

	a.thByRsym = make([]time.Duration, nRes)
	for rs := range a.thByRsym {
		a.thByRsym[rs] = a.Opts.DefaultSCThreshold
	}
	ths, err := parallel.Map(ctx, a.Opts.Workers, len(popular), func(i int) (time.Duration, error) {
		th := time.Duration(float64(mins[popular[i]]) * 2.5)
		// Round up to a whole millisecond, mirroring the paper's "small
		// amount of rounding".
		th = ((th + time.Millisecond - 1) / time.Millisecond) * time.Millisecond
		if th < a.Opts.DefaultSCThreshold {
			th = a.Opts.DefaultSCThreshold
		}
		return th, nil
	})
	if err != nil {
		return err
	}
	for i, rs := range popular {
		a.thByRsym[rs] = ths[i]
		a.Thresholds[a.resolverAddrs[rs].String()] = ths[i]
	}
	return nil
}

func (a *Analysis) thresholdFor(resolver string) time.Duration {
	if th, ok := a.Thresholds[resolver]; ok {
		return th
	}
	return a.Opts.DefaultSCThreshold
}

// Table1Row is one line of Table 1: a resolver platform's footprint.
type Table1Row struct {
	Platform resolver.PlatformID
	// HousesFraction is the share of houses using the platform at all.
	HousesFraction float64
	// LookupsFraction is the platform's share of DNS transactions.
	LookupsFraction float64
	// ConnsFraction / BytesFraction are the shares of DNS-paired
	// connections (and their volume) tied to the platform.
	ConnsFraction float64
	BytesFraction float64
}

// Table1 computes resolver-platform usage shares. profiles supplies the
// platform address book.
func (a *Analysis) Table1(profiles []resolver.PlatformProfile) []Table1Row {
	type agg struct {
		houses  map[netip.Addr]bool
		lookups int
		conns   int
		bytes   int64
	}
	aggs := make(map[resolver.PlatformID]*agg)
	get := func(id resolver.PlatformID) *agg {
		g, ok := aggs[id]
		if !ok {
			g = &agg{houses: make(map[netip.Addr]bool)}
			aggs[id] = g
		}
		return g
	}

	allHouses := make(map[netip.Addr]bool)
	totalLookups := 0
	for i := range a.DS.DNS {
		d := &a.DS.DNS[i]
		allHouses[d.Client] = true
		id, ok := resolver.PlatformOf(d.Resolver, profiles)
		if !ok {
			continue
		}
		totalLookups++
		g := get(id)
		g.houses[d.Client] = true
		g.lookups++
	}

	var totalConns int
	var totalBytes int64
	for i := range a.Paired {
		pc := &a.Paired[i]
		if pc.DNS < 0 {
			continue
		}
		id, ok := resolver.PlatformOf(a.DS.DNS[pc.DNS].Resolver, profiles)
		if !ok {
			continue
		}
		totalConns++
		c := &a.DS.Conns[pc.Conn]
		totalBytes += c.TotalBytes()
		g := get(id)
		g.conns++
		g.bytes += c.TotalBytes()
	}

	var rows []Table1Row
	for _, p := range profiles {
		g := aggs[p.ID]
		if g == nil {
			continue
		}
		row := Table1Row{Platform: p.ID}
		if len(allHouses) > 0 {
			row.HousesFraction = float64(len(g.houses)) / float64(len(allHouses))
		}
		if totalLookups > 0 {
			row.LookupsFraction = float64(g.lookups) / float64(totalLookups)
		}
		if totalConns > 0 {
			row.ConnsFraction = float64(g.conns) / float64(totalConns)
		}
		if totalBytes > 0 {
			row.BytesFraction = float64(g.bytes) / float64(totalBytes)
		}
		rows = append(rows, row)
	}
	return rows
}

// ResolverPerformance bundles §7's per-platform comparison.
type ResolverPerformance struct {
	// HitRate is SC/(SC+R) per platform (paper: Cloudflare 83.6%, Local
	// 71.2%, OpenDNS 58.8%, Google 23.0%).
	HitRate map[resolver.PlatformID]float64
	// RDelays is Figure 3 top: the distribution of lookup durations (ms)
	// behind R connections, per platform.
	RDelays map[resolver.PlatformID]*stats.ECDF
	// Throughput is Figure 3 bottom: the distribution of connection
	// throughput (bits/s) for SC∪R connections, per platform.
	Throughput map[resolver.PlatformID]*stats.ECDF
	// GoogleNoCC is Google's throughput curve with connectivity-check
	// probes removed (the dashed line).
	GoogleNoCC *stats.ECDF
	// GoogleCCFraction is the share of Google-paired SC∪R connections
	// that are connectivity checks (paper: 23.5%).
	GoogleCCFraction float64
	// NonGoogleCCFraction is the same share for the other platforms
	// combined (paper: 0.3%).
	NonGoogleCCFraction float64
}

// ResolverPerformance computes the §7 comparison.
func (a *Analysis) ResolverPerformance(profiles []resolver.PlatformProfile) ResolverPerformance {
	out := ResolverPerformance{
		HitRate:    make(map[resolver.PlatformID]float64),
		RDelays:    make(map[resolver.PlatformID]*stats.ECDF),
		Throughput: make(map[resolver.PlatformID]*stats.ECDF),
		GoogleNoCC: stats.NewECDF(0),
	}
	sc := make(map[resolver.PlatformID]int)
	rr := make(map[resolver.PlatformID]int)
	var googleConns, googleCC, otherConns, otherCC int

	for i := range a.Paired {
		pc := &a.Paired[i]
		if pc.Class != ClassSC && pc.Class != ClassR {
			continue
		}
		d := &a.DS.DNS[pc.DNS]
		id, ok := resolver.PlatformOf(d.Resolver, profiles)
		if !ok {
			continue
		}
		conn := &a.DS.Conns[pc.Conn]
		isCC := d.Query == ConnectivityCheckHost

		if pc.Class == ClassSC {
			sc[id]++
		} else {
			rr[id]++
			if out.RDelays[id] == nil {
				out.RDelays[id] = stats.NewECDF(0)
			}
			out.RDelays[id].Add(float64(d.Duration()) / float64(time.Millisecond))
		}

		tput := conn.ThroughputBps()
		if out.Throughput[id] == nil {
			out.Throughput[id] = stats.NewECDF(0)
		}
		out.Throughput[id].Add(tput)
		if id == resolver.PlatformGoogle {
			googleConns++
			if isCC {
				googleCC++
			} else {
				out.GoogleNoCC.Add(tput)
			}
		} else {
			otherConns++
			if isCC {
				otherCC++
			}
		}
	}
	for id := range sc {
		if sc[id]+rr[id] > 0 {
			out.HitRate[id] = float64(sc[id]) / float64(sc[id]+rr[id])
		}
	}
	for id := range rr {
		if _, ok := out.HitRate[id]; !ok {
			out.HitRate[id] = 0
		}
	}
	if googleConns > 0 {
		out.GoogleCCFraction = float64(googleCC) / float64(googleConns)
	}
	if otherConns > 0 {
		out.NonGoogleCCFraction = float64(otherCC) / float64(otherConns)
	}
	return out
}
