package core

import (
	"net/netip"
	"sort"

	"dnscontext/internal/resolver"
	"dnscontext/internal/trace"
)

// HouseSummary aggregates one residence's traffic: its connection class
// mix and its resolver-platform usage. The paper's monitor saw exactly
// this granularity (NAT hides devices), and §3's observations — e.g.
// "roughly 16% of the houses only use the ISP's resolvers" — are
// per-house statements.
type HouseSummary struct {
	House int
	Addr  netip.Addr
	// Conns / DNS are the house's record counts.
	Conns int
	DNS   int
	// ClassCounts indexes by Class.
	ClassCounts [numClasses]int
	// PlatformLookups counts wire lookups per resolver platform.
	PlatformLookups map[resolver.PlatformID]int
}

// BlockedFraction is the house's share of connections awaiting DNS.
func (h *HouseSummary) BlockedFraction() float64 {
	if h.Conns == 0 {
		return 0
	}
	return float64(h.ClassCounts[ClassSC]+h.ClassCounts[ClassR]) / float64(h.Conns)
}

// UsesOnlyLocal reports whether every lookup from the house went to the
// local ISP resolvers.
func (h *HouseSummary) UsesOnlyLocal() bool {
	for id, n := range h.PlatformLookups {
		if id != resolver.PlatformLocal && n > 0 {
			return false
		}
	}
	return h.PlatformLookups[resolver.PlatformLocal] > 0
}

// PerHouse computes per-house summaries, ordered by house index.
func (a *Analysis) PerHouse(profiles []resolver.PlatformProfile) []HouseSummary {
	byAddr := make(map[netip.Addr]*HouseSummary, len(a.shards)) // shards are per-client
	get := func(addr netip.Addr) *HouseSummary {
		h, ok := byAddr[addr]
		if !ok {
			h = &HouseSummary{
				House:           trace.HouseOf(addr),
				Addr:            addr,
				PlatformLookups: make(map[resolver.PlatformID]int),
			}
			byAddr[addr] = h
		}
		return h
	}

	for i := range a.DS.DNS {
		d := &a.DS.DNS[i]
		h := get(d.Client)
		h.DNS++
		if id, ok := resolver.PlatformOf(d.Resolver, profiles); ok {
			h.PlatformLookups[id]++
		}
	}
	for i := range a.Paired {
		pc := &a.Paired[i]
		h := get(a.DS.Conns[pc.Conn].Orig)
		h.Conns++
		h.ClassCounts[pc.Class]++
	}

	out := make([]HouseSummary, 0, len(byAddr))
	for _, h := range byAddr {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].House < out[j].House })
	return out
}

// OnlyLocalFraction is §3's statistic: the share of houses whose every
// lookup targets the local ISP resolvers (paper: ~16%).
func OnlyLocalFraction(houses []HouseSummary) float64 {
	if len(houses) == 0 {
		return 0
	}
	only := 0
	for i := range houses {
		if houses[i].UsesOnlyLocal() {
			only++
		}
	}
	return float64(only) / float64(len(houses))
}
