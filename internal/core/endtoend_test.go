package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dnscontext/internal/households"
	"dnscontext/internal/resolver"
	"dnscontext/internal/trace"
)

// paperScaleAnalysis runs the calibrated generator at the medium test
// scale and analyzes it once for the whole file.
var paperAnalysis struct {
	a        *Analysis
	ds       *trace.Dataset
	profiles []resolver.PlatformProfile
}

func analysisForPaperBands(t *testing.T) *Analysis {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-band tests are not -short")
	}
	if paperAnalysis.a == nil {
		cfg := households.DefaultConfig()
		cfg.Houses = 50
		ds, eco, err := households.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		paperAnalysis.ds = ds
		paperAnalysis.profiles = eco.Profiles
		paperAnalysis.a = Analyze(ds, DefaultOptions())
	}
	return paperAnalysis.a
}

// within asserts got lies inside [lo, hi]; the bands are deliberately wide
// — the substrate is a simulator, and the claim is that the paper's
// qualitative shape holds, not its exact numbers.
func within(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.3f outside [%.3f, %.3f]", name, got, lo, hi)
	}
}

func TestPaperBandTable2(t *testing.T) {
	a := analysisForPaperBands(t)
	within(t, "N fraction (paper 0.072)", a.Fraction(ClassN), 0.02, 0.14)
	within(t, "LC fraction (paper 0.429)", a.Fraction(ClassLC), 0.30, 0.55)
	within(t, "P fraction (paper 0.078)", a.Fraction(ClassP), 0.02, 0.14)
	within(t, "SC fraction (paper 0.263)", a.Fraction(ClassSC), 0.15, 0.38)
	within(t, "R fraction (paper 0.157)", a.Fraction(ClassR), 0.08, 0.28)
	within(t, "blocked (paper 0.421)", a.BlockedFraction(), 0.30, 0.55)
	within(t, "shared-cache hit rate (paper 0.626)", a.SharedCacheHitRate(), 0.45, 0.75)
	// The paper's headline: a majority of connections do not block on DNS.
	if free := a.Fraction(ClassN) + a.Fraction(ClassLC) + a.Fraction(ClassP); free < 0.5 {
		t.Errorf("only %.3f of connections avoid blocking; paper finds 0.579", free)
	}
}

func TestPaperBandFigure1(t *testing.T) {
	a := analysisForPaperBands(t)
	f1 := a.Figure1()
	if f1.FirstUseWithinKnee < 0.85 {
		t.Errorf("first-use within knee %.3f, paper 0.91", f1.FirstUseWithinKnee)
	}
	if f1.FirstUseBeyondKnee > 0.45 {
		t.Errorf("first-use beyond knee %.3f, paper 0.21", f1.FirstUseBeyondKnee)
	}
	if f1.FirstUseWithinKnee <= f1.FirstUseBeyondKnee {
		t.Error("knee does not separate first-use regimes")
	}
}

func TestPaperBandSection51(t *testing.T) {
	a := analysisForPaperBands(t)
	nd := a.NoDNS()
	within(t, "high-port share of N (paper 0.816)", nd.HighPortFraction, 0.55, 0.95)
	if nd.DoTConns != 0 {
		t.Errorf("DoT connections present: %d", nd.DoTConns)
	}
	within(t, "unpaired non-p2p (paper 0.013)", nd.UnpairedNonP2PFraction, 0, 0.05)
	unamb, _ := a.PairingAmbiguity()
	within(t, "single-candidate pairings (paper >0.82)", unamb, 0.70, 1.0)
}

func TestPaperBandSection52(t *testing.T) {
	a := analysisForPaperBands(t)
	v := a.TTLViolations()
	within(t, "LC expired use (paper 0.222)", v.LCExpiredFraction, 0.08, 0.35)
	within(t, "P expired use (paper 0.124)", v.PExpiredFraction, 0.04, 0.25)
	if v.PExpiredFraction >= v.LCExpiredFraction+0.05 {
		t.Errorf("P expired (%.3f) should not exceed LC expired (%.3f); paper finds P ~10pts lower",
			v.PExpiredFraction, v.LCExpiredFraction)
	}
	within(t, "violations beyond 30s (paper 0.82)", v.LatenessBeyond30s, 0.6, 1.0)
	if v.Lateness.N() > 0 {
		within(t, "violation lateness median s (paper 890)", v.Lateness.Median(), 100, 3000)
	}
	if v.GapMedianP >= v.GapMedianLC {
		t.Errorf("P gap median (%v) should be below LC gap median (%v), as in the paper (310s vs 1033s)",
			v.GapMedianP, v.GapMedianLC)
	}
	pf := a.Prefetch()
	within(t, "unused lookups (paper 0.378)", pf.UnusedFraction, 0.25, 0.50)
}

func TestPaperBandSection6(t *testing.T) {
	a := analysisForPaperBands(t)
	f2 := a.Figure2()
	within(t, "lookup delay median ms (paper 8.5)", f2.LookupDelays.Median(), 1.5, 25)
	within(t, "lookup delay p75 ms (paper 20)", f2.LookupDelays.Quantile(0.75), 8, 60)
	within(t, "lookups over 100ms (paper 0.033)", f2.LookupDelays.FractionAbove(100), 0.002, 0.10)
	within(t, "DNS >1% of transaction (paper 0.20)", f2.ContributionAll.FractionAbove(1), 0.08, 0.35)
	within(t, "DNS >=10% of transaction (paper 0.08)", f2.ContributionAll.FractionAbove(10), 0.02, 0.18)
	// R contributes more than SC.
	if f2.ContributionR.FractionAbove(1) <= f2.ContributionSC.FractionAbove(1) {
		t.Error("R contribution should exceed SC contribution")
	}
	sig := a.Significance()
	within(t, "both insignificant (paper 0.64)", sig.BothInsignificant, 0.45, 0.80)
	within(t, "both significant (paper 0.086)", sig.BothSignificant, 0.02, 0.20)
	within(t, "overall significant (paper 0.036)", sig.OverallSignificant, 0.01, 0.10)
}

func TestPaperBandTable1(t *testing.T) {
	a := analysisForPaperBands(t)
	rows := a.Table1(paperAnalysis.profiles)
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Platform.String()] = r
	}
	local, google := byName["Local"], byName["Google"]
	within(t, "Local lookup share (paper 0.728)", local.LookupsFraction, 0.60, 0.85)
	within(t, "Google lookup share (paper 0.129)", google.LookupsFraction, 0.08, 0.30)
	if local.LookupsFraction <= google.LookupsFraction {
		t.Error("Local must dominate Google")
	}
	within(t, "Local houses (paper 0.924)", local.HousesFraction, 0.85, 1.0)
	within(t, "Google houses (paper 0.835)", google.HousesFraction, 0.6, 1.0)
	// Conns and bytes roughly commensurate with lookups (paper's
	// observation).
	if diff := local.ConnsFraction - local.LookupsFraction; diff < -0.2 || diff > 0.2 {
		t.Errorf("Local conns share %.3f far from lookup share %.3f", local.ConnsFraction, local.LookupsFraction)
	}
}

func TestPaperBandSection7(t *testing.T) {
	a := analysisForPaperBands(t)
	rp := a.ResolverPerformance(paperAnalysis.profiles)
	local := rp.HitRate[resolver.PlatformLocal]
	google := rp.HitRate[resolver.PlatformGoogle]
	within(t, "Local SC hit rate (paper 0.712)", local, 0.55, 0.85)
	within(t, "Google SC hit rate (paper 0.23)", google, 0.05, 0.45)
	if google >= local {
		t.Error("Google hit rate should be far below Local (paper: 23% vs 71%)")
	}
	within(t, "Google cc share (paper 0.235)", rp.GoogleCCFraction, 0.08, 0.45)
	within(t, "non-Google cc share (paper 0.003)", rp.NonGoogleCCFraction, 0, 0.05)
	// R-delay ordering at the median: Local fastest.
	if lr, gr := rp.RDelays[resolver.PlatformLocal], rp.RDelays[resolver.PlatformGoogle]; lr != nil && gr != nil {
		if lr.Median() >= gr.Median() {
			t.Errorf("Local R delay median (%.1f) should beat Google (%.1f)", lr.Median(), gr.Median())
		}
	}
}

func TestPaperBandSection8(t *testing.T) {
	a := analysisForPaperBands(t)
	wh := a.WholeHouse()
	within(t, "whole-house moved (paper 0.098)", wh.MovedFraction, 0.01, 0.15)
	if wh.SCBenefit <= 0 || wh.RBenefit <= 0 {
		t.Errorf("whole-house benefits must be positive: SC %.3f R %.3f", wh.SCBenefit, wh.RBenefit)
	}
	rf := a.RefreshSimulation(10 * time.Second)
	if rf.RefreshAll.HitRate <= rf.Standard.HitRate+0.1 {
		t.Errorf("refresh-all hit rate %.3f should far exceed standard %.3f (paper: 96.6 vs 61.0)",
			rf.RefreshAll.HitRate, rf.Standard.HitRate)
	}
	within(t, "refresh lookup multiplier (paper ~144x)", rf.LookupMultiplier, 30, 500)
	within(t, "standard hit rate (paper 0.61)", rf.Standard.HitRate, 0.35, 0.75)
	within(t, "refresh hit rate (paper 0.966)", rf.RefreshAll.HitRate, 0.75, 1.0)
}

func TestReportRendersEverySection(t *testing.T) {
	a := analysisForPaperBands(t)
	var buf bytes.Buffer
	if err := a.Report(&buf, paperAnalysis.profiles); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Fig 1", "Fig 2 (top)", "Fig 2 (bottom)",
		"Fig 3 (top)", "Fig 3 (bottom)", "Section 5.1", "Section 5.2",
		"Section 7", "Section 8", "refresh simulation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestReportPropagatesWriteErrors(t *testing.T) {
	a := analysisForPaperBands(t)
	if err := a.Report(failWriter{}, paperAnalysis.profiles); err == nil {
		t.Fatal("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = errFixed("write failed")

type errFixed string

func (e errFixed) Error() string { return string(e) }

// TestAblationBlockingThreshold mirrors the paper's footnote 5: the
// headline insight (most connections do not block) must be robust across
// blocking thresholds.
func TestAblationBlockingThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are not -short")
	}
	_ = analysisForPaperBands(t)
	for _, th := range []time.Duration{20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 200 * time.Millisecond} {
		opts := DefaultOptions()
		opts.BlockThreshold = th
		a := Analyze(paperAnalysis.ds, opts)
		free := a.Fraction(ClassN) + a.Fraction(ClassLC) + a.Fraction(ClassP)
		if free < 0.45 || free > 0.80 {
			t.Errorf("threshold %v: non-blocking fraction %.3f escapes the paper's regime", th, free)
		}
	}
}

// TestAblationPairingPolicy mirrors §4's robustness check: random pairing
// among fresh candidates must not change the headline classification.
func TestAblationPairingPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are not -short")
	}
	a := analysisForPaperBands(t)
	opts := DefaultOptions()
	opts.Pairing = PairRandom
	b := Analyze(paperAnalysis.ds, opts)
	for c := ClassN; c < numClasses; c++ {
		if diff := a.Fraction(c) - b.Fraction(c); diff < -0.05 || diff > 0.05 {
			t.Errorf("class %v shifts by %.3f under random pairing", c, diff)
		}
	}
}

func TestExportFigureData(t *testing.T) {
	a := analysisForPaperBands(t)
	dir := t.TempDir()
	if err := a.ExportFigureData(dir, 50, paperAnalysis.profiles); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		"table1.csv", "table2.csv", "table3.csv",
		"fig1_gap_cdf.csv", "fig2_delay_cdf.csv", "fig2_contribution_cdf.csv",
		"fig3_rdelay_cdf.csv", "fig3_throughput_cdf.csv",
	} {
		b, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		lines := strings.Count(string(b), "\n")
		if lines < 2 {
			t.Errorf("%s has only %d lines", f, lines)
		}
	}
}

func TestReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism check is not -short")
	}
	render := func() string {
		cfg := households.SmallConfig(123)
		cfg.Houses = 5
		cfg.Duration = time.Hour
		cfg.Warmup = time.Hour
		ds, eco, err := households.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.SCRMinSamples = 50
		a := Analyze(ds, opts)
		var buf bytes.Buffer
		if err := a.Report(&buf, eco.Profiles); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Fatal("identical seeds produced different reports")
	}
}
