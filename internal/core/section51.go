package core

// NoDNS is §5.1's dissection of the N connections (no DNS information).
type NoDNS struct {
	// Total is the number of N connections.
	Total int
	// HighPortFraction is the share where both ports are non-reserved
	// (>=1024), the hallmark of peer-to-peer traffic (paper: 81.6%).
	HighPortFraction float64
	// ReservedPortCounts tallies N connections per well-known destination
	// port (443, 123, 80 dominate in the paper).
	ReservedPortCounts map[uint16]int
	// DoTConns counts connections on TCP/853 — the encrypted-DNS check
	// (paper: zero).
	DoTConns int
	// UnpairedNonP2PFraction is the share of ALL connections that are
	// both unpaired and not high-port traffic — the paper's bound on
	// possible encrypted-DNS impact (paper: 1.3%).
	UnpairedNonP2PFraction float64
}

// NoDNS computes the §5.1 breakdown.
func (a *Analysis) NoDNS() NoDNS {
	out := NoDNS{ReservedPortCounts: make(map[uint16]int)}
	unpairedNonP2P := 0
	for i := range a.Paired {
		pc := &a.Paired[i]
		c := &a.DS.Conns[pc.Conn]
		if c.RespPort == 853 {
			out.DoTConns++
		}
		if pc.Class != ClassN {
			continue
		}
		out.Total++
		if c.OrigPort >= 1024 && c.RespPort >= 1024 {
			out.HighPortFraction++
		} else {
			out.ReservedPortCounts[c.RespPort]++
			unpairedNonP2P++
		}
	}
	if out.Total > 0 {
		out.HighPortFraction /= float64(out.Total)
	}
	if len(a.Paired) > 0 {
		out.UnpairedNonP2PFraction = float64(unpairedNonP2P) / float64(len(a.Paired))
	}
	return out
}

// PairingAmbiguity reports §4's centralized-hosting measure: the fraction
// of paired connections with exactly one non-expired candidate record
// (paper: >82%).
func (a *Analysis) PairingAmbiguity() (unambiguous float64, paired int) {
	single := 0
	for i := range a.Paired {
		pc := &a.Paired[i]
		if pc.DNS < 0 {
			continue
		}
		paired++
		if pc.Candidates <= 1 {
			single++
		}
	}
	if paired == 0 {
		return 0, 0
	}
	return float64(single) / float64(paired), paired
}
