package core

import (
	"context"
	"fmt"
	"time"

	"dnscontext/internal/parallel"
	"dnscontext/internal/resolver"
)

// TransportScenario is one cell of the transport what-if: a wire
// transport, optionally with TLS session resumption.
type TransportScenario struct {
	Kind       resolver.TransportKind
	Resumption bool
}

// String names the scenario for table rows ("DoT", "DoT+resume", ...).
func (s TransportScenario) String() string {
	if s.Resumption && s.Kind.TLS() {
		return s.Kind.String() + "+resume"
	}
	return s.Kind.String()
}

// DefaultTransportScenarios is the comparison the acceptance question
// asks for: the paper's Do53 baseline, DoTCP, and DoT/DoH each with and
// without session resumption.
func DefaultTransportScenarios() []TransportScenario {
	return []TransportScenario{
		{Kind: resolver.TransportUDP},
		{Kind: resolver.TransportTCP},
		{Kind: resolver.TransportTLS},
		{Kind: resolver.TransportTLS, Resumption: true},
		{Kind: resolver.TransportHTTPS},
		{Kind: resolver.TransportHTTPS, Resumption: true},
	}
}

// TransportRow is one scenario's analytic re-costing of the trace.
type TransportRow struct {
	Scenario TransportScenario
	// WireLookups is the number of replayed wire lookups to known
	// platforms (the connection-state walk covers every lookup, used or
	// not, because reuse depends on all of a client's DNS activity).
	WireLookups int
	// Cold/Resumed/Reused split the wire lookups by the connection state
	// they would have found: no usable connection (full handshake), a
	// session ticket but no live connection (shortened handshake), or a
	// live idle connection (no handshake at all).
	Cold, Resumed, Reused int
	// HandshakeTotal is the summed handshake time the scenario adds
	// across all wire lookups.
	HandshakeTotal time.Duration
	// MeanLookupDelta is the mean added latency per wire lookup
	// (handshakes plus per-query overhead).
	MeanLookupDelta time.Duration
	// MeanBlockedDelta is the mean added latency over the lookups that
	// blocked a connection (the SC/R pairs) — the paper's "blocked on
	// DNS" cost under this transport.
	MeanBlockedDelta time.Duration
	// BlockedConns is the number of SC/R connections considered.
	BlockedConns int
	// BlockedOver counts SC/R connections whose total DNS-blocked time
	// (query issue to connection start, plus this scenario's delta)
	// reaches the analysis BlockThreshold; BlockedOverFraction divides by
	// all connections.
	BlockedOver         int
	BlockedOverFraction float64
}

// transportTally is one client shard's contribution to a scenario row.
type transportTally struct {
	wire, cold, resumed, reused int
	handshake                   time.Duration
	deltaSum                    time.Duration
	blockedDeltaSum             time.Duration
	blocked, blockedOver        int
}

// platConn is the replayed per-(client, platform) connection state: the
// passive analogue of resolver.ConnState, advanced analytically.
type platConn struct {
	established  bool
	idleDeadline time.Duration
	hasSession   bool
	sessionUntil time.Duration
}

// TransportWhatIf re-runs the blocking analysis under each transport
// scenario without re-simulating: it walks every client's DNS records in
// time order, replaying the persistent-connection state the client would
// have held toward each platform, and prices the handshakes the scenario
// would have added using the platform link's analytic expected RTT. The
// walk consumes no randomness and never mutates the analysis, so it is
// safe to run alongside anything and is bit-reproducible by
// construction.
//
// Two modeling notes. Clients are NAT'd houses, so the replay merges all
// of a house's devices into one connection per platform — the passive
// view cannot do better, making the handshake counts (and therefore the
// deltas) a lower bound. And the baseline trace's lookup durations stay
// as observed: the scenario adds cost on top (handshake + per-query
// overhead), which isolates the transport-attributable delta the
// acceptance question asks about.
//
// Requires a full analysis (nil for summary-grade, like the other
// what-ifs that walk raw records).
func (a *Analysis) TransportWhatIf(profiles []resolver.PlatformProfile, scenarios []TransportScenario) []TransportRow {
	if a.Summary() {
		return nil
	}
	if len(scenarios) == 0 {
		scenarios = DefaultTransportScenarios()
	}
	rows := make([]TransportRow, 0, len(scenarios))
	for _, sc := range scenarios {
		rows = append(rows, a.transportScenario(profiles, sc))
	}
	return rows
}

// transportScenario prices one scenario, shard-parallel like WholeHouse.
func (a *Analysis) transportScenario(profiles []resolver.PlatformProfile, sc TransportScenario) TransportRow {
	cfg := resolver.StreamConfig{SessionResumption: sc.Resumption}.WithDefaults(sc.Kind)
	// Per-platform analytic expected RTTs, indexed by PlatformID.
	expRTT := make(map[resolver.PlatformID]time.Duration, len(profiles))
	for _, p := range profiles {
		expRTT[p.ID] = p.Link.ExpectedRTT()
	}

	parts, _ := parallel.Map(context.Background(), a.Opts.Workers, len(a.shards),
		func(s int) (transportTally, error) {
			return a.transportShard(s, sc, cfg, profiles, expRTT), nil
		})

	var t transportTally
	for _, p := range parts {
		t.wire += p.wire
		t.cold += p.cold
		t.resumed += p.resumed
		t.reused += p.reused
		t.handshake += p.handshake
		t.deltaSum += p.deltaSum
		t.blockedDeltaSum += p.blockedDeltaSum
		t.blocked += p.blocked
		t.blockedOver += p.blockedOver
	}
	row := TransportRow{
		Scenario:       sc,
		WireLookups:    t.wire,
		Cold:           t.cold,
		Resumed:        t.resumed,
		Reused:         t.reused,
		HandshakeTotal: t.handshake,
		BlockedConns:   t.blocked,
		BlockedOver:    t.blockedOver,
	}
	if t.wire > 0 {
		row.MeanLookupDelta = t.deltaSum / time.Duration(t.wire)
	}
	if t.blocked > 0 {
		row.MeanBlockedDelta = t.blockedDeltaSum / time.Duration(t.blocked)
	}
	if a.connTotal > 0 {
		row.BlockedOverFraction = float64(t.blockedOver) / float64(a.connTotal)
	}
	return row
}

// transportShard replays one client: first the DNS walk that advances the
// per-platform connection state and prices each lookup's delta, then the
// connection walk that charges those deltas to the blocked (SC/R) pairs.
func (a *Analysis) transportShard(shardID int, sc TransportScenario, cfg resolver.StreamConfig,
	profiles []resolver.PlatformProfile, expRTT map[resolver.PlatformID]time.Duration) (out transportTally) {
	sh := &a.shards[shardID]
	stream := sc.Kind.Stream()
	var conns map[resolver.PlatformID]*platConn
	var delta map[int32]time.Duration
	if stream {
		conns = make(map[resolver.PlatformID]*platConn, 4)
		delta = make(map[int32]time.Duration, len(sh.dns))
	}

	for _, di := range sh.dns {
		d := &a.DS.DNS[di]
		pid, ok := resolver.PlatformOf(d.Resolver, profiles)
		if !ok {
			continue
		}
		out.wire++
		if !stream {
			continue
		}
		st := conns[pid]
		if st == nil {
			st = &platConn{}
			conns[pid] = st
		}
		var add time.Duration
		switch {
		case st.established && d.QueryTS <= st.idleDeadline:
			out.reused++
		default:
			resumed := cfg.SessionResumption && sc.Kind.TLS() &&
				st.hasSession && d.QueryTS <= st.sessionUntil
			if resumed {
				out.resumed++
			} else {
				out.cold++
			}
			hs := time.Duration(cfg.HandshakeRTTs(sc.Kind, resumed)) * expRTT[pid]
			add = hs
			out.handshake += hs
		}
		add += cfg.PerQueryOverhead
		out.deltaSum += add
		if add > 0 {
			delta[di] = add
		}
		// The lookup completes later by the added cost; reuse windows
		// shift with it.
		done := d.TS + add
		st.established = true
		st.idleDeadline = done + cfg.IdleTimeout
		if sc.Kind.TLS() {
			st.hasSession = true
			st.sessionUntil = done + cfg.SessionLifetime
		}
	}

	for _, ci := range sh.conns {
		pc := &a.Paired[ci]
		if pc.Class != ClassSC && pc.Class != ClassR {
			continue
		}
		d := &a.DS.DNS[pc.DNS]
		out.blocked++
		var add time.Duration
		if stream {
			add = delta[int32(pc.DNS)]
		}
		out.blockedDeltaSum += add
		blockedFor := (d.TS - d.QueryTS) + pc.Gap + add
		if blockedFor >= a.Opts.BlockThreshold {
			out.blockedOver++
		}
	}
	return out
}

// WriteTransportTable renders the what-if rows as the delta table the
// CLI prints: per scenario, the connection-state split, the mean added
// lookup latency, and the movement of the ≥BlockThreshold blocked mass,
// with the Do53 row as the zero baseline.
func WriteTransportTable(w interface{ Write([]byte) (int, error) }, rows []TransportRow, blockThreshold time.Duration) error {
	if len(rows) == 0 {
		return nil
	}
	base := rows[0]
	if _, err := fmt.Fprintf(w, "Transport what-if (blocked ≥ %v; deltas vs %s)\n",
		blockThreshold, base.Scenario); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %9s %9s %9s %9s %12s %12s %9s %9s %10s\n",
		"transport", "lookups", "cold", "resumed", "reused",
		"mean Δ/look", "mean Δ/blk", "blk≥thr", "Δblk", "blk-frac"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-12s %9d %9d %9d %9d %12s %12s %9d %+9d %9.2f%%\n",
			r.Scenario, r.WireLookups, r.Cold, r.Resumed, r.Reused,
			r.MeanLookupDelta.Round(time.Microsecond),
			r.MeanBlockedDelta.Round(time.Microsecond),
			r.BlockedOver, r.BlockedOver-base.BlockedOver,
			100*r.BlockedOverFraction); err != nil {
			return err
		}
	}
	return nil
}
