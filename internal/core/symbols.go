package core

// Parallel symbol-sidecar construction. The sidecar build — query-name
// interning, resolver numbering, TTL-expiry precomputation, and the
// per-resolver (count, min-duration) stats the threshold derivation
// needs — used to be a single serial pass over every DNS record, the
// pipeline's longest serial stage after ingest. Here the pass is
// chunked: each worker interns into a private table over a contiguous
// slice of the records, and a cheap merge (proportional to the number
// of distinct names, not records) renumbers the chunk-local symbols
// into global first-appearance order.
//
// Determinism is exact, not approximate: a chunk-local table's intern
// order is the chunk's first-appearance order, so re-interning the
// chunk tables in chunk order reproduces the global first-appearance
// numbering the serial pass assigns — the merged sidecar is
// bit-identical to the serial one at every worker count.

import (
	"context"
	"net/netip"
	"runtime/pprof"
	"time"

	"dnscontext/internal/parallel"
	"dnscontext/internal/trace"
)

// minParallelSymbols is the record count below which the chunked build's
// merge overhead outweighs the parallelism; smaller inputs take the
// serial pass regardless of the worker setting.
const minParallelSymbols = 1 << 15

// sidecars bundles the per-DNS-record symbol sidecar plus the fused
// per-resolver stats. It is exactly the precomputation AnalyzeContext
// needs before the threshold and classify phases, split out so the
// streaming ingest can build it concurrently with the connection scan
// and hand it to analyze ready-made.
type sidecars struct {
	names  *trace.SymbolTable // query-name symbols, first-appearance order
	qsym   []trace.Sym        // per record: query-name symbol
	rsym   []int32            // per record: resolver symbol
	expiry []time.Duration    // per record: precomputed ExpiresAt()
	// resolverAddrs maps resolver symbols back to addresses in
	// first-appearance order; resCounts/resMins are each resolver's
	// lookup count and minimum observed duration — deriveThresholds'
	// inputs, accumulated in the same pass instead of a separate walk.
	resolverAddrs []netip.Addr
	resCounts     []int
	resMins       []time.Duration
}

// addResolver assigns the next resolver symbol.
func (sc *sidecars) addResolver(addr netip.Addr) int32 {
	rs := int32(len(sc.resolverAddrs))
	sc.resolverAddrs = append(sc.resolverAddrs, addr)
	sc.resCounts = append(sc.resCounts, 0)
	sc.resMins = append(sc.resMins, 0)
	return rs
}

// buildSidecars builds the sidecar bundle for dns. The result is a pure
// function of the record order — identical for every workers value. The
// only error is context cancellation.
func buildSidecars(ctx context.Context, workers int, dns []trace.DNSRecord) (*sidecars, error) {
	n := len(dns)
	sc := &sidecars{
		names:  trace.NewSymbolTable(),
		qsym:   make([]trace.Sym, n),
		rsym:   make([]int32, n),
		expiry: make([]time.Duration, n),
	}
	var err error
	// Label the build so profiles attribute intern/expiry samples to the
	// stage; chunk workers inherit the label.
	pprof.Do(context.Background(), pprof.Labels("dnsctx_phase", "symbols"), func(context.Context) {
		if w := parallel.Workers(workers); w > 1 && n >= minParallelSymbols {
			err = sc.buildParallel(ctx, workers, dns)
		} else {
			sc.buildSerial(dns)
		}
	})
	if err != nil {
		return nil, err
	}
	return sc, nil
}

// buildSerial is the reference single-pass build.
func (sc *sidecars) buildSerial(dns []trace.DNSRecord) {
	rsyms := make(map[netip.Addr]int32, 8) // a handful of resolver platforms
	for i := range dns {
		d := &dns[i]
		sc.qsym[i] = sc.names.Intern(d.Query)
		sc.expiry[i] = d.ExpiresAt()
		rs, ok := rsyms[d.Resolver]
		if !ok {
			rs = sc.addResolver(d.Resolver)
			rsyms[d.Resolver] = rs
		}
		sc.rsym[i] = rs
		dur := d.Duration()
		if sc.resCounts[rs] == 0 || dur < sc.resMins[rs] {
			sc.resMins[rs] = dur
		}
		sc.resCounts[rs]++
	}
}

// symChunk is one worker's private intern state over a contiguous range
// of records.
type symChunk struct {
	names     *trace.SymbolTable
	resAddrs  []netip.Addr
	resCounts []int
	resMins   []time.Duration
}

// buildParallel is the chunked build: a parallel local pass, a serial
// merge over the (small) chunk tables, and a parallel renumber pass.
func (sc *sidecars) buildParallel(ctx context.Context, workers int, dns []trace.DNSRecord) error {
	parts := parallel.Chunks(len(dns), parallel.Workers(workers))
	chunks := make([]symChunk, len(parts))

	// Local pass: intern into the chunk's private table (local symbols
	// land in qsym/rsym), compute expiries, and fuse the per-resolver
	// count/min stats. Disjoint ranges, no shared writes.
	err := parallel.ForEach(ctx, workers, len(parts), func(c int) error {
		rg := parts[c]
		ch := &chunks[c]
		ch.names = trace.NewSymbolTable()
		rsyms := make(map[netip.Addr]int32, 8)
		for i := rg.Lo; i < rg.Hi; i++ {
			d := &dns[i]
			sc.qsym[i] = ch.names.Intern(d.Query)
			sc.expiry[i] = d.ExpiresAt()
			rs, ok := rsyms[d.Resolver]
			if !ok {
				rs = int32(len(ch.resAddrs))
				rsyms[d.Resolver] = rs
				ch.resAddrs = append(ch.resAddrs, d.Resolver)
				ch.resCounts = append(ch.resCounts, 0)
				ch.resMins = append(ch.resMins, 0)
			}
			sc.rsym[i] = rs
			dur := d.Duration()
			if ch.resCounts[rs] == 0 || dur < ch.resMins[rs] {
				ch.resMins[rs] = dur
			}
			ch.resCounts[rs]++
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Merge: re-intern each chunk table in chunk order. A chunk table's
	// order is its range's first-appearance order, so the global table
	// comes out in whole-input first-appearance order — the same
	// numbering the serial pass assigns. Cost is O(distinct names), not
	// O(records).
	qremap := make([][]trace.Sym, len(chunks))
	rremap := make([][]int32, len(chunks))
	grsyms := make(map[netip.Addr]int32, 8)
	for c := range chunks {
		ch := &chunks[c]
		qm := make([]trace.Sym, ch.names.Len())
		for j := range qm {
			qm[j] = sc.names.Intern(ch.names.Name(trace.Sym(j)))
		}
		qremap[c] = qm
		rm := make([]int32, len(ch.resAddrs))
		for j, addr := range ch.resAddrs {
			g, ok := grsyms[addr]
			if !ok {
				g = sc.addResolver(addr)
				grsyms[addr] = g
			}
			rm[j] = g
			if sc.resCounts[g] == 0 || ch.resMins[j] < sc.resMins[g] {
				sc.resMins[g] = ch.resMins[j]
			}
			sc.resCounts[g] += ch.resCounts[j]
		}
		rremap[c] = rm
	}

	// Renumber pass: rewrite the chunk-local symbols in place through the
	// per-chunk remap tables. Disjoint ranges again.
	return parallel.ForEach(ctx, workers, len(parts), func(c int) error {
		rg := parts[c]
		qm, rm := qremap[c], rremap[c]
		for i := rg.Lo; i < rg.Hi; i++ {
			sc.qsym[i] = qm[sc.qsym[i]]
			sc.rsym[i] = rm[sc.rsym[i]]
		}
		return nil
	})
}
