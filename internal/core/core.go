// Package core implements the paper's analysis pipeline: DN-Hunter pairing
// of connections to the DNS lookups they use, the blocking heuristic, the
// N/LC/P/SC/R classification of DNS information origin, the performance
// and per-resolver analyses, and the whole-house-cache and refresh
// what-if simulations. Everything consumes only the two trace datasets
// (dns.log / conn.log equivalents), exactly as the paper's passive
// vantage point allows.
package core

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"dnscontext/internal/obs"
	"dnscontext/internal/parallel"
	"dnscontext/internal/trace"
)

// Class is the DNS-information origin of a connection (Table 2).
type Class uint8

// The five classes of Table 2.
const (
	// ClassN uses no DNS information at all.
	ClassN Class = iota
	// ClassLC uses a record already in a local cache (previously used).
	ClassLC
	// ClassP benefits from a speculative (prefetched, never-used) lookup.
	ClassP
	// ClassSC blocks on a lookup served from the shared resolver's cache.
	ClassSC
	// ClassR blocks on a lookup requiring authoritative resolution.
	ClassR
	numClasses
)

// String returns the paper's symbol for the class.
func (c Class) String() string {
	switch c {
	case ClassN:
		return "N"
	case ClassLC:
		return "LC"
	case ClassP:
		return "P"
	case ClassSC:
		return "SC"
	case ClassR:
		return "R"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// PairingPolicy selects how ambiguous pairings are broken (§4).
type PairingPolicy uint8

// Pairing policies.
const (
	// PairMostRecent pairs with the most recent candidate (DN-Hunter).
	PairMostRecent PairingPolicy = iota
	// PairRandom pairs with a uniformly random non-expired candidate —
	// the paper's robustness check on centralized-hosting ambiguity.
	PairRandom
)

// Options parameterizes an analysis run. The defaults mirror the paper.
type Options struct {
	// BlockThreshold separates blocked from non-blocked connections
	// (paper: a conservative 100 ms; the observed knee is near 20 ms).
	BlockThreshold time.Duration
	// KneeThreshold is the visual knee reported alongside Figure 1.
	KneeThreshold time.Duration
	// SCRMinSamples caps the per-resolver sample gate for deriving SC/R
	// duration thresholds. The paper used 1000 lookups (of its 9.2M);
	// the analysis scales that proportion to the trace size (floor 50)
	// and never exceeds this cap.
	SCRMinSamples int
	// DefaultSCThreshold applies to unpopular resolvers (paper: 5 ms).
	DefaultSCThreshold time.Duration
	// Pairing selects the pairing policy.
	Pairing PairingPolicy
	// Seed drives the random pairing policy.
	Seed uint64
	// InsignificantAbs / InsignificantRel are §6's two independent
	// "insignificant DNS cost" criteria: absolute lookup time and
	// fractional contribution to the transaction.
	InsignificantAbs time.Duration
	InsignificantRel float64
	// Workers bounds the analysis worker pool. Zero (the default) uses
	// GOMAXPROCS. The result is bit-identical for every worker count:
	// work is sharded by originating client and each shard carries its
	// own RNG stream seeded from Seed and the shard ID.
	Workers int
	// IngestWorkers bounds the goroutines AnalyzeSource uses to parse a
	// streaming source's TSV input (sources that support it: see
	// trace.ScannerSource.SetIngestWorkers). Positive values select that
	// many parse workers; zero (the default) inherits the resolved
	// Workers pool width; negative forces the serial scanner. Like
	// Workers, the setting never changes results — the chunked scan
	// replays records, quarantine decisions, and errors in exact serial
	// order — only wall-clock time. Ignored by Analyze/AnalyzeContext,
	// which do not parse input.
	IngestWorkers int
	// Metrics, when non-nil, receives analyzer counters (connections per
	// class, shard count). Observation never feeds back into the pipeline,
	// so seeded runs are bit-identical with or without a registry.
	Metrics *obs.Registry
	// Trace, when non-nil, records the run's phase timeline and per-shard
	// work distribution. Same no-feedback guarantee as Metrics.
	Trace *obs.Tracer
	// Checkpoint, when non-nil with a Path, snapshots classify progress
	// so a killed run can resume bit-identically (see the Checkpoint
	// type in resume.go). Like Metrics/Trace it never influences the
	// result, only whether work is recomputed or replayed.
	Checkpoint *Checkpoint
	// MemoryBudget bounds how many bytes of trace records AnalyzeSource
	// keeps resident before spilling to disk. Zero (the default) means
	// unlimited: the whole source is ingested in memory and the full
	// in-memory pipeline runs. A nonzero budget never changes the
	// analysis result, only whether it is computed in core or out of
	// core — and whether the returned Analysis carries the dataset
	// (see Analysis.Summary). Ignored by Analyze/AnalyzeContext, which
	// by definition already hold the dataset.
	MemoryBudget int64
	// SpillDir is where AnalyzeSource puts spill partitions when the
	// memory budget trips. Empty means a fresh directory under the OS
	// temp dir, removed when the analysis finishes.
	SpillDir string
	// SpillParts is the number of hash partitions records spill into
	// (per stream). Zero means the default (32). Each partition must
	// fit in memory during the classify phase, so a trace N bytes over
	// budget wants SpillParts comfortably above N/budget.
	SpillParts int
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{
		BlockThreshold:     100 * time.Millisecond,
		KneeThreshold:      20 * time.Millisecond,
		SCRMinSamples:      1000,
		DefaultSCThreshold: 5 * time.Millisecond,
		Pairing:            PairMostRecent,
		Seed:               1,
		InsignificantAbs:   20 * time.Millisecond,
		InsignificantRel:   0.01,
	}
}

// withDefaults fills zero-valued options with the paper's parameters, so
// a partially populated Options behaves sensibly.
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.BlockThreshold <= 0 {
		o.BlockThreshold = d.BlockThreshold
	}
	if o.KneeThreshold <= 0 {
		o.KneeThreshold = d.KneeThreshold
	}
	if o.SCRMinSamples <= 0 {
		o.SCRMinSamples = d.SCRMinSamples
	}
	if o.DefaultSCThreshold <= 0 {
		o.DefaultSCThreshold = d.DefaultSCThreshold
	}
	if o.InsignificantAbs <= 0 {
		o.InsignificantAbs = d.InsignificantAbs
	}
	if o.InsignificantRel <= 0 {
		o.InsignificantRel = d.InsignificantRel
	}
	return o
}

// PairedConn is one connection with its pairing and classification.
type PairedConn struct {
	// Conn indexes into the dataset's connection slice.
	Conn int
	// DNS indexes the paired DNS record, or -1 for unpaired connections.
	DNS int
	// Gap is conn start minus DNS completion (meaningless when DNS < 0).
	Gap time.Duration
	// FirstUse is true when this is the earliest connection paired with
	// the DNS record.
	FirstUse bool
	// UsedExpired is true when the connection started after the paired
	// record's TTL expiry.
	UsedExpired bool
	// Candidates is the number of non-expired records containing the
	// destination address at pairing time (§4's ambiguity measure).
	Candidates int
	// Class is the Table 2 classification.
	Class Class
}

// Analysis is the full per-connection view plus the index structures the
// table/figure computations need.
type Analysis struct {
	Opts Options
	DS   *trace.Dataset
	// Paired has one entry per connection, in dataset order.
	Paired []PairedConn
	// DNSUsed marks DNS records used by at least one connection.
	DNSUsed []bool
	// Thresholds maps resolver address (as string) to the SC/R duration
	// threshold derived for it.
	Thresholds map[string]time.Duration

	// classCounts tallies connections per class, computed once during
	// classification so Count and Fraction are O(1).
	classCounts [numClasses]int
	// Symbol sidecar, built once (serially, so numbering is a function of
	// dataset order alone) before the parallel phases. qsym/rsym/expiry
	// are indexed by DNS record position and turn the hot paths'
	// string-keyed maps and repeated MinTTL scans into slice lookups.
	names  *trace.SymbolTable // query-name symbols
	qsym   []trace.Sym        // per DNS record: query-name symbol
	rsym   []int32            // per DNS record: resolver symbol
	expiry []time.Duration    // per DNS record: precomputed ExpiresAt()
	// resolverAddrs maps resolver symbols back to addresses
	// (first-appearance order); resCounts/resMins are each resolver's
	// lookup count and minimum duration, fused into the symbol pass so
	// deriveThresholds makes no pass of its own; thByRsym is Thresholds
	// as a dense slice.
	resolverAddrs []netip.Addr
	resCounts     []int
	resMins       []time.Duration
	thByRsym      []time.Duration
	// shards partitions the dataset by originating client in
	// first-appearance order. Clients are houses (the monitor sees one
	// NAT'd address per residence), so the shards also drive the
	// per-house what-if simulations. Shard IDs seed the per-shard RNG
	// streams, which is why the order must be deterministic.
	shards []clientShard
	// refreshOnce guards authTTL/window, the lazily derived inputs shared
	// by every refresh-policy simulation (possibly running concurrently).
	// authTTL is indexed by query-name symbol.
	refreshOnce sync.Once
	authTTL     []time.Duration
	window      time.Duration
	// fp caches the dataset fingerprint checkpoints key on (resume.go).
	fp uint64

	// Summary-grade state. An Analysis reduced from streamed shards
	// (AnalyzeSource over a source bigger than the memory budget, or
	// AnalysisShard.Finalize) has no resident dataset: DS and Paired are
	// nil, and the totals, failure stats, and per-connection digest
	// computed during the reduce live here instead. The in-memory path
	// fills the totals too, so accessors shared by both grades
	// (Count/Fraction/Table2/Failures/...) read them uniformly.
	summary   bool
	dnsTotal  int
	connTotal int
	failures  *FailureStats
	// digestOnce guards digest, the order-independent FNV fold over
	// every per-connection outcome (see shard.go). For a summary
	// analysis it is set during the reduce; for a full analysis it is
	// derived on demand from Paired.
	digestOnce sync.Once
	digest     uint64
}

// Summary reports whether the analysis is summary-grade: reduced from
// streamed shards without a resident dataset. Classification totals
// (Count, Fraction, Table2, BlockedFraction, SharedCacheHitRate),
// Thresholds, Failures, Digest, and WriteSummary are available either
// way; the table/figure computations that walk the raw records (Report's
// full form, Figure1/2/3, PerHouse, WholeHouse, refresh simulations)
// need a full analysis.
func (a *Analysis) Summary() bool { return a.summary }

// TotalConns is the number of connections the analysis covers, resident
// or not.
func (a *Analysis) TotalConns() int { return a.connTotal }

// TotalDNS is the number of DNS transactions the analysis covers.
func (a *Analysis) TotalDNS() int { return a.dnsTotal }

// clientShard is one per-client slice of the dataset: the client's
// connection and DNS record indices, each ascending (= time order).
type clientShard struct {
	client netip.Addr
	conns  []int32
	dns    []int32
}

// buildSymbols fills the symbol sidecar: query names intern to dense
// symbols, resolvers number in first-appearance order, and each record's
// TTL expiry is computed once instead of on every pairing probe. Large
// inputs build in parallel chunks (see symbols.go); the numbering is a
// function of dataset order alone either way.
func (a *Analysis) buildSymbols(ctx context.Context) error {
	sc, err := buildSidecars(ctx, a.Opts.Workers, a.DS.DNS)
	if err != nil {
		return err
	}
	a.adoptSidecars(sc)
	return nil
}

// adoptSidecars installs a prebuilt sidecar bundle — either from this
// run's buildSymbols or one a streaming ingest built concurrently with
// its connection scan.
func (a *Analysis) adoptSidecars(sc *sidecars) {
	a.names, a.qsym, a.rsym, a.expiry = sc.names, sc.qsym, sc.rsym, sc.expiry
	a.resolverAddrs, a.resCounts, a.resMins = sc.resolverAddrs, sc.resCounts, sc.resMins
}

// buildShards partitions the (time-sorted) dataset by client. Pairing
// only ever matches a connection with lookups from the same originator,
// so the shards touch disjoint ranges of Paired and DNSUsed and can be
// classified concurrently without locks. Grouping runs on the worker
// pool (counting-pass sharding, see parallel.ShardByParallel) with the
// same first-appearance shard order at every width; the only error is
// context cancellation.
func (a *Analysis) buildShards(ctx context.Context) error {
	connShards, err := parallel.ShardByParallel(ctx, a.Opts.Workers, len(a.DS.Conns),
		func(i int) netip.Addr { return a.DS.Conns[i].Orig })
	if err != nil {
		return err
	}
	dnsShards, err := parallel.ShardByParallel(ctx, a.Opts.Workers, len(a.DS.DNS),
		func(i int) netip.Addr { return a.DS.DNS[i].Client })
	if err != nil {
		return err
	}
	dnsOf := make(map[netip.Addr][]int32, len(dnsShards))
	for _, s := range dnsShards {
		dnsOf[s.Key] = s.Items
	}
	a.shards = make([]clientShard, 0, len(connShards))
	for _, s := range connShards {
		a.shards = append(a.shards, clientShard{client: s.Key, conns: s.Items, dns: dnsOf[s.Key]})
		delete(dnsOf, s.Key)
	}
	// Clients that only issued lookups still get (connection-less) shards
	// so the shard set partitions the DNS dataset completely.
	for _, s := range dnsShards {
		if items, ok := dnsOf[s.Key]; ok {
			a.shards = append(a.shards, clientShard{client: s.Key, dns: items})
		}
	}
	return nil
}

// Count returns the number of connections in class c.
func (a *Analysis) Count(c Class) int {
	if c >= numClasses {
		return 0
	}
	return a.classCounts[c]
}

// Fraction returns the fraction of connections in class c.
func (a *Analysis) Fraction(c Class) float64 {
	if a.connTotal == 0 {
		return 0
	}
	return float64(a.Count(c)) / float64(a.connTotal)
}
