// Package monitor implements "zeeklite": a Bro/Zeek-style passive network
// monitor that reconstructs the paper's two datasets — DNS transaction
// records and connection summaries — from raw packets, plus the inverse
// (a wire synthesizer that renders a dataset as packets). Together they
// let integration tests prove that the fast event-level pipeline and the
// packet-level pipeline agree, and they give the cmd/zeeklite binary a
// real pcap-processing path.
package monitor

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"dnscontext/internal/dnswire"
	"dnscontext/internal/pcap"
	"dnscontext/internal/trace"
)

// SynthOptions configures wire synthesis.
type SynthOptions struct {
	// MaxBytesPerConn truncates each connection's per-direction payload to
	// keep captures manageable, like a snaplen budget. <=0 means 256 KiB.
	MaxBytesPerConn int64
	// ChunkSize is the payload bytes per data packet (default 32 KiB,
	// capped to fit an IPv4 datagram).
	ChunkSize int
}

func (o *SynthOptions) normalize() {
	if o.MaxBytesPerConn <= 0 {
		o.MaxBytesPerConn = 256 << 10
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 32 << 10
	}
	if o.ChunkSize > 60000 {
		o.ChunkSize = 60000
	}
}

// FrameSink receives synthesized frames in chronological order.
type FrameSink func(ts time.Duration, frame []byte) error

// event is one pending frame emission.
type synthEvent struct {
	ts    time.Duration
	frame []byte
}

// Synthesize renders ds as Ethernet frames delivered to sink in
// chronological order. Connection payloads are truncated per
// opts.MaxBytesPerConn (ApplyByteCap produces the matching truncated
// dataset for comparison).
func Synthesize(ds *trace.Dataset, opts SynthOptions, sink FrameSink) error {
	opts.normalize()
	var events []synthEvent
	add := func(ts time.Duration, frame []byte, err error) error {
		if err != nil {
			return err
		}
		events = append(events, synthEvent{ts: ts, frame: frame})
		return nil
	}

	for i := range ds.DNS {
		d := &ds.DNS[i]
		sport := uint16(20000 + d.ID%40000)
		q := dnswire.NewQuery(d.ID, d.Query, dnswire.Type(d.QType))
		qb, err := q.Encode()
		if err != nil {
			return fmt.Errorf("monitor: encoding query %q: %w", d.Query, err)
		}
		frame, err := pcap.BuildUDP(d.Client, d.Resolver, sport, 53, qb)
		if err = add(d.QueryTS, frame, err); err != nil {
			return err
		}
		resp := dnswire.NewResponse(q, dnswire.RCode(d.RCode))
		resp.Header.RecursionAvailable = true
		for _, a := range d.Answers {
			ttl := uint32(a.TTL / time.Second)
			resp.AddAnswerA(d.Query, a.Addr, ttl)
		}
		rb, err := resp.Encode()
		if err != nil {
			return fmt.Errorf("monitor: encoding response %q: %w", d.Query, err)
		}
		frame, err = pcap.BuildUDP(d.Resolver, d.Client, 53, sport, rb)
		if err = add(d.TS, frame, err); err != nil {
			return err
		}
	}

	for i := range ds.Conns {
		c := &ds.Conns[i]
		if err := synthConn(c, opts, add); err != nil {
			return err
		}
	}

	sortEvents(events)
	for _, ev := range events {
		if err := sink(ev.ts, ev.frame); err != nil {
			return err
		}
	}
	return nil
}

func synthConn(c *trace.ConnRecord, opts SynthOptions, add func(time.Duration, []byte, error) error) error {
	ob := min64(c.OrigBytes, opts.MaxBytesPerConn)
	rb := min64(c.RespBytes, opts.MaxBytesPerConn)
	end := c.TS + c.Duration

	if c.Proto == trace.UDP {
		// First datagram opens the flow; payload spread over a handful of
		// datagrams; the final datagram lands at the flow end.
		if err := emitChunks(c.Orig, c.Resp, c.OrigPort, c.RespPort, trace.UDP, ob, c.TS, end, opts, add, 0); err != nil {
			return err
		}
		if rb > 0 {
			if err := emitChunks(c.Resp, c.Orig, c.RespPort, c.OrigPort, trace.UDP, rb, c.TS+1, end, opts, add, 0); err != nil {
				return err
			}
		}
		// Guarantee packets exactly at the flow boundaries: an opening
		// datagram for zero-byte flows, and a closing datagram so the
		// monitor reconstructs the duration.
		if ob == 0 && rb == 0 {
			frame, err := pcap.BuildUDP(c.Orig, c.Resp, c.OrigPort, c.RespPort, nil)
			if err := add(c.TS, frame, err); err != nil {
				return err
			}
		}
		if c.Duration > 0 {
			// Keepalives hold long flows together across the monitor's
			// 60 s idle timeout (QUIC pings do this on real wires), and a
			// final datagram pins the flow end.
			for off := 45 * time.Second; off < c.Duration; off += 45 * time.Second {
				frame, err := pcap.BuildUDP(c.Orig, c.Resp, c.OrigPort, c.RespPort, nil)
				if err := add(c.TS+off, frame, err); err != nil {
					return err
				}
			}
			frame, err := pcap.BuildUDP(c.Orig, c.Resp, c.OrigPort, c.RespPort, nil)
			if err := add(end, frame, err); err != nil {
				return err
			}
		}
		return nil
	}

	// TCP: SYN / SYN-ACK handshake, data, FIN pair at the end.
	syn, err := pcap.BuildTCP(c.Orig, c.Resp, c.OrigPort, c.RespPort, 0, 0, pcap.FlagSYN, nil)
	if err := add(c.TS, syn, err); err != nil {
		return err
	}
	synack, err := pcap.BuildTCP(c.Resp, c.Orig, c.RespPort, c.OrigPort, 0, 1, pcap.FlagSYN|pcap.FlagACK, nil)
	if err := add(c.TS+time.Microsecond, synack, err); err != nil {
		return err
	}
	if err := emitChunks(c.Orig, c.Resp, c.OrigPort, c.RespPort, trace.TCP, ob, c.TS+2*time.Microsecond, end, opts, add, 1); err != nil {
		return err
	}
	if err := emitChunks(c.Resp, c.Orig, c.RespPort, c.OrigPort, trace.TCP, rb, c.TS+3*time.Microsecond, end, opts, add, 1); err != nil {
		return err
	}
	fin, err := pcap.BuildTCP(c.Orig, c.Resp, c.OrigPort, c.RespPort, uint32(1+ob), 0, pcap.FlagFIN|pcap.FlagACK, nil)
	if err := add(end, fin, err); err != nil {
		return err
	}
	finack, err := pcap.BuildTCP(c.Resp, c.Orig, c.RespPort, c.OrigPort, uint32(1+rb), uint32(2+ob), pcap.FlagFIN|pcap.FlagACK, nil)
	return add(end, finack, err)
}

// emitChunks spreads total payload bytes over data packets between start
// and end (exclusive of the connection-closing packets).
func emitChunks(src, dst netip.Addr, sport, dport uint16, proto trace.Proto, total int64, start, end time.Duration, opts SynthOptions, add func(time.Duration, []byte, error) error, seq0 int64) error {
	if total <= 0 {
		return nil
	}
	n := int((total + int64(opts.ChunkSize) - 1) / int64(opts.ChunkSize))
	span := end - start
	if span < 0 {
		span = 0
	}
	sent := int64(0)
	for i := 0; i < n; i++ {
		size := int64(opts.ChunkSize)
		if total-sent < size {
			size = total - sent
		}
		ts := start
		if n > 1 {
			ts = start + time.Duration(int64(span)*int64(i)/int64(n))
		}
		payload := make([]byte, size)
		var frame []byte
		var err error
		if proto == trace.UDP {
			frame, err = pcap.BuildUDP(src, dst, sport, dport, payload)
		} else {
			frame, err = pcap.BuildTCP(src, dst, sport, dport, uint32(seq0+sent), 0, pcap.FlagACK|pcap.FlagPSH, payload)
		}
		if err := add(ts, frame, err); err != nil {
			return err
		}
		sent += size
	}
	return nil
}

// ApplyByteCap returns a copy of ds with each connection's per-direction
// bytes truncated the same way Synthesize truncates them, so monitor
// output can be compared against it exactly.
func ApplyByteCap(ds *trace.Dataset, opts SynthOptions) *trace.Dataset {
	opts.normalize()
	out := &trace.Dataset{DNS: ds.DNS, Conns: make([]trace.ConnRecord, len(ds.Conns))}
	copy(out.Conns, ds.Conns)
	for i := range out.Conns {
		out.Conns[i].OrigBytes = min64(out.Conns[i].OrigBytes, opts.MaxBytesPerConn)
		out.Conns[i].RespBytes = min64(out.Conns[i].RespBytes, opts.MaxBytesPerConn)
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func sortEvents(events []synthEvent) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].ts < events[j].ts })
}
