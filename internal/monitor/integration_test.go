package monitor

import (
	"fmt"
	"testing"
	"time"

	"dnscontext/internal/households"
	"dnscontext/internal/trace"
)

// TestPacketPathMatchesEventPath is the pipeline equivalence check
// promised in DESIGN.md: generating a trace, rendering it as packets, and
// reconstructing it with the zeeklite monitor must yield the same two
// datasets the generator emitted directly (modulo the synthesizer's
// per-connection byte cap and 1-second wire TTL granularity).
func TestPacketPathMatchesEventPath(t *testing.T) {
	cfg := households.SmallConfig(99)
	cfg.Houses = 4
	cfg.Duration = 45 * time.Minute
	cfg.Warmup = 45 * time.Minute
	ds, _, err := households.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.DNS) < 100 || len(ds.Conns) < 100 {
		t.Fatalf("trace too small to be meaningful: %d/%d", len(ds.DNS), len(ds.Conns))
	}

	opts := SynthOptions{MaxBytesPerConn: 32 << 10}
	m := New(DefaultOptions())
	err = Synthesize(ds, opts, func(ts time.Duration, frame []byte) error {
		m.FeedFrame(ts, frame)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.DecodeErrors != 0 || m.DNSParseErrs != 0 {
		t.Fatalf("monitor errors: decode=%d dns=%d", m.DecodeErrors, m.DNSParseErrs)
	}
	got := m.Flush()
	want := ApplyByteCap(ds, opts)
	want.SortByTime()

	if len(got.DNS) != len(want.DNS) {
		t.Fatalf("DNS records: got %d, want %d", len(got.DNS), len(want.DNS))
	}
	if len(got.Conns) != len(want.Conns) {
		t.Fatalf("conns: got %d, want %d", len(got.Conns), len(want.Conns))
	}

	// DNS records: key by (client, id, qtype) — unique per house in the
	// generator.
	type dnsKey struct {
		client string
		id     uint16
		qtype  uint16
	}
	wantDNS := make(map[dnsKey]*trace.DNSRecord, len(want.DNS))
	for i := range want.DNS {
		d := &want.DNS[i]
		wantDNS[dnsKey{d.Client.String(), d.ID, d.QType}] = d
	}
	for i := range got.DNS {
		g := &got.DNS[i]
		w, ok := wantDNS[dnsKey{g.Client.String(), g.ID, g.QType}]
		if !ok {
			t.Fatalf("unexpected DNS record %+v", g)
		}
		if g.Query != w.Query || g.Resolver != w.Resolver {
			t.Fatalf("DNS identity mismatch:\ngot  %+v\nwant %+v", g, w)
		}
		if g.QueryTS != w.QueryTS || g.TS != w.TS {
			t.Fatalf("DNS timing mismatch for %s: %v/%v vs %v/%v",
				g.Query, g.QueryTS, g.TS, w.QueryTS, w.TS)
		}
		if len(g.Answers) != len(w.Answers) {
			t.Fatalf("answer count mismatch for %s: %d vs %d", g.Query, len(g.Answers), len(w.Answers))
		}
		for j := range g.Answers {
			if g.Answers[j].Addr != w.Answers[j].Addr {
				t.Fatalf("answer addr mismatch for %s", g.Query)
			}
			dttl := g.Answers[j].TTL - w.Answers[j].TTL
			if dttl < -time.Second || dttl > time.Second {
				t.Fatalf("answer TTL mismatch for %s: %v vs %v", g.Query, g.Answers[j].TTL, w.Answers[j].TTL)
			}
		}
	}

	// Connections: key by the 5-tuple (ephemeral ports make these unique
	// in a short window).
	key := func(c *trace.ConnRecord) string {
		return fmt.Sprintf("%s/%s:%d>%s:%d", c.Proto, c.Orig, c.OrigPort, c.Resp, c.RespPort)
	}
	wantConns := make(map[string]*trace.ConnRecord, len(want.Conns))
	for i := range want.Conns {
		wantConns[key(&want.Conns[i])] = &want.Conns[i]
	}
	for i := range got.Conns {
		g := &got.Conns[i]
		w, ok := wantConns[key(g)]
		if !ok {
			t.Fatalf("unexpected conn %+v", g)
		}
		if g.TS != w.TS || g.Duration != w.Duration {
			t.Fatalf("conn timing mismatch %s: %v+%v vs %v+%v", key(g), g.TS, g.Duration, w.TS, w.Duration)
		}
		if g.OrigBytes != w.OrigBytes || g.RespBytes != w.RespBytes {
			t.Fatalf("conn bytes mismatch %s: %d/%d vs %d/%d", key(g), g.OrigBytes, g.RespBytes, w.OrigBytes, w.RespBytes)
		}
	}
}
