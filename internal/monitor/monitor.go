package monitor

import (
	"fmt"
	"net/netip"
	"time"

	"dnscontext/internal/dnswire"
	"dnscontext/internal/obs"
	"dnscontext/internal/pcap"
	"dnscontext/internal/trace"
)

// Options configures the passive monitor.
type Options struct {
	// UDPTimeout delineates UDP "connections": a flow ends this long
	// after its last packet (the paper's Bro configuration uses 60 s).
	UDPTimeout time.Duration
	// LocalNet decides which endpoint is "inside" (the originator for
	// UDP flows whose first packet we may have missed). Defaults to
	// 10.0.0.0/8.
	LocalNet netip.Prefix
	// DecodeBudget bounds undecodable frames. Nil keeps the historical
	// behaviour: decode errors are counted but never fatal. With a
	// budget, once trace.ErrorBudget.Exceeded(decode errors, frames fed)
	// reports true the monitor latches an error (see Err) and ignores
	// further input — the degradation analogue of a scanner's quarantine
	// budget tripping.
	DecodeBudget *trace.ErrorBudget
}

// DefaultOptions mirrors the paper's Bro setup.
func DefaultOptions() Options {
	return Options{
		UDPTimeout: 60 * time.Second,
		LocalNet:   netip.MustParsePrefix("10.0.0.0/8"),
	}
}

// Monitor consumes packets in capture order and reconstructs the two
// datasets. It is the moral equivalent of running Bro's dns and conn
// policy scripts at the ISP aggregation point.
type Monitor struct {
	opts Options
	ds   trace.Dataset

	pendingDNS map[dnsKey]pendingQuery
	flows      map[pcap.Flow]*flowState

	// Decode/parse failures are counted, not fatal: a passive monitor
	// must survive garbage.
	DecodeErrors uint64
	DNSParseErrs uint64

	// frames counts frames handed to FeedFrame (the denominator for the
	// decode budget's rate check); err latches the budget trip.
	frames int
	err    error

	// Optional observability mirrors of the error tallies plus feed
	// volume; nil instruments are no-ops. See Observe.
	obsPackets    *obs.Counter
	obsDecodeErrs *obs.Counter
	obsParseErrs  *obs.Counter
	obsDNSRecords *obs.Counter
}

// Observe registers the monitor's metric families with reg and mirrors
// future activity into them: packets fed, frame decode errors, DNS parse
// errors, and DNS records reconstructed. A nil registry is a no-op.
func (m *Monitor) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.obsPackets = reg.Counter("dnsctx_monitor_packets_total",
		"Packets fed to the passive monitor.")
	m.obsDecodeErrs = reg.Counter("dnsctx_monitor_decode_errors_total",
		"Frames the packet decoder rejected.")
	m.obsParseErrs = reg.Counter("dnsctx_monitor_dns_parse_errors_total",
		"Port-53 payloads rejected by the DNS codec (or unsolicited responses).")
	m.obsDNSRecords = reg.Counter("dnsctx_monitor_dns_records_total",
		"DNS transaction records reconstructed from query/response pairs.")
}

type dnsKey struct {
	client   netip.Addr
	resolver netip.Addr
	port     uint16
	id       uint16
}

type pendingQuery struct {
	ts    time.Duration
	query string
	qtype uint16
}

type flowState struct {
	conn      trace.ConnRecord
	lastSeen  time.Duration
	finOrig   bool
	finResp   bool
	endTS     time.Duration
	sawSYN    bool
	tcpClosed bool
}

// New returns an empty monitor.
func New(opts Options) *Monitor {
	if opts.UDPTimeout <= 0 {
		opts.UDPTimeout = 60 * time.Second
	}
	if !opts.LocalNet.IsValid() {
		opts.LocalNet = netip.MustParsePrefix("10.0.0.0/8")
	}
	return &Monitor{
		opts:       opts,
		pendingDNS: make(map[dnsKey]pendingQuery),
		flows:      make(map[pcap.Flow]*flowState),
	}
}

// FeedFrame decodes one frame and feeds it. ts is the capture offset from
// the window start. Once the decode budget has tripped (see Options.
// DecodeBudget and Err), frames are ignored.
func (m *Monitor) FeedFrame(ts time.Duration, frame []byte) {
	if m.err != nil {
		return
	}
	m.frames++
	p, err := pcap.DecodePacket(time.Time{}, frame)
	if err != nil {
		m.DecodeErrors++
		m.obsDecodeErrs.Inc()
		if b := m.opts.DecodeBudget; b != nil && b.Exceeded(int(m.DecodeErrors), m.frames) {
			m.err = fmt.Errorf("monitor: %w: %d of %d frames undecodable (last: %v)",
				trace.ErrBudgetExceeded, m.DecodeErrors, m.frames, err)
		}
		return
	}
	m.Feed(ts, p)
}

// Err reports the latched decode-budget error, or nil while the monitor
// is still ingesting. Once non-nil, FeedFrame ignores further input.
func (m *Monitor) Err() error { return m.err }

// Feed processes one decoded packet.
func (m *Monitor) Feed(ts time.Duration, p *pcap.Packet) {
	m.obsPackets.Inc()
	m.expireUDP(ts)
	switch {
	case p.UDP != nil && (p.UDP.SrcPort == 53 || p.UDP.DstPort == 53):
		m.feedDNS(ts, p)
	case p.UDP != nil:
		m.feedUDP(ts, p)
	case p.TCP != nil:
		m.feedTCP(ts, p)
	}
}

func (m *Monitor) feedDNS(ts time.Duration, p *pcap.Packet) {
	msg, err := dnswire.Decode(p.UDP.Payload)
	if err != nil {
		m.DNSParseErrs++
		m.obsParseErrs.Inc()
		return
	}
	if len(msg.Questions) == 0 {
		m.DNSParseErrs++
		m.obsParseErrs.Inc()
		return
	}
	q := msg.Questions[0]
	if !msg.Header.Response {
		k := dnsKey{client: p.SrcAddr(), resolver: p.DstAddr(), port: p.UDP.SrcPort, id: msg.Header.ID}
		m.pendingDNS[k] = pendingQuery{ts: ts, query: q.Name, qtype: uint16(q.Type)}
		return
	}
	k := dnsKey{client: p.DstAddr(), resolver: p.SrcAddr(), port: p.UDP.DstPort, id: msg.Header.ID}
	pq, ok := m.pendingDNS[k]
	if !ok {
		// Unsolicited response; Bro logs these specially, we drop them.
		m.DNSParseErrs++
		m.obsParseErrs.Inc()
		return
	}
	delete(m.pendingDNS, k)
	rec := trace.DNSRecord{
		QueryTS:  pq.ts,
		TS:       ts,
		Client:   k.client,
		Resolver: k.resolver,
		ID:       msg.Header.ID,
		Query:    pq.query,
		QType:    pq.qtype,
		RCode:    uint8(msg.Header.RCode),
	}
	for _, rr := range msg.Answers {
		if rr.Type == dnswire.TypeA || rr.Type == dnswire.TypeAAAA {
			rec.Answers = append(rec.Answers, trace.Answer{
				Addr: rr.Addr,
				TTL:  time.Duration(rr.TTL) * time.Second,
			})
		}
	}
	m.ds.DNS = append(m.ds.DNS, rec)
	m.obsDNSRecords.Inc()
}

func (m *Monitor) feedTCP(ts time.Duration, p *pcap.Packet) {
	f := p.Flow()
	key := f.Canonical()
	st, ok := m.flows[key]
	if !ok {
		st = &flowState{}
		st.conn.Proto = trace.TCP
		// The SYN sender is the originator; without a SYN, fall back to
		// the local-network side.
		if p.TCP.HasFlags(pcap.FlagSYN) && !p.TCP.HasFlags(pcap.FlagACK) {
			st.sawSYN = true
			st.conn.Orig, st.conn.OrigPort = f.Src, f.SrcPort
			st.conn.Resp, st.conn.RespPort = f.Dst, f.DstPort
		} else {
			st.conn.Orig, st.conn.OrigPort = f.Src, f.SrcPort
			st.conn.Resp, st.conn.RespPort = f.Dst, f.DstPort
			if !m.isLocal(f.Src) && m.isLocal(f.Dst) {
				st.conn.Orig, st.conn.OrigPort = f.Dst, f.DstPort
				st.conn.Resp, st.conn.RespPort = f.Src, f.SrcPort
			}
		}
		st.conn.TS = ts
		m.flows[key] = st
	}
	st.lastSeen = ts
	fromOrig := p.SrcAddr() == st.conn.Orig && p.TCP.SrcPort == st.conn.OrigPort
	if n := int64(len(p.TCP.Payload)); n > 0 {
		if fromOrig {
			st.conn.OrigBytes += n
		} else {
			st.conn.RespBytes += n
		}
	}
	if p.TCP.Flags&(pcap.FlagFIN|pcap.FlagRST) != 0 {
		if p.TCP.Flags&pcap.FlagRST != 0 {
			st.finOrig, st.finResp = true, true
		} else if fromOrig {
			st.finOrig = true
		} else {
			st.finResp = true
		}
		if ts > st.endTS {
			st.endTS = ts
		}
		if st.finOrig && st.finResp && !st.tcpClosed {
			st.tcpClosed = true
			st.conn.Duration = st.endTS - st.conn.TS
			m.ds.Conns = append(m.ds.Conns, st.conn)
			delete(m.flows, key)
		}
	}
}

func (m *Monitor) feedUDP(ts time.Duration, p *pcap.Packet) {
	f := p.Flow()
	key := f.Canonical()
	st, ok := m.flows[key]
	if !ok {
		st = &flowState{}
		st.conn.Proto = trace.UDP
		st.conn.Orig, st.conn.OrigPort = f.Src, f.SrcPort
		st.conn.Resp, st.conn.RespPort = f.Dst, f.DstPort
		if !m.isLocal(f.Src) && m.isLocal(f.Dst) {
			st.conn.Orig, st.conn.OrigPort = f.Dst, f.DstPort
			st.conn.Resp, st.conn.RespPort = f.Src, f.SrcPort
		}
		st.conn.TS = ts
		m.flows[key] = st
	}
	st.lastSeen = ts
	fromOrig := p.SrcAddr() == st.conn.Orig && p.UDP.SrcPort == st.conn.OrigPort
	if n := int64(len(p.UDP.Payload)); n > 0 {
		if fromOrig {
			st.conn.OrigBytes += n
		} else {
			st.conn.RespBytes += n
		}
	}
}

// expireUDP closes UDP flows idle past the timeout, relative to now.
func (m *Monitor) expireUDP(now time.Duration) {
	// Linear scan kept simple; flow tables in tests and examples are
	// small. A production monitor would keep an expiry heap.
	for key, st := range m.flows {
		if st.conn.Proto != trace.UDP {
			continue
		}
		if now-st.lastSeen > m.opts.UDPTimeout {
			st.conn.Duration = st.lastSeen - st.conn.TS
			m.ds.Conns = append(m.ds.Conns, st.conn)
			delete(m.flows, key)
		}
	}
}

func (m *Monitor) isLocal(a netip.Addr) bool { return m.opts.LocalNet.Contains(a) }

// Flush closes every open flow (end of capture) and returns the dataset,
// time-sorted.
func (m *Monitor) Flush() *trace.Dataset {
	for key, st := range m.flows {
		if st.conn.Proto == trace.UDP {
			st.conn.Duration = st.lastSeen - st.conn.TS
		} else {
			end := st.endTS
			if end == 0 {
				end = st.lastSeen
			}
			st.conn.Duration = end - st.conn.TS
		}
		m.ds.Conns = append(m.ds.Conns, st.conn)
		delete(m.flows, key)
	}
	m.ds.SortByTime()
	return &m.ds
}
