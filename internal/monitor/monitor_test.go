package monitor

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnscontext/internal/pcap"
	"dnscontext/internal/trace"
)

var (
	houseA   = netip.MustParseAddr("10.1.0.1")
	remoteA  = netip.MustParseAddr("203.0.0.5")
	resolver = netip.MustParseAddr("10.0.0.2")
)

func sampleDataset() *trace.Dataset {
	return &trace.Dataset{
		DNS: []trace.DNSRecord{{
			QueryTS:  100 * time.Millisecond,
			TS:       105 * time.Millisecond,
			Client:   houseA,
			Resolver: resolver,
			ID:       7,
			Query:    "www.site00001.com",
			QType:    1,
			Answers:  []trace.Answer{{Addr: remoteA, TTL: 300 * time.Second}},
		}},
		Conns: []trace.ConnRecord{
			{
				TS: 110 * time.Millisecond, Duration: 2 * time.Second, Proto: trace.TCP,
				Orig: houseA, OrigPort: 40001, Resp: remoteA, RespPort: 443,
				OrigBytes: 1200, RespBytes: 90000,
			},
			{
				TS: 500 * time.Millisecond, Duration: 0, Proto: trace.UDP,
				Orig: houseA, OrigPort: 40002, Resp: netip.MustParseAddr("198.51.100.123"), RespPort: 123,
				OrigBytes: 48, RespBytes: 48,
			},
		},
	}
}

func runThrough(t *testing.T, ds *trace.Dataset, opts SynthOptions) *trace.Dataset {
	t.Helper()
	m := New(DefaultOptions())
	err := Synthesize(ds, opts, func(ts time.Duration, frame []byte) error {
		m.FeedFrame(ts, frame)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.DecodeErrors != 0 || m.DNSParseErrs != 0 {
		t.Fatalf("monitor errors: decode=%d dns=%d", m.DecodeErrors, m.DNSParseErrs)
	}
	return m.Flush()
}

func TestRoundTripSmall(t *testing.T) {
	in := sampleDataset()
	out := runThrough(t, in, SynthOptions{})

	if len(out.DNS) != 1 {
		t.Fatalf("DNS records: %d", len(out.DNS))
	}
	d := out.DNS[0]
	want := in.DNS[0]
	if d.QueryTS != want.QueryTS || d.TS != want.TS {
		t.Errorf("dns times %v/%v, want %v/%v", d.QueryTS, d.TS, want.QueryTS, want.TS)
	}
	if d.Client != want.Client || d.Resolver != want.Resolver || d.Query != want.Query {
		t.Errorf("dns identity mismatch: %+v", d)
	}
	if len(d.Answers) != 1 || d.Answers[0].Addr != remoteA || d.Answers[0].TTL != 300*time.Second {
		t.Errorf("dns answers %+v", d.Answers)
	}

	if len(out.Conns) != 2 {
		t.Fatalf("conns: %d (%+v)", len(out.Conns), out.Conns)
	}
	// Sorted by TS: TCP conn first.
	tcp := out.Conns[0]
	if tcp.Proto != trace.TCP || tcp.OrigBytes != 1200 || tcp.RespBytes != 90000 {
		t.Errorf("tcp conn %+v", tcp)
	}
	if tcp.TS != 110*time.Millisecond || tcp.Duration != 2*time.Second {
		t.Errorf("tcp timing %v + %v", tcp.TS, tcp.Duration)
	}
	udp := out.Conns[1]
	if udp.Proto != trace.UDP || udp.OrigBytes != 48 || udp.RespBytes != 48 {
		t.Errorf("udp conn %+v", udp)
	}
	if udp.Orig != houseA {
		t.Errorf("udp orig %v", udp.Orig)
	}
}

func TestByteCapTruncates(t *testing.T) {
	in := sampleDataset()
	in.Conns[0].RespBytes = 10 << 20 // 10 MiB
	opts := SynthOptions{MaxBytesPerConn: 64 << 10}
	out := runThrough(t, in, opts)
	if out.Conns[0].RespBytes != 64<<10 {
		t.Fatalf("resp bytes %d, want cap", out.Conns[0].RespBytes)
	}
	capped := ApplyByteCap(in, opts)
	if capped.Conns[0].RespBytes != 64<<10 || in.Conns[0].RespBytes != 10<<20 {
		t.Fatal("ApplyByteCap wrong or mutated input")
	}
}

func TestUDPTimeoutSplitsFlows(t *testing.T) {
	m := New(Options{UDPTimeout: 60 * time.Second})
	mk := func(ts time.Duration) {
		frame, err := pcap.BuildUDP(houseA, remoteA, 5000, 9000, []byte{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		m.FeedFrame(ts, frame)
	}
	mk(0)
	mk(10 * time.Second)
	mk(2 * time.Minute) // >60s gap: new "connection"
	ds := m.Flush()
	if len(ds.Conns) != 2 {
		t.Fatalf("conns %d, want 2", len(ds.Conns))
	}
	if ds.Conns[0].Duration != 10*time.Second {
		t.Fatalf("first flow duration %v", ds.Conns[0].Duration)
	}
}

func TestTCPRSTCloses(t *testing.T) {
	m := New(DefaultOptions())
	syn, _ := pcap.BuildTCP(houseA, remoteA, 40000, 443, 0, 0, pcap.FlagSYN, nil)
	rst, _ := pcap.BuildTCP(remoteA, houseA, 443, 40000, 0, 0, pcap.FlagRST, nil)
	m.FeedFrame(0, syn)
	m.FeedFrame(300*time.Millisecond, rst)
	ds := m.Flush()
	if len(ds.Conns) != 1 || ds.Conns[0].Duration != 300*time.Millisecond {
		t.Fatalf("conns %+v", ds.Conns)
	}
	if ds.Conns[0].Orig != houseA {
		t.Fatalf("orig %v", ds.Conns[0].Orig)
	}
}

func TestRemoteInitiatedWithoutSYNOrientsToLocal(t *testing.T) {
	m := New(DefaultOptions())
	// Mid-stream packet from the remote side, no SYN seen.
	data, _ := pcap.BuildTCP(remoteA, houseA, 443, 40000, 5, 0, pcap.FlagACK|pcap.FlagPSH, []byte("x"))
	m.FeedFrame(0, data)
	ds := m.Flush()
	if len(ds.Conns) != 1 {
		t.Fatalf("conns %d", len(ds.Conns))
	}
	if ds.Conns[0].Orig != houseA || ds.Conns[0].RespBytes != 1 {
		t.Fatalf("orientation wrong: %+v", ds.Conns[0])
	}
}

func TestGarbageFramesCounted(t *testing.T) {
	m := New(DefaultOptions())
	m.FeedFrame(0, []byte{1, 2, 3})
	if m.DecodeErrors != 1 {
		t.Fatalf("decode errors %d", m.DecodeErrors)
	}
	// A UDP/53 packet with a garbage payload.
	frame, _ := pcap.BuildUDP(houseA, resolver, 1234, 53, []byte{0xde, 0xad})
	m.FeedFrame(0, frame)
	if m.DNSParseErrs != 1 {
		t.Fatalf("dns errors %d", m.DNSParseErrs)
	}
}

func TestUnsolicitedDNSResponseDropped(t *testing.T) {
	m := New(DefaultOptions())
	// Build a response with no preceding query.
	ds := sampleDataset()
	ds.Conns = nil
	var frames [][]byte
	err := Synthesize(ds, SynthOptions{}, func(ts time.Duration, frame []byte) error {
		frames = append(frames, frame)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// frames[0] is the query, frames[1] the response; feed only the
	// response.
	m.FeedFrame(0, frames[1])
	out := m.Flush()
	if len(out.DNS) != 0 || m.DNSParseErrs != 1 {
		t.Fatalf("dns=%d errs=%d", len(out.DNS), m.DNSParseErrs)
	}
}

func TestDuplicateFramesCountTwice(t *testing.T) {
	// A passive monitor cannot distinguish a retransmission from new
	// data without sequence tracking; like Bro's byte counters, duplicate
	// payload frames add up. This test pins that (documented) behavior.
	m := New(DefaultOptions())
	syn, _ := pcap.BuildTCP(houseA, remoteA, 40000, 443, 0, 0, pcap.FlagSYN, nil)
	data, _ := pcap.BuildTCP(houseA, remoteA, 40000, 443, 1, 0, pcap.FlagACK|pcap.FlagPSH, []byte("abcd"))
	m.FeedFrame(0, syn)
	m.FeedFrame(time.Millisecond, data)
	m.FeedFrame(2*time.Millisecond, data)
	ds := m.Flush()
	if len(ds.Conns) != 1 || ds.Conns[0].OrigBytes != 8 {
		t.Fatalf("conns %+v", ds.Conns)
	}
}

func TestIPv6FlowThroughMonitor(t *testing.T) {
	m := New(Options{
		UDPTimeout: time.Minute,
		LocalNet:   netip.MustParsePrefix("fd00::/8"),
	})
	src := netip.MustParseAddr("fd00::1")
	dst := netip.MustParseAddr("2001:db8::9")
	frame, err := pcap.BuildUDP(src, dst, 5000, 9000, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	m.FeedFrame(0, frame)
	ds := m.Flush()
	if len(ds.Conns) != 1 || ds.Conns[0].Orig != src || ds.Conns[0].OrigBytes != 3 {
		t.Fatalf("v6 conn %+v", ds.Conns)
	}
}

func TestDecodeBudgetLatches(t *testing.T) {
	budget := trace.ErrorBudget{MaxErrors: 2}
	opts := DefaultOptions()
	opts.DecodeBudget = &budget
	m := New(opts)

	good, _ := pcap.BuildUDP(houseA, remoteA, 40002, 123, []byte("ntp"))
	m.FeedFrame(0, good)
	m.FeedFrame(0, []byte{1})
	m.FeedFrame(0, []byte{2})
	if m.Err() != nil {
		t.Fatalf("budget of 2 tripped after 2 errors: %v", m.Err())
	}
	m.FeedFrame(0, []byte{3})
	err := m.Err()
	if !errors.Is(err, trace.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	// Latched: further frames — even good ones — are ignored.
	m.FeedFrame(time.Second, good)
	if m.DecodeErrors != 3 {
		t.Fatalf("decode errors %d, want 3", m.DecodeErrors)
	}
	ds := m.Flush()
	if len(ds.Conns) != 1 {
		t.Fatalf("conns %d, want the one pre-trip flow", len(ds.Conns))
	}
}

func TestNilDecodeBudgetNeverFatal(t *testing.T) {
	m := New(DefaultOptions())
	for i := 0; i < 1000; i++ {
		m.FeedFrame(0, []byte{byte(i)})
	}
	if m.Err() != nil {
		t.Fatalf("nil budget latched: %v", m.Err())
	}
	if m.DecodeErrors != 1000 {
		t.Fatalf("decode errors %d", m.DecodeErrors)
	}
}
