package resolver

import (
	"net/netip"
	"testing"
	"time"

	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
	"dnscontext/internal/zonedb"
)

func ans(addr string, ttl time.Duration) trace.Answer {
	return trace.Answer{Addr: netip.MustParseAddr(addr), TTL: ttl}
}

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(10)
	if _, _, ok := c.Get(0, "a.com"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(0, "a.com", []trace.Answer{ans("203.0.0.1", 300*time.Second)}, 0, 0)
	got, rcode, ok := c.Get(100*time.Second, "a.com")
	if !ok || rcode != 0 {
		t.Fatal("expected hit")
	}
	if got[0].TTL != 200*time.Second {
		t.Fatalf("remaining TTL %v, want 200s", got[0].TTL)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestCacheExpiry(t *testing.T) {
	c := NewCache(10)
	c.Put(0, "a.com", []trace.Answer{ans("203.0.0.1", 60*time.Second)}, 0, 0)
	if _, _, ok := c.Get(60*time.Second, "a.com"); ok {
		t.Fatal("hit exactly at expiry")
	}
	_, _, expired := c.Stats()
	if expired != 1 {
		t.Fatalf("expired counter %d", expired)
	}
	if c.Len() != 0 {
		t.Fatal("expired entry not evicted")
	}
}

func TestCacheMinTTLGovernsLifetime(t *testing.T) {
	c := NewCache(10)
	c.Put(0, "a.com", []trace.Answer{
		ans("203.0.0.1", 300*time.Second),
		ans("203.0.0.2", 10*time.Second),
	}, 0, 0)
	if _, _, ok := c.Get(11*time.Second, "a.com"); ok {
		t.Fatal("entry outlived its minimum TTL")
	}
}

func TestCacheNegativeEntries(t *testing.T) {
	c := NewCache(10)
	c.Put(0, "nx.com", nil, 3, 30*time.Second)
	_, rcode, ok := c.Get(10*time.Second, "nx.com")
	if !ok || rcode != 3 {
		t.Fatalf("negative entry: ok=%v rcode=%d", ok, rcode)
	}
	if _, _, ok := c.Get(31*time.Second, "nx.com"); ok {
		t.Fatal("negative entry outlived negTTL")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put(0, "a.com", []trace.Answer{ans("203.0.0.1", time.Hour)}, 0, 0)
	c.Put(0, "b.com", []trace.Answer{ans("203.0.0.2", time.Hour)}, 0, 0)
	c.Get(0, "a.com") // promote a
	c.Put(0, "c.com", []trace.Answer{ans("203.0.0.3", time.Hour)}, 0, 0)
	if _, _, ok := c.Get(0, "b.com"); ok {
		t.Fatal("LRU victim b.com still present")
	}
	if _, _, ok := c.Get(0, "a.com"); !ok {
		t.Fatal("recently used a.com evicted")
	}
}

func TestCacheOverwrite(t *testing.T) {
	c := NewCache(10)
	c.Put(0, "a.com", []trace.Answer{ans("203.0.0.1", 10*time.Second)}, 0, 0)
	c.Put(5*time.Second, "a.com", []trace.Answer{ans("203.0.0.9", 100*time.Second)}, 0, 0)
	got, _, ok := c.Get(50*time.Second, "a.com")
	if !ok || got[0].Addr != netip.MustParseAddr("203.0.0.9") {
		t.Fatalf("overwrite lost: %v %v", got, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d after overwrite", c.Len())
	}
}

func TestCachePeek(t *testing.T) {
	c := NewCache(10)
	c.Put(0, "a.com", []trace.Answer{ans("203.0.0.1", 60*time.Second)}, 0, 0)
	if exp, ok := c.Peek(30*time.Second, "a.com"); !ok || exp != 60*time.Second {
		t.Fatalf("peek = %v %v", exp, ok)
	}
	if _, ok := c.Peek(61*time.Second, "a.com"); ok {
		t.Fatal("peek returned expired entry")
	}
	if c.Len() != 1 {
		t.Fatal("peek evicted")
	}
}

func newEcosystem(t *testing.T) (*zonedb.DB, *Authority) {
	t.Helper()
	zones, err := zonedb.New(zonedb.Config{NumNames: 200, ZipfExponent: 1, CDNFraction: 0.3, CDNPoolSize: 10}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	return zones, NewAuthority(zones)
}

func TestAuthorityResolve(t *testing.T) {
	zones, auth := newEcosystem(t)
	r := stats.NewRNG(1)
	n := zones.ByRank(0)
	res := auth.Resolve(n.Host, r)
	if res.RCode != 0 || len(res.Answers) != len(n.Addrs) {
		t.Fatalf("result %+v", res)
	}
	if res.Answers[0].TTL != n.TTL {
		t.Fatalf("TTL %v, want %v", res.Answers[0].TTL, n.TTL)
	}
	if res.Delay < n.AuthDelay {
		t.Fatalf("delay %v below zone base %v", res.Delay, n.AuthDelay)
	}
}

func TestAuthorityNXDomain(t *testing.T) {
	_, auth := newEcosystem(t)
	res := auth.Resolve("definitely.not.a.name", stats.NewRNG(2))
	if res.RCode != 3 || len(res.Answers) != 0 {
		t.Fatalf("NXDOMAIN result %+v", res)
	}
	if res.Delay <= 0 {
		t.Fatal("NXDOMAIN was free")
	}
}

func TestTLDOf(t *testing.T) {
	cases := map[string]string{"www.example.com": "com", "example.io.": "io", "localhost": "localhost"}
	for in, want := range cases {
		if got := TLDOf(in); got != want {
			t.Errorf("TLDOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRecursiveColdThenWarm(t *testing.T) {
	zones, auth := newEcosystem(t)
	prof := DefaultProfiles()[int(PlatformCloudflare)]
	prof.ExternalQPS = 0 // isolate the in-simulation cache behavior
	rr := NewRecursive(prof, auth, stats.NewRNG(3))
	host := zones.ByRank(0).Host

	cold := rr.Lookup(0, host)
	if cold.FromCache {
		t.Fatal("first lookup was a cache hit")
	}
	warm := rr.Lookup(time.Second, host)
	if !warm.FromCache {
		t.Fatal("second lookup missed a single-partition cache")
	}
	if warm.Duration >= cold.Duration {
		t.Fatalf("warm %v not faster than cold %v", warm.Duration, cold.Duration)
	}
	// Warm lookup duration is just the RTT: roughly 2*Base for Cloudflare.
	if warm.Duration < 2*prof.Link.Base {
		t.Fatalf("warm duration %v below minimum RTT", warm.Duration)
	}
	if rr.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", rr.HitRate())
	}
}

func TestRecursiveTTLDecrementsAcrossCache(t *testing.T) {
	zones, auth := newEcosystem(t)
	prof := DefaultProfiles()[int(PlatformCloudflare)]
	prof.ExternalQPS = 0
	rr := NewRecursive(prof, auth, stats.NewRNG(4))
	// Find a name with a comfortable TTL.
	var host string
	var ttl time.Duration
	for _, n := range zones.Names() {
		if n.TTL >= 300*time.Second {
			host, ttl = n.Host, n.TTL
			break
		}
	}
	rr.Lookup(0, host)
	res := rr.Lookup(ttl/2, host)
	if !res.FromCache {
		t.Fatal("expected warm hit")
	}
	if res.Answers[0].TTL >= ttl {
		t.Fatalf("cached answer TTL %v not decremented from %v", res.Answers[0].TTL, ttl)
	}
}

func TestRecursivePartitioningLowersHitRate(t *testing.T) {
	zones, auth := newEcosystem(t)
	mono := DefaultProfiles()[int(PlatformCloudflare)]
	mono.ExternalQPS = 0
	parted := mono
	parted.Partitions = 64

	run := func(prof PlatformProfile, seed uint64) float64 {
		rr := NewRecursive(prof, auth, stats.NewRNG(seed))
		r := stats.NewRNG(seed + 1)
		now := time.Duration(0)
		for i := 0; i < 4000; i++ {
			now += 500 * time.Millisecond
			rr.Lookup(now, zones.Pick(r).Host)
		}
		return rr.HitRate()
	}
	hrMono := run(mono, 10)
	hrParted := run(parted, 20)
	if hrParted >= hrMono-0.1 {
		t.Fatalf("partitioned hit rate %.3f not clearly below monolithic %.3f", hrParted, hrMono)
	}
}

func TestRecursiveNXDomainNegativeCache(t *testing.T) {
	_, auth := newEcosystem(t)
	prof := DefaultProfiles()[int(PlatformCloudflare)]
	prof.ExternalQPS = 0
	rr := NewRecursive(prof, auth, stats.NewRNG(6))
	first := rr.Lookup(0, "missing.example.test")
	if first.RCode != 3 || first.FromCache {
		t.Fatalf("first NX result %+v", first)
	}
	second := rr.Lookup(10*time.Second, "missing.example.test")
	if !second.FromCache || second.RCode != 3 {
		t.Fatalf("negative answer not cached: %+v", second)
	}
}

func TestPlatformOf(t *testing.T) {
	profiles := DefaultProfiles()
	id, ok := PlatformOf(netip.MustParseAddr("8.8.4.4"), profiles)
	if !ok || id != PlatformGoogle {
		t.Fatalf("PlatformOf(8.8.4.4) = %v %v", id, ok)
	}
	if _, ok := PlatformOf(netip.MustParseAddr("9.9.9.9"), profiles); ok {
		t.Fatal("unknown resolver matched a platform")
	}
	if PlatformLocal.String() != "Local" || PlatformID(99).String() != "Unknown" {
		t.Fatal("PlatformID.String")
	}
}

func TestStubHonorsTTLByDefault(t *testing.T) {
	s := NewStub(100, 0)
	s.Put(0, "a.com", []trace.Answer{ans("203.0.0.1", 60*time.Second)})
	if got, ok := s.Get(30*time.Second, "a.com"); !ok || got.Expired {
		t.Fatalf("mid-TTL get = %+v %v", got, ok)
	}
	if _, ok := s.Get(61*time.Second, "a.com"); ok {
		t.Fatal("TTL-honoring stub served expired entry")
	}
}

func TestStubTTLViolation(t *testing.T) {
	s := NewStub(100, time.Hour)
	s.Put(0, "a.com", []trace.Answer{ans("203.0.0.1", 60*time.Second)})
	got, ok := s.Get(30*time.Minute, "a.com")
	if !ok {
		t.Fatal("violating stub dropped held entry")
	}
	if !got.Expired {
		t.Fatal("expired use not flagged")
	}
	if got.Answers[0].TTL != 0 {
		t.Fatalf("expired entry remaining TTL %v, want 0", got.Answers[0].TTL)
	}
	if _, ok := s.Get(61*time.Minute, "a.com"); ok {
		t.Fatal("entry outlived the hold window")
	}
}

func TestStubMinHoldShorterThanTTL(t *testing.T) {
	s := NewStub(100, time.Second)
	s.Put(0, "a.com", []trace.Answer{ans("203.0.0.1", time.Hour)})
	if got, ok := s.Get(30*time.Minute, "a.com"); !ok || got.Expired {
		t.Fatal("long-TTL entry must survive to its TTL regardless of MinHold")
	}
}

func TestStubIgnoresAnswerless(t *testing.T) {
	s := NewStub(100, 0)
	s.Put(0, "nx.com", nil)
	if s.Len() != 0 {
		t.Fatal("answerless response cached")
	}
}

func TestStubCapacity(t *testing.T) {
	s := NewStub(2, 0)
	for i, h := range []string{"a.com", "b.com", "c.com"} {
		s.Put(time.Duration(i)*time.Second, h, []trace.Answer{ans("203.0.0.1", time.Hour)})
	}
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
	if _, ok := s.Get(3*time.Second, "a.com"); ok {
		t.Fatal("oldest entry survived eviction")
	}
}

func TestForwarder(t *testing.T) {
	f := NewForwarder(100)
	if _, ok := f.Get(0, "a.com"); ok {
		t.Fatal("hit on empty forwarder")
	}
	f.Put(0, "a.com", []trace.Answer{ans("203.0.0.1", 60*time.Second)})
	if got, ok := f.Get(30*time.Second, "a.com"); !ok || got[0].TTL != 30*time.Second {
		t.Fatalf("forwarder get = %v %v", got, ok)
	}
	if _, ok := f.Get(61*time.Second, "a.com"); ok {
		t.Fatal("forwarder violated TTL")
	}
	f.Put(0, "nx.com", nil)
	hits, misses, _ := f.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestExternallyWarmServesPopularNames(t *testing.T) {
	zones, auth := newEcosystem(t)
	prof := DefaultProfiles()[int(PlatformCloudflare)]
	prof.ExternalQPS = 1e9 // everyone on Earth queries this frontend
	rr := NewRecursive(prof, auth, stats.NewRNG(7))
	res := rr.Lookup(0, zones.ByRank(0).Host)
	if !res.FromCache {
		t.Fatal("hugely popular name missed an infinitely warm cache")
	}
	if len(res.Answers) == 0 || res.Answers[0].TTL <= 0 {
		t.Fatalf("warm answers malformed: %+v", res.Answers)
	}
	if res.Answers[0].TTL > zones.ByRank(0).TTL {
		t.Fatalf("residual TTL %v exceeds authoritative %v", res.Answers[0].TTL, zones.ByRank(0).TTL)
	}
}

func TestExternallyWarmIgnoresUnknownNames(t *testing.T) {
	_, auth := newEcosystem(t)
	prof := DefaultProfiles()[int(PlatformCloudflare)]
	prof.ExternalQPS = 1e9
	rr := NewRecursive(prof, auth, stats.NewRNG(8))
	res := rr.Lookup(0, "not.a.real.name")
	if res.FromCache || res.RCode != 3 {
		t.Fatalf("unknown name served warm: %+v", res)
	}
}
