package resolver

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
)

// Property: a cache read within the TTL returns remaining TTLs that never
// exceed the stored TTL and decrease with the entry's age.
func TestCacheRemainingTTLProperty(t *testing.T) {
	f := func(ttlSecs uint16, ageFrac uint8) bool {
		ttl := time.Duration(int(ttlSecs)%3600+2) * time.Second
		age := time.Duration(float64(ttl) * (float64(ageFrac%100) / 100.0))
		c := NewCache(10)
		c.Put(0, "x.com", []trace.Answer{ans("203.0.0.1", ttl)}, 0, 0)
		got, _, ok := c.Get(age, "x.com")
		if age >= ttl {
			return !ok
		}
		if !ok {
			return false
		}
		rem := got[0].TTL
		return rem <= ttl && rem == ttl-age
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache never holds more than its capacity, whatever the
// insertion pattern.
func TestCacheCapacityProperty(t *testing.T) {
	r := stats.NewRNG(1)
	f := func(capRaw uint8, nRaw uint16) bool {
		capacity := int(capRaw%20) + 1
		n := int(nRaw % 500)
		c := NewCache(capacity)
		for i := 0; i < n; i++ {
			host := fmt.Sprintf("h%d.com", r.Intn(40))
			c.Put(time.Duration(i)*time.Second, host, []trace.Answer{ans("203.0.0.1", time.Hour)}, 0, 0)
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a stub never serves an entry past its hold window, and only
// flags Expired when past the TTL.
func TestStubExpiryFlagProperty(t *testing.T) {
	f := func(ttlSecs, holdSecs uint16, atFrac uint8) bool {
		ttl := time.Duration(int(ttlSecs)%600+2) * time.Second
		hold := time.Duration(int(holdSecs)%1200) * time.Second
		effectiveHold := ttl
		if hold > ttl {
			effectiveHold = hold
		}
		at := time.Duration(float64(2*effectiveHold) * float64(atFrac%100) / 100.0)

		s := NewStub(10, hold)
		s.Put(0, "x.com", []trace.Answer{ans("203.0.0.1", ttl)})
		got, ok := s.Get(at, "x.com")
		switch {
		case at >= effectiveHold:
			return !ok
		case at >= ttl:
			return ok && got.Expired
		default:
			return ok && !got.Expired
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Recursive.Lookup always returns a positive duration at least
// the link's minimum RTT, and cache hits are never slower than the
// authoritative path's minimum.
func TestRecursiveDurationProperty(t *testing.T) {
	_, auth := newEcosystem(t)
	prof := DefaultProfiles()[int(PlatformLocal)]
	rr := NewRecursive(prof, auth, stats.NewRNG(42))
	zones := auth.Zones()
	r := stats.NewRNG(43)
	now := time.Duration(0)
	for i := 0; i < 2000; i++ {
		now += 100 * time.Millisecond
		res := rr.Lookup(now, zones.Pick(r).Host)
		if res.Duration < 2*prof.Link.Base {
			t.Fatalf("lookup faster than the wire: %v", res.Duration)
		}
		if len(res.Answers) == 0 && res.RCode == 0 {
			t.Fatal("NOERROR with no answers for an existing name")
		}
		for _, a := range res.Answers {
			if a.TTL < 0 {
				t.Fatalf("negative answer TTL %v", a.TTL)
			}
		}
	}
}
