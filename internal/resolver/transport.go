package resolver

import (
	"fmt"
	"time"

	"dnscontext/internal/netsim"
)

// TransportKind identifies how clients reach a resolver platform: the
// paper's clear-text Do53 over UDP, or one of the encrypted/stream
// transports the modern deployment question is about (RFC 7766 DoTCP,
// RFC 7858 DoT, RFC 8484 DoH).
type TransportKind uint8

// The four transports a platform can speak.
const (
	// TransportUDP is classic Do53: one datagram out, one back, with the
	// existing TC→TCP re-ask on truncation. The zero value, so every
	// profile built before transports existed keeps its exact behavior.
	TransportUDP TransportKind = iota
	// TransportTCP is DNS-over-TCP (RFC 7766): length-prefixed messages
	// on a persistent connection reused across lookups until idle.
	TransportTCP
	// TransportTLS is DNS-over-TLS (DoT, RFC 7858): TCP plus a TLS
	// handshake, amortized by connection reuse and session resumption.
	TransportTLS
	// TransportHTTPS is DNS-over-HTTPS (DoH, RFC 8484): TLS plus
	// per-exchange HTTP framing overhead.
	TransportHTTPS
	numTransports
)

// String returns the deployment name used in tables and metric labels.
func (k TransportKind) String() string {
	switch k {
	case TransportUDP:
		return "Do53"
	case TransportTCP:
		return "DoTCP"
	case TransportTLS:
		return "DoT"
	case TransportHTTPS:
		return "DoH"
	}
	return fmt.Sprintf("Transport(%d)", uint8(k))
}

// Stream reports whether the transport runs over a persistent stream
// connection (everything but Do53).
func (k TransportKind) Stream() bool { return k != TransportUDP }

// TLS reports whether the transport pays a TLS handshake.
func (k TransportKind) TLS() bool { return k == TransportTLS || k == TransportHTTPS }

// Transports lists every kind, in comparison-table order.
func Transports() []TransportKind {
	return []TransportKind{TransportUDP, TransportTCP, TransportTLS, TransportHTTPS}
}

// ParseTransport maps a config/flag spelling to a kind: "udp"/"do53",
// "tcp"/"dotcp", "dot"/"tls", "doh"/"https". Empty means UDP.
func ParseTransport(s string) (TransportKind, error) {
	switch s {
	case "", "udp", "do53", "Do53":
		return TransportUDP, nil
	case "tcp", "dotcp", "DoTCP":
		return TransportTCP, nil
	case "dot", "tls", "DoT":
		return TransportTLS, nil
	case "doh", "https", "DoH":
		return TransportHTTPS, nil
	}
	return 0, fmt.Errorf("resolver: unknown transport %q (want udp, tcp, dot, or doh)", s)
}

// StreamConfig parameterizes the stream transports' cost model. The
// round-trip counts follow the measured shapes in Hounsel et al. (DoT/DoH
// handshake cost dominates cold lookups) and Dikshit et al. (DoTCP
// fallback pays one extra RTT): one RTT of TCP handshake before the query
// can leave, two more for a full TLS handshake, one for a ticket-resumed
// one, and a fixed per-exchange overhead for DoH's HTTP framing. See
// DESIGN.md §7g for the calibration notes.
type StreamConfig struct {
	// IdleTimeout is how long a persistent connection survives unused
	// before either end closes it (default 10 s).
	IdleTimeout time.Duration
	// SessionResumption enables TLS session tickets: reconnects within
	// SessionLifetime of the last handshake pay TLSResumedRTTs instead of
	// TLSRTTs. Ignored by DoTCP.
	SessionResumption bool
	// SessionLifetime is how long a session ticket stays usable
	// (default 1 h).
	SessionLifetime time.Duration
	// TransportRTTs is the round trips of transport-layer handshake
	// before the first query byte can leave (default 1: TCP's SYN/SYN-ACK).
	TransportRTTs int
	// TLSRTTs is the additional round trips of a full TLS handshake
	// (default 2).
	TLSRTTs int
	// TLSResumedRTTs is the additional round trips of a ticket-resumed
	// TLS handshake (default 1).
	TLSResumedRTTs int
	// PerQueryOverhead is a fixed per-exchange cost on top of the wire
	// round trip — DoH's HTTP request/response framing (default 500 µs
	// for DoH, zero otherwise).
	PerQueryOverhead time.Duration
}

// WithDefaults fills zero-valued fields with the kind's calibrated
// defaults.
func (c StreamConfig) WithDefaults(kind TransportKind) StreamConfig {
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Second
	}
	if c.SessionLifetime <= 0 {
		c.SessionLifetime = time.Hour
	}
	if c.TransportRTTs <= 0 {
		c.TransportRTTs = 1
	}
	if c.TLSRTTs <= 0 {
		c.TLSRTTs = 2
	}
	if c.TLSResumedRTTs <= 0 {
		c.TLSResumedRTTs = 1
	}
	if c.PerQueryOverhead <= 0 && kind == TransportHTTPS {
		c.PerQueryOverhead = 500 * time.Microsecond
	}
	return c
}

// ConnState is caller-owned persistent-connection state for the stream
// transports: the live connection (with its pinned frontend and anycast
// address) and the TLS session ticket. One ConnState models one stub's
// relationship with one platform; the generator keeps one per
// (device, platform). A nil *ConnState is always cold: nothing persists
// past the lookup, so every lookup pays a fresh handshake. The UDP
// transport ignores it entirely.
type ConnState struct {
	stream netsim.Stream
	// part and addrIdx are pinned while the connection is up: a stream
	// speaks to the one frontend it connected to, unlike per-datagram
	// anycast re-routing.
	part    int
	addrIdx int
	// hasSession/sessionUntil track the TLS session ticket from the last
	// successful handshake.
	hasSession   bool
	sessionUntil time.Duration
}

// Live reports whether the connection can carry an exchange at virtual
// time t without a new handshake.
func (cs *ConnState) Live(t time.Duration) bool {
	return cs != nil && cs.stream.LiveAt(t)
}

// Transport is the seam between a Recursive platform and the wire: it
// runs one lookup's full failure ladder (retransmits for datagrams,
// reconnects for streams) against the platform's link, fault profile,
// and frontend caches. Implementations draw all randomness from the
// platform's RNG, in a fixed order, so seeded runs stay reproducible.
type Transport interface {
	Kind() TransportKind
	// Exchange resolves host for a client at virtual time now under rp.
	// cs carries the caller's persistent-connection state; nil means no
	// reuse (and is always valid).
	Exchange(rr *Recursive, cs *ConnState, now time.Duration, host string, rp RetryPolicy) Result
}

// NewTransport builds the transport for a kind. The zero kind returns
// the UDP transport, whose behavior (and RNG draw order) is exactly the
// pre-transport-seam lookup path.
func NewTransport(kind TransportKind, cfg StreamConfig) Transport {
	if kind == TransportUDP {
		return UDPTransport{}
	}
	return &StreamTransport{kind: kind, cfg: cfg.WithDefaults(kind)}
}

// UDPTransport is classic Do53: per-attempt datagrams with retransmission
// on timeout, anycast re-routing on every attempt, and the TC→TCP re-ask
// when a response exceeds the truncation threshold. This is a pure seam
// extraction of the original Recursive.LookupWith loop — with a zero
// fault profile it consumes the exact RNG stream of the pre-transport
// implementation, keeping historical runs bit-identical.
type UDPTransport struct{}

// Kind returns TransportUDP.
func (UDPTransport) Kind() TransportKind { return TransportUDP }

// Exchange runs the datagram retry ladder. See Recursive.LookupWith for
// the failure-model contract.
func (UDPTransport) Exchange(rr *Recursive, _ *ConnState, now time.Duration, host string, rp RetryPolicy) Result {
	faults := rr.Profile.Faults
	timeout := rp.Timeout
	maxAttempts := rp.attempts()
	var elapsed time.Duration
	var res Result
	addrIdx := 0

	for attempt := 0; attempt < maxAttempts; attempt++ {
		res.Attempts = attempt + 1
		if attempt > 0 {
			rr.obs.retries.Inc()
		}
		sendAt := now + elapsed
		// Pick the frontend: clients hash to frontends per flow in
		// reality; per-query random choice models load-balanced anycast,
		// which is what de-correlates Google's caches. Retries re-draw —
		// the anycast route may shift under failure.
		part := rr.parts[rr.rng.Intn(len(rr.parts))]
		// The query reaches the frontend after one one-way delay; the
		// answer returns after another. Both are sampled up front so the
		// zero-fault draw order matches the pre-fault implementation.
		owdOut, lostOut := rr.Profile.Link.DeliverUnder(sendAt, faults, rr.rng)
		owdBack, lostBack := rr.Profile.Link.DeliverUnder(sendAt+owdOut, faults, rr.rng)
		if attempt == 0 {
			addrIdx = rr.rng.Intn(len(rr.Profile.Addrs))
		} else if rp.RotateServers {
			addrIdx = (addrIdx + 1) % len(rr.Profile.Addrs)
		}
		res.Resolver = rr.Profile.Addrs[addrIdx]

		if lostOut {
			// The query never arrived; the client waits out the timeout.
			elapsed += timeout
			timeout = rp.next(timeout)
			rr.retries++
			rr.timeouts++
			rr.obs.timeouts.Inc()
			continue
		}
		arrival := sendAt + owdOut
		answers, rcode, fromCache, iterate := rr.answerAt(part, arrival, host)
		if lostBack {
			// The response was lost on the way back. The frontend cache
			// is warm now, so a retry may turn an R into an SC — exactly
			// the ambiguity loss injects into the passive analysis.
			elapsed += timeout
			timeout = rp.next(timeout)
			rr.retries++
			rr.timeouts++
			rr.obs.timeouts.Inc()
			continue
		}

		res.FromCache = fromCache
		res.Answers = answers
		res.RCode = rcode
		res.Duration = elapsed + owdOut + iterate + owdBack
		if faults.Truncated(len(answers)) {
			// UDP truncation: the client re-asks over TCP — one handshake
			// round trip plus the query/response exchange.
			res.TCPFallback = true
			rr.tcpFallbacks++
			rr.obs.tcpFallbacks.Inc()
			res.Duration += rr.Profile.Link.RTT(rr.rng) + rr.Profile.Link.RTT(rr.rng)
		}
		rr.obs.duration.Observe(res.Duration)
		return res
	}

	// Every attempt lost: the client gives up with a synthesized
	// SERVFAIL after the full timeout ladder.
	res.ServFail = true
	res.RCode = RCodeServFail
	res.Duration = elapsed
	rr.servfails++
	rr.obs.servfails.Inc()
	rr.obs.duration.Observe(res.Duration)
	return res
}

// StreamTransport is the shared machinery of DoTCP, DoT, and DoH: a
// persistent connection established with a handshake whose round-trip
// count depends on the kind (and on session resumption), reused across
// lookups until idle, and torn down — not retransmitted through — when a
// fault eats an in-connection delivery. An attempt in the retry ladder
// is therefore a reconnect: handshake (if the connection is down) plus
// one exchange.
type StreamTransport struct {
	kind TransportKind
	cfg  StreamConfig
}

// Kind returns the stream transport's kind.
func (t *StreamTransport) Kind() TransportKind { return t.kind }

// Config returns the resolved cost-model parameters.
func (t *StreamTransport) Config() StreamConfig { return t.cfg }

// handshakeRTTs is the round trips a new connection costs: the transport
// handshake plus, for TLS transports, the full or resumed TLS handshake.
func (t *StreamTransport) handshakeRTTs(resumed bool) int {
	return t.cfg.HandshakeRTTs(t.kind, resumed)
}

// HandshakeRTTs is the round trips a new kind connection costs under this
// (resolved) configuration. Exposed so the analytic transport what-if in
// internal/core prices handshakes with exactly the live transport's
// arithmetic.
func (c StreamConfig) HandshakeRTTs(kind TransportKind, resumed bool) int {
	rtts := c.TransportRTTs
	if kind.TLS() {
		if resumed {
			rtts += c.TLSResumedRTTs
		} else {
			rtts += c.TLSRTTs
		}
	}
	return rtts
}

// Exchange runs the reconnect ladder: each attempt re-establishes the
// connection if it is down (a lost handshake burns the attempt's
// timeout), then sends the query in-stream, where a fault kills the
// connection instead of one datagram. Responses of any size fit a
// stream, so there is no truncation re-ask. A connection pins its
// frontend partition and anycast address for its lifetime.
func (t *StreamTransport) Exchange(rr *Recursive, cs *ConnState, now time.Duration, host string, rp RetryPolicy) Result {
	faults := rr.Profile.Faults
	timeout := rp.Timeout
	maxAttempts := rp.attempts()
	var elapsed time.Duration
	var res Result
	res.Transport = t.kind
	var local ConnState
	if cs == nil {
		// No caller-held state: the connection lives only for this lookup.
		cs = &local
	}
	res.Reused = cs.stream.LiveAt(now)

	for attempt := 0; attempt < maxAttempts; attempt++ {
		res.Attempts = attempt + 1
		if attempt > 0 {
			rr.obs.retries.Inc()
		}
		sendAt := now + elapsed

		if !cs.stream.LiveAt(sendAt) {
			// Cold or reset: the new connection draws its frontend and
			// anycast address (a reconnect may be routed anywhere), then
			// pays the handshake.
			cs.part = rr.rng.Intn(len(rr.parts))
			cs.addrIdx = rr.rng.Intn(len(rr.Profile.Addrs))
			resumed := t.kind.TLS() && t.cfg.SessionResumption &&
				cs.hasSession && sendAt <= cs.sessionUntil
			hs, ok := rr.Profile.Link.EstablishUnder(sendAt, t.handshakeRTTs(resumed), faults, rr.rng)
			if !ok {
				// The handshake never completed — a connect timeout. Wait
				// it out and reconnect with the next attempt's budget.
				elapsed += timeout
				timeout = rp.next(timeout)
				rr.retries++
				rr.timeouts++
				rr.obs.timeouts.Inc()
				continue
			}
			cs.stream.Touch(sendAt+hs, t.cfg.IdleTimeout)
			if t.kind.TLS() {
				cs.hasSession = true
				cs.sessionUntil = sendAt + hs + t.cfg.SessionLifetime
				res.Resumed = resumed
			}
			res.Handshake += hs
			elapsed += hs
			sendAt = now + elapsed
		}
		res.Resolver = rr.Profile.Addrs[cs.addrIdx]

		owdOut, reset := rr.Profile.Link.DeliverStream(&cs.stream, sendAt, faults, rr.rng)
		if reset {
			// The query (or the connection under it) died in flight: the
			// client's next attempt reconnects rather than retransmits.
			elapsed += timeout
			timeout = rp.next(timeout)
			rr.retries++
			rr.streamResets++
			rr.obs.streamResets.Inc()
			continue
		}
		arrival := sendAt + owdOut
		answers, rcode, fromCache, iterate := rr.answerAt(rr.parts[cs.part], arrival, host)
		owdBack, reset := rr.Profile.Link.DeliverStream(&cs.stream, arrival+iterate, faults, rr.rng)
		if reset {
			// The response died with the connection. The frontend cache is
			// warm now, so the reconnect's re-ask may turn an R into an SC
			// — the same ambiguity the datagram path injects.
			elapsed += timeout
			timeout = rp.next(timeout)
			rr.retries++
			rr.streamResets++
			rr.obs.streamResets.Inc()
			continue
		}

		res.FromCache = fromCache
		res.Answers = answers
		res.RCode = rcode
		res.Duration = elapsed + owdOut + iterate + owdBack + t.cfg.PerQueryOverhead
		// Every successful exchange restarts the idle clock.
		cs.stream.Touch(now+res.Duration, t.cfg.IdleTimeout)
		rr.obs.duration.Observe(res.Duration)
		return res
	}

	// Every attempt lost: SERVFAIL after the full ladder, like Do53.
	res.ServFail = true
	res.RCode = RCodeServFail
	res.Duration = elapsed
	res.Resolver = rr.Profile.Addrs[cs.addrIdx]
	rr.servfails++
	rr.obs.servfails.Inc()
	rr.obs.duration.Observe(res.Duration)
	return res
}
