package resolver

import (
	"testing"
	"time"

	"dnscontext/internal/netsim"
	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
)

func TestRetryPolicyAttempts(t *testing.T) {
	if got := (RetryPolicy{MaxRetries: 2}).attempts(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if got := (RetryPolicy{MaxRetries: -5}).attempts(); got != 1 {
		t.Fatalf("negative MaxRetries attempts = %d, want 1", got)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{Timeout: 3 * time.Second, Backoff: 2, MaxTimeout: 10 * time.Second}
	if got := p.next(3 * time.Second); got != 6*time.Second {
		t.Fatalf("next(3s) = %v, want 6s", got)
	}
	if got := p.next(6 * time.Second); got != 10*time.Second {
		t.Fatalf("next(6s) = %v, want cap 10s", got)
	}
	// Sub-1 backoff behaves as flat.
	flat := RetryPolicy{Timeout: time.Second, Backoff: 0.5}
	if got := flat.next(time.Second); got != time.Second {
		t.Fatalf("flat next = %v, want 1s", got)
	}
}

// TestZeroFaultLookupWithMatchesLookup: with no faults the retry policy is
// inert — any policy yields the exact single-attempt result.
func TestZeroFaultLookupWithMatchesLookup(t *testing.T) {
	zones, auth := newEcosystem(t)
	prof := DefaultProfiles()[int(PlatformCloudflare)]
	prof.ExternalQPS = 0
	a := NewRecursive(prof, auth, stats.NewRNG(11))
	b := NewRecursive(prof, auth, stats.NewRNG(11))
	host := zones.ByRank(0).Host

	for i, now := range []time.Duration{0, time.Second, time.Minute} {
		ra := a.Lookup(now, host)
		rb := b.LookupWith(now, host, AndroidRetryPolicy())
		if ra.Duration != rb.Duration || ra.FromCache != rb.FromCache ||
			ra.Resolver != rb.Resolver || ra.RCode != rb.RCode {
			t.Fatalf("lookup %d diverged: %+v vs %+v", i, ra, rb)
		}
		if rb.Attempts != 1 || rb.ServFail || rb.TCPFallback {
			t.Fatalf("zero-fault lookup shows fault activity: %+v", rb)
		}
	}
}

// TestTotalLossGivesUpWithFullLadder: Loss=1 makes every transmission
// fail, so the client walks the whole timeout ladder and synthesizes
// SERVFAIL with the exact accumulated wait.
func TestTotalLossGivesUpWithFullLadder(t *testing.T) {
	_, auth := newEcosystem(t)
	prof := DefaultProfiles()[int(PlatformCloudflare)]
	prof.ExternalQPS = 0
	prof.Faults = netsim.FaultProfile{Loss: 1}
	rr := NewRecursive(prof, auth, stats.NewRNG(12))

	res := rr.LookupWith(0, "a.example.com", DefaultRetryPolicy())
	if !res.ServFail || res.RCode != RCodeServFail {
		t.Fatalf("total loss did not servfail: %+v", res)
	}
	// Default ladder: 3s timeout, one retry at 6s ⇒ 9s total.
	if res.Duration != 9*time.Second {
		t.Fatalf("ladder duration %v, want 9s", res.Duration)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts %d, want 2", res.Attempts)
	}
	if len(res.Answers) != 0 {
		t.Fatalf("servfail carried answers: %v", res.Answers)
	}
	if res.Retries() != 1 {
		t.Fatalf("Retries() = %d, want 1", res.Retries())
	}
	retries, servfails, _ := rr.FailureCounters()
	if retries != 2 || servfails != 1 {
		t.Fatalf("counters retries=%d servfails=%d", retries, servfails)
	}
}

func TestIoTSingleShotTimeout(t *testing.T) {
	_, auth := newEcosystem(t)
	prof := DefaultProfiles()[int(PlatformLocal)]
	prof.ExternalQPS = 0
	prof.Faults = netsim.FaultProfile{Loss: 1}
	rr := NewRecursive(prof, auth, stats.NewRNG(13))

	res := rr.LookupWith(0, "iot.example.com", IoTRetryPolicy())
	if !res.ServFail || res.Attempts != 1 || res.Duration != 2*time.Second {
		t.Fatalf("IoT giveup = %+v, want 1 attempt, 2s", res)
	}
}

// TestOutageServFailsThenRecovers: during a scheduled platform outage
// every lookup gives up; afterwards the platform answers again.
func TestOutageServFailsThenRecovers(t *testing.T) {
	zones, auth := newEcosystem(t)
	prof := DefaultProfiles()[int(PlatformCloudflare)]
	prof.ExternalQPS = 0
	prof.Faults = netsim.FaultProfile{Outages: []netsim.Window{{Start: time.Hour, End: 2 * time.Hour}}}
	rr := NewRecursive(prof, auth, stats.NewRNG(14))
	host := zones.ByRank(0).Host

	if res := rr.LookupWith(30*time.Minute, host, IoTRetryPolicy()); res.ServFail {
		t.Fatalf("lookup before the outage failed: %+v", res)
	}
	if res := rr.LookupWith(90*time.Minute, host, IoTRetryPolicy()); !res.ServFail {
		t.Fatalf("lookup during the outage succeeded: %+v", res)
	}
	if res := rr.LookupWith(3*time.Hour, host, IoTRetryPolicy()); res.ServFail {
		t.Fatalf("lookup after the outage failed: %+v", res)
	}
}

// TestRetryStraddlesOutageEnd: an attempt sent just before the outage
// lifts is lost, but the backed-off retry lands after the end and
// succeeds — the recovery behavior retries exist for.
func TestRetryStraddlesOutageEnd(t *testing.T) {
	zones, auth := newEcosystem(t)
	prof := DefaultProfiles()[int(PlatformCloudflare)]
	prof.ExternalQPS = 0
	prof.Faults = netsim.FaultProfile{Outages: []netsim.Window{{Start: 0, End: time.Hour}}}
	rr := NewRecursive(prof, auth, stats.NewRNG(15))

	start := time.Hour - time.Second // retry fires at +3s, after the outage
	res := rr.LookupWith(start, zones.ByRank(0).Host, DefaultRetryPolicy())
	if res.ServFail {
		t.Fatalf("retry after outage end still failed: %+v", res)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts %d, want 2 (first lost in outage)", res.Attempts)
	}
	if res.Duration < 3*time.Second {
		t.Fatalf("duration %v must include the first attempt's 3s timeout", res.Duration)
	}
}

// TestRotationMovesToNextServer: with rotation, a retry goes to the next
// anycast address; without it, the client re-asks the same one. Same
// seed, total loss ⇒ the reported (last-tried) resolver must differ.
func TestRotationMovesToNextServer(t *testing.T) {
	_, auth := newEcosystem(t)
	prof := DefaultProfiles()[int(PlatformGoogle)] // two addresses
	prof.ExternalQPS = 0
	prof.Faults = netsim.FaultProfile{Loss: 1}

	policy := DefaultRetryPolicy() // one retry
	fixed := policy
	fixed.RotateServers = false

	rot := NewRecursive(prof, auth, stats.NewRNG(16)).LookupWith(0, "x.example.com", policy)
	stay := NewRecursive(prof, auth, stats.NewRNG(16)).LookupWith(0, "x.example.com", fixed)
	if stay.Resolver == rot.Resolver {
		t.Fatalf("rotation did not move off %v", stay.Resolver)
	}
}

// TestTruncationForcesTCPFallback: responses over the truncation
// threshold are re-fetched via TCP, flagged and slower.
func TestTruncationForcesTCPFallback(t *testing.T) {
	zones, auth := newEcosystem(t)
	// Find a name with at least two addresses so TruncateOver=1 triggers.
	var host string
	for _, n := range zones.Names() {
		if len(n.Addrs) >= 2 {
			host = n.Host
			break
		}
	}
	if host == "" {
		t.Skip("no multi-address name in the zone")
	}
	prof := DefaultProfiles()[int(PlatformCloudflare)]
	prof.ExternalQPS = 0

	plain := NewRecursive(prof, auth, stats.NewRNG(17)).LookupWith(0, host, DefaultRetryPolicy())
	prof.Faults = netsim.FaultProfile{TruncateOver: 1}
	trunc := NewRecursive(prof, auth, stats.NewRNG(17)).LookupWith(0, host, DefaultRetryPolicy())

	if plain.TCPFallback {
		t.Fatal("fallback without truncation configured")
	}
	if !trunc.TCPFallback {
		t.Fatalf("no TCP fallback for %d answers over threshold 1", len(trunc.Answers))
	}
	if trunc.Duration <= plain.Duration {
		t.Fatalf("TCP fallback %v not slower than UDP %v", trunc.Duration, plain.Duration)
	}
}

// TestLossWarmsCache: a response lost on the way back still warmed the
// frontend, so persistent retries eventually turn misses into hits.
func TestLossWarmsCache(t *testing.T) {
	zones, auth := newEcosystem(t)
	prof := DefaultProfiles()[int(PlatformCloudflare)]
	prof.ExternalQPS = 0
	prof.Faults = netsim.FaultProfile{Loss: 0.4}
	rr := NewRecursive(prof, auth, stats.NewRNG(18))
	host := zones.ByRank(0).Host

	sawCacheHit := false
	for i := 0; i < 50 && !sawCacheHit; i++ {
		res := rr.LookupWith(time.Duration(i)*time.Second, host, AndroidRetryPolicy())
		sawCacheHit = res.FromCache && !res.ServFail
	}
	if !sawCacheHit {
		t.Fatal("repeated lossy lookups never produced a shared-cache hit")
	}
}

// --- Serve-stale stub (RFC 8767) ---

func TestStubGetStaleDisabledByDefault(t *testing.T) {
	s := NewStub(10, 0)
	s.Put(0, "a.com", []trace.Answer{ans("203.0.0.1", 60*time.Second)})
	if _, ok := s.GetStale(61*time.Second, "a.com"); ok {
		t.Fatal("GetStale served past TTL with StaleHold disabled")
	}
}

func TestStubServeStaleWindow(t *testing.T) {
	s := NewStub(10, 0)
	s.StaleHold = 10 * time.Minute
	s.Put(0, "a.com", []trace.Answer{ans("203.0.0.1", 60*time.Second)})

	// Inside the TTL, both paths serve fresh.
	if got, ok := s.GetStale(30*time.Second, "a.com"); !ok || got.Expired {
		t.Fatalf("fresh GetStale = %+v %v", got, ok)
	}

	// Past the TTL: a normal Get must MISS (the device still goes
	// upstream first), but the entry is retained for the failure path.
	if _, ok := s.Get(2*time.Minute, "a.com"); ok {
		t.Fatal("Get served stale entry on the normal path")
	}
	got, ok := s.GetStale(2*time.Minute, "a.com")
	if !ok {
		t.Fatal("GetStale missed inside the stale window")
	}
	if !got.Expired {
		t.Fatal("stale answer not flagged Expired")
	}
	if got.Answers[0].TTL != 0 {
		t.Fatalf("stale answer TTL %v, want 0", got.Answers[0].TTL)
	}

	// Past TTL + StaleHold: gone for good.
	if _, ok := s.GetStale(12*time.Minute, "a.com"); ok {
		t.Fatal("GetStale served beyond the stale window")
	}
}

func TestStubServeStaleRespectsMinHold(t *testing.T) {
	// A TTL-violating stub already serves to MinHold; serve-stale extends
	// retention past that.
	s := NewStub(10, 2*time.Minute)
	s.StaleHold = 10 * time.Minute
	s.Put(0, "a.com", []trace.Answer{ans("203.0.0.1", 60*time.Second)})
	if got, ok := s.Get(90*time.Second, "a.com"); !ok || !got.Expired {
		t.Fatalf("MinHold serving broken: %+v %v", got, ok)
	}
	if _, ok := s.Get(3*time.Minute, "a.com"); ok {
		t.Fatal("Get served past MinHold")
	}
	if _, ok := s.GetStale(3*time.Minute, "a.com"); !ok {
		t.Fatal("GetStale missed between MinHold and StaleHold")
	}
}
