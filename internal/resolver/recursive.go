package resolver

import (
	"math"
	"net/netip"
	"time"

	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
)

// Result is the client-observed outcome of one recursive lookup.
type Result struct {
	// Duration is the total client-observed lookup time (network RTT plus
	// any authoritative iteration the resolver performed).
	Duration time.Duration
	// FromCache is true when the shared resolver answered from its cache
	// (the paper's SC case); false means authoritative servers were
	// contacted (the R case).
	FromCache bool
	// Resolver is the platform address that served the query.
	Resolver netip.Addr
	Answers  []trace.Answer
	RCode    uint8
}

// Recursive is one resolver platform: a set of anycast frontends, each
// with an independent shared cache, backed by the authoritative model.
type Recursive struct {
	Profile PlatformProfile
	parts   []*Cache
	auth    *Authority
	rng     *stats.RNG

	queries uint64
	hits    uint64
}

// NewRecursive builds a platform instance.
func NewRecursive(profile PlatformProfile, auth *Authority, rng *stats.RNG) *Recursive {
	n := profile.Partitions
	if n < 1 {
		n = 1
	}
	parts := make([]*Cache, n)
	for i := range parts {
		parts[i] = NewCache(profile.CacheCapacity)
	}
	return &Recursive{Profile: profile, parts: parts, auth: auth, rng: rng}
}

// HitRate returns the platform's cumulative shared-cache hit rate.
func (rr *Recursive) HitRate() float64 {
	if rr.queries == 0 {
		return 0
	}
	return float64(rr.hits) / float64(rr.queries)
}

// Lookup resolves host for a client at virtual time now. The returned
// Result carries everything the generator needs to emit the dns.log record
// and to decide when the answer is available to the application.
func (rr *Recursive) Lookup(now time.Duration, host string) Result {
	rr.queries++
	// Pick the frontend: clients hash to frontends per flow in reality;
	// per-query random choice models load-balanced anycast, which is what
	// de-correlates Google's caches.
	part := rr.parts[rr.rng.Intn(len(rr.parts))]
	// The query reaches the frontend after one one-way delay; the answer
	// returns after another.
	owdOut := rr.Profile.Link.Delay(rr.rng)
	owdBack := rr.Profile.Link.Delay(rr.rng)
	arrival := now + owdOut

	res := Result{Resolver: rr.Profile.Addrs[rr.rng.Intn(len(rr.Profile.Addrs))]}
	if answers, rcode, ok := part.Get(arrival, host); ok {
		rr.hits++
		res.FromCache = true
		res.Answers = answers
		res.RCode = rcode
		res.Duration = owdOut + owdBack
		return res
	}

	// The frontend also serves clients outside the simulation; a popular
	// name missed here may well be warm because someone else just asked.
	if ans, ok := rr.externallyWarm(host); ok {
		rr.hits++
		res.FromCache = true
		res.Answers = ans
		res.Duration = owdOut + owdBack
		// Seed the partition so subsequent in-simulation queries hit it
		// organically.
		part.Put(arrival, host, ans, 0, 0)
		return res
	}

	// Cache miss: iterate to the authoritative servers.
	authRes := rr.auth.Resolve(host, rr.rng)
	iterate := authRes.Delay + rr.Profile.AuthExtra.Delay(rr.rng)
	done := arrival + iterate
	negTTL := time.Duration(0)
	if len(authRes.Answers) == 0 {
		negTTL = rr.auth.NegTTL
	}
	part.Put(done, host, authRes.Answers, authRes.RCode, negTTL)

	res.Answers = authRes.Answers
	res.RCode = authRes.RCode
	res.Duration = owdOut + iterate + owdBack
	return res
}

// externallyWarm models the platform's other clients (see
// PlatformProfile.ExternalQPS): under Poisson external arrivals at rate
// qps·share, the record is live in the frontend's cache with probability
// 1 − exp(−qps·share·TTL), with a uniformly distributed residual TTL.
func (rr *Recursive) externallyWarm(host string) ([]trace.Answer, bool) {
	qps := rr.Profile.ExternalQPS
	if qps <= 0 {
		return nil, false
	}
	n := rr.auth.Zones().Lookup(host)
	if n == nil {
		return nil, false
	}
	share := rr.auth.Zones().Share(n)
	ttlSecs := n.TTL.Seconds()
	p := 1 - math.Exp(-qps*share*ttlSecs)
	if !rr.rng.Bool(p) {
		return nil, false
	}
	// Age uniform over the TTL; keep at least one second of life so the
	// answer is cacheable downstream.
	rem := time.Duration(rr.rng.Float64() * float64(n.TTL))
	if rem < time.Second {
		rem = time.Second
	}
	answers := make([]trace.Answer, len(n.Addrs))
	for i, addr := range n.Addrs {
		answers[i] = trace.Answer{Addr: addr, TTL: rem}
	}
	return answers, true
}

// WarmFraction reports the fraction of partitions currently holding host
// unexpired — a calibration/diagnostic hook.
func (rr *Recursive) WarmFraction(now time.Duration, host string) float64 {
	warm := 0
	for _, p := range rr.parts {
		if _, ok := p.Peek(now, host); ok {
			warm++
		}
	}
	return float64(warm) / float64(len(rr.parts))
}
