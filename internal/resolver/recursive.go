package resolver

import (
	"math"
	"net/netip"
	"time"

	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
)

// RCodeServFail is the SERVFAIL response code a client synthesizes when
// every transmission attempt times out — the giveup outcome of the
// retry ladder.
const RCodeServFail uint8 = 2

// Result is the client-observed outcome of one recursive lookup.
type Result struct {
	// Duration is the total client-observed lookup time: network RTT,
	// any authoritative iteration the resolver performed, plus — under
	// fault injection — every timeout and backoff wait spent on lost
	// transmissions and any TCP-fallback exchange.
	Duration time.Duration
	// FromCache is true when the shared resolver answered from its cache
	// (the paper's SC case); false means authoritative servers were
	// contacted (the R case).
	FromCache bool
	// Resolver is the platform address that served the query (or, for
	// giveups, the last address tried).
	Resolver netip.Addr
	Answers  []trace.Answer
	RCode    uint8
	// Attempts is the number of transmissions the client made (1 = no
	// retransmission needed).
	Attempts int
	// TCPFallback is true when the UDP response was truncated and the
	// answer was obtained over a follow-up TCP exchange.
	TCPFallback bool
	// ServFail is true when every attempt was lost and the client gave
	// up; Duration then covers the full timeout ladder and RCode is
	// RCodeServFail.
	ServFail bool
	// Transport is the transport the lookup ran over (TransportUDP for
	// the paper's Do53 platforms).
	Transport TransportKind
	// Reused is true when a stream lookup found a live persistent
	// connection at its start and paid no handshake on the first attempt.
	Reused bool
	// Resumed is true when a stream lookup's (last) handshake was
	// shortened by a TLS session ticket.
	Resumed bool
	// Handshake is the total connection-establishment time the lookup
	// paid (zero for datagram transports and for reused connections).
	Handshake time.Duration
}

// Retries is the number of retransmissions beyond the first attempt.
func (r *Result) Retries() int {
	if r.Attempts <= 1 {
		return 0
	}
	return r.Attempts - 1
}

// Recursive is one resolver platform: a set of anycast frontends, each
// with an independent shared cache, backed by the authoritative model.
type Recursive struct {
	Profile PlatformProfile
	parts   []*Cache
	auth    *Authority
	rng     *stats.RNG

	// transport is how clients reach the platform; built from the
	// profile's Transport/Stream fields (UDPTransport when unset).
	transport Transport

	queries uint64
	hits    uint64

	retries      uint64
	servfails    uint64
	tcpFallbacks uint64
	timeouts     uint64
	streamResets uint64

	// obs carries the optional per-platform instrument handles; the zero
	// value (all nil) makes every observation a guarded no-op. See
	// Instrument.
	obs recMetrics
}

// NewRecursive builds a platform instance.
func NewRecursive(profile PlatformProfile, auth *Authority, rng *stats.RNG) *Recursive {
	n := profile.Partitions
	if n < 1 {
		n = 1
	}
	parts := make([]*Cache, n)
	for i := range parts {
		parts[i] = NewCache(profile.CacheCapacity)
	}
	return &Recursive{
		Profile:   profile,
		parts:     parts,
		auth:      auth,
		rng:       rng,
		transport: NewTransport(profile.Transport, profile.Stream),
	}
}

// Transport returns the transport the platform speaks.
func (rr *Recursive) Transport() Transport { return rr.transport }

// HitRate returns the platform's cumulative shared-cache hit rate. Hits
// are counted at the frontend: a cached answer whose response packet is
// subsequently lost still counts, because the cache did serve it.
func (rr *Recursive) HitRate() float64 {
	if rr.queries == 0 {
		return 0
	}
	return float64(rr.hits) / float64(rr.queries)
}

// FailureCounters reports the platform's cumulative fault-path activity:
// retransmissions, client giveups, and TCP fallbacks after truncation.
func (rr *Recursive) FailureCounters() (retries, servfails, tcpFallbacks uint64) {
	return rr.retries, rr.servfails, rr.tcpFallbacks
}

// LossCounters breaks the platform's lost attempts down by mechanism:
// datagram timeouts (a lost UDP transmission or a lost stream handshake,
// both experienced as silence until the timer fires) versus stream
// connection resets (an established DoTCP/DoT/DoH connection killed by a
// fault mid-exchange, which the client sees as a broken stream and
// answers with a reconnect, not a retransmit).
func (rr *Recursive) LossCounters() (timeouts, streamResets uint64) {
	return rr.timeouts, rr.streamResets
}

// Lookup resolves host with the default retry policy. With a zero fault
// profile this is exactly the pre-fault lookup path.
func (rr *Recursive) Lookup(now time.Duration, host string) Result {
	return rr.LookupWith(now, host, DefaultRetryPolicy())
}

// LookupWith resolves host for a client at virtual time now under the
// given retry policy. The returned Result carries everything the
// generator needs to emit the dns.log record and to decide when (and
// whether) the answer is available to the application.
//
// The failure model: each attempt sends the query over the platform link
// (which may drop it — random loss or a scheduled outage), the frontend
// answers (shared cache, externally-warm, or authoritative iteration),
// and the response crosses the link back (which may drop it too). A lost
// transmission in either direction costs the client the full per-attempt
// timeout; the next attempt backs off exponentially (bounded) and, under
// RotateServers, moves to the platform's next anycast address. When every
// attempt is lost the client synthesizes SERVFAIL. Responses carrying
// more answers than the fault profile's truncation threshold arrive
// truncated over UDP and are re-fetched via TCP (handshake plus
// exchange). With a zero FaultProfile every branch collapses to the
// single-attempt path and consumes the exact RNG stream of the pre-fault
// implementation, keeping historical runs bit-identical.
//
// The ladder itself lives in the platform's Transport (UDPTransport for
// Do53 — see transport.go); stream transports replace retransmission
// with reconnection. LookupWith runs every lookup cold; callers holding
// a persistent connection use LookupConn.
func (rr *Recursive) LookupWith(now time.Duration, host string, rp RetryPolicy) Result {
	return rr.LookupConn(nil, now, host, rp)
}

// LookupConn is LookupWith with caller-held persistent-connection state:
// cs carries one stub's live connection to this platform (and its TLS
// session ticket) across lookups, so bursts share a handshake. A nil cs
// is always cold. Datagram transports ignore cs entirely.
func (rr *Recursive) LookupConn(cs *ConnState, now time.Duration, host string, rp RetryPolicy) Result {
	rr.queries++
	rr.obs.lookups.Inc()
	return rr.transport.Exchange(rr, cs, now, host, rp)
}

// answerAt resolves host at one frontend at virtual time arrival,
// returning the answers, rcode, whether the shared cache (or external
// warmth) served them, and the extra iteration delay the frontend spent
// on a miss. Cache state is updated as a side effect, so a lost response
// still warms the frontend.
func (rr *Recursive) answerAt(part *Cache, arrival time.Duration, host string) (answers []trace.Answer, rcode uint8, fromCache bool, iterate time.Duration) {
	if answers, rcode, ok := part.Get(arrival, host); ok {
		rr.hits++
		rr.obs.hits.Inc()
		return answers, rcode, true, 0
	}

	// The frontend also serves clients outside the simulation; a popular
	// name missed here may well be warm because someone else just asked.
	if ans, ok := rr.externallyWarm(host); ok {
		rr.hits++
		rr.obs.hits.Inc()
		// Seed the partition so subsequent in-simulation queries hit it
		// organically.
		part.Put(arrival, host, ans, 0, 0)
		return ans, 0, true, 0
	}

	// Cache miss: iterate to the authoritative servers.
	rr.obs.misses.Inc()
	authRes := rr.auth.Resolve(host, rr.rng)
	iterate = authRes.Delay + rr.Profile.AuthExtra.Delay(rr.rng)
	done := arrival + iterate
	negTTL := time.Duration(0)
	if len(authRes.Answers) == 0 {
		negTTL = rr.auth.NegTTL
	}
	part.Put(done, host, authRes.Answers, authRes.RCode, negTTL)
	return authRes.Answers, authRes.RCode, false, iterate
}

// externallyWarm models the platform's other clients (see
// PlatformProfile.ExternalQPS): under Poisson external arrivals at rate
// qps·share, the record is live in the frontend's cache with probability
// 1 − exp(−qps·share·TTL), with a uniformly distributed residual TTL.
func (rr *Recursive) externallyWarm(host string) ([]trace.Answer, bool) {
	qps := rr.Profile.ExternalQPS
	if qps <= 0 {
		return nil, false
	}
	n := rr.auth.Zones().Lookup(host)
	if n == nil {
		return nil, false
	}
	share := rr.auth.Zones().Share(n)
	ttlSecs := n.TTL.Seconds()
	p := 1 - math.Exp(-qps*share*ttlSecs)
	if !rr.rng.Bool(p) {
		return nil, false
	}
	// Age uniform over the TTL; keep at least one second of life so the
	// answer is cacheable downstream.
	rem := time.Duration(rr.rng.Float64() * float64(n.TTL))
	if rem < time.Second {
		rem = time.Second
	}
	answers := make([]trace.Answer, len(n.Addrs))
	for i, addr := range n.Addrs {
		answers[i] = trace.Answer{Addr: addr, TTL: rem}
	}
	return answers, true
}

// WarmFraction reports the fraction of partitions currently holding host
// unexpired — a calibration/diagnostic hook.
func (rr *Recursive) WarmFraction(now time.Duration, host string) float64 {
	warm := 0
	for _, p := range rr.parts {
		if _, ok := p.Peek(now, host); ok {
			warm++
		}
	}
	return float64(warm) / float64(len(rr.parts))
}
