package resolver

import (
	"dnscontext/internal/obs"
)

// recMetrics holds one platform's pre-resolved instrument handles. It is
// stored by value on Recursive: the zero value is all-nil instruments,
// whose methods are guarded no-ops, so the uninstrumented hot path pays
// a single nil check per operation and allocates nothing.
type recMetrics struct {
	lookups      *obs.Counter
	hits         *obs.Counter
	misses       *obs.Counter
	timeouts     *obs.Counter
	retries      *obs.Counter
	servfails    *obs.Counter
	tcpFallbacks *obs.Counter
	streamResets *obs.Counter
	duration     *obs.Timer
}

// Instrument registers this platform's metric families with reg and
// resolves the per-platform handles used on the lookup path. The
// counters observe; they never influence resolution, so seeded runs are
// bit-identical with or without a registry (nil reg is a no-op).
func (rr *Recursive) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	plat := rr.Profile.ID.String()
	tn := rr.transport.Kind().String()
	rr.obs = recMetrics{
		lookups: reg.CounterVec("dnsctx_resolver_lookups_total",
			"Lookups the platform received from simulated clients.", "platform", "transport").With(plat, tn),
		hits: reg.CounterVec("dnsctx_resolver_cache_hits_total",
			"Frontend cache accesses answered from the shared cache (including externally warm entries).", "platform", "transport").With(plat, tn),
		misses: reg.CounterVec("dnsctx_resolver_cache_misses_total",
			"Frontend cache accesses that required authoritative iteration.", "platform", "transport").With(plat, tn),
		timeouts: reg.CounterVec("dnsctx_resolver_timeouts_total",
			"Client timeout waits caused by a lost datagram transmission or a lost stream handshake.", "platform", "transport").With(plat, tn),
		retries: reg.CounterVec("dnsctx_resolver_retries_total",
			"Client retransmissions (datagram) or reconnects (stream) beyond the first attempt.", "platform", "transport").With(plat, tn),
		servfails: reg.CounterVec("dnsctx_resolver_servfail_total",
			"Lookups that exhausted the retry ladder and synthesized SERVFAIL.", "platform", "transport").With(plat, tn),
		tcpFallbacks: reg.CounterVec("dnsctx_resolver_tcp_fallback_total",
			"UDP-truncated responses re-fetched over TCP.", "platform", "transport").With(plat, tn),
		streamResets: reg.CounterVec("dnsctx_resolver_stream_resets_total",
			"Established stream connections killed by a fault mid-exchange (DoTCP/DoT/DoH reconnect path).", "platform", "transport").With(plat, tn),
		duration: reg.TimerVec("dnsctx_resolver_lookup_seconds",
			"Client-observed lookup duration, including retries, handshakes, and fallbacks.", "platform", "transport").With(plat, tn),
	}
	evictions := reg.CounterVec("dnsctx_resolver_cache_evictions_total",
		"Cache entries evicted by LRU capacity pressure.", "platform").With(plat)
	for _, p := range rr.parts {
		p.Observe(evictions)
	}
}
