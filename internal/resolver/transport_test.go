package resolver

import (
	"testing"
	"time"

	"dnscontext/internal/netsim"
	"dnscontext/internal/stats"
	"dnscontext/internal/zonedb"
)

func TestParseTransportSpellings(t *testing.T) {
	cases := map[string]TransportKind{
		"": TransportUDP, "udp": TransportUDP, "do53": TransportUDP, "Do53": TransportUDP,
		"tcp": TransportTCP, "dotcp": TransportTCP, "DoTCP": TransportTCP,
		"dot": TransportTLS, "tls": TransportTLS, "DoT": TransportTLS,
		"doh": TransportHTTPS, "https": TransportHTTPS, "DoH": TransportHTTPS,
	}
	for s, want := range cases {
		got, err := ParseTransport(s)
		if err != nil || got != want {
			t.Errorf("ParseTransport(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseTransport("quic"); err == nil {
		t.Error("ParseTransport accepted an unknown transport")
	}
}

func TestTransportKindPredicates(t *testing.T) {
	for _, k := range Transports() {
		if k.Stream() != (k != TransportUDP) {
			t.Errorf("%v.Stream() = %v", k, k.Stream())
		}
		if k.TLS() != (k == TransportTLS || k == TransportHTTPS) {
			t.Errorf("%v.TLS() = %v", k, k.TLS())
		}
	}
	names := map[TransportKind]string{
		TransportUDP: "Do53", TransportTCP: "DoTCP", TransportTLS: "DoT", TransportHTTPS: "DoH",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestStreamConfigDefaultsAndHandshakeRTTs(t *testing.T) {
	for _, k := range []TransportKind{TransportTCP, TransportTLS, TransportHTTPS} {
		c := StreamConfig{}.WithDefaults(k)
		if c.IdleTimeout != 10*time.Second || c.SessionLifetime != time.Hour {
			t.Errorf("%v defaults: idle=%v lifetime=%v", k, c.IdleTimeout, c.SessionLifetime)
		}
		wantOverhead := time.Duration(0)
		if k == TransportHTTPS {
			wantOverhead = 500 * time.Microsecond
		}
		if c.PerQueryOverhead != wantOverhead {
			t.Errorf("%v PerQueryOverhead = %v, want %v", k, c.PerQueryOverhead, wantOverhead)
		}
		// Handshake arithmetic: 1 transport RTT, +2 TLS RTTs cold, +1 resumed.
		wantCold, wantResumed := 1, 1
		if k.TLS() {
			wantCold, wantResumed = 3, 2
		}
		if got := c.HandshakeRTTs(k, false); got != wantCold {
			t.Errorf("%v cold HandshakeRTTs = %d, want %d", k, got, wantCold)
		}
		if got := c.HandshakeRTTs(k, true); got != wantResumed {
			t.Errorf("%v resumed HandshakeRTTs = %d, want %d", k, got, wantResumed)
		}
	}
	// Explicit values survive WithDefaults.
	c := StreamConfig{IdleTimeout: time.Second, TLSRTTs: 1}.WithDefaults(TransportTLS)
	if c.IdleTimeout != time.Second || c.TLSRTTs != 1 {
		t.Errorf("WithDefaults clobbered explicit values: %+v", c)
	}
}

// detEcosystem is newEcosystem with a draw-free authority: zero TLD-miss
// probability and zero jitter links, so answerAt consumes no randomness
// and lookup draw sequences can be replayed by hand.
func detEcosystem(t *testing.T) (*zonedb.DB, *Authority) {
	t.Helper()
	zones, err := zonedb.New(zonedb.Config{NumNames: 200, ZipfExponent: 1, CDNFraction: 0.3, CDNPoolSize: 10}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	return zones, &Authority{zones: zones, NegTTL: 300 * time.Second}
}

// detProfile is a deterministic-link platform: no jitter, no slow
// episodes, no external warming — every delay is exact arithmetic and
// the only RNG draws are the documented frontend/address picks.
func detProfile(kind TransportKind, resume bool) PlatformProfile {
	prof := DefaultProfiles()[int(PlatformCloudflare)]
	prof.ExternalQPS = 0
	prof.Partitions = 1
	prof.Link = netsim.Link{Base: 5 * time.Millisecond}
	prof.AuthExtra = netsim.Link{}
	prof.Transport = kind
	prof.Stream = StreamConfig{SessionResumption: resume}
	return prof
}

// TestUDPDrawOrderContract pins the Do53 RNG draw order that the golden
// hashes depend on: frontend pick, outbound delivery, return delivery,
// address pick — and nothing else. A manual replay against a same-seeded
// RNG must land in the exact same state, proving the transport seam adds
// zero draws to the default path.
func TestUDPDrawOrderContract(t *testing.T) {
	zones, auth := detEcosystem(t)
	prof := DefaultProfiles()[int(PlatformCloudflare)] // jittered link: draws happen
	prof.ExternalQPS = 0
	prof.AuthExtra = netsim.Link{}
	host := zones.ByRank(0).Host

	rr := NewRecursive(prof, auth, stats.NewRNG(23))
	res := rr.LookupConn(nil, 0, host, DefaultRetryPolicy())
	if res.ServFail || res.Attempts != 1 {
		t.Fatalf("zero-fault lookup failed: %+v", res)
	}

	m := stats.NewRNG(23)
	_ = m.Intn(prof.Partitions)
	d1, _ := prof.Link.DeliverUnder(0, netsim.FaultProfile{}, m)
	_, _ = prof.Link.DeliverUnder(d1, netsim.FaultProfile{}, m)
	_ = m.Intn(len(prof.Addrs))
	if got, want := rr.rng.Uint64(), m.Uint64(); got != want {
		t.Fatalf("RNG state diverged from the documented draw order: %#x vs %#x", got, want)
	}
}

// TestStreamDrawOrderContract pins the stream draw order the same way:
// frontend pick, address pick, handshake deliveries, then the two
// in-stream deliveries.
func TestStreamDrawOrderContract(t *testing.T) {
	zones, auth := detEcosystem(t)
	prof := DefaultProfiles()[int(PlatformCloudflare)]
	prof.ExternalQPS = 0
	prof.AuthExtra = netsim.Link{}
	prof.Transport = TransportTLS
	host := zones.ByRank(0).Host

	rr := NewRecursive(prof, auth, stats.NewRNG(29))
	res := rr.LookupConn(&ConnState{}, 0, host, DefaultRetryPolicy())
	if res.ServFail || res.Attempts != 1 {
		t.Fatalf("zero-fault lookup failed: %+v", res)
	}

	m := stats.NewRNG(29)
	_ = m.Intn(prof.Partitions)
	_ = m.Intn(len(prof.Addrs))
	hs, ok := prof.Link.EstablishUnder(0, 3, netsim.FaultProfile{}, m)
	if !ok {
		t.Fatal("zero-fault handshake lost")
	}
	var st netsim.Stream
	st.Touch(hs, 10*time.Second)
	d1, _ := prof.Link.DeliverStream(&st, hs, netsim.FaultProfile{}, m)
	_, _ = prof.Link.DeliverStream(&st, hs+d1, netsim.FaultProfile{}, m)
	if got, want := rr.rng.Uint64(), m.Uint64(); got != want {
		t.Fatalf("RNG state diverged from the documented draw order: %#x vs %#x", got, want)
	}
}

// TestStreamColdReuseResume walks one DoT connection through its three
// cost tiers with exact arithmetic (Base=5ms ⇒ RTT=10ms): a cold lookup
// pays 3 handshake RTTs, a lookup inside the idle window pays none, and
// a reconnect within the ticket lifetime pays the resumed 2.
func TestStreamColdReuseResume(t *testing.T) {
	zones, auth := detEcosystem(t)
	prof := detProfile(TransportTLS, true)
	rr := NewRecursive(prof, auth, stats.NewRNG(31))
	name := zones.ByRank(0)
	host := name.Host
	cs := &ConnState{}
	rtt := 10 * time.Millisecond

	cold := rr.LookupConn(cs, 0, host, DefaultRetryPolicy())
	if cold.Reused || cold.Resumed || cold.Handshake != 3*rtt {
		t.Fatalf("cold: %+v", cold)
	}
	// Cold, draw-free authority: handshake + query RTT + the name's fixed
	// authoritative iteration delay.
	if cold.Duration != 3*rtt+rtt+name.AuthDelay {
		t.Fatalf("cold duration %v, want %v", cold.Duration, 4*rtt+name.AuthDelay)
	}

	// Within the idle window: reuse, no handshake, cache-warm exchange.
	now := cold.Duration + time.Second
	reused := rr.LookupConn(cs, now, host, DefaultRetryPolicy())
	if !reused.Reused || reused.Handshake != 0 || !reused.FromCache {
		t.Fatalf("reused: %+v", reused)
	}
	if reused.Duration != rtt {
		t.Fatalf("reused duration %v, want %v", reused.Duration, rtt)
	}

	// Past the idle window, inside the ticket lifetime: resumed handshake.
	now += prof.Stream.WithDefaults(TransportTLS).IdleTimeout + time.Minute
	resumed := rr.LookupConn(cs, now, host, DefaultRetryPolicy())
	if resumed.Reused || !resumed.Resumed || resumed.Handshake != 2*rtt {
		t.Fatalf("resumed: %+v", resumed)
	}
	wantIterate := time.Duration(0)
	if !resumed.FromCache {
		wantIterate = name.AuthDelay
	}
	if resumed.Duration != 2*rtt+rtt+wantIterate {
		t.Fatalf("resumed duration %v, want %v", resumed.Duration, 3*rtt+wantIterate)
	}

	// Same schedule without resumption: the reconnect is a full handshake.
	rr2 := NewRecursive(detProfile(TransportTLS, false), auth, stats.NewRNG(31))
	cs2 := &ConnState{}
	rr2.LookupConn(cs2, 0, host, DefaultRetryPolicy())
	full := rr2.LookupConn(cs2, now, host, DefaultRetryPolicy())
	if full.Resumed || full.Handshake != 3*rtt {
		t.Fatalf("resumption disabled: %+v", full)
	}
}

// TestDoTCPHandshakeOneRTT: DoTCP pays only the transport handshake and
// never marks Resumed (no TLS, no tickets).
func TestDoTCPHandshakeOneRTT(t *testing.T) {
	zones, auth := detEcosystem(t)
	rr := NewRecursive(detProfile(TransportTCP, true), auth, stats.NewRNG(37))
	cs := &ConnState{}
	res := rr.LookupConn(cs, 0, zones.ByRank(0).Host, DefaultRetryPolicy())
	if res.Handshake != 10*time.Millisecond || res.Resumed {
		t.Fatalf("DoTCP cold: %+v", res)
	}
}

// TestDoHPerQueryOverhead: DoH is DoT plus the fixed HTTP framing cost on
// every exchange, including reused-connection ones.
func TestDoHPerQueryOverhead(t *testing.T) {
	zones, auth := detEcosystem(t)
	host := zones.ByRank(0).Host
	overhead := 500 * time.Microsecond

	dot := NewRecursive(detProfile(TransportTLS, false), auth, stats.NewRNG(41))
	doh := NewRecursive(detProfile(TransportHTTPS, false), auth, stats.NewRNG(41))
	csT, csH := &ConnState{}, &ConnState{}

	coldT := dot.LookupConn(csT, 0, host, DefaultRetryPolicy())
	coldH := doh.LookupConn(csH, 0, host, DefaultRetryPolicy())
	if coldH.Duration != coldT.Duration+overhead {
		t.Fatalf("cold DoH %v, DoT %v: want exactly +%v", coldH.Duration, coldT.Duration, overhead)
	}
	warmT := dot.LookupConn(csT, coldT.Duration+time.Second, host, DefaultRetryPolicy())
	warmH := doh.LookupConn(csH, coldT.Duration+time.Second, host, DefaultRetryPolicy())
	if warmH.Duration != warmT.Duration+overhead {
		t.Fatalf("warm DoH %v, DoT %v: want exactly +%v", warmH.Duration, warmT.Duration, overhead)
	}
}

// TestReuseMonotonicityProperty is the connection-reuse cost ordering
// over randomized deterministic links: at equal (zero) faults, a reused
// DoT exchange is never slower than a ticket-resumed reconnect, which is
// never slower than a cold connection.
func TestReuseMonotonicityProperty(t *testing.T) {
	zones, auth := detEcosystem(t)
	host := zones.ByRank(0).Host
	seeds := stats.NewRNG(43)
	for trial := 0; trial < 25; trial++ {
		base := time.Duration(1+seeds.Intn(50)) * time.Millisecond
		prof := detProfile(TransportTLS, true)
		prof.Link = netsim.Link{Base: base}
		rr := NewRecursive(prof, auth, stats.NewRNG(uint64(100+trial)))
		cs := &ConnState{}

		cold := rr.LookupConn(cs, 0, host, DefaultRetryPolicy())
		reused := rr.LookupConn(cs, cold.Duration+time.Second, host, DefaultRetryPolicy())
		resumedAt := cold.Duration + 2*time.Second + prof.Stream.WithDefaults(TransportTLS).IdleTimeout + time.Second
		resumed := rr.LookupConn(cs, resumedAt, host, DefaultRetryPolicy())

		if !reused.Reused || !resumed.Resumed || cold.Reused || cold.Resumed {
			t.Fatalf("trial %d (base %v): tiers mislabeled: cold=%+v reused=%+v resumed=%+v",
				trial, base, cold, reused, resumed)
		}
		if reused.Duration > resumed.Duration {
			t.Fatalf("trial %d (base %v): reused %v slower than resumed %v",
				trial, base, reused.Duration, resumed.Duration)
		}
		if resumed.Duration > cold.Duration {
			t.Fatalf("trial %d (base %v): resumed %v slower than cold %v",
				trial, base, resumed.Duration, cold.Duration)
		}
	}
}

// TestStreamResetReconnectsNotRetransmits: a fault on an established
// connection tears it down — the next attempt pays a fresh handshake
// (reconnect), the failure lands in the streamResets counter, and the
// datagram timeouts counter stays untouched.
func TestStreamResetReconnectsNotRetransmits(t *testing.T) {
	zones, auth := detEcosystem(t)
	prof := detProfile(TransportTLS, false)
	// Outage window after the first lookup completes but during the
	// second: the in-stream delivery at 6s dies, the reconnect at 9s
	// (after one 3s timeout) lands past the window and succeeds.
	prof.Faults = netsim.FaultProfile{Outages: []netsim.Window{{Start: 5 * time.Second, End: 8 * time.Second}}}
	rr := NewRecursive(prof, auth, stats.NewRNG(47))
	host := zones.ByRank(0).Host
	cs := &ConnState{}

	first := rr.LookupConn(cs, 0, host, DefaultRetryPolicy())
	if first.ServFail || first.Attempts != 1 {
		t.Fatalf("pre-outage lookup: %+v", first)
	}

	res := rr.LookupConn(cs, 6*time.Second, host, DefaultRetryPolicy())
	if res.ServFail {
		t.Fatalf("post-reset reconnect failed: %+v", res)
	}
	if !res.Reused {
		t.Fatal("connection was live at lookup start; Reused should be true")
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts %d, want 2 (one reset, one reconnect)", res.Attempts)
	}
	if res.Handshake != 30*time.Millisecond {
		t.Fatalf("reconnect handshake %v, want full 30ms", res.Handshake)
	}
	// 3s burnt timeout + 30ms handshake + 10ms exchange (+ re-iteration
	// if the cache entry expired in between).
	want := 3*time.Second + 40*time.Millisecond
	if !res.FromCache {
		want += zones.ByRank(0).AuthDelay
	}
	if res.Duration != want {
		t.Fatalf("duration %v, want %v", res.Duration, want)
	}
	timeouts, resets := rr.LossCounters()
	if timeouts != 0 || resets != 1 {
		t.Fatalf("counters timeouts=%d resets=%d, want 0/1", timeouts, resets)
	}
}

// TestStreamOutageConnectTimeouts: a connection that cannot even be
// established is a connect timeout, not a reset — the ladder walks to
// SERVFAIL exactly like Do53 and the failures land in the timeouts
// counter.
func TestStreamOutageConnectTimeouts(t *testing.T) {
	zones, auth := detEcosystem(t)
	prof := detProfile(TransportTCP, false)
	prof.Faults = netsim.FaultProfile{Outages: []netsim.Window{{Start: 0, End: time.Hour}}}
	rr := NewRecursive(prof, auth, stats.NewRNG(53))

	res := rr.LookupConn(&ConnState{}, 0, zones.ByRank(0).Host, DefaultRetryPolicy())
	if !res.ServFail || res.RCode != RCodeServFail {
		t.Fatalf("outage lookup did not servfail: %+v", res)
	}
	if res.Duration != 9*time.Second || res.Attempts != 2 {
		t.Fatalf("ladder %v over %d attempts, want 9s over 2", res.Duration, res.Attempts)
	}
	timeouts, resets := rr.LossCounters()
	if timeouts != 2 || resets != 0 {
		t.Fatalf("counters timeouts=%d resets=%d, want 2/0", timeouts, resets)
	}
}

// TestStreamTotalLossServFail mirrors TestTotalLossGivesUpWithFullLadder
// over DoT: Loss=1 kills every handshake delivery, so the client walks
// the full timeout ladder and gives up with the accumulated wait.
func TestStreamTotalLossServFail(t *testing.T) {
	zones, auth := detEcosystem(t)
	prof := detProfile(TransportTLS, false)
	prof.Faults = netsim.FaultProfile{Loss: 1}
	rr := NewRecursive(prof, auth, stats.NewRNG(59))

	res := rr.LookupConn(&ConnState{}, 0, zones.ByRank(0).Host, DefaultRetryPolicy())
	if !res.ServFail || res.Duration != 9*time.Second || res.Attempts != 2 {
		t.Fatalf("total loss: %+v", res)
	}
	if len(res.Answers) != 0 {
		t.Fatal("servfail carried answers")
	}
}

// TestStreamNoTruncationReAsk: responses of any size fit a stream, so a
// truncation threshold that forces Do53 into TCP fallback is a no-op for
// a stream transport.
func TestStreamNoTruncationReAsk(t *testing.T) {
	zones, auth := detEcosystem(t)
	var host string
	for _, n := range zones.Names() {
		if len(n.Addrs) >= 2 {
			host = n.Host
			break
		}
	}
	if host == "" {
		t.Skip("no multi-address name in the zone")
	}
	prof := detProfile(TransportTCP, false)
	prof.Faults = netsim.FaultProfile{TruncateOver: 1}
	rr := NewRecursive(prof, auth, stats.NewRNG(61))
	res := rr.LookupConn(&ConnState{}, 0, host, DefaultRetryPolicy())
	if res.TCPFallback {
		t.Fatalf("stream transport took the TC→TCP re-ask: %+v", res)
	}
	if len(res.Answers) < 2 {
		t.Fatalf("expected the full answer set, got %d", len(res.Answers))
	}
}

// TestNilConnStateAlwaysCold: without caller-held state nothing persists
// — every lookup is a fresh connection and a fresh handshake.
func TestNilConnStateAlwaysCold(t *testing.T) {
	zones, auth := detEcosystem(t)
	rr := NewRecursive(detProfile(TransportTLS, true), auth, stats.NewRNG(67))
	host := zones.ByRank(0).Host

	a := rr.LookupConn(nil, 0, host, DefaultRetryPolicy())
	b := rr.LookupConn(nil, time.Second, host, DefaultRetryPolicy())
	if a.Reused || b.Reused || b.Resumed {
		t.Fatalf("state leaked across nil-ConnState lookups: %+v, %+v", a, b)
	}
	if b.Handshake != 30*time.Millisecond {
		t.Fatalf("second lookup handshake %v, want full 30ms", b.Handshake)
	}
}
