package resolver

import (
	"strings"
	"time"

	"dnscontext/internal/netsim"
	"dnscontext/internal/stats"
	"dnscontext/internal/trace"
	"dnscontext/internal/zonedb"
)

// Authority models the authoritative side of the namespace: the root and
// TLD layers (almost always cached by recursives, so cheap) plus the
// per-zone authoritative servers whose distance dominates cache-miss
// latency.
type Authority struct {
	zones *zonedb.DB
	// tldCacheMissProb is the small chance a recursive must re-fetch the
	// TLD delegation (its cached copy expired), adding tldDelay.
	tldCacheMissProb float64
	tldLink          netsim.Link
	// jitter scales the per-zone AuthDelay stochastically.
	jitter netsim.Link
	// NegTTL is the negative-caching lifetime for NXDOMAIN results.
	NegTTL time.Duration
}

// NewAuthority builds the authoritative model over zones.
func NewAuthority(zones *zonedb.DB) *Authority {
	return &Authority{
		zones:            zones,
		tldCacheMissProb: 0.01,
		tldLink:          netsim.Link{Base: 15 * time.Millisecond, Jitter: 10 * time.Millisecond},
		jitter:           netsim.Link{Base: 0, Jitter: 5 * time.Millisecond, SlowProb: 0.03, SlowFactor: 6},
		NegTTL:           300 * time.Second,
	}
}

// AuthResult is the outcome of full authoritative resolution of one name.
type AuthResult struct {
	// Delay is the time the recursive spent iterating.
	Delay   time.Duration
	Answers []trace.Answer
	RCode   uint8
}

// Resolve performs the (simulated) iterative resolution a recursive
// resolver does on a cache miss.
func (a *Authority) Resolve(host string, r *stats.RNG) AuthResult {
	n := a.zones.Lookup(host)
	delay := time.Duration(0)
	if r.Bool(a.tldCacheMissProb) {
		// Re-fetch the TLD delegation from the root/TLD layer.
		delay += a.tldLink.RTT(r)
	}
	if n == nil {
		// NXDOMAIN still requires asking an authoritative server; charge a
		// generic zone distance.
		delay += 40*time.Millisecond + a.jitter.Delay(r)
		return AuthResult{Delay: delay, RCode: 3}
	}
	delay += n.AuthDelay + a.jitter.Delay(r)
	answers := make([]trace.Answer, len(n.Addrs))
	for i, addr := range n.Addrs {
		answers[i] = trace.Answer{Addr: addr, TTL: n.TTL}
	}
	return AuthResult{Delay: delay, Answers: answers}
}

// TLDOf returns the last label of host ("com" for "www.example.com"),
// used by zone-level accounting.
func TLDOf(host string) string {
	host = strings.TrimSuffix(host, ".")
	if i := strings.LastIndexByte(host, '.'); i >= 0 {
		return host[i+1:]
	}
	return host
}

// Zones returns the namespace backing this authority.
func (a *Authority) Zones() *zonedb.DB { return a.zones }
